// The failover test battery for Raft-style elections (Algorithm 1's
// operating environment when the primary moves).
//
// Three layers:
//   1. TopologyCoordinator state-machine unit cases: randomized timeout
//      bounds, pre-vote liveness and freshness rules, one-vote-per-term,
//      term propagation, no-majority stepdown, priority takeover,
//      step-up gating.
//   2. ReplicaSet integration: partitions, stepdowns, rollback-resync,
//      and the per-term election-safety ledgers.
//   3. A 100-seed property suite: seeded-random partition schedules must
//      never produce two writable primaries in one term, and must
//      re-elect a writable leader within 10 election timeouts of healing.
//
// Plus the client-facing failover story: the chaos harness drives a
// primary crash under the full Decongestant stack and checks that the
// Read Balancer resets on the swap and the driver clears the deposed
// primary's connection pool (stale_handouts stays 0).

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos_harness.h"
#include "fault/fault_injector.h"
#include "net/network.h"
#include "repl/replica_set.h"
#include "repl/topology_coordinator.h"

namespace dcg::repl {
namespace {

// ---------------------------------------------------------------------
// Layer 1: coordinator state-machine unit cases.
// ---------------------------------------------------------------------

TopologyConfig UnitConfig() {
  TopologyConfig config;
  config.node_count = 3;
  config.election_timeout = sim::Seconds(5);
  config.timeout_jitter_fraction = 0.15;
  return config;
}

OpTime At(uint64_t seq) {
  OpTime t;
  t.seq = seq;
  t.wall = static_cast<sim::Time>(seq) * sim::Millis(10);
  return t;
}

/// A follower that has not heard any leader (cold start, no takeover
/// noise): node `self` of 3, term 1.
TopologyCoordinator Follower(int self, uint64_t rng_seed = 7) {
  return TopologyCoordinator(self, UnitConfig(), sim::Rng(rng_seed),
                             /*initial_leader=*/-1, /*now=*/0);
}

TEST(TopologyCoordinatorTest, DeadlineJitterStaysWithinConfiguredBounds) {
  TopologyCoordinator c = Follower(1);
  const TopologyConfig config = UnitConfig();
  const sim::Duration max_jitter = static_cast<sim::Duration>(
      config.timeout_jitter_fraction *
      static_cast<double>(config.election_timeout));
  std::set<sim::Duration> distinct;
  for (int i = 0; i < 200; ++i) {
    const sim::Time now = sim::Seconds(i);
    c.ResetElectionDeadline(now);
    const sim::Duration delay = c.election_deadline() - now;
    ASSERT_GE(delay, config.election_timeout);
    ASSERT_LE(delay, config.election_timeout + max_jitter);
    distinct.insert(delay);
  }
  // Randomized, not constant: many draws must produce many delays.
  EXPECT_GT(distinct.size(), 20u);
}

TEST(TopologyCoordinatorTest, TimeoutBeforeDeadlineIsANoOp) {
  TopologyCoordinator c = Follower(1);
  const TopologyAction action =
      c.OnElectionTimeout(c.election_deadline() - sim::Millis(1));
  EXPECT_FALSE(action.any());
  EXPECT_EQ(c.role(), MemberRole::kSecondary);
  EXPECT_EQ(c.dry_runs_started(), 0u);
}

TEST(TopologyCoordinatorTest, TimeoutStartsDryRunWithoutDisturbingTerm) {
  TopologyCoordinator c = Follower(1);
  const TopologyAction action = c.OnElectionTimeout(c.election_deadline());
  EXPECT_TRUE(action.start_dry_run);
  EXPECT_FALSE(action.start_election);
  EXPECT_EQ(action.event, TopologyEvent::kElectionTimeout);
  EXPECT_EQ(c.term(), 1u) << "pre-vote must not bump the term";
  EXPECT_EQ(c.dry_runs_started(), 1u);
  // The proposed (not adopted) term rides the campaign request.
  EXPECT_EQ(c.CampaignRequest(At(5)).term, 2u);
  EXPECT_TRUE(c.CampaignRequest(At(5)).dry_run);
}

TEST(TopologyCoordinatorTest, DryRunDeniedWhileVoterHearsLiveLeader) {
  TopologyCoordinator voter = Follower(1);
  // Node 0 announces itself leader; the voter adopts it.
  HeartbeatView hb;
  hb.from = 0;
  hb.term = 1;
  hb.leader = 0;
  hb.last_applied = At(10);
  voter.OnHeartbeat(hb, At(10), sim::Seconds(1));
  ASSERT_EQ(voter.leader(), 0);

  VoteRequest req;
  req.candidate = 2;
  req.term = 2;
  req.dry_run = true;
  req.last_applied = At(10);
  // Leader heard 1 s ago (< election timeout): refuse to help disrupt it.
  const VoteResponse denied =
      voter.OnVoteRequest(req, At(10), sim::Seconds(2));
  EXPECT_FALSE(denied.granted);
  EXPECT_EQ(denied.reason, "leader is healthy");
  // Once the leader has been silent past the timeout, the same request
  // is granted.
  const VoteResponse granted =
      voter.OnVoteRequest(req, At(10), sim::Seconds(7));
  EXPECT_TRUE(granted.granted);
  EXPECT_EQ(voter.term(), 1u) << "dry-run grant must not touch the term";
}

TEST(TopologyCoordinatorTest, VoteRefusedWhenCandidateOplogOlderThanVoters) {
  TopologyCoordinator voter = Follower(1);
  VoteRequest req;
  req.candidate = 2;
  req.term = 2;
  req.last_applied = At(5);
  for (const bool dry : {true, false}) {
    req.dry_run = dry;
    const VoteResponse resp =
        voter.OnVoteRequest(req, /*my_last_applied=*/At(6), sim::Seconds(9));
    EXPECT_FALSE(resp.granted) << (dry ? "dry" : "real");
    EXPECT_EQ(resp.reason, "candidate oplog older than voter's");
  }
  // Equal positions are electable.
  req.dry_run = false;
  EXPECT_TRUE(voter.OnVoteRequest(req, At(5), sim::Seconds(9)).granted);
}

TEST(TopologyCoordinatorTest, OnlyOneRealVotePerTerm) {
  TopologyCoordinator voter = Follower(1);
  VoteRequest first;
  first.candidate = 0;
  first.term = 2;
  first.dry_run = false;
  first.last_applied = At(10);
  EXPECT_TRUE(voter.OnVoteRequest(first, At(10), sim::Seconds(6)).granted);

  VoteRequest second = first;
  second.candidate = 2;
  const VoteResponse resp =
      voter.OnVoteRequest(second, At(10), sim::Seconds(6));
  EXPECT_FALSE(resp.granted);
  EXPECT_EQ(resp.reason, "already voted this term");
  // The original candidate asking again (lost response) is re-granted.
  EXPECT_TRUE(voter.OnVoteRequest(first, At(10), sim::Seconds(6)).granted);
}

TEST(TopologyCoordinatorTest, GrantingARealVoteResetsTheVoterDeadline) {
  TopologyCoordinator voter = Follower(1);
  const sim::Time before = voter.election_deadline();
  VoteRequest req;
  req.candidate = 0;
  req.term = 2;
  req.dry_run = false;
  req.last_applied = At(10);
  const sim::Time now = before - sim::Millis(1);  // just before expiry
  ASSERT_TRUE(voter.OnVoteRequest(req, At(0), now).granted);
  EXPECT_GE(voter.election_deadline(), now + UnitConfig().election_timeout)
      << "granting must defer the voter's own candidacy";
}

TEST(TopologyCoordinatorTest, DryRunMajorityEscalatesToRealElection) {
  TopologyCoordinator c = Follower(1);
  ASSERT_TRUE(c.OnElectionTimeout(c.election_deadline()).start_dry_run);
  VoteResponse grant;
  grant.voter = 0;
  grant.candidate = 1;
  grant.term = 2;
  grant.dry_run = true;
  grant.granted = true;
  grant.voter_term = 1;
  const TopologyAction action = c.OnVoteResponse(grant, sim::Seconds(6));
  // Self + one grant = majority of 3: the real election starts and only
  // now does the term move.
  EXPECT_TRUE(action.start_election);
  EXPECT_EQ(c.term(), 2u);
  EXPECT_EQ(c.role(), MemberRole::kCandidate);
  EXPECT_EQ(c.elections_started(), 1u);
  EXPECT_FALSE(c.CampaignRequest(At(0)).dry_run);
}

TEST(TopologyCoordinatorTest, RealMajorityWinsButIsNotWritableUntilStepUp) {
  TopologyCoordinator c = Follower(1);
  ASSERT_TRUE(c.OnElectionTimeout(c.election_deadline()).start_dry_run);
  VoteResponse grant;
  grant.voter = 0;
  grant.candidate = 1;
  grant.term = 2;
  grant.dry_run = true;
  grant.granted = true;
  grant.voter_term = 1;
  ASSERT_TRUE(c.OnVoteResponse(grant, sim::Seconds(6)).start_election);
  grant.dry_run = false;
  const TopologyAction won = c.OnVoteResponse(grant, sim::Seconds(6));
  EXPECT_TRUE(won.won_election);
  EXPECT_EQ(won.event, TopologyEvent::kWonElection);
  EXPECT_EQ(c.role(), MemberRole::kPrimary);
  EXPECT_FALSE(c.writable()) << "catch-up gates writability";
  EXPECT_EQ(c.leader_for_hello(), -1)
      << "a leader mid-catch-up reports no primary";
  c.CompleteStepUp(sim::Seconds(6));
  EXPECT_TRUE(c.writable());
  EXPECT_EQ(c.leader_for_hello(), 1);
}

TEST(TopologyCoordinatorTest, StrayVoteResponsesAreIgnored) {
  TopologyCoordinator c = Follower(1);
  ASSERT_TRUE(c.OnElectionTimeout(c.election_deadline()).start_dry_run);
  VoteResponse stray;
  stray.voter = 0;
  stray.candidate = 1;
  stray.term = 99;  // not this campaign's term
  stray.dry_run = true;
  stray.granted = true;
  stray.voter_term = 1;
  EXPECT_FALSE(c.OnVoteResponse(stray, sim::Seconds(6)).any());
  stray.term = 2;
  stray.dry_run = false;  // wrong round kind
  EXPECT_FALSE(c.OnVoteResponse(stray, sim::Seconds(6)).any());
  EXPECT_EQ(c.role(), MemberRole::kSecondary);
}

TEST(TopologyCoordinatorTest, HigherTermHeartbeatStepsPrimaryDown) {
  TopologyCoordinator leader(0, UnitConfig(), sim::Rng(7),
                             /*initial_leader=*/0, 0);
  ASSERT_TRUE(leader.writable());
  HeartbeatView hb;
  hb.from = 2;
  hb.term = 5;
  hb.leader = 2;
  hb.last_applied = At(50);
  const TopologyAction action = leader.OnHeartbeat(hb, At(40), sim::Seconds(3));
  EXPECT_TRUE(action.stepped_down);
  EXPECT_EQ(leader.role(), MemberRole::kSecondary);
  EXPECT_EQ(leader.term(), 5u);
  EXPECT_EQ(leader.leader(), 2);
  EXPECT_EQ(leader.stepdowns(), 1u);
  EXPECT_EQ(leader.last_event(), TopologyEvent::kStepDownHigherTerm);
}

TEST(TopologyCoordinatorTest, PrimaryWithoutMajorityContactStepsDown) {
  TopologyCoordinator leader(0, UnitConfig(), sim::Rng(7),
                             /*initial_leader=*/0, 0);
  // Hear both peers early, then silence: the first timeout check still
  // sees them inside the window; the next one does not.
  HeartbeatView hb;
  hb.term = 1;
  hb.leader = 0;
  for (int peer : {1, 2}) {
    hb.from = peer;
    leader.OnHeartbeat(hb, At(0), sim::Seconds(1));
  }
  const sim::Time first = leader.election_deadline();
  EXPECT_FALSE(leader.OnElectionTimeout(first).stepped_down);
  EXPECT_EQ(leader.role(), MemberRole::kPrimary);

  const sim::Time second = leader.election_deadline();
  const TopologyAction action = leader.OnElectionTimeout(second);
  EXPECT_TRUE(action.stepped_down);
  EXPECT_EQ(action.event, TopologyEvent::kStepDownNoMajority);
  EXPECT_EQ(leader.role(), MemberRole::kSecondary);
  EXPECT_FALSE(leader.writable());
}

TEST(TopologyCoordinatorTest, PriorityTakeoverSchedulesAndSkipsDryRun) {
  TopologyConfig config = UnitConfig();
  config.priorities = {1.0, 2.0, 1.0};  // node 1 outranks the leader
  TopologyCoordinator c(1, config, sim::Rng(7), /*initial_leader=*/-1, 0);
  HeartbeatView hb;
  hb.from = 0;
  hb.term = 1;
  hb.leader = 0;
  hb.last_applied = At(10);
  const TopologyAction seen = c.OnHeartbeat(hb, At(10), sim::Seconds(1));
  ASSERT_GE(seen.takeover_at, 0) << "takeover check must be scheduled";
  EXPECT_EQ(seen.takeover_at,
            sim::Seconds(1) + config.priority_takeover_delay);
  // Caught up (same seq): the check campaigns for real, no dry run.
  const TopologyAction takeover =
      c.OnPriorityTakeoverCheck(At(10), seen.takeover_at);
  EXPECT_TRUE(takeover.start_election);
  EXPECT_EQ(takeover.event, TopologyEvent::kPriorityTakeover);
  EXPECT_EQ(c.term(), 2u);
  EXPECT_EQ(c.dry_runs_started(), 0u);
}

TEST(TopologyCoordinatorTest, TakeoverDeferredUntilCaughtUp) {
  TopologyConfig config = UnitConfig();
  config.priorities = {1.0, 2.0, 1.0};
  config.priority_takeover_gap = sim::Seconds(2);
  TopologyCoordinator c(1, config, sim::Rng(7), /*initial_leader=*/-1, 0);
  HeartbeatView hb;
  hb.from = 0;
  hb.term = 1;
  hb.leader = 0;
  hb.last_applied.seq = 1000;
  hb.last_applied.wall = sim::Seconds(100);
  const TopologyAction seen = c.OnHeartbeat(hb, At(10), sim::Seconds(1));
  ASSERT_GE(seen.takeover_at, 0);
  // 90+ seconds of wall gap and behind on seq: not caught up, no action.
  OpTime behind;
  behind.seq = 10;
  behind.wall = sim::Seconds(5);
  EXPECT_FALSE(c.OnPriorityTakeoverCheck(behind, seen.takeover_at).any());
  EXPECT_EQ(c.term(), 1u);
  // Within the wall gap: caught up enough, takeover proceeds.
  OpTime close;
  close.seq = 990;
  close.wall = sim::Seconds(99);
  EXPECT_TRUE(
      c.OnPriorityTakeoverCheck(close, seen.takeover_at).start_election);
}

TEST(TopologyCoordinatorTest, PriorityZeroMemberNeverCampaigns) {
  TopologyConfig config = UnitConfig();
  config.priorities = {1.0, 0.0, 1.0};
  TopologyCoordinator c(1, config, sim::Rng(7), /*initial_leader=*/-1, 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(c.OnElectionTimeout(c.election_deadline()).any());
  }
  EXPECT_EQ(c.dry_runs_started(), 0u);
  EXPECT_EQ(c.role(), MemberRole::kSecondary);
}

TEST(TopologyCoordinatorTest, FutureTermDenialAbandonsCampaign) {
  TopologyCoordinator c = Follower(1);
  ASSERT_TRUE(c.OnElectionTimeout(c.election_deadline()).start_dry_run);
  VoteResponse denial;
  denial.voter = 0;
  denial.candidate = 1;
  denial.term = 2;
  denial.dry_run = true;
  denial.granted = false;
  denial.voter_term = 7;  // the cluster moved on long ago
  EXPECT_FALSE(c.OnVoteResponse(denial, sim::Seconds(6)).any());
  EXPECT_EQ(c.term(), 7u);
  EXPECT_EQ(c.role(), MemberRole::kSecondary);
  // The abandoned campaign's late grants change nothing.
  VoteResponse grant;
  grant.voter = 2;
  grant.candidate = 1;
  grant.term = 2;
  grant.dry_run = true;
  grant.granted = true;
  grant.voter_term = 1;
  EXPECT_FALSE(c.OnVoteResponse(grant, sim::Seconds(6)).any());
}

TEST(TopologyCoordinatorTest, RejoinKeepsPersistedTermAndClearsLeader) {
  TopologyCoordinator c = Follower(1);
  HeartbeatView hb;
  hb.from = 0;
  hb.term = 9;
  hb.leader = 0;
  hb.last_applied = At(10);
  c.OnHeartbeat(hb, At(10), sim::Seconds(1));
  ASSERT_EQ(c.term(), 9u);
  c.Rejoin(sim::Seconds(30));
  EXPECT_EQ(c.term(), 9u) << "currentTerm is durable across restarts";
  EXPECT_EQ(c.leader(), -1);
  EXPECT_EQ(c.role(), MemberRole::kSecondary);
  EXPECT_EQ(c.FreshestPeerSeq(sim::Seconds(30), sim::Seconds(60)), 0u)
      << "peer liveness is not durable";
}

// ---------------------------------------------------------------------
// Layer 2: ReplicaSet integration under partitions.
// ---------------------------------------------------------------------

class RaftSetTest : public ::testing::Test {
 protected:
  void Build(ReplicaSetParams params = {}, uint64_t seed = 2) {
    params.raft_elections = true;
    params.election_timeout = sim::Seconds(2);
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    for (int i = 0; i < 3; ++i) {
      hosts_.push_back(network_->AddHost("n" + std::to_string(i)));
    }
    rs_ = std::make_unique<ReplicaSet>(&loop_, sim::Rng(seed), network_.get(),
                                       params, server_params, hosts_);
    rs_->Start();
  }

  void WriteDoc(int64_t id, WriteConcern concern = WriteConcern::kW1,
                std::function<void(bool)> done = nullptr) {
    rs_->WriteTransaction(
        server::OpClass::kInsert,
        [id](TxnContext* ctx) {
          ctx->Insert("t", doc::Value::Doc({{"_id", id}, {"v", id}}));
        },
        std::move(done), concern);
  }

  void Isolate(int node) {
    for (int i = 0; i < 3; ++i) {
      if (i != node) network_->BlockPair(hosts_[node], hosts_[i]);
    }
  }

  void Heal(int node) {
    for (int i = 0; i < 3; ++i) {
      if (i != node) network_->UnblockPair(hosts_[node], hosts_[i]);
    }
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  std::vector<net::HostId> hosts_;
  std::unique_ptr<ReplicaSet> rs_;
};

TEST_F(RaftSetTest, PartitionedPrimaryStepsDownAndMajorityElects) {
  Build();
  for (int64_t i = 0; i < 20; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(1));
  const int old_primary = rs_->primary_index();

  Isolate(old_primary);
  // The majority side elects a new leader within ~timeout + jitter.
  loop_.RunUntil(sim::Seconds(5));
  EXPECT_NE(rs_->primary_index(), old_primary);
  EXPECT_TRUE(rs_->HasWritablePrimary());
  EXPECT_GE(rs_->term(), 2u);
  // The isolated old primary notices it lost majority contact and steps
  // down on its own (bounded stale-primary window), still in its term.
  loop_.RunUntil(sim::Seconds(8));
  EXPECT_EQ(rs_->coordinator(old_primary).role(), MemberRole::kSecondary);
  EXPECT_GE(rs_->stepdowns(), 1u);

  // Heal: the deposed primary adopts the new term from heartbeats.
  Heal(old_primary);
  loop_.RunUntil(sim::Seconds(12));
  EXPECT_EQ(rs_->coordinator(old_primary).term(), rs_->term());
  EXPECT_EQ(rs_->coordinator(old_primary).leader(), rs_->primary_index());
}

TEST_F(RaftSetTest, DivergedOldPrimaryRollsBackViaResync) {
  Build();
  for (int64_t i = 0; i < 10; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(1));
  const int old_primary = rs_->primary_index();
  const uint64_t replicated = rs_->oplog().last_seq();

  Isolate(old_primary);
  // w:1 writes keep committing on the isolated primary (the data plane
  // has not swapped yet) — they can never replicate and must roll back.
  int diverged_acks = 0;
  for (int64_t i = 100; i < 110; ++i) {
    WriteDoc(i, WriteConcern::kW1, [&](bool ok) { diverged_acks += ok; });
  }
  loop_.RunUntil(sim::Seconds(1) + sim::Millis(200));
  EXPECT_GT(diverged_acks, 0) << "test needs divergence to roll back";
  EXPECT_GT(rs_->node(old_primary).last_applied().seq, replicated);

  // The majority elects; FinishStepUp truncates the oplog back to the
  // survivors' position and marks the old primary for resync.
  loop_.RunUntil(sim::Seconds(6));
  ASSERT_NE(rs_->primary_index(), old_primary);
  EXPECT_EQ(rs_->oplog().last_seq(), replicated);
  EXPECT_TRUE(rs_->needs_resync(old_primary));

  // New-term writes proceed on the majority side.
  bool committed = false;
  WriteDoc(500, WriteConcern::kMajority, [&](bool ok) { committed = ok; });
  loop_.RunUntil(sim::Seconds(8));
  EXPECT_TRUE(committed);

  // Heal: rollback via refetch — the diverged member re-clones and
  // converges, losing its unreplicated suffix.
  Heal(old_primary);
  loop_.RunUntil(sim::Seconds(16));
  EXPECT_FALSE(rs_->needs_resync(old_primary));
  EXPECT_GE(rs_->rollback_resyncs(), 1u);
  EXPECT_EQ(rs_->node(old_primary).db().Fingerprint(),
            rs_->primary().db().Fingerprint());
  EXPECT_EQ(rs_->node(old_primary).db().Get("t")->FindById(doc::Value(105)),
            nullptr)
      << "rolled-back write must vanish from the deposed primary";
}

TEST_F(RaftSetTest, LedgersShowAtMostOneWritablePrimaryPerTerm) {
  Build();
  for (int64_t i = 0; i < 10; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(1));
  // Two failover cycles: partition the current primary, let the
  // majority elect, heal, repeat.
  for (int round = 0; round < 2; ++round) {
    const int victim = rs_->primary_index();
    const sim::Time base = loop_.Now();
    Isolate(victim);
    loop_.RunUntil(base + sim::Seconds(6));
    Heal(victim);
    loop_.RunUntil(base + sim::Seconds(10));
    for (int64_t i = 0; i < 5; ++i) {
      WriteDoc(1000 + 100 * round + i);
    }
    loop_.RunUntil(base + sim::Seconds(11));
  }
  EXPECT_GE(rs_->term(), 3u);
  for (const auto& [term, members] : rs_->writable_by_term()) {
    EXPECT_LE(members.size(), 1u) << "term " << term;
  }
  for (const auto& [term, members] : rs_->commits_by_term()) {
    EXPECT_LE(members.size(), 1u) << "term " << term;
  }
  // Every data-plane term that opened for writes is on the ledger.
  EXPECT_TRUE(rs_->writable_by_term().count(rs_->term()));
}

TEST_F(RaftSetTest, PriorityTakeoverMovesLeadershipWithoutACrash) {
  ReplicaSetParams params;
  params.node_priorities = {1.0, 1.0, 3.0};  // node 2 should lead
  Build(params);
  for (int64_t i = 0; i < 10; ++i) WriteDoc(i);
  // Node 2 spots the lower-priority leader via heartbeats, waits the
  // takeover delay, campaigns (no dry run), and wins; the old leader
  // grants the higher-term vote and steps down.
  loop_.RunUntil(sim::Seconds(8));
  EXPECT_EQ(rs_->primary_index(), 2);
  EXPECT_TRUE(rs_->HasWritablePrimary());
  EXPECT_EQ(rs_->coordinator(2).last_event(), TopologyEvent::kWonElection);
  EXPECT_GE(rs_->stepdowns(), 1u);
  // Leadership is stable afterwards: no election ping-pong.
  const uint64_t settled_term = rs_->term();
  loop_.RunUntil(sim::Seconds(20));
  EXPECT_EQ(rs_->term(), settled_term);
  EXPECT_EQ(rs_->primary_index(), 2);
  // Writes land on the taker.
  bool committed = false;
  WriteDoc(999, WriteConcern::kMajority, [&](bool ok) { committed = ok; });
  loop_.RunUntil(sim::Seconds(21));
  EXPECT_TRUE(committed);
}

// ---------------------------------------------------------------------
// Layer 3: 100-seed partition-schedule property suite.
// ---------------------------------------------------------------------

class ElectionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ElectionPropertyTest, SafetyAndBoundedUnavailability) {
  const uint64_t seed = GetParam();
  sim::EventLoop loop;
  sim::Rng rng(seed);
  net::Network network(&loop, rng.Fork());
  ReplicaSetParams params;
  params.raft_elections = true;
  params.election_timeout = sim::Seconds(2);
  server::ServerParams server_params;
  std::vector<net::HostId> hosts;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(network.AddHost("n" + std::to_string(i)));
  }
  ReplicaSet rs(&loop, rng.Fork(), &network, params, server_params, hosts);
  rs.Start();

  // Background writes throughout the run (acks don't matter here; they
  // create the divergence/rollback/resync traffic elections must survive).
  for (int64_t i = 0; i < 400; ++i) {
    loop.ScheduleAt(sim::Millis(50) * i, [&rs, i] {
      rs.WriteTransaction(
          server::OpClass::kInsert,
          [i](TxnContext* ctx) {
            ctx->Insert("t", doc::Value::Doc({{"_id", i}}));
          },
          nullptr, WriteConcern::kW1);
    });
  }

  // Seeded-random partition schedule: 3 sequential rounds, each
  // isolating one random node for a random 2.5-6 s window.
  sim::Rng chaos = rng.Fork();
  sim::Time last_heal = 0;
  for (int round = 0; round < 3; ++round) {
    const int victim = static_cast<int>(chaos.UniformInt(0, 2));
    const sim::Time start =
        sim::Seconds(2) + sim::Seconds(7) * round +
        sim::Millis(chaos.UniformInt(0, 1000));
    const sim::Time end =
        start + sim::Millis(2500) + sim::Millis(chaos.UniformInt(0, 3500));
    loop.ScheduleAt(start, [&network, &hosts, victim] {
      for (int i = 0; i < 3; ++i) {
        if (i != victim) network.BlockPair(hosts[victim], hosts[i]);
      }
    });
    loop.ScheduleAt(end, [&network, &hosts, victim] {
      for (int i = 0; i < 3; ++i) {
        if (i != victim) network.UnblockPair(hosts[victim], hosts[i]);
      }
    });
    last_heal = end;
  }

  // Safety sampler: no two alive members writable in the same term, at
  // any instant (Raft's election-safety property, observed live; the
  // per-term ledgers re-check it over the whole history below).
  uint64_t same_term_writable_violations = 0;
  std::function<void()> sample = [&] {
    for (int i = 0; i < 3; ++i) {
      if (!rs.IsAlive(i) || !rs.coordinator(i).writable()) continue;
      for (int j = i + 1; j < 3; ++j) {
        if (!rs.IsAlive(j) || !rs.coordinator(j).writable()) continue;
        if (rs.coordinator(i).term() == rs.coordinator(j).term()) {
          ++same_term_writable_violations;
        }
      }
    }
    loop.ScheduleAfter(sim::Millis(100), sample);
  };
  loop.ScheduleAfter(sim::Millis(100), sample);

  // Availability: a writable leader must re-emerge within 10 election
  // timeouts of the final heal.
  const sim::Duration unavailability_bound = 10 * params.election_timeout;
  sim::Time writable_after_heal = -1;
  std::function<void()> probe = [&] {
    if (writable_after_heal < 0 && loop.Now() >= last_heal &&
        rs.HasWritablePrimary()) {
      writable_after_heal = loop.Now();
    }
    loop.ScheduleAfter(sim::Millis(100), probe);
  };
  loop.ScheduleAfter(sim::Millis(100), probe);

  loop.RunUntil(last_heal + unavailability_bound);

  EXPECT_EQ(same_term_writable_violations, 0u) << "seed " << seed;
  for (const auto& [term, members] : rs.writable_by_term()) {
    EXPECT_LE(members.size(), 1u)
        << "term " << term << " (seed " << seed << ")";
  }
  for (const auto& [term, members] : rs.commits_by_term()) {
    EXPECT_LE(members.size(), 1u)
        << "term " << term << " (seed " << seed << ")";
  }
  ASSERT_GE(writable_after_heal, 0)
      << "no writable primary within 10 election timeouts of heal "
      << "(seed " << seed << ")";
  EXPECT_LE(writable_after_heal - last_heal, unavailability_bound)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(HundredSeeds, ElectionPropertyTest,
                         ::testing::Range<uint64_t>(1, 101));

// ---------------------------------------------------------------------
// Client-facing failover: balancer reset + pool clear, via the chaos
// harness under the full Decongestant stack.
// ---------------------------------------------------------------------

TEST(ElectionChaosTest, BalancerResetsAndPoolsClearOnFailover) {
  chaos::ChaosOptions options;
  options.seed = 7;
  options.duration = sim::Seconds(180);
  options.repl.raft_elections = true;
  options.repl.election_timeout = sim::Seconds(3);
  std::string error;
  // Crash the seed primary mid-run; restart it later as a secondary.
  ASSERT_TRUE(fault::ParseFaultSpec("crash@60:node=0;restart@110:node=0",
                                    &options.schedule, &error))
      << error;
  const char* artifacts = std::getenv("DCG_ELECTION_ARTIFACTS");
  if (artifacts != nullptr) {
    options.decisions_csv_path =
        std::string(artifacts) + "/election_chaos_decisions.csv";
  }
  const chaos::ChaosReport report = chaos::RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  // The election happened and the client stack noticed it.
  EXPECT_GE(report.elections, 1u);
  EXPECT_GE(report.balancer_primary_swaps, 1u)
      << "balancer never reset on the primary swap";
  EXPECT_GE(report.stepdown_pool_clears, 1u)
      << "driver never cleared the deposed primary's pool";
  // kPoolClear-on-stepdown must leave no stale handouts (also enforced
  // as harness invariant 6, listed here as the satellite's headline).
  EXPECT_NE(report.trace.find("clears="), std::string::npos);
}

TEST(ElectionChaosTest, RaftChaosRunsAreDeterministic) {
  chaos::ChaosOptions options;
  options.seed = 11;
  options.duration = sim::Seconds(120);
  options.repl.raft_elections = true;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultSpec("crash@50:node=0;restart@90:node=0",
                                    &options.schedule, &error))
      << error;
  const chaos::ChaosReport first = chaos::RunChaos(options);
  const chaos::ChaosReport second = chaos::RunChaos(options);
  EXPECT_TRUE(first.ok()) << first.ViolationText();
  EXPECT_EQ(first.trace, second.trace)
      << "raft elections must be deterministic per seed";
}

}  // namespace
}  // namespace dcg::repl
