// Connection-pool tests: capacity enforcement, FIFO checkout fairness,
// waitQueueTimeoutMS firing exactly at its deadline, generation
// invalidation across Clear(), min-pool warmup / idle reaping, and a
// same-seed determinism check with a constrained pool enabled end-to-end.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/pool/connection_pool.h"
#include "exp/experiment.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace dcg::driver::pool {
namespace {

/// Synchronously collected checkout results for assertion convenience.
struct Collected {
  std::vector<ConnectionPool::Checkout> results;
  ConnectionPool::CheckoutCallback Cb() {
    return [this](const ConnectionPool::Checkout& co) {
      results.push_back(co);
    };
  }
};

TEST(ConnectionPoolTest, DefaultPoolIsSynchronousAndEventFree) {
  sim::EventLoop loop;
  ConnectionPool pool(&loop, PoolOptions{});
  Collected got;
  pool.CheckOut(got.Cb());
  pool.CheckOut(got.Cb());
  // Both delivered inline — unlimited capacity, zero establishment cost.
  ASSERT_EQ(got.results.size(), 2u);
  EXPECT_TRUE(got.results[0].ok);
  EXPECT_TRUE(got.results[1].ok);
  EXPECT_EQ(got.results[0].wait, 0);
  EXPECT_EQ(got.results[1].wait, 0);
  // The determinism contract: the default pool schedules nothing.
  EXPECT_EQ(loop.PendingEvents(), 0u);
  pool.CheckIn(got.results[0].conn_id);
  pool.CheckIn(got.results[1].conn_id);
  EXPECT_EQ(loop.PendingEvents(), 0u);
  // LIFO reuse: the most recently returned connection goes out first.
  pool.CheckOut(got.Cb());
  ASSERT_EQ(got.results.size(), 3u);
  EXPECT_EQ(got.results[2].conn_id, got.results[1].conn_id);
}

TEST(ConnectionPoolTest, MaxPoolSizeCapsConcurrentCheckouts) {
  sim::EventLoop loop;
  PoolOptions options;
  options.max_pool_size = 2;
  ConnectionPool pool(&loop, options);
  Collected got;
  pool.CheckOut(got.Cb());
  pool.CheckOut(got.Cb());
  pool.CheckOut(got.Cb());  // over capacity: must queue
  ASSERT_EQ(got.results.size(), 2u);
  EXPECT_EQ(pool.checked_out(), 2);
  EXPECT_EQ(pool.total_connections(), 2);
  EXPECT_EQ(pool.queue_depth(), 1);

  // A check-in hands the freed connection straight to the waiter.
  pool.CheckIn(got.results[0].conn_id);
  ASSERT_EQ(got.results.size(), 3u);
  EXPECT_TRUE(got.results[2].ok);
  EXPECT_EQ(got.results[2].conn_id, got.results[0].conn_id);
  EXPECT_EQ(pool.queue_depth(), 0);
  EXPECT_EQ(pool.total_connections(), 2);  // never exceeded the cap
}

TEST(ConnectionPoolTest, WaitQueueIsFifo) {
  sim::EventLoop loop;
  PoolOptions options;
  options.max_pool_size = 1;
  ConnectionPool pool(&loop, options);
  Collected holder;
  pool.CheckOut(holder.Cb());
  ASSERT_EQ(holder.results.size(), 1u);

  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.CheckOut([&pool, &order, i](const ConnectionPool::Checkout& co) {
      ASSERT_TRUE(co.ok);
      order.push_back(i);
      pool.CheckIn(co.conn_id);  // cascade: each waiter serves the next
    });
  }
  EXPECT_EQ(pool.queue_depth(), 5);
  pool.CheckIn(holder.results[0].conn_id);
  // Strict FIFO: the longest-waiting checkout is always served first.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.stats().max_queue_depth, 5u);
}

TEST(ConnectionPoolTest, WaitQueueTimeoutFiresExactlyAtDeadline) {
  sim::EventLoop loop;
  PoolOptions options;
  options.max_pool_size = 1;
  options.wait_queue_timeout = sim::Millis(5);
  ConnectionPool pool(&loop, options);
  Collected holder;
  pool.CheckOut(holder.Cb());

  loop.ScheduleAfter(sim::Millis(3), [&] {
    // Enqueued at t=3ms: the timeout must fire at exactly t=8ms.
    pool.CheckOut([&](const ConnectionPool::Checkout& co) {
      EXPECT_FALSE(co.ok);
      EXPECT_EQ(co.conn_id, 0u);
      EXPECT_EQ(loop.Now(), sim::Millis(8));
    });
  });
  loop.RunAll();
  EXPECT_EQ(pool.queue_depth(), 0);
  EXPECT_EQ(pool.stats().checkout_timeouts, 1u);
  // The holder's connection was never affected.
  EXPECT_EQ(pool.checked_out(), 1);
}

TEST(ConnectionPoolTest, CheckInJustBeforeDeadlineBeatsTheTimeout) {
  sim::EventLoop loop;
  PoolOptions options;
  options.max_pool_size = 1;
  options.wait_queue_timeout = sim::Millis(5);
  ConnectionPool pool(&loop, options);
  Collected holder;
  pool.CheckOut(holder.Cb());

  Collected waiter;
  pool.CheckOut(waiter.Cb());
  loop.ScheduleAfter(sim::Millis(5) - 1, [&] {
    pool.CheckIn(holder.results[0].conn_id);
  });
  loop.RunAll();
  ASSERT_EQ(waiter.results.size(), 1u);
  EXPECT_TRUE(waiter.results[0].ok);
  EXPECT_EQ(waiter.results[0].wait, sim::Millis(5) - 1);
  EXPECT_EQ(pool.stats().checkout_timeouts, 0u);
}

TEST(ConnectionPoolTest, ClearInvalidatesByGeneration) {
  sim::EventLoop loop;
  ConnectionPool pool(&loop, PoolOptions{});
  Collected got;
  pool.CheckOut(got.Cb());  // will stay checked out across the clear
  pool.CheckOut(got.Cb());
  pool.CheckIn(got.results[1].conn_id);  // idle at clear time
  ASSERT_EQ(pool.idle(), 1);

  pool.Clear();
  EXPECT_EQ(pool.generation(), 1u);
  // Idle connections die immediately; the checked-out one survives until
  // check-in, then is destroyed instead of being reused.
  EXPECT_EQ(pool.idle(), 0);
  EXPECT_EQ(pool.total_connections(), 1);
  pool.CheckIn(got.results[0].conn_id);
  EXPECT_EQ(pool.total_connections(), 0);

  // Post-clear checkouts get fresh connections under the new generation.
  pool.CheckOut(got.Cb());
  ASSERT_EQ(got.results.size(), 3u);
  EXPECT_TRUE(got.results[2].ok);
  EXPECT_EQ(got.results[2].generation, 1u);
  EXPECT_NE(got.results[2].conn_id, got.results[0].conn_id);
  EXPECT_NE(got.results[2].conn_id, got.results[1].conn_id);
  // The invariant the chaos harness asserts: never a stale handout.
  EXPECT_EQ(pool.stale_handouts(), 0u);
  EXPECT_EQ(pool.stats().clears, 1u);
}

TEST(ConnectionPoolTest, ClearDuringEstablishmentRetriesUnderNewGeneration) {
  sim::EventLoop loop;
  PoolOptions options;
  options.max_pool_size = 1;
  options.establish_cost = sim::Millis(2);
  ConnectionPool pool(&loop, options);
  Collected got;
  pool.CheckOut(got.Cb());  // establishment completes at t=2ms
  loop.ScheduleAfter(sim::Millis(1), [&] { pool.Clear(); });
  loop.RunAll();
  // The handshake that was in flight across the clear is thrown away and
  // repeated under the new generation: delivery at t=4ms, not t=2ms.
  ASSERT_EQ(got.results.size(), 1u);
  EXPECT_TRUE(got.results[0].ok);
  EXPECT_EQ(got.results[0].generation, 1u);
  EXPECT_EQ(got.results[0].wait, sim::Millis(4));
  EXPECT_EQ(loop.Now(), sim::Millis(4));
  EXPECT_EQ(pool.stale_handouts(), 0u);
}

TEST(ConnectionPoolTest, EstablishmentCostIsPaidByTheTriggeringCheckout) {
  sim::EventLoop loop;
  PoolOptions options;
  options.establish_cost = sim::Millis(3);
  ConnectionPool pool(&loop, options);
  Collected got;
  pool.CheckOut(got.Cb());
  EXPECT_TRUE(got.results.empty());  // asynchronous now
  loop.RunAll();
  ASSERT_EQ(got.results.size(), 1u);
  EXPECT_EQ(got.results[0].wait, sim::Millis(3));
  // A second checkout after check-in reuses the warm connection for free.
  pool.CheckIn(got.results[0].conn_id);
  pool.CheckOut(got.Cb());
  ASSERT_EQ(got.results.size(), 2u);
  EXPECT_EQ(got.results[1].wait, 0);
}

TEST(ConnectionPoolTest, MaintenanceWarmsMinPoolAndReapsIdle) {
  sim::EventLoop loop;
  PoolOptions options;
  options.min_pool_size = 2;
  options.establish_cost = sim::Millis(1);
  options.max_idle_time = sim::Seconds(5);
  options.maintenance_interval = sim::Seconds(1);
  ConnectionPool pool(&loop, options);
  pool.StartMaintenance();
  loop.RunUntil(sim::Seconds(2));
  // Warmed up to minPoolSize without any demand.
  EXPECT_EQ(pool.total_connections(), 2);
  EXPECT_EQ(pool.idle(), 2);

  // A demand burst grows the pool past the floor...
  Collected got;
  for (int i = 0; i < 4; ++i) pool.CheckOut(got.Cb());
  loop.RunUntil(sim::Seconds(3));
  ASSERT_EQ(got.results.size(), 4u);
  for (const auto& co : got.results) pool.CheckIn(co.conn_id);
  EXPECT_EQ(pool.total_connections(), 4);

  // ...and idle reaping shrinks it back to minPoolSize once the extras
  // sit unused past maxIdleTime.
  loop.RunUntil(sim::Seconds(20));
  EXPECT_EQ(pool.total_connections(), 2);
  EXPECT_EQ(pool.idle(), 2);
}

/// Compact deterministic fingerprint of an experiment run with a
/// constrained pool: period rows + driver/pool counters.
std::string PooledRunTrace(uint64_t seed) {
  exp::ExperimentConfig config;
  config.seed = seed;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 40, 0.95}};
  config.duration = sim::Seconds(60);
  config.warmup = sim::Seconds(20);
  config.run_s_workload = false;
  config.client_options.pool.max_pool_size = 4;
  config.client_options.pool.establish_cost = sim::Millis(1);
  config.client_options.pool.wait_queue_timeout = sim::Millis(200);
  config.client_options.pool.min_pool_size = 1;
  config.client_options.pool.max_idle_time = sim::Seconds(5);
  exp::Experiment experiment(config);
  experiment.Run();

  std::string trace;
  char line[192];
  for (const auto& row : experiment.rows()) {
    std::snprintf(line, sizeof(line),
                  "t=%.0f reads=%llu sec=%llu writes=%llu poolto=%llu "
                  "wait=%.3f q=%d\n",
                  sim::ToSeconds(row.start),
                  static_cast<unsigned long long>(row.reads),
                  static_cast<unsigned long long>(row.reads_secondary),
                  static_cast<unsigned long long>(row.writes),
                  static_cast<unsigned long long>(row.pool_checkout_timeouts),
                  row.pool_checkout_wait_ms, row.pool_queue_depth);
    trace += line;
  }
  const ConnectionPool::Stats totals = experiment.client().PoolTotals();
  std::snprintf(line, sizeof(line),
                "pool co=%llu to=%llu est=%llu destroyed=%llu peakq=%llu "
                "wait_ms=%.3f\n",
                static_cast<unsigned long long>(totals.checkouts),
                static_cast<unsigned long long>(totals.checkout_timeouts),
                static_cast<unsigned long long>(totals.established),
                static_cast<unsigned long long>(totals.destroyed),
                static_cast<unsigned long long>(totals.max_queue_depth),
                sim::ToMillis(totals.wait_total));
  trace += line;
  return trace;
}

TEST(ConnectionPoolTest, PooledRunsAreDeterministic) {
  // Same seed, constrained pool (queueing, establishment costs, reaping
  // all active): two runs must be bit-identical — the pool draws no
  // randomness and schedules deterministically.
  const std::string first = PooledRunTrace(99);
  const std::string second = PooledRunTrace(99);
  EXPECT_EQ(first, second);
  // And the run actually exercised the pool.
  EXPECT_NE(first.find("pool co="), std::string::npos);
}

TEST(ConnectionPoolTest, SaturatedPoolShowsUpInClientLatency) {
  // One connection per node with real establishment cost and many
  // closed-loop clients: checkout wait must surface in the experiment's
  // pool columns and in per-op checkout_wait (it is client-observed
  // latency — what the Read Balancer's estimate ingests).
  exp::ExperimentConfig config;
  config.seed = 7;
  config.system = exp::SystemType::kPrimary;  // all load on one node
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 30, 0.95}};
  config.duration = sim::Seconds(40);
  config.warmup = sim::Seconds(10);
  config.run_s_workload = false;
  config.client_options.pool.max_pool_size = 2;
  exp::Experiment experiment(config);
  sim::Duration max_wait = 0;
  experiment.SetOpObserver([&](const workload::OpOutcome& outcome) {
    max_wait = std::max(max_wait, outcome.checkout_wait);
    if (outcome.ok) {
      EXPECT_LE(outcome.checkout_wait, outcome.latency);
    }
  });
  experiment.Run();
  EXPECT_GT(max_wait, 0);
  const ConnectionPool::Stats totals = experiment.client().PoolTotals();
  EXPECT_GT(totals.wait_total, 0);
  EXPECT_GT(totals.max_queue_depth, 0u);
  // 30 clients through 2 connections: the pool never grew past the cap.
  for (int i = 0; i < experiment.client().node_count(); ++i) {
    EXPECT_LE(experiment.client().node_pool(i).total_connections(), 2);
    EXPECT_EQ(experiment.client().node_pool(i).stale_handouts(), 0u);
  }
}

}  // namespace
}  // namespace dcg::driver::pool
