// Tests for the point-to-point network model: delay sampling, ping RTTs,
// and the fault hooks (drop probability, partitions, link degradation).

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/event_loop.h"
#include "sim/random.h"

namespace dcg {
namespace {

struct NetFixture {
  sim::EventLoop loop;
  net::Network network{&loop, sim::Rng(123)};
  net::HostId a, b;

  NetFixture(sim::Duration base_rtt = sim::Millis(1.0),
             sim::Duration jitter = sim::Micros(40)) {
    a = network.AddHost("a");
    b = network.AddHost("b");
    network.SetLink(a, b, base_rtt, jitter);
  }
};

TEST(NetworkTest, OneWayDelayRespectsBaseRttFloor) {
  NetFixture net;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(net.network.SampleOneWay(net.a, net.b), sim::Millis(0.5));
  }
}

TEST(NetworkTest, SelfDelayIsZero) {
  NetFixture net;
  EXPECT_EQ(net.network.SampleOneWay(net.a, net.a), 0);
}

TEST(NetworkTest, JitterMeanConvergesUnderFixedSeed) {
  const sim::Duration jitter = sim::Micros(100);
  NetFixture net(sim::Millis(1.0), jitter);
  double total_extra = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    total_extra += static_cast<double>(net.network.SampleOneWay(net.a, net.b) -
                                       sim::Millis(0.5));
  }
  const double mean = total_extra / samples;
  // Exponential jitter: the sample mean must converge to the configured
  // mean (within 5% at 100k samples).
  EXPECT_NEAR(mean, static_cast<double>(jitter),
              0.05 * static_cast<double>(jitter));
}

TEST(NetworkTest, PingRttAtLeastBaseRtt) {
  NetFixture net;
  int completed = 0;
  for (int i = 0; i < 1000; ++i) {
    net.network.Ping(net.a, net.b, [&](sim::Duration rtt) {
      EXPECT_GE(rtt, sim::Millis(1.0));
      ++completed;
    });
  }
  net.loop.RunAll();
  EXPECT_EQ(completed, 1000);
}

TEST(NetworkTest, SendDeliversInTimeOrder) {
  NetFixture net;
  int delivered = 0;
  sim::Time last = 0;
  for (int i = 0; i < 100; ++i) {
    net.network.Send(net.a, net.b, [&] {
      EXPECT_GE(net.loop.Now(), last);
      last = net.loop.Now();
      ++delivered;
    });
  }
  net.loop.RunAll();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(net.network.messages_delivered(), 100u);
  EXPECT_EQ(net.network.messages_dropped(), 0u);
}

TEST(NetworkTest, DropProbabilityIsHonoured) {
  NetFixture net;
  net::Network::LinkFault fault;
  fault.drop_probability = 0.3;
  net.network.SetLinkFault(net.a, net.b, fault);
  int delivered = 0;
  const int sent = 20000;
  for (int i = 0; i < sent; ++i) {
    net.network.Send(net.a, net.b, [&] { ++delivered; });
  }
  net.loop.RunAll();
  const double drop_rate = 1.0 - static_cast<double>(delivered) / sent;
  EXPECT_NEAR(drop_rate, 0.3, 0.02);
  EXPECT_EQ(net.network.messages_dropped(),
            static_cast<uint64_t>(sent - delivered));
}

TEST(NetworkTest, DropIsDirectional) {
  NetFixture net;
  net::Network::LinkFault fault;
  fault.drop_probability = 1.0;
  net.network.SetLinkFault(net.a, net.b, fault);
  int forward = 0, backward = 0;
  for (int i = 0; i < 100; ++i) {
    net.network.Send(net.a, net.b, [&] { ++forward; });
    net.network.Send(net.b, net.a, [&] { ++backward; });
  }
  net.loop.RunAll();
  EXPECT_EQ(forward, 0);
  EXPECT_EQ(backward, 100);
}

TEST(NetworkTest, ClearLinkFaultRestoresDelivery) {
  NetFixture net;
  net::Network::LinkFault fault;
  fault.drop_probability = 1.0;
  net.network.SetLinkFault(net.a, net.b, fault);
  net.network.ClearLinkFault(net.a, net.b);
  int delivered = 0;
  net.network.Send(net.a, net.b, [&] { ++delivered; });
  net.loop.RunAll();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, ExtraDelayAndMultiplierApplied) {
  NetFixture net;
  net::Network::LinkFault fault;
  fault.extra_delay = sim::Millis(10);
  fault.delay_multiplier = 3.0;
  net.network.SetLinkFault(net.a, net.b, fault);
  for (int i = 0; i < 1000; ++i) {
    // Healthy floor is base/2 = 0.5 ms; degraded floor is 3x that + 10 ms.
    EXPECT_GE(net.network.SampleOneWay(net.a, net.b),
              sim::Millis(1.5) + sim::Millis(10));
  }
}

TEST(NetworkTest, PartitionBlocksBothDirections) {
  NetFixture net;
  net.network.BlockPair(net.a, net.b);
  EXPECT_FALSE(net.network.Reachable(net.a, net.b));
  int delivered = 0;
  net.network.Send(net.a, net.b, [&] { ++delivered; });
  net.network.Send(net.b, net.a, [&] { ++delivered; });
  bool pinged = false;
  net.network.Ping(net.a, net.b, [&](sim::Duration) { pinged = true; });
  net.loop.RunAll();
  EXPECT_EQ(delivered, 0);
  EXPECT_FALSE(pinged);
  EXPECT_EQ(net.network.messages_dropped(), 3u);
}

TEST(NetworkTest, OverlappingBlocksCompose) {
  NetFixture net;
  net.network.BlockPair(net.a, net.b);
  net.network.BlockPair(net.b, net.a);  // same pair, other order
  net.network.UnblockPair(net.a, net.b);
  // One block still outstanding.
  EXPECT_FALSE(net.network.Reachable(net.a, net.b));
  net.network.UnblockPair(net.b, net.a);
  EXPECT_TRUE(net.network.Reachable(net.a, net.b));
}

TEST(NetworkTest, SendWithTimeoutDeliversAndTimerIsCancellable) {
  NetFixture net;
  bool delivered = false;
  bool timed_out = false;
  const sim::EventId timer = net.network.SendWithTimeout(
      net.a, net.b, [&] { delivered = true; }, sim::Millis(100),
      [&] { timed_out = true; });
  net.loop.RunUntil(sim::Millis(10));
  EXPECT_TRUE(delivered);
  // Delivery happened: the "reply" arrived, so the caller cancels.
  EXPECT_TRUE(net.network.CancelTimeout(timer));
  net.loop.RunAll();
  EXPECT_FALSE(timed_out);
}

TEST(NetworkTest, SendWithTimeoutFiresOnSilentLoss) {
  NetFixture net;
  net.network.BlockPair(net.a, net.b);
  bool delivered = false;
  bool timed_out = false;
  sim::Time fired_at = -1;
  net.network.SendWithTimeout(
      net.a, net.b, [&] { delivered = true; }, sim::Millis(100), [&] {
        timed_out = true;
        fired_at = net.loop.Now();
      });
  net.loop.RunAll();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(timed_out);  // the caller always hears *something*
  EXPECT_EQ(fired_at, sim::Millis(100));
}

TEST(NetworkTest, CancelAfterTimeoutReportsFalse) {
  NetFixture net;
  net.network.BlockPair(net.a, net.b);
  bool timed_out = false;
  const sim::EventId timer = net.network.SendWithTimeout(
      net.a, net.b, [] {}, sim::Millis(5), [&] { timed_out = true; });
  net.loop.RunAll();
  ASSERT_TRUE(timed_out);
  EXPECT_FALSE(net.network.CancelTimeout(timer));
}

TEST(NetworkTest, PingWithTimeoutReportsRttWhenHealthy) {
  NetFixture net;
  int calls = 0;
  net.network.PingWithTimeout(net.a, net.b, sim::Millis(50),
                              [&](bool ok, sim::Duration rtt) {
                                ++calls;
                                EXPECT_TRUE(ok);
                                EXPECT_GE(rtt, sim::Millis(1.0));
                              });
  net.loop.RunAll();
  EXPECT_EQ(calls, 1);
}

TEST(NetworkTest, PingWithTimeoutNeverWedgesThroughPartition) {
  // Plain Ping would silently never call back here; the timeout variant
  // reports failure exactly once instead.
  NetFixture net;
  net.network.BlockPair(net.a, net.b);
  int calls = 0;
  net.network.PingWithTimeout(net.a, net.b, sim::Millis(50),
                              [&](bool ok, sim::Duration rtt) {
                                ++calls;
                                EXPECT_FALSE(ok);
                                EXPECT_EQ(rtt, 0);
                              });
  net.loop.RunAll();
  EXPECT_EQ(calls, 1);
}

TEST(NetworkTest, PingWithTimeoutExactlyOneCallbackUnderLoss) {
  // Across a lossy link, every probe resolves exactly once — as success
  // or failure, never both and never zero.
  NetFixture net;
  net::Network::LinkFault fault;
  fault.drop_probability = 0.5;
  net.network.SetLinkFault(net.a, net.b, fault);
  int calls = 0, ok_calls = 0;
  const int probes = 2000;
  for (int i = 0; i < probes; ++i) {
    net.network.PingWithTimeout(net.a, net.b, sim::Millis(50),
                                [&](bool ok, sim::Duration) {
                                  ++calls;
                                  if (ok) ++ok_calls;
                                });
  }
  net.loop.RunAll();
  EXPECT_EQ(calls, probes);
  EXPECT_GT(ok_calls, 0);
  EXPECT_LT(ok_calls, probes);
}

TEST(NetworkTest, FaultFreePathConsumesNoExtraRandomness) {
  // Two identically-seeded networks, one of which installs and clears a
  // fault on an *unrelated* pair, must sample identical delays: fault
  // checks on healthy links must not consume RNG draws (determinism
  // depends on it).
  sim::EventLoop loop1, loop2;
  net::Network n1(&loop1, sim::Rng(9)), n2(&loop2, sim::Rng(9));
  const net::HostId a1 = n1.AddHost("a"), b1 = n1.AddHost("b");
  const net::HostId c1 = n1.AddHost("c");
  const net::HostId a2 = n2.AddHost("a"), b2 = n2.AddHost("b");
  n2.AddHost("c");
  n1.SetLink(a1, b1, sim::Millis(1.0), sim::Micros(40));
  n2.SetLink(a2, b2, sim::Millis(1.0), sim::Micros(40));
  net::Network::LinkFault fault;
  fault.drop_probability = 0.5;
  n1.SetLinkFault(a1, c1, fault);  // unrelated directed pair
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(n1.SampleOneWay(a1, b1), n2.SampleOneWay(a2, b2));
    EXPECT_FALSE(n1.ShouldDrop(a1, b1));
  }
}

}  // namespace
}  // namespace dcg
