// Conformance suite for the Balance Fraction controller registry: every
// registered strategy must keep its output inside the paper's fraction
// range, respect the Read Balancer's staleness gate (the gate wraps the
// controller, so this is a whole-balancer test), be deterministic under a
// fixed input sequence, and report a BalanceReason on every tick. Plus
// targeted tests for each rival's control law and the served-age
// (age-of-information) histogram oracle.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "core/read_balancer.h"
#include "core/shared_state.h"
#include "exp/experiment.h"
#include "metrics/histogram.h"
#include "repl/replica_set.h"
#include "sim/event_loop.h"
#include "sim/random.h"

namespace dcg::core {
namespace {

// A reason value no controller can legitimately emit: proves the callee
// wrote the out-param rather than leaving it untouched.
constexpr auto kReasonSentinel =
    static_cast<obs::BalanceReason>(obs::kBalanceReasonCount);

// Randomized-but-reproducible controller inputs spanning the whole signal
// surface: valid and invalid ratios, empty and populated age vectors,
// fractions at and between the bounds.
ControlInputs RandomInputs(sim::Rng* rng, const BalancerConfig& config) {
  ControlInputs inputs;
  inputs.latest_fraction =
      config.low_bal +
      (config.high_bal - config.low_bal) *
          static_cast<double>(rng->UniformInt(0, 100)) / 100.0;
  inputs.ratio_valid = rng->Bernoulli(0.8);
  inputs.ratio = inputs.ratio_valid
                     ? static_cast<double>(rng->UniformInt(1, 400)) / 100.0
                     : 1.0;
  inputs.history_flat = rng->Bernoulli(0.3);
  inputs.lss_primary = sim::Micros(rng->UniformInt(20, 50'000));
  inputs.lss_secondary = sim::Micros(rng->UniformInt(20, 50'000));
  inputs.p50_read_latency = sim::Micros(rng->UniformInt(0, 20'000));
  const int64_t secondaries = rng->UniformInt(0, 3);
  for (int64_t i = 0; i < secondaries; ++i) {
    inputs.secondary_age_s.push_back(rng->UniformInt(-1, 30));
  }
  inputs.staleness_estimate_s = 0;
  for (int64_t age : inputs.secondary_age_s) {
    inputs.staleness_estimate_s = std::max(inputs.staleness_estimate_s, age);
  }
  inputs.stale_bound_s = rng->UniformInt(0, 20);
  return inputs;
}

TEST(ControllerRegistryTest, KnownNamesResolveAndUnknownsDoNot) {
  for (std::string_view name : RegisteredControllers()) {
    auto controller = MakeController(name);
    ASSERT_NE(controller, nullptr) << name;
    // The registry maps the paper's Algorithm 1 onto "decongestant".
    const std::string_view reported = controller->name();
    EXPECT_TRUE(reported == name ||
                (name == "decongestant" && reported == "step"))
        << name << " -> " << reported;
  }
  EXPECT_NE(MakeController("step"), nullptr);  // legacy alias
  EXPECT_EQ(MakeController("bogus"), nullptr);
  EXPECT_EQ(MakeController(""), nullptr);
  EXPECT_TRUE(IsDefaultController("decongestant"));
  EXPECT_TRUE(IsDefaultController("step"));
  EXPECT_FALSE(IsDefaultController("cpq"));
  EXPECT_FALSE(IsDefaultController("aoi"));
  EXPECT_FALSE(IsDefaultController("pid"));
}

TEST(ControllerConformanceTest, FractionStaysWithinBounds) {
  const BalancerConfig config;
  for (std::string_view name : RegisteredControllers()) {
    auto controller = MakeController(name);
    sim::Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
      const ControlInputs inputs = RandomInputs(&rng, config);
      const double next = controller->NextFraction(inputs, config);
      EXPECT_GE(next, config.low_bal - 1e-12)
          << name << " step " << i << " returned " << next;
      EXPECT_LE(next, config.high_bal + 1e-12)
          << name << " step " << i << " returned " << next;
    }
  }
}

TEST(ControllerConformanceTest, DeterministicUnderSameInputSequence) {
  const BalancerConfig config;
  for (std::string_view name : RegisteredControllers()) {
    // Two fresh instances, identical input streams: outputs must agree
    // exactly — controllers carry no hidden entropy, only explicit state.
    auto a = MakeController(name);
    auto b = MakeController(name);
    sim::Rng rng_a(23);
    sim::Rng rng_b(23);
    for (int i = 0; i < 500; ++i) {
      const ControlInputs ia = RandomInputs(&rng_a, config);
      const ControlInputs ib = RandomInputs(&rng_b, config);
      obs::BalanceReason ra = kReasonSentinel;
      obs::BalanceReason rb = kReasonSentinel;
      const double fa = a->NextFraction(ia, config, &ra);
      const double fb = b->NextFraction(ib, config, &rb);
      ASSERT_DOUBLE_EQ(fa, fb) << name << " step " << i;
      ASSERT_EQ(ra, rb) << name << " step " << i;
    }
  }
}

TEST(ControllerConformanceTest, ReportsReasonEveryTick) {
  const BalancerConfig config;
  for (std::string_view name : RegisteredControllers()) {
    auto controller = MakeController(name);
    sim::Rng rng(37);
    for (int i = 0; i < 500; ++i) {
      obs::BalanceReason reason = kReasonSentinel;
      controller->NextFraction(RandomInputs(&rng, config), config, &reason);
      ASSERT_NE(reason, kReasonSentinel) << name << " step " << i;
      ASSERT_LT(static_cast<size_t>(reason), obs::kBalanceReasonCount)
          << name << " step " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Stale-gate conformance: the gate lives in the Read Balancer, above the
// controller. With StaleBound 0 the published fraction must pin at 0 no
// matter which strategy is installed or how congested the primary looks.
// ---------------------------------------------------------------------------

class ControllerGateTest : public ::testing::Test {
 protected:
  void Build(BalancerConfig config, std::string_view controller) {
    // Tear down the previous strategy's stack (reverse dependency order)
    // so each registered controller gets a fresh, identical world.
    balancer_.reset();
    state_.reset();
    client_.reset();
    rs_.reset();
    network_.reset();
    loop_ = std::make_unique<sim::EventLoop>();

    config_ = config;
    network_ = std::make_unique<net::Network>(loop_.get(), sim::Rng(1));
    const net::HostId c = network_->AddHost("client");
    repl::ReplicaSetParams params;
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    std::vector<net::HostId> hosts;
    for (int i = 0; i < 3; ++i) {
      hosts.push_back(network_->AddHost("n" + std::to_string(i)));
      network_->SetLink(c, hosts[i], sim::Millis(1), 0);
    }
    rs_ = std::make_unique<repl::ReplicaSet>(loop_.get(), sim::Rng(2),
                                             network_.get(), params,
                                             server_params, hosts);
    client_ = std::make_unique<driver::MongoClient>(
        loop_.get(), sim::Rng(3), rs_->command_bus(), c,
        driver::ClientOptions{});
    state_ = std::make_unique<SharedState>(config.low_bal);
    balancer_ = std::make_unique<ReadBalancer>(client_.get(), state_.get(),
                                               config, sim::Rng(4));
    auto strategy = MakeController(controller);
    ASSERT_NE(strategy, nullptr);
    balancer_->SetController(std::move(strategy));
  }

  void InjectLatencies(sim::Duration primary, sim::Duration secondary,
                       int per_second = 10) {
    for (int i = 0; i < per_second; ++i) {
      state_->RecordLatency(driver::ReadPreference::kPrimary, primary);
      state_->RecordLatency(driver::ReadPreference::kSecondary, secondary);
    }
    loop_->ScheduleAfter(sim::Seconds(1), [this, primary, secondary,
                                           per_second] {
      InjectLatencies(primary, secondary, per_second);
    });
  }

  void Start() {
    rs_->Start();
    client_->Start();
    balancer_->Start();
  }

  BalancerConfig config_;
  std::unique_ptr<sim::EventLoop> loop_ = std::make_unique<sim::EventLoop>();
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<repl::ReplicaSet> rs_;
  std::unique_ptr<driver::MongoClient> client_;
  std::unique_ptr<SharedState> state_;
  std::unique_ptr<ReadBalancer> balancer_;
};

TEST_F(ControllerGateTest, StaleBoundZeroPinsEveryStrategyToPrimary) {
  for (std::string_view name : RegisteredControllers()) {
    SCOPED_TRACE(std::string(name));
    BalancerConfig config;
    config.stale_bound_seconds = 0;
    Build(config, name);
    Start();
    // Primary heavily congested: every latency-chasing law wants the
    // secondaries, but the gate says no staleness is tolerable.
    InjectLatencies(sim::Millis(50), sim::Millis(5));
    loop_->RunUntil(sim::Seconds(60));
    EXPECT_DOUBLE_EQ(state_->balance_fraction(), 0.0);
    EXPECT_TRUE(balancer_->stale_blocked());
  }
}

TEST_F(ControllerGateTest, EveryStrategyTicksThroughTheDecisionLog) {
  for (std::string_view name : RegisteredControllers()) {
    SCOPED_TRACE(std::string(name));
    Build(BalancerConfig{}, name);
    Start();
    InjectLatencies(sim::Millis(50), sim::Millis(5));
    loop_->RunUntil(sim::Seconds(45));
    const obs::DecisionLog& log = balancer_->decisions();
    EXPECT_GE(log.size(), 4u);
    for (const obs::BalanceDecision& d : log.entries()) {
      EXPECT_LT(static_cast<size_t>(d.reason), obs::kBalanceReasonCount);
      EXPECT_FALSE(obs::ToString(d.reason).empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Control-law spot checks for the rivals.
// ---------------------------------------------------------------------------

ControlInputs ValidRatioInputs(double latest, double ratio) {
  ControlInputs inputs;
  inputs.latest_fraction = latest;
  inputs.ratio = ratio;
  inputs.ratio_valid = true;
  inputs.lss_primary = sim::Millis(ratio);
  inputs.lss_secondary = sim::Millis(1);
  return inputs;
}

TEST(CpqControllerTest, SlaMissShedsTowardFasterSide) {
  const BalancerConfig config;
  CpqController cpq;
  // P50 far above the target while the primary is the congested side:
  // the fraction must move up (toward secondaries).
  ControlInputs inputs = ValidRatioInputs(0.5, 3.0);
  inputs.p50_read_latency = cpq.sla_target() * 4;
  obs::BalanceReason reason = kReasonSentinel;
  const double up = cpq.NextFraction(inputs, config, &reason);
  EXPECT_GT(up, 0.5);
  EXPECT_EQ(reason, obs::BalanceReason::kSlaShedToSecondary);

  // Same miss but the *secondaries* are the slow side: move down.
  inputs = ValidRatioInputs(0.5, 0.3);
  inputs.p50_read_latency = cpq.sla_target() * 4;
  const double down = cpq.NextFraction(inputs, config, &reason);
  EXPECT_LT(down, 0.5);
  EXPECT_EQ(reason, obs::BalanceReason::kSlaShedToPrimary);
}

TEST(CpqControllerTest, SlaMetDriftsTowardPrimary) {
  const BalancerConfig config;
  CpqController cpq;
  ControlInputs inputs = ValidRatioInputs(0.5, 1.0);
  inputs.p50_read_latency = cpq.sla_target() / 2;  // comfortable headroom
  obs::BalanceReason reason = kReasonSentinel;
  const double next = cpq.NextFraction(inputs, config, &reason);
  EXPECT_LT(next, 0.5);
  EXPECT_EQ(reason, obs::BalanceReason::kSlaHeadroomProbe);
}

TEST(AoiControllerTest, AgeCapMatchesHandComputedOracle) {
  const BalancerConfig config;  // low_bal 0.1, high_bal 0.9, bound 10 s
  // budget = 0.5 * 10 s = 5 s.
  ControlInputs inputs;
  inputs.stale_bound_s = 10;

  // Fresh secondaries (mean age 3 s): cap = 5/3 -> clamped to HIGHBAL.
  inputs.secondary_age_s = {2, 4};
  EXPECT_DOUBLE_EQ(AoiController::AgeCap(inputs, config, 0.5), 0.9);

  // Mean age 10 s: cap = 5/10 = 0.5 exactly.
  inputs.secondary_age_s = {8, 12};
  EXPECT_DOUBLE_EQ(AoiController::AgeCap(inputs, config, 0.5), 0.5);

  // Unknown ages (-1 entries are skipped): only the 20 s node counts,
  // cap = 5/20 = 0.25.
  inputs.secondary_age_s = {-1, 20};
  EXPECT_DOUBLE_EQ(AoiController::AgeCap(inputs, config, 0.5), 0.25);

  // Very stale (mean 100 s): 5/100 = 0.05 floors at LOWBAL.
  inputs.secondary_age_s = {100};
  EXPECT_DOUBLE_EQ(AoiController::AgeCap(inputs, config, 0.5), 0.1);

  // No age evidence at all: no cap.
  inputs.secondary_age_s = {-1, -1};
  EXPECT_DOUBLE_EQ(AoiController::AgeCap(inputs, config, 0.5), 0.9);
  inputs.secondary_age_s.clear();
  EXPECT_DOUBLE_EQ(AoiController::AgeCap(inputs, config, 0.5), 0.9);

  // Zero bound: the hard gate owns this case; the cap stays out of the way.
  inputs.stale_bound_s = 0;
  inputs.secondary_age_s = {100};
  EXPECT_DOUBLE_EQ(AoiController::AgeCap(inputs, config, 0.5), 0.9);
}

TEST(AoiControllerTest, CapOverridesLatencyPressure) {
  const BalancerConfig config;
  AoiController aoi;
  // Congested primary says "go up", but the secondaries are 20 s old on
  // average: cap = 5/20 = 0.25 beats the latency move.
  ControlInputs inputs = ValidRatioInputs(0.8, 3.0);
  inputs.stale_bound_s = 10;
  inputs.secondary_age_s = {20, 20};
  inputs.staleness_estimate_s = 20;
  obs::BalanceReason reason = kReasonSentinel;
  const double next = aoi.NextFraction(inputs, config, &reason);
  EXPECT_LT(next, 0.8);
  EXPECT_EQ(reason, obs::BalanceReason::kAoiCapped);

  // Fresh secondaries: behaves like Algorithm 1's up-step.
  inputs.secondary_age_s = {0, 0};
  inputs.staleness_estimate_s = 0;
  const double up = aoi.NextFraction(inputs, config, &reason);
  EXPECT_GT(up, 0.8);
  EXPECT_EQ(reason, obs::BalanceReason::kLatencyRatioUp);
}

TEST(PidControllerTest, IntegralDecaysWithoutEvidenceAndStaysBounded) {
  const BalancerConfig config;
  PidController pid;
  // Sustained small positive error with an unsaturated output: the
  // integral accumulates but the windup clamp bounds it.
  for (int i = 0; i < 50; ++i) {
    pid.NextFraction(ValidRatioInputs(0.5, 1.2), config);
  }
  EXPECT_GT(std::abs(pid.integral()), 0.0);
  EXPECT_LE(std::abs(pid.integral()), 2.0 + 1e-9);

  // No evidence: the integral decays toward zero instead of persisting.
  const double before = std::abs(pid.integral());
  ControlInputs invalid;
  invalid.latest_fraction = config.high_bal;
  invalid.ratio_valid = false;
  obs::BalanceReason reason = kReasonSentinel;
  const double held = pid.NextFraction(invalid, config, &reason);
  EXPECT_DOUBLE_EQ(held, config.high_bal);  // holds the fraction
  EXPECT_EQ(reason, obs::BalanceReason::kNoEvidence);
  EXPECT_LT(std::abs(pid.integral()), before);

  // Pinned at HIGHBAL with the error still positive: anti-windup freezes
  // integration, so the integral never exceeds its clamp.
  for (int i = 0; i < 200; ++i) {
    pid.NextFraction(ValidRatioInputs(config.high_bal, 4.0), config);
  }
  EXPECT_LE(std::abs(pid.integral()), 2.0 + 1e-9);
}

TEST(PidControllerTest, MovesWithTheSignOfTheError) {
  const BalancerConfig config;
  PidController pid;
  obs::BalanceReason reason = kReasonSentinel;
  const double up = pid.NextFraction(ValidRatioInputs(0.5, 2.0), config,
                                     &reason);
  EXPECT_GT(up, 0.5);
  EXPECT_EQ(reason, obs::BalanceReason::kLatencyRatioUp);

  PidController fresh;
  const double down = fresh.NextFraction(ValidRatioInputs(0.5, 0.4), config,
                                         &reason);
  EXPECT_LT(down, 0.5);
  EXPECT_EQ(reason, obs::BalanceReason::kLatencyRatioDown);
}

// ---------------------------------------------------------------------------
// Served-age (age-of-information) histogram oracle.
// ---------------------------------------------------------------------------

TEST(ServedAgeHistogramTest, MatchesHandComputedOracle) {
  // The experiment records served ages in milliseconds and exports
  // seconds via a 1/1000 scale; mean and max are exact (sum/count and
  // running max), so a hand-computed oracle holds exactly.
  metrics::Histogram age_ms;
  for (double v : {0.0, 0.0, 250.0, 1000.0, 3750.0}) age_ms.Add(v);
  EXPECT_EQ(age_ms.count(), 5u);
  EXPECT_DOUBLE_EQ(age_ms.sum(), 5000.0);
  EXPECT_DOUBLE_EQ(age_ms.mean(), 1000.0);   // 1.000 s after scaling
  EXPECT_DOUBLE_EQ(age_ms.max(), 3750.0);    // 3.750 s after scaling
  EXPECT_DOUBLE_EQ(age_ms.min(), 0.0);
  // Percentiles are bucketed (5 % growth): P100 lands in the bucket
  // containing the max, never below the true max.
  EXPECT_GE(age_ms.Percentile(100), 3750.0);
  EXPECT_LE(age_ms.Percentile(100), 3750.0 * 1.05);
}

TEST(ServedAgeHistogramTest, PrimaryReadsServeZeroAge) {
  // System = primary-only: every read is served by the primary, so the
  // served-age distribution is identically zero and no bound violations
  // can occur.
  exp::ExperimentConfig config;
  config.system = exp::SystemType::kPrimary;
  config.phases = {{0, 4, 0.9}};
  config.duration = sim::Seconds(40);
  config.warmup = sim::Seconds(5);
  config.run_s_workload = false;
  exp::Experiment experiment(config);
  experiment.Run();
  const exp::Summary summary = experiment.Summarize();
  EXPECT_GT(summary.read_throughput, 0.0);
  EXPECT_DOUBLE_EQ(summary.mean_served_age_s, 0.0);
  EXPECT_DOUBLE_EQ(summary.max_served_age_s, 0.0);
  EXPECT_EQ(summary.bound_violations, 0u);
}

TEST(ServedAgeHistogramTest, SecondaryReadsAccrueAge) {
  exp::ExperimentConfig config;
  config.system = exp::SystemType::kSecondary;
  config.phases = {{0, 4, 0.5}};  // writes keep secondaries behind
  config.duration = sim::Seconds(40);
  config.warmup = sim::Seconds(5);
  config.run_s_workload = false;
  exp::Experiment experiment(config);
  experiment.Run();
  const exp::Summary summary = experiment.Summarize();
  EXPECT_GT(summary.max_served_age_s, 0.0);
  EXPECT_GE(summary.max_served_age_s, summary.mean_served_age_s);
}

}  // namespace
}  // namespace dcg::core
