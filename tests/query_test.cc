// Tests for FindWith (sort/limit/projection) and the CSV exporters.

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "exp/csv_export.h"
#include "exp/experiment.h"
#include "store/collection.h"

namespace dcg {
namespace {

store::Collection MakePeople() {
  store::Collection people("people");
  people.Insert(doc::Value::Doc({{"_id", 1}, {"name", "carol"}, {"age", 41}}));
  people.Insert(doc::Value::Doc({{"_id", 2}, {"name", "alice"}, {"age", 30}}));
  people.Insert(doc::Value::Doc({{"_id", 3}, {"name", "bob"}, {"age", 30}}));
  people.Insert(doc::Value::Doc({{"_id", 4}, {"name", "dave"}}));  // no age
  people.Insert(doc::Value::Doc({{"_id", 5}, {"name", "erin"}, {"age", 22}}));
  return people;
}

TEST(FindWithTest, DefaultsReturnWholeDocsInIdOrder) {
  store::Collection people = MakePeople();
  auto out = people.FindWith(doc::Filter::True(), {});
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].Find("_id")->as_int64(), 1);
  EXPECT_EQ(out[0].Find("name")->as_string(), "carol");
}

TEST(FindWithTest, SortAscendingMissingFirst) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.sort_path = "age";
  auto out = people.FindWith(doc::Filter::True(), options);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].Find("name")->as_string(), "dave");  // missing age
  EXPECT_EQ(out[1].Find("name")->as_string(), "erin");  // 22
  EXPECT_EQ(out.back().Find("name")->as_string(), "carol");  // 41
}

TEST(FindWithTest, SortDescendingWithStableTies) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.sort_path = "age";
  options.sort_descending = true;
  auto out = people.FindWith(doc::Filter::True(), options);
  EXPECT_EQ(out[0].Find("name")->as_string(), "carol");
  // Tied ages (alice, bob) keep _id order (stable sort).
  EXPECT_EQ(out[1].Find("name")->as_string(), "alice");
  EXPECT_EQ(out[2].Find("name")->as_string(), "bob");
}

TEST(FindWithTest, LimitAppliesAfterSort) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.sort_path = "age";
  options.sort_descending = true;
  options.limit = 2;
  auto out = people.FindWith(doc::Filter::True(), options);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].Find("name")->as_string(), "carol");
  EXPECT_EQ(out[1].Find("name")->as_string(), "alice");
}

TEST(FindWithTest, FilterPlusSort) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.sort_path = "name";
  auto out =
      people.FindWith(doc::Filter::Gte("age", doc::Value(30)), options);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].Find("name")->as_string(), "alice");
  EXPECT_EQ(out[2].Find("name")->as_string(), "carol");
}

TEST(FindWithTest, ProjectionKeepsIdAndListedFields) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.projection = {"name"};
  auto out = people.FindWith(doc::Filter::Eq("_id", doc::Value(2)), options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].Find("_id"), nullptr);
  EXPECT_NE(out[0].Find("name"), nullptr);
  EXPECT_EQ(out[0].Find("age"), nullptr);  // projected away
}

TEST(FindWithTest, ProjectionOfMissingFieldOmitsIt) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.projection = {"age"};
  auto out = people.FindWith(doc::Filter::Eq("_id", doc::Value(4)), options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Find("age"), nullptr);
  EXPECT_NE(out[0].Find("_id"), nullptr);
}

int CountLines(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return -1;
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

TEST(CsvExportTest, WritesAllThreeFiles) {
  exp::ExperimentConfig config;
  config.seed = 3;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 10, 0.5}};
  config.duration = sim::Seconds(60);
  exp::Experiment experiment(config);
  experiment.Run();

  const std::string prefix = ::testing::TempDir() + "/dcg_csv";
  ASSERT_TRUE(exp::WritePeriodsCsv(experiment, prefix + "_p.csv"));
  ASSERT_TRUE(exp::WriteStalenessCsv(experiment, prefix + "_s.csv"));
  ASSERT_TRUE(exp::WriteSamplesCsv(experiment, prefix + "_x.csv"));

  // Header + one row per period (6 x 10 s).
  EXPECT_EQ(CountLines(prefix + "_p.csv"), 7);
  // Header + ~one row per second.
  EXPECT_GE(CountLines(prefix + "_s.csv"), 55);
  // Header + one row per probe (5/s).
  EXPECT_GE(CountLines(prefix + "_x.csv"), 200);

  // Header fields sanity.
  std::ifstream in(prefix + "_p.csv");
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("read_throughput"), std::string::npos);
  EXPECT_NE(header.find("balance_fraction"), std::string::npos);
}

TEST(CsvExportTest, FailsOnUnwritablePath) {
  exp::ExperimentConfig config;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 2, 0.5}};
  config.duration = sim::Seconds(10);
  exp::Experiment experiment(config);
  experiment.Run();
  EXPECT_FALSE(
      exp::WritePeriodsCsv(experiment, "/nonexistent-dir/out.csv"));
}

}  // namespace
}  // namespace dcg
