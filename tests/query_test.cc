// Tests for FindWith (sort/limit/projection) and the CSV exporters.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/csv_export.h"
#include "exp/experiment.h"
#include "sim/random.h"
#include "store/collection.h"

namespace dcg {
namespace {

store::Collection MakePeople() {
  store::Collection people("people");
  people.Insert(doc::Value::Doc({{"_id", 1}, {"name", "carol"}, {"age", 41}}));
  people.Insert(doc::Value::Doc({{"_id", 2}, {"name", "alice"}, {"age", 30}}));
  people.Insert(doc::Value::Doc({{"_id", 3}, {"name", "bob"}, {"age", 30}}));
  people.Insert(doc::Value::Doc({{"_id", 4}, {"name", "dave"}}));  // no age
  people.Insert(doc::Value::Doc({{"_id", 5}, {"name", "erin"}, {"age", 22}}));
  return people;
}

TEST(FindWithTest, DefaultsReturnWholeDocsInIdOrder) {
  store::Collection people = MakePeople();
  auto out = people.FindWith(doc::Filter::True(), {});
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].Find("_id")->as_int64(), 1);
  EXPECT_EQ(out[0].Find("name")->as_string(), "carol");
}

TEST(FindWithTest, SortAscendingMissingFirst) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.sort_path = "age";
  auto out = people.FindWith(doc::Filter::True(), options);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].Find("name")->as_string(), "dave");  // missing age
  EXPECT_EQ(out[1].Find("name")->as_string(), "erin");  // 22
  EXPECT_EQ(out.back().Find("name")->as_string(), "carol");  // 41
}

TEST(FindWithTest, SortDescendingWithStableTies) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.sort_path = "age";
  options.sort_descending = true;
  auto out = people.FindWith(doc::Filter::True(), options);
  EXPECT_EQ(out[0].Find("name")->as_string(), "carol");
  // Tied ages (alice, bob) keep _id order (stable sort).
  EXPECT_EQ(out[1].Find("name")->as_string(), "alice");
  EXPECT_EQ(out[2].Find("name")->as_string(), "bob");
}

TEST(FindWithTest, LimitAppliesAfterSort) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.sort_path = "age";
  options.sort_descending = true;
  options.limit = 2;
  auto out = people.FindWith(doc::Filter::True(), options);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].Find("name")->as_string(), "carol");
  EXPECT_EQ(out[1].Find("name")->as_string(), "alice");
}

TEST(FindWithTest, FilterPlusSort) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.sort_path = "name";
  auto out =
      people.FindWith(doc::Filter::Gte("age", doc::Value(30)), options);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].Find("name")->as_string(), "alice");
  EXPECT_EQ(out[2].Find("name")->as_string(), "carol");
}

TEST(FindWithTest, ProjectionKeepsIdAndListedFields) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.projection = {"name"};
  auto out = people.FindWith(doc::Filter::Eq("_id", doc::Value(2)), options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].Find("_id"), nullptr);
  EXPECT_NE(out[0].Find("name"), nullptr);
  EXPECT_EQ(out[0].Find("age"), nullptr);  // projected away
}

TEST(FindWithTest, ProjectionOfMissingFieldOmitsIt) {
  store::Collection people = MakePeople();
  store::FindOptions options;
  options.projection = {"age"};
  auto out = people.FindWith(doc::Filter::Eq("_id", doc::Value(4)), options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Find("age"), nullptr);
  EXPECT_NE(out[0].Find("_id"), nullptr);
}

int CountLines(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return -1;
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

TEST(CsvExportTest, WritesAllThreeFiles) {
  exp::ExperimentConfig config;
  config.seed = 3;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 10, 0.5}};
  config.duration = sim::Seconds(60);
  exp::Experiment experiment(config);
  experiment.Run();

  const std::string prefix = ::testing::TempDir() + "/dcg_csv";
  ASSERT_TRUE(exp::WritePeriodsCsv(experiment, prefix + "_p.csv"));
  ASSERT_TRUE(exp::WriteStalenessCsv(experiment, prefix + "_s.csv"));
  ASSERT_TRUE(exp::WriteSamplesCsv(experiment, prefix + "_x.csv"));

  // Units comment + header + one row per period (6 x 10 s).
  EXPECT_EQ(CountLines(prefix + "_p.csv"), 8);
  // Units comment + header + ~one row per second.
  EXPECT_GE(CountLines(prefix + "_s.csv"), 56);
  // Units comment + header + one row per probe (5/s).
  EXPECT_GE(CountLines(prefix + "_x.csv"), 201);

  // Units comment then header-fields sanity.
  std::ifstream in(prefix + "_p.csv");
  std::string units;
  std::getline(in, units);
  EXPECT_EQ(units.rfind("# units:", 0), 0u);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("read_throughput"), std::string::npos);
  EXPECT_NE(header.find("balance_fraction"), std::string::npos);
}

TEST(CsvExportTest, FailsOnUnwritablePath) {
  exp::ExperimentConfig config;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 2, 0.5}};
  config.duration = sim::Seconds(10);
  exp::Experiment experiment(config);
  experiment.Run();
  EXPECT_FALSE(
      exp::WritePeriodsCsv(experiment, "/nonexistent-dir/out.csv"));
}

// --- FindWith top-k equivalence ---------------------------------------------
//
// The top-k fast path (single key extraction + partial_sort over decorated
// entries) must return byte-identical results to the reference semantics:
// a full stable sort on the extracted key followed by truncation to the
// limit. Random documents exercise missing sort paths (Null-first), heavy
// ties, both directions, and every limit regime (0, <n, =n, >n).

doc::Value TopkDoc(int64_t id, sim::Rng& rng) {
  doc::Value d = doc::Value::Doc({{"_id", id}});
  // ~1 in 5 documents misses the sort path entirely; the small value range
  // forces ties, and occasional doubles mix numeric representations.
  if (rng.UniformInt(0, 4) != 0) {
    d.Set("score", doc::Value(rng.UniformInt(0, 9)));
  }
  if (rng.UniformInt(0, 9) == 0) {
    d.Set("score", doc::Value(static_cast<double>(rng.UniformInt(0, 9)) + 0.5));
  }
  return d;
}

// Reference implementation: stable_sort over (possibly missing) keys, then
// truncate — exactly what Collection::FindWith did before the top-k path.
std::vector<int64_t> OracleTopk(const std::vector<doc::Value>& docs,
                                const std::string& path, bool descending,
                                size_t limit) {
  static const doc::Value kNull;
  std::vector<doc::Value> sorted = docs;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](const doc::Value& a, const doc::Value& b) {
                     const doc::Value* va = a.FindPath(path);
                     const doc::Value* vb = b.FindPath(path);
                     const int c = (va != nullptr ? *va : kNull)
                                       .Compare(vb != nullptr ? *vb : kNull);
                     return descending ? c > 0 : c < 0;
                   });
  if (sorted.size() > limit) sorted.resize(limit);
  std::vector<int64_t> ids;
  ids.reserve(sorted.size());
  for (const auto& d : sorted) ids.push_back(d.Find("_id")->as_int64());
  return ids;
}

TEST(FindWithTopkTest, MatchesFullSortOracle) {
  sim::Rng rng(1337);
  for (int round = 0; round < 20; ++round) {
    const int n = static_cast<int>(rng.UniformInt(0, 200));
    store::Collection coll("topk");
    std::vector<doc::Value> docs;
    for (int i = 0; i < n; ++i) {
      docs.push_back(TopkDoc(i, rng));
      coll.Insert(docs.back());
    }
    const size_t limits[] = {0,
                             1,
                             3,
                             static_cast<size_t>(n > 0 ? n - 1 : 0),
                             static_cast<size_t>(n),
                             static_cast<size_t>(n) + 7,
                             SIZE_MAX};
    for (const bool descending : {false, true}) {
      for (const size_t limit : limits) {
        store::FindOptions options;
        options.sort_path = "score";
        options.sort_descending = descending;
        options.limit = limit;
        const auto out = coll.FindWith(doc::Filter::True(), options);
        const auto expected = OracleTopk(docs, "score", descending, limit);
        ASSERT_EQ(out.size(), expected.size())
            << "round=" << round << " n=" << n << " desc=" << descending
            << " limit=" << limit;
        for (size_t i = 0; i < out.size(); ++i) {
          ASSERT_EQ(out[i].Find("_id")->as_int64(), expected[i])
              << "round=" << round << " n=" << n << " desc=" << descending
              << " limit=" << limit << " i=" << i;
        }
      }
    }
  }
}

TEST(FindWithTopkTest, TiesKeepIdOrderUnderLimit) {
  store::Collection coll("ties");
  for (int64_t id = 0; id < 50; ++id) {
    coll.Insert(doc::Value::Doc({{"_id", id}, {"score", id % 2}}));
  }
  store::FindOptions options;
  options.sort_path = "score";
  options.limit = 10;
  const auto out = coll.FindWith(doc::Filter::True(), options);
  ASSERT_EQ(out.size(), 10u);
  // score 0 is every even id; ties must surface in _id order.
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].Find("_id")->as_int64(), static_cast<int64_t>(2 * i));
  }
}

TEST(FindWithTopkTest, MissingPathSortsFirstEvenWithLimit) {
  store::Collection coll("missing");
  coll.Insert(doc::Value::Doc({{"_id", 1}, {"score", 5}}));
  coll.Insert(doc::Value::Doc({{"_id", 2}}));
  coll.Insert(doc::Value::Doc({{"_id", 3}, {"score", 1}}));
  coll.Insert(doc::Value::Doc({{"_id", 4}}));
  store::FindOptions options;
  options.sort_path = "score";
  options.limit = 3;
  const auto out = coll.FindWith(doc::Filter::True(), options);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].Find("_id")->as_int64(), 2);  // Null first, id order
  EXPECT_EQ(out[1].Find("_id")->as_int64(), 4);
  EXPECT_EQ(out[2].Find("_id")->as_int64(), 3);
}

}  // namespace
}  // namespace dcg
