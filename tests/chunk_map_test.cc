// Unit tests for the versioned chunk map (hashed + ranged key spaces),
// the ConfigShards routing authority with its admission protocol, and the
// shared client-wide StalenessBudget.

#include <set>

#include <gtest/gtest.h>

#include "core/staleness_budget.h"
#include "shard/chunk_map.h"

namespace dcg::shard {
namespace {

TEST(ChunkMapTest, HashedChunksTileTheWholeHashLine) {
  const ChunkMap map = ChunkMap::Hashed(ShardKeyPattern{}, 3, 4);
  ASSERT_EQ(map.chunk_count(), 12);
  EXPECT_EQ(map.chunk(0).hash_lo, 0u);
  EXPECT_EQ(map.chunk(11).hash_hi, UINT64_MAX);
  for (int64_t i = 1; i < map.chunk_count(); ++i) {
    EXPECT_EQ(map.chunk(i).hash_lo, map.chunk(i - 1).hash_hi + 1)
        << "gap or overlap between chunks " << i - 1 << " and " << i;
  }
}

TEST(ChunkMapTest, HashedAssignsContiguousBlocksPerShard) {
  const ChunkMap map = ChunkMap::Hashed(ShardKeyPattern{}, 2, 4);
  for (int64_t c = 0; c < map.chunk_count(); ++c) {
    EXPECT_EQ(map.chunk(c).shard, c < 4 ? 0 : 1);
  }
}

TEST(ChunkMapTest, ChunkIdForAgreesWithChunkRanges) {
  const ChunkMap map = ChunkMap::Hashed(ShardKeyPattern{}, 2, 8);
  for (int64_t id = 0; id < 5000; ++id) {
    const doc::Value key(id);
    const int64_t c = map.ChunkIdFor(key);
    const uint64_t h = ChunkMap::HashKey(key);
    ASSERT_GE(c, 0);
    ASSERT_LT(c, map.chunk_count());
    EXPECT_GE(h, map.chunk(c).hash_lo);
    EXPECT_LE(h, map.chunk(c).hash_hi);
  }
}

TEST(ChunkMapTest, HashedSpreadsConsecutiveIdsAcrossShards) {
  // The finalized hash must mix the *high* bits (the chunk ranges slice
  // them): 100 consecutive ids should land near 50/50 on two shards.
  const ChunkMap map = ChunkMap::Hashed(ShardKeyPattern{}, 2, 4);
  int counts[2] = {0, 0};
  for (int64_t id = 0; id < 100; ++id) {
    ++counts[map.ShardFor(doc::Value(id))];
  }
  EXPECT_GT(counts[0], 25);
  EXPECT_GT(counts[1], 25);
}

TEST(ChunkMapTest, RangedRoutesByUpperBoundOnSplits) {
  ShardKeyPattern pattern;
  pattern.hashed = false;
  const ChunkMap map = ChunkMap::Ranged(
      pattern,
      {doc::Value(int64_t{100}), doc::Value(int64_t{200}),
       doc::Value(int64_t{300})},
      2);
  ASSERT_EQ(map.chunk_count(), 4);
  // Round-robin placement: chunk i on shard i % 2.
  EXPECT_EQ(map.ChunkIdFor(doc::Value(int64_t{50})), 0);
  // Splits are lower-inclusive: key == split lands in the higher chunk.
  EXPECT_EQ(map.ChunkIdFor(doc::Value(int64_t{100})), 1);
  EXPECT_EQ(map.ChunkIdFor(doc::Value(int64_t{150})), 1);
  EXPECT_EQ(map.ChunkIdFor(doc::Value(int64_t{250})), 2);
  EXPECT_EQ(map.ChunkIdFor(doc::Value(int64_t{999})), 3);
  EXPECT_EQ(map.ShardFor(doc::Value(int64_t{50})), 0);
  EXPECT_EQ(map.ShardFor(doc::Value(int64_t{150})), 1);
  EXPECT_EQ(map.ShardFor(doc::Value(int64_t{250})), 0);
  EXPECT_EQ(map.ShardFor(doc::Value(int64_t{999})), 1);
}

TEST(ChunkMapTest, MoveChunkBumpsVersionAndReassigns) {
  ChunkMap map = ChunkMap::Hashed(ShardKeyPattern{}, 2, 2);
  EXPECT_EQ(map.version(), 1u);
  EXPECT_EQ(map.ChunksOwnedBy(0), 2);
  map.MoveChunk(0, 1);
  EXPECT_EQ(map.version(), 2u);
  EXPECT_EQ(map.ChunksOwnedBy(0), 1);
  EXPECT_EQ(map.ChunksOwnedBy(1), 3);
  EXPECT_EQ(map.chunk(0).shard, 1);
}

TEST(ConfigShardsTest, AdmitRefusesStaleVersionAndWrongOwner) {
  ConfigShards authority(ChunkMap::Hashed(ShardKeyPattern{}, 2, 2));
  proto::RouteInfo route;
  route.chunk_id = 0;
  route.shard_version = authority.Snapshot()->version();
  // Current version + correct owner: admitted.
  EXPECT_TRUE(authority.Admit(route, 0));
  EXPECT_EQ(authority.stale_refusals(), 0u);
  // Wrong shard for the chunk: refused.
  EXPECT_FALSE(authority.Admit(route, 1));
  EXPECT_EQ(authority.stale_refusals(), 1u);
  // After a move the old version is refused everywhere...
  authority.MoveChunk(0, 1);
  EXPECT_FALSE(authority.Admit(route, 0));
  EXPECT_FALSE(authority.Admit(route, 1));
  // ...and the refreshed version admits only the new owner.
  route.shard_version = authority.Snapshot()->version();
  EXPECT_TRUE(authority.Admit(route, 1));
  EXPECT_FALSE(authority.Admit(route, 0));
}

TEST(ConfigShardsTest, UnversionedCommandsAlwaysAdmitted) {
  ConfigShards authority(ChunkMap::Hashed(ShardKeyPattern{}, 2, 2));
  proto::RouteInfo route;  // shard_version == 0: scatter sub-op
  EXPECT_TRUE(authority.Admit(route, 0));
  EXPECT_TRUE(authority.Admit(route, 1));
  EXPECT_EQ(authority.stale_refusals(), 0u);
}

TEST(ConfigShardsTest, SnapshotsAreImmutableCopyOnWrite) {
  ConfigShards authority(ChunkMap::Hashed(ShardKeyPattern{}, 2, 2));
  const auto before = authority.Snapshot();
  authority.MoveChunk(0, 1);
  const auto after = authority.Snapshot();
  EXPECT_EQ(before->version() + 1, after->version());
  EXPECT_EQ(before->chunk(0).shard, 0);  // old snapshot untouched
  EXPECT_EQ(after->chunk(0).shard, 1);
}

TEST(StalenessBudgetTest, FullBoundWhileEveryShardWithin) {
  core::StalenessBudget budget(10, 3);
  budget.Report(0, 4);
  budget.Report(1, 10);
  budget.Report(2, 0);
  EXPECT_EQ(budget.WorstEstimate(), 10);
  // Nobody overshoots: everyone keeps the paper's per-set bound.
  for (int s = 0; s < 3; ++s) EXPECT_EQ(budget.EffectiveBound(s), 10);
}

TEST(StalenessBudgetTest, PeerOvershootDebitsEveryOtherShard) {
  core::StalenessBudget budget(10, 3);
  budget.Report(0, 14);  // 4 s over
  EXPECT_EQ(budget.EffectiveBound(1), 6);
  EXPECT_EQ(budget.EffectiveBound(2), 6);
  // The overshooting shard itself still gates against the full bound
  // (its own estimate, 14 > 10, already gates it).
  EXPECT_EQ(budget.EffectiveBound(0), 10);
  // Overshoot past 2B zeroes everyone else.
  budget.Report(0, 25);
  EXPECT_EQ(budget.EffectiveBound(1), 0);
  EXPECT_EQ(budget.EffectiveBound(2), 0);
}

TEST(StalenessBudgetTest, ZeroBoundAlwaysGates) {
  core::StalenessBudget budget(0, 2);
  EXPECT_EQ(budget.EffectiveBound(0), 0);
  budget.Report(1, 0);
  EXPECT_EQ(budget.EffectiveBound(0), 0);
}

}  // namespace
}  // namespace dcg::shard
