// Churn stress for the slab-based EventLoop: over a million
// schedule/cancel/reschedule cycles recycling a small window of slots,
// asserting (time, seq) firing order, PendingEvents accounting, and that
// id reuse can never let a stale handle cancel a recycled slot.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/random.h"

namespace dcg::sim {
namespace {

TEST(EventLoopStressTest, MillionCycleChurnKeepsOrderAndAccounting) {
  constexpr int kWindow = 256;
  constexpr int kCycles = 1'000'000;
  EventLoop loop;
  Rng rng(2024);

  // A window of far-future timers, constantly cancelled and rescheduled —
  // the pattern heartbeats, retries, and watchdogs produce. Every live
  // event's (time, payload) is mirrored in `expected` keyed by window slot.
  struct Pending {
    EventId id = 0;
    Time at = 0;
    int64_t payload = 0;
  };
  std::vector<Pending> window(kWindow);
  std::vector<std::pair<Time, int64_t>> fired;  // (Now() at firing, payload)
  int64_t next_payload = 0;

  auto schedule = [&](int slot, Time at) {
    window[slot].at = at;
    window[slot].payload = next_payload++;
    const int64_t payload = window[slot].payload;
    window[slot].id = loop.ScheduleAt(at, [&loop, &fired, payload] {
      fired.emplace_back(loop.Now(), payload);
    });
  };

  const Time horizon = Seconds(1000);
  for (int i = 0; i < kWindow; ++i) {
    schedule(i, horizon + rng.UniformInt(0, 1'000'000));
  }

  uint64_t cancelled = 0;
  std::vector<EventId> stale_ids;
  stale_ids.reserve(kCycles / 1000);
  for (int i = 0; i < kCycles; ++i) {
    const int slot = static_cast<int>(rng.UniformInt(0, kWindow - 1));
    ASSERT_TRUE(loop.Cancel(window[slot].id)) << "cycle " << i;
    if (i % 1000 == 0) stale_ids.push_back(window[slot].id);
    ++cancelled;
    // A cancelled id must stay dead even after its slab slot is reused.
    EXPECT_FALSE(loop.Cancel(window[slot].id));
    schedule(slot, horizon + rng.UniformInt(0, 1'000'000));
    ASSERT_EQ(loop.PendingEvents(), static_cast<size_t>(kWindow));
  }
  EXPECT_EQ(cancelled, static_cast<uint64_t>(kCycles));

  // None of the sampled stale ids may resolve, no matter how many times
  // their slots were recycled since.
  for (EventId id : stale_ids) EXPECT_FALSE(loop.Cancel(id));

  // Exactly the surviving window fires, in (time, insertion-seq) order.
  const uint64_t executed = loop.RunAll();
  EXPECT_EQ(executed, static_cast<uint64_t>(kWindow));
  EXPECT_EQ(fired.size(), static_cast<size_t>(kWindow));
  EXPECT_EQ(loop.PendingEvents(), 0u);

  std::vector<std::pair<Time, int64_t>> expected;
  expected.reserve(kWindow);
  for (const Pending& p : window) expected.emplace_back(p.at, p.payload);
  // Same-time events fire in scheduling order, and payloads were assigned
  // in scheduling order, so (time, payload) sorted is the firing order.
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(fired, expected);
}

TEST(EventLoopStressTest, CancelDuringCallbackAndRescheduleFromCallback) {
  // Events cancelling and scheduling other events mid-run must keep the
  // slab and queue consistent.
  EventLoop loop;
  int fired = 0;
  std::vector<EventId> victims;
  for (int i = 0; i < 1000; ++i) {
    victims.push_back(loop.ScheduleAt(Millis(10) + i, [&fired] { ++fired; }));
  }
  // One early event cancels every odd victim and schedules replacements
  // beyond them.
  loop.ScheduleAt(Millis(1), [&] {
    for (size_t i = 1; i < victims.size(); i += 2) {
      EXPECT_TRUE(loop.Cancel(victims[i]));
      loop.ScheduleAfter(Seconds(1), [&fired] { fired += 100; });
    }
  });
  loop.RunAll();
  EXPECT_EQ(fired, 500 + 500 * 100);
  EXPECT_EQ(loop.PendingEvents(), 0u);
}

TEST(EventLoopStressTest, SlabShrinksToFreeListNotUnbounded) {
  // Sequential schedule/fire cycles must recycle a handful of slots, not
  // grow state per event: after a million one-at-a-time events, pending
  // accounting still works and new ids stay cancellable.
  EventLoop loop;
  uint64_t fired = 0;
  for (int i = 0; i < 1'000'000; ++i) {
    loop.ScheduleAfter(1, [&fired] { ++fired; });
    loop.RunAll();
  }
  EXPECT_EQ(fired, 1'000'000u);
  const EventId id = loop.ScheduleAfter(5, [] {});
  EXPECT_EQ(loop.PendingEvents(), 1u);
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_EQ(loop.PendingEvents(), 0u);
}

}  // namespace
}  // namespace dcg::sim
