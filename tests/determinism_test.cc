// Simulator determinism regression: a given seed must produce a
// bit-identical run — same period rows, same staleness series, same
// replication counters, same final database fingerprints — no matter how
// many times it executes. Any hidden nondeterminism (map iteration order,
// wall-clock reads, uninitialised state) breaks every paper figure, so
// this is a tier-1 gate.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "exp/experiment.h"
#include "fault/fault_injector.h"

namespace dcg {
namespace {

exp::ExperimentConfig SmallConfig(uint64_t seed) {
  exp::ExperimentConfig config;
  config.seed = seed;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 10, 0.95}};
  config.duration = sim::Seconds(60);
  config.warmup = sim::Seconds(20);
  config.run_s_workload = true;
  return config;
}

// Everything observable about a finished run, serialised byte-for-byte.
std::string RunTrace(const exp::ExperimentConfig& config) {
  exp::Experiment experiment(config);
  experiment.Run();

  std::ostringstream trace;
  for (const auto& row : experiment.rows()) {
    trace << row.start << ' ' << row.end << ' ' << row.reads << ' '
          << row.reads_secondary << ' ' << row.writes << ' '
          << row.balance_fraction << ' ' << row.est_staleness_max_s << ' '
          << row.read_latency.count() << ' ' << row.read_latency.max()
          << '\n';
  }
  for (const auto& point : experiment.staleness_series()) {
    trace << point.at << ' ' << point.estimate_s << ' ' << point.true_max_s
          << '\n';
  }
  for (const auto& [at, staleness] : experiment.s_samples()) {
    trace << at << ' ' << staleness << '\n';
  }
  auto& rs = experiment.replica_set();
  trace << rs.committed_writes() << ' ' << rs.majority_writes_acked() << ' '
        << rs.elections() << ' ' << rs.pull_restarts() << ' '
        << experiment.network().messages_delivered() << ' '
        << experiment.network().messages_dropped() << '\n';
  for (int i = 0; i < rs.node_count(); ++i) {
    trace << rs.node(i).db().Fingerprint() << '\n';
  }
  for (const std::string& line : experiment.fault_injector().log()) {
    trace << line << '\n';
  }
  return trace.str();
}

TEST(DeterminismTest, SameSeedSameTrace) {
  const std::string first = RunTrace(SmallConfig(42));
  const std::string second = RunTrace(SmallConfig(42));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, DifferentSeedsDifferentTraces) {
  EXPECT_NE(RunTrace(SmallConfig(42)), RunTrace(SmallConfig(43)));
}

// Fault injection must not introduce nondeterminism: packet drops and
// watchdog restarts consume RNG draws, but always the same ones.
TEST(DeterminismTest, SameSeedSameTraceUnderFaults) {
  auto config = SmallConfig(42);
  config.run_s_workload = false;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultSpec(
      "loss@25-40:node=1:p=0.3;partition@42-50:nodes=2;"
      "latency@30-45:node=0:ms=5:x=2",
      &config.faults, &error))
      << error;
  const std::string first = RunTrace(config);
  const std::string second = RunTrace(config);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, TpccSameSeedSameTrace) {
  auto config = SmallConfig(7);
  config.kind = exp::WorkloadKind::kTpcc;
  config.tpcc.warehouses = 2;
  config.run_s_workload = false;
  const std::string first = RunTrace(config);
  const std::string second = RunTrace(config);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dcg
