// Simulator determinism regression: a given seed must produce a
// bit-identical run — same period rows, same staleness series, same
// replication counters, same final database fingerprints — no matter how
// many times it executes. Any hidden nondeterminism (map iteration order,
// wall-clock reads, uninitialised state) breaks every paper figure, so
// this is a tier-1 gate.

#include <gtest/gtest.h>

#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "exp/experiment.h"
#include "fault/fault_injector.h"
#include "shard/sharded_cluster.h"

namespace dcg {
namespace {

exp::ExperimentConfig SmallConfig(uint64_t seed) {
  exp::ExperimentConfig config;
  config.seed = seed;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 10, 0.95}};
  config.duration = sim::Seconds(60);
  config.warmup = sim::Seconds(20);
  config.run_s_workload = true;
  return config;
}

// Everything observable about a finished run, serialised byte-for-byte.
std::string RunTrace(const exp::ExperimentConfig& config) {
  exp::Experiment experiment(config);
  experiment.Run();

  std::ostringstream trace;
  for (const auto& row : experiment.rows()) {
    trace << row.start << ' ' << row.end << ' ' << row.reads << ' '
          << row.reads_secondary << ' ' << row.writes << ' '
          << row.balance_fraction << ' ' << row.est_staleness_max_s << ' '
          << row.read_latency.count() << ' ' << row.read_latency.max()
          << '\n';
  }
  for (const auto& point : experiment.staleness_series()) {
    trace << point.at << ' ' << point.estimate_s << ' ' << point.true_max_s
          << '\n';
  }
  for (const auto& [at, staleness] : experiment.s_samples()) {
    trace << at << ' ' << staleness << '\n';
  }
  auto& rs = experiment.replica_set();
  trace << rs.committed_writes() << ' ' << rs.majority_writes_acked() << ' '
        << rs.elections() << ' ' << rs.pull_restarts() << ' '
        << experiment.network().messages_delivered() << ' '
        << experiment.network().messages_dropped() << '\n';
  for (int i = 0; i < rs.node_count(); ++i) {
    trace << rs.node(i).db().Fingerprint() << '\n';
  }
  for (const std::string& line : experiment.fault_injector().log()) {
    trace << line << '\n';
  }
  return trace.str();
}

// FNV-1a over the serialised trace: a stable fingerprint of an entire run.
uint64_t TraceHash(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Golden fingerprints captured after the wire-protocol command layer
// landed: drivers now speak typed commands (find/write/hello/ping) over
// the network, with hello-based topology discovery and command-layer RTT
// probes, so the message traffic — and therefore the trace — differs
// from the pre-command-layer goldens by design. Perf-only changes (the
// slab event loop, compiled doc::Path, top-k sorts) must NOT move these:
// (time, seq) firing order and query semantics are part of the contract.
// If an intentional semantic change moves them, re-capture with the
// printed values; do NOT update them for a perf-only change.
constexpr uint64_t kGoldenHealthyTrace = 15816859704616948799ull;
constexpr uint64_t kGoldenFaultTrace = 2929023567320043130ull;

TEST(DeterminismTest, TraceMatchesGoldenFingerprint) {
  const uint64_t h = TraceHash(RunTrace(SmallConfig(42)));
  std::cout << "healthy trace hash: " << h << "ull\n";
  if (kGoldenHealthyTrace == 0) {
    GTEST_SKIP() << "golden hash not yet recorded";
  }
  EXPECT_EQ(h, kGoldenHealthyTrace);
}

TEST(DeterminismTest, FaultTraceMatchesGoldenFingerprint) {
  auto config = SmallConfig(42);
  config.run_s_workload = false;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultSpec(
      "loss@25-40:node=1:p=0.3;partition@42-50:nodes=2;"
      "latency@30-45:node=0:ms=5:x=2",
      &config.faults, &error))
      << error;
  const uint64_t h = TraceHash(RunTrace(config));
  std::cout << "fault trace hash: " << h << "ull\n";
  if (kGoldenFaultTrace == 0) {
    GTEST_SKIP() << "golden hash not yet recorded";
  }
  EXPECT_EQ(h, kGoldenFaultTrace);
}

TEST(DeterminismTest, SameSeedSameTrace) {
  const std::string first = RunTrace(SmallConfig(42));
  const std::string second = RunTrace(SmallConfig(42));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, DifferentSeedsDifferentTraces) {
  EXPECT_NE(RunTrace(SmallConfig(42)), RunTrace(SmallConfig(43)));
}

// Fault injection must not introduce nondeterminism: packet drops and
// watchdog restarts consume RNG draws, but always the same ones.
TEST(DeterminismTest, SameSeedSameTraceUnderFaults) {
  auto config = SmallConfig(42);
  config.run_s_workload = false;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultSpec(
      "loss@25-40:node=1:p=0.3;partition@42-50:nodes=2;"
      "latency@30-45:node=0:ms=5:x=2",
      &config.faults, &error))
      << error;
  const std::string first = RunTrace(config);
  const std::string second = RunTrace(config);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// The connection-pool layer at default settings must be invisible: the
// golden-fingerprint tests above prove that (they pre-date the pool).
// With the pool *constrained* — queueing, establishment costs, wait-queue
// timeouts, a pool_clear fault — runs must still be bit-identical per
// seed: the pool draws no randomness and schedules deterministically.
TEST(DeterminismTest, SameSeedSameTraceWithConstrainedPool) {
  auto config = SmallConfig(42);
  config.run_s_workload = false;
  config.client_options.pool.max_pool_size = 3;
  config.client_options.pool.establish_cost = sim::Millis(1);
  config.client_options.pool.wait_queue_timeout = sim::Millis(250);
  config.client_options.pool.min_pool_size = 1;
  config.client_options.pool.max_idle_time = sim::Seconds(5);
  std::string error;
  ASSERT_TRUE(fault::ParseFaultSpec("pool_clear@30:nodes=0+1+2",
                                    &config.faults, &error))
      << error;
  const std::string first = RunTrace(config);
  const std::string second = RunTrace(config);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// Raft elections route heartbeats, vote requests, catch-up, and rollback
// resyncs through the event loop and per-node RNG forks; a primary crash
// exercises all of them. Replays must still be bit-identical per seed.
TEST(DeterminismTest, SameSeedSameTraceWithRaftElections) {
  auto config = SmallConfig(42);
  config.run_s_workload = false;
  config.repl.raft_elections = true;
  config.repl.election_timeout = sim::Seconds(3);
  std::string error;
  ASSERT_TRUE(fault::ParseFaultSpec("crash@25:node=0;restart@45:node=0",
                                    &config.faults, &error))
      << error;
  const std::string first = RunTrace(config);
  const std::string second = RunTrace(config);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The run actually elected: a trivially quiet trace proves nothing.
  exp::Experiment probe(config);
  probe.Run();
  EXPECT_GE(probe.replica_set().elections(), 1u);
  EXPECT_GE(probe.replica_set().stepdowns(), 0u);
}

// The raft code path must be completely inert when disabled: the golden
// fingerprints above were captured before the TopologyCoordinator
// existed, so their continued match is the real regression. This spells
// the contract out against an explicit raft_elections=false config in
// case the default ever flips.
TEST(DeterminismTest, ElectionsDisabledReplayMatchesGolden) {
  auto config = SmallConfig(42);
  config.repl.raft_elections = false;
  const uint64_t h = TraceHash(RunTrace(config));
  if (kGoldenHealthyTrace == 0) {
    GTEST_SKIP() << "golden hash not yet recorded";
  }
  EXPECT_EQ(h, kGoldenHealthyTrace);
}

// Same contract for command batching: with batching_enabled=false the
// driver's send path must schedule no extra events and draw no
// randomness, so traces recorded before the envelope layer existed keep
// replaying bit-identically. Spelled out against an explicit false in
// case the default ever flips.
TEST(DeterminismTest, BatchingDisabledReplayMatchesGolden) {
  auto config = SmallConfig(42);
  config.client_options.batching_enabled = false;
  const uint64_t h = TraceHash(RunTrace(config));
  if (kGoldenHealthyTrace == 0) {
    GTEST_SKIP() << "golden hash not yet recorded";
  }
  EXPECT_EQ(h, kGoldenHealthyTrace);
}

// With batching on the trace differs from the unbatched golden (ops
// coalesce, costs amortise) but must still be a pure function of the
// seed: flush timers and envelope bookkeeping draw no randomness.
TEST(DeterminismTest, SameSeedSameTraceWithBatching) {
  auto config = SmallConfig(42);
  config.run_s_workload = false;
  config.client_options.batching_enabled = true;
  config.client_options.batch_max_ops = 8;
  config.client_options.batch_max_delay = sim::Micros(200);
  const std::string first = RunTrace(config);
  const std::string second = RunTrace(config);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- sharded mode ---------------------------------------------------------
//
// A sharded run routes everything through the mongos (shard::Router):
// per-shard replica sets, a versioned chunk map, per-shard balancers
// joined to one StalenessBudget. None of that may draw hidden
// randomness. The trace serialises per-period rows (including the
// per-shard columns), the staleness series, router counters, per-shard
// replication counters, and every node's database fingerprint.

exp::ExperimentConfig ShardedSmallConfig(uint64_t seed) {
  exp::ExperimentConfig config = SmallConfig(seed);
  config.shards = 2;
  return config;
}

std::string ShardedRunTrace(const exp::ExperimentConfig& config) {
  exp::Experiment experiment(config);
  experiment.Run();

  std::ostringstream trace;
  for (const auto& row : experiment.rows()) {
    trace << row.start << ' ' << row.end << ' ' << row.reads << ' '
          << row.reads_secondary << ' ' << row.writes << ' '
          << row.balance_fraction << ' ' << row.est_staleness_max_s << ' '
          << row.read_latency.count() << ' ' << row.read_latency.max();
    for (size_t s = 0; s < row.shard_balance_fraction.size(); ++s) {
      trace << ' ' << row.shard_reads[s] << ' '
            << row.shard_balance_fraction[s];
    }
    trace << '\n';
  }
  for (const auto& point : experiment.staleness_series()) {
    trace << point.at << ' ' << point.estimate_s << ' ' << point.true_max_s
          << '\n';
  }
  for (const auto& [at, staleness] : experiment.s_samples()) {
    trace << at << ' ' << staleness << '\n';
  }
  shard::ShardedCluster* cluster = experiment.sharded_cluster();
  shard::Router& router = cluster->router();
  trace << router.commands_served() << ' ' << router.routed_reads() << ' '
        << router.routed_writes() << ' ' << router.stale_refreshes() << ' '
        << experiment.network().messages_delivered() << ' '
        << experiment.network().messages_dropped() << '\n';
  for (int s = 0; s < cluster->shard_count(); ++s) {
    auto& rs = cluster->shard(s);
    trace << rs.committed_writes() << ' ' << rs.majority_writes_acked()
          << ' ' << rs.pull_restarts() << '\n';
    for (int i = 0; i < rs.node_count(); ++i) {
      trace << rs.node(i).db().Fingerprint() << '\n';
    }
  }
  return trace.str();
}

// Captured when the sharded mode landed. Same contract as the unsharded
// goldens: re-capture only for an intentional semantic change.
constexpr uint64_t kGoldenShardedTrace = 7522357553552555326ull;

TEST(DeterminismTest, ShardedTraceMatchesGoldenFingerprint) {
  const uint64_t h = TraceHash(ShardedRunTrace(ShardedSmallConfig(42)));
  std::cout << "sharded trace hash: " << h << "ull\n";
  if (kGoldenShardedTrace == 0) {
    GTEST_SKIP() << "golden hash not yet recorded";
  }
  EXPECT_EQ(h, kGoldenShardedTrace);
}

TEST(DeterminismTest, ShardedSameSeedSameTrace) {
  const std::string first = ShardedRunTrace(ShardedSmallConfig(42));
  const std::string second = ShardedRunTrace(ShardedSmallConfig(42));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, ShardedDifferentSeedsDifferentTraces) {
  EXPECT_NE(ShardedRunTrace(ShardedSmallConfig(42)),
            ShardedRunTrace(ShardedSmallConfig(43)));
}

TEST(DeterminismTest, TpccSameSeedSameTrace) {
  auto config = SmallConfig(7);
  config.kind = exp::WorkloadKind::kTpcc;
  config.tpcc.warehouses = 2;
  config.run_s_workload = false;
  const std::string first = RunTrace(config);
  const std::string second = RunTrace(config);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dcg
