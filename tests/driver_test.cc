// Tests for the client driver: node selection per Read Preference, the
// latency window, maxStalenessSeconds filtering, and end-to-end reads.

#include <memory>

#include <gtest/gtest.h>

#include "driver/client.h"
#include "repl/replica_set.h"

namespace dcg::driver {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  void Build(ClientOptions options = {}, int secondaries = 2) {
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    client_host_ = network_->AddHost("client");
    repl::ReplicaSetParams params;
    params.secondaries = secondaries;
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    std::vector<net::HostId> hosts;
    for (int i = 0; i <= secondaries; ++i) {
      hosts.push_back(network_->AddHost("n" + std::to_string(i)));
    }
    // Client is nearest to node 1; node 0 (primary) is further away.
    network_->SetLink(client_host_, hosts[0], sim::Millis(2), 0);
    for (int i = 1; i <= secondaries; ++i) {
      network_->SetLink(client_host_, hosts[i], sim::Millis(i), 0);
    }
    rs_ = std::make_unique<repl::ReplicaSet>(&loop_, sim::Rng(2),
                                             network_.get(), params,
                                             server_params, hosts);
    client_ = std::make_unique<MongoClient>(&loop_, sim::Rng(3),
                                            rs_->command_bus(), client_host_,
                                            options);
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  net::HostId client_host_;
  std::unique_ptr<repl::ReplicaSet> rs_;
  std::unique_ptr<MongoClient> client_;
};

TEST_F(DriverTest, PrimaryPreferenceAlwaysSelectsPrimary) {
  Build();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(client_->SelectNode(ReadPreference::kPrimary), 0);
    EXPECT_EQ(client_->SelectNode(ReadPreference::kPrimaryPreferred), 0);
  }
}

TEST_F(DriverTest, SecondaryPreferenceSpreadsOverSecondaries) {
  Build();
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) {
    const int node = client_->SelectNode(ReadPreference::kSecondary);
    ASSERT_GE(node, 1);
    ASSERT_LE(node, 2);
    ++counts[node];
  }
  // Both secondaries are inside the 15 ms window -> roughly uniform.
  EXPECT_GT(counts[1], 1200);
  EXPECT_GT(counts[2], 1200);
}

TEST_F(DriverTest, LatencyWindowExcludesSlowSecondaries) {
  ClientOptions options;
  options.selection_latency_window = sim::Millis(15);
  Build(options);
  // Make secondary 2 much slower than secondary 1 and re-probe.
  network_->SetLink(client_host_, rs_->node(2).host(), sim::Millis(40), 0);
  client_->Start();
  loop_.RunUntil(sim::Seconds(30));  // EWMA converges to the new RTT
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(client_->SelectNode(ReadPreference::kSecondary), 1);
  }
}

TEST_F(DriverTest, NearestPicksLowestRtt) {
  Build();
  client_->Start();
  loop_.RunUntil(sim::Seconds(5));
  // Node 1 has the 1 ms link; primary has 2 ms.
  EXPECT_EQ(client_->SelectNode(ReadPreference::kNearest), 1);
}

TEST_F(DriverTest, RttEstimatesConvergeToBaseRtt) {
  Build();
  client_->Start();
  loop_.RunUntil(sim::Seconds(20));
  EXPECT_NEAR(static_cast<double>(client_->RttEstimate(0)),
              static_cast<double>(sim::Millis(2)),
              static_cast<double>(sim::Micros(100)));
  EXPECT_NEAR(static_cast<double>(client_->RttEstimate(1)),
              static_cast<double>(sim::Millis(1)),
              static_cast<double>(sim::Micros(100)));
}

TEST_F(DriverTest, ReadRoundTripMeasuresEndToEndLatency) {
  Build();
  bool done = false;
  client_->Read(
      ReadPreference::kPrimary, server::OpClass::kPointRead,
      [](const store::Database&) {},
      [&](const MongoClient::ReadResult& r) {
        done = true;
        EXPECT_EQ(r.node, 0);
        EXPECT_FALSE(r.used_secondary);
        // RTT (2 ms) + service (3.5 ms default point read).
        EXPECT_EQ(r.latency, sim::Millis(2) + sim::Millis(3.5));
      });
  loop_.RunAll();
  EXPECT_TRUE(done);
}

TEST_F(DriverTest, SecondaryReadFlagsUsedSecondary) {
  Build();
  bool done = false;
  client_->Read(
      ReadPreference::kSecondary, server::OpClass::kPointRead,
      [](const store::Database&) {},
      [&](const MongoClient::ReadResult& r) {
        done = true;
        EXPECT_GE(r.node, 1);
        EXPECT_TRUE(r.used_secondary);
      });
  loop_.RunAll();
  EXPECT_TRUE(done);
}

TEST_F(DriverTest, WriteCommitsOnPrimaryAndReportsLatency) {
  Build();
  bool done = false;
  client_->Write(
      server::OpClass::kInsert,
      [](repl::TxnContext* ctx) {
        ctx->Insert("t", doc::Value::Doc({{"_id", 1}}));
      },
      [&](const MongoClient::WriteResult& r) {
        done = true;
        EXPECT_TRUE(r.committed);
        EXPECT_EQ(r.latency, sim::Millis(2) + sim::Millis(5));
      });
  loop_.RunAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(rs_->committed_writes(), 1u);
}

TEST_F(DriverTest, ServerStatusRoundTrip) {
  Build();
  bool got = false;
  client_->ServerStatus([&](const repl::ReplicaSet::ServerStatusReply& r) {
    got = true;
    EXPECT_EQ(r.secondary_last_applied.size(), 2u);
  });
  loop_.RunAll();
  EXPECT_TRUE(got);
}

TEST_F(DriverTest, MaxStalenessFiltersStaleSecondaries) {
  ClientOptions options;
  options.max_staleness_seconds = 2;
  Build(options);
  client_->Start();
  rs_->Start();

  // A long getMore stall makes both secondaries stale.
  rs_->primary().server().AddDirtyBytes(1'000'000'000);
  for (int i = 0; i < 400; ++i) {
    loop_.ScheduleAt(sim::Millis(250) * i, [this, i] {
      rs_->WriteTransaction(
          server::OpClass::kInsert,
          [i](repl::TxnContext* ctx) {
            ctx->Insert("t", doc::Value::Doc({{"_id", i}}));
          },
          nullptr);
    });
  }
  // Force a checkpoint long enough to block replication.
  loop_.RunUntil(sim::Seconds(70));
  if (rs_->MaxTrueStaleness() > sim::Seconds(3)) {
    // Secondaries are stale beyond the bound: selection falls back to
    // the primary.
    EXPECT_EQ(client_->SelectNode(ReadPreference::kSecondary), 0);
  }
  // After replication catches up, secondaries become eligible again.
  loop_.RunUntil(sim::Seconds(140));
  EXPECT_GE(client_->SelectNode(ReadPreference::kSecondary), 1);
}

TEST_F(DriverTest, EnforcedMongoMinimumStalenessAborts) {
  ClientOptions options;
  options.max_staleness_seconds = 10;  // < 90
  options.enforce_mongodb_min_staleness = true;
  EXPECT_DEATH(Build(options), "maxStalenessSeconds");
}

TEST_F(DriverTest, PrimaryPreferredFallsBackWhenPrimaryDies) {
  Build();
  client_->Start();
  rs_->Start();
  loop_.RunUntil(sim::Seconds(1));
  EXPECT_EQ(client_->SelectNode(ReadPreference::kPrimaryPreferred), 0);
  rs_->KillNode(0);
  // The driver notices the dead primary once its hellos go unanswered —
  // well before the election resolves (5 s timeout). primaryPreferred
  // reads then fall back to a live secondary instead of erroring out.
  loop_.RunUntil(sim::Seconds(3));
  EXPECT_FALSE(client_->NodeReachable(0));
  const int node = client_->SelectNode(ReadPreference::kPrimaryPreferred);
  EXPECT_GE(node, 1);
  EXPECT_TRUE(rs_->IsAlive(node));
  // kPrimary, by contrast, has no server to select.
  EXPECT_EQ(client_->SelectNode(ReadPreference::kPrimary),
            MongoClient::kNoNode);
}

TEST_F(DriverTest, ToStringCoversAllPreferences) {
  EXPECT_EQ(ToString(ReadPreference::kPrimary), "primary");
  EXPECT_EQ(ToString(ReadPreference::kPrimaryPreferred), "primaryPreferred");
  EXPECT_EQ(ToString(ReadPreference::kSecondary), "secondary");
  EXPECT_EQ(ToString(ReadPreference::kSecondaryPreferred),
            "secondaryPreferred");
  EXPECT_EQ(ToString(ReadPreference::kNearest), "nearest");
  EXPECT_TRUE(PrefersSecondary(ReadPreference::kSecondary));
  EXPECT_TRUE(PrefersSecondary(ReadPreference::kSecondaryPreferred));
  EXPECT_FALSE(PrefersSecondary(ReadPreference::kPrimary));
}

}  // namespace
}  // namespace dcg::driver
