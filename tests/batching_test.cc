// Tests for driver-side command batching: size / delay / deadline flush
// triggers, per-node buffer isolation, composition with a constrained
// connection pool, rider retry after an envelope checkout timeout, and
// retryable-write dedup when a batched write's acknowledgement is lost.

#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "driver/client.h"
#include "proto/command.h"
#include "repl/replica_set.h"

namespace dcg::driver {
namespace {

class BatchingTest : public ::testing::Test {
 protected:
  void Build(ClientOptions options = {}, int secondaries = 2) {
    options.batching_enabled = true;
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    client_host_ = network_->AddHost("client");
    repl::ReplicaSetParams params;
    params.secondaries = secondaries;
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    hosts_.clear();
    for (int i = 0; i <= secondaries; ++i) {
      hosts_.push_back(network_->AddHost("n" + std::to_string(i)));
      network_->SetLink(client_host_, hosts_[i], sim::Millis(1), 0);
    }
    rs_ = std::make_unique<repl::ReplicaSet>(&loop_, sim::Rng(2),
                                             network_.get(), params,
                                             server_params, hosts_);
    client_ = std::make_unique<MongoClient>(&loop_, sim::Rng(3),
                                            rs_->command_bus(), client_host_,
                                            options);
  }

  void IssueRead(ReadPreference pref, std::vector<int>* nodes,
                 OpOptions opts = {}) {
    client_->Read(
        pref, server::OpClass::kPointRead, [](const store::Database&) {},
        [nodes](const MongoClient::ReadResult& r) {
          EXPECT_TRUE(r.ok);
          nodes->push_back(r.node);
        },
        opts);
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  net::HostId client_host_;
  std::vector<net::HostId> hosts_;
  std::unique_ptr<repl::ReplicaSet> rs_;
  std::unique_ptr<MongoClient> client_;
};

TEST_F(BatchingTest, SizeTriggerFlushesWithoutWaitingForDelay) {
  ClientOptions options;
  options.batch_max_ops = 4;
  options.batch_max_delay = sim::Millis(50);  // must never matter here
  Build(options);
  std::vector<int> nodes;
  for (int i = 0; i < 4; ++i) IssueRead(ReadPreference::kPrimary, &nodes);
  // The fourth enqueue filled the batch: it is on the wire already.
  EXPECT_EQ(client_->buffered_op_count(), 0u);
  EXPECT_EQ(client_->op_counters().envelopes_sent, 1u);
  loop_.RunAll();
  ASSERT_EQ(nodes.size(), 4u);
  // All four completed long before the 50 ms delay trigger could fire.
  EXPECT_LT(loop_.Now(), sim::Millis(50));
  EXPECT_EQ(client_->op_counters().ops_batched, 4u);
  EXPECT_EQ(client_->batch_occupancy().max(), 4.0);
  EXPECT_EQ(client_->pending_op_count(), 0u);
}

TEST_F(BatchingTest, DelayTriggerFlushesAPartialBatch) {
  ClientOptions options;
  options.batch_max_ops = 16;
  options.batch_max_delay = sim::Micros(200);
  Build(options);
  std::vector<int> nodes;
  IssueRead(ReadPreference::kPrimary, &nodes);
  IssueRead(ReadPreference::kPrimary, &nodes);
  // Two of sixteen: the batch is parked on the flush timer.
  EXPECT_EQ(client_->buffered_op_count(), 2u);
  EXPECT_EQ(client_->op_counters().envelopes_sent, 0u);
  loop_.RunAll();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(client_->op_counters().envelopes_sent, 1u);
  EXPECT_EQ(client_->op_counters().ops_batched, 2u);
  EXPECT_EQ(client_->buffered_op_count(), 0u);
}

TEST_F(BatchingTest, PartialBatchLatencyIncludesTheFlushDelay) {
  ClientOptions options;
  options.batch_max_ops = 16;
  options.batch_max_delay = sim::Micros(200);
  Build(options);
  sim::Duration latency = 0;
  client_->Read(
      ReadPreference::kPrimary, server::OpClass::kPointRead,
      [](const store::Database&) {},
      [&](const MongoClient::ReadResult& r) {
        EXPECT_TRUE(r.ok);
        latency = r.latency;
      });
  loop_.RunAll();
  // A lone op waits the whole flush delay before it touches the wire.
  EXPECT_GE(latency, sim::Micros(200));
}

TEST_F(BatchingTest, BuffersArePerNode) {
  ClientOptions options;
  options.batch_max_ops = 2;
  options.batch_max_delay = sim::Millis(50);
  Build(options, /*secondaries=*/1);  // exactly one secondary: node 1
  std::vector<int> primary_nodes;
  std::vector<int> secondary_nodes;
  // Interleave: same-target ops must coalesce, different targets must
  // not. With batch_max_ops=2 each node's pair flushes on size.
  IssueRead(ReadPreference::kPrimary, &primary_nodes);
  IssueRead(ReadPreference::kSecondary, &secondary_nodes);
  EXPECT_EQ(client_->op_counters().envelopes_sent, 0u);  // both parked
  IssueRead(ReadPreference::kPrimary, &primary_nodes);
  EXPECT_EQ(client_->op_counters().envelopes_sent, 1u);  // node 0 flushed
  IssueRead(ReadPreference::kSecondary, &secondary_nodes);
  EXPECT_EQ(client_->op_counters().envelopes_sent, 2u);  // node 1 flushed
  loop_.RunAll();
  ASSERT_EQ(primary_nodes.size(), 2u);
  ASSERT_EQ(secondary_nodes.size(), 2u);
  EXPECT_EQ(primary_nodes, (std::vector<int>{0, 0}));
  EXPECT_EQ(secondary_nodes, (std::vector<int>{1, 1}));
  EXPECT_EQ(client_->op_counters().ops_batched, 4u);
  EXPECT_EQ(client_->batch_occupancy().max(), 2.0);
}

TEST_F(BatchingTest, ImminentDeadlineForcesAnImmediateFlush) {
  ClientOptions options;
  options.batch_max_ops = 16;
  options.batch_max_delay = sim::Millis(50);
  Build(options);
  OpOptions opts;
  opts.deadline = sim::Millis(8);  // inside the 50 ms flush window
  sim::Time done_at = -1;
  client_->Read(
      ReadPreference::kPrimary, server::OpClass::kPointRead,
      [](const store::Database&) {},
      [&](const MongoClient::ReadResult& r) {
        done_at = loop_.Now();
        EXPECT_TRUE(r.ok);
        EXPECT_FALSE(r.timed_out);
      },
      opts);
  // Flushed synchronously: waiting out the 50 ms delay would blow the
  // 8 ms maxTimeMS while the op sat client-side.
  EXPECT_EQ(client_->buffered_op_count(), 0u);
  EXPECT_EQ(client_->op_counters().envelopes_sent, 1u);
  loop_.RunAll();
  ASSERT_GE(done_at, 0);
  EXPECT_LT(done_at, sim::Millis(8));
}

TEST_F(BatchingTest, ComposesWithAConstrainedPool) {
  ClientOptions options;
  options.batch_max_ops = 4;
  options.batch_max_delay = sim::Micros(200);
  options.pool.max_pool_size = 1;
  Build(options);
  std::vector<int> nodes;
  for (int i = 0; i < 10; ++i) IssueRead(ReadPreference::kPrimary, &nodes);
  loop_.RunAll();
  ASSERT_EQ(nodes.size(), 10u);
  // 10 ops through batches of 4: two size flushes + one delay flush, each
  // riding exactly one checkout through the single-connection pool.
  EXPECT_EQ(client_->op_counters().envelopes_sent, 3u);
  EXPECT_EQ(client_->op_counters().ops_batched, 10u);
  EXPECT_EQ(client_->op_counters().checkouts, 3u);
  EXPECT_EQ(client_->node_pool(0).stats().checkouts, 3u);
  EXPECT_LE(client_->node_pool(0).total_connections(), 1);
  EXPECT_EQ(client_->node_pool(0).stale_handouts(), 0u);
  // Every shared connection was settled: nothing leaked.
  EXPECT_EQ(client_->PoolCheckedOut(), 0);
  EXPECT_EQ(client_->PoolQueueDepth(), 0);
  EXPECT_EQ(client_->buffered_op_count(), 0u);
  EXPECT_EQ(client_->pending_op_count(), 0u);
}

TEST_F(BatchingTest, EnvelopeCheckoutTimeoutRetriesEveryRiderExactlyOnce) {
  ClientOptions options;
  options.batch_max_ops = 3;
  options.batch_max_delay = sim::Micros(200);
  options.retry_backoff_base = sim::Millis(2);
  options.pool.max_pool_size = 1;
  options.pool.wait_queue_timeout = sim::Millis(5);
  Build(options);
  // Hold the node-0 pool's only connection so the envelope's shared
  // checkout sits in the wait queue until it times out.
  uint64_t held = 0;
  client_->node_pool(0).CheckOut(
      [&](const pool::ConnectionPool::Checkout& co) {
        ASSERT_TRUE(co.ok);
        held = co.conn_id;
      });
  ASSERT_NE(held, 0u);

  int read_done = 0;
  bool write_done = false;
  for (int i = 0; i < 2; ++i) {
    client_->Read(
        ReadPreference::kPrimary, server::OpClass::kPointRead,
        [](const store::Database&) {},
        [&](const MongoClient::ReadResult& r) {
          ++read_done;
          EXPECT_TRUE(r.ok);
          EXPECT_GT(r.retries, 0);
        });
  }
  client_->Write(
      server::OpClass::kInsert,
      [](repl::TxnContext* ctx) {
        ctx->Insert("t", doc::Value::Doc({{"_id", 1}}));
      },
      [&](const MongoClient::WriteResult& r) {
        write_done = true;
        EXPECT_TRUE(r.ok);
        EXPECT_TRUE(r.committed);
        EXPECT_GT(r.retries, 0);
      });
  loop_.ScheduleAt(sim::Millis(20),
                   [&] { client_->node_pool(0).CheckIn(held); });
  loop_.RunAll();
  EXPECT_EQ(read_done, 2);
  EXPECT_TRUE(write_done);
  // Each failed shared checkout counts one driver-side timeout however
  // many riders it carried.
  EXPECT_GE(client_->op_counters().checkout_timeouts, 1u);
  // The write went through the batch path and applied exactly once.
  EXPECT_EQ(rs_->committed_writes(), 1u);
  EXPECT_EQ(client_->pending_op_count(), 0u);
  EXPECT_EQ(client_->buffered_op_count(), 0u);
  EXPECT_EQ(client_->PoolCheckedOut(), 0);
}

TEST_F(BatchingTest, BatchedRetryableWriteIsNotReappliedAcrossLostAck) {
  ClientOptions options;
  options.batch_max_ops = 16;
  options.batch_max_delay = sim::Micros(200);
  options.attempt_timeout = sim::Millis(100);
  options.retry_backoff_base = sim::Millis(2);
  Build(options);
  for (int i = 0; i < 3; ++i) {
    rs_->node(i).db().GetOrCreate("t").Insert(
        doc::Value::Doc({{"_id", 1}, {"v", 0}}));
  }
  // Acks vanish until t = 250 ms: the first envelope's write commits, the
  // client retries blind, and every retry re-batches under the same op id
  // for the server's transaction table to dedup.
  net::Network::LinkFault fault;
  fault.drop_probability = 1.0;
  network_->SetLinkFault(hosts_[0], client_host_, fault);
  loop_.ScheduleAt(sim::Millis(250), [this] {
    network_->ClearLinkFault(hosts_[0], client_host_);
  });

  bool done = false;
  client_->Write(
      server::OpClass::kUpdate,
      [](repl::TxnContext* ctx) {
        doc::UpdateSpec spec;
        spec.Inc("v", doc::Value(int64_t{1}));
        ctx->Update("t", doc::Value(1), spec);
      },
      [&](const MongoClient::WriteResult& r) {
        done = true;
        EXPECT_TRUE(r.ok);
        EXPECT_TRUE(r.committed);
        EXPECT_GT(r.retries, 0);
      });
  loop_.RunAll();
  ASSERT_TRUE(done);
  // Several envelopes carried the same logical write; it applied once.
  EXPECT_GT(client_->op_counters().envelopes_sent, 1u);
  EXPECT_EQ(rs_->committed_writes(), 1u);
  EXPECT_EQ(rs_->primary()
                .db()
                .Get("t")
                ->FindById(doc::Value(1))
                ->Find("v")
                ->as_int64(),
            1);
}

}  // namespace
}  // namespace dcg::driver
