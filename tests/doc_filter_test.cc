// Tests for the query predicate language.

#include <gtest/gtest.h>

#include "doc/filter.h"

namespace dcg::doc {
namespace {

Value Sample() {
  return Value::Doc({{"_id", 7},
                     {"name", "alice"},
                     {"age", 30},
                     {"score", 2.5},
                     {"addr", Value::Doc({{"city", "sydney"}})},
                     {"tags", Value::List({1, 2, 3})}});
}

TEST(FilterTest, TrueMatchesEverything) {
  EXPECT_TRUE(Filter::True().Matches(Sample()));
  EXPECT_TRUE(Filter::True().Matches(Value::Doc({})));
}

TEST(FilterTest, Eq) {
  EXPECT_TRUE(Filter::Eq("name", Value("alice")).Matches(Sample()));
  EXPECT_FALSE(Filter::Eq("name", Value("bob")).Matches(Sample()));
  EXPECT_FALSE(Filter::Eq("missing", Value(1)).Matches(Sample()));
}

TEST(FilterTest, EqOnNestedPath) {
  EXPECT_TRUE(Filter::Eq("addr.city", Value("sydney")).Matches(Sample()));
  EXPECT_FALSE(Filter::Eq("addr.city", Value("tokyo")).Matches(Sample()));
}

TEST(FilterTest, NeRequiresPresence) {
  EXPECT_TRUE(Filter::Ne("age", Value(31)).Matches(Sample()));
  EXPECT_FALSE(Filter::Ne("age", Value(30)).Matches(Sample()));
  // Missing fields never match comparisons, including Ne.
  EXPECT_FALSE(Filter::Ne("missing", Value(1)).Matches(Sample()));
}

TEST(FilterTest, RangeComparisons) {
  EXPECT_TRUE(Filter::Lt("age", Value(31)).Matches(Sample()));
  EXPECT_FALSE(Filter::Lt("age", Value(30)).Matches(Sample()));
  EXPECT_TRUE(Filter::Lte("age", Value(30)).Matches(Sample()));
  EXPECT_TRUE(Filter::Gt("age", Value(29)).Matches(Sample()));
  EXPECT_FALSE(Filter::Gt("age", Value(30)).Matches(Sample()));
  EXPECT_TRUE(Filter::Gte("age", Value(30)).Matches(Sample()));
  EXPECT_TRUE(Filter::Lt("score", Value(3.0)).Matches(Sample()));
}

TEST(FilterTest, In) {
  EXPECT_TRUE(
      Filter::In("age", {Value(29), Value(30)}).Matches(Sample()));
  EXPECT_FALSE(
      Filter::In("age", {Value(1), Value(2)}).Matches(Sample()));
  EXPECT_FALSE(Filter::In("age", {}).Matches(Sample()));
}

TEST(FilterTest, Exists) {
  EXPECT_TRUE(Filter::Exists("name", true).Matches(Sample()));
  EXPECT_FALSE(Filter::Exists("name", false).Matches(Sample()));
  EXPECT_TRUE(Filter::Exists("missing", false).Matches(Sample()));
  EXPECT_TRUE(Filter::Exists("addr.city", true).Matches(Sample()));
}

TEST(FilterTest, AndOrNot) {
  const Filter both = Filter::And(
      {Filter::Eq("name", Value("alice")), Filter::Gt("age", Value(20))});
  EXPECT_TRUE(both.Matches(Sample()));
  const Filter contradiction = Filter::And(
      {Filter::Eq("name", Value("alice")), Filter::Gt("age", Value(40))});
  EXPECT_FALSE(contradiction.Matches(Sample()));

  const Filter either = Filter::Or(
      {Filter::Eq("name", Value("bob")), Filter::Eq("age", Value(30))});
  EXPECT_TRUE(either.Matches(Sample()));
  EXPECT_FALSE(Filter::Or({}).Matches(Sample()));
  EXPECT_TRUE(Filter::And({}).Matches(Sample()));

  EXPECT_FALSE(Filter::Not(both).Matches(Sample()));
  EXPECT_TRUE(Filter::Not(contradiction).Matches(Sample()));
}

TEST(FilterTest, EqualityValueTopLevel) {
  const Filter f = Filter::Eq("_id", Value(7));
  const Value* v = f.EqualityValue("_id");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, Value(7));
  EXPECT_EQ(f.EqualityValue("other"), nullptr);
}

TEST(FilterTest, EqualityValueInsideAnd) {
  const Filter f = Filter::And(
      {Filter::Gt("age", Value(10)), Filter::Eq("name", Value("alice"))});
  const Value* v = f.EqualityValue("name");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, Value("alice"));
}

TEST(FilterTest, EqualityValueNotThroughOrNot) {
  EXPECT_EQ(Filter::Or({Filter::Eq("a", Value(1))}).EqualityValue("a"),
            nullptr);
  EXPECT_EQ(Filter::Not(Filter::Eq("a", Value(1))).EqualityValue("a"),
            nullptr);
}

TEST(FilterTest, ToStringIsReadable) {
  const Filter f = Filter::And(
      {Filter::Eq("a", Value(1)), Filter::Not(Filter::Exists("b", true))});
  EXPECT_EQ(f.ToString(), "((a == 1) and not (b exists))");
}

TEST(FilterTest, FiltersAreShareableCopies) {
  Filter f = Filter::Eq("a", Value(1));
  Filter copy = f;  // shared immutable node
  EXPECT_TRUE(copy.Matches(Value::Doc({{"a", 1}})));
  EXPECT_TRUE(f.Matches(Value::Doc({{"a", 1}})));
}

}  // namespace
}  // namespace dcg::doc
