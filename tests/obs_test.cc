// Tests for the observability layer: span tracer mechanics, Chrome-trace
// export, the metrics registry, balancer decision reasons, and the
// end-to-end span decomposition of reads and majority writes.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "driver/client.h"
#include "metrics/histogram.h"
#include "net/network.h"
#include "obs/decision_log.h"
#include "obs/metrics_registry.h"
#include "obs/report.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "repl/replica_set.h"

namespace dcg {
namespace {

obs::SpanRecord MakeSpan(uint64_t trace, uint64_t id, uint64_t parent,
                         obs::SpanKind kind, sim::Time start, sim::Time end) {
  obs::SpanRecord span;
  span.trace_id = trace;
  span.span_id = id;
  span.parent_span_id = parent;
  span.kind = kind;
  span.start = start;
  span.end = end;
  return span;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.Record(MakeSpan(1, 1, 0, obs::SpanKind::kOp, 0, 10));
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, CapCountsDroppedInsteadOfSilentTruncation) {
  obs::Tracer tracer;
  tracer.Enable(/*max_spans=*/3);
  for (uint64_t i = 1; i <= 5; ++i) {
    tracer.Record(MakeSpan(1, i, 0, obs::SpanKind::kOp, 0, 10));
  }
  EXPECT_EQ(tracer.spans().size(), 3u);
  EXPECT_EQ(tracer.dropped(), 2u);
}

TEST(TracerTest, ClearKeepsEnabledStateAndIdCounter) {
  obs::Tracer tracer;
  tracer.Enable(16);
  const uint64_t first = tracer.NewSpanId();
  tracer.Record(MakeSpan(1, first, 0, obs::SpanKind::kOp, 0, 10));
  tracer.Clear();
  EXPECT_TRUE(tracer.enabled());
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  // Ids keep advancing across Clear so spans never collide between runs.
  EXPECT_GT(tracer.NewSpanId(), first);
}

TEST(TracerTest, ChromeTraceExportIsWellFormed) {
  obs::Tracer tracer;
  tracer.Enable(16);
  tracer.Record(MakeSpan(7, 1, 0, obs::SpanKind::kOp, sim::Millis(1),
                         sim::Millis(5)));
  tracer.Record(MakeSpan(7, 2, 1, obs::SpanKind::kAttempt, sim::Millis(1),
                         sim::Millis(5)));
  const std::string path = "obs_test_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(tracer, nullptr, path));
  const std::string json = ReadFile(path);
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"op\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"attempt\""), std::string::npos);
  // Timestamps are microseconds: 1 ms → 1000 µs.
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(DecisionLogTest, ReasonNamesAreDistinctAndStable) {
  EXPECT_EQ(obs::ToString(obs::BalanceReason::kLatencyRatioUp),
            "latency_ratio_up");
  EXPECT_EQ(obs::ToString(obs::BalanceReason::kStaleGateZero),
            "stale_gate_zero");
  // All eight names are distinct (the CSV and CLI key on them).
  std::vector<std::string> names;
  for (int r = 0; r < 8; ++r) {
    names.emplace_back(
        obs::ToString(static_cast<obs::BalanceReason>(r)));
  }
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(ControllerReasonTest, StepControllerReportsBranch) {
  core::StepController controller;
  core::BalancerConfig config;
  core::ControlInputs inputs;
  inputs.latest_fraction = 0.5;
  obs::BalanceReason reason = obs::BalanceReason::kNone;

  inputs.ratio_valid = false;
  controller.NextFraction(inputs, config, &reason);
  EXPECT_EQ(reason, obs::BalanceReason::kNoEvidence);

  inputs.ratio_valid = true;
  inputs.ratio = config.high_ratio + 0.5;
  EXPECT_DOUBLE_EQ(controller.NextFraction(inputs, config, &reason), 0.6);
  EXPECT_EQ(reason, obs::BalanceReason::kLatencyRatioUp);

  inputs.ratio = config.low_ratio - 0.25;
  EXPECT_DOUBLE_EQ(controller.NextFraction(inputs, config, &reason), 0.4);
  EXPECT_EQ(reason, obs::BalanceReason::kLatencyRatioDown);

  inputs.ratio = 1.0;  // dead band
  inputs.history_flat = true;
  EXPECT_DOUBLE_EQ(controller.NextFraction(inputs, config, &reason), 0.4);
  EXPECT_EQ(reason, obs::BalanceReason::kDownwardProbe);

  inputs.history_flat = false;
  EXPECT_DOUBLE_EQ(controller.NextFraction(inputs, config, &reason), 0.5);
  EXPECT_EQ(reason, obs::BalanceReason::kHold);

  // A null reason out-param stays legal (every existing call site).
  EXPECT_DOUBLE_EQ(controller.NextFraction(inputs, config), 0.5);
}

TEST(ControllerReasonTest, ProportionalControllerReportsBranch) {
  core::ProportionalController controller;
  core::BalancerConfig config;
  core::ControlInputs inputs;
  inputs.latest_fraction = 0.5;
  inputs.ratio_valid = true;
  obs::BalanceReason reason = obs::BalanceReason::kNone;

  inputs.ratio = 2.0;
  controller.NextFraction(inputs, config, &reason);
  EXPECT_EQ(reason, obs::BalanceReason::kLatencyRatioUp);

  inputs.ratio = 0.3;
  controller.NextFraction(inputs, config, &reason);
  EXPECT_EQ(reason, obs::BalanceReason::kLatencyRatioDown);

  inputs.ratio = 1.0;  // dead band: drift plays the probe's role
  controller.NextFraction(inputs, config, &reason);
  EXPECT_EQ(reason, obs::BalanceReason::kDownwardProbe);

  core::BalancerConfig no_probe = config;
  no_probe.downward_probe = false;
  controller.NextFraction(inputs, no_probe, &reason);
  EXPECT_EQ(reason, obs::BalanceReason::kHold);
}

TEST(MetricsRegistryTest, SamplesScalarsAndHistograms) {
  obs::MetricsRegistry registry;
  double gauge_value = 1.5;
  uint64_t counter_value = 0;
  metrics::Histogram latency;
  registry.RegisterGauge("fraction", "fraction", {},
                         [&] { return gauge_value; });
  registry.RegisterCounter("ops", "ops", {{"node", "2"}},
                           [&] { return double(counter_value); });
  registry.RegisterHistogram("latency", "ms", {{"pref", "primary"}},
                             &latency, 1.0);
  EXPECT_EQ(registry.series_count(), 3u);

  registry.Sample(sim::Seconds(1));
  gauge_value = 2.5;
  counter_value = 10;
  latency.Add(4.0);
  latency.Add(8.0);
  registry.Sample(sim::Seconds(2));
  EXPECT_EQ(registry.samples_taken(), 2u);

  const std::string path = "obs_test_metrics.json";
  ASSERT_TRUE(registry.WriteJson(path));
  const std::string json = ReadFile(path);
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"name\":\"fraction\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":\"2\""), std::string::npos);
  EXPECT_NE(json.find("\"pref\":\"primary\""), std::string::npos);
  EXPECT_NE(json.find("2.5"), std::string::npos);
}

TEST(MetricsRegistryTest, OpenMetricsExportIsWellFormed) {
  obs::MetricsRegistry registry;
  double fraction = 0.4;
  uint64_t ops = 7;
  metrics::Histogram latency;
  registry.RegisterGauge("balance fraction", "fraction", {},
                         [&] { return fraction; });
  // A label value exercising every escape: backslash, quote, newline.
  registry.RegisterCounter("ops", "ops", {{"node", "a\\b\"c\nd"}},
                           [&] { return double(ops); });
  registry.RegisterHistogram("read latency", "ms", {{"pref", "secondary"}},
                             &latency, 1.0);
  latency.Add(4.0);
  latency.Add(8.0);
  registry.Sample(sim::Seconds(10));

  const std::string path = "obs_test_metrics.om";
  ASSERT_TRUE(registry.WriteOpenMetrics(path));
  const std::string text = ReadFile(path);
  std::remove(path.c_str());

  // Metric names sanitized with the unit suffix deduplicated ("balance
  // fraction" + unit "fraction" stays balance_fraction), families
  // typed/united/helped, counter samples suffixed _total, label escapes
  // applied, EOF terminator last.
  EXPECT_NE(text.find("# TYPE balance_fraction gauge"), std::string::npos);
  EXPECT_NE(text.find("# UNIT balance_fraction fraction"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP balance_fraction"), std::string::npos);
  EXPECT_NE(text.find("balance_fraction 0.4 10.000"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ops_ops counter"), std::string::npos);
  EXPECT_NE(text.find("ops_ops_total{node=\"a\\\\b\\\"c\\nd\"} 7"),
            std::string::npos);
  // Histograms export as summaries with quantile samples + count + sum.
  EXPECT_NE(text.find("# TYPE read_latency_ms summary"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.8\""), std::string::npos);
  EXPECT_NE(text.find("read_latency_ms_count{pref=\"secondary\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("read_latency_ms_sum"), std::string::npos);
  const size_t eof = text.rfind("# EOF\n");
  ASSERT_NE(eof, std::string::npos);
  EXPECT_EQ(eof + 6, text.size());  // nothing after the terminator
}

TEST(MetricsRegistryTest, CsvExportIsLongFormat) {
  obs::MetricsRegistry registry;
  double fraction = 0.4;
  metrics::Histogram latency;
  registry.RegisterGauge("fraction", "fraction", {{"shard", "1"}},
                         [&] { return fraction; });
  registry.RegisterHistogram("latency", "ms", {}, &latency, 1.0);
  latency.Add(4.0);
  registry.Sample(sim::Seconds(10));
  fraction = 0.6;
  registry.Sample(sim::Seconds(20));

  const std::string path = "obs_test_metrics.csv";
  ASSERT_TRUE(registry.WriteCsv(path));
  const std::string csv = ReadFile(path);
  std::remove(path.c_str());

  EXPECT_EQ(csv.rfind("# units:", 0), 0u);  // units comment line first
  EXPECT_NE(csv.find("time_s,name,type,unit,labels,value"),
            std::string::npos);
  EXPECT_NE(csv.find("10.0,fraction,gauge,fraction,shard=1,0.4"),
            std::string::npos);
  EXPECT_NE(csv.find("20.0,fraction,gauge,fraction,shard=1,0.6"),
            std::string::npos);
  EXPECT_NE(csv.find("latency_count"), std::string::npos);
  EXPECT_NE(csv.find("latency_p80"), std::string::npos);
}

TEST(HtmlReportTest, RendersSelfContainedDashboard) {
  obs::ReportData data;
  data.title = "test run";
  data.subtitle = "controller x";
  data.stats.push_back({"Reads/s", "1234"});
  obs::ReportPanel panel;
  panel.title = "Read throughput";
  panel.unit = "ops/s";
  obs::ReportSeries all{"all reads", {{0, 10}, {10, 20}, {20, 15}}};
  obs::ReportSeries secondary{"secondary", {{0, 5}, {10, 12}, {20, 9}}};
  panel.series.push_back(all);
  panel.series.push_back(secondary);
  data.panels.push_back(panel);
  obs::ReportLane lane;
  lane.name = "freshness";
  lane.bands.push_back({5, 12, "page", "freshness page fired"});
  data.alert_lanes.push_back(lane);
  data.markers.push_back({8, "gate 0.40 -> 0.00"});

  const std::string path = "obs_test_report.html";
  ASSERT_TRUE(obs::WriteHtmlReport(data, path));
  const std::string html = ReadFile(path);
  std::remove(path.c_str());

  // Self-contained: no scripts, no external fetches.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  // Title, stat tile, panel with an SVG polyline per series, a legend
  // (two series), the alert band, and dark-mode CSS are all present.
  EXPECT_NE(html.find("test run"), std::string::npos);
  EXPECT_NE(html.find("1234"), std::string::npos);
  EXPECT_NE(html.find("Read throughput"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("polyline"), std::string::npos);
  EXPECT_NE(html.find("all reads"), std::string::npos);
  EXPECT_NE(html.find("freshness page fired"), std::string::npos);
  EXPECT_NE(html.find("prefers-color-scheme: dark"), std::string::npos);
}

TEST(ChromeTraceTest, SloEventsBecomeInstantMarkers) {
  obs::Tracer tracer;
  std::vector<obs::SloEvent> events;
  obs::SloEvent event;
  event.at = sim::Seconds(42);
  event.slo = "freshness";
  event.severity = obs::SloSeverity::kPage;
  event.transition = obs::SloTransition::kFiring;
  event.burn_long = 12.5;
  events.push_back(event);

  const std::string path = "obs_test_slo_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(tracer, nullptr, &events, path));
  const std::string json = ReadFile(path);
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"slo\""), std::string::npos);
  EXPECT_NE(json.find("slo freshness firing (page)"), std::string::npos);
}

/// Full-stack rig with the tracer attached, mirroring how Experiment
/// wires it (always attached, enabled on demand).
class ObsE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    repl::ReplicaSetParams params;
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    const net::HostId c = network_->AddHost("client");
    std::vector<net::HostId> hosts;
    for (int i = 0; i < 3; ++i) {
      hosts.push_back(network_->AddHost("n" + std::to_string(i)));
      network_->SetLink(c, hosts[i], sim::Millis(1), 0);
    }
    rs_ = std::make_unique<repl::ReplicaSet>(&loop_, sim::Rng(2),
                                             network_.get(), params,
                                             server_params, hosts);
    client_ = std::make_unique<driver::MongoClient>(
        &loop_, sim::Rng(3), rs_->command_bus(), c, driver::ClientOptions{});
    rs_->SetTracer(&tracer_);
    client_->SetTracer(&tracer_);
    rs_->Start();
  }

  size_t CountKind(obs::SpanKind kind) const {
    size_t n = 0;
    for (const obs::SpanRecord& s : tracer_.spans()) n += s.kind == kind;
    return n;
  }

  sim::EventLoop loop_;
  obs::Tracer tracer_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<repl::ReplicaSet> rs_;
  std::unique_ptr<driver::MongoClient> client_;
};

TEST_F(ObsE2eTest, ReadDecomposesIntoNestedSpans) {
  tracer_.Enable(1024);
  bool done = false;
  client_->Read(
      driver::ReadPreference::kPrimary, server::OpClass::kPointRead,
      [](const store::Database&) {},
      [&](const driver::MongoClient::ReadResult& r) {
        EXPECT_TRUE(r.ok);
        done = true;
      });
  loop_.RunUntil(sim::Seconds(2));
  ASSERT_TRUE(done);

  ASSERT_EQ(CountKind(obs::SpanKind::kOp), 1u);
  EXPECT_EQ(CountKind(obs::SpanKind::kAttempt), 1u);
  EXPECT_EQ(CountKind(obs::SpanKind::kCheckout), 1u);
  EXPECT_EQ(CountKind(obs::SpanKind::kWire), 2u);  // request + reply
  EXPECT_EQ(CountKind(obs::SpanKind::kServerService), 1u);

  const obs::SpanRecord* op = nullptr;
  const obs::SpanRecord* attempt = nullptr;
  for (const obs::SpanRecord& s : tracer_.spans()) {
    if (s.kind == obs::SpanKind::kOp) op = &s;
    if (s.kind == obs::SpanKind::kAttempt) attempt = &s;
  }
  ASSERT_NE(op, nullptr);
  ASSERT_NE(attempt, nullptr);
  EXPECT_EQ(op->parent_span_id, 0u);
  EXPECT_EQ(attempt->parent_span_id, op->span_id);
  for (const obs::SpanRecord& s : tracer_.spans()) {
    EXPECT_EQ(s.trace_id, op->trace_id);
    EXPECT_GE(s.start, op->start);
    if (s.kind == obs::SpanKind::kCheckout) {
      EXPECT_EQ(s.parent_span_id, attempt->span_id);
      EXPECT_LE(s.end, attempt->end);
    }
    if (s.kind == obs::SpanKind::kWire ||
        s.kind == obs::SpanKind::kServerService) {
      EXPECT_EQ(s.parent_span_id, attempt->span_id);
    }
  }
}

TEST_F(ObsE2eTest, MajorityWriteRecordsCommitWaitSpan) {
  tracer_.Enable(1024);
  bool done = false;
  client_->Write(
      server::OpClass::kInsert,
      [](repl::TxnContext* ctx) {
        ctx->Insert("t", doc::Value::Doc({{"_id", 1}}));
      },
      [&](const driver::MongoClient::WriteResult& r) {
        EXPECT_TRUE(r.committed);
        done = true;
      },
      repl::WriteConcern::kMajority);
  loop_.RunUntil(sim::Seconds(5));
  ASSERT_TRUE(done);

  ASSERT_EQ(CountKind(obs::SpanKind::kCommitWait), 1u);
  const obs::SpanRecord* op = nullptr;
  const obs::SpanRecord* commit = nullptr;
  for (const obs::SpanRecord& s : tracer_.spans()) {
    if (s.kind == obs::SpanKind::kOp) op = &s;
    if (s.kind == obs::SpanKind::kCommitWait) commit = &s;
  }
  ASSERT_NE(op, nullptr);
  ASSERT_NE(commit, nullptr);
  // The repl layer records the replication slice against the same trace.
  EXPECT_EQ(commit->trace_id, op->trace_id);
  EXPECT_GT(commit->end, commit->start);
  EXPECT_LE(commit->end, op->end);
}

TEST_F(ObsE2eTest, AttachedButDisabledTracerStaysEmpty) {
  // The Experiment attaches the tracer unconditionally; when not enabled
  // the run must record nothing (this is the bench's trace_overhead_off
  // configuration, and what keeps determinism goldens bit-identical).
  bool done = false;
  client_->Read(
      driver::ReadPreference::kNearest, server::OpClass::kPointRead,
      [](const store::Database&) {},
      [&](const driver::MongoClient::ReadResult& r) {
        EXPECT_TRUE(r.ok);
        done = true;
      });
  loop_.RunUntil(sim::Seconds(2));
  ASSERT_TRUE(done);
  EXPECT_TRUE(tracer_.spans().empty());
  EXPECT_EQ(tracer_.dropped(), 0u);
}

}  // namespace
}  // namespace dcg
