#ifndef DCG_TESTS_CHAOS_HARNESS_H_
#define DCG_TESTS_CHAOS_HARNESS_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/csv_export.h"
#include "exp/experiment.h"
#include "fault/fault_injector.h"
#include "obs/slo.h"

namespace dcg::chaos {

/// One chaos run: a YCSB-B Decongestant experiment with a fault schedule
/// applied, plus in-line invariant checkers.
struct ChaosOptions {
  uint64_t seed = 42;
  fault::FaultSchedule schedule;
  sim::Duration duration = sim::Seconds(240);
  int clients = 12;
  double read_proportion = 0.95;
  int64_t stale_bound_seconds = 10;

  /// Driver knobs for the run (deadlines, attempt timeouts, hedging) —
  /// chaos schedules that drop commands mid-flight pair these with the
  /// retry/deadline invariants.
  driver::ClientOptions client_options;

  /// Replication knobs for the run. Set `repl.raft_elections` to run the
  /// schedule against real Raft-style elections; the harness then also
  /// checks the election-safety invariants (9-10 below).
  repl::ReplicaSetParams repl;

  /// When non-empty, the run's Balancer decision log is written here as
  /// CSV (the CI election-chaos job points this at its artifact dir so a
  /// failing run ships the decisions that led up to it).
  std::string decisions_csv_path;

  /// Slack added to StaleBound for the per-read freshness invariant. The
  /// estimate pipeline lags truth by up to one serverStatus poll (1 s) +
  /// one heartbeat (0.5 s) + the whole-second flooring (1 s) + in-flight
  /// reads; 3 s covers the sum.
  sim::Duration freshness_grace = sim::Seconds(3);

  /// When true, the run must end with the Balance Fraction back above zero
  /// (cluster healed and rebalanced). Disable for schedules that end in a
  /// degraded state.
  bool expect_recovery = true;

  /// When true, assert that the fraction reaches 0 within one control
  /// period of ground-truth staleness first exceeding StaleBound. Enable
  /// for schedules that provably stall every secondary (full partition).
  bool expect_zero_within_period = false;

  /// When non-empty, a compact SLO spec (obs::ParseSloSpecs grammar, e.g.
  /// "freshness" or "default") evaluated once per report period during the
  /// run. The report then carries the alert-event log summary (first page
  /// fire time, resolution, counts) and the deterministic trace gains one
  /// line per alert transition. Empty (the default) builds no engine, so
  /// existing schedule goldens are untouched.
  std::string slo_spec;

  /// When true, enable span tracing for the run and check invariant 8:
  /// the span tree is well-formed (checkout ⊆ attempt/hedge ⊆ op, all
  /// spans of an op share its trace id, retry/hedge arms parent under the
  /// op span). Pair with a short duration — every op records ~6 spans.
  bool trace = false;
  size_t trace_max_spans = obs::Tracer::kDefaultMaxSpans;
};

struct ChaosReport {
  std::vector<std::string> violations;
  /// Deterministic run fingerprint: period rows + fault log + counters.
  /// Identical seeds/schedules must produce identical traces.
  std::string trace;

  uint64_t secondary_reads = 0;
  uint64_t total_reads = 0;
  /// Per-op outcome sums over every period row.
  uint64_t ops_ok = 0;
  uint64_t ops_timed_out = 0;
  uint64_t ops_retried = 0;
  uint64_t hedges_won = 0;
  sim::Duration worst_secondary_staleness = 0;
  double final_fraction = 0.0;
  uint64_t pull_restarts = 0;
  uint64_t elections = 0;
  uint64_t stepdowns = 0;
  uint64_t rollback_resyncs = 0;
  uint64_t balancer_primary_swaps = 0;
  uint64_t stepdown_pool_clears = 0;
  /// Envelope totals for the run — zero unless the schedule enables
  /// driver-side batching; chaos tests use them to prove invariant 10
  /// ran against a non-vacuous batched workload.
  uint64_t envelopes_sent = 0;
  uint64_t ops_batched = 0;
  /// SLO alert-event summary (all zero/-1 unless options.slo_spec set).
  uint64_t slo_event_count = 0;
  uint64_t slo_pages_fired = 0;
  uint64_t slo_tickets_fired = 0;
  /// Sim time of the first page-severity kFiring transition, -1 if none.
  sim::Time first_page_fire = -1;
  /// Sim time of the last page-severity kResolved transition, -1 if none.
  sim::Time last_page_resolve = -1;
  /// Sim time of the first secondary read served staler than the
  /// freshness SLO's bound (StaleBound when no spec is set; ground truth,
  /// before grace), -1 if none — the instant a freshness SLO first has
  /// something to alert on. Note the balancer's estimate is conservative,
  /// so the gate can close before truth ever crosses StaleBound itself;
  /// alert-conformance schedules pair a tight SLO bound with the looser
  /// safety valve.
  sim::Time first_overbound_read = -1;

  bool ok() const { return violations.empty(); }
  std::string ViolationText() const {
    std::string all;
    for (const std::string& v : violations) all += v + "\n";
    return all;
  }
};

/// Runs one chaos experiment and checks the invariants:
///   1. Freshness: no secondary-served read returns data staler than
///      StaleBound + grace (measured against the primary's lastApplied at
///      read completion — simulator ground truth, not the estimate).
///   2. Safety valve: whenever the balancer's own staleness estimate
///      exceeds StaleBound, the published Balance Fraction is exactly 0
///      (PublishFraction is synchronous with the serverStatus reply).
///   3. Reaction time (opt-in): fraction hits 0 within one control period
///      of ground truth first exceeding StaleBound.
///   4. Recovery (opt-in): fraction is back above 0 by the end of the run,
///      after every fault healed.
///   5. Drain: after stopping the clients, every in-flight operation
///      completes and (with all nodes alive) replicas converge to
///      identical fingerprints — no stuck callbacks anywhere.
///   6. Pool generation: no command ever rides a connection checked out
///      under an older pool generation than the current one (no post-clear
///      command on a pre-clear socket), on any node's pool.
///   7. Pool drain: after quiesce, every pool's wait queue is empty and
///      every connection is returned — a cleared/saturated pool recovers
///      in bounded time instead of leaking checkouts.
///   8. Span tree (opt-in via `trace`): every recorded span nests inside
///      its parent (client-closed spans fully; server-side spans may
///      outlive an abandoned attempt, so only their starts are ordered),
///      shares its parent's trace id, and hangs off the right kind of
///      parent (checkout/wire/server under an attempt or hedge arm,
///      attempt/hedge arms under the op span).
///   9. Election safety (raft mode): at every sample instant no two alive
///      members are writable primaries of the same term, and over the
///      whole run each term has at most one member that became writable
///      and at most one member that committed writes (the ReplicaSet's
///      per-term ledgers — a deposed primary's queued writes observing
///      the term change at commit time is what keeps the commit ledger
///      clean).
///  10. Batch integrity: after quiesce no operation is still sitting in a
///      driver-side coalescing buffer and none is pending at all — a
///      partition or pool clear that hit a buffered envelope must have
///      retried or failed every rider, never silently dropped one.
inline ChaosReport RunChaos(const ChaosOptions& options) {
  ChaosReport report;
  auto violation = [&report](const std::string& v) {
    report.violations.push_back(v);
  };

  exp::ExperimentConfig config;
  config.seed = options.seed;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, options.clients, options.read_proportion}};
  config.duration = options.duration;
  config.warmup = sim::Seconds(20);
  config.run_s_workload = false;  // the probe pair is not failover-aware
  config.balancer.stale_bound_seconds = options.stale_bound_seconds;
  config.client_options = options.client_options;
  config.repl = options.repl;
  config.faults = options.schedule;
  config.trace = options.trace;
  config.trace_max_spans = options.trace_max_spans;
  if (!options.slo_spec.empty()) {
    obs::SloDefaults defaults;
    defaults.stale_bound_seconds = options.stale_bound_seconds;
    std::string error;
    if (!obs::ParseSloSpecs(options.slo_spec, defaults, &config.slos,
                            &error)) {
      violation("slo: bad spec: " + error);
      return report;
    }
  }

  exp::Experiment experiment(config);
  auto& rs = experiment.replica_set();
  auto& loop = experiment.loop();

  const sim::Duration bound = sim::Seconds(
      static_cast<double>(options.stale_bound_seconds));
  const sim::Duration freshness_limit = bound + options.freshness_grace;
  sim::Duration overbound_threshold = bound;
  for (const obs::SloSpec& slo : config.slos) {
    if (slo.kind == obs::SloKind::kFreshness) {
      overbound_threshold =
          std::min(overbound_threshold, sim::Seconds(slo.bound));
    }
  }

  // --- Invariant 1: per-read ground-truth freshness. ---
  uint64_t freshness_violations = 0;
  experiment.SetOpObserver([&](const workload::OpOutcome& outcome) {
    // Failed ops (deadline exceeded / retries exhausted) carry no
    // meaningful operation_time or node — skip the freshness check.
    if (!outcome.ok) return;
    if (!outcome.read_only || !outcome.used_secondary) return;
    ++report.secondary_reads;
    const repl::OpTime primary_applied = rs.primary().last_applied();
    const sim::Duration staleness =
        std::max<sim::Duration>(0,
                                primary_applied.wall -
                                    outcome.operation_time.wall);
    report.worst_secondary_staleness =
        std::max(report.worst_secondary_staleness, staleness);
    if (staleness > overbound_threshold && report.first_overbound_read < 0) {
      report.first_overbound_read = loop.Now();
    }
    if (staleness > freshness_limit && freshness_violations++ == 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "freshness: read at t=%.3fs served %.3fs-stale data "
                    "(limit %.3fs)",
                    sim::ToSeconds(loop.Now()), sim::ToSeconds(staleness),
                    sim::ToSeconds(freshness_limit));
      violation(buf);
    }
  });

  // --- Invariants 2 & 3: sampled estimate/fraction coupling. ---
  sim::Time truth_over_bound_at = -1;
  sim::Time fraction_zero_at = -1;
  uint64_t estimate_gate_violations = 0;
  uint64_t writable_primary_violations = 0;
  std::function<void()> sample = [&] {
    const double fraction = experiment.shared_state().balance_fraction();
    const int64_t estimate =
        experiment.balancer()->staleness_estimate_seconds();
    if (estimate > options.stale_bound_seconds && fraction != 0.0 &&
        estimate_gate_violations++ == 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "gate: estimate %llds > bound %llds but fraction %.2f "
                    "at t=%.3fs",
                    static_cast<long long>(estimate),
                    static_cast<long long>(options.stale_bound_seconds),
                    fraction, sim::ToSeconds(loop.Now()));
      violation(buf);
    }
    if (truth_over_bound_at < 0 && rs.MaxTrueStaleness() > bound) {
      truth_over_bound_at = loop.Now();
    }
    if (truth_over_bound_at >= 0 && fraction_zero_at < 0 && fraction == 0.0) {
      fraction_zero_at = loop.Now();
    }
    // Invariant 9 (raft): never two concurrently writable primaries *in
    // the same term*. (A deposed primary legitimately stays writable in
    // its old term until it notices the majority moved on — Raft's
    // guarantee is per-term, enforced by the commit guard.)
    if (rs.raft_elections()) {
      for (int i = 0; i < rs.node_count(); ++i) {
        if (!rs.IsAlive(i) || !rs.coordinator(i).writable()) continue;
        for (int j = i + 1; j < rs.node_count(); ++j) {
          if (!rs.IsAlive(j) || !rs.coordinator(j).writable()) continue;
          if (rs.coordinator(i).term() == rs.coordinator(j).term() &&
              writable_primary_violations++ == 0) {
            char buf[140];
            std::snprintf(buf, sizeof(buf),
                          "election: nodes %d and %d both writable in "
                          "term %llu at t=%.3fs",
                          i, j,
                          static_cast<unsigned long long>(
                              rs.coordinator(i).term()),
                          sim::ToSeconds(loop.Now()));
            violation(buf);
          }
        }
      }
    }
    loop.ScheduleAfter(sim::Millis(250), sample);
  };
  loop.ScheduleAfter(sim::Millis(250), sample);

  experiment.Run();

  // --- Invariant 3: reaction within one control period. ---
  if (options.expect_zero_within_period) {
    if (truth_over_bound_at < 0) {
      violation("reaction: schedule never drove true staleness over "
                "StaleBound (test schedule too weak)");
    } else if (fraction_zero_at < 0) {
      violation("reaction: fraction never reached 0 after staleness "
                "exceeded StaleBound");
    } else if (fraction_zero_at - truth_over_bound_at >
               config.balancer.period) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "reaction: fraction took %.3fs to reach 0 (> one "
                    "%.0fs control period)",
                    sim::ToSeconds(fraction_zero_at - truth_over_bound_at),
                    sim::ToSeconds(config.balancer.period));
      violation(buf);
    }
  }

  // --- Invariant 4: recovery after heal. ---
  report.final_fraction = experiment.shared_state().balance_fraction();
  if (options.expect_recovery && report.final_fraction <= 0.0) {
    violation("recovery: balance fraction still 0 at end of run");
  }

  // --- Invariant 5: quiesce and drain. ---
  experiment.pool().SetTarget(0);
  loop.RunUntil(options.duration + sim::Seconds(30));
  if (experiment.pool().running() != 0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "drain: %d client slots still in flight after quiesce",
                  experiment.pool().running());
    violation(buf);
  }
  // --- Invariant 6: pool generation (no stale-generation handouts). ---
  for (int i = 0; i < rs.node_count(); ++i) {
    const uint64_t stale = experiment.client().node_pool(i).stale_handouts();
    if (stale != 0) {
      violation("pool: node " + std::to_string(i) + " handed out " +
                std::to_string(stale) + " stale-generation connections");
    }
  }
  // --- Invariant 7: pools fully drained after quiesce. ---
  if (experiment.client().PoolQueueDepth() != 0) {
    violation("pool: " + std::to_string(experiment.client().PoolQueueDepth()) +
              " checkouts still queued after quiesce");
  }
  if (experiment.client().PoolCheckedOut() != 0) {
    violation("pool: " +
              std::to_string(experiment.client().PoolCheckedOut()) +
              " connections still checked out after quiesce");
  }
  // --- Invariant 8: span tree well-formedness (opt-in via trace). ---
  if (options.trace) {
    const obs::Tracer& tracer = experiment.tracer();
    if (tracer.dropped() != 0) {
      violation("trace: " + std::to_string(tracer.dropped()) +
                " spans dropped (raise trace_max_spans)");
    }
    std::unordered_map<uint64_t, const obs::SpanRecord*> by_id;
    by_id.reserve(tracer.spans().size());
    for (const obs::SpanRecord& s : tracer.spans()) by_id[s.span_id] = &s;
    uint64_t span_violations = 0;
    auto span_violation = [&](const obs::SpanRecord& s, const char* what) {
      if (span_violations++ == 0) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "trace: span %llu (%s, trace %llu) %s",
                      static_cast<unsigned long long>(s.span_id),
                      std::string(obs::ToString(s.kind)).c_str(),
                      static_cast<unsigned long long>(s.trace_id), what);
        violation(buf);
      }
    };
    for (const obs::SpanRecord& s : tracer.spans()) {
      if (s.end < s.start) span_violation(s, "ends before it starts");
      // Roots: the op span and the repl layer's commit_wait slice.
      if (s.parent_span_id == 0) continue;
      const auto it = by_id.find(s.parent_span_id);
      if (it == by_id.end()) {
        span_violation(s, "references a parent span that was never recorded");
        continue;
      }
      const obs::SpanRecord& parent = *it->second;
      if (parent.trace_id != s.trace_id) {
        span_violation(s, "parent belongs to another trace");
        continue;
      }
      switch (s.kind) {
        case obs::SpanKind::kAttempt:
        case obs::SpanKind::kHedge:
          if (parent.kind != obs::SpanKind::kOp) {
            span_violation(s, "arm does not parent under the op span");
          }
          break;
        case obs::SpanKind::kCheckout:
        case obs::SpanKind::kWire:
        case obs::SpanKind::kServerService:
        case obs::SpanKind::kServerParking:
          if (parent.kind != obs::SpanKind::kAttempt &&
              parent.kind != obs::SpanKind::kHedge) {
            span_violation(s, "does not parent under an attempt/hedge arm");
          }
          break;
        default:
          break;
      }
      if (s.start < parent.start) span_violation(s, "starts before its parent");
      // Client-closed spans nest fully. Server-side spans of an abandoned
      // attempt may legitimately end after the client gave up on the arm,
      // so only their starts are ordered against the parent.
      const bool client_closed = s.kind == obs::SpanKind::kCheckout ||
                                 s.kind == obs::SpanKind::kAttempt ||
                                 s.kind == obs::SpanKind::kHedge;
      if (client_closed && s.end > parent.end) {
        span_violation(s, "ends after its parent");
      }
    }
  }

  // --- Invariant 9: per-term election-safety ledgers (raft mode). ---
  if (rs.raft_elections()) {
    for (const auto& [term, members] : rs.writable_by_term()) {
      if (members.size() > 1) {
        violation("election: term " + std::to_string(term) + " saw " +
                  std::to_string(members.size()) + " writable primaries");
      }
    }
    for (const auto& [term, members] : rs.commits_by_term()) {
      if (members.size() > 1) {
        violation("election: term " + std::to_string(term) + " saw " +
                  std::to_string(members.size()) + " committing members");
      }
    }
  }

  // --- Invariant 10: no op silently dropped from a buffered envelope. ---
  if (experiment.client().buffered_op_count() != 0) {
    violation("batch: " +
              std::to_string(experiment.client().buffered_op_count()) +
              " ops still sitting in coalescing buffers after quiesce");
  }
  if (experiment.client().pending_op_count() != 0) {
    violation("batch: " +
              std::to_string(experiment.client().pending_op_count()) +
              " ops still pending after quiesce (dropped completion)");
  }

  bool all_alive = true;
  for (int i = 0; i < rs.node_count(); ++i) all_alive &= rs.IsAlive(i);
  if (all_alive) {
    const uint64_t primary_fp = rs.primary().db().Fingerprint();
    for (int i = 0; i < rs.node_count(); ++i) {
      if (rs.node(i).db().Fingerprint() != primary_fp) {
        violation("drain: node " + std::to_string(i) +
                  " diverged from the primary after quiesce");
      }
    }
  }

  // --- Deterministic trace. ---
  std::string trace;
  char line[256];
  for (const auto& row : experiment.rows()) {
    std::snprintf(line, sizeof(line),
                  "t=%.0f reads=%llu sec=%llu writes=%llu frac=%.4f "
                  "est=%lld ok=%llu to=%llu retry=%llu hw=%llu\n",
                  sim::ToSeconds(row.start),
                  static_cast<unsigned long long>(row.reads),
                  static_cast<unsigned long long>(row.reads_secondary),
                  static_cast<unsigned long long>(row.writes),
                  row.balance_fraction,
                  static_cast<long long>(row.est_staleness_max_s),
                  static_cast<unsigned long long>(row.ops_ok),
                  static_cast<unsigned long long>(row.ops_timed_out),
                  static_cast<unsigned long long>(row.ops_retried),
                  static_cast<unsigned long long>(row.hedges_won));
    trace += line;
    report.total_reads += row.reads;
    report.ops_ok += row.ops_ok;
    report.ops_timed_out += row.ops_timed_out;
    report.ops_retried += row.ops_retried;
    report.hedges_won += row.hedges_won;
  }
  for (const std::string& entry : experiment.fault_injector().log()) {
    trace += entry + "\n";
  }
  if (const obs::SloEngine* engine = experiment.slo_engine();
      engine != nullptr) {
    for (const obs::SloEvent& e : engine->events()) {
      ++report.slo_event_count;
      if (e.transition == obs::SloTransition::kFiring) {
        if (e.severity == obs::SloSeverity::kPage) {
          ++report.slo_pages_fired;
          if (report.first_page_fire < 0) report.first_page_fire = e.at;
        } else {
          ++report.slo_tickets_fired;
        }
      }
      if (e.transition == obs::SloTransition::kResolved &&
          e.severity == obs::SloSeverity::kPage) {
        report.last_page_resolve = e.at;
      }
      std::snprintf(line, sizeof(line),
                    "slo t=%.0f %s%s %s %s burn=%.2f/%.2f sli=%.4f\n",
                    sim::ToSeconds(e.at), e.slo.c_str(),
                    e.shard >= 0 ? (" shard" + std::to_string(e.shard)).c_str()
                                 : "",
                    std::string(obs::ToString(e.severity)).c_str(),
                    std::string(obs::ToString(e.transition)).c_str(),
                    e.burn_long, e.burn_short, e.sli);
      trace += line;
    }
  }
  std::snprintf(line, sizeof(line),
                "commits=%llu elections=%llu stepdowns=%llu resyncs=%llu "
                "pull_restarts=%llu delivered=%llu dropped=%llu\n",
                static_cast<unsigned long long>(rs.committed_writes()),
                static_cast<unsigned long long>(rs.elections()),
                static_cast<unsigned long long>(rs.stepdowns()),
                static_cast<unsigned long long>(rs.rollback_resyncs()),
                static_cast<unsigned long long>(rs.pull_restarts()),
                static_cast<unsigned long long>(
                    experiment.network().messages_delivered()),
                static_cast<unsigned long long>(
                    experiment.network().messages_dropped()));
  trace += line;
  const metrics::OpCounters& ops = experiment.client().op_counters();
  std::snprintf(line, sizeof(line),
                "driver ok=%llu to=%llu retries=%llu hedges=%llu/%llu "
                "env=%llu batched=%llu\n",
                static_cast<unsigned long long>(ops.ok),
                static_cast<unsigned long long>(ops.timed_out),
                static_cast<unsigned long long>(ops.retries_total),
                static_cast<unsigned long long>(ops.hedges_won),
                static_cast<unsigned long long>(ops.hedges_sent),
                static_cast<unsigned long long>(ops.envelopes_sent),
                static_cast<unsigned long long>(ops.ops_batched));
  trace += line;
  report.envelopes_sent = ops.envelopes_sent;
  report.ops_batched = ops.ops_batched;
  const driver::pool::ConnectionPool::Stats pool_totals =
      experiment.client().PoolTotals();
  std::snprintf(line, sizeof(line),
                "pool co=%llu to=%llu est=%llu destroyed=%llu clears=%llu "
                "peakq=%llu wait_ms=%.3f\n",
                static_cast<unsigned long long>(pool_totals.checkouts),
                static_cast<unsigned long long>(pool_totals.checkout_timeouts),
                static_cast<unsigned long long>(pool_totals.established),
                static_cast<unsigned long long>(pool_totals.destroyed),
                static_cast<unsigned long long>(pool_totals.clears),
                static_cast<unsigned long long>(pool_totals.max_queue_depth),
                sim::ToMillis(pool_totals.wait_total));
  trace += line;
  for (int i = 0; i < rs.node_count(); ++i) {
    std::snprintf(line, sizeof(line), "node%d fp=%llx alive=%d\n", i,
                  static_cast<unsigned long long>(
                      rs.node(i).db().Fingerprint()),
                  rs.IsAlive(i) ? 1 : 0);
    trace += line;
  }
  report.trace = std::move(trace);
  report.pull_restarts = rs.pull_restarts();
  report.elections = rs.elections();
  report.stepdowns = rs.stepdowns();
  report.rollback_resyncs = rs.rollback_resyncs();
  report.balancer_primary_swaps = experiment.balancer()->primary_swaps();
  report.stepdown_pool_clears = experiment.client().stepdown_pool_clears();
  if (!options.decisions_csv_path.empty()) {
    exp::WriteDecisionsCsv(experiment, options.decisions_csv_path);
  }
  return report;
}

}  // namespace dcg::chaos

#endif  // DCG_TESTS_CHAOS_HARNESS_H_
