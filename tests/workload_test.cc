// Tests for the workload generators: key choosers, YCSB, TPC-C, and the
// S workload — each exercised over a real mini-cluster.

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "exp/client_pool.h"
#include "workload/key_chooser.h"
#include "workload/s_workload.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"
#include "repl/replica_set.h"

namespace dcg::workload {
namespace {

TEST(ZipfianTest, ValuesInRange) {
  ZipfianGenerator gen(1000);
  sim::Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = gen.Next(&rng);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1000);
  }
}

TEST(ZipfianTest, RankZeroIsMostFrequent) {
  ZipfianGenerator gen(1000, 0.99);
  sim::Rng rng(2);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 100'000; ++i) ++counts[gen.Next(&rng)];
  // Rank 0 dominates; roughly counts[0]/counts[1] ~ 2^0.99.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  // Head concentration: top item gets several percent of all draws.
  EXPECT_GT(counts[0], 5000);
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  ScrambledZipfianGenerator gen(1000);
  sim::Rng rng(3);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 100'000; ++i) {
    const int64_t v = gen.Next(&rng);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 1000);
    ++counts[v];
  }
  // The hottest key is no longer key 0, but the skew persists.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 5000);
}

TEST(UniformChooserTest, RoughlyUniform) {
  UniformKeyChooser gen(10);
  sim::Rng rng(4);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 100'000; ++i) ++counts[gen.Next(&rng)];
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(c, 10'000, 600) << k;
  }
}

TEST(NURandTest, InRangeAndNonUniform) {
  sim::Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = NURand(&rng, 1023, 1, 3000, 7);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 3000);
  }
}

// ---------------------------------------------------------------------------
// Mini-cluster fixture shared by the workload tests.
// ---------------------------------------------------------------------------

class WorkloadClusterTest : public ::testing::Test {
 protected:
  void Build() {
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    const net::HostId c = network_->AddHost("client");
    repl::ReplicaSetParams params;
    server::ServerParams server_params;
    std::vector<net::HostId> hosts;
    for (int i = 0; i < 3; ++i) {
      hosts.push_back(network_->AddHost("n" + std::to_string(i)));
      network_->SetLink(c, hosts[i], sim::Millis(1), sim::Micros(30));
    }
    rs_ = std::make_unique<repl::ReplicaSet>(&loop_, sim::Rng(2),
                                             network_.get(), params,
                                             server_params, hosts);
    client_ = std::make_unique<driver::MongoClient>(
        &loop_, sim::Rng(3), rs_->command_bus(), c, driver::ClientOptions{});
    state_ = std::make_unique<core::SharedState>(0.5);
    policy_ = std::make_unique<core::DecongestantPolicy>(state_.get());
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<repl::ReplicaSet> rs_;
  std::unique_ptr<driver::MongoClient> client_;
  std::unique_ptr<core::SharedState> state_;
  std::unique_ptr<core::RoutingPolicy> policy_;
};

TEST_F(WorkloadClusterTest, YcsbLoadIsIdenticalAcrossNodes) {
  Build();
  YcsbConfig config;
  config.record_count = 500;
  for (int i = 0; i < 3; ++i) {
    YcsbWorkload::Load(config, &rs_->node(i).db());
  }
  EXPECT_EQ(rs_->node(0).db().Get("usertable")->size(), 500u);
  EXPECT_EQ(rs_->node(0).db().Fingerprint(), rs_->node(1).db().Fingerprint());
  EXPECT_EQ(rs_->node(0).db().Fingerprint(), rs_->node(2).db().Fingerprint());
}

TEST_F(WorkloadClusterTest, YcsbMixMatchesReadProportion) {
  Build();
  YcsbConfig config = YcsbConfig::WorkloadB();
  config.record_count = 500;
  for (int i = 0; i < 3; ++i) YcsbWorkload::Load(config, &rs_->node(i).db());
  YcsbWorkload ycsb(client_.get(), policy_.get(), config, sim::Rng(9));
  rs_->Start();

  exp::ClientPool pool(&loop_, &ycsb, nullptr);
  pool.SetTarget(20);
  loop_.RunUntil(sim::Seconds(60));
  pool.SetTarget(0);
  loop_.RunUntil(sim::Seconds(62));

  const double total =
      static_cast<double>(ycsb.reads_issued() + ycsb.updates_issued());
  ASSERT_GT(total, 1000);
  EXPECT_NEAR(static_cast<double>(ycsb.reads_issued()) / total, 0.95, 0.02);
  EXPECT_EQ(ycsb.missing_reads(), 0u);
}

TEST_F(WorkloadClusterTest, YcsbUpdatesReplicate) {
  Build();
  YcsbConfig config = YcsbConfig::WorkloadA();
  config.record_count = 200;
  for (int i = 0; i < 3; ++i) YcsbWorkload::Load(config, &rs_->node(i).db());
  YcsbWorkload ycsb(client_.get(), policy_.get(), config, sim::Rng(9));
  rs_->Start();
  exp::ClientPool pool(&loop_, &ycsb, nullptr);
  pool.SetTarget(10);
  loop_.RunUntil(sim::Seconds(30));
  pool.SetTarget(0);
  loop_.RunUntil(sim::Seconds(40));  // drain in-flight ops + replication

  EXPECT_GT(ycsb.updates_issued(), 100u);
  EXPECT_EQ(rs_->node(0).db().Fingerprint(), rs_->node(1).db().Fingerprint());
  EXPECT_EQ(rs_->node(0).db().Fingerprint(), rs_->node(2).db().Fingerprint());
}

TpccConfig SmallTpcc() {
  TpccConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 3;
  config.customers_per_district = 30;
  config.items = 100;
  config.initial_orders_per_district = 30;
  config.max_orders_per_district = 60;
  return config;
}

TEST_F(WorkloadClusterTest, TpccLoadBuildsConsistentSchema) {
  Build();
  const TpccConfig config = SmallTpcc();
  for (int i = 0; i < 3; ++i) TpccWorkload::Load(config, &rs_->node(i).db());
  const store::Database& db = rs_->node(0).db();
  EXPECT_EQ(db.Get("warehouse")->size(), 2u);
  EXPECT_EQ(db.Get("district")->size(), 6u);
  EXPECT_EQ(db.Get("customer")->size(), 180u);
  EXPECT_EQ(db.Get("item")->size(), 100u);
  EXPECT_EQ(db.Get("stock")->size(), 200u);
  EXPECT_EQ(db.Get("orders")->size(), 180u);
  // 30 % of initial orders are undelivered.
  EXPECT_EQ(db.Get("new_order")->size(), 6u * 9u);
  EXPECT_TRUE(db.Get("orders")->HasIndex("orders_by_customer"));
  EXPECT_EQ(db.Fingerprint(), rs_->node(1).db().Fingerprint());
  db.Get("orders")->CheckInvariants();
}

TEST_F(WorkloadClusterTest, TpccMixMatchesTable1) {
  Build();
  const TpccConfig config = SmallTpcc();
  for (int i = 0; i < 3; ++i) TpccWorkload::Load(config, &rs_->node(i).db());
  TpccWorkload tpcc(client_.get(), policy_.get(), config, sim::Rng(9));
  rs_->Start();
  exp::ClientPool pool(&loop_, &tpcc, nullptr);
  pool.SetTarget(40);
  loop_.RunUntil(sim::Seconds(400));
  pool.SetTarget(0);
  loop_.RunUntil(sim::Seconds(405));

  const double total = static_cast<double>(
      tpcc.stock_level_count() + tpcc.new_order_count() +
      tpcc.payment_count() + tpcc.order_status_count() +
      tpcc.delivery_count());
  ASSERT_GT(total, 2000);
  // Table 1, read-write column: 50/4/4/20/22.
  EXPECT_NEAR(tpcc.stock_level_count() / total, 0.50, 0.03);
  EXPECT_NEAR(tpcc.delivery_count() / total, 0.04, 0.015);
  EXPECT_NEAR(tpcc.order_status_count() / total, 0.04, 0.015);
  EXPECT_NEAR(tpcc.payment_count() / total, 0.20, 0.03);
  EXPECT_NEAR(tpcc.new_order_count() / total, 0.22, 0.03);
  // ~1 % of New Orders roll back.
  EXPECT_GT(tpcc.new_order_aborts(), 0u);
}

TEST_F(WorkloadClusterTest, TpccPreservesMoneyInvariants) {
  Build();
  const TpccConfig config = SmallTpcc();
  for (int i = 0; i < 3; ++i) TpccWorkload::Load(config, &rs_->node(i).db());
  TpccWorkload tpcc(client_.get(), policy_.get(), config, sim::Rng(10));
  rs_->Start();
  exp::ClientPool pool(&loop_, &tpcc, nullptr);
  pool.SetTarget(20);
  loop_.RunUntil(sim::Seconds(200));
  pool.SetTarget(0);
  loop_.RunUntil(sim::Seconds(210));

  // Replicas converge.
  EXPECT_EQ(rs_->node(0).db().Fingerprint(), rs_->node(1).db().Fingerprint());
  EXPECT_EQ(rs_->node(0).db().Fingerprint(), rs_->node(2).db().Fingerprint());

  // TPC-C consistency condition 1-ish: for each district,
  // d_next_del_o_id <= d_next_o_id and order counts within the cap.
  const store::Database& db = rs_->node(0).db();
  db.Get("district")->ForEach([&](const doc::Value&,
                                  const store::DocPtr& d) {
    const int64_t next_o = d->Find("d_next_o_id")->as_int64();
    const int64_t next_del = d->Find("d_next_del_o_id")->as_int64();
    const int64_t oldest = d->Find("d_oldest_o_id")->as_int64();
    EXPECT_LE(next_del, next_o);
    EXPECT_LE(next_o - oldest,
              config.max_orders_per_district + 1);
    return true;
  });
  // History grew with payments.
  EXPECT_EQ(db.Get("history")->size(),
            config.warehouses * config.districts_per_warehouse * 3u *
                    0u +  // loaded history is empty
                tpcc.payment_count());
  db.Get("orders")->CheckInvariants();
  db.Get("stock")->CheckInvariants();
}

TEST_F(WorkloadClusterTest, SWorkloadSeesZeroStalenessOnHealthyCluster) {
  Build();
  SWorkloadConfig config;
  for (int i = 0; i < 3; ++i) SWorkload::Load(config, &rs_->node(i).db());
  double max_staleness = 0;
  SWorkload s(client_.get(), [] { return true; }, config, sim::Rng(5),
              [&](double staleness) {
                max_staleness = std::max(max_staleness, staleness);
              });
  rs_->Start();
  s.Start();
  loop_.RunUntil(sim::Seconds(30));
  EXPECT_GT(s.writes_completed(), 100u);
  EXPECT_GT(s.probes_completed(), 50u);
  // Healthy replication: staleness stays well under a second.
  EXPECT_LT(max_staleness, 0.5);
}

TEST_F(WorkloadClusterTest, SWorkloadDetectsStalledSecondary) {
  Build();
  SWorkloadConfig config;
  for (int i = 0; i < 3; ++i) SWorkload::Load(config, &rs_->node(i).db());
  double max_staleness = 0;
  SWorkload s(client_.get(), [] { return true; }, config, sim::Rng(5),
              [&](double staleness) {
                max_staleness = std::max(max_staleness, staleness);
              });
  rs_->Start();
  s.Start();
  // Block replication with a giant checkpoint starting at 60 s.
  rs_->primary().server().AddDirtyBytes(2'000'000'000);
  loop_.RunUntil(sim::Seconds(80));
  EXPECT_GT(max_staleness, 3.0);
}

TEST_F(WorkloadClusterTest, SWorkloadProbesPrimaryWhenSecondariesUnused) {
  Build();
  SWorkloadConfig config;
  for (int i = 0; i < 3; ++i) SWorkload::Load(config, &rs_->node(i).db());
  double max_staleness = 0;
  SWorkload s(client_.get(), [] { return false; }, config, sim::Rng(5),
              [&](double staleness) {
                max_staleness = std::max(max_staleness, staleness);
              });
  rs_->Start();
  s.Start();
  // Replication fully stalled — but the app isn't using secondaries, so
  // the probe pair goes primary/primary and reports no staleness.
  rs_->primary().server().AddDirtyBytes(2'000'000'000);
  loop_.RunUntil(sim::Seconds(80));
  EXPECT_EQ(max_staleness, 0.0);
}

TEST(ClientPoolTest, ParksAndResumesClients) {
  // A tiny synthetic workload: completes after 10 ms.
  class FakeWorkload : public Workload {
   public:
    explicit FakeWorkload(sim::EventLoop* loop) : loop_(loop) {}
    void Issue(int, Done done) override {
      ++issued_;
      loop_->ScheduleAfter(sim::Millis(10), [this, done = std::move(done)] {
        OpOutcome outcome;
        outcome.type = "noop";
        done(outcome);
      });
    }
    std::string_view name() const override { return "fake"; }
    int issued_ = 0;
    sim::EventLoop* loop_;
  };

  sim::EventLoop loop;
  FakeWorkload fake(&loop);
  uint64_t completed = 0;
  exp::ClientPool pool(&loop, &fake, [&](const OpOutcome&) { ++completed; });
  pool.SetTarget(5);
  loop.RunUntil(sim::Seconds(1));
  EXPECT_EQ(pool.running(), 5);
  const uint64_t at_5 = completed;
  EXPECT_NEAR(static_cast<double>(at_5), 500, 10);

  pool.SetTarget(1);
  loop.RunUntil(sim::Seconds(2));
  EXPECT_EQ(pool.running(), 1);
  pool.SetTarget(10);
  loop.RunUntil(sim::Seconds(3));
  EXPECT_EQ(pool.running(), 10);
  EXPECT_EQ(pool.ops_completed(), completed);
}

}  // namespace
}  // namespace dcg::workload
