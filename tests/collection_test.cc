// Tests for Collection (primary + secondary indexes, queries) and Database.

#include <tuple>

#include <gtest/gtest.h>

#include "sim/random.h"
#include "store/collection.h"
#include "store/database.h"

namespace dcg::store {
namespace {

doc::Value User(int64_t id, std::string name, int64_t age) {
  return doc::Value::Doc(
      {{"_id", id}, {"name", std::move(name)}, {"age", age}});
}

TEST(CollectionTest, InsertAndFindById) {
  Collection users("users");
  EXPECT_TRUE(users.Insert(User(1, "alice", 30)));
  EXPECT_TRUE(users.Insert(User(2, "bob", 25)));
  EXPECT_FALSE(users.Insert(User(1, "dup", 99)));
  EXPECT_EQ(users.size(), 2u);
  DocPtr d = users.FindById(doc::Value(1));
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->Find("name")->as_string(), "alice");
  EXPECT_EQ(users.FindById(doc::Value(3)), nullptr);
}

TEST(CollectionTest, UpsertReplacesDocument) {
  Collection users("users");
  users.Upsert(User(1, "alice", 30));
  users.Upsert(User(1, "alicia", 31));
  EXPECT_EQ(users.size(), 1u);
  EXPECT_EQ(users.FindById(doc::Value(1))->Find("name")->as_string(),
            "alicia");
}

TEST(CollectionTest, UpdateIsCopyOnWrite) {
  Collection users("users");
  users.Insert(User(1, "alice", 30));
  DocPtr before = users.FindById(doc::Value(1));
  doc::UpdateSpec spec;
  spec.Inc("age", doc::Value(int64_t{1}));
  ASSERT_TRUE(users.Update(doc::Value(1), spec));
  // The old snapshot is untouched; the new one reflects the update.
  EXPECT_EQ(before->Find("age")->as_int64(), 30);
  EXPECT_EQ(users.FindById(doc::Value(1))->Find("age")->as_int64(), 31);
  EXPECT_FALSE(users.Update(doc::Value(99), spec));
}

TEST(CollectionTest, Remove) {
  Collection users("users");
  users.Insert(User(1, "alice", 30));
  EXPECT_TRUE(users.Remove(doc::Value(1)));
  EXPECT_FALSE(users.Remove(doc::Value(1)));
  EXPECT_EQ(users.size(), 0u);
}

TEST(CollectionTest, FindByIdEqualityUsesPrimaryIndex) {
  Collection users("users");
  for (int64_t i = 0; i < 100; ++i) users.Insert(User(i, "u", i));
  auto results = users.Find(doc::Filter::Eq("_id", doc::Value(42)));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0]->Find("_id")->as_int64(), 42);
}

TEST(CollectionTest, FindFullScanWithPredicate) {
  Collection users("users");
  for (int64_t i = 0; i < 100; ++i) users.Insert(User(i, "u", i % 10));
  auto results = users.Find(doc::Filter::Eq("age", doc::Value(3)));
  EXPECT_EQ(results.size(), 10u);
  EXPECT_EQ(users.Count(doc::Filter::Gte("age", doc::Value(5))), 50u);
}

TEST(CollectionTest, FindRespectsLimit) {
  Collection users("users");
  for (int64_t i = 0; i < 100; ++i) users.Insert(User(i, "u", 1));
  EXPECT_EQ(users.Find(doc::Filter::True(), 7).size(), 7u);
  EXPECT_EQ(users.Find(doc::Filter::True(), 0).size(), 0u);
}

TEST(CollectionTest, SecondaryIndexServesEqualityQueries) {
  Collection users("users");
  users.CreateIndex("by_age", {"age"});
  for (int64_t i = 0; i < 100; ++i) users.Insert(User(i, "u", i % 10));
  auto results = users.Find(doc::Filter::Eq("age", doc::Value(4)));
  EXPECT_EQ(results.size(), 10u);
  users.CheckInvariants();
}

TEST(CollectionTest, IndexCreatedAfterInsertIndexesExistingDocs) {
  Collection users("users");
  for (int64_t i = 0; i < 50; ++i) users.Insert(User(i, "u", i));
  users.CreateIndex("by_age", {"age"});
  users.CheckInvariants();
  auto results = users.IndexScan("by_age", {doc::Value(10)},
                                 {doc::Value(19)});
  EXPECT_EQ(results.size(), 10u);
}

TEST(CollectionTest, IndexMaintainedAcrossUpdatesAndRemoves) {
  Collection users("users");
  users.CreateIndex("by_age", {"age"});
  for (int64_t i = 0; i < 30; ++i) users.Insert(User(i, "u", 1));
  doc::UpdateSpec to_two;
  to_two.Set("age", doc::Value(int64_t{2}));
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(users.Update(doc::Value(i), to_two));
  }
  for (int64_t i = 20; i < 30; ++i) {
    ASSERT_TRUE(users.Remove(doc::Value(i)));
  }
  users.CheckInvariants();
  EXPECT_EQ(users.IndexScan("by_age", {doc::Value(1)}, {doc::Value(1)}).size(),
            10u);
  EXPECT_EQ(users.IndexScan("by_age", {doc::Value(2)}, {doc::Value(2)}).size(),
            10u);
}

TEST(CollectionTest, CompoundIndexPrefixScan) {
  Collection orders("orders");
  orders.CreateIndex("by_wdc", {"w", "d", "c"});
  int64_t id = 0;
  for (int64_t w = 1; w <= 2; ++w) {
    for (int64_t d = 1; d <= 3; ++d) {
      for (int64_t c = 1; c <= 4; ++c) {
        orders.Insert(doc::Value::Doc(
            {{"_id", id++}, {"w", w}, {"d", d}, {"c", c}}));
      }
    }
  }
  // Full-prefix equality.
  auto exact = orders.IndexScan(
      "by_wdc", {doc::Value(1), doc::Value(2), doc::Value(3)},
      {doc::Value(1), doc::Value(2), doc::Value(3)});
  EXPECT_EQ(exact.size(), 1u);
  // Shorter prefix covers all districts' customers.
  auto district = orders.IndexScan("by_wdc", {doc::Value(2), doc::Value(1)},
                                   {doc::Value(2), doc::Value(1)});
  EXPECT_EQ(district.size(), 4u);
  auto warehouse = orders.IndexScan("by_wdc", {doc::Value(2)},
                                    {doc::Value(2)});
  EXPECT_EQ(warehouse.size(), 12u);
}

TEST(CollectionTest, IndexesMissingPathAsNull) {
  Collection c("c");
  c.CreateIndex("by_x", {"x"});
  c.Insert(doc::Value::Doc({{"_id", 1}}));  // no "x"
  c.Insert(doc::Value::Doc({{"_id", 2}, {"x", 5}}));
  c.CheckInvariants();
  auto nulls = c.IndexScan("by_x", {doc::Value()}, {doc::Value()});
  ASSERT_EQ(nulls.size(), 1u);
  EXPECT_EQ(nulls[0]->Find("_id")->as_int64(), 1);
}

TEST(CollectionTest, RangeByIdInclusive) {
  Collection c("c");
  for (int64_t i = 0; i < 50; ++i) c.Insert(User(i, "u", i));
  auto r = c.RangeById(doc::Value(10), doc::Value(19));
  ASSERT_EQ(r.size(), 10u);
  EXPECT_EQ(r.front()->Find("_id")->as_int64(), 10);
  EXPECT_EQ(r.back()->Find("_id")->as_int64(), 19);
  EXPECT_EQ(c.RangeById(doc::Value(100), doc::Value(200)).size(), 0u);
  EXPECT_EQ(c.RangeById(doc::Value(45), doc::Value(500)).size(), 5u);
  EXPECT_EQ(c.RangeById(doc::Value(7), doc::Value(7), 1).size(), 1u);
}

TEST(CollectionTest, RangeByIdWithArrayKeys) {
  Collection c("c");
  for (int64_t w = 1; w <= 2; ++w) {
    for (int64_t o = 1; o <= 10; ++o) {
      c.Insert(doc::Value::Doc(
          {{"_id", doc::Value::List({w, o})}, {"w", w}, {"o", o}}));
    }
  }
  auto r = c.RangeById(doc::Value::List({int64_t{1}, int64_t{3}}),
                       doc::Value::List({int64_t{1}, int64_t{7}}));
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r.front()->Find("o")->as_int64(), 3);
  EXPECT_EQ(r.back()->Find("o")->as_int64(), 7);
}

TEST(CollectionTest, ApproxBytesTracksLiveData) {
  Collection c("c");
  EXPECT_EQ(c.ApproxBytes(), 0u);
  c.Insert(User(1, std::string(500, 'x'), 1));
  const size_t after_insert = c.ApproxBytes();
  EXPECT_GT(after_insert, 500u);
  c.Remove(doc::Value(1));
  EXPECT_EQ(c.ApproxBytes(), 0u);
}

// Randomized churn keeps primary and secondary indexes consistent.
class CollectionChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CollectionChurnTest, IndexesStayConsistent) {
  sim::Rng rng(GetParam());
  Collection c("churn");
  c.CreateIndex("by_a", {"a"});
  c.CreateIndex("by_ab", {"a", "b"});
  for (int i = 0; i < 3000; ++i) {
    const int64_t id = rng.UniformInt(0, 199);
    const double action = rng.NextDouble();
    if (action < 0.5) {
      c.Upsert(doc::Value::Doc({{"_id", id},
                                {"a", rng.UniformInt(0, 9)},
                                {"b", rng.UniformInt(0, 9)}}));
    } else if (action < 0.8) {
      doc::UpdateSpec spec;
      spec.Set("a", doc::Value(rng.UniformInt(0, 9)));
      c.Update(doc::Value(id), spec);
    } else {
      c.Remove(doc::Value(id));
    }
  }
  c.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectionChurnTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(DatabaseTest, GetOrCreateAndNames) {
  Database db;
  EXPECT_EQ(db.Get("users"), nullptr);
  Collection& users = db.GetOrCreate("users");
  EXPECT_EQ(&users, &db.GetOrCreate("users"));
  db.GetOrCreate("orders");
  EXPECT_EQ(db.CollectionNames(),
            (std::vector<std::string>{"orders", "users"}));
}

TEST(DatabaseTest, FingerprintDetectsDivergence) {
  Database a, b;
  a.GetOrCreate("t").Insert(User(1, "alice", 30));
  b.GetOrCreate("t").Insert(User(1, "alice", 30));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());

  doc::UpdateSpec spec;
  spec.Set("age", doc::Value(int64_t{31}));
  b.Get("t")->Update(doc::Value(1), spec);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());

  a.Get("t")->Update(doc::Value(1), spec);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(DatabaseTest, FingerprintSensitiveToCollectionName) {
  Database a, b;
  a.GetOrCreate("x").Insert(User(1, "u", 1));
  b.GetOrCreate("y").Insert(User(1, "u", 1));
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(DatabaseTest, ApproxBytesSumsCollections) {
  Database db;
  db.GetOrCreate("a").Insert(User(1, std::string(100, 'x'), 1));
  db.GetOrCreate("b").Insert(User(1, std::string(200, 'y'), 1));
  EXPECT_GT(db.ApproxBytes(), 300u);
}

}  // namespace
}  // namespace dcg::store
