// Regression tests for Histogram::Percentile at the extremes (p=0 must
// return the minimum, p=100 the maximum — exactly, not a bucket bound)
// and for merge behaviour across buckets.

#include <vector>

#include <gtest/gtest.h>

#include "metrics/histogram.h"

namespace dcg::metrics {
namespace {

TEST(HistogramPercentileTest, EmptyReturnsZeroAtExtremes) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0), 0.0);
  EXPECT_EQ(h.Percentile(100), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramPercentileTest, SingleSampleExactAtExtremes) {
  Histogram h;
  h.Add(42.0);
  // p=0 and p=100 answer from the tracked extrema: exact, no bucket slop.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 42.0);
}

TEST(HistogramPercentileTest, SubUnitSampleNotInflatedByBucketZero) {
  // Regression: every value below 1.0 lands in bucket 0 whose upper bound
  // is 1.0; the old scan returned clamp(1.0, min, max) == max for p=0.
  Histogram h;
  h.Add(0.25);
  h.Add(0.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.25);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.5);
}

TEST(HistogramPercentileTest, MinMaxAcrossManySamples) {
  Histogram h;
  for (double v : {300.0, 7.0, 9000.0, 42.0, 0.1}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.1);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 9000.0);
  // Out-of-range p clamps to the extremes too.
  EXPECT_DOUBLE_EQ(h.Percentile(-5), 0.1);
  EXPECT_DOUBLE_EQ(h.Percentile(250), 9000.0);
}

TEST(HistogramPercentileTest, MidPercentilesStillWithinExtrema) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  for (double p : {1.0, 25.0, 50.0, 80.0, 99.0}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, h.min()) << "p=" << p;
    EXPECT_LE(v, h.max()) << "p=" << p;
  }
}

TEST(HistogramMergeTest, CrossBucketMergeMatchesCombinedOracle) {
  // One histogram with sub-unit samples (bucket 0), one with large
  // samples (high buckets); the merge must answer extremes from the
  // combined population and keep count/sum coherent.
  Histogram small;
  small.Add(0.2);
  small.Add(0.8);
  Histogram large;
  large.Add(5000.0);
  large.Add(120.0);

  Histogram merged;
  merged.Merge(small);
  merged.Merge(large);

  Histogram oracle;
  for (double v : {0.2, 0.8, 5000.0, 120.0}) oracle.Add(v);

  EXPECT_EQ(merged.count(), 4u);
  EXPECT_DOUBLE_EQ(merged.min(), 0.2);
  EXPECT_DOUBLE_EQ(merged.max(), 5000.0);
  EXPECT_DOUBLE_EQ(merged.mean(), oracle.mean());
  EXPECT_DOUBLE_EQ(merged.Percentile(0), oracle.Percentile(0));
  EXPECT_DOUBLE_EQ(merged.Percentile(100), oracle.Percentile(100));
  EXPECT_DOUBLE_EQ(merged.Percentile(50), oracle.Percentile(50));
}

TEST(HistogramMergeTest, MergeIntoEmptyPreservesExtremes) {
  Histogram src;
  src.Add(0.4);
  src.Add(77.0);
  Histogram dst;
  dst.Merge(src);
  EXPECT_DOUBLE_EQ(dst.Percentile(0), 0.4);
  EXPECT_DOUBLE_EQ(dst.Percentile(100), 77.0);
}

}  // namespace
}  // namespace dcg::metrics
