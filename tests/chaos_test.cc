// Deterministic chaos tests: scripted and seeded-random fault schedules
// run against the full Decongestant stack, with the freshness / reaction /
// recovery / drain invariants checked by tests/chaos_harness.h.

#include <functional>

#include <gtest/gtest.h>

#include "chaos_harness.h"
#include "driver/session.h"

namespace dcg {
namespace {

using chaos::ChaosOptions;
using chaos::ChaosReport;
using chaos::RunChaos;
using fault::FaultEvent;
using fault::FaultSchedule;
using fault::FaultType;

FaultEvent Event(FaultType type, double start_s, double end_s,
                 std::vector<int> nodes) {
  FaultEvent event;
  event.type = type;
  event.start = sim::Seconds(start_s);
  event.end = end_s < 0 ? -1 : sim::Seconds(end_s);
  event.nodes = std::move(nodes);
  return event;
}

// Schedule 1 — the headline scenario: both secondaries partitioned away
// from the primary for 60 s. Their data freezes while the primary keeps
// committing, so true staleness climbs 1 s/s past StaleBound; the
// balancer must zero the fraction within one control period, never serve
// a read staler than bound + grace, and rebalance after the heal.
TEST(ChaosTest, FullSecondaryPartitionForcesFractionToZero) {
  ChaosOptions options;
  options.seed = 1001;
  options.schedule.Add(
      Event(FaultType::kPartition, 80, 140, {1, 2}));
  options.expect_zero_within_period = true;
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.secondary_reads, 0u);
  // The partition really happened: the watchdog restarted pull chains.
  EXPECT_GT(report.pull_restarts, 0u);
}

// Schedule 2 — crash the primary mid-run, let the survivors elect, then
// restart the old primary (it rejoins via initial sync). Reads must keep
// flowing and the cluster must fully converge after the drill.
TEST(ChaosTest, PrimaryCrashElectionAndRejoin) {
  ChaosOptions options;
  options.seed = 1002;
  options.schedule.Add(Event(FaultType::kCrash, 80, -1, {0}))
      .Add(Event(FaultType::kRestart, 140, -1, {0}));
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_EQ(report.elections, 1u);
  EXPECT_GT(report.secondary_reads, 0u);
}

// Schedule 3 — replication-apply throttle: the network is perfect but one
// secondary's apply thread runs 40x slow, so it lags past StaleBound.
// The estimate (max over secondaries) must gate the fraction to 0, and
// the node must catch back up after the heal.
TEST(ChaosTest, ApplyThrottleLagGatesAndRecovers) {
  ChaosOptions options;
  options.seed = 1003;
  {
    FaultEvent event = Event(FaultType::kApplyThrottle, 80, 150, {1, 2});
    event.value = 40.0;
    options.schedule.Add(event);
  }
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.worst_secondary_staleness, 0);
}

// Schedule 4 — latency spike on every link of the primary (client links
// included): replication and routing slow down but nothing is lost. The
// balancer's RTT handling must cope; all invariants hold.
TEST(ChaosTest, PrimaryLatencySpike) {
  ChaosOptions options;
  options.seed = 1004;
  {
    FaultEvent event = Event(FaultType::kLatencySpike, 80, 150, {0});
    event.value = 3.0;
    event.delay = sim::Millis(10);
    options.schedule.Add(event);
  }
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.secondary_reads, 0u);
}

// Schedule 5 — asymmetric packet loss into one secondary: getMore
// batches and heartbeats are dropped at 30%, exercising the pull-chain
// watchdog. Freshness must hold (lost heartbeats only make the estimate
// more conservative).
TEST(ChaosTest, AsymmetricPacketLossExercisesWatchdog) {
  ChaosOptions options;
  options.seed = 1005;
  {
    FaultEvent event = Event(FaultType::kPacketLoss, 80, 150, {1});
    event.value = 0.30;
    event.inbound_only = true;
    options.schedule.Add(event);
  }
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.pull_restarts, 0u);
}

// Schedule 6 — the client itself is partitioned from one secondary for
// 60 s (frontend VLAN cut). Ops in flight toward that node are silently
// lost; they must complete anyway — via the command layer's attempt
// failover onto the other secondary — with zero timed-out ops, because
// no deadline was set and retries are unlimited.
TEST(ChaosTest, ClientPartitionDuringReadsRetriesOnAnotherNode) {
  ChaosOptions options;
  options.seed = 1006;
  {
    FaultEvent event = Event(FaultType::kPartition, 80, 140, {1});
    event.include_client = true;
    options.schedule.Add(event);
  }
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.secondary_reads, 0u);
  // The partition stranded in-flight commands: the only way those ops
  // completed is the retry path onto a different node.
  EXPECT_GT(report.ops_retried, 0u);
  EXPECT_EQ(report.ops_timed_out, 0u);
}

// Schedule 7 — deadlined ops under near-total client-link loss: with
// maxTimeMS set, an op whose commands keep vanishing must fail within
// its deadline plus (at most) one control period — never hang, never
// fail late.
TEST(ChaosTest, DeadlinedOpsFailWithinDeadlinePlusOnePeriod) {
  exp::ExperimentConfig config;
  config.seed = 2001;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 12, 0.95}};
  config.duration = sim::Seconds(160);
  config.warmup = sim::Seconds(20);
  config.run_s_workload = false;
  config.client_options.default_op_deadline = sim::Seconds(2);
  config.client_options.attempt_timeout = sim::Millis(400);
  exp::Experiment experiment(config);

  // Drop 97% of everything between the client host and every node for
  // 40 s mid-run, both directions — commands and replies vanish alike.
  auto& loop = experiment.loop();
  auto& network = experiment.network();
  auto& rs = experiment.replica_set();
  const net::HostId client_host = experiment.client().client_host();
  loop.ScheduleAt(sim::Seconds(60), [&] {
    net::Network::LinkFault fault;
    fault.drop_probability = 0.97;
    for (int i = 0; i < rs.node_count(); ++i) {
      network.SetLinkFault(client_host, rs.node(i).host(), fault);
      network.SetLinkFault(rs.node(i).host(), client_host, fault);
    }
  });
  loop.ScheduleAt(sim::Seconds(100), [&] {
    for (int i = 0; i < rs.node_count(); ++i) {
      network.ClearLinkFault(client_host, rs.node(i).host());
      network.ClearLinkFault(rs.node(i).host(), client_host);
    }
  });

  uint64_t failed = 0;
  sim::Duration worst_failure_latency = 0;
  experiment.SetOpObserver([&](const workload::OpOutcome& outcome) {
    if (outcome.ok) return;
    ++failed;
    EXPECT_TRUE(outcome.timed_out);  // the only failure mode configured
    worst_failure_latency = std::max(worst_failure_latency, outcome.latency);
  });
  experiment.Run();

  EXPECT_GT(failed, 0u);  // the loss window really bit
  EXPECT_LE(worst_failure_latency,
            config.client_options.default_op_deadline +
                config.balancer.period);
  // And the cluster recovered: the final period completed ops again.
  ASSERT_FALSE(experiment.rows().empty());
  EXPECT_GT(experiment.rows().back().ops_ok, 0u);
}

// Schedule 8 — causal sessions under a lossy link: retried session reads
// must never violate the afterClusterTime token. Every read-your-own-
// write must hold even when the read's first attempt was dropped and the
// retry landed on a different secondary.
TEST(ChaosTest, RetriesNeverViolateCausalSessionToken) {
  sim::EventLoop loop;
  net::Network network(&loop, sim::Rng(1));
  const net::HostId client_host = network.AddHost("client");
  repl::ReplicaSetParams params;
  server::ServerParams server_params;
  server_params.service.sigma = 0.0;
  std::vector<net::HostId> hosts;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(network.AddHost("n" + std::to_string(i)));
    network.SetLink(client_host, hosts[i], sim::Millis(1), 0);
  }
  repl::ReplicaSet rs(&loop, sim::Rng(2), &network, params, server_params,
                      hosts);
  driver::ClientOptions options;
  options.attempt_timeout = sim::Millis(300);
  options.retry_backoff_base = sim::Millis(1);
  driver::MongoClient client(&loop, sim::Rng(3), rs.command_bus(),
                             client_host, options);
  rs.Start();

  // 50% loss on both secondary links (both directions) for most of the
  // run: session reads keep being dropped mid-flight and retried.
  loop.ScheduleAt(sim::Seconds(2), [&] {
    net::Network::LinkFault fault;
    fault.drop_probability = 0.5;
    for (int i = 1; i < 3; ++i) {
      network.SetLinkFault(client_host, hosts[i], fault);
      network.SetLinkFault(hosts[i], client_host, fault);
    }
  });
  loop.ScheduleAt(sim::Seconds(40), [&] {
    for (int i = 1; i < 3; ++i) {
      network.ClearLinkFault(client_host, hosts[i]);
      network.ClearLinkFault(hosts[i], client_host);
    }
  });

  driver::CausalSession session(&client);
  int cycles_done = 0, saw_own_write = 0;
  std::function<void(int)> cycle = [&](int i) {
    if (i == 60) return;
    session.Write(
        server::OpClass::kInsert,
        [i](repl::TxnContext* ctx) {
          ctx->Insert("t", doc::Value::Doc({{"_id", i}}));
        },
        [&, i](const driver::MongoClient::WriteResult& w) {
          ASSERT_TRUE(w.committed);
          auto hit = std::make_shared<bool>(false);
          session.Read(
              driver::ReadPreference::kSecondary,
              server::OpClass::kPointRead,
              [i, hit](const store::Database& db) {
                const store::Collection* t = db.Get("t");
                *hit = t != nullptr &&
                       t->FindById(doc::Value(i)) != nullptr;
              },
              [&, hit, i](const driver::MongoClient::ReadResult& r) {
                ASSERT_TRUE(r.ok);
                EXPECT_TRUE(r.used_secondary);
                ++cycles_done;
                if (*hit) ++saw_own_write;
                cycle(i + 1);
              });
        });
  };
  cycle(0);
  loop.RunUntil(sim::Seconds(120));
  EXPECT_EQ(cycles_done, 60);
  // The causal token held on every cycle — including the retried ones.
  EXPECT_EQ(saw_own_write, 60);
  EXPECT_GT(client.op_counters().retries_total, 0u);
}

// Client-side faults must not break same-seed bit-identical traces: the
// retry/backoff/hedge machinery draws only from the client's own seeded
// RNG stream.
TEST(ChaosTest, ClientFaultTracesAreDeterministic) {
  ChaosOptions options;
  options.seed = 1007;
  {
    FaultEvent partition = Event(FaultType::kPartition, 80, 120, {1});
    partition.include_client = true;
    options.schedule.Add(partition);
  }
  {
    FaultEvent loss = Event(FaultType::kPacketLoss, 90, 130, {2});
    loss.value = 0.4;
    loss.include_client = true;
    options.schedule.Add(loss);
  }
  const ChaosReport first = RunChaos(options);
  const ChaosReport second = RunChaos(options);
  EXPECT_TRUE(first.ok()) << first.ViolationText();
  EXPECT_GT(first.ops_retried, 0u);
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);
}

// Schedule 9 — combined seeded-random timelines: a handful of mixed
// faults (latency, loss, partition, throttle, negative skew, slowdown,
// plus a crash/restart cycle) per seed. Every invariant must hold for
// every seed.
class RandomChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomChaosTest, InvariantsHoldUnderRandomSchedule) {
  ChaosOptions options;
  options.seed = GetParam();
  options.schedule =
      fault::MakeRandomSchedule(GetParam(), options.duration, 3);
  ASSERT_FALSE(options.schedule.empty());
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChaosTest,
                         ::testing::Values(7u, 21u, 99u));

// Determinism: the same seed and schedule must produce a bit-identical
// trace — period rows, fault log, message counters, and database
// fingerprints all included.
TEST(ChaosTest, IdenticalSeedsProduceIdenticalTraces) {
  ChaosOptions options;
  options.seed = 77;
  options.schedule = fault::MakeRandomSchedule(77, options.duration, 3);
  const ChaosReport first = RunChaos(options);
  const ChaosReport second = RunChaos(options);
  EXPECT_TRUE(first.ok()) << first.ViolationText();
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);
}

// Schedule 10 — repeated pool_clear storms against a constrained pool
// while commands are in flight. The generation invariant (no post-clear
// command rides a pre-clear connection) and bounded drain after the last
// clear are the chaos-harness pool invariants; this schedule is designed
// to hit the clear-while-establishing and clear-while-checked-out races.
TEST(ChaosTest, PoolClearStormKeepsGenerationInvariant) {
  ChaosOptions options;
  options.seed = 1010;
  options.client_options.pool.max_pool_size = 4;
  options.client_options.pool.establish_cost = sim::Millis(2);
  options.client_options.pool.wait_queue_timeout = sim::Millis(500);
  // Clears land on every node, in bursts, including back-to-back ones.
  for (double at : {60.0, 60.5, 90.0, 120.0, 150.0, 150.1}) {
    options.schedule.Add(Event(FaultType::kPoolClear, at, -1, {0, 1, 2}));
  }
  const ChaosReport first = RunChaos(options);
  EXPECT_TRUE(first.ok()) << first.ViolationText();
  EXPECT_GT(first.secondary_reads, 0u);
  // The clears really happened and forced re-establishment.
  EXPECT_NE(first.trace.find("apply pool_clear"), std::string::npos);
  EXPECT_NE(first.trace.find("clears=18"), std::string::npos);
  // Same-seed pool chaos is bit-identical, like every other fault type.
  const ChaosReport second = RunChaos(options);
  EXPECT_EQ(first.trace, second.trace);
}

// Schedule 11 — pool clear combined with a node partition: the hello
// watchdog clears the pool again on silence, ops retry across nodes, and
// every connection must still drain cleanly after the heal.
TEST(ChaosTest, PoolClearDuringPartitionStillDrains) {
  ChaosOptions options;
  options.seed = 1011;
  options.client_options.pool.max_pool_size = 3;
  options.client_options.pool.establish_cost = sim::Millis(1);
  options.client_options.pool.wait_queue_timeout = sim::Millis(300);
  {
    FaultEvent partition = Event(FaultType::kPartition, 80, 130, {1});
    partition.include_client = true;
    options.schedule.Add(partition);
  }
  options.schedule.Add(Event(FaultType::kPoolClear, 100, -1, {0, 2}));
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.ops_retried, 0u);
}

// Schedule 12 — command batching under a partition plus pool-clear storm:
// envelopes in flight lose their shared connection, buffered riders see
// their node partitioned away, and the watchdog clears pools under them.
// Invariant 10 (no op silently dropped from a buffered envelope) plus the
// drain invariants must hold, and the run must be genuinely batched.
TEST(ChaosTest, BatchedEnvelopesSurvivePartitionAndPoolClears) {
  ChaosOptions options;
  options.seed = 1012;
  options.client_options.batching_enabled = true;
  options.client_options.batch_max_ops = 8;
  options.client_options.batch_max_delay = sim::Micros(200);
  options.client_options.pool.max_pool_size = 3;
  options.client_options.pool.establish_cost = sim::Millis(1);
  options.client_options.pool.wait_queue_timeout = sim::Millis(300);
  {
    FaultEvent partition = Event(FaultType::kPartition, 80, 130, {1});
    partition.include_client = true;
    options.schedule.Add(partition);
  }
  for (double at : {100.0, 100.5, 160.0}) {
    options.schedule.Add(Event(FaultType::kPoolClear, at, -1, {0, 1, 2}));
  }
  const ChaosReport first = RunChaos(options);
  EXPECT_TRUE(first.ok()) << first.ViolationText();
  // Non-vacuous: the workload really rode envelopes, and the faults
  // really forced retries through the batch path.
  EXPECT_GT(first.envelopes_sent, 0u);
  EXPECT_GT(first.ops_batched, 0u);
  EXPECT_GT(first.ops_retried, 0u);
  // Batched chaos replays bit-identically like every other schedule.
  const ChaosReport second = RunChaos(options);
  EXPECT_EQ(first.trace, second.trace);
}

// Span-tree invariant under faults: run with tracing on, hedged reads,
// tight attempt timeouts, and a mid-run latency spike on the primary so
// the trace contains retry and hedge arms — then let invariant 8 check
// that every span nests under the right parent and shares its op's trace
// id (see chaos_harness.h).
TEST(ChaosTest, TracedRunKeepsSpanTreeWellFormed) {
  ChaosOptions options;
  options.seed = 1013;
  options.duration = sim::Seconds(60);
  options.clients = 8;
  options.trace = true;
  options.client_options.hedged_reads = true;
  options.client_options.attempt_timeout = sim::Millis(400);
  {
    FaultEvent event = Event(FaultType::kLatencySpike, 25, 45, {0});
    event.value = 3.0;
    event.delay = sim::Millis(10);
    options.schedule.Add(event);
  }
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.total_reads, 0u);
}

// Alert conformance, firing side: rerun the headline secondary-partition
// staleness schedule with a freshness SLO attached. Replication freezes
// at t=80 s while the primary keeps committing, so served ages climb
// 1 s/s; the window between ages crossing the SLO bound and the safety
// gate zeroing the fraction is exactly when secondaries serve over-bound
// reads — the page alert must fire within two evaluation windows of the
// first such read, and must resolve once the symptom stops (gate closed,
// cluster healed).
TEST(ChaosTest, FreshnessPageFiresUnderStalenessFaultAndResolves) {
  ChaosOptions options;
  options.seed = 1001;
  options.schedule.Add(Event(FaultType::kPartition, 80, 140, {1, 2}));
  options.expect_zero_within_period = true;
  // The SLO bound (2 s) sits well inside the safety valve (StaleBound
  // 10 s): the balancer's conservative estimate closes the gate before
  // truth crosses 10 s, but ages in (2 s, gate-close) are served for
  // several seconds — the alertable symptom. One-period (10 s) windows
  // give the burn signal bucket granularity: the transition bucket is
  // mostly bad against a 1% budget, far over the page rate of 5.
  options.slo_spec =
      "freshness:bound=2:objective=0.99:page=5:ticket=0:window=10:short=10:"
      "resolve=20";
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  ASSERT_GE(report.first_overbound_read, 0) << "schedule too weak";
  ASSERT_GE(report.first_page_fire, 0)
      << "freshness page never fired under a staleness fault";
  // Two evaluation windows (2 x 10 s), plus the partial period the first
  // over-bound read lands in.
  EXPECT_LE(report.first_page_fire,
            report.first_overbound_read + sim::Seconds(30));
  EXPECT_GE(report.last_page_resolve, report.first_page_fire)
      << "freshness page never resolved after recovery";
  EXPECT_EQ(report.slo_tickets_fired, 0u);  // ticket severity disabled
}

// Alert conformance, quiet side: the same SLO on a fault-free run must
// never leave inactive — a healthy run fires zero alerts of any severity.
TEST(ChaosTest, FaultFreeRunFiresNoAlerts) {
  ChaosOptions options;
  options.seed = 1003;
  options.slo_spec = "freshness;success";
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.secondary_reads, 0u);
  EXPECT_EQ(report.slo_event_count, 0u) << report.trace;
}

// SLO-enabled runs stay deterministic: identical seeds and specs produce
// identical traces, including the alert-event lines.
TEST(ChaosTest, SloTracesAreDeterministic) {
  auto make = [] {
    ChaosOptions options;
    options.seed = 1001;
    options.schedule.Add(Event(FaultType::kPartition, 80, 140, {1, 2}));
    options.slo_spec = "freshness:bound=2:window=10:short=10";
    return options;
  };
  const ChaosReport a = RunChaos(make());
  const ChaosReport b = RunChaos(make());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_NE(a.trace.find("slo t="), std::string::npos)
      << "default bundle produced no alert lines under a staleness fault";
}

// Different seeds must not produce the same trace (the trace actually
// carries run-specific content).
TEST(ChaosTest, DifferentSeedsDiverge) {
  ChaosOptions a;
  a.seed = 5;
  ChaosOptions b;
  b.seed = 6;
  EXPECT_NE(RunChaos(a).trace, RunChaos(b).trace);
}

}  // namespace
}  // namespace dcg
