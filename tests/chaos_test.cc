// Deterministic chaos tests: scripted and seeded-random fault schedules
// run against the full Decongestant stack, with the freshness / reaction /
// recovery / drain invariants checked by tests/chaos_harness.h.

#include <gtest/gtest.h>

#include "chaos_harness.h"

namespace dcg {
namespace {

using chaos::ChaosOptions;
using chaos::ChaosReport;
using chaos::RunChaos;
using fault::FaultEvent;
using fault::FaultSchedule;
using fault::FaultType;

FaultEvent Event(FaultType type, double start_s, double end_s,
                 std::vector<int> nodes) {
  FaultEvent event;
  event.type = type;
  event.start = sim::Seconds(start_s);
  event.end = end_s < 0 ? -1 : sim::Seconds(end_s);
  event.nodes = std::move(nodes);
  return event;
}

// Schedule 1 — the headline scenario: both secondaries partitioned away
// from the primary for 60 s. Their data freezes while the primary keeps
// committing, so true staleness climbs 1 s/s past StaleBound; the
// balancer must zero the fraction within one control period, never serve
// a read staler than bound + grace, and rebalance after the heal.
TEST(ChaosTest, FullSecondaryPartitionForcesFractionToZero) {
  ChaosOptions options;
  options.seed = 1001;
  options.schedule.Add(
      Event(FaultType::kPartition, 80, 140, {1, 2}));
  options.expect_zero_within_period = true;
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.secondary_reads, 0u);
  // The partition really happened: the watchdog restarted pull chains.
  EXPECT_GT(report.pull_restarts, 0u);
}

// Schedule 2 — crash the primary mid-run, let the survivors elect, then
// restart the old primary (it rejoins via initial sync). Reads must keep
// flowing and the cluster must fully converge after the drill.
TEST(ChaosTest, PrimaryCrashElectionAndRejoin) {
  ChaosOptions options;
  options.seed = 1002;
  options.schedule.Add(Event(FaultType::kCrash, 80, -1, {0}))
      .Add(Event(FaultType::kRestart, 140, -1, {0}));
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_EQ(report.elections, 1u);
  EXPECT_GT(report.secondary_reads, 0u);
}

// Schedule 3 — replication-apply throttle: the network is perfect but one
// secondary's apply thread runs 40x slow, so it lags past StaleBound.
// The estimate (max over secondaries) must gate the fraction to 0, and
// the node must catch back up after the heal.
TEST(ChaosTest, ApplyThrottleLagGatesAndRecovers) {
  ChaosOptions options;
  options.seed = 1003;
  {
    FaultEvent event = Event(FaultType::kApplyThrottle, 80, 150, {1, 2});
    event.value = 40.0;
    options.schedule.Add(event);
  }
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.worst_secondary_staleness, 0);
}

// Schedule 4 — latency spike on every link of the primary (client links
// included): replication and routing slow down but nothing is lost. The
// balancer's RTT handling must cope; all invariants hold.
TEST(ChaosTest, PrimaryLatencySpike) {
  ChaosOptions options;
  options.seed = 1004;
  {
    FaultEvent event = Event(FaultType::kLatencySpike, 80, 150, {0});
    event.value = 3.0;
    event.delay = sim::Millis(10);
    options.schedule.Add(event);
  }
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.secondary_reads, 0u);
}

// Schedule 5 — asymmetric packet loss into one secondary: getMore
// batches and heartbeats are dropped at 30%, exercising the pull-chain
// watchdog. Freshness must hold (lost heartbeats only make the estimate
// more conservative).
TEST(ChaosTest, AsymmetricPacketLossExercisesWatchdog) {
  ChaosOptions options;
  options.seed = 1005;
  {
    FaultEvent event = Event(FaultType::kPacketLoss, 80, 150, {1});
    event.value = 0.30;
    event.inbound_only = true;
    options.schedule.Add(event);
  }
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
  EXPECT_GT(report.pull_restarts, 0u);
}

// Schedule 6 — combined seeded-random timelines: a handful of mixed
// faults (latency, loss, partition, throttle, negative skew, slowdown,
// plus a crash/restart cycle) per seed. Every invariant must hold for
// every seed.
class RandomChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomChaosTest, InvariantsHoldUnderRandomSchedule) {
  ChaosOptions options;
  options.seed = GetParam();
  options.schedule =
      fault::MakeRandomSchedule(GetParam(), options.duration, 3);
  ASSERT_FALSE(options.schedule.empty());
  const ChaosReport report = RunChaos(options);
  EXPECT_TRUE(report.ok()) << report.ViolationText();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChaosTest,
                         ::testing::Values(7u, 21u, 99u));

// Determinism: the same seed and schedule must produce a bit-identical
// trace — period rows, fault log, message counters, and database
// fingerprints all included.
TEST(ChaosTest, IdenticalSeedsProduceIdenticalTraces) {
  ChaosOptions options;
  options.seed = 77;
  options.schedule = fault::MakeRandomSchedule(77, options.duration, 3);
  const ChaosReport first = RunChaos(options);
  const ChaosReport second = RunChaos(options);
  EXPECT_TRUE(first.ok()) << first.ViolationText();
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);
}

// Different seeds must not produce the same trace (the trace actually
// carries run-specific content).
TEST(ChaosTest, DifferentSeedsDiverge) {
  ChaosOptions a;
  a.seed = 5;
  ChaosOptions b;
  b.seed = 6;
  EXPECT_NE(RunChaos(a).trace, RunChaos(b).trace);
}

}  // namespace
}  // namespace dcg
