// Tests for the wire-protocol command layer and end-to-end OpContext:
// client-enforced deadlines (maxTimeMS), retries with re-selection on a
// different node, retryable-write dedup across a lost acknowledgement,
// server-checked primary contracts (NotWritablePrimary), and opt-in
// hedged reads.

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "driver/client.h"
#include "proto/command.h"
#include "repl/replica_set.h"

namespace dcg::driver {
namespace {

class CommandTest : public ::testing::Test {
 protected:
  void Build(ClientOptions options = {}, int secondaries = 2) {
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    client_host_ = network_->AddHost("client");
    repl::ReplicaSetParams params;
    params.secondaries = secondaries;
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    hosts_.clear();
    for (int i = 0; i <= secondaries; ++i) {
      hosts_.push_back(network_->AddHost("n" + std::to_string(i)));
      network_->SetLink(client_host_, hosts_[i], sim::Millis(1), 0);
    }
    rs_ = std::make_unique<repl::ReplicaSet>(&loop_, sim::Rng(2),
                                             network_.get(), params,
                                             server_params, hosts_);
    client_ = std::make_unique<MongoClient>(&loop_, sim::Rng(3),
                                            rs_->command_bus(), client_host_,
                                            options);
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  net::HostId client_host_;
  std::vector<net::HostId> hosts_;
  std::unique_ptr<repl::ReplicaSet> rs_;
  std::unique_ptr<MongoClient> client_;
};

TEST_F(CommandTest, DeadlineFailsSilentlyLostOpExactlyOnTime) {
  // The primary's link is blocked: the find is silently lost and no
  // server will ever error. Only the client-side deadline can keep the
  // maxTimeMS promise.
  Build();
  network_->BlockPair(client_host_, hosts_[0]);
  OpOptions opts;
  opts.deadline = sim::Millis(500);
  sim::Time done_at = -1;
  client_->Read(
      ReadPreference::kPrimary, server::OpClass::kPointRead,
      [](const store::Database&) {},
      [&](const MongoClient::ReadResult& r) {
        done_at = loop_.Now();
        EXPECT_FALSE(r.ok);
        EXPECT_TRUE(r.timed_out);
      },
      opts);
  loop_.RunAll();
  EXPECT_EQ(done_at, sim::Millis(500));
  EXPECT_EQ(client_->op_counters().timed_out, 1u);
  EXPECT_EQ(client_->op_counters().ok, 0u);
}

TEST_F(CommandTest, DeadlineCapsRetriesAndStillFiresOnTime) {
  ClientOptions options;
  options.attempt_timeout = sim::Millis(100);
  options.retry_backoff_base = sim::Millis(2);
  Build(options);
  network_->BlockPair(client_host_, hosts_[0]);
  OpOptions opts;
  opts.deadline = sim::Millis(450);
  sim::Time done_at = -1;
  int retries = -1;
  client_->Read(
      ReadPreference::kPrimary, server::OpClass::kPointRead,
      [](const store::Database&) {},
      [&](const MongoClient::ReadResult& r) {
        done_at = loop_.Now();
        retries = r.retries;
        EXPECT_TRUE(r.timed_out);
      },
      opts);
  loop_.RunAll();
  // Several attempts burned (kPrimary has no other node to move to), yet
  // the op failed exactly at its deadline, not at an attempt boundary.
  EXPECT_EQ(done_at, sim::Millis(450));
  EXPECT_GE(retries, 2);
}

TEST_F(CommandTest, RetryBudgetExhaustionFailsWithoutTimeout) {
  ClientOptions options;
  options.attempt_timeout = sim::Millis(50);
  Build(options);
  network_->BlockPair(client_host_, hosts_[0]);
  OpOptions opts;
  opts.max_retries = 2;
  bool done = false;
  client_->Read(
      ReadPreference::kPrimary, server::OpClass::kPointRead,
      [](const store::Database&) {},
      [&](const MongoClient::ReadResult& r) {
        done = true;
        EXPECT_FALSE(r.ok);
        EXPECT_FALSE(r.timed_out);  // budget spent, not maxTimeMS
        EXPECT_EQ(r.retries, 2);
      },
      opts);
  loop_.RunAll();
  EXPECT_TRUE(done);
}

TEST_F(CommandTest, SilentLossRetriesOnAnotherSecondary) {
  // Commands toward secondary 1 vanish (one-directional loss): every op
  // that first selects node 1 must time out its attempt and complete via
  // re-selection on node 2 — never by erroring out.
  ClientOptions options;
  options.attempt_timeout = sim::Millis(100);
  Build(options);
  net::Network::LinkFault fault;
  fault.drop_probability = 1.0;
  network_->SetLinkFault(client_host_, hosts_[1], fault);

  int completed = 0, retried = 0;
  std::function<void(int)> issue = [&](int remaining) {
    if (remaining == 0) return;
    client_->Read(
        ReadPreference::kSecondary, server::OpClass::kPointRead,
        [](const store::Database&) {},
        [&, remaining](const MongoClient::ReadResult& r) {
          ++completed;
          EXPECT_TRUE(r.ok);
          EXPECT_EQ(r.node, 2);  // node 1 can never answer
          if (r.retries > 0) ++retried;
          issue(remaining - 1);
        });
  };
  issue(40);
  loop_.RunAll();
  EXPECT_EQ(completed, 40);
  // The RNG spread selections over both secondaries, so some ops needed
  // the failover path.
  EXPECT_GT(retried, 0);
  EXPECT_LT(retried, 40);
  EXPECT_EQ(client_->op_counters().retried, static_cast<uint64_t>(retried));
}

TEST_F(CommandTest, RetryableWriteIsNotReappliedAcrossLostAck) {
  ClientOptions options;
  options.attempt_timeout = sim::Millis(100);
  options.retry_backoff_base = sim::Millis(2);
  Build(options);
  // Seed the same doc everywhere (pre-replicated snapshot).
  for (int i = 0; i < 3; ++i) {
    rs_->node(i).db().GetOrCreate("t").Insert(
        doc::Value::Doc({{"_id", 1}, {"v", 0}}));
  }
  // The write command reaches the primary, but every acknowledgement is
  // lost until t = 250 ms: the first attempt commits, the client cannot
  // know, and each retry carries the same op id.
  net::Network::LinkFault fault;
  fault.drop_probability = 1.0;
  network_->SetLinkFault(hosts_[0], client_host_, fault);
  loop_.ScheduleAt(sim::Millis(250), [this] {
    network_->ClearLinkFault(hosts_[0], client_host_);
  });

  bool done = false;
  client_->Write(
      server::OpClass::kUpdate,
      [](repl::TxnContext* ctx) {
        doc::UpdateSpec spec;
        spec.Inc("v", doc::Value(int64_t{1}));
        ctx->Update("t", doc::Value(1), spec);
      },
      [&](const MongoClient::WriteResult& r) {
        done = true;
        EXPECT_TRUE(r.ok);
        EXPECT_TRUE(r.committed);
        EXPECT_GT(r.retries, 0);
      });
  loop_.RunAll();
  ASSERT_TRUE(done);
  // The transaction table deduplicated the retries: applied exactly once.
  EXPECT_EQ(rs_->committed_writes(), 1u);
  EXPECT_EQ(rs_->primary()
                .db()
                .Get("t")
                ->FindById(doc::Value(1))
                ->Find("v")
                ->as_int64(),
            1);
}

TEST_F(CommandTest, ServiceRejectsWriteAtSecondaryWithNotPrimary) {
  // The primary contract is server-checked: a write addressed to a
  // secondary is refused with kNotPrimary, and the reply's hello
  // piggyback names the real primary for the driver to adopt.
  Build();
  bool got = false;
  proto::Command command;
  command.kind = proto::CommandKind::kWrite;
  command.ctx.op_id = 4242;
  command.op_class = server::OpClass::kInsert;
  command.txn_body = [](repl::TxnContext* ctx) {
    ctx->Insert("t", doc::Value::Doc({{"_id", 5}}));
  };
  command.reply_to = client_host_;
  command.on_reply = [&](const proto::Reply& reply) {
    got = true;
    EXPECT_EQ(reply.op_id, 4242u);
    EXPECT_EQ(reply.status, proto::ReplyStatus::kNotPrimary);
    EXPECT_FALSE(reply.committed);
    EXPECT_FALSE(reply.from_primary);
    EXPECT_EQ(reply.hello.primary_index, 0);
  };
  rs_->command_bus()->Send(client_host_, hosts_[1], command);
  loop_.RunAll();
  EXPECT_TRUE(got);
  EXPECT_EQ(rs_->committed_writes(), 0u);
  EXPECT_EQ(rs_->node(1).db().Get("t"), nullptr);
}

TEST_F(CommandTest, FindWithRequirePrimaryRefusedAtSecondary) {
  Build();
  bool got = false;
  proto::Command command;
  command.kind = proto::CommandKind::kFind;
  command.ctx.op_id = 7;
  command.require_primary = true;
  command.read_body = [](const store::Database&) { FAIL() << "must not run"; };
  command.reply_to = client_host_;
  command.on_reply = [&](const proto::Reply& reply) {
    got = true;
    EXPECT_EQ(reply.status, proto::ReplyStatus::kNotPrimary);
  };
  rs_->command_bus()->Send(client_host_, hosts_[2], command);
  loop_.RunAll();
  EXPECT_TRUE(got);
}

TEST_F(CommandTest, HedgedReadWinsWhenTargetIsSlow) {
  ClientOptions options;
  options.hedged_reads = true;
  options.hedge_quantile = 0.5;
  options.hedge_min_delay = sim::Millis(1);
  Build(options);

  // Warm the latency ring with healthy reads.
  int warm = 0;
  for (int i = 0; i < 16; ++i) {
    client_->Read(ReadPreference::kSecondary, server::OpClass::kPointRead,
                  [](const store::Database&) {},
                  [&](const MongoClient::ReadResult&) { ++warm; });
  }
  loop_.RunAll();
  ASSERT_EQ(warm, 16);

  // Now node 2 turns into a straggler: +200 ms on every message. Reads
  // that pick it are rescued by a hedge to node 1 long before the
  // straggler answers.
  net::Network::LinkFault slow;
  slow.extra_delay = sim::Millis(200);
  network_->SetLinkFault(client_host_, hosts_[2], slow);
  network_->SetLinkFault(hosts_[2], client_host_, slow);

  int completed = 0, hedge_wins = 0;
  std::function<void(int)> issue = [&](int remaining) {
    if (remaining == 0) return;
    client_->Read(ReadPreference::kSecondary, server::OpClass::kPointRead,
                  [](const store::Database&) {},
                  [&, remaining](const MongoClient::ReadResult& r) {
                    ++completed;
                    EXPECT_TRUE(r.ok);
                    if (r.hedge_won) {
                      ++hedge_wins;
                      EXPECT_TRUE(r.hedged);
                      EXPECT_EQ(r.node, 1);
                      // Far faster than the straggler's 400 ms round trip.
                      EXPECT_LT(r.latency, sim::Millis(100));
                    }
                    issue(remaining - 1);
                  });
  };
  issue(30);
  loop_.RunAll();
  EXPECT_EQ(completed, 30);
  EXPECT_GT(hedge_wins, 0);
  EXPECT_EQ(client_->op_counters().hedges_won,
            static_cast<uint64_t>(hedge_wins));
  EXPECT_GE(client_->op_counters().hedges_sent,
            client_->op_counters().hedges_won);
}

TEST_F(CommandTest, HedgedReadsCutTailLatency) {
  // Same topology and seeds, one client hedged and one not, with a
  // straggler secondary: hedging must shrink the latency tail.
  auto run = [](bool hedged) {
    sim::EventLoop loop;
    net::Network network(&loop, sim::Rng(1));
    const net::HostId client_host = network.AddHost("client");
    repl::ReplicaSetParams params;
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    std::vector<net::HostId> hosts;
    for (int i = 0; i < 3; ++i) {
      hosts.push_back(network.AddHost("n" + std::to_string(i)));
      network.SetLink(client_host, hosts[i], sim::Millis(1), 0);
    }
    repl::ReplicaSet rs(&loop, sim::Rng(2), &network, params, server_params,
                        hosts);
    ClientOptions options;
    options.hedged_reads = hedged;
    options.hedge_quantile = 0.5;
    options.hedge_min_delay = sim::Millis(1);
    MongoClient client(&loop, sim::Rng(3), rs.command_bus(), client_host,
                       options);
    // Node 2 straggles by 80 ms each way.
    net::Network::LinkFault slow;
    slow.extra_delay = sim::Millis(80);
    network.SetLinkFault(client_host, hosts[2], slow);
    network.SetLinkFault(hosts[2], client_host, slow);

    std::vector<sim::Duration> latencies;
    std::function<void(int)> issue = [&](int remaining) {
      if (remaining == 0) return;
      client.Read(ReadPreference::kSecondary, server::OpClass::kPointRead,
                  [](const store::Database&) {},
                  [&, remaining](const MongoClient::ReadResult& r) {
                    latencies.push_back(r.latency);
                    issue(remaining - 1);
                  });
    };
    issue(200);
    loop.RunAll();
    std::sort(latencies.begin(), latencies.end());
    return latencies;
  };

  const std::vector<sim::Duration> plain = run(false);
  const std::vector<sim::Duration> with_hedge = run(true);
  ASSERT_EQ(plain.size(), 200u);
  ASSERT_EQ(with_hedge.size(), 200u);
  const sim::Duration plain_p99 = plain[197];
  const sim::Duration hedged_p99 = with_hedge[197];
  // The plain tail carries the full straggler round trip; the hedged
  // tail is rescued well below it.
  EXPECT_GE(plain_p99, sim::Millis(160));
  EXPECT_LT(hedged_p99, plain_p99 / 2);
}

TEST_F(CommandTest, HedgingOffSchedulesNothingAndDrawsNoRandomness) {
  // Two identically-seeded clients — hedging off vs. on — must select the
  // same nodes for the same ops when no hedge ever fires... but hedging
  // *on* changes nothing else either: with healthy symmetric links and a
  // hedge delay above every completion, results are identical.
  Build();
  std::vector<int> nodes;
  std::function<void(int)> issue = [&](int remaining) {
    if (remaining == 0) return;
    client_->Read(ReadPreference::kSecondary, server::OpClass::kPointRead,
                  [](const store::Database&) {},
                  [&, remaining](const MongoClient::ReadResult& r) {
                    EXPECT_FALSE(r.hedged);
                    nodes.push_back(r.node);
                    issue(remaining - 1);
                  });
  };
  issue(50);
  loop_.RunAll();
  ASSERT_EQ(nodes.size(), 50u);

  // Rebuild with identical seeds: selection sequence must be identical
  // (the hedged-off path draws no extra randomness).
  Build();
  std::vector<int> nodes_again;
  std::function<void(int)> issue_again = [&](int remaining) {
    if (remaining == 0) return;
    client_->Read(ReadPreference::kSecondary, server::OpClass::kPointRead,
                  [](const store::Database&) {},
                  [&, remaining](const MongoClient::ReadResult& r) {
                    nodes_again.push_back(r.node);
                    issue_again(remaining - 1);
                  });
  };
  issue_again(50);
  loop_.RunAll();
  EXPECT_EQ(nodes, nodes_again);
}

TEST_F(CommandTest, PerOpCountersAccumulateOnTheUnifiedPath) {
  ClientOptions options;
  options.attempt_timeout = sim::Millis(100);
  Build(options);
  int observed = 0;
  client_->AddOpObserver([&](const MongoClient::OpStats& stats) {
    ++observed;
    EXPECT_TRUE(stats.ok);
    EXPECT_GT(stats.latency, 0);
  });
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    client_->Read(ReadPreference::kPrimary, server::OpClass::kPointRead,
                  [](const store::Database&) {},
                  [&](const MongoClient::ReadResult&) { ++completed; });
  }
  client_->Write(
      server::OpClass::kInsert,
      [](repl::TxnContext* ctx) {
        ctx->Insert("t", doc::Value::Doc({{"_id", 1}}));
      },
      [&](const MongoClient::WriteResult&) { ++completed; });
  loop_.RunAll();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(observed, 6);  // reads AND writes flow through the observer
  EXPECT_EQ(client_->op_counters().ok, 6u);
  EXPECT_EQ(client_->op_counters().timed_out, 0u);
  EXPECT_EQ(client_->op_counters().retried, 0u);
}

}  // namespace
}  // namespace dcg::driver
