// Cross-cutting property tests: algebraic laws that must hold for any
// input — the document value total order, index-accelerated queries vs
// plain predicate evaluation, update-spec serialization, and histogram
// merge semantics.

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "doc/update.h"
#include "metrics/histogram.h"
#include "sim/random.h"
#include "store/collection.h"

namespace dcg {
namespace {

// Random value generator covering every type, with bounded nesting.
doc::Value RandomValue(sim::Rng* rng, int depth = 0) {
  const int64_t kind = rng->UniformInt(0, depth >= 2 ? 5 : 7);
  switch (kind) {
    case 0:
      return doc::Value();
    case 1:
      return doc::Value(rng->Bernoulli(0.5));
    case 2:
      return doc::Value(rng->UniformInt(-100, 100));
    case 3:
      return doc::Value(static_cast<double>(rng->UniformInt(-1000, 1000)) /
                        8.0);
    case 4: {
      std::string s;
      const int64_t len = rng->UniformInt(0, 6);
      for (int64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng->UniformInt(0, 3)));
      }
      return doc::Value(std::move(s));
    }
    case 5:
      return doc::Value::Timestamp(rng->UniformInt(0, 1000));
    case 6: {
      doc::Array a;
      const int64_t len = rng->UniformInt(0, 3);
      for (int64_t i = 0; i < len; ++i) {
        a.push_back(RandomValue(rng, depth + 1));
      }
      return doc::Value(std::move(a));
    }
    default: {
      doc::Object o;
      const int64_t len = rng->UniformInt(0, 3);
      for (int64_t i = 0; i < len; ++i) {
        o.emplace_back(std::string(1, static_cast<char>('a' + i)),
                       RandomValue(rng, depth + 1));
      }
      return doc::Value(std::move(o));
    }
  }
}

int Sign(int c) { return c < 0 ? -1 : (c > 0 ? 1 : 0); }

class ValueOrderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueOrderTest, CompareIsATotalOrder) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const doc::Value a = RandomValue(&rng);
    const doc::Value b = RandomValue(&rng);
    const doc::Value c = RandomValue(&rng);

    // Reflexivity & antisymmetry.
    EXPECT_EQ(a.Compare(a), 0);
    EXPECT_EQ(Sign(a.Compare(b)), -Sign(b.Compare(a)));

    // Consistency of operators with Compare.
    EXPECT_EQ(a == b, a.Compare(b) == 0);
    EXPECT_EQ(a < b, a.Compare(b) < 0);

    // Transitivity: sort the triple via Compare; pairwise order must
    // agree along the sorted sequence.
    std::vector<const doc::Value*> sorted = {&a, &b, &c};
    std::sort(sorted.begin(), sorted.end(),
              [](const doc::Value* x, const doc::Value* y) {
                return x->Compare(*y) < 0;
              });
    EXPECT_LE(sorted[0]->Compare(*sorted[1]), 0);
    EXPECT_LE(sorted[1]->Compare(*sorted[2]), 0);
    EXPECT_LE(sorted[0]->Compare(*sorted[2]), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueOrderTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

class IndexEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexEquivalenceTest, IndexedFindEqualsPredicateScan) {
  // The index fast path of Collection::Find must return exactly the
  // documents a brute-force Matches() scan selects, for arbitrary data
  // and random equality filters.
  sim::Rng rng(GetParam());
  store::Collection with_index("with_index");
  store::Collection without_index("without_index");
  with_index.CreateIndex("by_a", {"a"});
  with_index.CreateIndex("by_ab", {"a", "b"});

  for (int64_t id = 0; id < 500; ++id) {
    doc::Value d = doc::Value::Doc({{"_id", id},
                                    {"a", rng.UniformInt(0, 9)},
                                    {"b", rng.UniformInt(0, 4)}});
    if (rng.Bernoulli(0.1)) d.Erase("a");  // some docs miss the path
    with_index.Insert(d);
    without_index.Insert(d);
  }

  for (int trial = 0; trial < 50; ++trial) {
    doc::Filter filter =
        rng.Bernoulli(0.5)
            ? doc::Filter::Eq("a", doc::Value(rng.UniformInt(0, 10)))
            : doc::Filter::And(
                  {doc::Filter::Eq("a", doc::Value(rng.UniformInt(0, 10))),
                   doc::Filter::Eq("b", doc::Value(rng.UniformInt(0, 5)))});
    auto fast = with_index.Find(filter);
    auto slow = without_index.Find(filter);
    ASSERT_EQ(fast.size(), slow.size()) << filter.ToString();
    // Same document sets (order may differ: index order vs _id order).
    auto key = [](const store::DocPtr& d) {
      return d->Find("_id")->as_int64();
    };
    std::vector<int64_t> fast_ids, slow_ids;
    for (const auto& d : fast) fast_ids.push_back(key(d));
    for (const auto& d : slow) slow_ids.push_back(key(d));
    std::sort(fast_ids.begin(), fast_ids.end());
    std::sort(slow_ids.begin(), slow_ids.end());
    EXPECT_EQ(fast_ids, slow_ids) << filter.ToString();
  }
  with_index.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalenceTest,
                         ::testing::Values(10u, 20u, 30u));

class UpdateRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpdateRoundTripTest, SerializedSpecReplaysIdentically) {
  // For random specs and random documents: Apply(doc) and
  // FromValue(ToValue(spec)).Apply(copy) end in the same state — the
  // property oplog shipping of operator updates depends on.
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    doc::UpdateSpec spec;
    const int64_t ops = rng.UniformInt(1, 5);
    for (int64_t i = 0; i < ops; ++i) {
      const std::string path(1, static_cast<char>('a' + rng.UniformInt(0, 4)));
      switch (rng.UniformInt(0, 3)) {
        case 0:
          spec.Set(path, doc::Value(rng.UniformInt(-10, 10)));
          break;
        case 1:
          spec.Inc(path, doc::Value(rng.UniformInt(-3, 3)));
          break;
        case 2:
          spec.Unset(path);
          break;
        default:
          spec.Max(path, doc::Value(rng.UniformInt(-10, 10)));
      }
    }
    doc::Value original = doc::Value::Doc({{"_id", 1}});
    for (int f = 0; f < 3; ++f) {
      original.Set(std::string(1, static_cast<char>('a' + f)),
                   doc::Value(rng.UniformInt(-5, 5)));
    }
    doc::Value direct = original;
    doc::Value replayed = original;
    const bool ok_direct = spec.Apply(&direct);
    const bool ok_replayed =
        doc::UpdateSpec::FromValue(spec.ToValue()).Apply(&replayed);
    EXPECT_EQ(ok_direct, ok_replayed);
    if (ok_direct) EXPECT_EQ(direct, replayed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateRoundTripTest,
                         ::testing::Values(40u, 50u, 60u));

TEST(HistogramLawsTest, MergeEqualsCombinedAdds) {
  sim::Rng rng(70);
  metrics::Histogram split_a, split_b, combined;
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.Exponential(1e5);
    combined.Add(v);
    (i % 2 == 0 ? split_a : split_b).Add(v);
  }
  split_a.Merge(split_b);
  EXPECT_EQ(split_a.count(), combined.count());
  EXPECT_DOUBLE_EQ(split_a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(split_a.min(), combined.min());
  EXPECT_DOUBLE_EQ(split_a.max(), combined.max());
  for (double p : {25.0, 50.0, 80.0, 99.0}) {
    EXPECT_DOUBLE_EQ(split_a.Percentile(p), combined.Percentile(p)) << p;
  }
}

// --- Balance Fraction controller laws (Algorithm 1 and its proportional
// variant). The Read Balancer guarantees latest_fraction lies within
// [low_bal, high_bal] on entry; the controllers must keep it there. ---

core::ControlInputs RandomInputs(sim::Rng* rng,
                                 const core::BalancerConfig& config) {
  core::ControlInputs inputs;
  inputs.latest_fraction =
      config.low_bal +
      rng->NextDouble() * (config.high_bal - config.low_bal);
  inputs.ratio = rng->NextDouble() * 4.0;  // spans well past the dead band
  inputs.ratio_valid = rng->Bernoulli(0.8);
  inputs.history_flat = rng->Bernoulli(0.3);
  return inputs;
}

class ControllerLawsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ControllerLawsTest, OutputStaysWithinBounds) {
  sim::Rng rng(GetParam());
  core::BalancerConfig config;
  core::StepController step;
  core::ProportionalController proportional;
  for (int i = 0; i < 5000; ++i) {
    const core::ControlInputs inputs = RandomInputs(&rng, config);
    for (core::FractionController* controller :
         {static_cast<core::FractionController*>(&step),
          static_cast<core::FractionController*>(&proportional)}) {
      const double next = controller->NextFraction(inputs, config);
      EXPECT_GE(next, config.low_bal) << controller->name();
      EXPECT_LE(next, config.high_bal) << controller->name();
    }
  }
}

TEST_P(ControllerLawsTest, InvalidRatioAlwaysHolds) {
  // An empty latency list gives no evidence; the fraction must not move.
  sim::Rng rng(GetParam());
  core::BalancerConfig config;
  core::StepController step;
  core::ProportionalController proportional;
  for (int i = 0; i < 2000; ++i) {
    core::ControlInputs inputs = RandomInputs(&rng, config);
    inputs.ratio_valid = false;
    EXPECT_EQ(step.NextFraction(inputs, config), inputs.latest_fraction);
    EXPECT_EQ(proportional.NextFraction(inputs, config),
              inputs.latest_fraction);
  }
}

TEST_P(ControllerLawsTest, StepHoldsInsideDeadBandUnlessProbing) {
  sim::Rng rng(GetParam());
  core::BalancerConfig config;
  core::StepController step;
  for (int i = 0; i < 2000; ++i) {
    core::ControlInputs inputs = RandomInputs(&rng, config);
    inputs.ratio_valid = true;
    inputs.ratio = config.low_ratio +
                   rng.NextDouble() * (config.high_ratio - config.low_ratio);
    // Not flat: hold exactly.
    inputs.history_flat = false;
    EXPECT_EQ(step.NextFraction(inputs, config), inputs.latest_fraction);
    // Flat but probing disabled (the A2 ablation): still hold.
    inputs.history_flat = true;
    auto no_probe = config;
    no_probe.downward_probe = false;
    EXPECT_EQ(step.NextFraction(inputs, no_probe), inputs.latest_fraction);
  }
}

TEST_P(ControllerLawsTest, StepProbesDownOnlyWhenHistoryFlat) {
  sim::Rng rng(GetParam());
  core::BalancerConfig config;
  core::StepController step;
  for (int i = 0; i < 2000; ++i) {
    core::ControlInputs inputs = RandomInputs(&rng, config);
    inputs.ratio_valid = true;
    inputs.ratio = config.low_ratio +
                   rng.NextDouble() * (config.high_ratio - config.low_ratio);
    inputs.history_flat = true;
    const double next = step.NextFraction(inputs, config);
    EXPECT_DOUBLE_EQ(
        next, std::max(inputs.latest_fraction - config.delta, config.low_bal));
    if (inputs.latest_fraction > config.low_bal) {
      EXPECT_LT(next, inputs.latest_fraction);
    }
  }
}

TEST(ControllerLawsTest, StepMovesByExactlyDeltaOutsideDeadBand) {
  core::BalancerConfig config;
  core::StepController step;
  core::ControlInputs inputs;
  inputs.ratio_valid = true;
  inputs.latest_fraction = 0.50;
  inputs.ratio = config.high_ratio + 0.5;  // primary congested
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), 0.50 + config.delta);
  inputs.ratio = config.low_ratio - 0.5;  // secondaries congested
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), 0.50 - config.delta);
  // Saturation at the rails.
  inputs.latest_fraction = config.high_bal;
  inputs.ratio = config.high_ratio + 1.0;
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), config.high_bal);
  inputs.latest_fraction = config.low_bal;
  inputs.ratio = config.low_ratio - 0.5;
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), config.low_bal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerLawsTest,
                         ::testing::Values(80u, 81u, 82u));

TEST(HistogramLawsTest, PercentileIsMonotoneInP) {
  sim::Rng rng(71);
  metrics::Histogram h;
  for (int i = 0; i < 5000; ++i) h.Add(rng.LogNormal(1e4, 1.2));
  double prev = 0;
  for (double p = 0; p <= 100.0; p += 2.5) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << p;
    prev = v;
  }
}

}  // namespace
}  // namespace dcg
