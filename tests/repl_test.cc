// Tests for replication: Oplog, TxnContext, ReplicaSet log shipping,
// staleness estimation, flow control, and convergence properties.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "net/network.h"
#include "repl/oplog.h"
#include "repl/replica_set.h"
#include "repl/txn.h"

namespace dcg::repl {
namespace {

OplogEntry Entry(uint64_t seq, sim::Time wall = 0) {
  OplogEntry e;
  e.optime = {wall, seq};
  e.kind = OpKind::kNoop;
  e.collection = "c";
  return e;
}

TEST(OplogTest, AppendAndRead) {
  Oplog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.last_seq(), 0u);
  log.Append(Entry(1));
  log.Append(Entry(2));
  log.Append(Entry(3));
  EXPECT_EQ(log.last_seq(), 3u);

  auto batch = log.ReadAfter(0, 10);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].optime.seq, 1u);
  EXPECT_EQ(batch[2].optime.seq, 3u);

  batch = log.ReadAfter(2, 10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].optime.seq, 3u);

  EXPECT_TRUE(log.ReadAfter(3, 10).empty());
  EXPECT_TRUE(log.ReadAfter(99, 10).empty());
}

TEST(OplogTest, ReadRespectsBatchLimit) {
  Oplog log;
  for (uint64_t i = 1; i <= 10; ++i) log.Append(Entry(i));
  auto batch = log.ReadAfter(0, 4);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.back().optime.seq, 4u);
}

TEST(OplogTest, CapEvictsOldEntries) {
  Oplog log(5);
  for (uint64_t i = 1; i <= 8; ++i) log.Append(Entry(i));
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.first_seq(), 4u);
  auto batch = log.ReadAfter(3, 10);
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch.front().optime.seq, 4u);
}

TEST(OplogTest, OpTimeOrdering) {
  EXPECT_LT(OpTime({0, 1}), OpTime({0, 2}));
  EXPECT_LE(OpTime({5, 2}), OpTime({0, 2}));  // ordered by seq only
  EXPECT_EQ(OpTime({1, 3}), OpTime({9, 3}));
}

TEST(TxnTest, InsertUpdateRemoveRecordEntries) {
  store::Database db;
  db.GetOrCreate("t");
  TxnContext ctx(&db);
  ctx.Insert("t", doc::Value::Doc({{"_id", 1}, {"v", 10}}));
  doc::UpdateSpec spec;
  spec.Inc("v", doc::Value(int64_t{5}));
  EXPECT_TRUE(ctx.Update("t", doc::Value(1), spec));
  EXPECT_FALSE(ctx.Update("t", doc::Value(99), spec));
  EXPECT_EQ(ctx.entries().size(), 2u);
  EXPECT_EQ(ctx.entries()[0].kind, OpKind::kInsert);
  EXPECT_EQ(ctx.entries()[1].kind, OpKind::kUpdate);
  // Read-your-own-writes inside the transaction.
  EXPECT_EQ(db.Get("t")->FindById(doc::Value(1))->Find("v")->as_int64(), 15);

  EXPECT_TRUE(ctx.Remove("t", doc::Value(1)));
  EXPECT_FALSE(ctx.Remove("t", doc::Value(1)));
  EXPECT_EQ(ctx.entries().size(), 3u);
  EXPECT_EQ(db.Get("t")->size(), 0u);
}

TEST(TxnTest, AbortRestoresPreImages) {
  store::Database db;
  store::Collection& t = db.GetOrCreate("t");
  t.Insert(doc::Value::Doc({{"_id", 1}, {"v", 10}}));
  t.Insert(doc::Value::Doc({{"_id", 2}, {"v", 20}}));
  const uint64_t before = db.Fingerprint();

  TxnContext ctx(&db);
  doc::UpdateSpec spec;
  spec.Set("v", doc::Value(int64_t{99}));
  ctx.Update("t", doc::Value(1), spec);
  ctx.Remove("t", doc::Value(2));
  ctx.Insert("t", doc::Value::Doc({{"_id", 3}, {"v", 30}}));
  EXPECT_NE(db.Fingerprint(), before);

  ctx.Abort();
  EXPECT_TRUE(ctx.aborted());
  EXPECT_TRUE(ctx.entries().empty());
  EXPECT_EQ(db.Fingerprint(), before);
}

// ---------------------------------------------------------------------------
// ReplicaSet fixture: 1 primary + 2 secondaries over a simulated network.
// ---------------------------------------------------------------------------

class ReplicaSetTest : public ::testing::Test {
 protected:
  void Build(ReplicaSetParams params = {},
             server::ServerParams server_params = {}) {
    server_params.service.sigma = 0.0;  // deterministic timings
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    const net::HostId c = network_->AddHost("client");
    std::vector<net::HostId> hosts;
    for (int i = 0; i < params.secondaries + 1; ++i) {
      hosts.push_back(network_->AddHost("node" + std::to_string(i)));
      network_->SetLink(c, hosts[i], sim::Millis(1), 0);
    }
    for (size_t i = 0; i < hosts.size(); ++i) {
      for (size_t j = i + 1; j < hosts.size(); ++j) {
        network_->SetLink(hosts[i], hosts[j], sim::Millis(1), 0);
      }
    }
    rs_ = std::make_unique<ReplicaSet>(&loop_, sim::Rng(2), network_.get(),
                                       params, server_params, hosts);
  }

  void WriteDoc(int64_t id, int64_t v) {
    rs_->WriteTransaction(
        server::OpClass::kInsert,
        [id, v](TxnContext* ctx) {
          ctx->Insert("t", doc::Value::Doc({{"_id", id}, {"v", v}}));
        },
        nullptr);
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<ReplicaSet> rs_;
};

TEST_F(ReplicaSetTest, WritesReplicateToAllSecondaries) {
  Build();
  rs_->Start();
  for (int64_t i = 0; i < 50; ++i) WriteDoc(i, i * 2);
  loop_.RunUntil(sim::Seconds(5));

  EXPECT_EQ(rs_->committed_writes(), 50u);
  EXPECT_EQ(rs_->oplog().last_seq(), 50u);
  for (int i = 1; i <= 2; ++i) {
    EXPECT_EQ(rs_->node(i).last_applied().seq, 50u) << i;
    EXPECT_EQ(rs_->node(i).db().Fingerprint(),
              rs_->primary().db().Fingerprint())
        << i;
  }
  EXPECT_EQ(rs_->MaxTrueStaleness(), 0);
}

TEST_F(ReplicaSetTest, ReadsSeeNodeLocalState) {
  Build();
  rs_->Start();
  WriteDoc(1, 42);
  // Immediately after the write commits (before replication), a secondary
  // read misses while a primary read hits.
  loop_.RunUntil(sim::Millis(10));
  bool primary_saw = false, secondary_saw = true;
  rs_->Read(0, server::OpClass::kPointRead,
            [&](const store::Database& db) {
              primary_saw =
                  db.Get("t") != nullptr &&
                  db.Get("t")->FindById(doc::Value(1)) != nullptr;
            });
  rs_->Read(1, server::OpClass::kPointRead,
            [&](const store::Database& db) {
              secondary_saw =
                  db.Get("t") != nullptr &&
                  db.Get("t")->FindById(doc::Value(1)) != nullptr;
            });
  loop_.RunUntil(sim::Millis(20));
  EXPECT_TRUE(primary_saw);
  EXPECT_FALSE(secondary_saw);

  // After replication catches up the secondary sees it too.
  loop_.RunUntil(sim::Seconds(2));
  rs_->Read(1, server::OpClass::kPointRead,
            [&](const store::Database& db) {
              secondary_saw =
                  db.Get("t")->FindById(doc::Value(1)) != nullptr;
            });
  loop_.RunUntil(sim::Seconds(3));
  EXPECT_TRUE(secondary_saw);
}

TEST_F(ReplicaSetTest, LastAppliedIsMonotonic) {
  Build();
  rs_->Start();
  uint64_t last_seen = 0;
  bool monotonic = true;
  // Sample secondary progress while writes stream in.
  for (int t = 0; t < 100; ++t) {
    loop_.ScheduleAt(sim::Millis(50) * t, [&] {
      const uint64_t seq = rs_->node(1).last_applied().seq;
      if (seq < last_seen) monotonic = false;
      last_seen = seq;
    });
  }
  for (int64_t i = 0; i < 200; ++i) WriteDoc(i, i);
  loop_.RunUntil(sim::Seconds(6));
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(last_seen, 200u);
}

TEST_F(ReplicaSetTest, ServerStatusReportsConservativeStaleness) {
  Build();
  rs_->Start();
  loop_.RunUntil(sim::Seconds(1));
  for (int64_t i = 0; i < 20; ++i) WriteDoc(i, i);

  ReplicaSet::ServerStatusReply reply;
  bool got_reply = false;
  loop_.ScheduleAt(sim::Seconds(1) + sim::Millis(100), [&] {
    rs_->ServerStatus([&](const ReplicaSet::ServerStatusReply& r) {
      reply = r;
      got_reply = true;
    });
  });
  loop_.RunUntil(sim::Seconds(2));
  ASSERT_TRUE(got_reply);
  ASSERT_EQ(reply.secondary_last_applied.size(), 2u);
  // The primary's knowledge of secondary progress lags by heartbeats, so
  // the estimate can only over-state staleness relative to ground truth.
  for (int i = 1; i <= 2; ++i) {
    EXPECT_LE(rs_->node(i).last_applied().seq,
              reply.primary_last_applied.seq);
    EXPECT_GE(reply.secondary_last_applied[i - 1].seq, 0u);
  }
}

TEST_F(ReplicaSetTest, StalenessEstimateNeverBelowTruth) {
  // Property (§2.3): staleness computed from the primary's view is
  // conservative — estimate >= true staleness (up to the 1 s reporting
  // granularity).
  Build();
  rs_->Start();
  bool conservative = true;
  for (int t = 1; t <= 20; ++t) {
    loop_.ScheduleAt(sim::Seconds(1) * t, [&] {
      rs_->ServerStatus([&](const ReplicaSet::ServerStatusReply& r) {
        const int64_t est = ReplicaSet::MaxStalenessSeconds(r);
        const int64_t truth = rs_->MaxTrueStaleness() / sim::kSecond;
        if (est + 1 < truth) conservative = false;  // 1 s slack: in flight
      });
    });
  }
  for (int64_t i = 0; i < 500; ++i) {
    loop_.ScheduleAt(sim::Millis(40) * i, [this, i] { WriteDoc(i, i); });
  }
  loop_.RunUntil(sim::Seconds(21));
  EXPECT_TRUE(conservative);
}

TEST_F(ReplicaSetTest, MaxStalenessSecondsComputation) {
  ReplicaSet::ServerStatusReply reply;
  reply.primary_last_applied = {sim::Seconds(100), 50};
  reply.secondary_last_applied = {{sim::Seconds(97), 40},
                                  {sim::Seconds(92), 30}};
  EXPECT_EQ(ReplicaSet::MaxStalenessSeconds(reply), 8);
  // A caught-up secondary contributes zero even with an old wall time.
  reply.secondary_last_applied = {{sim::Seconds(1), 50},
                                  {sim::Seconds(100), 50}};
  EXPECT_EQ(ReplicaSet::MaxStalenessSeconds(reply), 0);
}

TEST_F(ReplicaSetTest, GetMoreBlockedDuringLongCheckpointCausesSawtooth) {
  ReplicaSetParams params;
  params.getmore_block_threshold = sim::Seconds(3);
  server::ServerParams server_params;
  server_params.checkpoint_interval = sim::Seconds(20);
  server_params.checkpoint_disk_bw = 1e6;
  server_params.checkpoint_max = sim::Seconds(10);
  server_params.write_amplification = 1.0;
  Build(params, server_params);
  rs_->Start();

  // Steady writes; plenty of dirty bytes for a long checkpoint.
  for (int i = 0; i < 1000; ++i) {
    loop_.ScheduleAt(sim::Millis(30) * i, [this, i] { WriteDoc(i, i); });
  }
  loop_.ScheduleAt(sim::Seconds(19), [this] {
    rs_->primary().server().AddDirtyBytes(8'000'000);  // 8 s flush
  });

  sim::Duration peak = 0;
  for (int t = 0; t < 300; ++t) {
    loop_.ScheduleAt(sim::Millis(100) * t, [&] {
      peak = std::max(peak, rs_->MaxTrueStaleness());
    });
  }
  loop_.RunUntil(sim::Seconds(30));
  // Staleness grew to roughly the flush duration while getMore was
  // blocked...
  EXPECT_GT(peak, sim::Seconds(5));
  EXPECT_GT(rs_->getmore_stalls(), 0u);
  // ... and collapsed quickly afterwards.
  loop_.RunUntil(sim::Seconds(34));
  EXPECT_LT(rs_->MaxTrueStaleness(), sim::Seconds(1));
}

TEST_F(ReplicaSetTest, FlowControlThrottlesWritesUnderLag) {
  ReplicaSetParams params;
  params.flow_control_target_lag = sim::Seconds(2);
  params.getmore_block_threshold = sim::Seconds(1);
  server::ServerParams server_params;
  server_params.checkpoint_interval = sim::Seconds(5);
  server_params.checkpoint_disk_bw = 1e6;
  server_params.checkpoint_max = sim::Seconds(20);
  server_params.write_amplification = 1.0;
  Build(params, server_params);
  rs_->Start();
  loop_.ScheduleAt(sim::Seconds(4), [this] {
    rs_->primary().server().AddDirtyBytes(15'000'000);  // 15 s flush
  });
  for (int i = 0; i < 600; ++i) {
    loop_.ScheduleAt(sim::Millis(25) * i, [this, i] { WriteDoc(i, i); });
  }
  loop_.RunUntil(sim::Seconds(15));
  EXPECT_GT(rs_->flow_control_engaged_writes(), 0u);
}

TEST_F(ReplicaSetTest, FlowControlCanBeDisabled) {
  ReplicaSetParams params;
  params.flow_control_enabled = false;
  params.flow_control_target_lag = 0;
  Build(params);
  rs_->Start();
  for (int64_t i = 0; i < 100; ++i) WriteDoc(i, i);
  loop_.RunUntil(sim::Seconds(5));
  EXPECT_EQ(rs_->flow_control_engaged_writes(), 0u);
}

TEST_F(ReplicaSetTest, AbortedTransactionsLeaveNoTrace) {
  Build();
  rs_->Start();
  WriteDoc(1, 10);
  loop_.RunUntil(sim::Seconds(1));
  const uint64_t fp = rs_->primary().db().Fingerprint();
  const uint64_t seq = rs_->oplog().last_seq();

  bool committed = true;
  rs_->WriteTransaction(
      server::OpClass::kUpdate,
      [](TxnContext* ctx) {
        ctx->Insert("t", doc::Value::Doc({{"_id", 99}, {"v", 0}}));
        ctx->Abort();
      },
      [&](bool c) { committed = c; });
  loop_.RunUntil(sim::Seconds(2));
  EXPECT_FALSE(committed);
  EXPECT_EQ(rs_->primary().db().Fingerprint(), fp);
  EXPECT_EQ(rs_->oplog().last_seq(), seq);
  for (int i = 1; i <= 2; ++i) {
    EXPECT_EQ(rs_->node(i).db().Fingerprint(), fp);
  }
}

// Convergence property: arbitrary randomized write streams (inserts,
// updates, removes, multi-op transactions, aborts) leave all replicas
// byte-identical once the log drains.
class ReplicationConvergenceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(ReplicationConvergenceTest, AllNodesConverge) {
  const auto [seed, writes] = GetParam();
  sim::EventLoop loop;
  net::Network network(&loop, sim::Rng(seed));
  const net::HostId c = network.AddHost("client");
  std::vector<net::HostId> hosts;
  ReplicaSetParams params;
  params.secondaries = 2;
  server::ServerParams server_params;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(network.AddHost("n" + std::to_string(i)));
    network.SetLink(c, hosts[i], sim::Millis(1), sim::Micros(50));
  }
  ReplicaSet rs(&loop, sim::Rng(seed + 1), &network, params, server_params,
                hosts);
  rs.Start();

  sim::Rng rng(seed + 2);
  for (int i = 0; i < writes; ++i) {
    const sim::Time at = sim::Millis(5) * i;
    const int64_t id = rng.UniformInt(0, 49);
    const double action = rng.NextDouble();
    loop.ScheduleAt(at, [&rs, id, action, i] {
      rs.WriteTransaction(
          server::OpClass::kUpdate,
          [id, action, i](TxnContext* ctx) {
            const store::Collection* t = ctx->db().Get("t");
            const bool exists =
                t != nullptr && t->FindById(doc::Value(id)) != nullptr;
            if (action < 0.5) {
              if (exists) {
                doc::UpdateSpec spec;
                spec.Inc("v", doc::Value(int64_t{1}))
                    .Set("w", doc::Value(int64_t{i}));
                ctx->Update("t", doc::Value(id), spec);
              } else {
                ctx->Insert("t",
                            doc::Value::Doc({{"_id", id}, {"v", 0}}));
              }
            } else if (action < 0.7) {
              if (exists) ctx->Remove("t", doc::Value(id));
            } else if (action < 0.8) {
              // Multi-op transaction.
              if (exists) {
                doc::UpdateSpec spec;
                spec.Inc("v", doc::Value(int64_t{10}));
                ctx->Update("t", doc::Value(id), spec);
              }
              ctx->Insert("log", doc::Value::Doc({{"_id", i}}));
            } else if (exists) {
              doc::UpdateSpec spec;
              spec.Set("aborted", doc::Value(true));
              ctx->Update("t", doc::Value(id), spec);
              ctx->Abort();
            }
          },
          nullptr);
    });
  }
  loop.RunUntil(sim::Millis(5) * writes + sim::Seconds(10));

  const uint64_t primary_fp = rs.primary().db().Fingerprint();
  for (int i = 1; i <= 2; ++i) {
    EXPECT_EQ(rs.node(i).last_applied().seq, rs.oplog().last_seq());
    EXPECT_EQ(rs.node(i).db().Fingerprint(), primary_fp) << "node " << i;
  }
  EXPECT_EQ(rs.MaxTrueStaleness(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReplicationConvergenceTest,
                         ::testing::Values(std::make_tuple(1, 200),
                                           std::make_tuple(2, 500),
                                           std::make_tuple(3, 1000),
                                           std::make_tuple(4, 300)));

}  // namespace
}  // namespace dcg::repl
