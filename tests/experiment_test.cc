// Integration tests: the full experiment harness reproduces the paper's
// headline claims end-to-end (adaptation, outperforming both baselines,
// bounded staleness, baseline sanity).

#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace dcg::exp {
namespace {

ExperimentConfig YcsbBase(SystemType system, int clients,
                          double read_proportion) {
  ExperimentConfig config;
  config.seed = 17;
  config.system = system;
  config.kind = WorkloadKind::kYcsb;
  config.phases = {{0, clients, read_proportion}};
  config.duration = sim::Seconds(220);
  config.warmup = sim::Seconds(100);
  return config;
}

TEST(ExperimentTest, DecongestantRampsUpUnderYcsbA) {
  ExperimentConfig config = YcsbBase(SystemType::kDecongestant, 150, 0.5);
  Experiment experiment(config);
  experiment.Run();
  // After the warm-up, the fraction has climbed toward the 90 % cap and
  // most reads actually go to secondaries (Figure 2's first phase).
  const Summary summary = experiment.Summarize();
  EXPECT_GT(summary.secondary_percent, 70.0);
  EXPECT_GT(summary.read_throughput, 0.0);
  // Fraction stays within {0} ∪ [0.1, 0.9] in every period.
  for (const PeriodRow& row : experiment.rows()) {
    const double f = row.balance_fraction;
    EXPECT_TRUE(f == 0.0 || (f >= 0.1 - 1e-9 && f <= 0.9 + 1e-9)) << f;
  }
}

TEST(ExperimentTest, DecongestantBeatsBothBaselinesOnYcsbB) {
  // The paper's Figure 5 claim: at high client counts on YCSB-B,
  // Decongestant's throughput exceeds Secondary by ~30 % and Primary by
  // ~2.5x, and its P80 latency is no worse.
  Summary results[3];
  const SystemType systems[] = {SystemType::kDecongestant,
                                SystemType::kPrimary,
                                SystemType::kSecondary};
  for (int i = 0; i < 3; ++i) {
    ExperimentConfig config = YcsbBase(systems[i], 180, 0.95);
    Experiment experiment(config);
    experiment.Run();
    results[i] = experiment.Summarize();
  }
  const Summary& dcg = results[0];
  const Summary& primary = results[1];
  const Summary& secondary = results[2];

  EXPECT_GT(dcg.read_throughput, 1.15 * secondary.read_throughput);
  EXPECT_GT(dcg.read_throughput, 2.0 * primary.read_throughput);
  EXPECT_LT(dcg.p80_read_latency_ms, primary.p80_read_latency_ms);
  EXPECT_LE(dcg.p80_read_latency_ms, secondary.p80_read_latency_ms);
  // Equilibrium secondary share near 70 % (3 equal nodes, 5 % writes).
  EXPECT_NEAR(dcg.secondary_percent, 70.0, 12.0);
}

TEST(ExperimentTest, BaselinesRouteWhereHardCoded) {
  {
    ExperimentConfig config = YcsbBase(SystemType::kPrimary, 40, 0.95);
    config.duration = sim::Seconds(150);
    Experiment experiment(config);
    experiment.Run();
    EXPECT_EQ(experiment.Summarize().secondary_percent, 0.0);
  }
  {
    ExperimentConfig config = YcsbBase(SystemType::kSecondary, 40, 0.95);
    config.duration = sim::Seconds(150);
    Experiment experiment(config);
    experiment.Run();
    EXPECT_EQ(experiment.Summarize().secondary_percent, 100.0);
  }
}

TEST(ExperimentTest, AdaptsDownwardWhenLoadDrops) {
  // Figure 3: YCSB-B with 180 clients, dropping to YCSB-A with 20
  // clients: the fraction falls back to the 10 % floor.
  // Client counts are scaled to the simulated cluster's capacity (see
  // DESIGN.md §5): the drop goes to a handful of clients, i.e. truly
  // light load. The descent is probe-driven (one DELTA per flat history,
  // "every fifth period" per §4.2), so it takes several minutes.
  ExperimentConfig config = YcsbBase(SystemType::kDecongestant, 180, 0.95);
  config.phases.push_back({sim::Seconds(230), 4, 0.5});
  config.duration = sim::Seconds(650);
  Experiment experiment(config);
  experiment.Run();

  double fraction_before = 0, fraction_after = 1;
  for (const PeriodRow& row : experiment.rows()) {
    if (row.start == sim::Seconds(210)) fraction_before = row.balance_fraction;
    if (row.start == sim::Seconds(630)) fraction_after = row.balance_fraction;
  }
  EXPECT_GE(fraction_before, 0.5);
  EXPECT_LE(fraction_after, 0.2);
}

TEST(ExperimentTest, ClientObservedStalenessRespectsBound) {
  // §4.5: raw secondary lag may exceed the bound, but what Decongestant's
  // clients *observe* (the S workload) stays within it.
  ExperimentConfig config;
  config.seed = 23;
  config.system = SystemType::kDecongestant;
  config.kind = WorkloadKind::kTpcc;
  config.phases = {{0, 60, 0.5}};
  config.duration = sim::Seconds(300);
  config.warmup = sim::Seconds(60);
  config.balancer.stale_bound_seconds = 10;
  // Slow checkpoint disk so flushes exceed the getMore block threshold
  // (the Figure 9 regime).
  config.server.checkpoint_disk_bw = 3.0e6;
  Experiment experiment(config);
  experiment.Run();

  double max_observed = 0;
  for (const auto& [at, staleness] : experiment.s_samples()) {
    max_observed = std::max(max_observed, staleness);
  }
  // The raw secondary lag spiked past the bound at least once...
  double max_true = 0;
  for (const StalenessPoint& p : experiment.staleness_series()) {
    max_true = std::max(max_true, p.true_max_s);
  }
  EXPECT_GT(max_true, 10.0);
  // ... but clients never saw (much) more than the bound. The protection
  // is bound + reporting granularity + reaction latency: the paper's own
  // Figure 10 run shows points at bound + 1 s for the same reason.
  EXPECT_LE(max_observed, 12.0);
}

TEST(ExperimentTest, EstimateIsConservativeVsClientObserved) {
  // Figure 8: the serverStatus-based estimate tracks, and sits above,
  // client-observed staleness.
  ExperimentConfig config;
  config.seed = 29;
  config.system = SystemType::kDecongestant;
  config.kind = WorkloadKind::kYcsb;
  config.phases = {{0, 100, 0.5}};
  config.duration = sim::Seconds(300);
  Experiment experiment(config);
  experiment.Run();

  // Compare each S sample against the estimate at the nearest second.
  int violations = 0, compared = 0;
  for (const auto& [at, observed] : experiment.s_samples()) {
    if (observed < 1.0) continue;  // below estimate granularity
    const size_t idx = static_cast<size_t>(at / sim::kSecond);
    if (idx >= experiment.staleness_series().size()) continue;
    const StalenessPoint& p = experiment.staleness_series()[idx];
    if (p.estimate_s < 0) continue;
    ++compared;
    // Allow 2 s slack: reporting granularity + estimate refresh lag.
    if (observed > p.estimate_s + 2.0) ++violations;
  }
  if (compared > 0) {
    EXPECT_LE(static_cast<double>(violations) / compared, 0.1);
  }
}

TEST(ExperimentTest, StaleBoundZeroNeverUsesSecondaries) {
  ExperimentConfig config = YcsbBase(SystemType::kDecongestant, 100, 0.5);
  config.duration = sim::Seconds(150);
  config.balancer.stale_bound_seconds = 0;
  Experiment experiment(config);
  experiment.Run();
  EXPECT_EQ(experiment.Summarize().secondary_percent, 0.0);
  for (const auto& [at, staleness] : experiment.s_samples()) {
    EXPECT_EQ(staleness, 0.0);
  }
}

TEST(ExperimentTest, DeterministicForSeed) {
  ExperimentConfig config = YcsbBase(SystemType::kDecongestant, 60, 0.5);
  config.duration = sim::Seconds(120);
  Experiment a(config);
  a.Run();
  Experiment b(config);
  b.Run();
  ASSERT_EQ(a.rows().size(), b.rows().size());
  for (size_t i = 0; i < a.rows().size(); ++i) {
    EXPECT_EQ(a.rows()[i].reads, b.rows()[i].reads) << i;
    EXPECT_EQ(a.rows()[i].reads_secondary, b.rows()[i].reads_secondary);
    EXPECT_DOUBLE_EQ(a.rows()[i].balance_fraction,
                     b.rows()[i].balance_fraction);
  }
  EXPECT_EQ(a.replica_set().primary().db().Fingerprint(),
            b.replica_set().primary().db().Fingerprint());
}

TEST(ExperimentTest, SeedChangesResults) {
  ExperimentConfig config = YcsbBase(SystemType::kDecongestant, 60, 0.5);
  config.duration = sim::Seconds(120);
  Experiment a(config);
  a.Run();
  config.seed = 18;
  Experiment b(config);
  b.Run();
  uint64_t reads_a = 0, reads_b = 0;
  for (const auto& row : a.rows()) reads_a += row.reads;
  for (const auto& row : b.rows()) reads_b += row.reads;
  EXPECT_NE(reads_a, reads_b);
}

TEST(ExperimentTest, PeriodRowsCoverTheRun) {
  ExperimentConfig config = YcsbBase(SystemType::kPrimary, 20, 0.95);
  config.duration = sim::Seconds(100);
  Experiment experiment(config);
  experiment.Run();
  ASSERT_EQ(experiment.rows().size(), 10u);
  for (size_t i = 0; i < experiment.rows().size(); ++i) {
    EXPECT_EQ(experiment.rows()[i].start,
              static_cast<sim::Time>(sim::Seconds(10) * i));
    EXPECT_EQ(experiment.rows()[i].end - experiment.rows()[i].start,
              sim::Seconds(10));
    EXPECT_GT(experiment.rows()[i].reads, 0u);
  }
}

TEST(ExperimentTest, SWorkloadCausesLittleInterference) {
  // Figure 11: running the S workload alongside the benchmark barely
  // moves throughput.
  ExperimentConfig with_s = YcsbBase(SystemType::kPrimary, 60, 0.95);
  with_s.duration = sim::Seconds(200);
  Experiment a(with_s);
  a.Run();

  ExperimentConfig without_s = with_s;
  without_s.run_s_workload = false;
  Experiment b(without_s);
  b.Run();

  const double t_with = a.Summarize().read_throughput;
  const double t_without = b.Summarize().read_throughput;
  EXPECT_NEAR(t_with / t_without, 1.0, 0.05);
}

}  // namespace
}  // namespace dcg::exp
