// Tests for the B+-tree, including randomized property tests against a
// std::map oracle.

#include <map>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "sim/random.h"
#include "store/btree.h"

namespace dcg::store {
namespace {

BTree::Payload Doc(int64_t v) {
  return std::make_shared<const doc::Value>(
      doc::Value::Doc({{"_id", v}, {"v", v}}));
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Find(doc::Value(1)), nullptr);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.Erase(doc::Value(1)));
  tree.CheckInvariants();
}

TEST(BTreeTest, InsertAndFind) {
  BTree tree;
  EXPECT_TRUE(tree.Insert(doc::Value(1), Doc(1)));
  EXPECT_TRUE(tree.Insert(doc::Value(2), Doc(2)));
  EXPECT_FALSE(tree.Insert(doc::Value(1), Doc(99)));  // duplicate
  EXPECT_EQ(tree.size(), 2u);
  ASSERT_NE(tree.Find(doc::Value(1)), nullptr);
  EXPECT_EQ(tree.Find(doc::Value(1))->Find("v")->as_int64(), 1);
  EXPECT_EQ(tree.Find(doc::Value(3)), nullptr);
}

TEST(BTreeTest, UpsertReplaces) {
  BTree tree;
  EXPECT_TRUE(tree.Upsert(doc::Value(1), Doc(1)));
  EXPECT_FALSE(tree.Upsert(doc::Value(1), Doc(42)));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Find(doc::Value(1))->Find("v")->as_int64(), 42);
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTree tree;
  for (int64_t i = 0; i < 1000; ++i) {
    tree.Insert(doc::Value(i), Doc(i));
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GE(tree.Height(), 3);
  tree.CheckInvariants();
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_NE(tree.Find(doc::Value(i)), nullptr) << i;
  }
}

TEST(BTreeTest, IterationIsSorted) {
  BTree tree;
  // Insert in scrambled order.
  for (int64_t i = 0; i < 500; ++i) {
    tree.Insert(doc::Value((i * 7919) % 500), Doc(i));
  }
  int64_t expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key().as_int64(), expected++);
  }
  EXPECT_EQ(expected, 500);
}

TEST(BTreeTest, LowerAndUpperBound) {
  BTree tree;
  for (int64_t i = 0; i < 100; i += 2) {  // even keys 0..98
    tree.Insert(doc::Value(i), Doc(i));
  }
  EXPECT_EQ(tree.LowerBound(doc::Value(10)).key().as_int64(), 10);
  EXPECT_EQ(tree.LowerBound(doc::Value(11)).key().as_int64(), 12);
  EXPECT_EQ(tree.UpperBound(doc::Value(10)).key().as_int64(), 12);
  EXPECT_EQ(tree.UpperBound(doc::Value(11)).key().as_int64(), 12);
  EXPECT_EQ(tree.LowerBound(doc::Value(-5)).key().as_int64(), 0);
  EXPECT_FALSE(tree.LowerBound(doc::Value(99)).Valid());
  EXPECT_FALSE(tree.UpperBound(doc::Value(98)).Valid());
}

TEST(BTreeTest, EraseShrinksToEmpty) {
  BTree tree;
  for (int64_t i = 0; i < 300; ++i) tree.Insert(doc::Value(i), Doc(i));
  for (int64_t i = 0; i < 300; ++i) {
    EXPECT_TRUE(tree.Erase(doc::Value(i))) << i;
    tree.CheckInvariants();
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 1);
}

TEST(BTreeTest, EraseReverseOrder) {
  BTree tree;
  for (int64_t i = 0; i < 300; ++i) tree.Insert(doc::Value(i), Doc(i));
  for (int64_t i = 299; i >= 0; --i) {
    EXPECT_TRUE(tree.Erase(doc::Value(i)));
  }
  tree.CheckInvariants();
  EXPECT_TRUE(tree.empty());
}

TEST(BTreeTest, MixedKeyTypes) {
  BTree tree;
  tree.Insert(doc::Value("alpha"), Doc(1));
  tree.Insert(doc::Value(int64_t{5}), Doc(2));
  tree.Insert(doc::Value::List({1, 2}), Doc(3));
  tree.CheckInvariants();
  // Canonical order: number < string < array.
  auto it = tree.Begin();
  EXPECT_TRUE(it.key().is_int64());
  it.Next();
  EXPECT_TRUE(it.key().is_string());
  it.Next();
  EXPECT_TRUE(it.key().is_array());
}

TEST(BTreeTest, MoveConstructible) {
  BTree tree;
  for (int64_t i = 0; i < 50; ++i) tree.Insert(doc::Value(i), Doc(i));
  BTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 50u);
  moved.CheckInvariants();
}

// ---------------------------------------------------------------------------
// Property tests: random op sequences vs a std::map oracle.
// Param: (seed, ops, key_space). Small key spaces force heavy
// insert/erase churn; large ones exercise splits more than merges.
// ---------------------------------------------------------------------------

class BTreeOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int64_t>> {};

TEST_P(BTreeOracleTest, MatchesMapOracle) {
  const auto [seed, ops, key_space] = GetParam();
  sim::Rng rng(seed);
  BTree tree;
  std::map<int64_t, int64_t> oracle;

  for (int i = 0; i < ops; ++i) {
    const int64_t key = rng.UniformInt(0, key_space - 1);
    const double action = rng.NextDouble();
    if (action < 0.5) {
      const bool inserted = tree.Insert(doc::Value(key), Doc(key * 10 + 1));
      EXPECT_EQ(inserted, oracle.emplace(key, key * 10 + 1).second);
    } else if (action < 0.65) {
      tree.Upsert(doc::Value(key), Doc(key * 10 + 2));
      oracle[key] = key * 10 + 2;
    } else if (action < 0.95) {
      EXPECT_EQ(tree.Erase(doc::Value(key)), oracle.erase(key) > 0);
    } else {
      // Point lookup.
      auto it = oracle.find(key);
      BTree::Payload p = tree.Find(doc::Value(key));
      if (it == oracle.end()) {
        EXPECT_EQ(p, nullptr);
      } else {
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->Find("v")->as_int64(), it->second);
      }
    }
    if (i % 256 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();

  // Full iteration equals oracle contents.
  ASSERT_EQ(tree.size(), oracle.size());
  auto it = tree.Begin();
  for (const auto& [key, value] : oracle) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key().as_int64(), key);
    EXPECT_EQ(it.payload()->Find("v")->as_int64(), value);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());

  // LowerBound agrees with the oracle at random probes.
  for (int i = 0; i < 200; ++i) {
    const int64_t probe = rng.UniformInt(-5, key_space + 5);
    auto tree_it = tree.LowerBound(doc::Value(probe));
    auto oracle_it = oracle.lower_bound(probe);
    if (oracle_it == oracle.end()) {
      EXPECT_FALSE(tree_it.Valid());
    } else {
      ASSERT_TRUE(tree_it.Valid());
      EXPECT_EQ(tree_it.key().as_int64(), oracle_it->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreeOracleTest,
    ::testing::Values(std::make_tuple(1, 4000, 64),      // churny, tiny keys
                      std::make_tuple(2, 4000, 256),
                      std::make_tuple(3, 6000, 1024),
                      std::make_tuple(4, 8000, 100'000),  // split-heavy
                      std::make_tuple(5, 2000, 16),       // extreme churn
                      std::make_tuple(6, 10'000, 4096)));

}  // namespace
}  // namespace dcg::store
