// Tests for the log-bucketed histogram, including a percentile property
// check against a sorting oracle.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/histogram.h"
#include "sim/random.h"

namespace dcg::metrics {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  // Any percentile of one sample is that sample (within bucket width).
  EXPECT_NEAR(h.Percentile(0), 42.0, 42.0 * 0.06);
  EXPECT_NEAR(h.Percentile(100), 42.0, 42.0 * 0.06);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(1.0);
  a.Add(100.0);
  b.Add(10.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.max(), 100.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, VeryLargeValuesLandInLastBucket) {
  Histogram h;
  h.Add(1e300);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.max(), 1e300);
}

// Percentiles stay within the bucket's relative error of the exact
// (sorted-oracle) percentile, across distributions.
class HistogramOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(HistogramOracleTest, PercentileMatchesSortOracle) {
  const auto [seed, kind] = GetParam();
  sim::Rng rng(seed);
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20'000; ++i) {
    double v = 0;
    switch (kind) {
      case 0:
        v = rng.NextDouble() * 1e6;  // uniform
        break;
      case 1:
        v = rng.Exponential(5e4);  // heavy tail
        break;
      case 2:
        v = rng.LogNormal(2e5, 1.0);  // very heavy tail
        break;
    }
    h.Add(v);
    samples.push_back(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double p : {10.0, 50.0, 80.0, 95.0, 99.0}) {
    const size_t idx = std::min(
        samples.size() - 1,
        static_cast<size_t>(p / 100.0 * static_cast<double>(samples.size())));
    const double exact = samples[idx];
    const double approx = h.Percentile(p);
    // 6 % relative tolerance (bucket growth is 5 %) plus oracle-index slop.
    EXPECT_NEAR(approx, exact, exact * 0.08 + 1.0)
        << "p=" << p << " kind=" << kind;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistogramOracleTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace dcg::metrics
