// Tests for write concerns, causal sessions (read-your-own-writes via
// afterClusterTime), and the pluggable fraction controllers.

#include <memory>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "driver/session.h"
#include "net/network.h"
#include "repl/replica_set.h"

namespace dcg {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    repl::ReplicaSetParams params;
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    const net::HostId c = network_->AddHost("client");
    std::vector<net::HostId> hosts;
    for (int i = 0; i < 3; ++i) {
      hosts.push_back(network_->AddHost("n" + std::to_string(i)));
      network_->SetLink(c, hosts[i], sim::Millis(1), 0);
    }
    rs_ = std::make_unique<repl::ReplicaSet>(&loop_, sim::Rng(2),
                                             network_.get(), params,
                                             server_params, hosts);
    client_ = std::make_unique<driver::MongoClient>(
        &loop_, sim::Rng(3), rs_->command_bus(), c, driver::ClientOptions{});
    rs_->Start();
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<repl::ReplicaSet> rs_;
  std::unique_ptr<driver::MongoClient> client_;
};

TEST_F(SessionTest, MajorityWriteWaitsForReplication) {
  sim::Time w1_done = -1, majority_done = -1;
  client_->Write(
      server::OpClass::kInsert,
      [](repl::TxnContext* ctx) {
        ctx->Insert("t", doc::Value::Doc({{"_id", 1}}));
      },
      [&](const driver::MongoClient::WriteResult& r) {
        EXPECT_TRUE(r.committed);
        w1_done = loop_.Now();
      },
      repl::WriteConcern::kW1);
  client_->Write(
      server::OpClass::kInsert,
      [](repl::TxnContext* ctx) {
        ctx->Insert("t", doc::Value::Doc({{"_id", 2}}));
      },
      [&](const driver::MongoClient::WriteResult& r) {
        EXPECT_TRUE(r.committed);
        majority_done = loop_.Now();
      },
      repl::WriteConcern::kMajority);
  loop_.RunUntil(sim::Seconds(5));
  ASSERT_GE(w1_done, 0);
  ASSERT_GE(majority_done, 0);
  // Majority ack needs replication + a heartbeat round: clearly later.
  EXPECT_GT(majority_done, w1_done + sim::Millis(50));

  // At ack time a majority had the write: at least one secondary holds it.
  const bool on_1 =
      rs_->node(1).db().Get("t") != nullptr &&
      rs_->node(1).db().Get("t")->FindById(doc::Value(2)) != nullptr;
  const bool on_2 =
      rs_->node(2).db().Get("t") != nullptr &&
      rs_->node(2).db().Get("t")->FindById(doc::Value(2)) != nullptr;
  EXPECT_TRUE(on_1 || on_2);
  EXPECT_EQ(rs_->majority_writes_acked(), 1u);
}

TEST_F(SessionTest, CausalSessionReadsOwnWritesOnSecondary) {
  driver::CausalSession session(client_.get());
  bool saw_own_write = false;
  sim::Time read_done_at = -1;

  session.Write(
      server::OpClass::kInsert,
      [](repl::TxnContext* ctx) {
        ctx->Insert("t", doc::Value::Doc({{"_id", 7}, {"v", 42}}));
      },
      [&](const driver::MongoClient::WriteResult& r) {
        EXPECT_TRUE(r.committed);
        EXPECT_GT(r.operation_time.seq, 0u);
        // Immediately read back from a SECONDARY through the session.
        session.Read(
            driver::ReadPreference::kSecondary, server::OpClass::kPointRead,
            [&](const store::Database& db) {
              const store::Collection* t = db.Get("t");
              saw_own_write =
                  t != nullptr && t->FindById(doc::Value(7)) != nullptr;
            },
            [&](const driver::MongoClient::ReadResult& rr) {
              read_done_at = loop_.Now();
              EXPECT_TRUE(rr.used_secondary);
            });
      });
  loop_.RunUntil(sim::Seconds(3));
  ASSERT_GE(read_done_at, 0);
  EXPECT_TRUE(saw_own_write);  // never a stale miss through the session
}

TEST_F(SessionTest, PlainReadCanMissOwnWriteButSessionCannot) {
  // Demonstrate the anomaly the session prevents. Replication is stalled
  // (never-ending checkpoint blocks getMore), so a plain secondary read
  // right after a write is guaranteed to miss it, while the session read
  // waits until the write arrives.
  rs_->primary().server().AddDirtyBytes(100'000'000'000ULL);
  loop_.RunUntil(sim::Seconds(61));  // checkpoint started, shipping blocked

  driver::CausalSession session(client_.get());
  bool plain_missed = false;
  bool session_saw = false;
  sim::Time session_read_done = -1;
  session.Write(
      server::OpClass::kInsert,
      [](repl::TxnContext* ctx) {
        ctx->Insert("t", doc::Value::Doc({{"_id", 9}}));
      },
      [&](const driver::MongoClient::WriteResult&) {
        client_->Read(
            driver::ReadPreference::kSecondary, server::OpClass::kPointRead,
            [&](const store::Database& db) {
              const store::Collection* t = db.Get("t");
              plain_missed =
                  t == nullptr || t->FindById(doc::Value(9)) == nullptr;
            },
            nullptr);
        session.Read(
            driver::ReadPreference::kSecondary, server::OpClass::kPointRead,
            [&](const store::Database& db) {
              session_saw =
                  db.Get("t")->FindById(doc::Value(9)) != nullptr;
            },
            [&](const driver::MongoClient::ReadResult&) {
              session_read_done = loop_.Now();
            });
      });
  loop_.RunUntil(sim::Seconds(70));
  EXPECT_TRUE(plain_missed);
  // The session read was parked until the checkpoint ended (35 s cap)
  // and replication delivered the write; it never returned stale data.
  EXPECT_FALSE(session_saw);  // still parked while shipping is blocked
  EXPECT_EQ(session_read_done, -1);
  loop_.RunUntil(sim::Seconds(100));  // checkpoint ends at ~95 s
  EXPECT_TRUE(session_saw);
  EXPECT_GE(session_read_done, sim::Seconds(70));
}

TEST_F(SessionTest, SessionTokenIsMonotonic) {
  driver::CausalSession session(client_.get());
  std::vector<uint64_t> seqs;
  std::function<void(int)> chain = [&](int remaining) {
    if (remaining == 0) return;
    session.Write(
        server::OpClass::kInsert,
        [remaining](repl::TxnContext* ctx) {
          ctx->Insert("t", doc::Value::Doc({{"_id", remaining}}));
        },
        [&, remaining](const driver::MongoClient::WriteResult&) {
          seqs.push_back(session.operation_time().seq);
          chain(remaining - 1);
        });
  };
  chain(10);
  loop_.RunUntil(sim::Seconds(3));
  ASSERT_EQ(seqs.size(), 10u);
  for (size_t i = 1; i < seqs.size(); ++i) EXPECT_GT(seqs[i], seqs[i - 1]);
}

TEST(ControllerTest, StepControllerMatchesAlgorithm1) {
  core::BalancerConfig config;
  core::StepController step;
  core::ControlInputs inputs;
  inputs.latest_fraction = 0.5;
  inputs.ratio_valid = true;

  inputs.ratio = 2.0;  // > HIGHRATIO
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), 0.6);
  inputs.ratio = 0.5;  // < LOWRATIO
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), 0.4);
  inputs.ratio = 1.0;  // dead band, history not flat
  inputs.history_flat = false;
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), 0.5);
  inputs.history_flat = true;  // dead band + flat history -> probe down
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), 0.4);

  // Caps.
  inputs.latest_fraction = 0.9;
  inputs.ratio = 5.0;
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), 0.9);
  inputs.latest_fraction = 0.1;
  inputs.ratio = 0.1;
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), 0.1);

  // No evidence -> hold.
  inputs.ratio_valid = false;
  inputs.latest_fraction = 0.7;
  EXPECT_DOUBLE_EQ(step.NextFraction(inputs, config), 0.7);
}

TEST(ControllerTest, ProportionalControllerScalesWithError) {
  core::BalancerConfig config;
  core::ProportionalController prop(/*gain=*/0.25, /*max_step=*/0.3,
                                    /*drift=*/0.02);
  core::ControlInputs inputs;
  inputs.latest_fraction = 0.5;
  inputs.ratio_valid = true;

  inputs.ratio = 1.8;  // error 0.8 -> step 0.2
  EXPECT_NEAR(prop.NextFraction(inputs, config), 0.7, 1e-9);
  inputs.ratio = 6.0;  // clamped to max_step
  EXPECT_NEAR(prop.NextFraction(inputs, config), 0.8, 1e-9);
  inputs.ratio = 0.2;  // error -0.8 -> step -0.2
  EXPECT_NEAR(prop.NextFraction(inputs, config), 0.3, 1e-9);
  inputs.ratio = 1.0;  // dead band -> drift down
  EXPECT_NEAR(prop.NextFraction(inputs, config), 0.48, 1e-9);
  inputs.ratio_valid = false;
  EXPECT_NEAR(prop.NextFraction(inputs, config), 0.5, 1e-9);
}

}  // namespace
}  // namespace dcg
