// Tests for the document value model.

#include <gtest/gtest.h>

#include "doc/value.h"

namespace dcg::doc {
namespace {

TEST(ValueTest, TypesAreRecognized) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{7}).is_int64());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value::Timestamp(9).is_timestamp());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
  EXPECT_TRUE(Value(int64_t{1}).is_number());
  EXPECT_TRUE(Value(1.0).is_number());
  EXPECT_FALSE(Value("1").is_number());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(int64_t{42}).as_int64(), 42);
  EXPECT_DOUBLE_EQ(Value(2.25).as_double(), 2.25);
  EXPECT_EQ(Value("abc").as_string(), "abc");
  EXPECT_EQ(Value::Timestamp(123).as_timestamp(), 123);
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).as_number(), 3.0);
  EXPECT_DOUBLE_EQ(Value(0.5).as_number(), 0.5);
}

TEST(ValueTest, IntLiteralBecomesInt64) {
  Value v(5);
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.as_int64(), 5);
}

TEST(ValueTest, CanonicalTypeOrder) {
  // Null < Bool < Number < String < Timestamp < Array < Object.
  std::vector<Value> ascending = {
      Value(), Value(false), Value(int64_t{5}), Value("a"),
      Value::Timestamp(0), Value(Array{}), Value(Object{})};
  for (size_t i = 0; i + 1 < ascending.size(); ++i) {
    EXPECT_LT(ascending[i], ascending[i + 1]) << i;
    EXPECT_GT(ascending[i + 1], ascending[i]) << i;
  }
}

TEST(ValueTest, NumericComparisonMixesIntAndDouble) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_GT(Value(3.5), Value(int64_t{3}));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value("ab"), Value("abc"));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, ArrayComparisonIsLexicographic) {
  EXPECT_LT(Value::List({1, 2}), Value::List({1, 3}));
  EXPECT_LT(Value::List({1, 2}), Value::List({1, 2, 0}));  // prefix < longer
  EXPECT_EQ(Value::List({1, 2}), Value::List({1, 2}));
  EXPECT_LT(Value::List({1, 99}), Value::List({2}));
}

TEST(ValueTest, ObjectComparisonByFieldThenValue) {
  EXPECT_EQ(Value::Doc({{"a", 1}}), Value::Doc({{"a", 1}}));
  EXPECT_LT(Value::Doc({{"a", 1}}), Value::Doc({{"a", 2}}));
  EXPECT_LT(Value::Doc({{"a", 1}}), Value::Doc({{"b", 1}}));
  EXPECT_LT(Value::Doc({{"a", 1}}), Value::Doc({{"a", 1}, {"b", 1}}));
}

TEST(ValueTest, FindAndSet) {
  Value d = Value::Doc({{"a", 1}, {"b", "x"}});
  ASSERT_NE(d.Find("a"), nullptr);
  EXPECT_EQ(d.Find("a")->as_int64(), 1);
  EXPECT_EQ(d.Find("missing"), nullptr);
  d.Set("a", Value(int64_t{9}));
  EXPECT_EQ(d.Find("a")->as_int64(), 9);
  d.Set("c", Value(true));
  EXPECT_EQ(d.Find("c")->as_bool(), true);
  EXPECT_EQ(d.as_object().size(), 3u);  // a, b, c
}

TEST(ValueTest, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(Value(int64_t{5}).Find("a"), nullptr);
}

TEST(ValueTest, FindPathNested) {
  Value d = Value::Doc(
      {{"a", Value::Doc({{"b", Value::Doc({{"c", 42}})}})}});
  ASSERT_NE(d.FindPath("a.b.c"), nullptr);
  EXPECT_EQ(d.FindPath("a.b.c")->as_int64(), 42);
  EXPECT_EQ(d.FindPath("a.b.missing"), nullptr);
  EXPECT_EQ(d.FindPath("a.x.c"), nullptr);
}

TEST(ValueTest, FindPathIndexesArrays) {
  Value d = Value::Doc({{"items", Value::List({Value::Doc({{"q", 3}}),
                                               Value::Doc({{"q", 5}})})}});
  ASSERT_NE(d.FindPath("items.1.q"), nullptr);
  EXPECT_EQ(d.FindPath("items.1.q")->as_int64(), 5);
  EXPECT_EQ(d.FindPath("items.2.q"), nullptr);   // out of range
  EXPECT_EQ(d.FindPath("items.xx.q"), nullptr);  // non-numeric segment
}

TEST(ValueTest, SetPathCreatesIntermediates) {
  Value d = Value::Doc({});
  d.SetPath("a.b.c", Value(int64_t{1}));
  ASSERT_NE(d.FindPath("a.b.c"), nullptr);
  EXPECT_EQ(d.FindPath("a.b.c")->as_int64(), 1);
  d.SetPath("a.b.c", Value(int64_t{2}));
  EXPECT_EQ(d.FindPath("a.b.c")->as_int64(), 2);
}

TEST(ValueTest, Erase) {
  Value d = Value::Doc({{"a", 1}, {"b", 2}});
  EXPECT_TRUE(d.Erase("a"));
  EXPECT_FALSE(d.Erase("a"));
  EXPECT_EQ(d.Find("a"), nullptr);
  EXPECT_NE(d.Find("b"), nullptr);
}

TEST(ValueTest, ToJson) {
  Value d = Value::Doc({{"i", 3},
                        {"s", "a\"b"},
                        {"b", true},
                        {"n", Value()},
                        {"arr", Value::List({1, 2})},
                        {"ts", Value::Timestamp(5)}});
  EXPECT_EQ(d.ToJson(),
            R"({"i":3,"s":"a\"b","b":true,"n":null,"arr":[1,2],)"
            R"("ts":{"$ts":5}})");
}

TEST(ValueTest, ApproxSizeGrowsWithContent) {
  const Value small = Value::Doc({{"a", 1}});
  const Value big = Value::Doc({{"a", std::string(1000, 'x')}});
  EXPECT_GT(big.ApproxSize(), small.ApproxSize() + 900);
}

TEST(ValueTest, FieldOrderIsPreservedAndSignificant) {
  const Value ab = Value::Doc({{"a", 1}, {"b", 2}});
  const Value ba = Value::Doc({{"b", 2}, {"a", 1}});
  EXPECT_NE(ab, ba);  // BSON-like: field order matters
  EXPECT_EQ(ab.as_object()[0].first, "a");
  EXPECT_EQ(ba.as_object()[0].first, "b");
}

TEST(ValueTest, TypeNames) {
  EXPECT_EQ(TypeName(Value::Type::kNull), "null");
  EXPECT_EQ(TypeName(Value::Type::kObject), "object");
  EXPECT_EQ(TypeName(Value::Type::kTimestamp), "timestamp");
}

}  // namespace
}  // namespace dcg::doc
