// Tests for Decongestant's core: SharedState, routing policies, and the
// Read Balancer's Algorithm 1 behaviour (driven by injected latencies).

#include <memory>

#include <gtest/gtest.h>

#include "core/read_balancer.h"
#include "core/routing_policy.h"
#include "core/shared_state.h"
#include "repl/replica_set.h"

namespace dcg::core {
namespace {

TEST(SharedStateTest, RecordsAndDrainsByPreference) {
  SharedState state(0.1);
  state.RecordLatency(driver::ReadPreference::kPrimary, sim::Millis(1));
  state.RecordLatency(driver::ReadPreference::kSecondary, sim::Millis(2));
  state.RecordLatency(driver::ReadPreference::kSecondaryPreferred,
                      sim::Millis(3));
  EXPECT_EQ(state.pending_primary(), 1u);
  EXPECT_EQ(state.pending_secondary(), 2u);
  EXPECT_EQ(state.DrainPrimaryLatencies().size(), 1u);
  EXPECT_EQ(state.DrainSecondaryLatencies().size(), 2u);
  EXPECT_EQ(state.pending_primary(), 0u);
  EXPECT_EQ(state.pending_secondary(), 0u);
}

TEST(RoutingPolicyTest, FixedPoliciesNeverVary) {
  sim::Rng rng(1);
  FixedPolicy primary(driver::ReadPreference::kPrimary);
  FixedPolicy secondary(driver::ReadPreference::kSecondary);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(primary.ChooseReadPreference(&rng),
              driver::ReadPreference::kPrimary);
    EXPECT_EQ(secondary.ChooseReadPreference(&rng),
              driver::ReadPreference::kSecondary);
  }
  EXPECT_EQ(primary.name(), "primary");
  EXPECT_EQ(secondary.name(), "secondary");
}

TEST(RoutingPolicyTest, DecongestantFlipsBiasedCoin) {
  SharedState state(0.1);
  DecongestantPolicy policy(&state);
  sim::Rng rng(2);

  state.set_balance_fraction(0.7);
  int secondary = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (policy.ChooseReadPreference(&rng) ==
        driver::ReadPreference::kSecondary) {
      ++secondary;
    }
  }
  EXPECT_NEAR(static_cast<double>(secondary) / n, 0.7, 0.02);

  state.set_balance_fraction(0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.ChooseReadPreference(&rng),
              driver::ReadPreference::kPrimary);
  }
}

TEST(RoutingPolicyTest, DecongestantReportsLatenciesToSharedLists) {
  SharedState state(0.1);
  DecongestantPolicy policy(&state);
  policy.OnReadCompleted(driver::ReadPreference::kPrimary, sim::Millis(5));
  policy.OnReadCompleted(driver::ReadPreference::kSecondary, sim::Millis(7));
  EXPECT_EQ(state.pending_primary(), 1u);
  EXPECT_EQ(state.pending_secondary(), 1u);
}

TEST(MedianTest, MedianOfSamples) {
  EXPECT_EQ(ReadBalancer::Median({}), 0);
  EXPECT_EQ(ReadBalancer::Median({5}), 5);
  EXPECT_EQ(ReadBalancer::Median({1, 9}), 9);       // upper median
  EXPECT_EQ(ReadBalancer::Median({3, 1, 2}), 2);
  EXPECT_EQ(ReadBalancer::Median({4, 1, 3, 2}), 3);
}

// ---------------------------------------------------------------------------
// Read Balancer behaviour: a real client/replica-set stack with *injected*
// client latencies, so each Algorithm 1 branch can be exercised exactly.
// ---------------------------------------------------------------------------

class ReadBalancerTest : public ::testing::Test {
 protected:
  void Build(BalancerConfig config = {}) {
    config_ = config;
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    const net::HostId c = network_->AddHost("client");
    repl::ReplicaSetParams params;
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    std::vector<net::HostId> hosts;
    for (int i = 0; i < 3; ++i) {
      hosts.push_back(network_->AddHost("n" + std::to_string(i)));
      network_->SetLink(c, hosts[i], sim::Millis(1), 0);
    }
    rs_ = std::make_unique<repl::ReplicaSet>(&loop_, sim::Rng(2),
                                             network_.get(), params,
                                             server_params, hosts);
    client_ = std::make_unique<driver::MongoClient>(
        &loop_, sim::Rng(3), rs_->command_bus(), c, driver::ClientOptions{});
    state_ = std::make_unique<SharedState>(config.low_bal);
    balancer_ = std::make_unique<ReadBalancer>(client_.get(), state_.get(),
                                               config, sim::Rng(4));
  }

  // Feeds `n` synthetic latencies per period into each shared list.
  void InjectLatencies(sim::Duration primary, sim::Duration secondary,
                       int per_second = 10) {
    for (int i = 0; i < per_second; ++i) {
      state_->RecordLatency(driver::ReadPreference::kPrimary, primary);
      state_->RecordLatency(driver::ReadPreference::kSecondary, secondary);
    }
    loop_.ScheduleAfter(sim::Seconds(1), [this, primary, secondary,
                                          per_second] {
      InjectLatencies(primary, secondary, per_second);
    });
  }

  void Start() {
    rs_->Start();
    client_->Start();
    balancer_->Start();
  }

  BalancerConfig config_;
  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<repl::ReplicaSet> rs_;
  std::unique_ptr<driver::MongoClient> client_;
  std::unique_ptr<SharedState> state_;
  std::unique_ptr<ReadBalancer> balancer_;
};

TEST_F(ReadBalancerTest, StartsAtLowBal) {
  Build();
  EXPECT_DOUBLE_EQ(state_->balance_fraction(), 0.10);
}

TEST_F(ReadBalancerTest, CongestedPrimaryRampsFractionUp) {
  Build();
  Start();
  // Primary much slower than secondaries: ratio >> HIGHRATIO.
  InjectLatencies(sim::Millis(50), sim::Millis(5));
  // 8 periods of +10 % from 10 % reaches the 90 % cap.
  loop_.RunUntil(sim::Seconds(85));
  EXPECT_DOUBLE_EQ(state_->balance_fraction(), config_.high_bal);
  EXPECT_GE(balancer_->periods_completed(), 8u);
}

TEST_F(ReadBalancerTest, CongestedSecondariesRampFractionDown) {
  Build();
  Start();
  state_->set_balance_fraction(0.9);
  // Pre-load history at 0.9 by first ramping up.
  InjectLatencies(sim::Millis(50), sim::Millis(5));
  loop_.RunUntil(sim::Seconds(85));
  ASSERT_DOUBLE_EQ(state_->balance_fraction(), 0.9);

  // Now reverse: secondaries congested -> ratio < LOWRATIO.
  // (Replace the injector by letting both run; the newest samples
  // dominate medians since both inject at the same rate. To keep it
  // clean, inject an overwhelming number of reversed samples.)
  InjectLatencies(sim::Millis(5), sim::Millis(50), 1000);
  loop_.RunUntil(sim::Seconds(175));
  EXPECT_DOUBLE_EQ(state_->balance_fraction(), config_.low_bal);
}

TEST_F(ReadBalancerTest, BalancedRatioWithFlatHistoryProbesDownward) {
  Build();
  Start();
  // Ratio inside the dead band forever.
  InjectLatencies(sim::Millis(10), sim::Millis(10));
  loop_.RunUntil(sim::Seconds(95));
  // History flattens at LOWBAL and stays: downward probe can't go below.
  EXPECT_DOUBLE_EQ(state_->balance_fraction(), config_.low_bal);

  // Push the fraction up, then hold the ratio in the dead band: after the
  // history flattens, the balancer probes down by DELTA.
}

TEST_F(ReadBalancerTest, DownwardProbeTriggersAfterFlatHistory) {
  BalancerConfig config;
  Build(config);
  Start();
  InjectLatencies(sim::Millis(50), sim::Millis(5));  // ramp to 90 %
  loop_.RunUntil(sim::Seconds(85));
  ASSERT_DOUBLE_EQ(state_->balance_fraction(), 0.9);

  // Hold in dead band: needs recent_history periods to flatten, then
  // probes down 10 %.
  InjectLatencies(sim::Millis(10), sim::Millis(10), 1000);
  double min_seen = 1.0;
  for (int t = 90; t <= 200; t += 1) {
    loop_.ScheduleAt(sim::Seconds(t), [&] {
      min_seen = std::min(min_seen, state_->balance_fraction());
    });
  }
  loop_.RunUntil(sim::Seconds(200));
  EXPECT_LT(min_seen, 0.9);  // probed below the plateau
}

TEST_F(ReadBalancerTest, DownwardProbeCanBeDisabled) {
  BalancerConfig config;
  config.downward_probe = false;
  Build(config);
  Start();
  InjectLatencies(sim::Millis(50), sim::Millis(5));
  loop_.RunUntil(sim::Seconds(85));
  ASSERT_DOUBLE_EQ(state_->balance_fraction(), 0.9);
  InjectLatencies(sim::Millis(10), sim::Millis(10), 1000);
  double min_seen = 1.0;
  for (int t = 90; t <= 200; ++t) {
    loop_.ScheduleAt(sim::Seconds(t), [&] {
      min_seen = std::min(min_seen, state_->balance_fraction());
    });
  }
  loop_.RunUntil(sim::Seconds(200));
  EXPECT_DOUBLE_EQ(min_seen, 0.9);  // never probed down
}

TEST_F(ReadBalancerTest, EmptyLatencyListsKeepDecision) {
  Build();
  Start();
  loop_.RunUntil(sim::Seconds(45));  // several periods, no reads at all
  EXPECT_DOUBLE_EQ(state_->balance_fraction(), config_.low_bal);
  EXPECT_GE(balancer_->periods_completed(), 4u);
}

TEST_F(ReadBalancerTest, StaleBoundZeroForcesPrimaryOnly) {
  BalancerConfig config;
  config.stale_bound_seconds = 0;
  Build(config);
  Start();
  InjectLatencies(sim::Millis(50), sim::Millis(5));
  loop_.RunUntil(sim::Seconds(60));
  // Clients tolerate no staleness: fraction pinned at 0 regardless of
  // congestion (Algorithm 1 line 3).
  EXPECT_DOUBLE_EQ(state_->balance_fraction(), 0.0);
  EXPECT_TRUE(balancer_->stale_blocked());
}

TEST_F(ReadBalancerTest, StalenessAboveBoundZeroesFractionAndRecovers) {
  BalancerConfig config;
  config.stale_bound_seconds = 3;
  Build(config);
  Start();
  InjectLatencies(sim::Millis(50), sim::Millis(5));
  loop_.RunUntil(sim::Seconds(55));
  ASSERT_GT(state_->balance_fraction(), 0.3);
  const double before = state_->balance_fraction();

  // Stall replication: block getMore by a long checkpoint while writes
  // continue, so the estimate rises past the bound.
  rs_->primary().server().AddDirtyBytes(2'000'000'000);
  for (int i = 0; i < 2000; ++i) {
    loop_.ScheduleAt(sim::Seconds(56) + sim::Millis(20) * i, [this, i] {
      rs_->WriteTransaction(
          server::OpClass::kInsert,
          [i](repl::TxnContext* ctx) {
            ctx->Insert("t", doc::Value::Doc({{"_id", i}}));
          },
          nullptr);
    });
  }
  // The next checkpoint starts at t=60 and blocks replication for 35 s.
  loop_.RunUntil(sim::Seconds(70));
  EXPECT_GT(balancer_->staleness_estimate_seconds(), 3);
  EXPECT_TRUE(balancer_->stale_blocked());
  EXPECT_DOUBLE_EQ(state_->balance_fraction(), 0.0);
  EXPECT_GE(balancer_->stale_zero_events(), 1u);

  // After the flush ends and secondaries catch up, the fraction resumes
  // at RecentBal.latest() (not from scratch).
  loop_.RunUntil(sim::Seconds(110));
  EXPECT_FALSE(balancer_->stale_blocked());
  EXPECT_GE(state_->balance_fraction(), before - 0.4);
  EXPECT_GT(state_->balance_fraction(), 0.0);
}

TEST_F(ReadBalancerTest, FractionAlwaysInValidRange) {
  // Invariant: published fraction is 0 or within [LOWBAL, HIGHBAL].
  Build();
  Start();
  InjectLatencies(sim::Millis(30), sim::Millis(4));
  bool valid = true;
  for (int t = 0; t < 200; ++t) {
    loop_.ScheduleAt(sim::Seconds(1) * t, [&] {
      const double f = state_->balance_fraction();
      if (f != 0.0 && (f < config_.low_bal - 1e-9 ||
                       f > config_.high_bal + 1e-9)) {
        valid = false;
      }
    });
  }
  loop_.RunUntil(sim::Seconds(200));
  EXPECT_TRUE(valid);
}

TEST_F(ReadBalancerTest, PeriodCallbackReportsStats) {
  Build();
  Start();
  InjectLatencies(sim::Millis(50), sim::Millis(5));
  int callbacks = 0;
  balancer_->SetPeriodCallback([&](const ReadBalancer::PeriodStats& stats) {
    ++callbacks;
    EXPECT_TRUE(stats.ratio_valid);
    EXPECT_GT(stats.ratio, 1.0);
    EXPECT_GE(stats.lss_primary, stats.lss_secondary);
  });
  loop_.RunUntil(sim::Seconds(35));
  EXPECT_EQ(callbacks, 3);
}

TEST_F(ReadBalancerTest, RttSubtractionIsolatesServerTime) {
  // With subtract_rtt enabled, a latency difference that is pure network
  // (client latencies equal to RTT + equal server time) yields a ratio
  // near 1 even when raw latencies differ.
  BalancerConfig config;
  Build(config);
  Start();
  // Primary RTT 1 ms (configured in Build). Pretend server time is 10 ms
  // on both, but secondary clients see higher raw latency because of a
  // (simulated) farther AZ: inject raw latencies accordingly.
  InjectLatencies(sim::Millis(1) + sim::Millis(10),
                  sim::Millis(1) + sim::Millis(10));
  double last_ratio = 0;
  balancer_->SetPeriodCallback([&](const ReadBalancer::PeriodStats& stats) {
    if (stats.ratio_valid) last_ratio = stats.ratio;
  });
  loop_.RunUntil(sim::Seconds(25));
  EXPECT_NEAR(last_ratio, 1.0, 0.15);
}

}  // namespace
}  // namespace dcg::core
