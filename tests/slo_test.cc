// Unit tests for the freshness SLO engine: sliding-window accounting and
// burn-rate math against hand-computed oracles, the alert state machine's
// edges (hold, cancel, flap-resistant resolve), the compact spec parser,
// the engine's per-op fan-out, and a conformance case running every
// registered balance-fraction controller under the same served-age SLO.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "exp/experiment.h"
#include "obs/slo.h"

namespace dcg::obs {
namespace {

constexpr sim::Duration kPeriod = sim::Seconds(10);

// One custom single-rule spec so every oracle below is hand-checkable.
SloSpec OneRuleSpec(double objective, double bound, BurnRule rule) {
  SloSpec spec;
  spec.name = "test";
  spec.kind = SloKind::kFreshness;
  spec.objective = objective;
  spec.bound = bound;
  spec.rules = {rule};
  return spec;
}

BurnRule Rule(double burn_rate, double long_s, double short_s, double hold_s,
              double resolve_s) {
  BurnRule rule;
  rule.severity = SloSeverity::kPage;
  rule.burn_rate = burn_rate;
  rule.long_window = sim::Seconds(long_s);
  rule.short_window = sim::Seconds(short_s);
  rule.hold = sim::Seconds(hold_s);
  rule.resolve_hold = sim::Seconds(resolve_s);
  return rule;
}

// --- Window accounting oracles. -------------------------------------

TEST(SloTrackerTest, WindowSumsCoverExactlyTheClosedBuckets) {
  // 30 s long window over 10 s buckets = 3 buckets; 10 s short = 1.
  SloTracker tracker(OneRuleSpec(0.99, 1.0, Rule(10, 30, 10, 0, 20)),
                     kPeriod);
  std::vector<SloEvent> events;

  tracker.AddGood(90);
  tracker.AddBad(10);
  tracker.Evaluate(kPeriod, &events);  // bucket A: 90/10
  tracker.AddGood(50);
  tracker.Evaluate(2 * kPeriod, &events);  // bucket B: 50/0
  tracker.AddBad(5);
  tracker.Evaluate(3 * kPeriod, &events);  // bucket C: 0/5

  const SloTracker::WindowStats long_stats =
      tracker.WindowSums(sim::Seconds(30));
  EXPECT_EQ(long_stats.good, 140u);  // 90 + 50 + 0
  EXPECT_EQ(long_stats.bad, 15u);    // 10 + 0 + 5
  const SloTracker::WindowStats short_stats =
      tracker.WindowSums(sim::Seconds(10));
  EXPECT_EQ(short_stats.good, 0u);  // bucket C alone
  EXPECT_EQ(short_stats.bad, 5u);

  // A fourth bucket evicts A from the 3-bucket ring.
  tracker.AddGood(100);
  tracker.Evaluate(4 * kPeriod, &events);
  const SloTracker::WindowStats rolled =
      tracker.WindowSums(sim::Seconds(30));
  EXPECT_EQ(rolled.good, 150u);  // B + C + D
  EXPECT_EQ(rolled.bad, 5u);
}

TEST(SloTrackerTest, BurnRateIsBadFractionOverBudget) {
  // objective 0.99 -> budget 0.01. 95 good / 5 bad -> bad fraction 0.05
  // -> burn 5.0 exactly.
  SloTracker tracker(OneRuleSpec(0.99, 1.0, Rule(10, 10, 10, 0, 20)),
                     kPeriod);
  std::vector<SloEvent> events;
  tracker.AddGood(95);
  tracker.AddBad(5);
  tracker.Evaluate(kPeriod, &events);
  EXPECT_NEAR(tracker.BurnRate(sim::Seconds(10)), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(tracker.last_sli(), 0.95);
}

TEST(SloTrackerTest, ObserveClassifiesAgainstTheBound) {
  SloTracker tracker(OneRuleSpec(0.5, 2.0, Rule(10, 10, 10, 0, 20)),
                     kPeriod);
  std::vector<SloEvent> events;
  tracker.Observe(1.9);  // good (<= 2.0)
  tracker.Observe(2.0);  // good (boundary is good)
  tracker.Observe(2.1);  // bad
  tracker.Evaluate(kPeriod, &events);
  const SloTracker::WindowStats stats = tracker.WindowSums(sim::Seconds(10));
  EXPECT_EQ(stats.good, 2u);
  EXPECT_EQ(stats.bad, 1u);
}

TEST(SloTrackerTest, EmptyWindowConsumesNoBudget) {
  SloTracker tracker(OneRuleSpec(0.99, 1.0, Rule(10, 30, 10, 0, 20)),
                     kPeriod);
  std::vector<SloEvent> events;
  for (int i = 1; i <= 5; ++i) tracker.Evaluate(i * kPeriod, &events);
  EXPECT_TRUE(events.empty());
  EXPECT_DOUBLE_EQ(tracker.last_sli(), 1.0);
  EXPECT_DOUBLE_EQ(tracker.last_burn(), 0.0);
  EXPECT_EQ(tracker.state(0), AlertState::kInactive);
}

// --- Alert state machine edges. -------------------------------------

TEST(SloTrackerTest, ZeroHoldFiresPendingAndFiringInOneEvaluation) {
  SloTracker tracker(OneRuleSpec(0.99, 1.0, Rule(10, 10, 10, 0, 20)),
                     kPeriod);
  std::vector<SloEvent> events;
  tracker.AddGood(80);
  tracker.AddBad(20);  // burn 20 >= 10 on both (identical) windows
  tracker.Evaluate(kPeriod, &events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].transition, SloTransition::kPending);
  EXPECT_EQ(events[1].transition, SloTransition::kFiring);
  EXPECT_EQ(events[1].at, kPeriod);
  EXPECT_NEAR(events[1].burn_long, 20.0, 1e-9);
  EXPECT_EQ(tracker.state(0), AlertState::kFiring);
}

TEST(SloTrackerTest, HoldDelaysFiringByOnePeriod) {
  // hold = one period: pending at the first met evaluation, firing at the
  // second consecutive one.
  SloTracker tracker(OneRuleSpec(0.99, 1.0, Rule(10, 30, 10, 10, 20)),
                     kPeriod);
  std::vector<SloEvent> events;
  tracker.AddBad(100);
  tracker.Evaluate(kPeriod, &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].transition, SloTransition::kPending);
  EXPECT_EQ(tracker.state(0), AlertState::kPending);

  tracker.AddBad(100);
  tracker.Evaluate(2 * kPeriod, &events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].transition, SloTransition::kFiring);
  EXPECT_EQ(tracker.state(0), AlertState::kFiring);
}

TEST(SloTrackerTest, PendingCancelsWhenTheConditionClears) {
  // Long window = one bucket so the burn signal clears as soon as a good
  // bucket lands.
  SloTracker tracker(OneRuleSpec(0.99, 1.0, Rule(10, 10, 10, 10, 20)),
                     kPeriod);
  std::vector<SloEvent> events;
  tracker.AddBad(100);
  tracker.Evaluate(kPeriod, &events);  // pending
  tracker.AddGood(100);
  tracker.Evaluate(2 * kPeriod, &events);  // condition gone before hold
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].transition, SloTransition::kCancelled);
  EXPECT_EQ(tracker.state(0), AlertState::kInactive);
}

TEST(SloTrackerTest, ResolveRequiresTheFullDwellAndResistsFlaps) {
  // resolve_hold = 20 s, measured from the first clear evaluation: a
  // relapse restarts the dwell, and resolution lands on the first
  // evaluation at least 20 s after the dwell began.
  SloTracker tracker(OneRuleSpec(0.99, 1.0, Rule(10, 10, 10, 0, 20)),
                     kPeriod);
  std::vector<SloEvent> events;
  tracker.AddBad(100);
  tracker.Evaluate(kPeriod, &events);  // pending + firing
  ASSERT_EQ(events.size(), 2u);

  tracker.AddGood(100);
  tracker.Evaluate(2 * kPeriod, &events);  // clear; dwell starts at 20 s
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(tracker.state(0), AlertState::kFiring);

  tracker.AddBad(100);
  tracker.Evaluate(3 * kPeriod, &events);  // relapse - dwell restarts,
  EXPECT_EQ(events.size(), 2u);            // no duplicate firing event
  EXPECT_EQ(tracker.state(0), AlertState::kFiring);

  tracker.AddGood(100);
  tracker.Evaluate(4 * kPeriod, &events);  // clear; dwell starts at 40 s
  EXPECT_EQ(events.size(), 2u);
  tracker.AddGood(100);
  tracker.Evaluate(5 * kPeriod, &events);  // 10 s into the dwell
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(tracker.state(0), AlertState::kFiring);
  tracker.AddGood(100);
  tracker.Evaluate(6 * kPeriod, &events);  // 20 s clear - dwell met
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].transition, SloTransition::kResolved);
  EXPECT_EQ(events[2].at, 6 * kPeriod);
  EXPECT_EQ(tracker.state(0), AlertState::kInactive);
}

TEST(SloTrackerTest, ShortWindowVetoesAStaleLongWindow) {
  // Long window 30 s still remembers a bad bucket, but the short window
  // (10 s) has drained: the multi-window condition must NOT hold, which is
  // exactly what makes burn alerts stop re-firing after recovery.
  SloTracker tracker(OneRuleSpec(0.99, 1.0, Rule(10, 30, 10, 0, 20)),
                     kPeriod);
  std::vector<SloEvent> events;
  tracker.AddBad(100);
  tracker.Evaluate(kPeriod, &events);  // fires
  ASSERT_EQ(events.size(), 2u);
  const size_t fired = events.size();

  tracker.AddGood(1000);
  tracker.Evaluate(2 * kPeriod, &events);
  // Long window burn: 100 bad / 1100 total / 0.01 budget = 9.09 < 10
  // already, but even with a hotter long window the short window's 0
  // would veto. Either way: no new transitions except the resolve later.
  EXPECT_GT(tracker.BurnRate(sim::Seconds(10)), -1.0);  // well-defined
  EXPECT_EQ(tracker.WindowSums(sim::Seconds(10)).bad, 0u);
  EXPECT_EQ(events.size(), fired);
}

// --- Engine fan-out. -------------------------------------------------

TEST(SloEngineTest, FansObservationsOutByKind) {
  SloEngine engine(kPeriod);
  SloSpec freshness;
  freshness.kind = SloKind::kFreshness;
  freshness.bound = 2.0;
  SloSpec latency;
  latency.kind = SloKind::kLatency;
  latency.bound = 5.0;
  SloSpec success;
  success.kind = SloKind::kSuccess;
  SloTracker& f = engine.AddSlo(freshness);
  SloTracker& l = engine.AddSlo(latency);
  SloTracker& s = engine.AddSlo(success);

  engine.ObserveServedAge(1.0, /*used_secondary=*/true);   // f: good
  engine.ObserveServedAge(9.0, /*used_secondary=*/false);  // primary: ignored
  engine.ObserveReadLatencyMs(4.0);                        // l: good
  engine.ObserveReadLatencyMs(6.0);                        // l: bad
  engine.ObserveOutcome(true);                             // s: good
  engine.ObserveOutcome(false);                            // s: bad
  engine.Evaluate(kPeriod);

  EXPECT_EQ(f.WindowSums(kPeriod).good, 1u);
  EXPECT_EQ(f.WindowSums(kPeriod).bad, 0u);
  EXPECT_EQ(l.WindowSums(kPeriod).good, 1u);
  EXPECT_EQ(l.WindowSums(kPeriod).bad, 1u);
  EXPECT_EQ(s.WindowSums(kPeriod).good, 1u);
  EXPECT_EQ(s.WindowSums(kPeriod).bad, 1u);
  EXPECT_EQ(engine.evaluations(), 1u);
}

TEST(SloEngineTest, ShardedFreshnessUsesTheSampledSourceNotTheOpFeed) {
  SloEngine engine(kPeriod);
  SloSpec freshness;
  freshness.kind = SloKind::kFreshness;
  freshness.bound = 2.0;
  SloTracker& shard0 = engine.AddSlo(freshness, /*shard=*/0);
  double staleness = 1.0;
  shard0.SetSource([&staleness] { return staleness; });

  // Per-op served ages must NOT reach a sharded tracker.
  engine.ObserveServedAge(99.0, /*used_secondary=*/true);
  engine.Evaluate(kPeriod);  // samples source: 1.0 <= 2.0, good
  EXPECT_EQ(shard0.WindowSums(kPeriod).good, 1u);
  EXPECT_EQ(shard0.WindowSums(kPeriod).bad, 0u);

  staleness = 3.0;
  engine.Evaluate(2 * kPeriod);  // samples source: 3.0 > 2.0, bad
  EXPECT_EQ(shard0.WindowSums(kPeriod).bad, 1u);
}

// --- Compact spec parser. --------------------------------------------

TEST(SloParseTest, DefaultBundleDerivesFromTheRunDefaults) {
  SloDefaults defaults;
  defaults.stale_bound_seconds = 7;
  defaults.latency_target_ms = 4.5;
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs("default", defaults, &specs, &error)) << error;
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].kind, SloKind::kFreshness);
  EXPECT_DOUBLE_EQ(specs[0].objective, 0.99);
  EXPECT_DOUBLE_EQ(specs[0].bound, 7.0);
  EXPECT_EQ(specs[1].kind, SloKind::kLatency);
  EXPECT_DOUBLE_EQ(specs[1].objective, 0.80);
  EXPECT_DOUBLE_EQ(specs[1].bound, 4.5);
  EXPECT_EQ(specs[2].kind, SloKind::kSuccess);
  EXPECT_DOUBLE_EQ(specs[2].objective, 0.999);
}

TEST(SloParseTest, CustomSpecOverridesEveryKnob) {
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs(
      "freshness:bound=2:objective=0.95:name=fresh2:page=5:ticket=0:"
      "window=15:short=5:hold=10:resolve=30;success",
      SloDefaults{}, &specs, &error))
      << error;
  ASSERT_EQ(specs.size(), 2u);
  const SloSpec& fresh = specs[0];
  EXPECT_EQ(fresh.name, "fresh2");
  EXPECT_DOUBLE_EQ(fresh.bound, 2.0);
  EXPECT_DOUBLE_EQ(fresh.objective, 0.95);
  ASSERT_EQ(fresh.rules.size(), 1u);  // ticket=0 disabled the ticket rule
  EXPECT_EQ(fresh.rules[0].severity, SloSeverity::kPage);
  EXPECT_DOUBLE_EQ(fresh.rules[0].burn_rate, 5.0);
  EXPECT_EQ(fresh.rules[0].long_window, sim::Seconds(15));
  EXPECT_EQ(fresh.rules[0].short_window, sim::Seconds(5));
  EXPECT_EQ(fresh.rules[0].hold, sim::Seconds(10));
  EXPECT_EQ(fresh.rules[0].resolve_hold, sim::Seconds(30));
  // Bare "success" keeps both default rules.
  EXPECT_EQ(specs[1].rules.size(), 2u);
}

TEST(SloParseTest, TicketRuleScalesOffThePageWindows) {
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs("latency:window=20:short=5:resolve=15",
                            SloDefaults{}, &specs, &error))
      << error;
  ASSERT_EQ(specs[0].rules.size(), 2u);
  const BurnRule& ticket = specs[0].rules[1];
  EXPECT_EQ(ticket.severity, SloSeverity::kTicket);
  EXPECT_EQ(ticket.long_window, sim::Seconds(80));   // 4 x window
  EXPECT_EQ(ticket.short_window, sim::Seconds(20));  // window
  EXPECT_EQ(ticket.resolve_hold, sim::Seconds(30));  // 2 x resolve
}

TEST(SloParseTest, RejectsMalformedSpecs) {
  std::vector<SloSpec> specs;
  std::string error;
  EXPECT_FALSE(ParseSloSpecs("fresh", SloDefaults{}, &specs, &error));
  EXPECT_NE(error.find("unknown slo kind"), std::string::npos);
  EXPECT_FALSE(
      ParseSloSpecs("freshness:bound", SloDefaults{}, &specs, &error));
  EXPECT_FALSE(
      ParseSloSpecs("freshness:bound=x", SloDefaults{}, &specs, &error));
  EXPECT_FALSE(
      ParseSloSpecs("freshness:objective=1.5", SloDefaults{}, &specs,
                    &error));
  EXPECT_FALSE(ParseSloSpecs("freshness:page=0:ticket=0", SloDefaults{},
                             &specs, &error));
  EXPECT_FALSE(ParseSloSpecs("freshness:speed=9", SloDefaults{}, &specs,
                             &error));
  EXPECT_FALSE(ParseSloSpecs(";", SloDefaults{}, &specs, &error));
}

// --- Controller conformance: a healthy run pages nobody. --------------

// Every registered balance-fraction controller (plus the paper's default)
// must keep a healthy 3-node YCSB-B run inside the served-age SLO: the
// engine evaluates throughout and no page-severity alert ever fires.
TEST(SloConformanceTest, NoControllerPagesOnAHealthyRun) {
  std::vector<std::string> controllers = {"decongestant"};
  for (std::string_view name : core::RegisteredControllers()) {
    if (name != "decongestant") controllers.emplace_back(name);
  }
  for (const std::string& controller : controllers) {
    exp::ExperimentConfig config;
    config.seed = 31;
    config.system = exp::SystemType::kDecongestant;
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, 12, 0.95}};
    config.duration = sim::Seconds(120);
    config.warmup = sim::Seconds(20);
    config.controller = controller;
    std::string error;
    ASSERT_TRUE(ParseSloSpecs("freshness", SloDefaults{}, &config.slos,
                              &error))
        << error;
    exp::Experiment experiment(config);
    experiment.Run();
    const SloEngine* engine = experiment.slo_engine();
    ASSERT_NE(engine, nullptr) << controller;
    EXPECT_GE(engine->evaluations(), 10u) << controller;
    for (const SloEvent& e : engine->events()) {
      ADD_FAILURE() << controller << ": unexpected alert transition "
                    << ToString(e.transition) << " for " << e.slo << " at t="
                    << sim::ToSeconds(e.at) << "s";
    }
  }
}

}  // namespace
}  // namespace dcg::obs
