// Tests for fault injection and fail-over: elections, rollback of
// un-replicated writes, w:majority durability across primary crashes,
// node restart/initial sync, and driver behaviour during a fail-over.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "driver/client.h"
#include "net/network.h"
#include "repl/replica_set.h"

namespace dcg::repl {
namespace {

// The whole battery runs twice: against the legacy omniscient election
// (raft_elections=false) and against the real Raft-style coordinator.
// Primary indexes are never assumed constant — every scenario reads the
// currently reported primary and kills/checks relative to it, so the
// tests keep passing whichever member an election promotes.
class FailoverTest : public ::testing::TestWithParam<bool> {
 protected:
  void Build(ReplicaSetParams params = {}) {
    params.election_timeout = sim::Seconds(3);
    params.raft_elections = GetParam();
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    client_host_ = network_->AddHost("client");
    std::vector<net::HostId> hosts;
    for (int i = 0; i < 3; ++i) {
      hosts.push_back(network_->AddHost("n" + std::to_string(i)));
      network_->SetLink(client_host_, hosts[i], sim::Millis(1), 0);
    }
    rs_ = std::make_unique<ReplicaSet>(&loop_, sim::Rng(2), network_.get(),
                                       params, server_params, hosts);
    driver::ClientOptions options;
    client_ = std::make_unique<driver::MongoClient>(
        &loop_, sim::Rng(3), rs_->command_bus(), client_host_, options);
    rs_->Start();
  }

  void WriteDoc(int64_t id, WriteConcern concern = WriteConcern::kW1,
                std::function<void(bool)> done = nullptr) {
    rs_->WriteTransaction(
        server::OpClass::kInsert,
        [id](TxnContext* ctx) {
          ctx->Insert("t", doc::Value::Doc({{"_id", id}, {"v", id}}));
        },
        std::move(done), concern);
  }

  /// A live secondary index, preferring the highest (stays out of the
  /// way of the seed primary at index 0).
  int PickSecondary() const {
    for (int i = rs_->node_count() - 1; i >= 0; --i) {
      if (i != rs_->primary_index() && rs_->IsAlive(i)) return i;
    }
    return -1;
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  net::HostId client_host_;
  std::unique_ptr<ReplicaSet> rs_;
  std::unique_ptr<driver::MongoClient> client_;
};

TEST_P(FailoverTest, ElectionPromotesMostUpToDateSecondary) {
  Build();
  for (int64_t i = 0; i < 50; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(2));
  const int old_primary = rs_->primary_index();
  ASSERT_TRUE(rs_->IsAlive(old_primary));

  rs_->KillNode(old_primary);
  EXPECT_FALSE(rs_->IsAlive(old_primary));
  // Before the election timeout, the old primary is still nominal.
  loop_.RunUntil(sim::Seconds(3));
  EXPECT_EQ(rs_->primary_index(), old_primary);
  // After it, a secondary has taken over and the term advanced. (Raft
  // deadlines add up to 15 % jitter plus vote + catch-up rounds, so give
  // the election a comfortable margin past the base timeout.)
  loop_.RunUntil(sim::Seconds(8));
  EXPECT_NE(rs_->primary_index(), old_primary);
  EXPECT_TRUE(rs_->IsAlive(rs_->primary_index()));
  EXPECT_EQ(rs_->term(), 2u);
  EXPECT_EQ(rs_->elections(), 1u);
  EXPECT_TRUE(rs_->HasWritablePrimary());
}

TEST_P(FailoverTest, WritesContinueAfterFailover) {
  Build();
  for (int64_t i = 0; i < 20; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(2));
  rs_->KillNode(rs_->primary_index());
  loop_.RunUntil(sim::Seconds(8));

  bool committed = false;
  WriteDoc(1000, WriteConcern::kW1, [&](bool c) { committed = c; });
  loop_.RunUntil(sim::Seconds(9));
  EXPECT_TRUE(committed);
  EXPECT_NE(rs_->primary().db().Get("t")->FindById(doc::Value(1000)),
            nullptr);
  // Replication between the survivors continues.
  loop_.RunUntil(sim::Seconds(11));
  const int other = PickSecondary();
  ASSERT_GE(other, 0);
  EXPECT_EQ(rs_->node(other).db().Fingerprint(),
            rs_->primary().db().Fingerprint());
}

TEST_P(FailoverTest, MajorityAckedWritesSurviveFailover) {
  // The classic durability contract: anything acknowledged at w:majority
  // before the crash exists on the new primary after the election.
  Build();
  std::vector<int64_t> acked;
  for (int64_t i = 0; i < 300; ++i) {
    loop_.ScheduleAt(sim::Millis(20) * i, [this, i, &acked] {
      WriteDoc(i, WriteConcern::kMajority, [i, &acked](bool ok) {
        if (ok) acked.push_back(i);
      });
    });
  }
  loop_.ScheduleAt(sim::Seconds(4),
                   [this] { rs_->KillNode(rs_->primary_index()); });
  loop_.RunUntil(sim::Seconds(14));

  EXPECT_GT(acked.size(), 50u);  // plenty acknowledged before the crash
  const store::Collection* t = rs_->primary().db().Get("t");
  ASSERT_NE(t, nullptr);
  for (int64_t id : acked) {
    EXPECT_NE(t->FindById(doc::Value(id)), nullptr) << "lost w:majority " << id;
  }
}

TEST_P(FailoverTest, UnreplicatedW1WritesRollBack) {
  ReplicaSetParams params;
  // Stall replication so the primary commits w:1 writes the secondaries
  // never see.
  params.getmore_block_threshold = sim::Seconds(1);
  Build(params);
  loop_.RunUntil(sim::Millis(500));
  for (int64_t i = 0; i < 10; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(2));  // replicated
  const int old_primary = rs_->primary_index();
  const int observer = PickSecondary();
  ASSERT_GE(observer, 0);
  ASSERT_EQ(rs_->node(observer).last_applied().seq, 10u);

  // Block log shipping with an artificial never-ending checkpoint, then
  // commit more w:1 writes that stay primary-only.
  rs_->primary().server().AddDirtyBytes(100'000'000'000ULL);
  loop_.RunUntil(sim::Seconds(61));  // checkpoint started, getMore blocked
  for (int64_t i = 100; i < 110; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(62));
  ASSERT_EQ(rs_->oplog().last_seq(), 20u);
  ASSERT_EQ(rs_->node(observer).last_applied().seq, 10u);

  rs_->KillNode(old_primary);
  loop_.RunUntil(sim::Seconds(70));
  // The acknowledged-but-unreplicated suffix was rolled back.
  EXPECT_NE(rs_->primary_index(), old_primary);
  EXPECT_EQ(rs_->oplog().last_seq(), 10u);
  EXPECT_EQ(rs_->primary().db().Get("t")->FindById(doc::Value(105)), nullptr);
  EXPECT_NE(rs_->primary().db().Get("t")->FindById(doc::Value(5)), nullptr);

  // New writes take fresh sequence numbers from the truncation point.
  bool committed = false;
  WriteDoc(200, WriteConcern::kW1, [&](bool c) { committed = c; });
  loop_.RunUntil(sim::Seconds(72));
  EXPECT_TRUE(committed);
  EXPECT_EQ(rs_->oplog().last_seq(), 11u);
}

TEST_P(FailoverTest, RestartedNodeInitialSyncsAndConverges) {
  Build();
  for (int64_t i = 0; i < 30; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(2));
  const int victim = PickSecondary();
  ASSERT_GE(victim, 0);
  rs_->KillNode(victim);
  for (int64_t i = 100; i < 130; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(4));
  EXPECT_LT(rs_->node(victim).last_applied().seq, 60u);

  rs_->RestartNode(victim);
  EXPECT_TRUE(rs_->IsAlive(victim));
  for (int64_t i = 200; i < 210; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(8));
  EXPECT_EQ(rs_->node(victim).last_applied().seq, 70u);
  EXPECT_EQ(rs_->node(victim).db().Fingerprint(),
            rs_->primary().db().Fingerprint());
}

TEST_P(FailoverTest, KilledPrimaryCanRejoinAsSecondary) {
  Build();
  for (int64_t i = 0; i < 20; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(2));
  const int old_primary = rs_->primary_index();
  rs_->KillNode(old_primary);
  loop_.RunUntil(sim::Seconds(8));
  const int new_primary = rs_->primary_index();
  ASSERT_NE(new_primary, old_primary);

  rs_->RestartNode(old_primary);
  for (int64_t i = 100; i < 120; ++i) WriteDoc(i);
  loop_.RunUntil(sim::Seconds(14));
  EXPECT_EQ(rs_->primary_index(), new_primary);  // no spurious election
  EXPECT_EQ(rs_->node(old_primary).db().Fingerprint(),
            rs_->primary().db().Fingerprint());
}

TEST_P(FailoverTest, DriverRetriesThroughFailover) {
  Build();
  client_->Start();
  loop_.RunUntil(sim::Seconds(1));
  rs_->KillNode(rs_->primary_index());

  // A write issued while no primary exists completes after the election.
  bool write_done = false;
  sim::Time write_completed_at = 0;
  client_->Write(
      server::OpClass::kInsert,
      [](TxnContext* ctx) {
        ctx->Insert("t", doc::Value::Doc({{"_id", 1}}));
      },
      [&](const driver::MongoClient::WriteResult& r) {
        write_done = true;
        write_completed_at = loop_.Now();
        EXPECT_TRUE(r.committed);
      });

  // Primary-preference reads served by surviving members meanwhile... the
  // kPrimary read also blocks until the election.
  bool read_done = false;
  client_->Read(
      driver::ReadPreference::kSecondary, server::OpClass::kPointRead,
      [](const store::Database&) {},
      [&](const driver::MongoClient::ReadResult& r) {
        read_done = true;
        EXPECT_TRUE(rs_->IsAlive(r.node));
      });

  loop_.RunUntil(sim::Seconds(12));
  EXPECT_TRUE(read_done);
  EXPECT_TRUE(write_done);
  EXPECT_GE(write_completed_at, sim::Seconds(4));  // after the election
}

TEST_P(FailoverTest, SelectionSkipsDeadSecondaries) {
  Build();
  client_->Start();
  loop_.RunUntil(sim::Seconds(1));
  const int primary = rs_->primary_index();
  const int first_victim = PickSecondary();
  rs_->KillNode(first_victim);
  const int survivor = PickSecondary();
  ASSERT_GE(survivor, 0);
  ASSERT_NE(survivor, first_victim);
  // The dead secondary stops answering hellos; after the hello timeout
  // the driver marks it unreachable and stops selecting it.
  loop_.RunUntil(sim::Seconds(4));
  for (int i = 0; i < 50; ++i) {
    const int node = client_->SelectNode(driver::ReadPreference::kSecondary);
    EXPECT_EQ(node, survivor);
  }
  rs_->KillNode(survivor);
  loop_.RunUntil(sim::Seconds(7));
  // All secondaries dead: falls back to the primary.
  EXPECT_EQ(client_->SelectNode(driver::ReadPreference::kSecondary), primary);
}

TEST_P(FailoverTest, PendingMajorityWritesFailOnPrimaryCrash) {
  ReplicaSetParams params;
  params.getmore_block_threshold = sim::Seconds(1);
  Build(params);
  // Stall replication so majority acks can't happen.
  rs_->primary().server().AddDirtyBytes(100'000'000'000ULL);
  loop_.RunUntil(sim::Seconds(61));

  int outcomes = 0, failures = 0;
  for (int64_t i = 0; i < 5; ++i) {
    WriteDoc(i, WriteConcern::kMajority, [&](bool ok) {
      ++outcomes;
      if (!ok) ++failures;
    });
  }
  loop_.RunUntil(sim::Seconds(62));
  EXPECT_EQ(outcomes, 0);  // stuck waiting for replication
  rs_->KillNode(rs_->primary_index());
  loop_.RunUntil(sim::Seconds(63));
  EXPECT_EQ(outcomes, 5);  // resolved as uncertain/failed
  EXPECT_EQ(failures, 5);
}

INSTANTIATE_TEST_SUITE_P(Elections, FailoverTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Raft" : "Legacy";
                         });

// Randomized fault-injection property: under arbitrary interleavings of
// writes, crashes, elections, and restarts, (a) every write acknowledged
// at w:majority survives on the final primary, and (b) once the cluster
// quiesces, all live replicas converge to identical data.
class FaultInjectionTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(FaultInjectionTest, MajorityDurabilityAndConvergence) {
  const uint64_t seed = std::get<0>(GetParam());
  sim::EventLoop loop;
  sim::Rng rng(seed);
  net::Network network(&loop, rng.Fork());
  const net::HostId client_host = network.AddHost("client");
  ReplicaSetParams params;
  params.election_timeout = sim::Seconds(2);
  params.raft_elections = std::get<1>(GetParam());
  server::ServerParams server_params;
  std::vector<net::HostId> hosts;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(network.AddHost("n" + std::to_string(i)));
    network.SetLink(client_host, hosts[i], sim::Millis(1), sim::Micros(40));
  }
  ReplicaSet rs(&loop, rng.Fork(), &network, params, server_params, hosts);
  rs.Start();

  // Writers: a mix of w:1 and w:majority inserts throughout the run.
  auto acked_majority = std::make_shared<std::vector<int64_t>>();
  sim::Rng write_rng = rng.Fork();
  for (int64_t i = 0; i < 600; ++i) {
    const bool majority = write_rng.Bernoulli(0.4);
    loop.ScheduleAt(sim::Millis(40) * i, [&rs, i, majority, acked_majority] {
      rs.WriteTransaction(
          server::OpClass::kInsert,
          [i](TxnContext* ctx) {
            ctx->Insert("t", doc::Value::Doc({{"_id", i}}));
          },
          majority ? std::function<void(bool)>(
                         [i, acked_majority](bool ok) {
                           if (ok) acked_majority->push_back(i);
                         })
                   : nullptr,
          majority ? WriteConcern::kMajority : WriteConcern::kW1);
    });
  }

  // Chaos: 4 kill/restart cycles at random times on random nodes, never
  // dropping below 2 live nodes (a majority must stay electable).
  sim::Rng chaos_rng = rng.Fork();
  for (int round = 0; round < 4; ++round) {
    const auto kill_at =
        sim::Seconds(3) + sim::Seconds(5) * round +
        sim::Millis(chaos_rng.UniformInt(0, 1500));
    const int victim = static_cast<int>(chaos_rng.UniformInt(0, 2));
    loop.ScheduleAt(kill_at, [&rs, victim] {
      int live = 0;
      for (int i = 0; i < 3; ++i) live += rs.IsAlive(i) ? 1 : 0;
      if (live == 3) rs.KillNode(victim);
    });
    loop.ScheduleAt(kill_at + sim::Seconds(3) +
                        sim::Millis(chaos_rng.UniformInt(0, 800)),
                    [&rs, victim] {
                      if (!rs.IsAlive(victim) &&
                          rs.IsAlive(rs.primary_index())) {
                        rs.RestartNode(victim);
                      }
                    });
  }

  // Run well past the last write (600 * 40 ms = 24 s) and chaos round,
  // then quiesce.
  loop.RunUntil(sim::Seconds(40));

  ASSERT_TRUE(rs.IsAlive(rs.primary_index()));
  const store::Collection* t = rs.primary().db().Get("t");
  ASSERT_NE(t, nullptr);
  for (int64_t id : *acked_majority) {
    EXPECT_NE(t->FindById(doc::Value(id)), nullptr)
        << "w:majority write " << id << " lost (seed " << seed << ")";
  }
  for (int i = 0; i < 3; ++i) {
    if (!rs.IsAlive(i) || i == rs.primary_index()) continue;
    EXPECT_EQ(rs.node(i).db().Fingerprint(),
              rs.primary().db().Fingerprint())
        << "node " << i << " diverged (seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, FaultInjectionTest,
    ::testing::Combine(::testing::Values(101, 202, 303, 404, 505, 606),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, bool>>& info) {
      return (std::get<1>(info.param) ? std::string("Raft")
                                      : std::string("Legacy")) +
             "Seed" + std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace dcg::repl
