// Tests for the sharded-cluster substrate: hash routing, data placement,
// scatter-gather, and per-shard Decongestant balancing — all through the
// bus-routed mongos (shard::Router) and its versioned chunk map.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "shard/sharded_cluster.h"

namespace dcg::shard {
namespace {

class ShardTest : public ::testing::Test {
 protected:
  void Build(ShardedClusterConfig config = {}) {
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    client_host_ = network_->AddHost("client");
    cluster_ = std::make_unique<ShardedCluster>(&loop_, sim::Rng(2),
                                                network_.get(), client_host_,
                                                config);
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  net::HostId client_host_ = 0;
  std::unique_ptr<ShardedCluster> cluster_;
};

TEST_F(ShardTest, ShardForIsDeterministicAndBalanced) {
  Build();
  int counts[2] = {0, 0};
  for (int64_t id = 0; id < 10'000; ++id) {
    const int s = cluster_->ShardFor(doc::Value(id));
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 2);
    ASSERT_EQ(s, cluster_->ShardFor(doc::Value(id)));  // stable
    ++counts[s];
  }
  EXPECT_NEAR(counts[0], 5000, 500);
  EXPECT_NEAR(counts[1], 5000, 500);
}

TEST_F(ShardTest, InsertsLandOnOwningShardOnly) {
  Build();
  cluster_->Start();
  for (int64_t id = 0; id < 100; ++id) {
    cluster_->InsertDoc("t", doc::Value::Doc({{"_id", id}, {"v", id}}),
                        nullptr);
  }
  loop_.RunUntil(sim::Seconds(3));
  size_t total = 0;
  for (int s = 0; s < 2; ++s) {
    const store::Collection* t = cluster_->shard(s).primary().db().Get("t");
    ASSERT_NE(t, nullptr);
    total += t->size();
    // Every document on this shard is actually owned by it.
    t->ForEach([&](const doc::Value& id, const store::DocPtr&) {
      EXPECT_EQ(cluster_->ShardFor(id), s);
      return true;
    });
    EXPECT_GT(t->size(), 20u);  // roughly balanced
  }
  EXPECT_EQ(total, 100u);
}

TEST_F(ShardTest, RoutedReadFindsDocumentWherever) {
  Build();
  cluster_->Start();
  for (int64_t id = 0; id < 50; ++id) {
    cluster_->InsertDoc("t", doc::Value::Doc({{"_id", id}, {"v", id * 2}}),
                        nullptr);
  }
  loop_.RunUntil(sim::Seconds(3));  // fully replicated

  int found = 0, completed = 0;
  for (int64_t id = 0; id < 50; ++id) {
    auto hit = std::make_shared<bool>(false);
    cluster_->ReadDoc(
        "t", doc::Value(id), server::OpClass::kPointRead,
        [id, hit](const store::Database& db) {
          const store::Collection* t = db.Get("t");
          *hit = t != nullptr && t->FindById(doc::Value(id)) != nullptr;
        },
        [&, hit](const driver::MongoClient::ReadResult&) {
          ++completed;
          if (*hit) ++found;
        });
  }
  loop_.RunUntil(sim::Seconds(4));
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(found, 50);
}

TEST_F(ShardTest, UpdatesRouteAndReplicate) {
  Build();
  cluster_->Start();
  cluster_->InsertDoc("t", doc::Value::Doc({{"_id", 42}, {"v", 0}}), nullptr);
  loop_.RunUntil(sim::Seconds(1));
  doc::UpdateSpec spec;
  spec.Inc("v", doc::Value(int64_t{7}));
  bool committed = false;
  cluster_->UpdateDoc("t", doc::Value(42), spec,
                      [&](const driver::MongoClient::WriteResult& r) {
                        committed = r.committed;
                      });
  loop_.RunUntil(sim::Seconds(3));
  EXPECT_TRUE(committed);
  const int s = cluster_->ShardFor(doc::Value(42));
  // Replicated to the owning shard's secondaries too.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster_->shard(s)
                  .node(i)
                  .db()
                  .Get("t")
                  ->FindById(doc::Value(42))
                  ->Find("v")
                  ->as_int64(),
              7);
  }
}

TEST_F(ShardTest, ScatterCountSumsAcrossShards) {
  Build();
  cluster_->Start();
  for (int64_t id = 0; id < 200; ++id) {
    cluster_->InsertDoc(
        "t", doc::Value::Doc({{"_id", id}, {"even", id % 2 == 0}}), nullptr);
  }
  loop_.RunUntil(sim::Seconds(3));

  size_t total = 0;
  sim::Duration latency = 0;
  cluster_->ScatterCount("t", doc::Filter::Eq("even", doc::Value(true)),
                         server::OpClass::kPointRead,
                         [&](size_t t, sim::Duration l) {
                           total = t;
                           latency = l;
                         });
  loop_.RunUntil(sim::Seconds(4));
  EXPECT_EQ(total, 100u);
  EXPECT_GT(latency, 0);
}

TEST_F(ShardTest, PerShardBalancersActIndependently) {
  // Congest only shard 0: its balancer ramps toward the cap while shard
  // 1's stays at the floor — the fine-grained, per-shard routing that a
  // single cluster-wide Read Preference cannot express.
  ShardedClusterConfig config;
  Build(config);
  cluster_->Start();

  // Keys owned by each shard, discovered via the router's own hash.
  std::vector<int64_t> shard0_keys, shard1_keys;
  for (int64_t id = 0; id < 2000 &&
                       (shard0_keys.size() < 400 || shard1_keys.size() < 10);
       ++id) {
    if (cluster_->ShardFor(doc::Value(id)) == 0) {
      if (shard0_keys.size() < 400) shard0_keys.push_back(id);
    } else if (shard1_keys.size() < 10) {
      shard1_keys.push_back(id);
    }
  }
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 3; ++i) {
      store::Collection& t = cluster_->shard(s).node(i).db().GetOrCreate("t");
      for (int64_t id : shard0_keys) {
        if (cluster_->ShardFor(doc::Value(id)) == s) {
          t.Insert(doc::Value::Doc({{"_id", id}}));
        }
      }
      for (int64_t id : shard1_keys) {
        if (cluster_->ShardFor(doc::Value(id)) == s) {
          t.Insert(doc::Value::Doc({{"_id", id}}));
        }
      }
    }
  }

  // 40 closed-loop readers hammer shard-0 keys; a single occasional
  // reader touches shard 1.
  auto rng = std::make_shared<sim::Rng>(7);
  std::function<void(int)> hot_reader = [&, rng](int worker) {
    const int64_t key = shard0_keys[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(shard0_keys.size()) - 1))];
    cluster_->ReadDoc("t", doc::Value(key), server::OpClass::kPointRead,
                      [](const store::Database&) {},
                      [&, worker](const driver::MongoClient::ReadResult&) {
                        hot_reader(worker);
                      });
  };
  std::function<void()> cold_reader = [&, rng] {
    const int64_t key = shard1_keys[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(shard1_keys.size()) - 1))];
    cluster_->ReadDoc("t", doc::Value(key), server::OpClass::kPointRead,
                      [](const store::Database&) {},
                      [&](const driver::MongoClient::ReadResult&) {
                        loop_.ScheduleAfter(sim::Millis(100),
                                            [&] { cold_reader(); });
                      });
  };
  for (int w = 0; w < 40; ++w) hot_reader(w);
  cold_reader();

  loop_.RunUntil(sim::Seconds(150));
  EXPECT_GE(cluster_->shared_state(0).balance_fraction(), 0.5)
      << "congested shard should shift reads to its secondaries";
  EXPECT_LE(cluster_->shared_state(1).balance_fraction(), 0.2)
      << "idle shard should stay near the fresh primary";
}

TEST_F(ShardTest, FixedPreferenceModeUsesNoBalancers) {
  ShardedClusterConfig config;
  config.run_balancers = false;
  config.fixed_pref = driver::ReadPreference::kSecondary;
  Build(config);
  cluster_->Start();
  EXPECT_EQ(cluster_->balancer(0), nullptr);
  cluster_->InsertDoc("t", doc::Value::Doc({{"_id", 1}}), nullptr);
  loop_.RunUntil(sim::Seconds(2));
  bool used_secondary = false;
  cluster_->ReadDoc("t", doc::Value(1), server::OpClass::kPointRead,
                    [](const store::Database&) {},
                    [&](const driver::MongoClient::ReadResult& r) {
                      used_secondary = r.used_secondary;
                    });
  loop_.RunUntil(sim::Seconds(3));
  EXPECT_TRUE(used_secondary);
}

TEST_F(ShardTest, RangedKeyRoutesByChunkRanges) {
  ShardedClusterConfig config;
  config.shard_key.hashed = false;
  config.split_points = {doc::Value(int64_t{100}), doc::Value(int64_t{200}),
                         doc::Value(int64_t{300})};
  Build(config);
  cluster_->Start();
  // 4 chunks round-robin over 2 shards: [min,100) and [200,300) on shard
  // 0, [100,200) and [300,max) on shard 1.
  EXPECT_EQ(cluster_->ShardFor(doc::Value(int64_t{50})), 0);
  EXPECT_EQ(cluster_->ShardFor(doc::Value(int64_t{150})), 1);
  EXPECT_EQ(cluster_->ShardFor(doc::Value(int64_t{250})), 0);
  EXPECT_EQ(cluster_->ShardFor(doc::Value(int64_t{999})), 1);
  for (int64_t id : {50, 150, 250, 999}) {
    cluster_->InsertDoc("t", doc::Value::Doc({{"_id", id}}), nullptr);
  }
  loop_.RunUntil(sim::Seconds(2));
  for (int64_t id : {50, 150, 250, 999}) {
    const int owner = cluster_->ShardFor(doc::Value(id));
    const store::Collection* t =
        cluster_->shard(owner).primary().db().Get("t");
    ASSERT_NE(t, nullptr);
    EXPECT_NE(t->FindById(doc::Value(id)), nullptr) << "id " << id;
    const store::Collection* other =
        cluster_->shard(1 - owner).primary().db().Get("t");
    EXPECT_TRUE(other == nullptr || other->FindById(doc::Value(id)) == nullptr)
        << "id " << id << " leaked onto shard " << (1 - owner);
  }
}

TEST_F(ShardTest, ScatterFindMergesSortOrderAcrossShards) {
  Build();
  cluster_->Start();
  // Distinct rank values (37 is invertible mod 101, ids < 101).
  for (int64_t id = 0; id < 60; ++id) {
    cluster_->InsertDoc(
        "t", doc::Value::Doc({{"_id", id}, {"rank", (id * 37) % 101}}),
        nullptr);
  }
  loop_.RunUntil(sim::Seconds(3));

  // Oracle: the global sort order, computed locally.
  std::vector<std::pair<int64_t, int64_t>> by_rank;  // (rank, id)
  for (int64_t id = 0; id < 60; ++id) by_rank.emplace_back((id * 37) % 101, id);
  std::sort(by_rank.begin(), by_rank.end());

  auto spec = std::make_shared<proto::FindSpec>();
  spec->collection = "t";
  spec->sort_field = "rank";
  spec->limit = 10;
  std::shared_ptr<const proto::FindResult> merged;
  cluster_->ScatterFind(spec, server::OpClass::kPointRead,
                        [&](const driver::MongoClient::ReadResult& r) {
                          ASSERT_TRUE(r.ok);
                          merged = r.find;
                        });
  loop_.RunUntil(sim::Seconds(4));
  ASSERT_NE(merged, nullptr);
  EXPECT_FALSE(merged->partial);
  EXPECT_EQ(merged->shards_answered, 2);
  ASSERT_EQ(merged->docs.size(), 10u);
  for (size_t i = 0; i < merged->docs.size(); ++i) {
    EXPECT_EQ(merged->docs[i].Find("_id")->as_int64(), by_rank[i].second)
        << "merged position " << i;
  }

  // Descending, across every document: the exact reverse order.
  auto desc = std::make_shared<proto::FindSpec>();
  desc->collection = "t";
  desc->sort_field = "rank";
  desc->sort_descending = true;
  std::shared_ptr<const proto::FindResult> merged_desc;
  cluster_->ScatterFind(desc, server::OpClass::kPointRead,
                        [&](const driver::MongoClient::ReadResult& r) {
                          ASSERT_TRUE(r.ok);
                          merged_desc = r.find;
                        });
  loop_.RunUntil(sim::Seconds(5));
  ASSERT_NE(merged_desc, nullptr);
  ASSERT_EQ(merged_desc->docs.size(), 60u);
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(merged_desc->docs[i].Find("_id")->as_int64(),
              by_rank[59 - i].second);
  }
}

TEST_F(ShardTest, ScatterCountLatencyIsTheSlowestShard) {
  ShardedClusterConfig config;
  config.run_balancers = false;  // deterministic: every sub-op to primary
  Build(config);
  cluster_->Start();
  for (int64_t id = 0; id < 100; ++id) {
    cluster_->InsertDoc("t", doc::Value::Doc({{"_id", id}}), nullptr);
  }
  loop_.RunUntil(sim::Seconds(2));

  sim::Duration fast = 0;
  cluster_->ScatterCount("t", doc::Filter::True(),
                         server::OpClass::kPointRead,
                         [&](size_t, sim::Duration l) { fast = l; });
  loop_.RunUntil(sim::Seconds(3));
  ASSERT_GT(fast, 0);
  ASSERT_LT(fast, sim::Millis(10));

  // Slow down the router→shard-1-primary leg: the merged reply must now
  // wait for the slowest shard, not answer at the fast one.
  net::Network::LinkFault slow;
  slow.extra_delay = sim::Millis(20);
  network_->SetLinkFault(cluster_->router().host(),
                         cluster_->shard(1).primary().host(), slow);
  sim::Duration slowest = 0;
  cluster_->ScatterCount("t", doc::Filter::True(),
                         server::OpClass::kPointRead,
                         [&](size_t total, sim::Duration l) {
                           EXPECT_EQ(total, 100u);
                           slowest = l;
                         });
  loop_.RunUntil(sim::Seconds(4));
  EXPECT_GE(slowest, sim::Millis(20));
  EXPECT_LT(slowest, sim::Millis(20) + fast + sim::Millis(10));
}

TEST_F(ShardTest, PartialResultsWhenAShardMissesTheDeadline) {
  ShardedClusterConfig config;
  config.run_balancers = false;
  Build(config);
  cluster_->Start();
  for (int64_t id = 0; id < 100; ++id) {
    cluster_->InsertDoc("t", doc::Value::Doc({{"_id", id}}), nullptr);
  }
  loop_.RunUntil(sim::Seconds(2));

  // Partition shard 1 away from the router: its sub-find never answers.
  for (net::HostId host : cluster_->shard(1).command_bus()->server_hosts()) {
    network_->BlockPair(cluster_->router().host(), host);
  }

  auto spec = std::make_shared<proto::FindSpec>();
  spec->collection = "t";
  spec->allow_partial = true;
  driver::OpOptions opts;
  opts.deadline = sim::Millis(40);
  std::shared_ptr<const proto::FindResult> result;
  bool ok = false, timed_out = false;
  sim::Duration latency = 0;
  cluster_->ScatterFind(spec, server::OpClass::kPointRead,
                        [&](const driver::MongoClient::ReadResult& r) {
                          ok = r.ok;
                          timed_out = r.timed_out;
                          result = r.find;
                          latency = r.latency;
                        },
                        opts);
  loop_.RunUntil(sim::Seconds(3));
  // The router answered with shard 0's rows just before the deadline —
  // the client saw a success, not a maxTimeMS expiry.
  EXPECT_TRUE(ok);
  EXPECT_FALSE(timed_out);
  EXPECT_LE(latency, sim::Millis(40));
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->shards_answered, 1);
  EXPECT_EQ(cluster_->router().partial_replies(), 1u);
  ASSERT_FALSE(result->docs.empty());
  for (const doc::Value& d : result->docs) {
    EXPECT_EQ(cluster_->ShardFor(*d.Find("_id")), 0);
  }
}

TEST_F(ShardTest, StaleConfigRetriesAfterMoveChunkWithoutDuplicateWrites) {
  ShardedClusterConfig config;
  config.run_balancers = false;
  Build(config);
  cluster_->Start();
  for (int64_t id = 0; id < 200; ++id) {
    cluster_->InsertDoc("t", doc::Value::Doc({{"_id", id}, {"v", id}}),
                        nullptr);
  }
  loop_.RunUntil(sim::Seconds(2));

  // A chunk on shard 0 and one of our keys inside it.
  const auto before = cluster_->config_shards().Snapshot();
  int64_t chunk_id = -1, key = -1;
  for (int64_t id = 0; id < 200 && key < 0; ++id) {
    const int64_t c = before->ChunkIdFor(doc::Value(id));
    if (before->chunk(c).shard == 0) {
      chunk_id = c;
      key = id;
    }
  }
  ASSERT_GE(key, 0);

  // Migrate the chunk. The router still holds the old routing table, so
  // the next write to this key is dispatched to shard 0, refused with
  // kStaleConfig *before any body runs*, re-routed after a refresh, and
  // applied exactly once on shard 1.
  cluster_->MoveChunk("t", chunk_id, 1);
  doc::UpdateSpec spec;
  spec.Inc("v", doc::Value(int64_t{7}));
  bool committed = false;
  cluster_->UpdateDoc("t", doc::Value(key), spec,
                      [&](const driver::MongoClient::WriteResult& r) {
                        committed = r.committed;
                      });
  loop_.RunUntil(sim::Seconds(4));
  EXPECT_TRUE(committed);
  EXPECT_GE(cluster_->router().stale_refreshes(), 1u);
  EXPECT_GE(cluster_->config_shards().stale_refusals(), 1u);

  // Applied exactly once, on the new owner only.
  const store::Collection* recipient =
      cluster_->shard(1).primary().db().Get("t");
  ASSERT_NE(recipient, nullptr);
  const store::DocPtr moved = recipient->FindById(doc::Value(key));
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->Find("v")->as_int64(), key + 7);
  const store::Collection* donor = cluster_->shard(0).primary().db().Get("t");
  ASSERT_NE(donor, nullptr);
  EXPECT_EQ(donor->FindById(doc::Value(key)), nullptr);

  // The refreshed routing table serves point reads for the moved key.
  bool found = false;
  cluster_->ReadDoc("t", doc::Value(key), server::OpClass::kPointRead,
                    [&](const store::Database& db) {
                      const store::Collection* t = db.Get("t");
                      found = t != nullptr &&
                              t->FindById(doc::Value(key)) != nullptr;
                    },
                    nullptr);
  loop_.RunUntil(sim::Seconds(5));
  EXPECT_TRUE(found);
}

TEST_F(ShardTest, ClientRouterShardSpansLinkIntoOneTrace) {
  Build();
  obs::Tracer tracer;
  tracer.Enable();
  cluster_->SetTracer(&tracer);
  cluster_->Start();
  cluster_->InsertDoc("t", doc::Value::Doc({{"_id", 5}}), nullptr);
  loop_.RunUntil(sim::Seconds(2));
  cluster_->ReadDoc("t", doc::Value(5), server::OpClass::kPointRead,
                    [](const store::Database&) {}, nullptr);
  loop_.RunUntil(sim::Seconds(3));

  // The read is the last routed command: take its kRouter span and check
  // both directions of the linkage — the router span hangs off a
  // client-side span of the same trace, and the shard-leg spans hang off
  // the router span.
  const obs::SpanRecord* router_span = nullptr;
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.kind == obs::SpanKind::kRouter) router_span = &s;
  }
  ASSERT_NE(router_span, nullptr);
  EXPECT_NE(router_span->trace_id, 0u);
  EXPECT_NE(router_span->parent_span_id, 0u);
  bool client_parent_found = false;
  int spans_under_router = 0;
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.span_id == router_span->parent_span_id &&
        s.trace_id == router_span->trace_id &&
        s.kind != obs::SpanKind::kRouter) {
      client_parent_found = true;
    }
    if (s.parent_span_id == router_span->span_id &&
        s.trace_id == router_span->trace_id) {
      ++spans_under_router;
    }
  }
  EXPECT_TRUE(client_parent_found)
      << "router span's parent must be a client-side span of the same trace";
  EXPECT_GT(spans_under_router, 0)
      << "shard-leg spans must parent to the router span";
}

TEST_F(ShardTest, PartitionedShardGatesWhileHealthyShardKeepsItsBudget) {
  // The shared-budget chaos scenario: shard 1's secondaries partition
  // away from their primary, its staleness estimate climbs past the
  // bound, and its balancer gates to zero — reads there fall back to the
  // (fresh) primary. Shard 0, congested and healthy, keeps balancing
  // against a debited-but-positive effective bound. After the partition
  // heals, shard 1 recovers.
  ShardedClusterConfig config;
  config.balancer.stale_bound_seconds = 10;
  Build(config);
  cluster_->Start();

  std::vector<int64_t> shard0_keys, shard1_keys;
  for (int64_t id = 0;
       id < 4000 && (shard0_keys.size() < 400 || shard1_keys.size() < 50);
       ++id) {
    if (cluster_->ShardFor(doc::Value(id)) == 0) {
      if (shard0_keys.size() < 400) shard0_keys.push_back(id);
    } else if (shard1_keys.size() < 50) {
      shard1_keys.push_back(id);
    }
  }
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 3; ++i) {
      store::Collection& t = cluster_->shard(s).node(i).db().GetOrCreate("t");
      const auto& keys = s == 0 ? shard0_keys : shard1_keys;
      for (int64_t id : keys) {
        t.Insert(doc::Value::Doc({{"_id", id}, {"v", int64_t{0}}}));
      }
    }
  }

  // 40 closed-loop readers congest shard 0; shard 1 sees light reads plus
  // a steady writer (the writes make its staleness estimate climb once
  // replication stalls).
  auto rng = std::make_shared<sim::Rng>(11);
  bool shard1_used_secondary_while_gated = false;
  auto gated = std::make_shared<bool>(false);
  std::function<void()> hot_reader = [&, rng] {
    const int64_t key = shard0_keys[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(shard0_keys.size()) - 1))];
    cluster_->ReadDoc("t", doc::Value(key), server::OpClass::kPointRead,
                      [](const store::Database&) {},
                      [&](const driver::MongoClient::ReadResult&) {
                        hot_reader();
                      });
  };
  std::function<void()> cold_reader = [&, rng, gated] {
    const int64_t key = shard1_keys[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(shard1_keys.size()) - 1))];
    cluster_->ReadDoc(
        "t", doc::Value(key), server::OpClass::kPointRead,
        [](const store::Database&) {},
        [&, gated](const driver::MongoClient::ReadResult& r) {
          if (*gated && r.used_secondary) {
            shard1_used_secondary_while_gated = true;
          }
          loop_.ScheduleAfter(sim::Millis(50), [&] { cold_reader(); });
        });
  };
  std::function<void()> writer = [&, rng] {
    const int64_t key = shard1_keys[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(shard1_keys.size()) - 1))];
    doc::UpdateSpec spec;
    spec.Inc("v", doc::Value(int64_t{1}));
    cluster_->UpdateDoc("t", doc::Value(key), spec,
                        [&](const driver::MongoClient::WriteResult&) {
                          loop_.ScheduleAfter(sim::Millis(20),
                                              [&] { writer(); });
                        });
  };
  for (int w = 0; w < 40; ++w) hot_reader();
  cold_reader();
  writer();

  // Let shard 0's balancer ramp, then stall shard 1's replication.
  loop_.RunUntil(sim::Seconds(80));
  const double shard0_before = cluster_->shared_state(0).balance_fraction();
  EXPECT_GE(shard0_before, 0.4);
  const net::HostId primary1 = cluster_->shard(1).primary().host();
  const auto& hosts1 = cluster_->shard(1).command_bus()->server_hosts();
  for (net::HostId host : hosts1) {
    if (host != primary1) network_->BlockPair(primary1, host);
  }
  // ~15 s of stalled replication: estimate ≈ 15 s. Over the 10 s bound,
  // under 2×: shard 1 must gate, shard 0's effective bound shrinks but
  // stays positive.
  loop_.RunUntil(sim::Seconds(95));
  *gated = true;
  EXPECT_EQ(cluster_->shared_state(1).balance_fraction(), 0.0)
      << "stale shard must gate to the primary";
  EXPECT_GT(cluster_->budget().EffectiveBound(0), 0);
  EXPECT_LT(cluster_->budget().EffectiveBound(0), 10);
  EXPECT_GE(cluster_->shared_state(0).balance_fraction(), 0.4)
      << "healthy shard keeps balancing within its debited budget";
  loop_.RunUntil(sim::Seconds(100));

  // Heal. Replication catches up, the gate releases, the budget relaxes.
  *gated = false;
  for (net::HostId host : hosts1) {
    if (host != primary1) network_->UnblockPair(primary1, host);
  }
  loop_.RunUntil(sim::Seconds(140));
  EXPECT_FALSE(shard1_used_secondary_while_gated)
      << "no read may touch a stale secondary while the gate is closed";
  EXPECT_GT(cluster_->shared_state(1).balance_fraction(), 0.0);
  EXPECT_LE(cluster_->budget().WorstEstimate(), 10);
}

}  // namespace
}  // namespace dcg::shard
