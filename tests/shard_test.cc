// Tests for the sharded-cluster substrate: hash routing, data placement,
// scatter-gather, and per-shard Decongestant balancing.

#include <memory>

#include <gtest/gtest.h>

#include "shard/sharded_cluster.h"

namespace dcg::shard {
namespace {

class ShardTest : public ::testing::Test {
 protected:
  void Build(ShardedClusterConfig config = {}) {
    network_ = std::make_unique<net::Network>(&loop_, sim::Rng(1));
    client_host_ = network_->AddHost("client");
    cluster_ = std::make_unique<ShardedCluster>(&loop_, sim::Rng(2),
                                                network_.get(), client_host_,
                                                config);
  }

  sim::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  net::HostId client_host_ = 0;
  std::unique_ptr<ShardedCluster> cluster_;
};

TEST_F(ShardTest, ShardForIsDeterministicAndBalanced) {
  Build();
  int counts[2] = {0, 0};
  for (int64_t id = 0; id < 10'000; ++id) {
    const int s = cluster_->ShardFor(doc::Value(id));
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 2);
    ASSERT_EQ(s, cluster_->ShardFor(doc::Value(id)));  // stable
    ++counts[s];
  }
  EXPECT_NEAR(counts[0], 5000, 500);
  EXPECT_NEAR(counts[1], 5000, 500);
}

TEST_F(ShardTest, InsertsLandOnOwningShardOnly) {
  Build();
  cluster_->Start();
  for (int64_t id = 0; id < 100; ++id) {
    cluster_->InsertDoc("t", doc::Value::Doc({{"_id", id}, {"v", id}}),
                        nullptr);
  }
  loop_.RunUntil(sim::Seconds(3));
  size_t total = 0;
  for (int s = 0; s < 2; ++s) {
    const store::Collection* t = cluster_->shard(s).primary().db().Get("t");
    ASSERT_NE(t, nullptr);
    total += t->size();
    // Every document on this shard is actually owned by it.
    t->ForEach([&](const doc::Value& id, const store::DocPtr&) {
      EXPECT_EQ(cluster_->ShardFor(id), s);
      return true;
    });
    EXPECT_GT(t->size(), 20u);  // roughly balanced
  }
  EXPECT_EQ(total, 100u);
}

TEST_F(ShardTest, RoutedReadFindsDocumentWherever) {
  Build();
  cluster_->Start();
  for (int64_t id = 0; id < 50; ++id) {
    cluster_->InsertDoc("t", doc::Value::Doc({{"_id", id}, {"v", id * 2}}),
                        nullptr);
  }
  loop_.RunUntil(sim::Seconds(3));  // fully replicated

  int found = 0, completed = 0;
  for (int64_t id = 0; id < 50; ++id) {
    auto hit = std::make_shared<bool>(false);
    cluster_->ReadDoc(
        "t", doc::Value(id), server::OpClass::kPointRead,
        [id, hit](const store::Database& db) {
          const store::Collection* t = db.Get("t");
          *hit = t != nullptr && t->FindById(doc::Value(id)) != nullptr;
        },
        [&, hit](const driver::MongoClient::ReadResult&) {
          ++completed;
          if (*hit) ++found;
        });
  }
  loop_.RunUntil(sim::Seconds(4));
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(found, 50);
}

TEST_F(ShardTest, UpdatesRouteAndReplicate) {
  Build();
  cluster_->Start();
  cluster_->InsertDoc("t", doc::Value::Doc({{"_id", 42}, {"v", 0}}), nullptr);
  loop_.RunUntil(sim::Seconds(1));
  doc::UpdateSpec spec;
  spec.Inc("v", doc::Value(int64_t{7}));
  bool committed = false;
  cluster_->UpdateDoc("t", doc::Value(42), spec,
                      [&](const driver::MongoClient::WriteResult& r) {
                        committed = r.committed;
                      });
  loop_.RunUntil(sim::Seconds(3));
  EXPECT_TRUE(committed);
  const int s = cluster_->ShardFor(doc::Value(42));
  // Replicated to the owning shard's secondaries too.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster_->shard(s)
                  .node(i)
                  .db()
                  .Get("t")
                  ->FindById(doc::Value(42))
                  ->Find("v")
                  ->as_int64(),
              7);
  }
}

TEST_F(ShardTest, ScatterCountSumsAcrossShards) {
  Build();
  cluster_->Start();
  for (int64_t id = 0; id < 200; ++id) {
    cluster_->InsertDoc(
        "t", doc::Value::Doc({{"_id", id}, {"even", id % 2 == 0}}), nullptr);
  }
  loop_.RunUntil(sim::Seconds(3));

  size_t total = 0;
  sim::Duration latency = 0;
  cluster_->ScatterCount("t", doc::Filter::Eq("even", doc::Value(true)),
                         server::OpClass::kPointRead,
                         [&](size_t t, sim::Duration l) {
                           total = t;
                           latency = l;
                         });
  loop_.RunUntil(sim::Seconds(4));
  EXPECT_EQ(total, 100u);
  EXPECT_GT(latency, 0);
}

TEST_F(ShardTest, PerShardBalancersActIndependently) {
  // Congest only shard 0: its balancer ramps toward the cap while shard
  // 1's stays at the floor — the fine-grained, per-shard routing that a
  // single cluster-wide Read Preference cannot express.
  ShardedClusterConfig config;
  Build(config);
  cluster_->Start();

  // Keys owned by each shard, discovered via the router's own hash.
  std::vector<int64_t> shard0_keys, shard1_keys;
  for (int64_t id = 0; id < 2000 &&
                       (shard0_keys.size() < 400 || shard1_keys.size() < 10);
       ++id) {
    if (cluster_->ShardFor(doc::Value(id)) == 0) {
      if (shard0_keys.size() < 400) shard0_keys.push_back(id);
    } else if (shard1_keys.size() < 10) {
      shard1_keys.push_back(id);
    }
  }
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 3; ++i) {
      store::Collection& t = cluster_->shard(s).node(i).db().GetOrCreate("t");
      for (int64_t id : shard0_keys) {
        if (cluster_->ShardFor(doc::Value(id)) == s) {
          t.Insert(doc::Value::Doc({{"_id", id}}));
        }
      }
      for (int64_t id : shard1_keys) {
        if (cluster_->ShardFor(doc::Value(id)) == s) {
          t.Insert(doc::Value::Doc({{"_id", id}}));
        }
      }
    }
  }

  // 40 closed-loop readers hammer shard-0 keys; a single occasional
  // reader touches shard 1.
  auto rng = std::make_shared<sim::Rng>(7);
  std::function<void(int)> hot_reader = [&, rng](int worker) {
    const int64_t key = shard0_keys[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(shard0_keys.size()) - 1))];
    cluster_->ReadDoc("t", doc::Value(key), server::OpClass::kPointRead,
                      [](const store::Database&) {},
                      [&, worker](const driver::MongoClient::ReadResult&) {
                        hot_reader(worker);
                      });
  };
  std::function<void()> cold_reader = [&, rng] {
    const int64_t key = shard1_keys[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(shard1_keys.size()) - 1))];
    cluster_->ReadDoc("t", doc::Value(key), server::OpClass::kPointRead,
                      [](const store::Database&) {},
                      [&](const driver::MongoClient::ReadResult&) {
                        loop_.ScheduleAfter(sim::Millis(100),
                                            [&] { cold_reader(); });
                      });
  };
  for (int w = 0; w < 40; ++w) hot_reader(w);
  cold_reader();

  loop_.RunUntil(sim::Seconds(150));
  EXPECT_GE(cluster_->shared_state(0).balance_fraction(), 0.5)
      << "congested shard should shift reads to its secondaries";
  EXPECT_LE(cluster_->shared_state(1).balance_fraction(), 0.2)
      << "idle shard should stay near the fresh primary";
}

TEST_F(ShardTest, FixedPreferenceModeUsesNoBalancers) {
  ShardedClusterConfig config;
  config.run_balancers = false;
  config.fixed_pref = driver::ReadPreference::kSecondary;
  Build(config);
  cluster_->Start();
  EXPECT_EQ(cluster_->balancer(0), nullptr);
  cluster_->InsertDoc("t", doc::Value::Doc({{"_id", 1}}), nullptr);
  loop_.RunUntil(sim::Seconds(2));
  bool used_secondary = false;
  cluster_->ReadDoc("t", doc::Value(1), server::OpClass::kPointRead,
                    [](const store::Database&) {},
                    [&](const driver::MongoClient::ReadResult& r) {
                      used_secondary = r.used_secondary;
                    });
  loop_.RunUntil(sim::Seconds(3));
  EXPECT_TRUE(used_secondary);
}

}  // namespace
}  // namespace dcg::shard
