// Tests for multiple independent client systems (Figure 1's architecture:
// each client system hosts its own Read Balancer; nothing is shared
// between them except the database).

#include <memory>

#include <gtest/gtest.h>

#include "exp/client_system.h"

namespace dcg::exp {
namespace {

class MultiClientTest : public ::testing::Test {
 protected:
  void Build(int n_systems, const workload::YcsbConfig& ycsb_config,
             core::BalancerConfig balancer_config = {}) {
    rng_ = std::make_unique<sim::Rng>(5);
    network_ = std::make_unique<net::Network>(&loop_, rng_->Fork());
    std::vector<net::HostId> node_hosts;
    for (int i = 0; i < 3; ++i) {
      node_hosts.push_back(network_->AddHost("db" + std::to_string(i)));
    }
    std::vector<net::HostId> client_hosts;
    for (int c = 0; c < n_systems; ++c) {
      client_hosts.push_back(network_->AddHost("app" + std::to_string(c)));
      for (int i = 0; i < 3; ++i) {
        network_->SetLink(client_hosts[c], node_hosts[i],
                          sim::Millis(0.4 + 0.6 * i), sim::Micros(40));
      }
    }
    rs_ = std::make_unique<repl::ReplicaSet>(&loop_, rng_->Fork(),
                                             network_.get(),
                                             repl::ReplicaSetParams{},
                                             server::ServerParams{},
                                             node_hosts);
    for (int i = 0; i < 3; ++i) {
      workload::YcsbWorkload::Load(ycsb_config, &rs_->node(i).db());
    }
    rs_->Start();
    for (int c = 0; c < n_systems; ++c) {
      systems_.push_back(std::make_unique<ClientSystem>(
          &loop_, rng_->Fork(), network_.get(), rs_.get(), client_hosts[c],
          driver::ClientOptions{}, balancer_config, ycsb_config));
    }
  }

  sim::EventLoop loop_;
  std::unique_ptr<sim::Rng> rng_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<repl::ReplicaSet> rs_;
  std::vector<std::unique_ptr<ClientSystem>> systems_;
};

TEST_F(MultiClientTest, IndependentBalancersConvergeUnderSharedLoad) {
  Build(3, workload::YcsbConfig::WorkloadB());
  for (auto& system : systems_) system->Start(15);
  loop_.RunUntil(sim::Seconds(200));
  for (auto& system : systems_) {
    EXPECT_GE(system->state().balance_fraction(), 0.5);
    EXPECT_GT(system->reads(), 1000u);
  }
  const double spread =
      std::abs(systems_[0]->state().balance_fraction() -
               systems_[1]->state().balance_fraction()) +
      std::abs(systems_[1]->state().balance_fraction() -
               systems_[2]->state().balance_fraction());
  EXPECT_LE(spread, 0.4);
}

TEST_F(MultiClientTest, AsymmetricLoadStillBalances) {
  // One heavy system + one light system: the heavy one dominates the
  // signal, but both see the same congested primary and shift load.
  Build(2, workload::YcsbConfig::WorkloadB());
  systems_[0]->Start(35);
  systems_[1]->Start(5);
  loop_.RunUntil(sim::Seconds(200));
  EXPECT_GE(systems_[0]->state().balance_fraction(), 0.5);
  EXPECT_GE(systems_[1]->state().balance_fraction(), 0.4);
}

TEST_F(MultiClientTest, StalenessGateFiresOnEverySystemIndependently) {
  core::BalancerConfig balancer_config;
  balancer_config.stale_bound_seconds = 3;
  Build(2, workload::YcsbConfig::WorkloadA(), balancer_config);
  for (auto& system : systems_) system->Start(10);
  // Stall replication; both balancers must observe it via their own
  // serverStatus polls and zero their fractions.
  rs_->primary().server().AddDirtyBytes(100'000'000'000ULL);
  loop_.RunUntil(sim::Seconds(75));  // checkpoint at 60 s blocks shipping
  EXPECT_GT(rs_->MaxTrueStaleness(), sim::Seconds(3));
  for (auto& system : systems_) {
    EXPECT_TRUE(system->balancer().stale_blocked());
    EXPECT_DOUBLE_EQ(system->state().balance_fraction(), 0.0);
  }
}

TEST_F(MultiClientTest, SystemsKeepSeparateLatencyLists) {
  Build(2, workload::YcsbConfig::WorkloadB());
  systems_[0]->Start(5);
  // System 1 never starts: its shared lists must stay empty even while
  // system 0 runs — nothing is shared between client systems.
  loop_.RunUntil(sim::Seconds(30));
  EXPECT_GT(systems_[0]->reads(), 100u);
  EXPECT_EQ(systems_[1]->reads(), 0u);
  EXPECT_EQ(systems_[1]->state().pending_primary(), 0u);
  EXPECT_EQ(systems_[1]->state().pending_secondary(), 0u);
}

}  // namespace
}  // namespace dcg::exp
