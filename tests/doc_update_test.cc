// Tests for update operators ($set/$inc/$unset/$push/$max/$min).

#include <gtest/gtest.h>

#include "doc/update.h"

namespace dcg::doc {
namespace {

Value BaseDoc() {
  return Value::Doc({{"_id", 1}, {"n", 10}, {"s", "hello"}, {"d", 1.5}});
}

TEST(UpdateTest, SetOverwritesAndCreates) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Set("n", Value(int64_t{99})).Set("new_field", Value("x"));
  ASSERT_TRUE(spec.Apply(&d));
  EXPECT_EQ(d.Find("n")->as_int64(), 99);
  EXPECT_EQ(d.Find("new_field")->as_string(), "x");
}

TEST(UpdateTest, SetNestedPathCreatesIntermediates) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Set("a.b.c", Value(int64_t{5}));
  ASSERT_TRUE(spec.Apply(&d));
  EXPECT_EQ(d.FindPath("a.b.c")->as_int64(), 5);
}

TEST(UpdateTest, IncIntegers) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Inc("n", Value(int64_t{5})).Inc("n", Value(int64_t{-3}));
  ASSERT_TRUE(spec.Apply(&d));
  EXPECT_EQ(d.Find("n")->as_int64(), 12);
  EXPECT_TRUE(d.Find("n")->is_int64());  // stays integral
}

TEST(UpdateTest, IncMixedBecomesDouble) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Inc("n", Value(0.5));
  ASSERT_TRUE(spec.Apply(&d));
  EXPECT_DOUBLE_EQ(d.Find("n")->as_double(), 10.5);
}

TEST(UpdateTest, IncMissingFieldStartsFromValue) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Inc("counter", Value(int64_t{3}));
  ASSERT_TRUE(spec.Apply(&d));
  EXPECT_EQ(d.Find("counter")->as_int64(), 3);
}

TEST(UpdateTest, IncNonNumericFails) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Inc("s", Value(int64_t{1}));
  EXPECT_FALSE(spec.Apply(&d));
}

TEST(UpdateTest, UnsetRemovesField) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Unset("s").Unset("does_not_exist");
  ASSERT_TRUE(spec.Apply(&d));
  EXPECT_EQ(d.Find("s"), nullptr);
}

TEST(UpdateTest, PushAppendsAndCreatesArray) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Push("tags", Value("a")).Push("tags", Value("b"));
  ASSERT_TRUE(spec.Apply(&d));
  const Value* tags = d.Find("tags");
  ASSERT_NE(tags, nullptr);
  ASSERT_EQ(tags->as_array().size(), 2u);
  EXPECT_EQ(tags->as_array()[1].as_string(), "b");
}

TEST(UpdateTest, PushOntoNonArrayFails) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Push("n", Value(int64_t{1}));
  EXPECT_FALSE(spec.Apply(&d));
}

TEST(UpdateTest, MaxMin) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Max("n", Value(int64_t{5}))     // no change: 10 > 5
      .Max("n", Value(int64_t{20}))    // -> 20
      .Min("d", Value(0.5))            // -> 0.5
      .Min("d", Value(2.0))            // no change
      .Max("fresh", Value(int64_t{1}));  // created
  ASSERT_TRUE(spec.Apply(&d));
  EXPECT_EQ(d.Find("n")->as_int64(), 20);
  EXPECT_DOUBLE_EQ(d.Find("d")->as_double(), 0.5);
  EXPECT_EQ(d.Find("fresh")->as_int64(), 1);
}

TEST(UpdateTest, OpsApplyInOrder) {
  Value d = BaseDoc();
  UpdateSpec spec;
  spec.Set("n", Value(int64_t{1})).Inc("n", Value(int64_t{1}));
  ASSERT_TRUE(spec.Apply(&d));
  EXPECT_EQ(d.Find("n")->as_int64(), 2);
}

TEST(UpdateTest, ApplyToNonObjectFails) {
  Value v(int64_t{5});
  UpdateSpec spec;
  spec.Set("a", Value(int64_t{1}));
  EXPECT_FALSE(spec.Apply(&v));
}

TEST(UpdateTest, SerializationRoundTrip) {
  UpdateSpec spec;
  spec.Set("a.b", Value("x"))
      .Inc("n", Value(int64_t{3}))
      .Unset("gone")
      .Push("arr", Value(int64_t{7}))
      .Max("m", Value(2.5));
  const UpdateSpec round = UpdateSpec::FromValue(spec.ToValue());

  Value d1 = Value::Doc({{"n", 1}, {"gone", true}});
  Value d2 = d1;
  ASSERT_TRUE(spec.Apply(&d1));
  ASSERT_TRUE(round.Apply(&d2));
  EXPECT_EQ(d1, d2);
}

TEST(UpdateTest, ReplayDeterminism) {
  // Applying the same spec to equal documents yields equal documents —
  // the property oplog-based replication relies on.
  UpdateSpec spec;
  spec.Inc("n", Value(int64_t{5})).Set("s", Value("replayed"));
  Value primary = BaseDoc();
  Value secondary = BaseDoc();
  ASSERT_TRUE(spec.Apply(&primary));
  ASSERT_TRUE(spec.Apply(&secondary));
  EXPECT_EQ(primary, secondary);
  EXPECT_EQ(primary.ToJson(), secondary.ToJson());
}

TEST(UpdateTest, EmptySpecIsNoop) {
  Value d = BaseDoc();
  const Value before = d;
  UpdateSpec spec;
  EXPECT_TRUE(spec.empty());
  ASSERT_TRUE(spec.Apply(&d));
  EXPECT_EQ(d, before);
}

}  // namespace
}  // namespace dcg::doc
