// Tests for the discrete-event kernel and the deterministic RNG.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_loop.h"
#include "sim/random.h"
#include "sim/time.h"

namespace dcg::sim {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  loop.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  loop.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), Millis(30));
}

TEST(EventLoopTest, TiesBreakByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  loop.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  Time fired_at = -1;
  loop.ScheduleAt(Millis(10), [&] {
    loop.ScheduleAfter(Millis(5), [&] { fired_at = loop.Now(); });
  });
  loop.RunAll();
  EXPECT_EQ(fired_at, Millis(15));
}

TEST(EventLoopTest, PastSchedulingClampsToNow) {
  EventLoop loop;
  Time fired_at = -1;
  loop.ScheduleAt(Millis(10), [&] {
    loop.ScheduleAt(Millis(1), [&] { fired_at = loop.Now(); });
  });
  loop.RunAll();
  EXPECT_EQ(fired_at, Millis(10));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.ScheduleAt(Millis(10), [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // second cancel is a no-op
  loop.RunAll();
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, CancelUnknownIdReturnsFalse) {
  EventLoop loop;
  EXPECT_FALSE(loop.Cancel(12345));
}

TEST(EventLoopTest, RunUntilStopsAtHorizonInclusive) {
  EventLoop loop;
  int count = 0;
  loop.ScheduleAt(Millis(10), [&] { ++count; });
  loop.ScheduleAt(Millis(20), [&] { ++count; });
  loop.ScheduleAt(Millis(21), [&] { ++count; });
  EXPECT_EQ(loop.RunUntil(Millis(20)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.Now(), Millis(20));
  EXPECT_EQ(loop.RunUntil(Millis(25)), 1u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(loop.Now(), Millis(25));  // advances to horizon
}

TEST(EventLoopTest, PendingEventsTracksLiveEvents) {
  EventLoop loop;
  const EventId a = loop.ScheduleAt(Millis(1), [] {});
  loop.ScheduleAt(Millis(2), [] {});
  EXPECT_EQ(loop.PendingEvents(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.PendingEvents(), 1u);
  loop.RunAll();
  EXPECT_EQ(loop.PendingEvents(), 0u);
}

TEST(EventLoopTest, EventsScheduledDuringRunAreExecuted) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) loop.ScheduleAfter(Micros(1), recurse);
  };
  loop.ScheduleAfter(0, recurse);
  loop.RunAll();
  EXPECT_EQ(depth, 100);
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(Millis(1.5), 1'500'000);
  EXPECT_EQ(Seconds(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_EQ(FormatTime(Seconds(61) + Millis(250)), "01:01.250");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(7);
  Rng c1 = parent.Fork();
  Rng c2 = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.NextU64() == c2.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.UniformInt(5, 8);
    ASSERT_GE(v, 5);
    ASSERT_LE(v, 8);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NormalHasRequestedMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, LogNormalHasRequestedLinearMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.LogNormal(4.0, 0.3);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

}  // namespace
}  // namespace dcg::sim
