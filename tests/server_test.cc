// Tests for the node resource models: CpuQueue, ServiceModel, ServerNode
// (checkpoints, slowdowns, dirty-byte accounting) and the Network.

#include <vector>

#include <gtest/gtest.h>

#include "net/network.h"
#include "server/cpu_queue.h"
#include "server/server_node.h"
#include "server/service_model.h"

namespace dcg {
namespace {

using server::CpuQueue;
using server::OpClass;
using server::ServerNode;
using server::ServerParams;
using server::ServiceModel;

TEST(CpuQueueTest, SingleJobTakesServiceTime) {
  sim::EventLoop loop;
  CpuQueue cpu(&loop, 1);
  sim::Time done_at = -1;
  cpu.Submit(sim::Millis(10), [&] { done_at = loop.Now(); });
  loop.RunAll();
  EXPECT_EQ(done_at, sim::Millis(10));
}

TEST(CpuQueueTest, ParallelJobsUseAllCores) {
  sim::EventLoop loop;
  CpuQueue cpu(&loop, 4);
  std::vector<sim::Time> done;
  for (int i = 0; i < 4; ++i) {
    cpu.Submit(sim::Millis(10), [&] { done.push_back(loop.Now()); });
  }
  loop.RunAll();
  ASSERT_EQ(done.size(), 4u);
  for (sim::Time t : done) EXPECT_EQ(t, sim::Millis(10));
}

TEST(CpuQueueTest, ExcessJobsQueueFifo) {
  sim::EventLoop loop;
  CpuQueue cpu(&loop, 1);
  std::vector<int> order;
  std::vector<sim::Time> done;
  for (int i = 0; i < 3; ++i) {
    cpu.Submit(sim::Millis(10), [&, i] {
      order.push_back(i);
      done.push_back(loop.Now());
    });
  }
  EXPECT_EQ(cpu.queue_length(), 2u);
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(done[2], sim::Millis(30));  // serialized behind two 10 ms jobs
}

TEST(CpuQueueTest, QueueingDelayGrowsWithLoad) {
  // The core congestion signal: with 2 cores and 10 queued jobs, the last
  // job's sojourn time is ~5x a lone job's.
  sim::EventLoop loop;
  CpuQueue cpu(&loop, 2);
  sim::Time last_done = 0;
  for (int i = 0; i < 10; ++i) {
    cpu.Submit(sim::Millis(10), [&] { last_done = loop.Now(); });
  }
  loop.RunAll();
  EXPECT_EQ(last_done, sim::Millis(50));
}

TEST(CpuQueueTest, UtilizationWindow) {
  sim::EventLoop loop;
  CpuQueue cpu(&loop, 2);
  cpu.ResetUtilizationWindow();
  cpu.Submit(sim::Millis(10), [] {});
  loop.RunUntil(sim::Millis(20));
  // One core busy 10 ms of a 20 ms window over 2 cores = 25 %.
  EXPECT_NEAR(cpu.WindowUtilization(), 0.25, 0.01);
  cpu.ResetUtilizationWindow();
  loop.RunUntil(sim::Millis(40));
  EXPECT_NEAR(cpu.WindowUtilization(), 0.0, 0.01);
}

TEST(ServiceModelTest, MeansMatchConfiguration) {
  ServiceModel model;
  model.point_read = sim::Millis(2);
  EXPECT_EQ(model.Mean(OpClass::kPointRead), sim::Millis(2));
  EXPECT_EQ(model.Mean(OpClass::kTpccStockLevel), model.tpcc_stock_level);
}

TEST(ServiceModelTest, SampleIsDeterministicWithZeroSigma) {
  ServiceModel model;
  model.sigma = 0.0;
  sim::Rng rng(1);
  EXPECT_EQ(model.Sample(OpClass::kUpdate, &rng), model.update);
}

TEST(ServiceModelTest, SampleMeanApproximatesConfiguredMean) {
  ServiceModel model;
  sim::Rng rng(2);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(model.Sample(OpClass::kPointRead, &rng));
  }
  EXPECT_NEAR(sum / n, static_cast<double>(model.point_read),
              static_cast<double>(model.point_read) * 0.02);
}

TEST(ServiceModelTest, ReadOnlyClassification) {
  EXPECT_TRUE(IsReadOnly(OpClass::kPointRead));
  EXPECT_TRUE(IsReadOnly(OpClass::kTpccStockLevel));
  EXPECT_TRUE(IsReadOnly(OpClass::kTpccOrderStatus));
  EXPECT_FALSE(IsReadOnly(OpClass::kUpdate));
  EXPECT_FALSE(IsReadOnly(OpClass::kTpccNewOrder));
  EXPECT_FALSE(IsReadOnly(OpClass::kTpccDelivery));
}

ServerParams FastParams() {
  ServerParams p;
  p.service.sigma = 0.0;
  return p;
}

TEST(ServerNodeTest, ExecuteCountsOps) {
  sim::EventLoop loop;
  ServerNode node(&loop, sim::Rng(1), FastParams(), 0, "n");
  int completed = 0;
  node.Execute(OpClass::kPointRead, [&] { ++completed; });
  node.Execute(OpClass::kUpdate, [&] { ++completed; });
  loop.RunAll();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(node.ops_executed(OpClass::kPointRead), 1u);
  EXPECT_EQ(node.ops_executed(OpClass::kUpdate), 1u);
}

TEST(ServerNodeTest, ExecuteScaledStretchesService) {
  sim::EventLoop loop;
  ServerParams params = FastParams();
  ServerNode node(&loop, sim::Rng(1), params, 0, "n");
  sim::Time done_at = -1;
  node.ExecuteScaled(OpClass::kUpdate, 3.0, [&] { done_at = loop.Now(); });
  loop.RunAll();
  EXPECT_EQ(done_at, 3 * params.service.update);
}

TEST(ServerNodeTest, DirtyBytesAmplified) {
  sim::EventLoop loop;
  ServerParams params = FastParams();
  params.write_amplification = 4.0;
  ServerNode node(&loop, sim::Rng(1), params, 0, "n");
  node.AddDirtyBytes(100);
  EXPECT_EQ(node.dirty_bytes(), 400u);
}

TEST(ServerNodeTest, CheckpointFlushesDirtyDataAndSlowsService) {
  sim::EventLoop loop;
  ServerParams params = FastParams();
  params.checkpoint_interval = sim::Seconds(10);
  params.checkpoint_disk_bw = 1e6;  // 1 MB/s
  params.checkpoint_slowdown = 2.0;
  params.write_amplification = 1.0;
  ServerNode node(&loop, sim::Rng(1), params, 0, "n");
  node.Start();
  node.AddDirtyBytes(5'000'000);  // 5 MB -> 5 s checkpoint

  loop.RunUntil(sim::Seconds(11));
  EXPECT_TRUE(node.checkpointing());
  EXPECT_EQ(node.dirty_bytes(), 0u);
  EXPECT_EQ(node.checkpoint_duration(), sim::Seconds(5));

  // Service during the checkpoint is stretched by the slowdown.
  sim::Time start = loop.Now();
  sim::Time done_at = -1;
  node.Execute(OpClass::kPointRead, [&] { done_at = loop.Now(); });
  loop.RunUntil(sim::Seconds(14));
  EXPECT_EQ(done_at - start, 2 * params.service.point_read);

  loop.RunUntil(sim::Seconds(16));
  EXPECT_FALSE(node.checkpointing());
  EXPECT_EQ(node.checkpoints_completed(), 1u);
}

TEST(ServerNodeTest, CheckpointDurationIsCapped) {
  sim::EventLoop loop;
  ServerParams params = FastParams();
  params.checkpoint_interval = sim::Seconds(10);
  params.checkpoint_disk_bw = 1.0;  // absurdly slow disk
  params.checkpoint_max = sim::Seconds(30);
  ServerNode node(&loop, sim::Rng(1), params, 0, "n");
  node.Start();
  node.AddDirtyBytes(1'000'000);
  loop.RunUntil(sim::Seconds(10) + sim::Millis(1));
  EXPECT_EQ(node.checkpoint_duration(), sim::Seconds(30));
}

TEST(ServerNodeTest, NoCheckpointWithoutDirtyData) {
  sim::EventLoop loop;
  ServerParams params = FastParams();
  params.checkpoint_interval = sim::Seconds(10);
  ServerNode node(&loop, sim::Rng(1), params, 0, "n");
  node.Start();
  loop.RunUntil(sim::Seconds(35));
  EXPECT_EQ(node.checkpoints_completed(), 0u);
  EXPECT_FALSE(node.checkpointing());
}

TEST(NetworkTest, HostRegistration) {
  sim::EventLoop loop;
  net::Network network(&loop, sim::Rng(1));
  const net::HostId a = network.AddHost("a");
  const net::HostId b = network.AddHost("b");
  EXPECT_EQ(network.host_count(), 2);
  EXPECT_EQ(network.HostName(a), "a");
  EXPECT_EQ(network.HostName(b), "b");
}

TEST(NetworkTest, LinkRttIsSymmetricConfigured) {
  sim::EventLoop loop;
  net::Network network(&loop, sim::Rng(1));
  const net::HostId a = network.AddHost("a");
  const net::HostId b = network.AddHost("b");
  network.SetLink(a, b, sim::Millis(2), 0);
  EXPECT_EQ(network.BaseRtt(a, b), sim::Millis(2));
  EXPECT_EQ(network.BaseRtt(b, a), sim::Millis(2));
}

TEST(NetworkTest, SendDeliversAfterOneWayDelay) {
  sim::EventLoop loop;
  net::Network network(&loop, sim::Rng(1));
  const net::HostId a = network.AddHost("a");
  const net::HostId b = network.AddHost("b");
  network.SetLink(a, b, sim::Millis(2), 0);  // no jitter
  sim::Time delivered = -1;
  network.Send(a, b, [&] { delivered = loop.Now(); });
  loop.RunAll();
  EXPECT_EQ(delivered, sim::Millis(1));  // RTT/2
}

TEST(NetworkTest, LoopbackIsInstant) {
  sim::EventLoop loop;
  net::Network network(&loop, sim::Rng(1));
  const net::HostId a = network.AddHost("a");
  EXPECT_EQ(network.SampleOneWay(a, a), 0);
}

TEST(NetworkTest, PingMeasuresRoundTrip) {
  sim::EventLoop loop;
  net::Network network(&loop, sim::Rng(1));
  const net::HostId a = network.AddHost("a");
  const net::HostId b = network.AddHost("b");
  network.SetLink(a, b, sim::Millis(3), 0);
  sim::Duration rtt = -1;
  network.Ping(a, b, [&](sim::Duration r) { rtt = r; });
  loop.RunAll();
  EXPECT_EQ(rtt, sim::Millis(3));
  EXPECT_EQ(loop.Now(), sim::Millis(3));
}

TEST(NetworkTest, JitterAddsPositiveDelay) {
  sim::EventLoop loop;
  net::Network network(&loop, sim::Rng(1));
  const net::HostId a = network.AddHost("a");
  const net::HostId b = network.AddHost("b");
  network.SetLink(a, b, sim::Millis(2), sim::Micros(100));
  double total = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const sim::Duration d = network.SampleOneWay(a, b);
    ASSERT_GE(d, sim::Millis(1));  // never below base/2
    total += static_cast<double>(d);
  }
  // Mean one-way = base/2 + jitter_mean.
  EXPECT_NEAR(total / n, static_cast<double>(sim::Millis(1.1)),
              static_cast<double>(sim::Micros(10)));
}

}  // namespace
}  // namespace dcg
