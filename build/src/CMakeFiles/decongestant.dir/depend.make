# Empty dependencies file for decongestant.
# This may be replaced when dependencies are built.
