file(REMOVE_RECURSE
  "libdecongestant.a"
)
