
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cc" "src/CMakeFiles/decongestant.dir/core/controller.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/core/controller.cc.o.d"
  "/root/repo/src/core/read_balancer.cc" "src/CMakeFiles/decongestant.dir/core/read_balancer.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/core/read_balancer.cc.o.d"
  "/root/repo/src/core/shared_state.cc" "src/CMakeFiles/decongestant.dir/core/shared_state.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/core/shared_state.cc.o.d"
  "/root/repo/src/doc/filter.cc" "src/CMakeFiles/decongestant.dir/doc/filter.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/doc/filter.cc.o.d"
  "/root/repo/src/doc/update.cc" "src/CMakeFiles/decongestant.dir/doc/update.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/doc/update.cc.o.d"
  "/root/repo/src/doc/value.cc" "src/CMakeFiles/decongestant.dir/doc/value.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/doc/value.cc.o.d"
  "/root/repo/src/driver/client.cc" "src/CMakeFiles/decongestant.dir/driver/client.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/driver/client.cc.o.d"
  "/root/repo/src/driver/read_preference.cc" "src/CMakeFiles/decongestant.dir/driver/read_preference.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/driver/read_preference.cc.o.d"
  "/root/repo/src/driver/session.cc" "src/CMakeFiles/decongestant.dir/driver/session.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/driver/session.cc.o.d"
  "/root/repo/src/exp/client_pool.cc" "src/CMakeFiles/decongestant.dir/exp/client_pool.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/exp/client_pool.cc.o.d"
  "/root/repo/src/exp/client_system.cc" "src/CMakeFiles/decongestant.dir/exp/client_system.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/exp/client_system.cc.o.d"
  "/root/repo/src/exp/csv_export.cc" "src/CMakeFiles/decongestant.dir/exp/csv_export.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/exp/csv_export.cc.o.d"
  "/root/repo/src/exp/experiment.cc" "src/CMakeFiles/decongestant.dir/exp/experiment.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/exp/experiment.cc.o.d"
  "/root/repo/src/metrics/histogram.cc" "src/CMakeFiles/decongestant.dir/metrics/histogram.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/metrics/histogram.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/decongestant.dir/net/network.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/net/network.cc.o.d"
  "/root/repo/src/repl/oplog.cc" "src/CMakeFiles/decongestant.dir/repl/oplog.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/repl/oplog.cc.o.d"
  "/root/repo/src/repl/replica_node.cc" "src/CMakeFiles/decongestant.dir/repl/replica_node.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/repl/replica_node.cc.o.d"
  "/root/repo/src/repl/replica_set.cc" "src/CMakeFiles/decongestant.dir/repl/replica_set.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/repl/replica_set.cc.o.d"
  "/root/repo/src/repl/txn.cc" "src/CMakeFiles/decongestant.dir/repl/txn.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/repl/txn.cc.o.d"
  "/root/repo/src/server/cpu_queue.cc" "src/CMakeFiles/decongestant.dir/server/cpu_queue.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/server/cpu_queue.cc.o.d"
  "/root/repo/src/server/server_node.cc" "src/CMakeFiles/decongestant.dir/server/server_node.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/server/server_node.cc.o.d"
  "/root/repo/src/server/service_model.cc" "src/CMakeFiles/decongestant.dir/server/service_model.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/server/service_model.cc.o.d"
  "/root/repo/src/shard/sharded_cluster.cc" "src/CMakeFiles/decongestant.dir/shard/sharded_cluster.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/shard/sharded_cluster.cc.o.d"
  "/root/repo/src/sim/event_loop.cc" "src/CMakeFiles/decongestant.dir/sim/event_loop.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/sim/event_loop.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/decongestant.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/time.cc" "src/CMakeFiles/decongestant.dir/sim/time.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/sim/time.cc.o.d"
  "/root/repo/src/store/btree.cc" "src/CMakeFiles/decongestant.dir/store/btree.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/store/btree.cc.o.d"
  "/root/repo/src/store/collection.cc" "src/CMakeFiles/decongestant.dir/store/collection.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/store/collection.cc.o.d"
  "/root/repo/src/store/database.cc" "src/CMakeFiles/decongestant.dir/store/database.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/store/database.cc.o.d"
  "/root/repo/src/workload/key_chooser.cc" "src/CMakeFiles/decongestant.dir/workload/key_chooser.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/workload/key_chooser.cc.o.d"
  "/root/repo/src/workload/s_workload.cc" "src/CMakeFiles/decongestant.dir/workload/s_workload.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/workload/s_workload.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/CMakeFiles/decongestant.dir/workload/tpcc.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/workload/tpcc.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/decongestant.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/decongestant.dir/workload/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
