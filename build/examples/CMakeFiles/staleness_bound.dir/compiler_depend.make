# Empty compiler generated dependencies file for staleness_bound.
# This may be replaced when dependencies are built.
