file(REMOVE_RECURSE
  "CMakeFiles/staleness_bound.dir/staleness_bound.cpp.o"
  "CMakeFiles/staleness_bound.dir/staleness_bound.cpp.o.d"
  "staleness_bound"
  "staleness_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleness_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
