# Empty dependencies file for bench_abl_downward_probe.
# This may be replaced when dependencies are built.
