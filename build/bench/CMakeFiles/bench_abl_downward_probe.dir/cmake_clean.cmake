file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_downward_probe.dir/bench_abl_downward_probe.cc.o"
  "CMakeFiles/bench_abl_downward_probe.dir/bench_abl_downward_probe.cc.o.d"
  "bench_abl_downward_probe"
  "bench_abl_downward_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_downward_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
