# Empty dependencies file for bench_fig6_tradeoff_ycsb.
# This may be replaced when dependencies are built.
