file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_tradeoff_ycsb.dir/bench_fig6_tradeoff_ycsb.cc.o"
  "CMakeFiles/bench_fig6_tradeoff_ycsb.dir/bench_fig6_tradeoff_ycsb.cc.o.d"
  "bench_fig6_tradeoff_ycsb"
  "bench_fig6_tradeoff_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_tradeoff_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
