file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_tpcc_burst.dir/bench_fig4_tpcc_burst.cc.o"
  "CMakeFiles/bench_fig4_tpcc_burst.dir/bench_fig4_tpcc_burst.cc.o.d"
  "bench_fig4_tpcc_burst"
  "bench_fig4_tpcc_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tpcc_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
