# Empty compiler generated dependencies file for bench_fig4_tpcc_burst.
# This may be replaced when dependencies are built.
