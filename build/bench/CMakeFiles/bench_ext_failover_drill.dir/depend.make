# Empty dependencies file for bench_ext_failover_drill.
# This may be replaced when dependencies are built.
