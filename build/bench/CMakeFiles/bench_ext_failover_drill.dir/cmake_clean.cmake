file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_failover_drill.dir/bench_ext_failover_drill.cc.o"
  "CMakeFiles/bench_ext_failover_drill.dir/bench_ext_failover_drill.cc.o.d"
  "bench_ext_failover_drill"
  "bench_ext_failover_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_failover_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
