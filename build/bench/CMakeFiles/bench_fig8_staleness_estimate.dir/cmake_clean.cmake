file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_staleness_estimate.dir/bench_fig8_staleness_estimate.cc.o"
  "CMakeFiles/bench_fig8_staleness_estimate.dir/bench_fig8_staleness_estimate.cc.o.d"
  "bench_fig8_staleness_estimate"
  "bench_fig8_staleness_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_staleness_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
