# Empty compiler generated dependencies file for bench_fig8_staleness_estimate.
# This may be replaced when dependencies are built.
