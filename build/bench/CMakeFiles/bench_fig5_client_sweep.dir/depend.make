# Empty dependencies file for bench_fig5_client_sweep.
# This may be replaced when dependencies are built.
