# Empty dependencies file for bench_fig10_bound3s.
# This may be replaced when dependencies are built.
