file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_bound3s.dir/bench_fig10_bound3s.cc.o"
  "CMakeFiles/bench_fig10_bound3s.dir/bench_fig10_bound3s.cc.o.d"
  "bench_fig10_bound3s"
  "bench_fig10_bound3s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bound3s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
