file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_deadband.dir/bench_abl_deadband.cc.o"
  "CMakeFiles/bench_abl_deadband.dir/bench_abl_deadband.cc.o.d"
  "bench_abl_deadband"
  "bench_abl_deadband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_deadband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
