# Empty compiler generated dependencies file for bench_abl_deadband.
# This may be replaced when dependencies are built.
