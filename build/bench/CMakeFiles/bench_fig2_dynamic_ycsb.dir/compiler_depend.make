# Empty compiler generated dependencies file for bench_fig2_dynamic_ycsb.
# This may be replaced when dependencies are built.
