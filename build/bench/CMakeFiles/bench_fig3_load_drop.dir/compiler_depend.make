# Empty compiler generated dependencies file for bench_fig3_load_drop.
# This may be replaced when dependencies are built.
