file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_load_drop.dir/bench_fig3_load_drop.cc.o"
  "CMakeFiles/bench_fig3_load_drop.dir/bench_fig3_load_drop.cc.o.d"
  "bench_fig3_load_drop"
  "bench_fig3_load_drop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_load_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
