# Empty dependencies file for bench_fig7_tradeoff_tpcc.
# This may be replaced when dependencies are built.
