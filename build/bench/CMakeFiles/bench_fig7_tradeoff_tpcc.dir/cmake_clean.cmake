file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tradeoff_tpcc.dir/bench_fig7_tradeoff_tpcc.cc.o"
  "CMakeFiles/bench_fig7_tradeoff_tpcc.dir/bench_fig7_tradeoff_tpcc.cc.o.d"
  "bench_fig7_tradeoff_tpcc"
  "bench_fig7_tradeoff_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tradeoff_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
