# Empty compiler generated dependencies file for bench_fig11_sworkload_impact.
# This may be replaced when dependencies are built.
