file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_sworkload_impact.dir/bench_fig11_sworkload_impact.cc.o"
  "CMakeFiles/bench_fig11_sworkload_impact.dir/bench_fig11_sworkload_impact.cc.o.d"
  "bench_fig11_sworkload_impact"
  "bench_fig11_sworkload_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sworkload_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
