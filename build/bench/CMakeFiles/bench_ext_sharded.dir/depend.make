# Empty dependencies file for bench_ext_sharded.
# This may be replaced when dependencies are built.
