file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sharded.dir/bench_ext_sharded.cc.o"
  "CMakeFiles/bench_ext_sharded.dir/bench_ext_sharded.cc.o.d"
  "bench_ext_sharded"
  "bench_ext_sharded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sharded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
