# Empty dependencies file for bench_abl_rtt_subtraction.
# This may be replaced when dependencies are built.
