file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_rtt_subtraction.dir/bench_abl_rtt_subtraction.cc.o"
  "CMakeFiles/bench_abl_rtt_subtraction.dir/bench_abl_rtt_subtraction.cc.o.d"
  "bench_abl_rtt_subtraction"
  "bench_abl_rtt_subtraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_rtt_subtraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
