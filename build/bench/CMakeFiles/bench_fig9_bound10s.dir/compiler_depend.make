# Empty compiler generated dependencies file for bench_fig9_bound10s.
# This may be replaced when dependencies are built.
