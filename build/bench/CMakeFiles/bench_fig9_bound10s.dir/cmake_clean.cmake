file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_bound10s.dir/bench_fig9_bound10s.cc.o"
  "CMakeFiles/bench_fig9_bound10s.dir/bench_fig9_bound10s.cc.o.d"
  "bench_fig9_bound10s"
  "bench_fig9_bound10s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_bound10s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
