file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_maxstaleness.dir/bench_abl_maxstaleness.cc.o"
  "CMakeFiles/bench_abl_maxstaleness.dir/bench_abl_maxstaleness.cc.o.d"
  "bench_abl_maxstaleness"
  "bench_abl_maxstaleness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_maxstaleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
