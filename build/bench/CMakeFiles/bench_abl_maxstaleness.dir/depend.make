# Empty dependencies file for bench_abl_maxstaleness.
# This may be replaced when dependencies are built.
