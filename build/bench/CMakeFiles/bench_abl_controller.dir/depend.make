# Empty dependencies file for bench_abl_controller.
# This may be replaced when dependencies are built.
