file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_controller.dir/bench_abl_controller.cc.o"
  "CMakeFiles/bench_abl_controller.dir/bench_abl_controller.cc.o.d"
  "bench_abl_controller"
  "bench_abl_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
