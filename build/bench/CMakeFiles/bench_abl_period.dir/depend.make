# Empty dependencies file for bench_abl_period.
# This may be replaced when dependencies are built.
