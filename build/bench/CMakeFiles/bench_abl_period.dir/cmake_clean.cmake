file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_period.dir/bench_abl_period.cc.o"
  "CMakeFiles/bench_abl_period.dir/bench_abl_period.cc.o.d"
  "bench_abl_period"
  "bench_abl_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
