file(REMOVE_RECURSE
  "CMakeFiles/multiclient_test.dir/multiclient_test.cc.o"
  "CMakeFiles/multiclient_test.dir/multiclient_test.cc.o.d"
  "multiclient_test"
  "multiclient_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiclient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
