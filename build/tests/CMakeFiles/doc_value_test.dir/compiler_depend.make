# Empty compiler generated dependencies file for doc_value_test.
# This may be replaced when dependencies are built.
