file(REMOVE_RECURSE
  "CMakeFiles/doc_value_test.dir/doc_value_test.cc.o"
  "CMakeFiles/doc_value_test.dir/doc_value_test.cc.o.d"
  "doc_value_test"
  "doc_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
