file(REMOVE_RECURSE
  "CMakeFiles/doc_filter_test.dir/doc_filter_test.cc.o"
  "CMakeFiles/doc_filter_test.dir/doc_filter_test.cc.o.d"
  "doc_filter_test"
  "doc_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
