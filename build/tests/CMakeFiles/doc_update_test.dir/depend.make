# Empty dependencies file for doc_update_test.
# This may be replaced when dependencies are built.
