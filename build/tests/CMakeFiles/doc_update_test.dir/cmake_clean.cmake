file(REMOVE_RECURSE
  "CMakeFiles/doc_update_test.dir/doc_update_test.cc.o"
  "CMakeFiles/doc_update_test.dir/doc_update_test.cc.o.d"
  "doc_update_test"
  "doc_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
