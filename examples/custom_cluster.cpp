// Low-level API example: wiring the whole stack by hand — event loop,
// network topology, replica set, driver, shared state, Read Balancer, and
// an application loop — without the Experiment harness. This is the
// surface a downstream user integrating Decongestant into their own
// simulation (or adapting it to a real driver) would touch.
//
//   ./build/examples/custom_cluster

#include <cstdio>
#include <memory>

#include "core/read_balancer.h"
#include "core/routing_policy.h"
#include "driver/client.h"
#include "net/network.h"
#include "repl/replica_set.h"

int main() {
  using namespace dcg;

  sim::EventLoop loop;
  sim::Rng rng(2026);

  // --- Topology: a client host and three DB nodes in distinct AZs. ---
  net::Network network(&loop, rng.Fork());
  const net::HostId app = network.AddHost("app-server");
  const net::HostId n0 = network.AddHost("db-az-a");
  const net::HostId n1 = network.AddHost("db-az-b");
  const net::HostId n2 = network.AddHost("db-az-c");
  network.SetLink(app, n0, sim::Millis(0.4), sim::Micros(40));
  network.SetLink(app, n1, sim::Millis(1.1), sim::Micros(40));
  network.SetLink(app, n2, sim::Millis(1.5), sim::Micros(40));
  for (auto [a, b] : {std::pair{n0, n1}, {n0, n2}, {n1, n2}}) {
    network.SetLink(a, b, sim::Millis(1.0), sim::Micros(40));
  }

  // --- Replica set: primary on n0, secondaries on n1/n2. ---
  repl::ReplicaSetParams repl_params;
  server::ServerParams node_params;  // 8 cores, default service model
  repl::ReplicaSet rs(&loop, rng.Fork(), &network, repl_params, node_params,
                      {n0, n1, n2});

  // Seed some data on every node (pre-replicated snapshot).
  for (int i = 0; i < 3; ++i) {
    store::Collection& users = rs.node(i).db().GetOrCreate("users");
    for (int64_t id = 0; id < 1000; ++id) {
      users.Insert(doc::Value::Doc({{"_id", id}, {"clicks", 0}}));
    }
  }

  // --- Driver + Decongestant. ---
  // The driver talks to the replica set purely through its command bus
  // (typed find/insert/hello messages over the network) and learns the
  // topology from hello replies — it never touches ReplicaSet internals.
  driver::MongoClient client(&loop, rng.Fork(), rs.command_bus(), app,
                             driver::ClientOptions{});
  core::BalancerConfig balancer_config;
  balancer_config.stale_bound_seconds = 5;
  core::SharedState shared(balancer_config.low_bal);
  core::DecongestantPolicy policy(&shared);
  core::ReadBalancer balancer(&client, &shared, balancer_config, rng.Fork());

  balancer.SetPeriodCallback([](const core::ReadBalancer::PeriodStats& s) {
    std::printf("[balancer] t=%4.0fs ratio=%5.2f -> fraction %.2f%s\n",
                sim::ToSeconds(s.at), s.ratio, s.published_fraction,
                s.published_fraction == 0 ? " (stale-blocked)" : "");
  });

  rs.Start();
  client.Start();
  balancer.Start();

  // --- The application: 30 closed-loop workers, 90 % reads. ---
  struct Stats {
    uint64_t reads = 0, secondary_reads = 0, writes = 0;
  };
  auto stats = std::make_shared<Stats>();
  auto worker_rng = std::make_shared<sim::Rng>(rng.Fork());
  auto stopped = std::make_shared<bool>(false);

  std::function<void(int)> run_worker = [&](int id) {
    if (*stopped) return;
    if (worker_rng->Bernoulli(0.9)) {
      const driver::ReadPreference pref =
          policy.ChooseReadPreference(worker_rng.get());
      const int64_t key = worker_rng->UniformInt(0, 999);
      client.Read(
          pref, server::OpClass::kPointRead,
          [key](const store::Database& db) {
            (void)db.Get("users")->FindById(doc::Value(key));
          },
          [&, id](const driver::MongoClient::ReadResult& r) {
            // Latency feedback reaches the balancer through the driver's
            // unified completion path — no manual OnReadCompleted needed.
            ++stats->reads;
            if (r.used_secondary) ++stats->secondary_reads;
            run_worker(id);
          });
    } else {
      const int64_t key = worker_rng->UniformInt(0, 999);
      client.Write(
          server::OpClass::kUpdate,
          [key](repl::TxnContext* txn) {
            doc::UpdateSpec spec;
            spec.Inc("clicks", doc::Value(int64_t{1}));
            txn->Update("users", doc::Value(key), spec);
          },
          [&, id](const driver::MongoClient::WriteResult&) {
            ++stats->writes;
            run_worker(id);
          });
    }
  };
  for (int id = 0; id < 30; ++id) run_worker(id);

  loop.ScheduleAt(sim::Seconds(120), [stopped] { *stopped = true; });
  loop.RunUntil(sim::Seconds(120));

  std::printf("\nafter 120 simulated seconds:\n");
  std::printf("  reads: %llu (%.1f%% on secondaries), writes: %llu\n",
              static_cast<unsigned long long>(stats->reads),
              100.0 * static_cast<double>(stats->secondary_reads) /
                  static_cast<double>(stats->reads),
              static_cast<unsigned long long>(stats->writes));
  std::printf("  replication: oplog seq %llu, max true staleness %.3f s\n",
              static_cast<unsigned long long>(rs.oplog().last_seq()),
              sim::ToSeconds(rs.MaxTrueStaleness()));
  std::printf("  primary and secondary data identical after drain: %s\n",
              [&] {
                // Let replication drain, then compare fingerprints.
                loop.RunUntil(sim::Seconds(125));
                return rs.node(0).db().Fingerprint() ==
                               rs.node(1).db().Fingerprint() &&
                           rs.node(0).db().Fingerprint() ==
                               rs.node(2).db().Fingerprint()
                           ? "yes"
                           : "no";
              }());
  return 0;
}
