// Quickstart: run Decongestant against a 3-node replica set under YCSB-A
// and watch the Balance Fraction adapt.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "exp/experiment.h"

int main() {
  using namespace dcg;

  exp::ExperimentConfig config;
  config.seed = 7;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kYcsb;
  config.ycsb = workload::YcsbConfig::WorkloadA();
  config.phases = {{.at = 0, .clients = 120, .ycsb_read_proportion = 0.5}};
  config.duration = sim::Seconds(180);
  config.warmup = sim::Seconds(60);

  exp::Experiment experiment(config);

  std::printf("Running YCSB-A, 120 clients, Decongestant, %0.0f s...\n",
              sim::ToSeconds(config.duration));
  experiment.Run();

  std::printf("\n%8s %10s %10s %8s %9s %7s\n", "time", "reads/s", "p80(ms)",
              "sec(%)", "fraction", "stale");
  for (const auto& row : experiment.rows()) {
    std::printf("%8s %10.0f %10.2f %8.1f %9.2f %6llds\n",
                sim::FormatTime(row.start).c_str(), row.ReadThroughput(),
                row.P80ReadLatencyMs(), row.SecondaryPercent(),
                row.balance_fraction,
                static_cast<long long>(row.est_staleness_max_s));
  }

  const exp::Summary summary = experiment.Summarize();
  std::printf(
      "\nSummary (after warm-up): %.0f reads/s, P80 %.2f ms, "
      "%.1f%% served by secondaries, P80 staleness %.2f s\n",
      summary.read_throughput, summary.p80_read_latency_ms,
      summary.secondary_percent, summary.p80_staleness_s);
  return 0;
}
