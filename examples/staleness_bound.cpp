// Freshness-requirement example: a TPC-C-like application tells
// Decongestant its staleness budget (3 seconds here — far below
// MongoDB's maxStalenessSeconds minimum of 90). The run prints what the
// monitoring S workload actually observed, proving the promise held even
// though the raw replication lag repeatedly blew past the budget.
//
//   ./build/examples/staleness_bound

#include <algorithm>
#include <cstdio>

#include "exp/experiment.h"

int main() {
  using namespace dcg;

  constexpr int64_t kBudgetSeconds = 3;

  exp::ExperimentConfig config;
  config.seed = 77;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kTpcc;
  config.phases = {{.at = 0, .clients = 40, .ycsb_read_proportion = 0.5}};
  config.duration = sim::Seconds(360);
  config.warmup = sim::Seconds(60);
  config.balancer.stale_bound_seconds = kBudgetSeconds;
  // A slow checkpoint disk makes replication stall periodically — the
  // hostile regime for a tight freshness budget.
  config.server.checkpoint_disk_bw = 2.0e6;

  std::printf("read-write TPC-C, 40 clients, staleness budget %lld s...\n",
              static_cast<long long>(kBudgetSeconds));

  exp::Experiment experiment(config);
  experiment.Run();

  // Per-10s digest: raw replication lag vs what clients saw.
  std::printf("\n%8s %14s %16s %10s\n", "time", "raw max lag(s)",
              "client-seen(s)", "fraction");
  size_t s_idx = 0;
  double worst_seen = 0, worst_raw = 0;
  for (const auto& row : experiment.rows()) {
    double raw = 0;
    for (const auto& point : experiment.staleness_series()) {
      if (point.at >= row.start && point.at < row.end) {
        raw = std::max(raw, point.true_max_s);
      }
    }
    double seen = 0;
    while (s_idx < experiment.s_samples().size() &&
           experiment.s_samples()[s_idx].first < row.end) {
      seen = std::max(seen, experiment.s_samples()[s_idx].second);
      ++s_idx;
    }
    worst_seen = std::max(worst_seen, seen);
    worst_raw = std::max(worst_raw, raw);
    std::printf("%8s %14.1f %16.2f %10.2f\n",
                sim::FormatTime(row.start).c_str(), raw, seen,
                row.balance_fraction);
  }

  std::printf(
      "\nworst raw replication lag: %.1f s — worst staleness any client "
      "observed: %.2f s\n",
      worst_raw, worst_seen);
  std::printf(
      "gate fired %llu times; the budget held within the 1 s reporting "
      "granularity: %s\n",
      static_cast<unsigned long long>(
          experiment.balancer()->stale_zero_events()),
      worst_seen <= static_cast<double>(kBudgetSeconds) + 1.5 ? "yes" : "NO");
  return 0;
}
