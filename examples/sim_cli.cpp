// Command-line experiment runner: compose your own run without writing
// C++. Prints the paper-style per-period series and a summary; optionally
// exports CSVs for plotting.
//
// Usage:
//   sim_cli [--workload=ycsb-a|ycsb-b|tpcc] [--system=decongestant|
//           primary|secondary] [--scenario=fig2|fig3|fig9] [--clients=N]
//           [--duration=SECONDS] [--warmup=SECONDS] [--seed=N]
//           [--stale-bound=SECONDS]
//           [--controller=decongestant|proportional|cpq|aoi|pid]
//           [--no-s-workload]
//           [--kill-primary-at=SECONDS] [--faults=SPEC] [--chaos-seed=N]
//           [--hedged-reads] [--op-deadline=MS] [--max-pool-size=N]
//           [--wait-queue-timeout=MS] [--batch-max-ops=N]
//           [--batch-max-delay-us=US] [--csv-prefix=PATH] [--quiet]
//           [--trace-out=PATH] [--trace-max-spans=N] [--metrics-out=PATH]
//           [--metrics-format=json|openmetrics] [--slo=SPEC]
//           [--report-out=PATH]
//           [--explain-balancer] [--shards=N] [--shard-key=hashed|ranged]
//
// --scenario loads a paper-figure preset (workload, phase schedule, seed,
//   duration) so the bake-off and CI can invoke figures by name:
//     fig2  YCSB-A -> YCSB-B read-ratio jump (45 clients, switch at 69 %
//           of the run, summary over the post-switch phase)
//     fig3  load drop: YCSB-B 45 clients -> YCSB-A 5 clients at 33 %
//     fig9  TPC-C with StaleBound 10 s (checkpoint-stall sawtooth)
//   Later flags override preset values; phase-switch and warmup times
//   scale with the final --duration, so short CI runs keep the shape.
// --controller picks the Balance Fraction strategy (the controller
//   bake-off): "decongestant" is the paper's Algorithm 1 step law
//   (default, alias "step"), "proportional" its §6 sketch, "cpq" a
//   Continuous-Partial-Quorums-style SLA-feedback router, "aoi" the
//   age-of-information-capped law, "pid" a PID on the latency ratio.
//   Every strategy ticks through the same decision log, so
//   --explain-balancer explains all of them.
//
// --faults takes a semicolon-separated fault timeline (times in seconds):
//   type@start[-end][:key=value]*   with type one of latency | loss |
//   partition | crash | restart | throttle | skew | slowdown, and keys
//   nodes=1+2, x=FLOAT, p=FLOAT, ms=FLOAT, in=1, client=1 (see
//   fault_injector.h).
// --chaos-seed generates a random fault timeline over the run instead.
// --hedged-reads mirrors eligible secondary reads to a second node after
//   a P90 delay; --op-deadline gives every operation a client-enforced
//   deadline in milliseconds (maxTimeMS).
// --max-pool-size caps the per-node connection pool (0 = unlimited, the
//   default — checkouts never queue); --wait-queue-timeout bounds how long
//   a checkout may wait for a free connection, in milliseconds (0 = wait
//   forever). A constrained pool surfaces checkout queueing in client
//   latency, which the Read Balancer then sheds to secondaries.
// --batch-max-ops enables driver-side command batching: same-node
//   attempts coalesce into one envelope of up to N commands, flushed
//   after --batch-max-delay-us microseconds (default 200) if the batch
//   does not fill first. The server charges one envelope base cost plus
//   a discounted per-op increment, raising the throughput ceiling at
//   high client counts (Fig. 5). Off unless --batch-max-ops is given.
// --trace-out enables per-op span tracing and writes a Chrome trace-event
//   JSON (load it at https://ui.perfetto.dev) decomposing every op into
//   checkout / wire / server / parking / commit-wait spans;
//   --trace-max-spans caps the buffer (default 1M spans).
// --metrics-out writes every registered metric series (counters, gauges,
//   latency histograms per Read Preference), sampled once per report
//   period. --metrics-format picks the encoding: "json" (default) or
//   "openmetrics" (the Prometheus ecosystem text exposition, with
//   # TYPE/# UNIT/# HELP lines and an # EOF terminator).
// --slo evaluates service-level objectives once per report period, with
//   SRE-style multi-window burn-rate alerting (page + ticket severities,
//   pending -> firing -> resolved). SPEC is "default" (freshness: served
//   age <= stale bound for 99 % of secondary reads; latency: read p80 <=
//   the 3 ms CPQ SLA target; success: 99.9 % of ops complete) or
//   semicolon-separated objectives:
//     kind[:key=value]*  with kind freshness | latency | success and keys
//     objective=F bound=X name=S page=RATE ticket=RATE window=S short=S
//     hold=S resolve=S   (page/ticket=0 disables that severity).
//   Alert transitions print after the summary, land in
//   <csv-prefix>_slo.csv, appear as instant markers in --trace-out, and
//   add slo_* columns to <csv-prefix>_periods.csv. With --shards>=2 the
//   freshness objective is tracked per shard over the shard's staleness
//   signal. Without --slo no engine is built and goldens are untouched.
// --report-out renders a self-contained HTML dashboard (inline SVG, no
//   scripts or external assets): throughput / latency / fraction /
//   staleness / served-age time series, per-shard panels, alert timeline
//   lanes, and balancer decision annotations.
// --shards=N (N >= 2) runs the YCSB workload against a sharded cluster:
//   N replica-set shards behind a bus-routed mongos, each shard with its
//   own Read Balancer joined to one shared client-wide staleness budget
//   (--stale-bound applies cluster-wide). Adds a per-shard summary block
//   and, with --csv-prefix, a <prefix>_shards.csv time series.
//   Incompatible with TPC-C and fault injection.
// --shard-key picks document placement: hashed _id (default, uniform) or
//   ranged (contiguous id ranges round-robin across shards — the
//   locality-skew scenario).
// --explain-balancer prints the Balancer decision log: every fraction
//   move with its Algorithm 1 inputs and reason. The decision log also
//   lands in <csv-prefix>_decisions.csv with --csv-prefix.
//
// Examples:
//   sim_cli --workload=ycsb-b --clients=45 --duration=300
//   sim_cli --workload=tpcc --system=secondary --stale-bound=3
//   sim_cli --workload=ycsb-b --kill-primary-at=150 --csv-prefix=/tmp/run
//   sim_cli --faults="partition@120-180:nodes=1+2;throttle@220-260:node=2:x=25"
//   sim_cli --workload=ycsb-b --chaos-seed=7
//   sim_cli --workload=ycsb-b --system=secondary --hedged-reads
//           --op-deadline=500
//   sim_cli --workload=ycsb-b --clients=150 --batch-max-ops=16
//           --batch-max-delay-us=200

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/controller.h"
#include "exp/csv_export.h"
#include "exp/experiment.h"
#include "exp/report_builder.h"
#include "fault/fault_injector.h"
#include "obs/decision_log.h"
#include "obs/report.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

[[noreturn]] void Usage(const char* what) {
  std::fprintf(stderr, "sim_cli: %s (see the header comment for usage)\n",
               what);
  std::exit(2);
}

/// A paper-figure preset: everything in *fractions* of the run duration,
/// so `--scenario=fig2 --duration=240` replays the Fig. 2 shape at CI
/// scale. Client counts use the bench suite's paper/4 scaling.
struct ScenarioPreset {
  const char* workload;
  uint64_t seed;
  double duration_s;
  double warmup_frac;       // warmup = warmup_frac * duration
  int clients;
  double phase0_read_prop;  // YCSB only
  // Optional second phase (switch_frac < 0 disables).
  double switch_frac = -1;
  int phase1_clients = 0;
  double phase1_read_prop = 0;
  int64_t stale_bound_s = -1;  // -1: leave the default
};

bool LookupScenario(const std::string& name, ScenarioPreset* out) {
  if (name == "fig2") {
    // Fig. 2: YCSB-A (50 % reads) -> YCSB-B (95 %) at 620/900 s.
    *out = {"ycsb-a", 42, 900, 660.0 / 900, 45, 0.5, 620.0 / 900, 45, 0.95};
    return true;
  }
  if (name == "fig3") {
    // Fig. 3: YCSB-B with 45 clients -> YCSB-A with 5 at 230/700 s.
    *out = {"ycsb-b", 43, 700, 100.0 / 700, 45, 0.95, 230.0 / 700, 5, 0.5};
    return true;
  }
  if (name == "fig9") {
    // Fig. 9: read-write TPC-C, StaleBound 10 s, checkpoint sawtooth.
    ScenarioPreset p = {"tpcc", 49, 400, 60.0 / 400, 15, 0.5};
    p.stale_bound_s = 10;
    *out = p;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcg;

  exp::ExperimentConfig config;
  config.phases = {{0, 30, 0.5}};
  config.duration = sim::Seconds(300);
  config.warmup = sim::Seconds(100);

  std::string workload = "ycsb-a";
  std::string system = "decongestant";
  std::string controller = "decongestant";
  std::string shard_key = "hashed";

  // Scenario presets apply first so every later flag can override them.
  ScenarioPreset scenario{};
  bool scenario_active = false;
  bool warmup_given = false;
  int clients_given = -1;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (!ParseFlag(argv[i], "scenario", &value)) continue;
    if (!LookupScenario(value, &scenario)) {
      Usage("unknown --scenario (fig2 | fig3 | fig9)");
    }
    scenario_active = true;
    workload = scenario.workload;
    config.seed = scenario.seed;
    config.duration = sim::Seconds(scenario.duration_s);
    if (scenario.stale_bound_s >= 0) {
      config.balancer.stale_bound_seconds = scenario.stale_bound_s;
    }
  }
  std::string csv_prefix;
  std::string fault_spec;
  std::string trace_out;
  std::string metrics_out;
  std::string metrics_format = "json";
  std::string slo_spec;
  std::string report_out;
  double kill_primary_at = -1;
  uint64_t chaos_seed = 0;
  bool chaos = false;
  bool quiet = false;
  bool explain_balancer = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "workload", &value)) {
      workload = value;
    } else if (ParseFlag(argv[i], "system", &value)) {
      system = value;
    } else if (ParseFlag(argv[i], "scenario", &value)) {
      // Applied in the pre-pass above.
    } else if (ParseFlag(argv[i], "clients", &value)) {
      config.phases[0].clients = std::atoi(value.c_str());
      clients_given = config.phases[0].clients;
    } else if (ParseFlag(argv[i], "duration", &value)) {
      config.duration = sim::Seconds(std::atof(value.c_str()));
    } else if (ParseFlag(argv[i], "warmup", &value)) {
      config.warmup = sim::Seconds(std::atof(value.c_str()));
      warmup_given = true;
    } else if (ParseFlag(argv[i], "seed", &value)) {
      config.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "stale-bound", &value)) {
      config.balancer.stale_bound_seconds = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "controller", &value)) {
      controller = value;
    } else if (ParseFlag(argv[i], "csv-prefix", &value)) {
      csv_prefix = value;
    } else if (ParseFlag(argv[i], "kill-primary-at", &value)) {
      kill_primary_at = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "faults", &value)) {
      fault_spec = value;
    } else if (ParseFlag(argv[i], "chaos-seed", &value)) {
      chaos_seed = std::strtoull(value.c_str(), nullptr, 10);
      chaos = true;
    } else if (ParseFlag(argv[i], "op-deadline", &value)) {
      config.client_options.default_op_deadline =
          sim::Millis(std::atof(value.c_str()));
    } else if (ParseFlag(argv[i], "max-pool-size", &value)) {
      config.client_options.pool.max_pool_size = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "wait-queue-timeout", &value)) {
      config.client_options.pool.wait_queue_timeout =
          sim::Millis(std::atof(value.c_str()));
    } else if (ParseFlag(argv[i], "batch-max-ops", &value)) {
      const int ops = std::atoi(value.c_str());
      if (ops < 1) Usage("--batch-max-ops needs a positive count");
      config.client_options.batching_enabled = true;
      config.client_options.batch_max_ops = ops;
    } else if (ParseFlag(argv[i], "batch-max-delay-us", &value)) {
      const double us = std::atof(value.c_str());
      if (us < 0) Usage("--batch-max-delay-us needs a non-negative delay");
      config.client_options.batch_max_delay = sim::Micros(us);
    } else if (ParseFlag(argv[i], "trace-out", &value)) {
      if (value.empty()) Usage("--trace-out needs a path");
      trace_out = value;
      config.trace = true;
    } else if (ParseFlag(argv[i], "trace-max-spans", &value)) {
      config.trace_max_spans = std::strtoull(value.c_str(), nullptr, 10);
      if (config.trace_max_spans == 0) {
        Usage("--trace-max-spans needs a positive count");
      }
    } else if (ParseFlag(argv[i], "metrics-out", &value)) {
      if (value.empty()) Usage("--metrics-out needs a path");
      metrics_out = value;
    } else if (ParseFlag(argv[i], "metrics-format", &value)) {
      if (value != "json" && value != "openmetrics") {
        Usage("unknown --metrics-format (json | openmetrics)");
      }
      metrics_format = value;
    } else if (ParseFlag(argv[i], "slo", &value)) {
      if (value.empty()) Usage("--slo needs a spec (try --slo=default)");
      slo_spec = value;
    } else if (ParseFlag(argv[i], "report-out", &value)) {
      if (value.empty()) Usage("--report-out needs a path");
      report_out = value;
    } else if (ParseFlag(argv[i], "shards", &value)) {
      config.shards = std::atoi(value.c_str());
      if (config.shards < 1) Usage("--shards needs a positive count");
    } else if (ParseFlag(argv[i], "shard-key", &value)) {
      shard_key = value;
    } else if (std::strcmp(argv[i], "--explain-balancer") == 0) {
      explain_balancer = true;
    } else if (std::strcmp(argv[i], "--hedged-reads") == 0) {
      config.client_options.hedged_reads = true;
    } else if (std::strcmp(argv[i], "--no-s-workload") == 0) {
      config.run_s_workload = false;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      Usage(argv[i]);
    }
  }

  if (workload == "ycsb-a") {
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases[0].ycsb_read_proportion = 0.5;
  } else if (workload == "ycsb-b") {
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases[0].ycsb_read_proportion = 0.95;
  } else if (workload == "tpcc") {
    config.kind = exp::WorkloadKind::kTpcc;
    config.server.checkpoint_disk_bw = 2.0e6;
  } else {
    Usage("unknown --workload");
  }

  if (scenario_active) {
    // Rebuild the phase schedule from the preset fractions against the
    // *final* duration, so `--duration` overrides scale the whole shape.
    const double duration_s = sim::ToSeconds(config.duration);
    const int clients0 =
        clients_given > 0 ? clients_given : scenario.clients;
    config.phases = {{0, clients0, scenario.phase0_read_prop}};
    if (scenario.switch_frac >= 0) {
      // Keep a user --clients override proportional across the switch.
      int clients1 = scenario.phase1_clients;
      if (clients_given > 0 && scenario.clients > 0) {
        clients1 = std::max(
            1, clients_given * scenario.phase1_clients / scenario.clients);
      }
      config.phases.push_back({sim::Seconds(duration_s *
                                            scenario.switch_frac),
                               clients1, scenario.phase1_read_prop});
    }
    if (!warmup_given) {
      config.warmup = sim::Seconds(duration_s * scenario.warmup_frac);
    }
  }

  if (system == "decongestant") {
    config.system = exp::SystemType::kDecongestant;
  } else if (system == "primary") {
    config.system = exp::SystemType::kPrimary;
  } else if (system == "secondary") {
    config.system = exp::SystemType::kSecondary;
  } else {
    Usage("unknown --system");
  }

  if (!fault_spec.empty()) {
    std::string error;
    if (!fault::ParseFaultSpec(fault_spec, &config.faults, &error)) {
      Usage(error.c_str());
    }
    for (const auto& event : config.faults.events) {
      for (int node : event.nodes) {
        if (node < 0 || node > config.repl.secondaries) {
          Usage("--faults node index out of range for this cluster");
        }
      }
    }
  }
  if (chaos) {
    const int nodes = config.repl.secondaries + 1;
    config.faults = fault::MakeRandomSchedule(chaos_seed, config.duration,
                                              nodes);
  }

  if (config.shards >= 2) {
    if (config.kind != exp::WorkloadKind::kYcsb) {
      Usage("--shards supports the YCSB workloads only");
    }
    if (!config.faults.empty() || kill_primary_at >= 0) {
      Usage("--shards is incompatible with fault injection");
    }
    if (shard_key == "hashed") {
      config.shard_key.hashed = true;
    } else if (shard_key == "ranged") {
      // Contiguous id ranges, sliced evenly over the YCSB key space into
      // shards * chunks_per_shard chunks (round-robin across shards).
      config.shard_key.hashed = false;
      const int chunks = config.shards * config.chunks_per_shard;
      for (int i = 1; i < chunks; ++i) {
        config.split_points.emplace_back(config.ycsb.record_count * i /
                                         chunks);
      }
    } else {
      Usage("unknown --shard-key (hashed | ranged)");
    }
  }

  if (!slo_spec.empty()) {
    // Defaults for the "default" bundle and unset bounds: the balancer's
    // staleness bound and the CPQ controller's read-latency SLA target.
    obs::SloDefaults defaults;
    defaults.stale_bound_seconds = config.balancer.stale_bound_seconds;
    defaults.latency_target_ms =
        sim::ToMillis(core::CpqController().sla_target());
    std::string error;
    if (!obs::ParseSloSpecs(slo_spec, defaults, &config.slos, &error)) {
      Usage(error.c_str());
    }
  }

  if (!core::IsDefaultController(controller) &&
      core::MakeController(controller) == nullptr) {
    std::string known;
    for (std::string_view name : core::RegisteredControllers()) {
      if (!known.empty()) known += " | ";
      known += name;
    }
    std::fprintf(stderr, "sim_cli: unknown --controller (%s)\n",
                 known.c_str());
    return 2;
  }
  config.controller = controller;

  exp::Experiment experiment(config);
  if (kill_primary_at >= 0) {
    experiment.loop().ScheduleAt(sim::Seconds(kill_primary_at), [&] {
      experiment.replica_set().KillNode(
          experiment.replica_set().primary_index());
    });
  }

  std::printf(
      "workload=%s system=%s controller=%s clients=%d duration=%.0fs "
      "seed=%llu\n",
      workload.c_str(), system.c_str(), controller.c_str(),
      config.phases[0].clients, sim::ToSeconds(config.duration),
      static_cast<unsigned long long>(config.seed));
  experiment.Run();

  const bool tpcc = config.kind == exp::WorkloadKind::kTpcc;
  if (!quiet) {
    std::printf("\n%8s %12s %10s %8s %10s %7s  %s\n", "time(s)",
                tpcc ? "SL txn/s" : "reads/s", "p80(ms)", "sec(%)",
                "fraction", "est(s)", "balancer");
    for (const auto& row : experiment.rows()) {
      const double throughput =
          tpcc ? static_cast<double>(row.stock_level) /
                     sim::ToSeconds(row.end - row.start)
               : row.ReadThroughput();
      // One-line balancer summary: "0.40→0.50 latency_ratio_up", or "-"
      // when no control tick fell inside the period.
      char balancer_col[64] = "-";
      if (row.balance_decided) {
        std::snprintf(balancer_col, sizeof(balancer_col),
                      "%.2f→%.2f %s", row.balance_from, row.balance_to,
                      std::string(obs::ToString(row.balance_reason)).c_str());
      }
      std::printf("%8.0f %12.0f %10.2f %8.1f %10.2f %7lld  %s\n",
                  sim::ToSeconds(row.start), throughput,
                  row.P80ReadLatencyMs(), row.SecondaryPercent(),
                  row.balance_fraction,
                  static_cast<long long>(row.est_staleness_max_s),
                  balancer_col);
    }
  }

  if (!config.faults.empty() && !quiet) {
    std::printf("\nfault log (%llu applied, %llu healed):\n",
                static_cast<unsigned long long>(
                    experiment.fault_injector().events_applied()),
                static_cast<unsigned long long>(
                    experiment.fault_injector().events_healed()));
    for (const std::string& line : experiment.fault_injector().log()) {
      std::printf("  %s\n", line.c_str());
    }
  }

  const exp::Summary summary = experiment.Summarize();
  std::printf(
      "\nsummary: %.0f read txn/s, P80 %.2f ms, %.1f%% on secondaries, "
      "P80 staleness %.2f s (max %.2f s)\n",
      summary.read_throughput, summary.p80_read_latency_ms,
      summary.secondary_percent, summary.p80_staleness_s,
      summary.max_staleness_s);
  if (!experiment.sharded()) {
    std::printf(
        "served age: mean %.3f s, max %.3f s, bound violations %llu\n",
        summary.mean_served_age_s, summary.max_served_age_s,
        static_cast<unsigned long long>(summary.bound_violations));
  }

  if (experiment.sharded()) {
    shard::ShardedCluster* cluster = experiment.sharded_cluster();
    const shard::Router& router = cluster->router();
    std::printf(
        "\nshards: %d (%s, %lld chunks), %llu point ops routed, "
        "%llu scatter finds, %llu stale refreshes\n",
        cluster->shard_count(), shard_key.c_str(),
        static_cast<long long>(router.routing_table().chunk_count()),
        static_cast<unsigned long long>(router.routed_reads() +
                                        router.routed_writes()),
        static_cast<unsigned long long>(router.scatter_finds()),
        static_cast<unsigned long long>(router.stale_refreshes()));
    const uint64_t total_routed =
        std::max<uint64_t>(1, router.routed_reads() + router.routed_writes());
    for (int s = 0; s < cluster->shard_count(); ++s) {
      char bound_col[48] = "";
      if (cluster->balancer(s) != nullptr) {
        std::snprintf(bound_col, sizeof(bound_col),
                      ", effective bound %llds",
                      static_cast<long long>(
                          cluster->budget().EffectiveBound(s)));
      }
      std::printf(
          "  shard %d: %d chunks, %llu ops (%.1f%%), fraction %.2f, "
          "true staleness %.2fs%s\n",
          s, router.routing_table().ChunksOwnedBy(s),
          static_cast<unsigned long long>(router.routed_to_shard(s)),
          100.0 * static_cast<double>(router.routed_to_shard(s)) /
              static_cast<double>(total_routed),
          cluster->shared_state(s).balance_fraction(),
          sim::ToSeconds(cluster->shard(s).MaxTrueStaleness()),
          bound_col);
    }
  }

  const metrics::OpCounters& ops = experiment.client().op_counters();
  std::printf(
      "ops: %llu ok, %llu timed out, %llu retried (%llu retries), "
      "%llu hedges sent, %llu hedges won\n",
      static_cast<unsigned long long>(ops.ok),
      static_cast<unsigned long long>(ops.timed_out),
      static_cast<unsigned long long>(ops.retried),
      static_cast<unsigned long long>(ops.retries_total),
      static_cast<unsigned long long>(ops.hedges_sent),
      static_cast<unsigned long long>(ops.hedges_won));

  if (config.client_options.batching_enabled) {
    const metrics::Histogram& occ = experiment.client().batch_occupancy();
    std::printf(
        "batching: %llu envelopes, %llu ops batched, occupancy "
        "mean %.2f / p50 %.0f / max %.0f of %d\n",
        static_cast<unsigned long long>(ops.envelopes_sent),
        static_cast<unsigned long long>(ops.ops_batched),
        occ.count() > 0 ? occ.mean() : 0.0, occ.Percentile(50), occ.max(),
        config.client_options.batch_max_ops);
  }

  if (config.client_options.pool.max_pool_size > 0) {
    const auto pool = experiment.client().PoolTotals();
    std::printf(
        "pool: %llu checkouts, %llu timed out, %llu established, "
        "%llu destroyed, %llu clears, peak queue %llu, "
        "%.1f ms total wait\n",
        static_cast<unsigned long long>(pool.checkouts),
        static_cast<unsigned long long>(pool.checkout_timeouts),
        static_cast<unsigned long long>(pool.established),
        static_cast<unsigned long long>(pool.destroyed),
        static_cast<unsigned long long>(pool.clears),
        static_cast<unsigned long long>(pool.max_queue_depth),
        sim::ToMillis(pool.wait_total));
  }

  if (const obs::SloEngine* engine = experiment.slo_engine();
      engine != nullptr) {
    std::printf("\nslo: %llu objectives, %llu evaluations, %d firing, "
                "%llu alert events\n",
                static_cast<unsigned long long>(engine->trackers().size()),
                static_cast<unsigned long long>(engine->evaluations()),
                engine->firing_count(),
                static_cast<unsigned long long>(engine->events().size()));
    for (const auto& tracker : engine->trackers()) {
      char shard_col[24] = "";
      if (tracker->shard() >= 0) {
        std::snprintf(shard_col, sizeof(shard_col), " shard=%d",
                      tracker->shard());
      }
      std::printf("  %s%s: sli=%.4f burn=%.2f",
                  std::string(tracker->spec().display_name()).c_str(),
                  shard_col, tracker->last_sli(), tracker->last_burn());
      for (size_t r = 0; r < tracker->rule_count(); ++r) {
        std::printf(" %s=%s",
                    std::string(obs::ToString(tracker->rule(r).severity))
                        .c_str(),
                    std::string(obs::ToString(tracker->state(r))).c_str());
      }
      std::printf("\n");
    }
    for (const obs::SloEvent& e : engine->events()) {
      char shard_col[24] = "";
      if (e.shard >= 0) {
        std::snprintf(shard_col, sizeof(shard_col), " shard=%d", e.shard);
      }
      std::printf(
          "  alert t=%6.0fs %s%s %s %s burn=%.2f/%.2f sli=%.4f\n",
          sim::ToSeconds(e.at), e.slo.c_str(), shard_col,
          std::string(obs::ToString(e.severity)).c_str(),
          std::string(obs::ToString(e.transition)).c_str(), e.burn_long,
          e.burn_short, e.sli);
    }
  }

  if (explain_balancer) {
    const obs::DecisionLog* log = experiment.balancer_decisions();
    if (log == nullptr) {
      std::printf("\nbalancer decisions: none (system=%s has no balancer)\n",
                  system.c_str());
    } else {
      uint64_t reason_counts[obs::kBalanceReasonCount] = {};
      std::printf("\nbalancer decisions (%llu):\n",
                  static_cast<unsigned long long>(log->size()));
      for (const obs::BalanceDecision& d : log->entries()) {
        ++reason_counts[static_cast<size_t>(d.reason)];
        std::printf(
            "  t=%6.0fs fraction %.2f→%.2f (published %.2f) "
            "reason=%s ratio=%.3f%s lss=%.2f/%.2fms est=%llds bound=%llds\n",
            sim::ToSeconds(d.at), d.from_fraction, d.to_fraction,
            d.published_fraction, std::string(obs::ToString(d.reason)).c_str(),
            d.ratio, d.ratio_valid ? "" : " (invalid)",
            sim::ToMillis(d.lss_primary), sim::ToMillis(d.lss_secondary),
            static_cast<long long>(d.staleness_estimate_s),
            static_cast<long long>(d.stale_bound_s));
      }
      std::printf("  by reason:");
      for (size_t r = 0; r < obs::kBalanceReasonCount; ++r) {
        if (reason_counts[r] == 0) continue;
        std::printf(" %s=%llu",
                    std::string(
                        obs::ToString(static_cast<obs::BalanceReason>(r)))
                        .c_str(),
                    static_cast<unsigned long long>(reason_counts[r]));
      }
      std::printf("\n");
    }
  }

  if (!trace_out.empty()) {
    const obs::Tracer& tracer = experiment.tracer();
    const obs::SloEngine* engine = experiment.slo_engine();
    const bool ok = obs::WriteChromeTrace(
        tracer, experiment.balancer_decisions(),
        engine != nullptr ? &engine->events() : nullptr, trace_out);
    std::printf("trace export to %s: %s (%llu spans, %llu dropped)\n",
                trace_out.c_str(), ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(tracer.spans().size()),
                static_cast<unsigned long long>(tracer.dropped()));
    if (!ok) return 1;
  }

  if (!metrics_out.empty()) {
    const bool ok =
        metrics_format == "openmetrics"
            ? experiment.metrics_registry().WriteOpenMetrics(metrics_out)
            : experiment.metrics_registry().WriteJson(metrics_out);
    std::printf("metrics export to %s (%s): %s (%llu series, %llu samples)\n",
                metrics_out.c_str(), metrics_format.c_str(),
                ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(
                    experiment.metrics_registry().series_count()),
                static_cast<unsigned long long>(
                    experiment.metrics_registry().samples_taken()));
    if (!ok) return 1;
  }

  if (!csv_prefix.empty()) {
    bool ok =
        exp::WritePeriodsCsv(experiment, csv_prefix + "_periods.csv") &&
        exp::WriteStalenessCsv(experiment, csv_prefix + "_staleness.csv") &&
        exp::WriteSamplesCsv(experiment, csv_prefix + "_samples.csv") &&
        exp::WriteDecisionsCsv(experiment, csv_prefix + "_decisions.csv") &&
        experiment.metrics_registry().WriteCsv(csv_prefix + "_metrics.csv");
    if (experiment.sharded()) {
      ok = ok && exp::WriteShardsCsv(experiment, csv_prefix + "_shards.csv");
    }
    if (experiment.slo_engine() != nullptr) {
      ok = ok && exp::WriteSloCsv(experiment, csv_prefix + "_slo.csv");
    }
    std::printf("csv export to %s_*.csv: %s\n", csv_prefix.c_str(),
                ok ? "ok" : "FAILED");
    if (!ok) return 1;
  }

  if (!report_out.empty()) {
    const obs::ReportData report = exp::BuildReportData(experiment);
    const bool ok = obs::WriteHtmlReport(report, report_out);
    std::printf("report export to %s: %s (%llu panels, %llu alert lanes)\n",
                report_out.c_str(), ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(report.panels.size()),
                static_cast<unsigned long long>(report.alert_lanes.size()));
    if (!ok) return 1;
  }
  return 0;
}
