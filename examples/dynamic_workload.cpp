// Dynamic-workload example: the motivating scenario of the paper's
// introduction. An application's read/write mix shifts at runtime (here
// YCSB-A -> YCSB-B and back); a hard-coded Read Preference is wrong in at
// least one phase, while Decongestant re-balances on the fly.
//
//   ./build/examples/dynamic_workload

#include <cstdio>

#include "exp/experiment.h"

namespace {

dcg::exp::Summary RunOne(dcg::exp::SystemType system) {
  using namespace dcg;

  exp::ExperimentConfig config;
  config.seed = 1234;
  config.system = system;
  config.kind = exp::WorkloadKind::kYcsb;
  // Three phases: write-heavy, read-heavy, write-heavy again.
  config.phases = {{.at = 0, .clients = 40, .ycsb_read_proportion = 0.5},
                   {.at = sim::Seconds(250),
                    .clients = 40,
                    .ycsb_read_proportion = 0.95},
                   {.at = sim::Seconds(500),
                    .clients = 40,
                    .ycsb_read_proportion = 0.5}};
  config.duration = sim::Seconds(750);
  config.warmup = sim::Seconds(50);

  exp::Experiment experiment(config);
  experiment.Run();

  if (system == exp::SystemType::kDecongestant) {
    std::printf("\nDecongestant's view of the shifting workload:\n");
    std::printf("%8s %10s %8s %10s\n", "time", "reads/s", "sec(%)",
                "fraction");
    for (const auto& row : experiment.rows()) {
      if (sim::ToSeconds(row.start) < 30 ||
          (static_cast<int64_t>(sim::ToSeconds(row.start)) % 50) != 0) {
        continue;
      }
      std::printf("%8s %10.0f %8.1f %10.2f\n",
                  sim::FormatTime(row.start).c_str(), row.ReadThroughput(),
                  row.SecondaryPercent(), row.balance_fraction);
    }
  }
  return experiment.Summarize();
}

}  // namespace

int main() {
  using namespace dcg;

  std::printf("Shifting YCSB mix (A -> B -> A), 40 clients, three ways of "
              "routing reads...\n");

  const exp::SystemType systems[] = {exp::SystemType::kPrimary,
                                     exp::SystemType::kSecondary,
                                     exp::SystemType::kDecongestant};
  std::printf("\n%-14s %10s %10s %8s\n", "system", "reads/s", "p80(ms)",
              "sec(%)");
  for (exp::SystemType system : systems) {
    const exp::Summary summary = RunOne(system);
    std::printf("%-14s %10.0f %10.2f %8.1f\n", ToString(system).data(),
                summary.read_throughput, summary.p80_read_latency_ms,
                summary.secondary_percent);
  }

  std::printf(
      "\nThe hard-coded options each fit only one phase; Decongestant "
      "tracks the mix\nand matches or beats both across the whole run.\n");
  return 0;
}
