#!/bin/bash
# Controller bake-off: run the Fig. 2 / Fig. 3 / Fig. 9 scenarios once
# per registered Balance Fraction strategy and print the markdown
# comparison table committed to EXPERIMENTS.md. CI runs a single short
# fig2 pass of the same thing; this script is the full-duration version.
#
# Usage: tools/bakeoff.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree containing examples/sim_cli
#              (default: build)
#   OUT_DIR    where logs and CSVs land (default: a fresh mktemp dir)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$(mktemp -d /tmp/bakeoff.XXXXXX)}"
SIM_CLI="$BUILD_DIR/examples/sim_cli"
if [ ! -x "$SIM_CLI" ]; then
  echo "bakeoff: $SIM_CLI not found — build the sim_cli target first" >&2
  exit 2
fi
mkdir -p "$OUT_DIR"

CONTROLLERS=(decongestant cpq aoi pid)
SCENARIOS=(fig2 fig3 fig9)

for scenario in "${SCENARIOS[@]}"; do
  for controller in "${CONTROLLERS[@]}"; do
    log="$OUT_DIR/${scenario}_${controller}.txt"
    echo "bakeoff: $scenario / $controller ..." >&2
    "$SIM_CLI" --scenario="$scenario" --controller="$controller" --quiet \
      --slo=default \
      --csv-prefix="$OUT_DIR/${scenario}_${controller}" > "$log"
  done
done

# Parse every summary into one markdown table per scenario.
python3 - "$OUT_DIR" <<'PYEOF'
import re
import sys

out_dir = sys.argv[1]
controllers = ["decongestant", "cpq", "aoi", "pid"]
for scenario in ["fig2", "fig3", "fig9"]:
    print(f"\n### {scenario}\n")
    print("| controller | read txn/s | P80 latency (ms) | secondary % | "
          "mean served age (s) | max served age (s) | bound violations |")
    print("|---|---|---|---|---|---|---|")
    for controller in controllers:
        text = open(f"{out_dir}/{scenario}_{controller}.txt").read()
        m = re.search(r"summary: (\d+) read txn/s, P80 ([\d.]+) ms, "
                      r"([\d.]+)% on secondaries", text)
        age = re.search(r"served age: mean ([\d.]+) s, max ([\d.]+) s, "
                        r"bound violations (\d+)", text)
        if not m or not age:
            raise SystemExit(f"{scenario}/{controller}: summary lines missing")
        print(f"| {controller} | {m.group(1)} | {m.group(2)} | {m.group(3)} "
              f"| {age.group(1)} | {age.group(2)} | {age.group(3)} |")

# Fig. 9 freshness-alert table: every run above carried --slo=default,
# so the checkpoint-stall sawtooth doubles as an alerting scenario. Only
# the freshness objective is tabulated — the default latency ticket pages
# on every fig9 run (TPC-C P80 is ~30x the YCSB-derived SLA target) and
# would drown the signal that separates the controllers.
alert_re = re.compile(
    r"alert t=\s*([\d.]+)s freshness(?: shard=\d+)? (page|ticket) "
    r"(pending|firing|cancelled|resolved) burn=")
print("\n### fig9 freshness alerts (--slo=default)\n")
print("| controller | pages | tickets | first fire (s) | "
      "last resolve (s) |")
print("|---|---|---|---|---|")
for controller in controllers:
    text = open(f"{out_dir}/fig9_{controller}.txt").read()
    fired = {"page": 0, "ticket": 0}
    first_fire = resolve = None
    for t, severity, transition in alert_re.findall(text):
        if transition == "firing":
            fired[severity] += 1
            first_fire = first_fire if first_fire is not None else float(t)
        elif transition == "resolved":
            resolve = float(t)
    fire_col = f"{first_fire:.0f}" if first_fire is not None else "—"
    resolve_col = f"{resolve:.0f}" if resolve is not None else "—"
    print(f"| {controller} | {fired['page']} | {fired['ticket']} "
          f"| {fire_col} | {resolve_col} |")
PYEOF

echo >&2
echo "bakeoff: logs and CSVs in $OUT_DIR" >&2
