#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition produced by the sim.

A structural linter for the subset of the OpenMetrics 1.0 text format the
metrics registry exports (gauge, counter, summary). CI runs it against the
obs-smoke artifact so a malformed escape, a counter sample missing its
`_total` suffix, or a lost `# EOF` terminator fails the cheap job instead
of silently shipping an unscrapable file.

Checks, per family:
  - metadata ordering: `# TYPE` first, then optional `# UNIT` / `# HELP`,
    then that family's samples — one contiguous block per family, no
    interleaving and no duplicate blocks;
  - metric names match [a-zA-Z_][a-zA-Z0-9_]*;
  - a declared UNIT is a suffix of the family name (spec rule);
  - counter samples carry the `_total` suffix, gauge samples the bare
    family name, summary samples quantile/_count/_sum shapes only;
  - label syntax `name="value"` with only \\\\, \\", and \\n escapes;
  - sample values and timestamps parse as floats;
and for the file as a whole that the final line is exactly `# EOF`.

Usage: python3 tools/check_openmetrics.py FILE [FILE ...]
"""

import pathlib
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"gauge", "counter", "summary"}
# Sample-name suffixes allowed per family type. Counters MUST use _total;
# summaries expose quantile series under the bare name plus _count/_sum.
SUFFIXES = {"gauge": [""], "counter": ["_total"],
            "summary": ["", "_count", "_sum"]}


class Checker:
    def __init__(self, path):
        self.path = path
        self.errors = []
        self.families = {}   # family -> type
        self.closed = set()  # families whose block has ended
        self.current = None  # family whose block is open
        self.meta_seen = []  # metadata kinds seen for the open block
        self.samples = 0

    def fail(self, lineno, message):
        self.errors.append(f"{self.path}:{lineno}: {message}")

    def parse_labels(self, lineno, raw):
        """Validates `k="v",k="v"` label bodies; returns the label dict."""
        labels = {}
        i = 0
        while i < len(raw):
            m = re.match(r"([a-zA-Z_][a-zA-Z0-9_]*)=\"", raw[i:])
            if not m:
                self.fail(lineno, f"bad label syntax at ...{raw[i:]!r}")
                return labels
            name = m.group(1)
            i += m.end()
            value = []
            while i < len(raw) and raw[i] != '"':
                if raw[i] == "\\":
                    if i + 1 >= len(raw) or raw[i + 1] not in '\\"n':
                        self.fail(lineno,
                                  f"illegal escape in label {name}: "
                                  f"\\{raw[i + 1:i + 2]}")
                    i += 2
                    value.append("?")
                else:
                    value.append(raw[i])
                    i += 1
            if i >= len(raw):
                self.fail(lineno, f"unterminated label value for {name}")
                return labels
            i += 1  # closing quote
            if name in labels:
                self.fail(lineno, f"duplicate label {name}")
            labels[name] = "".join(value)
            if i < len(raw):
                if raw[i] != ",":
                    self.fail(lineno, f"expected ',' between labels, got "
                                      f"{raw[i]!r}")
                    return labels
                i += 1
        return labels

    def handle_meta(self, lineno, kind, rest):
        parts = rest.split(" ", 1)
        family = parts[0]
        if not NAME_RE.match(family):
            self.fail(lineno, f"bad family name {family!r}")
            return
        if kind == "TYPE":
            if family in self.families:
                self.fail(lineno, f"duplicate # TYPE for {family}")
                return
            if family in self.closed:
                self.fail(lineno, f"family {family} reopened — blocks must "
                                  "be contiguous")
            if self.current is not None:
                self.closed.add(self.current)
            mtype = parts[1].strip() if len(parts) > 1 else ""
            if mtype not in TYPES:
                self.fail(lineno, f"unsupported metric type {mtype!r} for "
                                  f"{family}")
                mtype = "gauge"
            self.families[family] = mtype
            self.current = family
            self.meta_seen = ["TYPE"]
            return
        # UNIT / HELP must follow the TYPE of the block they annotate.
        if family != self.current:
            self.fail(lineno, f"# {kind} {family} outside its family block "
                              f"(open block: {self.current})")
            return
        if kind in self.meta_seen:
            self.fail(lineno, f"duplicate # {kind} for {family}")
        if "samples" in self.meta_seen:
            self.fail(lineno, f"# {kind} {family} after samples — metadata "
                              "must precede them")
        self.meta_seen.append(kind)
        if kind == "UNIT":
            unit = parts[1].strip() if len(parts) > 1 else ""
            if not unit or not family.endswith("_" + unit) \
                    and family != unit:
                self.fail(lineno, f"unit {unit!r} is not a suffix of "
                                  f"family {family!r}")

    def handle_sample(self, lineno, line):
        m = re.match(r"([a-zA-Z_][a-zA-Z0-9_]*)(\{([^}]*)\})?\s+(\S+)"
                     r"(\s+(\S+))?\s*$", line)
        if not m:
            self.fail(lineno, f"unparseable sample line: {line!r}")
            return
        name, _, labels_raw, value, _, timestamp = m.groups()
        family = None
        for fam, mtype in self.families.items():
            for suffix in SUFFIXES[mtype]:
                if name == fam + suffix:
                    family = fam
                    break
            if family:
                break
        if family is None:
            self.fail(lineno, f"sample {name!r} has no matching # TYPE "
                              "block (or the wrong suffix for its type)")
            return
        if family != self.current:
            self.fail(lineno, f"sample for {family} outside its block "
                              f"(open block: {self.current})")
        elif "samples" not in self.meta_seen:
            self.meta_seen.append("samples")
        labels = self.parse_labels(lineno, labels_raw) if labels_raw else {}
        mtype = self.families[family]
        if mtype == "summary" and name == family \
                and "quantile" not in labels:
            self.fail(lineno, f"summary sample {name} needs a quantile "
                              "label")
        if mtype != "summary" and "quantile" in labels:
            self.fail(lineno, f"{mtype} sample {name} carries a quantile "
                              "label")
        try:
            float(value)
        except ValueError:
            self.fail(lineno, f"non-numeric sample value {value!r}")
        if timestamp is not None:
            try:
                float(timestamp)
            except ValueError:
                self.fail(lineno, f"non-numeric timestamp {timestamp!r}")
        self.samples += 1

    def run(self, text):
        if not text.endswith("# EOF\n"):
            self.errors.append(f"{self.path}: missing `# EOF` terminator "
                               "as the final line")
        lines = text.splitlines()
        for lineno, line in enumerate(lines, 1):
            if line == "# EOF":
                if lineno != len(lines):
                    self.fail(lineno, "content after # EOF")
                break
            if not line.strip():
                self.fail(lineno, "blank line inside exposition")
                continue
            if line.startswith("#"):
                m = re.match(r"# (TYPE|UNIT|HELP) (.*)$", line)
                if not m:
                    self.fail(lineno, f"unknown comment line: {line!r}")
                    continue
                self.handle_meta(lineno, m.group(1), m.group(2))
            else:
                self.handle_sample(lineno, line)
        if not self.families:
            self.errors.append(f"{self.path}: no metric families found")
        return self.errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    failures = 0
    for arg in argv[1:]:
        path = pathlib.Path(arg)
        checker = Checker(path)
        errors = checker.run(path.read_text())
        if errors:
            failures += 1
            for err in errors:
                print(f"FAIL: {err}", file=sys.stderr)
        else:
            print(f"ok: {path} — {len(checker.families)} families, "
                  f"{checker.samples} samples")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
