#!/usr/bin/env python3
"""Lint the Python heredocs embedded in .github/workflows/ci.yml.

The CI smoke steps pipe inline Python into `python3 - <<'EOF'`. A syntax
error in one of those blocks only surfaces when the (slow, Release-build)
job reaches the step — this check extracts every heredoc and byte-compiles
it so the cheap lint job fails first instead.

Usage: python3 tools/check_ci_python.py [workflow.yml ...]
       (defaults to .github/workflows/ci.yml from the repo root)
"""

import pathlib
import sys

HEREDOC_OPEN = "python3 - <<'EOF'"
HEREDOC_CLOSE = "EOF"


def extract_heredocs(text):
    """Yields (start_line, source) for every python3 heredoc in `text`."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].strip() == HEREDOC_OPEN:
            indent = len(lines[i]) - len(lines[i].lstrip())
            start = i + 1
            body = []
            i += 1
            while i < len(lines) and lines[i].strip() != HEREDOC_CLOSE:
                # The shell strips nothing inside a quoted heredoc, but the
                # YAML block scalar already removed the step indentation;
                # whatever is left beyond the opener's indent is real code
                # indentation and must be preserved.
                body.append(lines[i][indent:] if lines[i].strip() else "")
                i += 1
            if i >= len(lines):
                raise SyntaxError(
                    f"heredoc opened on line {start} is never closed")
            yield start + 1, "\n".join(body) + "\n"
        i += 1


def main(argv):
    root = pathlib.Path(__file__).resolve().parent.parent
    paths = ([pathlib.Path(a) for a in argv[1:]]
             or [root / ".github" / "workflows" / "ci.yml"])
    failures = 0
    total = 0
    for path in paths:
        text = path.read_text()
        for line, source in extract_heredocs(text):
            total += 1
            name = f"{path.name}:{line}"
            try:
                compile(source, name, "exec")
                print(f"ok: heredoc at {name} ({len(source.splitlines())} "
                      "lines)")
            except SyntaxError as err:
                failures += 1
                print(f"FAIL: heredoc at {name}: {err}", file=sys.stderr)
    if total == 0:
        print("FAIL: no python3 heredocs found — extractor out of sync "
              "with the workflow?", file=sys.stderr)
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
