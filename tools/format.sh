#!/bin/sh
# Reformat the tree in place with the committed .clang-format — the same
# file set the CI lint job dry-runs with --Werror. Run before sending a
# change if your editor doesn't format on save.
set -e
cd "$(dirname "$0")/.."
find src tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 clang-format -i
