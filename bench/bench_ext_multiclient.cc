// Extension bench: decentralisation (Figure 1 shows multiple client
// systems, each with its own Read Balancer; §1 claims "our approach is
// decentralised ... it uses only client observations"). Three independent
// client systems, sharing nothing but the replica set, each run their own
// balancer over their own third of the YCSB-B load. The claim under test:
// uncoordinated balancers converge to compatible Balance Fractions and
// their combined performance matches a single centralised balancer
// driving the same total load.

#include <memory>

#include "bench_common.h"
#include "exp/client_system.h"

namespace {

dcg::repl::ReplicaSet* BuildCluster(
    dcg::sim::EventLoop* loop, dcg::sim::Rng* rng, dcg::net::Network* network,
    std::vector<dcg::net::HostId>* client_hosts, int n_client_hosts,
    std::unique_ptr<dcg::repl::ReplicaSet>* out) {
  using namespace dcg;
  std::vector<net::HostId> node_hosts;
  for (int i = 0; i < 3; ++i) {
    node_hosts.push_back(network->AddHost("db" + std::to_string(i)));
  }
  const sim::Duration rtts[3] = {sim::Millis(0.4), sim::Millis(1.2),
                                 sim::Millis(1.6)};
  for (int c = 0; c < n_client_hosts; ++c) {
    client_hosts->push_back(network->AddHost("app" + std::to_string(c)));
    for (int i = 0; i < 3; ++i) {
      network->SetLink(client_hosts->back(), node_hosts[i], rtts[i],
                       sim::Micros(40));
    }
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) {
      network->SetLink(node_hosts[i], node_hosts[j], sim::Millis(1),
                       sim::Micros(40));
    }
  }
  *out = std::make_unique<repl::ReplicaSet>(loop, rng->Fork(), network,
                                            repl::ReplicaSetParams{},
                                            server::ServerParams{},
                                            node_hosts);
  return out->get();
}

}  // namespace

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Extension: decentralisation",
         "3 independent client systems vs 1 centralised balancer (YCSB-B)");

  const workload::YcsbConfig ycsb_config = workload::YcsbConfig::WorkloadB();
  constexpr int kTotalClients = 45;
  constexpr sim::Duration kDuration = sim::Seconds(300);

  // --- Run A: three client systems, 15 app clients each. ---
  double fractions[3];
  double combined_reads_per_sec = 0;
  {
    sim::EventLoop loop;
    sim::Rng rng(70);
    net::Network network(&loop, rng.Fork());
    std::vector<net::HostId> hosts;
    std::unique_ptr<repl::ReplicaSet> rs;
    BuildCluster(&loop, &rng, &network, &hosts, 3, &rs);
    for (int i = 0; i < 3; ++i) {
      workload::YcsbWorkload::Load(ycsb_config, &rs->node(i).db());
    }
    rs->Start();

    std::vector<std::unique_ptr<exp::ClientSystem>> systems;
    for (int c = 0; c < 3; ++c) {
      systems.push_back(std::make_unique<exp::ClientSystem>(
          &loop, rng.Fork(), &network, rs.get(), hosts[c],
          driver::ClientOptions{}, core::BalancerConfig{}, ycsb_config));
      systems.back()->Start(kTotalClients / 3);
    }
    loop.RunUntil(kDuration);

    uint64_t reads = 0;
    for (int c = 0; c < 3; ++c) {
      fractions[c] = systems[c]->state().balance_fraction();
      reads += systems[c]->reads();
      std::printf(
          "client system %d: fraction %.2f, %.1f%% of its reads on "
          "secondaries\n",
          c, fractions[c], systems[c]->SecondaryPercent());
    }
    combined_reads_per_sec =
        static_cast<double>(reads) / sim::ToSeconds(kDuration);
  }

  // --- Run B: one centralised client system with all 45 app clients. ---
  double central_fraction = 0;
  double central_reads_per_sec = 0;
  {
    sim::EventLoop loop;
    sim::Rng rng(71);
    net::Network network(&loop, rng.Fork());
    std::vector<net::HostId> hosts;
    std::unique_ptr<repl::ReplicaSet> rs;
    BuildCluster(&loop, &rng, &network, &hosts, 1, &rs);
    for (int i = 0; i < 3; ++i) {
      workload::YcsbWorkload::Load(ycsb_config, &rs->node(i).db());
    }
    rs->Start();
    exp::ClientSystem system(&loop, rng.Fork(), &network, rs.get(), hosts[0],
                             driver::ClientOptions{}, core::BalancerConfig{},
                             ycsb_config);
    system.Start(kTotalClients);
    loop.RunUntil(kDuration);
    central_fraction = system.state().balance_fraction();
    central_reads_per_sec =
        static_cast<double>(system.reads()) / sim::ToSeconds(kDuration);
  }

  std::printf(
      "\ncombined (3 balancers): %.0f reads/s | centralised (1 balancer): "
      "%.0f reads/s, fraction %.2f\n",
      combined_reads_per_sec, central_reads_per_sec, central_fraction);

  const double spread =
      std::max({fractions[0], fractions[1], fractions[2]}) -
      std::min({fractions[0], fractions[1], fractions[2]});
  ShapeCheck(
      "independent balancers converge to compatible fractions (spread <= "
      "0.2)",
      spread <= 0.2);
  ShapeCheck("every system lands near the shared-load equilibrium (>= 0.5)",
             fractions[0] >= 0.5 && fractions[1] >= 0.5 &&
                 fractions[2] >= 0.5);
  ShapeCheck(
      "combined throughput of uncoordinated balancers matches the "
      "centralised one (within 10%)",
      combined_reads_per_sec >= 0.9 * central_reads_per_sec &&
          combined_reads_per_sec <= 1.1 * central_reads_per_sec);
  return 0;
}
