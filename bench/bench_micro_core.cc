// Google-benchmark microbenchmarks for the hot substrate components: the
// B+-tree, document values, the filter matcher, the histogram, the event
// loop, and one full simulated-second of a loaded cluster.

#include <benchmark/benchmark.h>

#include "doc/filter.h"
#include "exp/experiment.h"
#include "metrics/histogram.h"
#include "sim/event_loop.h"
#include "sim/random.h"
#include "store/btree.h"

namespace dcg {
namespace {

store::BTree::Payload MakeDoc(int64_t i) {
  return std::make_shared<const doc::Value>(
      doc::Value::Doc({{"_id", i}, {"v", i * 3}, {"s", "payload"}}));
}

void BM_BTreeInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    store::BTree tree;
    for (int64_t i = 0; i < n; ++i) {
      tree.Insert(doc::Value((i * 7919) % n), MakeDoc(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreePointLookup(benchmark::State& state) {
  const int64_t n = 100000;
  store::BTree tree;
  for (int64_t i = 0; i < n; ++i) tree.Insert(doc::Value(i), MakeDoc(i));
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(doc::Value(rng.UniformInt(0, n - 1))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreePointLookup);

void BM_BTreeRangeScan100(benchmark::State& state) {
  const int64_t n = 100000;
  store::BTree tree;
  for (int64_t i = 0; i < n; ++i) tree.Insert(doc::Value(i), MakeDoc(i));
  sim::Rng rng(1);
  for (auto _ : state) {
    auto it = tree.LowerBound(doc::Value(rng.UniformInt(0, n - 101)));
    int count = 0;
    while (it.Valid() && count < 100) {
      benchmark::DoNotOptimize(it.payload());
      it.Next();
      ++count;
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_BTreeRangeScan100);

void BM_ValueCompare(benchmark::State& state) {
  const doc::Value a = doc::Value::List({1, 2, "abc", 4.5});
  const doc::Value b = doc::Value::List({1, 2, "abd", 4.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compare(b));
  }
}
BENCHMARK(BM_ValueCompare);

void BM_FilterMatch(benchmark::State& state) {
  const doc::Filter filter = doc::Filter::And(
      {doc::Filter::Gte("age", doc::Value(18)),
       doc::Filter::Eq("addr.city", doc::Value("sydney"))});
  const doc::Value d = doc::Value::Doc(
      {{"_id", 1},
       {"age", 30},
       {"addr", doc::Value::Doc({{"city", "sydney"}})}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Matches(d));
  }
}
BENCHMARK(BM_FilterMatch);

void BM_HistogramAdd(benchmark::State& state) {
  metrics::Histogram h;
  sim::Rng rng(1);
  for (auto _ : state) {
    h.Add(rng.Exponential(1e6));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.ScheduleAt(sim::Micros(i * 37 % 1000), [&fired] { ++fired; });
    }
    loop.RunAll();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleRun);

// One simulated second of a loaded 3-node cluster under Decongestant —
// the end-to-end cost that bounds how fast experiments run.
void BM_SimulatedSecondYcsb(benchmark::State& state) {
  exp::ExperimentConfig config;
  config.seed = 99;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 40, 0.95}};
  config.duration = sim::Seconds(1);
  auto experiment = std::make_unique<exp::Experiment>(config);
  experiment->Run();  // prime: loads data, starts loops
  sim::Time horizon = sim::Seconds(1);
  for (auto _ : state) {
    horizon += sim::Seconds(1);
    experiment->loop().RunUntil(horizon);
  }
  state.SetLabel("sim-seconds/iter=1");
}
BENCHMARK(BM_SimulatedSecondYcsb)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dcg

BENCHMARK_MAIN();
