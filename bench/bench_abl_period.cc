// Ablation A4: the control period (10 s in the paper). Shorter periods
// react faster to workload shifts but decide on fewer latency samples
// (noisier medians); longer periods are smooth but slow to adapt. We
// measure (a) time to reach a 60 % fraction after a congestion step and
// (b) steady-state fraction volatility, per period length.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Ablation A4", "control period sweep: reaction time vs stability");

  const double periods_s[] = {2, 5, 10, 30};
  std::printf("%10s %16s %14s %12s\n", "period(s)", "t(frac>=0.6)(s)",
              "volatility", "reads/s");

  double reaction[4], volatility[4];
  for (int i = 0; i < 4; ++i) {
    exp::ExperimentConfig config;
    config.seed = 63;
    config.system = exp::SystemType::kDecongestant;
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, 45, 0.95}};  // congested primary from the start
    config.duration = sim::Seconds(600);
    config.warmup = sim::Seconds(300);
    config.balancer.period = sim::Seconds(periods_s[i]);

    exp::Experiment experiment(config);
    double reach_time = -1;
    experiment.balancer()->SetPeriodCallback(
        [&](const core::ReadBalancer::PeriodStats& stats) {
          if (reach_time < 0 && stats.published_fraction >= 0.6) {
            reach_time = sim::ToSeconds(stats.at);
          }
        });
    experiment.Run();

    double delta_sum = 0;
    int n = 0;
    double prev = -1;
    for (const auto& row : experiment.rows()) {
      if (row.start < sim::Seconds(300)) continue;
      if (prev >= 0) {
        delta_sum += std::abs(row.balance_fraction - prev);
        ++n;
      }
      prev = row.balance_fraction;
    }
    reaction[i] = reach_time;
    volatility[i] = delta_sum / n;
    std::printf("%10.0f %16.0f %14.3f %12.0f\n", periods_s[i], reach_time,
                volatility[i], experiment.Summarize().read_throughput);
  }

  ShapeCheck("shorter periods reach the target fraction sooner",
             reaction[0] > 0 && reaction[0] < reaction[3]);
  ShapeCheck("every period length eventually shifts load to secondaries",
             reaction[0] > 0 && reaction[1] > 0 && reaction[2] > 0 &&
                 reaction[3] > 0);
  return 0;
}
