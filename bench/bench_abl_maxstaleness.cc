// Ablation: Decongestant's staleness bound vs MongoDB's built-in
// maxStalenessSeconds (§2.2). MongoDB requires maxStalenessSeconds >= 90;
// the paper argues Decongestant bounds staleness far tighter (e.g. 10 s).
// We compare three clients under the same staleness-prone TPC-C load:
//   (1) secondaryPreferred + maxStalenessSeconds=90 (the MongoDB way),
//   (2) Decongestant with a 10 s bound,
//   (3) hard-coded Secondary (no bound at all).

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Ablation: maxStalenessSeconds",
         "MongoDB's >=90 s knob vs Decongestant's fine-grained bound");

  struct Variant {
    const char* name;
    exp::SystemType system;
    int64_t driver_max_staleness;  // -1: off
    int64_t dcg_bound;
  };
  const Variant variants[] = {
      {"maxStaleness=90", exp::SystemType::kSecondary, 90, 10},
      {"decongestant(10s)", exp::SystemType::kDecongestant, -1, 10},
      {"secondary(unbounded)", exp::SystemType::kSecondary, -1, 10},
  };

  std::printf("%-22s %12s %12s %12s\n", "client", "SL txn/s",
              "p80stale(s)", "maxstale(s)");
  double max_stale[3], p80_stale[3], sl[3];
  for (int v = 0; v < 3; ++v) {
    exp::ExperimentConfig config;
    config.seed = 64;
    config.system = variants[v].system;
    config.kind = exp::WorkloadKind::kTpcc;
    config.phases = {{0, ScaledClients(120), 0.5}};
    config.duration = sim::Seconds(400);
    config.warmup = sim::Seconds(60);
    config.balancer.stale_bound_seconds = variants[v].dcg_bound;
    config.client_options.max_staleness_seconds =
        variants[v].driver_max_staleness;
    ApplyTpccDiskProfile(&config);

    exp::Experiment experiment(config);
    experiment.Run();
    const exp::Summary summary = experiment.Summarize();
    sl[v] = summary.stock_level_throughput;
    p80_stale[v] = summary.p80_staleness_s;
    max_stale[v] = summary.max_staleness_s;
    std::printf("%-22s %12.0f %12.2f %12.2f\n", variants[v].name, sl[v],
                p80_stale[v], max_stale[v]);
  }

  Note("\nThe checkpoint-driven lag here peaks in the tens of seconds: far "
       "below 90, so the MongoDB knob never\nintervenes and behaves like "
       "the unbounded baseline, while Decongestant enforces its 10 s "
       "promise.");
  ShapeCheck(
      "with maxStaleness=90 clients still observe the full checkpoint lag "
      "(knob too coarse)",
      max_stale[0] > 12.0);
  ShapeCheck("Decongestant holds the 10 s promise (+ granularity)",
             max_stale[1] <= 12.0);
  ShapeCheck(
      "Decongestant's throughput stays in the same league as the "
      "unbounded secondary client",
      sl[1] >= 0.7 * sl[2]);
  return 0;
}
