// Ablation A3: the ratio dead band [LOWRATIO, HIGHRATIO] = [0.75, 1.30].
// Without a dead band, any persistent sub-1.3x latency asymmetry (e.g.
// the primary also serving writes) keeps nudging the fraction until it
// rails at the 90 % cap — shipping most reads to secondaries at light
// load, where that buys nothing but staleness exposure. The paper's band
// treats small asymmetries as "balanced" and stays near the
// freshness-friendly floor. Downward probing is disabled to isolate the
// band's own behaviour.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Ablation A3", "dead-band width sweep under steady YCSB-B load");

  struct Band {
    const char* name;
    double low, high;
  };
  const Band bands[] = {
      {"none (1.0/1.0)", 1.0, 1.0 + 1e-9},
      {"narrow (0.95/1.05)", 0.95, 1.05},
      {"paper (0.75/1.30)", 0.75, 1.30},
      {"wide (0.4/2.5)", 0.4, 2.5},
  };

  std::printf("%-20s %12s %14s %10s\n", "band", "reads/s", "volatility",
              "sec(%)");
  double volatility[4], throughput[4], sec_pct[4];
  for (int b = 0; b < 4; ++b) {
    exp::ExperimentConfig config;
    config.seed = 62;
    config.system = exp::SystemType::kDecongestant;
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, 12, 0.95}};
    config.duration = sim::Seconds(600);
    config.warmup = sim::Seconds(200);  // judge steady-state behaviour
    config.balancer.low_ratio = bands[b].low;
    config.balancer.high_ratio = bands[b].high;
    // Disable the downward probe: its deliberate periodic -DELTA step
    // would mask the band's own (noise-driven) movement.
    config.balancer.downward_probe = false;

    exp::Experiment experiment(config);
    experiment.Run();

    double delta_sum = 0;
    int n = 0;
    double prev = -1;
    for (const auto& row : experiment.rows()) {
      if (row.start < sim::Seconds(200)) continue;
      if (prev >= 0) {
        delta_sum += std::abs(row.balance_fraction - prev);
        ++n;
      }
      prev = row.balance_fraction;
    }
    volatility[b] = delta_sum / n;
    const exp::Summary summary = experiment.Summarize();
    throughput[b] = summary.read_throughput;
    sec_pct[b] = summary.secondary_percent;
    std::printf("%-20s %12.0f %14.3f %10.1f\n", bands[b].name,
                summary.read_throughput, volatility[b], sec_pct[b]);
  }

  ShapeCheck(
      "without a dead band the fraction rails at the cap (~90% secondary "
      "reads at light load)",
      sec_pct[0] >= 80.0 && sec_pct[1] >= 80.0);
  ShapeCheck(
      "the paper's band keeps light-load reads mostly on the fresh "
      "primary",
      sec_pct[2] <= 40.0);
  ShapeCheck(
      "the paper's band does not sacrifice throughput for that freshness",
      throughput[2] >= 0.95 * std::max(throughput[0], throughput[1]));
  return 0;
}
