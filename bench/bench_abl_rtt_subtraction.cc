// Ablation A1: the − P50(RTT) term of the Server-Side Latency estimate
// (§3.3.1). With asymmetric availability-zone RTTs and light reads, raw
// client latencies make the nearer node look faster even when server-side
// times are equal — steering the balancer wrongly. The experiment widens
// the AZ spread (client co-located with the primary) and compares the
// fraction chosen with and without the subtraction at *light* load, where
// the correct answer is the 10 % floor via downward probing, undisturbed
// by phantom "secondary congestion".

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Ablation A1", "Server-Side Latency: subtract P50(RTT) or not");
  Note("client co-located with the primary: RTT 0.3 ms to the primary, "
       "2.6/3.0 ms to the secondaries.\nworkload: moderate YCSB-B, where "
       "server-side times on primary vs secondaries are comparable.");

  double avg_fraction[2] = {0, 0};
  double avg_ratio[2] = {0, 0};
  for (int variant = 0; variant < 2; ++variant) {
    exp::ExperimentConfig config;
    config.seed = 60;
    config.system = exp::SystemType::kDecongestant;
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, 20, 0.95}};
    config.duration = sim::Seconds(400);
    config.warmup = sim::Seconds(100);
    config.balancer.subtract_rtt = variant == 0;
    config.client_node_rtt = {sim::Millis(0.3), sim::Millis(2.6),
                              sim::Millis(3.0)};

    exp::Experiment experiment(config);
    double ratio_sum = 0;
    int ratio_n = 0;
    experiment.balancer()->SetPeriodCallback(
        [&](const core::ReadBalancer::PeriodStats& stats) {
          if (stats.ratio_valid) {
            ratio_sum += stats.ratio;
            ++ratio_n;
          }
        });
    experiment.Run();

    double fraction_sum = 0;
    int n = 0;
    for (const auto& row : experiment.rows()) {
      if (row.start < sim::Seconds(100)) continue;
      fraction_sum += row.balance_fraction;
      ++n;
    }
    avg_fraction[variant] = fraction_sum / n;
    avg_ratio[variant] = ratio_n > 0 ? ratio_sum / ratio_n : 0;
    std::printf("%-24s avg fraction %.3f, avg latency ratio %.3f\n",
                variant == 0 ? "[with subtraction]" : "[without subtraction]",
                avg_fraction[variant], avg_ratio[variant]);
  }

  Note("\nWithout the subtraction, the secondaries' extra ~2.5 ms of RTT "
       "reads as server congestion:\nthe ratio is biased low, pinning the "
       "fraction at the floor even when sharing would be free;\nwith the "
       "subtraction the ratio hovers near the true server-side balance.");
  ShapeCheck(
      "raw latencies bias the ratio lower than the RTT-corrected one",
      avg_ratio[1] < avg_ratio[0] - 0.1);
  ShapeCheck(
      "the RTT-corrected ratio is near 1 at balanced light load",
      avg_ratio[0] > 0.7 && avg_ratio[0] < 1.4);
  return 0;
}
