// Figure 10: a very low staleness limit (3 s) under read-write TPC-C with
// 200 clients. Challenging because MongoDB's staleness reporting
// granularity is one second, so the balancer has little headroom; the
// paper observed occasional 4 s samples (bound + 1 s).

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Figure 10", "bounding staleness: TPC-C, 200 clients, bound = 3 s");
  std::printf("paper clients: 200 (sim %d)\n", ScaledClients(200));

  exp::ExperimentConfig config;
  config.seed = 50;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kTpcc;
  config.phases = {{0, ScaledClients(200), 0.5}};
  config.duration = sim::Seconds(400);
  config.warmup = sim::Seconds(60);
  config.balancer.stale_bound_seconds = 3;
  ApplyTpccDiskProfile(&config);

  exp::Experiment experiment(config);
  experiment.Run();

  std::printf("\n%10s %14s\n", "time(s)", "client-seen(s)");
  int over_bound = 0, over_bound_plus1 = 0, total = 0;
  double max_seen = 0;
  for (const auto& [at, staleness] : experiment.s_samples()) {
    if (sim::ToSeconds(at) < 60) continue;
    ++total;
    if (staleness > 3.0) ++over_bound;
    if (staleness > 4.5) ++over_bound_plus1;
    max_seen = std::max(max_seen, staleness);
    if (staleness >= 1.0) {
      std::printf("%10.0f %14.2f\n", sim::ToSeconds(at), staleness);
    }
  }

  std::printf("\nsamples: %d, above 3 s: %d, above 4.5 s: %d, max: %.2f s\n",
              total, over_bound, over_bound_plus1, max_seen);
  ShapeCheck(
      "client-observed staleness is mostly bounded at 3 s (a few bound+1 "
      "points allowed, as in the paper)",
      total > 0 &&
          static_cast<double>(over_bound) / total < 0.05 &&
          over_bound_plus1 == 0);
  ShapeCheck("the gate fired repeatedly under the tight bound",
             experiment.balancer()->stale_zero_events() >= 1);
  return 0;
}
