// Perf-baseline runner for the simulation substrate.
//
// Runs a fixed set of deterministic workloads over the hot components
// (event loop, B+-tree, filter matcher, update applier, collection query
// paths, and one full simulated second of a loaded cluster) and reports
// items/sec for each. Two modes:
//
//   bench_baseline --out BENCH_core.json        # record a baseline
//   bench_baseline --compare BENCH_core.json    # re-run and fail (exit 1)
//                                               # on regression beyond the
//                                               # noise threshold
//
// The committed BENCH_core.json is the repo's perf trajectory: CI re-runs
// this binary and compares against it, so a change that slows the
// substrate down beyond --threshold (a *ratio*, e.g. 0.5 = "half as fast")
// fails the build. Thresholds are deliberately loose because absolute
// numbers move between machines; the gate catches collapses, not noise.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "doc/filter.h"
#include "doc/update.h"
#include "doc/value.h"
#include "driver/client.h"
#include "driver/pool/connection_pool.h"
#include "exp/experiment.h"
#include "net/network.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "repl/replica_set.h"
#include "sim/event_loop.h"
#include "sim/random.h"
#include "store/btree.h"
#include "store/collection.h"

namespace dcg {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BenchResult {
  std::string name;
  double items_per_sec = 0;
  uint64_t items = 0;
  double seconds = 0;
};

// Runs `body` (which returns the number of items it processed) repeatedly
// until at least `min_time` seconds of measured work have accumulated.
// One untimed call warms caches first.
template <typename Body>
BenchResult Measure(const std::string& name, double min_time, Body&& body) {
  body();  // warmup
  BenchResult r;
  r.name = name;
  const double start = NowSeconds();
  double elapsed = 0;
  do {
    r.items += body();
    elapsed = NowSeconds() - start;
  } while (elapsed < min_time);
  r.seconds = elapsed;
  r.items_per_sec = static_cast<double>(r.items) / elapsed;
  return r;
}

// --- Workload setup helpers -------------------------------------------------

store::BTree::Payload MakeDoc(int64_t i) {
  return std::make_shared<const doc::Value>(
      doc::Value::Doc({{"_id", i}, {"v", i * 3}, {"s", "payload"}}));
}

std::unique_ptr<store::Collection> MakeScoredCollection(int n) {
  auto coll = std::make_unique<store::Collection>("bench");
  sim::Rng rng(7);
  for (int i = 0; i < n; ++i) {
    coll->Insert(doc::Value::Doc({{"_id", i},
                                  {"age", rng.UniformInt(0, 99)},
                                  {"score", rng.UniformInt(0, 999999)},
                                  {"w", i % 10},
                                  {"d", (i / 10) % 10}}));
  }
  return coll;
}

// --- Benchmarks -------------------------------------------------------------

uint64_t EventLoopScheduleRun() {
  sim::EventLoop loop;
  uint64_t fired = 0;
  for (int i = 0; i < 10000; ++i) {
    loop.ScheduleAt(sim::Micros(i * 37 % 1000), [&fired] { ++fired; });
  }
  loop.RunAll();
  return fired;
}

uint64_t EventLoopChurn() {
  // Timer-heavy pattern: a window of pending timeouts that are constantly
  // cancelled and rescheduled (what heartbeats, retries and watchdogs do).
  constexpr int kWindow = 1024;
  constexpr int kCycles = 65536;
  sim::EventLoop loop;
  uint64_t fired = 0;
  std::vector<sim::EventId> ids(kWindow);
  for (int i = 0; i < kWindow; ++i) {
    ids[i] = loop.ScheduleAt(sim::Seconds(1000) + i, [&fired] { ++fired; });
  }
  for (int i = 0; i < kCycles; ++i) {
    const int slot = i % kWindow;
    loop.Cancel(ids[slot]);
    ids[slot] =
        loop.ScheduleAt(sim::Seconds(1000) + kWindow + i, [&fired] { ++fired; });
  }
  loop.RunAll();
  if (fired != kWindow) std::abort();  // accounting must survive the churn
  return kCycles;
}

uint64_t BTreeInsert10k() {
  constexpr int64_t n = 10000;
  store::BTree tree;
  for (int64_t i = 0; i < n; ++i) {
    tree.Insert(doc::Value((i * 7919) % n), MakeDoc(i));
  }
  return tree.size();
}

uint64_t BTreePointLookup(const store::BTree& tree, sim::Rng& rng, int64_t n) {
  uint64_t found = 0;
  for (int i = 0; i < 1000; ++i) {
    if (tree.Find(doc::Value(rng.UniformInt(0, n - 1))) != nullptr) ++found;
  }
  if (found != 1000) std::abort();
  return 1000;
}

uint64_t FilterMatchNested(const doc::Filter& filter, const doc::Value& d) {
  uint64_t matched = 0;
  for (int i = 0; i < 10000; ++i) {
    if (filter.Matches(d)) ++matched;
  }
  if (matched != 10000) std::abort();
  return matched;
}

uint64_t UpdateApplyDotted(const doc::UpdateSpec& spec, doc::Value* target) {
  for (int i = 0; i < 1000; ++i) {
    if (!spec.Apply(target)) std::abort();
  }
  return 1000;
}

// A minimal client + 3-node replica set wired through the command bus,
// for measuring the per-op cost of the wire-protocol command layer
// itself (dispatch, reply routing, retry/hedge state machines). The
// client is deliberately not Start()ed: no hello/probe loops means the
// event loop drains between batches, and ops run off the seed topology.
struct CommandRig {
  sim::EventLoop loop;
  net::HostId client_host = 0;
  std::vector<net::HostId> hosts;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<repl::ReplicaSet> rs;
  std::unique_ptr<driver::MongoClient> client;

  explicit CommandRig(driver::ClientOptions options,
                      sim::Duration link_jitter = 0) {
    network = std::make_unique<net::Network>(&loop, sim::Rng(11));
    client_host = network->AddHost("client");
    for (int i = 0; i < 3; ++i) {
      hosts.push_back(network->AddHost("n" + std::to_string(i)));
      network->SetLink(client_host, hosts[i], sim::Millis(1), link_jitter);
    }
    repl::ReplicaSetParams params;
    server::ServerParams server_params;
    server_params.service.sigma = 0.0;
    rs = std::make_unique<repl::ReplicaSet>(&loop, sim::Rng(12),
                                            network.get(), params,
                                            server_params, hosts);
    client = std::make_unique<driver::MongoClient>(
        &loop, sim::Rng(13), rs->command_bus(), client_host, options);
  }

  // One closed loop of `n` point reads; returns after the loop drains.
  uint64_t RunReads(int n, driver::ReadPreference pref) {
    return RunReadsConcurrent(n, 1, pref);
  }

  // `n` point reads with up to `fanout` outstanding at once — `fanout`
  // closed loops sharing one client, so a size-capped connection pool
  // sees sustained checkout contention.
  uint64_t RunReadsConcurrent(int n, int fanout, driver::ReadPreference pref) {
    int issued = 0, completed = 0;
    std::function<void()> issue = [&] {
      if (issued == n) return;
      ++issued;
      client->Read(pref, server::OpClass::kPointRead,
                   [](const store::Database&) {},
                   [&](const driver::MongoClient::ReadResult& r) {
                     if (!r.ok) std::abort();
                     ++completed;
                     issue();
                   });
    };
    for (int i = 0; i < fanout && i < n; ++i) issue();
    loop.RunAll();
    if (completed != n) std::abort();
    return static_cast<uint64_t>(n);
  }

  // `n` single-document inserts with up to `fanout` outstanding at once.
  // With batching enabled, concurrent writes to the primary coalesce and
  // the replication stream applies them as amortised batches.
  uint64_t RunWritesConcurrent(int n, int fanout) {
    int issued = 0, completed = 0;
    std::function<void()> issue = [&] {
      if (issued == n) return;
      const int64_t id = next_write_id++;
      ++issued;
      client->Write(server::OpClass::kInsert,
                    [id](repl::TxnContext* ctx) {
                      ctx->Insert("bench", doc::Value::Doc({{"_id", id}}));
                    },
                    [&](const driver::MongoClient::WriteResult& r) {
                      if (!r.ok) std::abort();
                      ++completed;
                      issue();
                    });
    };
    for (int i = 0; i < fanout && i < n; ++i) issue();
    loop.RunAll();
    if (completed != n) std::abort();
    return static_cast<uint64_t>(n);
  }

  int64_t next_write_id = 1;
};

}  // namespace

int BenchMain(int argc, char** argv) {
  std::string out_path;
  std::string compare_path;
  std::string summary_path;
  double threshold = 0.85;
  double min_time = 1.0;
  bool allow_debug = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--compare") {
      compare_path = next();
    } else if (arg == "--summary") {
      summary_path = next();
    } else if (arg == "--threshold") {
      threshold = std::stod(next());
    } else if (arg == "--min-time") {
      min_time = std::stod(next());
    } else if (arg == "--allow-debug") {
      allow_debug = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_baseline [--out FILE] [--compare FILE]\n"
                   "                      [--summary FILE] [--threshold R]\n"
                   "                      [--min-time S] [--allow-debug]\n");
      return 2;
    }
  }

#ifndef NDEBUG
  if (!allow_debug) {
    std::fprintf(stderr,
                 "bench_baseline: refusing to record/compare numbers from a "
                 "non-optimized build (pass --allow-debug to override)\n");
    return 2;
  }
#endif

  // --- Run every benchmark --------------------------------------------------
  std::vector<BenchResult> results;
  auto run = [&](const std::string& name, auto&& body) {
    BenchResult r = Measure(name, min_time, body);
    std::printf("%-28s %14.0f items/s   (%llu items in %.2fs)\n", name.c_str(),
                r.items_per_sec, static_cast<unsigned long long>(r.items),
                r.seconds);
    std::fflush(stdout);
    results.push_back(std::move(r));
  };

  run("event_loop_schedule_run", [] { return EventLoopScheduleRun(); });
  run("event_loop_churn", [] { return EventLoopChurn(); });
  run("btree_insert_10k", [] { return BTreeInsert10k(); });

  {
    constexpr int64_t n = 100000;
    auto tree = std::make_shared<store::BTree>();
    for (int64_t i = 0; i < n; ++i) tree->Insert(doc::Value(i), MakeDoc(i));
    auto rng = std::make_shared<sim::Rng>(1);
    run("btree_point_lookup",
        [tree, rng] { return BTreePointLookup(*tree, *rng, n); });
  }

  {
    const doc::Filter filter = doc::Filter::And(
        {doc::Filter::Gte("age", doc::Value(18)),
         doc::Filter::Eq("addr.city", doc::Value("sydney"))});
    const doc::Value d = doc::Value::Doc(
        {{"_id", 1},
         {"age", 30},
         {"addr", doc::Value::Doc({{"city", "sydney"}})}});
    run("filter_match_nested",
        [&filter, &d] { return FilterMatchNested(filter, d); });
  }

  {
    auto spec = std::make_shared<doc::UpdateSpec>();
    spec->Inc("a.b.c", doc::Value(1)).Set("top", doc::Value("x"));
    auto target = std::make_shared<doc::Value>(doc::Value::Doc(
        {{"_id", 1},
         {"top", "y"},
         {"a", doc::Value::Doc({{"b", doc::Value::Doc({{"c", 0}})}})}}));
    run("update_apply_dotted",
        [spec, target] { return UpdateApplyDotted(*spec, target.get()); });
  }

  {
    std::shared_ptr<store::Collection> coll = MakeScoredCollection(10000);
    run("collection_count", [coll] {
      const size_t c = coll->Count(doc::Filter::Gte("age", doc::Value(50)));
      if (c == 0) std::abort();
      return 10000;  // documents scanned
    });
    run("find_with_topk", [coll] {
      store::FindOptions options;
      options.sort_path = "score";
      options.sort_descending = true;
      options.limit = 10;
      auto out = coll->FindWith(doc::Filter::True(), options);
      if (out.size() != 10) std::abort();
      return 10000;  // documents considered
    });
    coll->CreateIndex("by_wd", {"w", "d"});
    run("index_equality_find", [coll] {
      uint64_t docs = 0;
      for (int i = 0; i < 100; ++i) {
        auto out = coll->Find(doc::Filter::And(
            {doc::Filter::Eq("w", doc::Value(i % 10)),
             doc::Filter::Eq("d", doc::Value((i / 10) % 10))}));
        docs += out.size();
      }
      if (docs != 10000) std::abort();
      return docs;
    });
  }

  {
    // Command-layer round trip: the full typed find path — selection,
    // OpContext stamping, bus send, CommandService dispatch, reply
    // routing, latency accounting — with nothing going wrong.
    auto rig = std::make_shared<CommandRig>(driver::ClientOptions{});
    run("command_round_trip", [rig] {
      return rig->RunReads(1000, driver::ReadPreference::kPrimary);
    });
  }

  {
    // Tracing overhead pair, measured as interleaved best-of-3 rounds.
    //
    // "off" is the command_round_trip loop with a tracer attached the way
    // Experiment always attaches one and left disabled — the gap to
    // command_round_trip is every probe site's `enabled` branch (the
    // "≤2% when off" claim). "on" records the full span tree per read
    // (op, attempt, checkout, two wire legs, server service), cleared per
    // batch so memory stays bounded while the record cost is paid.
    //
    // The original bench built one rig per side and measured each once,
    // back-to-back — and the recorded baseline shipped with "off" slower
    // than "on". Two rigs never hold allocator and code-layout state
    // equal, and sequential measurement adds machine drift (frequency
    // ramp, background load) on top. So: ONE rig, ONE tracer toggled
    // between rounds, interleaved best-of-3 per side, and the invariant
    // off >= on asserted here instead of being left to the cross-machine
    // regression gate.
    auto rig = std::make_shared<CommandRig>(driver::ClientOptions{});
    auto tracer = std::make_shared<obs::Tracer>();
    rig->rs->SetTracer(tracer.get());
    rig->client->SetTracer(tracer.get());
    auto off_body = [rig, tracer] {
      const uint64_t n =
          rig->RunReads(1000, driver::ReadPreference::kPrimary);
      if (!tracer->spans().empty()) std::abort();  // disabled records 0
      return n;
    };
    auto on_body = [rig, tracer] {
      const uint64_t n =
          rig->RunReads(1000, driver::ReadPreference::kPrimary);
      if (tracer->spans().size() < 1000) std::abort();  // spans must flow
      tracer->Clear();
      return n;
    };
    BenchResult off, on;
    for (int round = 0; round < 3; ++round) {
      tracer->Disable();
      tracer->Clear();
      const BenchResult o = Measure("trace_overhead_off", min_time, off_body);
      if (o.items_per_sec > off.items_per_sec) off = o;
      tracer->Enable();
      const BenchResult e = Measure("trace_overhead_on", min_time, on_body);
      if (e.items_per_sec > on.items_per_sec) on = e;
    }
    if (off.items_per_sec < on.items_per_sec) {
      std::fprintf(stderr,
                   "bench_baseline: trace_overhead inverted — off %.0f < "
                   "on %.0f items/s after interleaved best-of-3\n",
                   off.items_per_sec, on.items_per_sec);
      return 1;
    }
    for (const BenchResult& r : {off, on}) {
      std::printf("%-28s %14.0f items/s   (%llu items in %.2fs, best of 3)\n",
                  r.name.c_str(), r.items_per_sec,
                  static_cast<unsigned long long>(r.items), r.seconds);
      std::fflush(stdout);
      results.push_back(r);
    }
  }

  {
    // SLO evaluation on the hot path: the command_round_trip loop with a
    // three-objective engine (the --slo=default bundle) fed one
    // freshness + latency + success observation per read and evaluated
    // once per 1000-read batch — the same cadence Experiment uses (one
    // Evaluate per report period, thousands of ops in between). Gated
    // within noise of command_round_trip: the observe path is two integer
    // bumps and the evaluation is O(rules x window buckets).
    auto rig = std::make_shared<CommandRig>(driver::ClientOptions{});
    auto engine = std::make_shared<obs::SloEngine>(sim::Seconds(10));
    std::vector<obs::SloSpec> specs;
    std::string slo_error;
    if (!obs::ParseSloSpecs("default", obs::SloDefaults{}, &specs,
                            &slo_error)) {
      std::abort();
    }
    for (const obs::SloSpec& spec : specs) engine->AddSlo(spec);
    auto eval_now = std::make_shared<sim::Time>(0);
    run("slo_eval", [rig, engine, eval_now] {
      const uint64_t n =
          rig->RunReads(1000, driver::ReadPreference::kPrimary);
      for (uint64_t i = 0; i < n; ++i) {
        engine->ObserveOutcome(true);
        engine->ObserveReadLatencyMs(2.0);
        engine->ObserveServedAge(0.5, /*used_secondary=*/(i & 1) != 0);
      }
      *eval_now += sim::Seconds(10);
      engine->Evaluate(*eval_now);
      if (engine->firing_count() != 0) std::abort();  // healthy feed
      return n;
    });
  }

  {
    // Retry storm: 40% loss in each direction on the client<->primary
    // link, so most ops burn attempt timeouts and backoff retries before
    // completing. Measures the retry state machine under duress.
    driver::ClientOptions options;
    options.attempt_timeout = sim::Millis(20);
    options.retry_backoff_base = sim::Millis(1);
    options.retry_backoff_max = sim::Millis(8);
    auto rig = std::make_shared<CommandRig>(options);
    net::Network::LinkFault fault;
    fault.drop_probability = 0.4;
    rig->network->SetLinkFault(rig->client_host, rig->hosts[0], fault);
    rig->network->SetLinkFault(rig->hosts[0], rig->client_host, fault);
    run("command_retry_storm", [rig] {
      const uint64_t n = rig->RunReads(300, driver::ReadPreference::kPrimary);
      if (rig->client->op_counters().retries_total == 0) std::abort();
      return n;
    });
  }

  {
    // Hedged reads: jittered links give secondary reads a latency tail;
    // the tail ops fire a hedge to the next-best secondary. Measures the
    // hedge timer + duplicate-reply suppression path.
    driver::ClientOptions options;
    options.hedged_reads = true;
    options.hedge_quantile = 0.7;
    options.hedge_min_delay = sim::Micros(500);
    auto rig = std::make_shared<CommandRig>(options, sim::Millis(3));
    run("command_hedged_read", [rig] {
      const uint64_t n =
          rig->RunReads(500, driver::ReadPreference::kSecondary);
      if (rig->client->op_counters().hedges_sent == 0) std::abort();
      return n;
    });
  }

  {
    // Pool checkout fast path: a size-capped pool with all connections
    // warm, driven by a single closed loop — every checkout is satisfied
    // synchronously from the idle list, every check-in returns LIFO.
    // Measures the bookkeeping a healthy pooled op pays per round trip.
    auto loop = std::make_shared<sim::EventLoop>();
    driver::pool::PoolOptions options;
    options.max_pool_size = 8;
    auto pool = std::make_shared<driver::pool::ConnectionPool>(loop.get(),
                                                               options);
    run("pool_checkout", [loop, pool] {
      for (int i = 0; i < 10000; ++i) {
        uint64_t conn = 0;
        pool->CheckOut(
            [&conn](const driver::pool::ConnectionPool::Checkout& co) {
              if (!co.ok) std::abort();
              conn = co.conn_id;
            });
        if (conn == 0) std::abort();  // warm pool must deliver synchronously
        pool->CheckIn(conn);
      }
      loop->RunAll();
      return 10000;
    });
  }

  {
    // Pool starvation: 64 concurrent closed loops over a pool of ONE
    // connection per node — every op queues behind the rest, exercising
    // the FIFO wait queue and the serve-on-check-in handoff under
    // sustained contention.
    driver::ClientOptions options;
    options.pool.max_pool_size = 1;
    auto rig = std::make_shared<CommandRig>(options);
    run("pool_starvation", [rig] {
      const uint64_t n =
          rig->RunReadsConcurrent(400, 64, driver::ReadPreference::kPrimary);
      if (rig->client->PoolTotals().max_queue_depth == 0) std::abort();
      return n;
    });
  }

  {
    // Envelope flush path: 16 concurrent closed loops with batch_max_ops
    // 16, so full envelopes form back-to-back. Measures the coalescing
    // buffer, flush trigger, shared checkout, per-rider dispatch and
    // envelope settle bookkeeping per batched op.
    driver::ClientOptions options;
    options.batching_enabled = true;
    options.batch_max_ops = 16;
    options.batch_max_delay = sim::Micros(200);
    auto rig = std::make_shared<CommandRig>(options);
    run("envelope_flush", [rig] {
      const uint64_t n =
          rig->RunReadsConcurrent(1000, 16, driver::ReadPreference::kPrimary);
      if (rig->client->op_counters().envelopes_sent == 0) std::abort();
      return n;
    });
  }

  {
    // Batched write throughput: concurrent inserts coalescing into
    // envelopes, committed through the primary and applied downstream as
    // amortised oplog batches — the write-side half of the Fig. 5
    // ceiling-raise claim.
    driver::ClientOptions options;
    options.batching_enabled = true;
    options.batch_max_ops = 16;
    options.batch_max_delay = sim::Micros(200);
    auto rig = std::make_shared<CommandRig>(options);
    run("batched_write_throughput", [rig] {
      const uint64_t n = rig->RunWritesConcurrent(500, 32);
      if (rig->client->op_counters().ops_batched == 0) std::abort();
      return n;
    });
  }

  {
    // One simulated second of a loaded 3-node cluster under Decongestant —
    // the end-to-end cost that bounds how fast every paper figure runs.
    // items = simulator events executed.
    exp::ExperimentConfig config;
    config.seed = 99;
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, 40, 0.95}};
    config.duration = sim::Seconds(1);
    auto experiment = std::make_shared<exp::Experiment>(config);
    experiment->Run();  // prime: loads data, starts client loops
    auto horizon = std::make_shared<sim::Time>(sim::Seconds(1));
    run("sim_second_ycsb", [experiment, horizon] {
      *horizon += sim::Seconds(1);
      return experiment->loop().RunUntil(*horizon);
    });
  }

  {
    // Same loaded second but on a 2-shard cluster behind the mongos
    // router: every op pays the client→router hop, chunk resolution,
    // admission stamping, and the per-shard sub-client dispatch. The gap
    // to sim_second_ycsb is the price of the routing tier.
    exp::ExperimentConfig config;
    config.seed = 99;
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, 40, 0.95}};
    config.duration = sim::Seconds(1);
    config.shards = 2;
    auto experiment = std::make_shared<exp::Experiment>(config);
    experiment->Run();  // prime: loads data, starts router + client loops
    auto horizon = std::make_shared<sim::Time>(sim::Seconds(1));
    run("sim_second_sharded", [experiment, horizon] {
      *horizon += sim::Seconds(1);
      return experiment->loop().RunUntil(*horizon);
    });
  }

  // --- Write the baseline file ---------------------------------------------
  if (!out_path.empty()) {
    std::ostringstream json;
    char datebuf[64] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc) != nullptr) {
      std::strftime(datebuf, sizeof(datebuf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    }
    json << "{\n";
    json << "  \"schema\": 1,\n";
    json << "  \"date_utc\": \"" << datebuf << "\",\n";
#ifdef DCG_BUILD_TYPE
    json << "  \"build_type\": \"" << DCG_BUILD_TYPE << "\",\n";
#endif
    json << "  \"compiler\": \"" << __VERSION__ << "\",\n";
    json << "  \"min_time_s\": " << min_time << ",\n";
    json << "  \"benchmarks\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const BenchResult& r = results[i];
      json << "    {\"name\": \"" << r.name << "\", \"items_per_sec\": "
           << static_cast<uint64_t>(r.items_per_sec) << "}"
           << (i + 1 < results.size() ? ",\n" : "\n");
    }
    json << "  ]\n}\n";
    std::ofstream f(out_path);
    f << json.str();
    if (!f) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  // --- Compare against a committed baseline --------------------------------
  if (!compare_path.empty()) {
    std::ifstream f(compare_path);
    if (!f) {
      std::fprintf(stderr, "cannot open baseline %s\n", compare_path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    const std::string text = buf.str();

    // Minimal parse of this tool's own output format: pairs of
    // "name": "<bench>" ... "items_per_sec": <number>. The committed file
    // may carry extra fields (e.g. pre_change_items_per_sec); they are
    // ignored because the exact quoted keys below are matched.
    struct CompareRow {
      std::string name;
      double baseline = 0;
      double current = 0;
      double ratio = 0;
      bool pass = false;
      bool missing = false;  // in the baseline but not in this run
    };
    std::vector<CompareRow> rows;
    std::vector<std::string> offenders;
    int compared = 0;
    size_t pos = 0;
    while ((pos = text.find("\"name\": \"", pos)) != std::string::npos) {
      pos += std::strlen("\"name\": \"");
      const size_t name_end = text.find('"', pos);
      if (name_end == std::string::npos) break;
      const std::string name = text.substr(pos, name_end - pos);
      size_t vpos = text.find("\"items_per_sec\": ", name_end);
      if (vpos == std::string::npos) break;
      vpos += std::strlen("\"items_per_sec\": ");
      const double baseline = std::strtod(text.c_str() + vpos, nullptr);
      pos = vpos;

      const auto it = std::find_if(
          results.begin(), results.end(),
          [&name](const BenchResult& r) { return r.name == name; });
      if (it == results.end()) {
        std::fprintf(stderr, "FAIL %-28s missing from this run\n",
                     name.c_str());
        rows.push_back({name, baseline, 0, 0, false, true});
        offenders.push_back(name);
        continue;
      }
      if (baseline <= 0) continue;
      const double ratio = it->items_per_sec / baseline;
      ++compared;
      const bool pass = ratio >= threshold;
      std::printf("%s %-28s %.2fx of baseline (%.0f vs %.0f items/s)\n",
                  pass ? "ok  " : "FAIL", name.c_str(), ratio,
                  it->items_per_sec, baseline);
      rows.push_back({name, baseline, it->items_per_sec, ratio, pass, false});
      if (!pass) offenders.push_back(name);
    }

    // Markdown report for CI step summaries ($GITHUB_STEP_SUMMARY):
    // the full comparison table plus an explicit offender list, so a
    // red bench job names its regressions without log spelunking.
    if (!summary_path.empty()) {
      std::ofstream s(summary_path, std::ios::app);
      s << "### bench_baseline vs `" << compare_path << "` (threshold "
        << threshold << ")\n\n";
      s << "| benchmark | baseline items/s | current items/s | ratio | "
           "status |\n";
      s << "|---|---:|---:|---:|---|\n";
      char line[256];
      for (const CompareRow& row : rows) {
        if (row.missing) {
          std::snprintf(line, sizeof(line),
                        "| `%s` | %.0f | — | — | :x: missing |\n",
                        row.name.c_str(), row.baseline);
        } else {
          std::snprintf(line, sizeof(line),
                        "| `%s` | %.0f | %.0f | %.2fx | %s |\n",
                        row.name.c_str(), row.baseline, row.current,
                        row.ratio, row.pass ? ":white_check_mark:" : ":x:");
        }
        s << line;
      }
      if (offenders.empty()) {
        s << "\nAll " << compared << " benchmarks within threshold.\n";
      } else {
        s << "\n**Regressed:** ";
        for (size_t i = 0; i < offenders.size(); ++i) {
          s << (i ? ", " : "") << "`" << offenders[i] << "`";
        }
        s << "\n";
      }
      if (!s) {
        std::fprintf(stderr, "failed to write %s\n", summary_path.c_str());
        return 1;
      }
    }

    if (compared == 0) {
      std::fprintf(stderr, "no benchmarks found in %s\n", compare_path.c_str());
      return 1;
    }
    if (!offenders.empty()) {
      std::ostringstream who;
      for (size_t i = 0; i < offenders.size(); ++i) {
        who << (i ? ", " : "") << offenders[i];
      }
      std::fprintf(stderr,
                   "bench_baseline: regression beyond threshold %.2f in: %s\n",
                   threshold, who.str().c_str());
      return 1;
    }
    std::printf("all %d benchmarks within threshold %.2f\n", compared,
                threshold);
  }
  return 0;
}

}  // namespace dcg

int main(int argc, char** argv) { return dcg::BenchMain(argc, argv); }
