// Figure 7: performance vs staleness trade-off for Stock Level
// transactions in read-write TPC-C, client counts {20, 100, 180}.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Figure 7", "read-write TPC-C Stock Level trade-off vs staleness");

  const int paper_counts[] = {20, 100, 180};
  const exp::SystemType systems[] = {exp::SystemType::kPrimary,
                                     exp::SystemType::kSecondary,
                                     exp::SystemType::kDecongestant};

  exp::Summary grid[3][3];
  std::printf("%-14s %8s %8s %12s %10s %12s %10s\n", "system", "clients",
              "(sim)", "SL txn/s", "p80(ms)", "p80stale(s)", "maxstale(s)");
  for (int s = 0; s < 3; ++s) {
    for (int c = 0; c < 3; ++c) {
      exp::ExperimentConfig config;
      config.seed = 47;
      config.system = systems[s];
      config.kind = exp::WorkloadKind::kTpcc;
      config.phases = {{0, ScaledClients(paper_counts[c]), 0.5}};
      config.duration = sim::Seconds(280);
      config.warmup = sim::Seconds(100);
      config.balancer.stale_bound_seconds = 10;
      ApplyTpccDiskProfile(&config);
      exp::Experiment experiment(config);
      experiment.Run();
      grid[s][c] = experiment.Summarize();
      std::printf("%-14s %8d %8d %12.0f %10.2f %12.2f %10.2f\n",
                  ToString(systems[s]).data(), paper_counts[c],
                  ScaledClients(paper_counts[c]),
                  grid[s][c].stock_level_throughput,
                  grid[s][c].p80_stock_level_latency_ms,
                  grid[s][c].p80_staleness_s, grid[s][c].max_staleness_s);
    }
  }

  const exp::Summary& pri = grid[0][2];
  const exp::Summary& sec = grid[1][2];
  const exp::Summary& dcg = grid[2][2];

  ShapeCheck(
      "heavy load: Decongestant Stock Level throughput well above the "
      "Primary baseline",
      dcg.stock_level_throughput > 1.2 * pri.stock_level_throughput);
  ShapeCheck(
      "heavy load: Decongestant P80 Stock Level latency below the Primary "
      "baseline",
      dcg.p80_stock_level_latency_ms < pri.p80_stock_level_latency_ms);
  ShapeCheck(
      "heavy load: Decongestant bounds staleness while the Secondary "
      "baseline does not (max staleness ordering)",
      dcg.max_staleness_s <= sec.max_staleness_s + 0.5);
  ShapeCheck(
      "Decongestant client-observed staleness respects the 10 s bound "
      "(within reporting granularity)",
      dcg.max_staleness_s <= 12.0);
  return 0;
}
