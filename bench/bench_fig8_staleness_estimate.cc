// Figure 8: the maximum data staleness of the secondaries as estimated by
// Decongestant (via serverStatus on the primary) versus the staleness
// actually seen by the clients (S workload), against time.
// Workload: YCSB-A + S workload, 100 clients.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Figure 8",
         "Decongestant staleness estimate vs client-observed staleness");
  std::printf("workload: YCSB-A + S, paper clients 100 (sim %d)\n",
              ScaledClients(100));

  exp::ExperimentConfig config;
  config.seed = 48;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, ScaledClients(100), 0.5}};
  config.duration = sim::Seconds(500);
  config.warmup = sim::Seconds(100);
  // Large bound: this experiment studies the estimate, not the gate.
  config.balancer.stale_bound_seconds = 60;

  exp::Experiment experiment(config);
  experiment.Run();

  // Print a merged per-second series: the estimate and the max observed
  // S-workload staleness within that second.
  std::printf("\n%8s %12s %14s\n", "time(s)", "estimate(s)", "observed(s)");
  size_t sample_idx = 0;
  int compared = 0, conservative = 0;
  double max_estimate = 0, max_observed = 0;
  double prev_estimate = 0;
  for (const auto& point : experiment.staleness_series()) {
    double observed = 0;
    bool any = false;
    while (sample_idx < experiment.s_samples().size() &&
           experiment.s_samples()[sample_idx].first <= point.at) {
      observed =
          std::max(observed, experiment.s_samples()[sample_idx].second);
      any = true;
      ++sample_idx;
    }
    if (point.at % (5 * sim::kSecond) == 0 || observed >= 1.0 ||
        point.estimate_s >= 1.0) {
      std::printf("%8.0f %12.0f %14.2f\n", sim::ToSeconds(point.at),
                  point.estimate_s, observed);
    }
    if (any && observed >= 1.0) {
      // The estimate is refreshed at 1 Hz; a sample inside the second is
      // covered by either this point's or the previous point's estimate.
      ++compared;
      if (std::max(point.estimate_s, prev_estimate) + 1.5 >= observed) {
        ++conservative;
      }
    }
    prev_estimate = point.estimate_s;
    max_estimate = std::max(max_estimate, point.estimate_s);
    max_observed = std::max(max_observed, observed);
  }

  std::printf("\nmax estimate: %.0f s, max observed: %.2f s\n", max_estimate,
              max_observed);
  ShapeCheck("the workload produces visible staleness episodes",
             max_observed >= 1.0);
  ShapeCheck(
      "the estimate is conservative: (almost) never below what clients "
      "observed",
      compared == 0 ||
          static_cast<double>(conservative) / compared >= 0.9);
  ShapeCheck("the estimate tracks the observed staleness (same order)",
             max_estimate >= max_observed - 1.5 &&
                 max_estimate <= max_observed + 15.0);
  return 0;
}
