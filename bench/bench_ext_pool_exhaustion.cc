// Extension bench: connection-pool exhaustion at the primary (out of the
// paper's scope — real drivers cap connections per node, the paper's
// clients never hit that cap). With maxPoolSize=2 per node, 40 closed-loop
// clients saturate the primary's pool: ops queue for a connection before
// they ever reach the wire, so client-observed latency inflates while the
// server itself is fine. The driver's RTT probes bypass the pool, so the
// Read Balancer's server-side estimate Lss = P50(Lclient) − P50(RTT)
// attributes the whole checkout queue to the primary — and sheds reads to
// the secondaries, whose pools have headroom. A primary-only baseline with
// the same pool has nowhere to shed and eats the queueing delay.

#include "bench_common.h"

namespace {

dcg::exp::ExperimentConfig PoolConfig(dcg::exp::SystemType system) {
  using namespace dcg;
  exp::ExperimentConfig config;
  config.seed = 77;
  config.system = system;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 40, 0.95}};
  config.duration = sim::Seconds(300);
  config.warmup = sim::Seconds(100);
  config.run_s_workload = false;
  config.client_options.pool.max_pool_size = 2;
  config.client_options.pool.establish_cost = sim::Millis(1);
  // No wait-queue timeout: ops wait as long as it takes, so exhaustion
  // shows up purely as latency, never as failed operations.
  config.client_options.pool.wait_queue_timeout = 0;
  return config;
}

/// Mean steady-state read p80, throughput, and balance fraction.
struct Tail {
  double p80_ms = 0;
  double reads_per_sec = 0;
  double fraction = 0;
  double secondary_percent = 0;
  double checkout_wait_ms = 0;  // summed over tail periods
};

Tail TailStats(const dcg::exp::Experiment& experiment, double from_s) {
  Tail tail;
  int n = 0;
  for (const auto& row : experiment.rows()) {
    if (dcg::sim::ToSeconds(row.start) < from_s) continue;
    tail.p80_ms += row.P80ReadLatencyMs();
    tail.reads_per_sec += row.ReadThroughput();
    tail.fraction += row.balance_fraction;
    tail.secondary_percent += row.SecondaryPercent();
    tail.checkout_wait_ms += row.pool_checkout_wait_ms;
    ++n;
  }
  if (n > 0) {
    tail.p80_ms /= n;
    tail.reads_per_sec /= n;
    tail.fraction /= n;
    tail.secondary_percent /= n;
  }
  return tail;
}

}  // namespace

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Extension: pool exhaustion",
         "maxPoolSize=2 per node, 40 clients (YCSB-B): checkout queueing "
         "at the primary vs Decongestant shedding to secondaries");

  // --- Baseline: primary-only reads through the starved pool ---------------
  Note("\n[primary-only, maxPoolSize=2]");
  auto primary_config = PoolConfig(exp::SystemType::kPrimary);
  exp::Experiment primary_run(primary_config);
  primary_run.Run();
  const Tail primary_tail = TailStats(primary_run, 120);
  const auto primary_pool = primary_run.client().PoolTotals();
  const int leader = primary_run.replica_set().primary_index();
  const double probe_rtt_ms =
      sim::ToMillis(primary_run.client().RttEstimate(leader));
  std::printf("  steady-state %.0f reads/s, p80 %.2f ms, probe RTT to "
              "primary %.2f ms\n",
              primary_tail.reads_per_sec, primary_tail.p80_ms, probe_rtt_ms);
  std::printf("  pool: %llu checkouts, peak queue %llu, %.0f ms total wait\n",
              static_cast<unsigned long long>(primary_pool.checkouts),
              static_cast<unsigned long long>(primary_pool.max_queue_depth),
              sim::ToMillis(primary_pool.wait_total));

  // --- Decongestant: same pool, Read Balancer free to shed -----------------
  Note("\n[decongestant, maxPoolSize=2]");
  auto dcg_config = PoolConfig(exp::SystemType::kDecongestant);
  exp::Experiment dcg_run(dcg_config);
  dcg_run.Run();
  PrintSeries(dcg_run, /*tpcc=*/false);
  const Tail dcg_tail = TailStats(dcg_run, 120);
  const auto dcg_pool = dcg_run.client().PoolTotals();
  std::printf("\n  steady-state %.0f reads/s, p80 %.2f ms, fraction %.2f, "
              "%.1f%% on secondaries\n",
              dcg_tail.reads_per_sec, dcg_tail.p80_ms, dcg_tail.fraction,
              dcg_tail.secondary_percent);
  std::printf("  pool: %llu checkouts, peak queue %llu, %.0f ms total wait\n",
              static_cast<unsigned long long>(dcg_pool.checkouts),
              static_cast<unsigned long long>(dcg_pool.max_queue_depth),
              sim::ToMillis(dcg_pool.wait_total));

  ShapeCheck("the starved primary pool queues checkouts (nonzero wait, "
             "queue depth > clients/2)",
             primary_pool.wait_total > 0 &&
                 primary_pool.max_queue_depth > 20);
  ShapeCheck("RTT probes bypass the pool: probe RTT stays an order of "
             "magnitude below client-observed p80",
             probe_rtt_ms * 10 < primary_tail.p80_ms);
  ShapeCheck("the Read Balancer sheds the queue to secondaries "
             "(steady-state fraction >= 0.3, secondary share >= 20%)",
             dcg_tail.fraction >= 0.3 &&
                 dcg_tail.secondary_percent >= 20);
  // Closed-loop clients self-limit, so exhaustion caps *throughput* more
  // than it moves p80: the primary-only run serves 40 clients through 2
  // usable connections, Decongestant through 6 (all three pools).
  ShapeCheck("shedding relieves exhaustion: Decongestant serves >= 2x the "
             "primary-only read throughput at lower p80",
             dcg_tail.reads_per_sec >= 2 * primary_tail.reads_per_sec &&
                 dcg_tail.p80_ms < primary_tail.p80_ms);
  ShapeCheck("per-period CSV pool columns are populated "
             "(checkout wait recorded in the tail)",
             primary_tail.checkout_wait_ms > 0);
  return 0;
}
