// Extension bench (paper §6 future work, "more sophisticated feedback
// control"): every registered Balance Fraction strategy races on the
// same congestion step, judged on (a) periods to converge and (b)
// behaviour after convergence. The paper's ±10 % step law is the
// baseline; the rivals (proportional, CPQ-style SLA feedback, AoI
// capping, PID) ride the registry, so a newly registered controller
// joins the race without touching this file.

#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/controller.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Extension: controllers",
         "Algorithm 1 step law vs the registered rivals");

  const std::vector<std::string_view>& names = core::RegisteredControllers();
  std::vector<double> reach_time(names.size(), -1);
  std::vector<double> throughput(names.size(), 0);
  std::vector<double> mean_age(names.size(), 0);
  size_t baseline = 0;
  for (size_t v = 0; v < names.size(); ++v) {
    if (core::IsDefaultController(names[v])) baseline = v;
    exp::ExperimentConfig config;
    config.seed = 65;
    config.system = exp::SystemType::kDecongestant;
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, 45, 0.95}};  // immediately congested primary
    config.duration = sim::Seconds(400);
    config.warmup = sim::Seconds(150);
    config.controller = std::string(names[v]);

    exp::Experiment experiment(config);
    double reached = -1;
    experiment.balancer()->SetPeriodCallback(
        [&](const core::ReadBalancer::PeriodStats& stats) {
          if (reached < 0 && stats.published_fraction >= 0.65) {
            reached = sim::ToSeconds(stats.at);
          }
        });
    experiment.Run();
    const exp::Summary summary = experiment.Summarize();
    reach_time[v] = reached;
    throughput[v] = summary.read_throughput;
    mean_age[v] = summary.mean_served_age_s;
    std::printf("%-13s fraction>=0.65 at t=%4.0f s, steady reads/s %6.0f, "
                "mean served age %.3f s\n",
                std::string(names[v]).c_str(), reached, throughput[v],
                mean_age[v]);
  }

  bool all_converge = true;
  bool throughput_close = true;
  for (size_t v = 0; v < names.size(); ++v) {
    // The CPQ policy chases its SLA, not the latency ratio: under a
    // congested primary it still sheds, but convergence to a specific
    // fraction is not part of its contract. Everyone else must get there.
    if (names[v] != "cpq" && reach_time[v] < 0) all_converge = false;
    if (throughput[v] < 0.75 * throughput[baseline]) throughput_close = false;
  }
  ShapeCheck("every ratio-driven controller converges to the equilibrium",
             all_converge);
  ShapeCheck("no rival collapses throughput (within 25% of the paper's law)",
             throughput_close);
  const size_t prop =
      std::find(names.begin(), names.end(), "proportional") - names.begin();
  ShapeCheck(
      "the proportional controller converges at least as fast as the "
      "step controller",
      reach_time[prop] > 0 && reach_time[prop] <= reach_time[baseline]);
  return 0;
}
