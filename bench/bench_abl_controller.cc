// Extension bench (paper §6 future work, "more sophisticated feedback
// control"): the paper's ±10 % step controller vs a proportional
// controller, judged on (a) periods to converge after a congestion step
// and (b) behaviour after convergence.

#include <memory>

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Extension: controllers", "Algorithm 1 step vs proportional control");

  struct Variant {
    const char* name;
    bool proportional;
  };
  const Variant variants[] = {{"step (paper)", false},
                              {"proportional", true}};

  double reach_time[2];
  double throughput[2];
  for (int v = 0; v < 2; ++v) {
    exp::ExperimentConfig config;
    config.seed = 65;
    config.system = exp::SystemType::kDecongestant;
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, 45, 0.95}};  // immediately congested primary
    config.duration = sim::Seconds(400);
    config.warmup = sim::Seconds(150);

    exp::Experiment experiment(config);
    if (variants[v].proportional) {
      experiment.balancer()->SetController(
          std::make_unique<core::ProportionalController>());
    }
    double reached = -1;
    experiment.balancer()->SetPeriodCallback(
        [&](const core::ReadBalancer::PeriodStats& stats) {
          if (reached < 0 && stats.published_fraction >= 0.65) {
            reached = sim::ToSeconds(stats.at);
          }
        });
    experiment.Run();
    reach_time[v] = reached;
    throughput[v] = experiment.Summarize().read_throughput;
    std::printf("%-14s controller: fraction>=0.65 at t=%4.0f s, "
                "steady reads/s %.0f\n",
                variants[v].name, reached, throughput[v]);
  }

  ShapeCheck("both controllers converge to the shared-load equilibrium",
             reach_time[0] > 0 && reach_time[1] > 0);
  ShapeCheck(
      "the proportional controller converges at least as fast as the "
      "step controller",
      reach_time[1] <= reach_time[0]);
  ShapeCheck("steady-state throughput is equivalent (within 5%)",
             throughput[1] >= 0.95 * throughput[0]);
  return 0;
}
