// Ablation A2: the downward probe (when RecentBal has been flat for the
// whole history, push the fraction down by DELTA). Without it, the
// Balance Fraction stays wherever congestion last pushed it, so after
// load drops the system keeps reading from secondaries — paying staleness
// exposure for no performance gain (§3.3: the probe exists "to improve
// the data freshness and avoid potential stale reads").

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Ablation A2", "downward probing on flat history: on vs off");
  Note("workload: YCSB-B burst (45 clients) for 300 s, then light load "
       "(3 clients) for 500 s.");

  double late_fraction[2] = {0, 0};
  double late_secondary_pct[2] = {0, 0};
  for (int variant = 0; variant < 2; ++variant) {
    exp::ExperimentConfig config;
    config.seed = 61;
    config.system = exp::SystemType::kDecongestant;
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, 45, 0.95}, {sim::Seconds(300), 3, 0.5}};
    config.duration = sim::Seconds(800);
    config.warmup = sim::Seconds(100);
    config.balancer.downward_probe = variant == 0;

    exp::Experiment experiment(config);
    experiment.Run();

    double fraction_sum = 0, pct_sum = 0;
    int n = 0;
    for (const auto& row : experiment.rows()) {
      if (row.start < sim::Seconds(650)) continue;
      fraction_sum += row.balance_fraction;
      pct_sum += row.SecondaryPercent();
      ++n;
    }
    late_fraction[variant] = fraction_sum / n;
    late_secondary_pct[variant] = pct_sum / n;
    std::printf("%-18s settled fraction %.2f, secondary reads %.1f%%\n",
                variant == 0 ? "[probe enabled]" : "[probe disabled]",
                late_fraction[variant], late_secondary_pct[variant]);
  }

  ShapeCheck(
      "with the probe, the fraction returns to the 10% floor after the "
      "load drop",
      late_fraction[0] <= 0.2);
  ShapeCheck(
      "without the probe, the fraction stays stuck high (stale-read "
      "exposure for no gain)",
      late_fraction[1] >= late_fraction[0] + 0.3);
  return 0;
}
