// Table 1: transaction mix of the original TPC-C versus the read-write
// TPC-C variant used throughout the evaluation. We run both mixes and
// report the measured per-type percentages against the table's targets.

#include "bench_common.h"

namespace {

struct MixRow {
  const char* name;
  double standard;
  double read_write;
};

constexpr MixRow kTable1[] = {
    {"Stock Level", 0.04, 0.50},  {"Delivery", 0.04, 0.04},
    {"Order Status", 0.04, 0.04}, {"Payment", 0.43, 0.20},
    {"New Order", 0.45, 0.22},
};

}  // namespace

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Table 1", "TPC-C mix: standard vs read-write variant (measured)");

  bool all_ok = true;
  for (int variant = 0; variant < 2; ++variant) {
    exp::ExperimentConfig config;
    config.seed = 52;
    config.system = exp::SystemType::kPrimary;
    config.kind = exp::WorkloadKind::kTpcc;
    config.tpcc = variant == 0 ? workload::TpccConfig::Standard()
                               : workload::TpccConfig::ReadWrite();
    config.phases = {{0, 20, 0.5}};
    config.duration = sim::Seconds(300);
    config.run_s_workload = false;
    exp::Experiment experiment(config);
    experiment.Run();

    const workload::TpccWorkload& tpcc = *experiment.tpcc();
    const double total = static_cast<double>(
        tpcc.stock_level_count() + tpcc.delivery_count() +
        tpcc.order_status_count() + tpcc.payment_count() +
        tpcc.new_order_count());
    const double measured[] = {
        tpcc.stock_level_count() / total, tpcc.delivery_count() / total,
        tpcc.order_status_count() / total, tpcc.payment_count() / total,
        tpcc.new_order_count() / total,
    };

    std::printf("\n[%s TPC-C] (%d transactions)\n",
                variant == 0 ? "standard" : "read-write",
                static_cast<int>(total));
    std::printf("%-14s %10s %10s\n", "transaction", "target%", "measured%");
    for (int i = 0; i < 5; ++i) {
      const double target =
          variant == 0 ? kTable1[i].standard : kTable1[i].read_write;
      std::printf("%-14s %9.0f%% %9.1f%%\n", kTable1[i].name, target * 100,
                  measured[i] * 100);
      if (std::abs(measured[i] - target) > 0.02) all_ok = false;
    }
  }

  ShapeCheck("measured mixes match Table 1 within sampling error (±2 pp)",
             all_ok);
  return 0;
}
