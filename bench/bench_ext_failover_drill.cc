// Extension bench: Decongestant through a primary fail-over (the paper
// notes fail-overs are rare and leaves them out of scope; the substrate
// supports them, so we drill one). The primary is killed mid-run; writes
// stall until the election, reads keep flowing to the survivors, and the
// Read Balancer re-balances around the new 2-node reality; the old
// primary then rejoins and load spreads again.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Extension: fail-over drill",
         "kill the primary at t=200 s, restart it at t=400 s (YCSB-B)");

  exp::ExperimentConfig config;
  config.seed = 66;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 30, 0.95}};
  config.duration = sim::Seconds(600);
  config.warmup = sim::Seconds(100);
  config.run_s_workload = false;  // the S probe pair is not failover-aware

  // The drill as a scripted fault timeline — the same schedule is
  // expressible on the CLI as --faults="crash@200:node=0;restart@400:node=0".
  {
    fault::FaultEvent crash;
    crash.type = fault::FaultType::kCrash;
    crash.start = sim::Seconds(200);
    crash.nodes = {0};
    fault::FaultEvent restart;
    restart.type = fault::FaultType::kRestart;
    restart.start = sim::Seconds(400);
    restart.nodes = {0};
    config.faults.Add(crash).Add(restart);
  }

  exp::Experiment experiment(config);
  auto& rs = experiment.replica_set();
  experiment.Run();
  // Quiesce: stop the clients and let replication drain before comparing
  // replica contents.
  experiment.pool().SetTarget(0);
  experiment.loop().RunUntil(sim::Seconds(605));

  PrintSeries(experiment, /*tpcc=*/false);

  double before = 0, during = 0, after = 0;
  int n_before = 0, n_during = 0, n_after = 0;
  for (const auto& row : experiment.rows()) {
    const double t = sim::ToSeconds(row.start);
    if (t >= 100 && t < 200) {
      before += row.ReadThroughput();
      ++n_before;
    } else if (t >= 230 && t < 400) {
      during += row.ReadThroughput();
      ++n_during;
    } else if (t >= 500) {
      after += row.ReadThroughput();
      ++n_after;
    }
  }
  before /= n_before;
  during /= n_during;
  after /= n_after;

  std::printf("\nread throughput: before %.0f/s, after failover (2 nodes) "
              "%.0f/s, after rejoin %.0f/s\n",
              before, during, after);
  std::printf("elections: %llu, new primary: node %d, all nodes converged: "
              "%s\n",
              static_cast<unsigned long long>(rs.elections()),
              rs.primary_index(),
              rs.node(0).db().Fingerprint() ==
                          rs.node(1).db().Fingerprint() &&
                      rs.node(1).db().Fingerprint() ==
                          rs.node(2).db().Fingerprint()
                  ? "yes"
                  : "no");

  ShapeCheck("exactly one election took place", rs.elections() == 1);
  ShapeCheck("the cluster keeps serving reads on 2 nodes (>= 50% of "
             "3-node throughput)",
             during >= 0.5 * before);
  ShapeCheck("throughput recovers after the old primary rejoins (>= 90%)",
             after >= 0.9 * before);
  ShapeCheck("all replicas converge to identical data",
             rs.node(0).db().Fingerprint() == rs.node(1).db().Fingerprint() &&
                 rs.node(1).db().Fingerprint() ==
                     rs.node(2).db().Fingerprint());
  return 0;
}
