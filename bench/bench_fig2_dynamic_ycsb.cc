// Figure 2: response to a sudden increase of the read ratio in YCSB.
// Workload: YCSB-A (50 % reads), 180 clients, switching to YCSB-B (95 %
// reads) at t = 620 s. Systems: Decongestant vs hard-coded Primary vs
// hard-coded Secondary. Reported per 10 s: read throughput, P80 latency,
// actual % of secondary reads.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Figure 2", "dynamic YCSB: A (50% reads) -> B (95% reads) @ 620 s");
  std::printf("paper clients: 180 (sim: %d), S workload attached\n",
              ScaledClients(180));

  const exp::SystemType systems[] = {exp::SystemType::kDecongestant,
                                     exp::SystemType::kPrimary,
                                     exp::SystemType::kSecondary};

  exp::Summary phase2[3];
  double ramp_fraction_end = 0;
  double steady_fraction_b = 0;

  for (int i = 0; i < 3; ++i) {
    exp::ExperimentConfig config;
    config.seed = 42;
    config.system = systems[i];
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, ScaledClients(180), 0.5},
                     {sim::Seconds(620), ScaledClients(180), 0.95}};
    config.duration = sim::Seconds(900);
    config.warmup = sim::Seconds(660);  // summarize the post-switch phase

    exp::Experiment experiment(config);
    experiment.Run();
    phase2[i] = experiment.Summarize();

    std::printf("\n--- system: %s ---\n", ToString(systems[i]).data());
    PrintSeries(experiment, /*tpcc=*/false);

    if (systems[i] == exp::SystemType::kDecongestant) {
      for (const auto& row : experiment.rows()) {
        if (row.start == sim::Seconds(200)) {
          ramp_fraction_end = row.balance_fraction;
        }
        if (row.start == sim::Seconds(880)) {
          steady_fraction_b = row.balance_fraction;
        }
      }
    }
  }

  std::printf("\npost-switch (YCSB-B) summaries:\n");
  std::printf("%-14s %10s %10s %8s\n", "system", "reads/s", "p80(ms)",
              "sec(%)");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-14s %10.0f %10.2f %8.1f\n", ToString(systems[i]).data(),
                phase2[i].read_throughput, phase2[i].p80_read_latency_ms,
                phase2[i].secondary_percent);
  }

  ShapeCheck("warm-up ramps the Balance Fraction to the 90 % cap on YCSB-A",
             ramp_fraction_end >= 0.89);
  ShapeCheck(
      "after the switch to YCSB-B the fraction settles near 70 % "
      "(primary takes writes + ~1/3 of reads)",
      steady_fraction_b >= 0.55 && steady_fraction_b <= 0.85);
  ShapeCheck("Decongestant read throughput beats both baselines on YCSB-B",
             phase2[0].read_throughput > phase2[1].read_throughput &&
                 phase2[0].read_throughput > phase2[2].read_throughput);
  ShapeCheck("Decongestant P80 latency no worse than both baselines",
             phase2[0].p80_read_latency_ms <=
                     phase2[1].p80_read_latency_ms + 0.5 &&
                 phase2[0].p80_read_latency_ms <=
                     phase2[2].p80_read_latency_ms + 0.5);
  return 0;
}
