// Figure 5: performance trends with increasing client count, YCSB-B.
// Throughput of reads, P80 latency, and actual % of secondary reads per
// system (Decongestant / Primary / Secondary), against the client count.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Figure 5", "YCSB-B (95% reads) client-count sweep, 3 systems");

  const int paper_counts[] = {10, 25, 50, 75, 100, 120, 150, 175, 200};
  const exp::SystemType systems[] = {exp::SystemType::kDecongestant,
                                     exp::SystemType::kPrimary,
                                     exp::SystemType::kSecondary};

  std::vector<SweepPoint> results[3];
  for (int s = 0; s < 3; ++s) {
    for (int paper_clients : paper_counts) {
      exp::ExperimentConfig config;
      config.seed = 45;
      config.system = systems[s];
      config.kind = exp::WorkloadKind::kYcsb;
      config.phases = {{0, ScaledClients(paper_clients), 0.95}};
      config.duration = sim::Seconds(260);
      config.warmup = sim::Seconds(100);
      exp::Experiment experiment(config);
      experiment.Run();
      results[s].push_back({paper_clients, experiment.Summarize()});
    }
    PrintSweepTable(ToString(systems[s]).data(), results[s],
                    /*tpcc=*/false);
  }

  // Shape claims at the saturated end (paper clients >= 120).
  auto at = [&](int s, int paper_clients) -> const exp::Summary& {
    for (const auto& p : results[s]) {
      if (p.paper_clients == paper_clients) return p.summary;
    }
    return results[s].front().summary;
  };

  const exp::Summary& dcg_hi = at(0, 200);
  const exp::Summary& pri_hi = at(1, 200);
  const exp::Summary& sec_hi = at(2, 200);

  ShapeCheck(
      "at high load Decongestant throughput is ~30% above the Secondary "
      "baseline (>= +15%)",
      dcg_hi.read_throughput >= 1.15 * sec_hi.read_throughput);
  ShapeCheck(
      "at high load Decongestant throughput is ~2.5x the Primary baseline "
      "(>= 2x)",
      dcg_hi.read_throughput >= 2.0 * pri_hi.read_throughput);
  ShapeCheck("at high load Decongestant P80 latency is the lowest",
             dcg_hi.p80_read_latency_ms <= pri_hi.p80_read_latency_ms &&
                 dcg_hi.p80_read_latency_ms <= sec_hi.p80_read_latency_ms);
  ShapeCheck(
      "secondary share grows with load: low at the light end, ~70% at "
      "the saturated end",
      at(0, 10).secondary_percent <= 50.0 &&
          dcg_hi.secondary_percent >= 55.0 &&
          dcg_hi.secondary_percent <= 85.0);
  return 0;
}
