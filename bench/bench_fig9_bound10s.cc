// Figure 9: bounding data staleness at 10 s under read-write TPC-C with
// 60 clients. The raw (max) secondary staleness periodically exceeds the
// bound — grows gradually while the primary's checkpoint stalls the oplog
// getMores, then collapses — but Decongestant's clients never see it:
// reads are redirected to the primary in time.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Figure 9", "bounding staleness: TPC-C, 60 clients, bound = 10 s");
  std::printf("paper clients: 60 (sim %d)\n", ScaledClients(60));

  exp::ExperimentConfig config;
  config.seed = 49;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kTpcc;
  config.phases = {{0, ScaledClients(60), 0.5}};
  config.duration = sim::Seconds(400);
  config.warmup = sim::Seconds(60);
  config.balancer.stale_bound_seconds = 10;
  ApplyTpccDiskProfile(&config);

  exp::Experiment experiment(config);
  experiment.Run();

  std::printf("\n%8s %14s %14s\n", "time(s)", "raw max lag(s)",
              "client-seen(s)");
  size_t sample_idx = 0;
  double max_raw = 0, max_seen = 0;
  int sawtooth_rises = 0;
  double prev_raw = 0;
  for (const auto& point : experiment.staleness_series()) {
    double seen = 0;
    while (sample_idx < experiment.s_samples().size() &&
           experiment.s_samples()[sample_idx].first <= point.at) {
      seen = std::max(seen, experiment.s_samples()[sample_idx].second);
      ++sample_idx;
    }
    if (point.at % (5 * sim::kSecond) == 0 || point.true_max_s >= 5.0) {
      std::printf("%8.0f %14.2f %14.2f\n", sim::ToSeconds(point.at),
                  point.true_max_s, seen);
    }
    if (point.true_max_s > prev_raw + 0.5) ++sawtooth_rises;
    prev_raw = point.true_max_s;
    if (sim::ToSeconds(point.at) >= 60) {
      max_raw = std::max(max_raw, point.true_max_s);
      max_seen = std::max(max_seen, seen);
    }
  }

  std::printf("\nmax raw secondary staleness: %.1f s\n", max_raw);
  std::printf("max client-observed staleness: %.1f s\n", max_seen);
  std::printf("staleness-triggered zero events: %llu\n",
              static_cast<unsigned long long>(
                  experiment.balancer()->stale_zero_events()));

  ShapeCheck("raw secondary staleness periodically exceeds the 10 s bound",
             max_raw > 10.0);
  ShapeCheck(
      "client-observed staleness stays within the bound (+ granularity)",
      max_seen <= 11.5);
  ShapeCheck("the gate actually fired (reads redirected to the primary)",
             experiment.balancer()->stale_zero_events() > 0);
  ShapeCheck("staleness follows a sawtooth (multiple rise episodes)",
             sawtooth_rises >= 3);
  return 0;
}
