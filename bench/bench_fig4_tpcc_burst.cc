// Figure 4: response to client-count variation in read-write TPC-C.
// 20 clients -> 200 at the 5th minute -> 20 at the 10th minute.
// Stale bound 10 s; downward staleness spikes during the burst are the
// Read Balancer reacting to secondaries exceeding the bound.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Figure 4", "read-write TPC-C client burst: 20 -> 200 -> 20");
  std::printf("paper clients: 20/200/20 (sim: %d/%d/%d), stale bound 10 s\n",
              ScaledClients(20), ScaledClients(200), ScaledClients(20));

  const exp::SystemType systems[] = {exp::SystemType::kDecongestant,
                                     exp::SystemType::kPrimary,
                                     exp::SystemType::kSecondary};

  double burst_secondary_pct = 0;
  double post_secondary_pct = 100;
  uint64_t stale_zero_events = 0;
  exp::Summary burst[3];

  for (int i = 0; i < 3; ++i) {
    exp::ExperimentConfig config;
    config.seed = 44;
    config.system = systems[i];
    config.kind = exp::WorkloadKind::kTpcc;
    config.phases = {{0, ScaledClients(20), 0.5},
                     {sim::kMinute * 5, ScaledClients(200), 0.5},
                     {sim::kMinute * 10, ScaledClients(20), 0.5}};
    config.duration = sim::kMinute * 15;
    config.warmup = sim::kMinute * 5;
    config.balancer.stale_bound_seconds = 10;
    ApplyTpccDiskProfile(&config);

    exp::Experiment experiment(config);
    experiment.Run();

    std::printf("\n--- system: %s ---\n", ToString(systems[i]).data());
    PrintSeries(experiment, /*tpcc=*/true);

    // Burst-phase summary (minutes 6-10, past the ramp).
    metrics::Histogram lat;
    uint64_t sl = 0, sl_sec = 0;
    sim::Duration secs = 0;
    double late_pct_sum = 0;
    int late_pct_n = 0;
    for (const auto& row : experiment.rows()) {
      if (row.start >= sim::kMinute * 6 && row.start < sim::kMinute * 10) {
        sl += row.stock_level;
        secs += row.end - row.start;
        lat.Merge(row.stock_level_latency);
        if (systems[i] == exp::SystemType::kDecongestant) {
          burst_secondary_pct =
              std::max(burst_secondary_pct, row.SecondaryPercent());
        }
      }
      if (row.start >= sim::kMinute * 13 &&
          systems[i] == exp::SystemType::kDecongestant && row.reads > 0) {
        late_pct_sum += row.SecondaryPercent();
        ++late_pct_n;
      }
      (void)sl_sec;
    }
    burst[i].stock_level_throughput =
        static_cast<double>(sl) / sim::ToSeconds(secs);
    burst[i].p80_stock_level_latency_ms =
        lat.Percentile(80) / static_cast<double>(sim::kMillisecond);
    if (systems[i] == exp::SystemType::kDecongestant) {
      if (late_pct_n > 0) post_secondary_pct = late_pct_sum / late_pct_n;
      stale_zero_events = experiment.balancer()->stale_zero_events();
    }
  }

  std::printf("\nburst-phase (min 6-10) Stock Level summaries:\n");
  std::printf("%-14s %12s %10s\n", "system", "SL txn/s", "p80(ms)");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-14s %12.0f %10.2f\n", ToString(systems[i]).data(),
                burst[i].stock_level_throughput,
                burst[i].p80_stock_level_latency_ms);
  }
  std::printf("\nDecongestant staleness-triggered zero events: %llu\n",
              static_cast<unsigned long long>(stale_zero_events));

  ShapeCheck(
      "during the burst Decongestant pushes Stock Level reads to the "
      "secondaries",
      burst_secondary_pct >= 50.0);
  ShapeCheck(
      "burst performance is close to (or better than) the Secondary "
      "baseline",
      burst[0].stock_level_throughput >=
          0.85 * burst[2].stock_level_throughput);
  ShapeCheck(
      "staleness exceeding the 10 s bound triggered primary-only episodes "
      "(the pink lines of Fig. 4)",
      stale_zero_events > 0);
  ShapeCheck(
      "after the burst most Stock Levels return to the now-uncongested "
      "primary",
      post_secondary_pct <= 40.0);
  return 0;
}
