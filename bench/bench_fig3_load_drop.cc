// Figure 3: response to a simultaneous drop of read ratio and client
// count. Workload: YCSB-B (95 % reads) with 180 clients, switching to
// YCSB-A (50 % reads) with 20 clients at t = 230 s.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Figure 3",
         "YCSB-B 180 clients -> YCSB-A 20 clients @ 230 s (load drop)");
  std::printf("paper clients: 180 -> 20 (sim: %d -> %d)\n", ScaledClients(180),
              ScaledClients(20));
  Note("note: the post-drop descent is probe-driven (one DELTA step per "
       "flat 4-period history,\n\"every fifth period\" per the paper), so "
       "the run extends past the paper's 600 s to show the full descent.");

  const exp::SystemType systems[] = {exp::SystemType::kDecongestant,
                                     exp::SystemType::kPrimary,
                                     exp::SystemType::kSecondary};

  double fraction_peak = 0, fraction_end = 1;
  exp::Summary high_load[3];

  for (int i = 0; i < 3; ++i) {
    exp::ExperimentConfig config;
    config.seed = 43;
    config.system = systems[i];
    config.kind = exp::WorkloadKind::kYcsb;
    config.phases = {{0, ScaledClients(180), 0.95},
                     {sim::Seconds(230), ScaledClients(20), 0.5}};
    config.duration = sim::Seconds(700);
    config.warmup = sim::Seconds(100);

    exp::Experiment experiment(config);
    experiment.Run();

    std::printf("\n--- system: %s ---\n", ToString(systems[i]).data());
    PrintSeries(experiment, /*tpcc=*/false);

    // Summary over the high-load phase only.
    metrics::Histogram lat;
    uint64_t reads = 0;
    sim::Duration secs = 0;
    for (const auto& row : experiment.rows()) {
      if (row.start < sim::Seconds(100) || row.start >= sim::Seconds(230)) {
        continue;
      }
      reads += row.reads;
      secs += row.end - row.start;
      lat.Merge(row.read_latency);
      if (systems[i] == exp::SystemType::kDecongestant) {
        fraction_peak = std::max(fraction_peak, row.balance_fraction);
      }
    }
    high_load[i].read_throughput =
        static_cast<double>(reads) / sim::ToSeconds(secs);
    high_load[i].p80_read_latency_ms =
        lat.Percentile(80) / static_cast<double>(sim::kMillisecond);

    if (systems[i] == exp::SystemType::kDecongestant) {
      fraction_end = experiment.rows().back().balance_fraction;
    }
  }

  std::printf("\nhigh-load phase (100-230 s) summaries:\n");
  std::printf("%-14s %10s %10s\n", "system", "reads/s", "p80(ms)");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-14s %10.0f %10.2f\n", ToString(systems[i]).data(),
                high_load[i].read_throughput,
                high_load[i].p80_read_latency_ms);
  }

  ShapeCheck("under YCSB-B load the fraction reaches an optimised plateau",
             fraction_peak >= 0.6);
  ShapeCheck(
      "Decongestant beats both baselines during the high-load phase",
      high_load[0].read_throughput > high_load[1].read_throughput &&
          high_load[0].read_throughput > high_load[2].read_throughput);
  ShapeCheck(
      "after the drop the fraction descends to the 10 % floor (keeps "
      "probing the secondaries)",
      fraction_end <= 0.2);
  return 0;
}
