// Figure 6: performance vs data-staleness trade-off, YCSB-A (50% reads).
// For client counts {20, 100, 180} and the three systems, report
// (a) read throughput vs P80 staleness and (b) P80 latency vs P80
// staleness. Decongestant should sit near the desired corner: high
// throughput / low latency at low staleness.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Figure 6", "YCSB-A throughput/latency vs staleness trade-off");

  const int paper_counts[] = {20, 100, 180};
  const exp::SystemType systems[] = {exp::SystemType::kPrimary,
                                     exp::SystemType::kSecondary,
                                     exp::SystemType::kDecongestant};

  exp::Summary grid[3][3];
  std::printf("%-14s %8s %8s %12s %10s %12s %10s\n", "system", "clients",
              "(sim)", "reads/s", "p80(ms)", "p80stale(s)", "maxstale(s)");
  for (int s = 0; s < 3; ++s) {
    for (int c = 0; c < 3; ++c) {
      exp::ExperimentConfig config;
      config.seed = 46;
      config.system = systems[s];
      config.kind = exp::WorkloadKind::kYcsb;
      config.phases = {{0, ScaledClients(paper_counts[c]), 0.5}};
      config.duration = sim::Seconds(280);
      config.warmup = sim::Seconds(100);
      config.balancer.stale_bound_seconds = 10;
      exp::Experiment experiment(config);
      experiment.Run();
      grid[s][c] = experiment.Summarize();
      std::printf("%-14s %8d %8d %12.0f %10.2f %12.2f %10.2f\n",
                  ToString(systems[s]).data(), paper_counts[c],
                  ScaledClients(paper_counts[c]),
                  grid[s][c].read_throughput, grid[s][c].p80_read_latency_ms,
                  grid[s][c].p80_staleness_s, grid[s][c].max_staleness_s);
    }
  }

  // At heavy load (180 clients): Primary fresh-but-slow, Secondary
  // fast-but-stale(r), Decongestant fast AND fresh-bounded.
  const exp::Summary& pri = grid[0][2];
  const exp::Summary& sec = grid[1][2];
  const exp::Summary& dcg = grid[2][2];

  ShapeCheck("heavy load: Decongestant throughput > Primary baseline",
             dcg.read_throughput > 1.3 * pri.read_throughput);
  ShapeCheck(
      "heavy load: Decongestant staleness bounded by the client limit "
      "(P80 well under 10 s)",
      dcg.p80_staleness_s < 10.0);
  ShapeCheck(
      "heavy load: Secondary baseline sees at least as much staleness as "
      "Decongestant",
      sec.max_staleness_s >= dcg.max_staleness_s - 0.5);
  ShapeCheck("light load (20 clients): the three systems are close",
             grid[2][0].read_throughput < 1.4 * grid[0][0].read_throughput);
  return 0;
}
