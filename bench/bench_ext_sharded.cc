// Extension bench: Decongestant on a sharded cluster (§2.1 notes the
// technique "can be applied to sharded clusters, which support the same
// Read Preference API"). Two shards receive skewed read load — shard 0
// hot, shard 1 idle; a per-shard Read Balancer relieves only the
// congested shard, something no single hard-coded Read Preference (and no
// cluster-wide knob) can express.

#include <functional>
#include <memory>

#include "bench_common.h"
#include "shard/sharded_cluster.h"

namespace {

struct RunResult {
  uint64_t reads = 0;
  uint64_t secondary_reads[2] = {0, 0};
  uint64_t reads_per_shard[2] = {0, 0};
  double fraction[2] = {0, 0};
  uint64_t routed_reads = 0;
  int64_t worst_staleness_estimate = 0;
};

RunResult RunOnce(bool decongestant,
                  dcg::driver::ReadPreference fixed_pref =
                      dcg::driver::ReadPreference::kPrimary) {
  using namespace dcg;

  sim::EventLoop loop;
  sim::Rng rng(99);
  net::Network network(&loop, rng.Fork());
  const net::HostId client_host = network.AddHost("client");

  shard::ShardedClusterConfig config;
  config.run_balancers = decongestant;
  config.fixed_pref = fixed_pref;
  shard::ShardedCluster cluster(&loop, rng.Fork(), &network, client_host,
                                config);

  // 4000 documents, loaded pre-replicated on every node of their shard.
  std::vector<std::vector<int64_t>> keys(2);
  for (int64_t id = 0; id < 4000; ++id) {
    keys[static_cast<size_t>(cluster.ShardFor(doc::Value(id)))].push_back(id);
  }
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 3; ++i) {
      store::Collection& t = cluster.shard(s).node(i).db().GetOrCreate("t");
      for (int64_t id : keys[static_cast<size_t>(s)]) {
        t.Insert(doc::Value::Doc({{"_id", id}, {"v", id}}));
      }
    }
  }
  cluster.Start();

  // 40 closed-loop clients: 95 % of reads hit shard 0's keys, 5 % shard 1.
  auto result = std::make_shared<RunResult>();
  auto worker_rng = std::make_shared<sim::Rng>(rng.Fork());
  auto pick = [&cluster, &keys, worker_rng]() -> int64_t {
    const auto& pool = worker_rng->Bernoulli(0.95) ? keys[0] : keys[1];
    (void)cluster;
    return pool[static_cast<size_t>(worker_rng->UniformInt(
        0, static_cast<int64_t>(pool.size()) - 1))];
  };
  std::function<void(int)> run_worker = [&](int w) {
    const int64_t key = pick();
    const int s = cluster.ShardFor(doc::Value(key));
    cluster.ReadDoc("t", doc::Value(key), server::OpClass::kPointRead,
                    [](const store::Database&) {},
                    [&, w, s](const driver::MongoClient::ReadResult& r) {
                      ++result->reads;
                      ++result->reads_per_shard[s];
                      if (r.used_secondary) ++result->secondary_reads[s];
                      run_worker(w);
                    });
  };
  for (int w = 0; w < 40; ++w) run_worker(w);

  loop.RunUntil(sim::Seconds(200));
  for (int s = 0; s < 2; ++s) {
    result->fraction[s] = cluster.shared_state(s).balance_fraction();
  }
  result->routed_reads = cluster.router().routed_reads();
  result->worst_staleness_estimate = cluster.budget().WorstEstimate();
  return *result;
}

}  // namespace

int main() {
  using namespace dcg::bench;

  Banner("Extension: sharded cluster",
         "per-shard Decongestant under skewed load (95% on shard 0)");

  const RunResult dcg_run = RunOnce(/*decongestant=*/true);
  const RunResult primary_run =
      RunOnce(false, dcg::driver::ReadPreference::kPrimary);
  const RunResult secondary_run =
      RunOnce(false, dcg::driver::ReadPreference::kSecondary);

  std::printf("%-22s %10s %16s %16s\n", "system", "reads", "sec% shard0",
              "sec% shard1");
  auto pct = [](const RunResult& r, int s) {
    return r.reads_per_shard[s] == 0
               ? 0.0
               : 100.0 * static_cast<double>(r.secondary_reads[s]) /
                     static_cast<double>(r.reads_per_shard[s]);
  };
  std::printf("%-22s %10llu %15.1f%% %15.1f%%\n", "decongestant/shard",
              static_cast<unsigned long long>(dcg_run.reads),
              pct(dcg_run, 0), pct(dcg_run, 1));
  std::printf("%-22s %10llu %15.1f%% %15.1f%%\n", "primary (fixed)",
              static_cast<unsigned long long>(primary_run.reads),
              pct(primary_run, 0), pct(primary_run, 1));
  std::printf("%-22s %10llu %15.1f%% %15.1f%%\n", "secondary (fixed)",
              static_cast<unsigned long long>(secondary_run.reads),
              pct(secondary_run, 0), pct(secondary_run, 1));
  std::printf("\nfinal balance fractions: shard0 %.2f, shard1 %.2f\n",
              dcg_run.fraction[0], dcg_run.fraction[1]);
  std::printf("router-dispatched point reads: %llu; worst shard staleness "
              "estimate: %llds (client-wide bound 10s)\n",
              static_cast<unsigned long long>(dcg_run.routed_reads),
              static_cast<long long>(dcg_run.worst_staleness_estimate));

  ShapeCheck("every read went through the mongos router",
             dcg_run.routed_reads >= dcg_run.reads);
  ShapeCheck(
      "the worst shard stays within the shared client-wide staleness bound",
      dcg_run.worst_staleness_estimate <= 10);
  ShapeCheck(
      "the hot shard's balancer shifts most of its reads to secondaries",
      pct(dcg_run, 0) >= 50.0);
  ShapeCheck("the idle shard keeps reading mostly from its fresh primary",
             pct(dcg_run, 1) <= 35.0);
  ShapeCheck(
      "per-shard Decongestant outperforms the hard-coded primary setting",
      dcg_run.reads > 1.2 * primary_run.reads);
  ShapeCheck(
      "and is at least competitive with all-secondary on this skew",
      dcg_run.reads >= 0.9 * secondary_run.reads);
  return 0;
}
