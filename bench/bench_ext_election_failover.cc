// Extension bench: the Fig. 5 question ("does the Balance Fraction find
// the right operating point?") asked across a real Raft-style fail-over.
// The primary is killed at t=200 s; the replica set runs an election
// (pre-vote, real vote, catch-up) and the driver learns the new primary
// from hello. At the swap the Read Balancer discards its latency
// histories and RecentBal — they describe the dead primary — and
// restarts the Algorithm 1 climb from LOWBAL. The trajectory printed
// here shows the fraction's collapse-and-reclimb around the swap, and
// the decision log names the reset (primary_swap_reset) with the term
// it happened in.

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Extension: election fail-over",
         "Raft election at t=200 s: Balance Fraction resets and re-climbs");

  exp::ExperimentConfig config;
  config.seed = 66;
  config.system = exp::SystemType::kDecongestant;
  config.kind = exp::WorkloadKind::kYcsb;
  config.phases = {{0, 30, 0.95}};
  config.duration = sim::Seconds(600);
  config.warmup = sim::Seconds(100);
  config.run_s_workload = false;  // the S probe pair is not failover-aware
  config.repl.raft_elections = true;
  config.repl.election_timeout = sim::Seconds(3);

  {
    fault::FaultEvent crash;
    crash.type = fault::FaultType::kCrash;
    crash.start = sim::Seconds(200);
    crash.nodes = {0};
    fault::FaultEvent restart;
    restart.type = fault::FaultType::kRestart;
    restart.start = sim::Seconds(400);
    restart.nodes = {0};
    config.faults.Add(crash).Add(restart);
  }

  exp::Experiment experiment(config);
  auto& rs = experiment.replica_set();
  experiment.Run();
  experiment.pool().SetTarget(0);
  experiment.loop().RunUntil(sim::Seconds(605));

  PrintSeries(experiment, /*tpcc=*/false);

  // Balance-fraction trajectory around the swap, from the period rows.
  double frac_before = 0, frac_floor = 1.0, frac_recovered = 0;
  int n_before = 0, n_recovered = 0;
  for (const auto& row : experiment.rows()) {
    const double t = sim::ToSeconds(row.start);
    if (t >= 150 && t < 200) {
      frac_before += row.balance_fraction;
      ++n_before;
    } else if (t >= 200 && t < 260) {
      frac_floor = std::min(frac_floor, row.balance_fraction);
    } else if (t >= 300 && t < 400) {
      frac_recovered += row.balance_fraction;
      ++n_recovered;
    }
  }
  frac_before /= n_before;
  frac_recovered /= n_recovered;

  const obs::DecisionLog* decisions = experiment.balancer_decisions();
  const obs::BalanceDecision* swap_reset = nullptr;
  for (const obs::BalanceDecision& d : decisions->entries()) {
    if (d.reason == obs::BalanceReason::kPrimarySwapReset) {
      swap_reset = &d;
      break;
    }
  }

  std::printf("\nbalance fraction: steady %.2f, post-election floor %.2f, "
              "re-climbed %.2f\n",
              frac_before, frac_floor, frac_recovered);
  std::printf("elections: %llu, new primary: node %d, balancer swaps: %llu, "
              "driver pool clears: %llu\n",
              static_cast<unsigned long long>(rs.elections()),
              rs.primary_index(),
              static_cast<unsigned long long>(
                  experiment.balancer()->primary_swaps()),
              static_cast<unsigned long long>(
                  experiment.client().stepdown_pool_clears()));
  if (swap_reset != nullptr) {
    std::printf("swap decision: t=%.1f s reason=%s term=%llu %.2f -> %.2f\n",
                sim::ToSeconds(swap_reset->at),
                std::string(obs::ToString(swap_reset->reason)).c_str(),
                static_cast<unsigned long long>(swap_reset->term),
                swap_reset->from_fraction, swap_reset->to_fraction);
  }

  ShapeCheck("an election replaced the primary", rs.elections() >= 1);
  ShapeCheck("the balancer logged a primary_swap_reset decision",
             swap_reset != nullptr);
  ShapeCheck("the reset names the post-election term (> 1)",
             swap_reset != nullptr && swap_reset->term > 1);
  ShapeCheck("the driver cleared the deposed primary's pool",
             experiment.client().stepdown_pool_clears() >= 1);
  ShapeCheck("the fraction re-climbed after the swap (>= steady - 0.15)",
             frac_recovered >= frac_before - 0.15);
  ShapeCheck("steady fraction was meaningfully above the floor",
             frac_before > 0.2);
  return 0;
}
