// Figure 11: impact of the S workload on the benchmark it monitors.
// Read-write TPC-C throughput of Stock Level transactions, with and
// without the S workload attached, against client count. Read Preference
// hard-coded to Primary (as in the paper).

#include "bench_common.h"

int main() {
  using namespace dcg;
  using namespace dcg::bench;

  Banner("Figure 11",
         "Stock Level throughput with vs without the attached S workload");

  const int paper_counts[] = {50, 75, 100, 125, 150, 175, 200};
  std::printf("%8s %8s %16s %16s %8s\n", "clients", "(sim)",
              "with S (txn/s)", "without S (txn/s)", "delta%");

  double worst_delta = 0;
  for (int paper_clients : paper_counts) {
    double throughput[2];
    for (int s = 0; s < 2; ++s) {
      exp::ExperimentConfig config;
      config.seed = 51;
      config.system = exp::SystemType::kPrimary;
      config.kind = exp::WorkloadKind::kTpcc;
      config.phases = {{0, ScaledClients(paper_clients), 0.5}};
      config.duration = sim::Seconds(220);
      config.warmup = sim::Seconds(100);
      config.run_s_workload = s == 0;
      ApplyTpccDiskProfile(&config);
      exp::Experiment experiment(config);
      experiment.Run();
      throughput[s] = experiment.Summarize().stock_level_throughput;
    }
    const double delta =
        100.0 * (throughput[0] - throughput[1]) / throughput[1];
    worst_delta = std::max(worst_delta, std::abs(delta));
    std::printf("%8d %8d %16.1f %16.1f %+7.1f\n", paper_clients,
                ScaledClients(paper_clients), throughput[0], throughput[1],
                delta);
  }

  ShapeCheck(
      "attaching the S workload changes Stock Level throughput by only a "
      "few percent at every client count",
      worst_delta < 8.0);
  return 0;
}
