// Shared helpers for the figure/table reproduction benches.
//
// Conventions:
//  * Client counts from the paper are scaled by kClientScale (the simulated
//    nodes are deliberately slower than the paper's r4.2xlarge so that long
//    experiments stay cheap; saturation therefore occurs at proportionally
//    fewer closed-loop clients). Every bench prints both numbers.
//  * Each bench prints the same series/rows the corresponding figure
//    plots, plus a SHAPE CHECK block restating the qualitative claim being
//    reproduced.

#ifndef DCG_BENCH_BENCH_COMMON_H_
#define DCG_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/experiment.h"

namespace dcg::bench {

/// Paper-to-simulation client-count scale (see DESIGN.md §5).
constexpr int kClientScale = 4;

inline int ScaledClients(int paper_clients) {
  return std::max(2, paper_clients / kClientScale);
}

inline void Banner(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

inline void Note(const char* text) { std::printf("%s\n", text); }

/// TPC-C experiments use a slower checkpoint disk: the paper's TPC-C runs
/// saturate EBS during checkpoints (§4.5), which is what produces the
/// >15 s flushes that stall getMore and grow staleness past the bound.
inline void ApplyTpccDiskProfile(exp::ExperimentConfig* config) {
  config->server.checkpoint_disk_bw = 2.0e6;
}

/// One row of the Figure 2/3/4-style time series.
inline void PrintSeriesHeader(bool tpcc) {
  std::printf("%8s %12s %10s %8s %10s %7s\n", "time(s)",
              tpcc ? "SL txn/s" : "reads/s", "p80(ms)", "sec(%)", "fraction",
              "est(s)");
}

inline void PrintSeriesRow(const exp::PeriodRow& row, bool tpcc) {
  const double throughput =
      tpcc ? (sim::ToSeconds(row.end - row.start) > 0
                  ? static_cast<double>(row.stock_level) /
                        sim::ToSeconds(row.end - row.start)
                  : 0)
           : row.ReadThroughput();
  const double p80 =
      tpcc ? row.stock_level_latency.Percentile(80) /
                 static_cast<double>(sim::kMillisecond)
           : row.P80ReadLatencyMs();
  std::printf("%8.0f %12.0f %10.2f %8.1f %10.2f %7lld\n",
              sim::ToSeconds(row.start), throughput, p80,
              row.SecondaryPercent(), row.balance_fraction,
              static_cast<long long>(row.est_staleness_max_s));
}

inline void PrintSeries(const exp::Experiment& experiment, bool tpcc) {
  PrintSeriesHeader(tpcc);
  for (const auto& row : experiment.rows()) PrintSeriesRow(row, tpcc);
}

struct SweepPoint {
  int paper_clients = 0;
  exp::Summary summary;
};

inline void PrintSweepTable(const char* system,
                            const std::vector<SweepPoint>& points,
                            bool tpcc) {
  std::printf("\n[%s]\n", system);
  std::printf("%8s %8s %12s %10s %8s %10s\n", "clients", "(sim)",
              tpcc ? "SL txn/s" : "reads/s", "p80(ms)", "sec(%)",
              "p80stale(s)");
  for (const auto& p : points) {
    std::printf("%8d %8d %12.0f %10.2f %8.1f %10.2f\n", p.paper_clients,
                ScaledClients(p.paper_clients),
                tpcc ? p.summary.stock_level_throughput
                     : p.summary.read_throughput,
                tpcc ? p.summary.p80_stock_level_latency_ms
                     : p.summary.p80_read_latency_ms,
                p.summary.secondary_percent, p.summary.p80_staleness_s);
  }
}

inline const char* PassFail(bool ok) { return ok ? "PASS" : "FAIL"; }

inline void ShapeCheck(const char* claim, bool ok) {
  std::printf("SHAPE CHECK [%s]: %s\n", PassFail(ok), claim);
}

}  // namespace dcg::bench

#endif  // DCG_BENCH_BENCH_COMMON_H_
