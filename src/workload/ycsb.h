#ifndef DCG_WORKLOAD_YCSB_H_
#define DCG_WORKLOAD_YCSB_H_

#include <functional>
#include <string>

#include "core/routing_policy.h"
#include "driver/client.h"
#include "store/database.h"
#include "workload/key_chooser.h"
#include "workload/workload.h"

namespace dcg::workload {

/// YCSB configuration. The paper uses YCSB-A (50 % reads / 50 % updates)
/// and YCSB-B (95 % reads / 5 % updates), both with zipfian key choice.
struct YcsbConfig {
  int64_t record_count = 20'000;
  int field_count = 5;
  int field_length = 40;
  double read_proportion = 0.5;  // A = 0.5, B = 0.95
  double zipfian_theta = 0.99;
  std::string table = "usertable";
  /// Sharded runs: stamp collection + shard key (the record id) on every
  /// op so a shard::Router can resolve the owning shard. Inert against a
  /// plain replica set (the unsharded server ignores routing info).
  bool stamp_route = false;

  static YcsbConfig WorkloadA() {
    YcsbConfig c;
    c.read_proportion = 0.5;
    return c;
  }
  static YcsbConfig WorkloadB() {
    YcsbConfig c;
    c.read_proportion = 0.95;
    return c;
  }
};

/// YCSB over the replica set: point reads routed by the RoutingPolicy,
/// single-field updates always to the primary.
class YcsbWorkload : public Workload {
 public:
  YcsbWorkload(driver::MongoClient* client, core::RoutingPolicy* policy,
               YcsbConfig config, sim::Rng rng);

  /// Populates `db` with the record set. Call once per replica node before
  /// the run — the experiment starts from an already-replicated snapshot,
  /// like restoring all nodes from the same backup. `keep` filters the
  /// record ids loaded (sharded runs load each node with only the records
  /// its shard owns); field content is generated identically either way,
  /// so the union across shards equals the unsharded snapshot.
  static void Load(const YcsbConfig& config, store::Database* db,
                   const std::function<bool(int64_t)>& keep = nullptr);

  /// Switches the read/write mix mid-run (the Figure 2/3 phase changes).
  void set_read_proportion(double p) { config_.read_proportion = p; }
  double read_proportion() const { return config_.read_proportion; }

  void Issue(int client_idx, Done done) override;
  std::string_view name() const override { return "ycsb"; }

  uint64_t reads_issued() const { return reads_issued_; }
  uint64_t updates_issued() const { return updates_issued_; }
  /// Reads that found no document (should stay 0 — asserts data integrity
  /// across routing and replication).
  uint64_t missing_reads() const { return missing_reads_; }

 private:
  void IssueRead(Done done);
  void IssueUpdate(Done done);

  driver::MongoClient* client_;
  core::RoutingPolicy* policy_;
  YcsbConfig config_;
  sim::Rng rng_;
  ScrambledZipfianGenerator key_chooser_;
  uint64_t reads_issued_ = 0;
  uint64_t updates_issued_ = 0;
  uint64_t missing_reads_ = 0;
};

}  // namespace dcg::workload

#endif  // DCG_WORKLOAD_YCSB_H_
