#ifndef DCG_WORKLOAD_WORKLOAD_H_
#define DCG_WORKLOAD_WORKLOAD_H_

#include <functional>
#include <string_view>

#include "repl/oplog.h"
#include "sim/time.h"

namespace dcg::workload {

/// The result of one application operation/transaction, as the experiment
/// recorder sees it.
struct OpOutcome {
  /// Stable label: "read", "update", "stock_level", "new_order", ...
  std::string_view type;
  /// True for read-only transactions — the ones Decongestant routes.
  bool read_only = false;
  /// True when the operation was served by a secondary node.
  bool used_secondary = false;
  /// False for programmed rollbacks (TPC-C New Order's 1 %).
  bool committed = true;
  /// End-to-end latency observed by the client.
  sim::Duration latency = 0;
  /// Replica-set node index that served the operation; -1 when unknown
  /// (e.g. multi-node transactions).
  int node = -1;
  /// lastAppliedOpTime of the serving node when the read executed — the
  /// data's ground-truth freshness (chaos-harness invariant input).
  repl::OpTime operation_time;
  /// False when the driver gave up (deadline hit or retry budget spent);
  /// `operation_time`/`node` are then meaningless.
  bool ok = true;
  /// True when the op failed by exceeding its client-side deadline.
  bool timed_out = false;
  /// Retry attempts the driver needed (0 = first attempt answered).
  int retries = 0;
  /// Hedged-read bookkeeping: whether a hedge was sent / answered first.
  bool hedged = false;
  bool hedge_won = false;
  /// Pool checkout wait included in `latency` (queueing + connection
  /// establishment across all attempts of the op).
  sim::Duration checkout_wait = 0;
};

/// A closed-loop workload generator: `Issue` starts one operation for a
/// client slot and reports its outcome when it completes. The ClientPool
/// drives N concurrent slots against it.
class Workload {
 public:
  virtual ~Workload() = default;

  using Done = std::function<void(const OpOutcome&)>;
  virtual void Issue(int client_idx, Done done) = 0;

  virtual std::string_view name() const = 0;
};

}  // namespace dcg::workload

#endif  // DCG_WORKLOAD_WORKLOAD_H_
