#ifndef DCG_WORKLOAD_TPCC_H_
#define DCG_WORKLOAD_TPCC_H_

#include <string>

#include "core/routing_policy.h"
#include "driver/client.h"
#include "store/database.h"
#include "workload/workload.h"

namespace dcg::workload {

/// Transaction mix, in probabilities that must sum to 1. The paper's
/// read-write TPC-C (Table 1) raises Stock Level — the read-only
/// transaction Decongestant routes — to 50 %.
struct TpccMix {
  double stock_level = 0.50;
  double delivery = 0.04;
  double order_status = 0.04;
  double payment = 0.20;
  double new_order = 0.22;
};

/// TPC-C configuration, scaled down for the simulation (documented in
/// DESIGN.md: smaller per-district populations keep three replicas of the
/// dataset in memory; an archival cap removes the oldest order per
/// district so long runs don't grow without bound).
struct TpccConfig {
  int warehouses = 4;
  int districts_per_warehouse = 10;
  int customers_per_district = 150;
  int items = 2000;
  int initial_orders_per_district = 150;
  /// When a district exceeds this many retained orders, New Order archives
  /// (removes) the oldest one in the same transaction.
  int max_orders_per_district = 400;
  double new_order_abort_rate = 0.01;
  /// Stock Level threshold is drawn uniformly from [lo, hi].
  int stock_level_threshold_lo = 10;
  int stock_level_threshold_hi = 20;
  /// Stock Level examines the most recent `stock_level_orders` orders.
  int stock_level_orders = 20;
  TpccMix mix;

  /// The paper's read-write TPC-C (Table 1, right column).
  static TpccConfig ReadWrite() { return TpccConfig{}; }

  /// Classic write-heavy TPC-C (Table 1, left column: 4/4/4/43/45).
  static TpccConfig Standard() {
    TpccConfig c;
    c.mix = TpccMix{0.04, 0.04, 0.04, 0.43, 0.45};
    return c;
  }
};

/// The Kamsky-style document adaptation of TPC-C over the replica set:
/// order lines are embedded in the order document, Stock Level and Order
/// Status are read-only transactions routed by the RoutingPolicy, and the
/// three write transactions always execute on the primary.
class TpccWorkload : public Workload {
 public:
  TpccWorkload(driver::MongoClient* client, core::RoutingPolicy* policy,
               TpccConfig config, sim::Rng rng);

  /// Builds the initial dataset in `db` (call per node; fixed seed, so all
  /// replicas start identical).
  static void Load(const TpccConfig& config, store::Database* db);

  void Issue(int client_idx, Done done) override;
  std::string_view name() const override { return "tpcc"; }

  uint64_t stock_level_count() const { return stock_level_count_; }
  uint64_t new_order_count() const { return new_order_count_; }
  uint64_t payment_count() const { return payment_count_; }
  uint64_t order_status_count() const { return order_status_count_; }
  uint64_t delivery_count() const { return delivery_count_; }
  uint64_t new_order_aborts() const { return new_order_aborts_; }

 private:
  void DoStockLevel(Done done);
  void DoNewOrder(Done done);
  void DoPayment(Done done);
  void DoOrderStatus(Done done);
  void DoDelivery(Done done);

  int RandomWarehouse();
  int RandomDistrict();
  int RandomCustomer();
  int64_t RandomItem();

  driver::MongoClient* client_;
  core::RoutingPolicy* policy_;
  TpccConfig config_;
  sim::Rng rng_;
  int64_t next_history_id_ = 1'000'000'000;  // disjoint from loaded ids
  uint64_t stock_level_count_ = 0;
  uint64_t new_order_count_ = 0;
  uint64_t payment_count_ = 0;
  uint64_t order_status_count_ = 0;
  uint64_t delivery_count_ = 0;
  uint64_t new_order_aborts_ = 0;
};

}  // namespace dcg::workload

#endif  // DCG_WORKLOAD_TPCC_H_
