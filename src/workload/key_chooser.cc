#include "workload/key_chooser.h"

#include <cmath>

#include "util/check.h"

namespace dcg::workload {

ZipfianGenerator::ZipfianGenerator(int64_t n, double theta)
    : n_(n), theta_(theta) {
  DCG_CHECK(n >= 1);
  DCG_CHECK(theta > 0.0 && theta < 1.0);
  zetan_ = ZetaStatic(n, theta);
  zeta2theta_ = ZetaStatic(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::ZetaStatic(int64_t n, double theta) {
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

int64_t ZipfianGenerator::Next(sim::Rng* rng) {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto result = static_cast<int64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return result >= n_ ? n_ - 1 : result;
}

int64_t ScrambledZipfianGenerator::Next(sim::Rng* rng) {
  const int64_t rank = inner_.Next(rng);
  // FNV-1a scatter.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (static_cast<uint64_t>(rank) >> shift) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return static_cast<int64_t>(h % static_cast<uint64_t>(n_));
}

int64_t NURand(sim::Rng* rng, int64_t a, int64_t x, int64_t y, int64_t c) {
  const int64_t lhs = rng->UniformInt(0, a);
  const int64_t rhs = rng->UniformInt(x, y);
  return (((lhs | rhs) + c) % (y - x + 1)) + x;
}

}  // namespace dcg::workload
