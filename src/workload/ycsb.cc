#include "workload/ycsb.h"

#include <memory>
#include <utility>

#include "util/check.h"

namespace dcg::workload {
namespace {

std::string FieldName(int i) { return "field" + std::to_string(i); }

// Deterministic filler text: content doesn't matter, size does.
std::string FieldValue(sim::Rng* rng, int length) {
  std::string s(static_cast<size_t>(length), 'x');
  for (char& c : s) {
    c = static_cast<char>('a' + rng->UniformInt(0, 25));
  }
  return s;
}

}  // namespace

YcsbWorkload::YcsbWorkload(driver::MongoClient* client,
                           core::RoutingPolicy* policy, YcsbConfig config,
                           sim::Rng rng)
    : client_(client),
      policy_(policy),
      config_(config),
      rng_(std::move(rng)),
      key_chooser_(config.record_count, config.zipfian_theta) {}

void YcsbWorkload::Load(const YcsbConfig& config, store::Database* db,
                        const std::function<bool(int64_t)>& keep) {
  // A fixed seed independent of the experiment seed: every node loads the
  // byte-identical snapshot. The RNG is consumed for every record even
  // when `keep` filters it out, so a shard's kept records carry the same
  // field bytes they would in the unsharded snapshot.
  sim::Rng rng(0x5eed5eedULL);
  store::Collection& table = db->GetOrCreate(config.table);
  for (int64_t key = 0; key < config.record_count; ++key) {
    doc::Object fields;
    fields.reserve(static_cast<size_t>(config.field_count) + 1);
    fields.emplace_back("_id", doc::Value(key));
    for (int f = 0; f < config.field_count; ++f) {
      fields.emplace_back(FieldName(f),
                          doc::Value(FieldValue(&rng, config.field_length)));
    }
    if (keep != nullptr && !keep(key)) continue;
    const bool inserted = table.Insert(doc::Value(std::move(fields)));
    DCG_CHECK(inserted);
  }
}

void YcsbWorkload::Issue(int /*client_idx*/, Done done) {
  if (rng_.Bernoulli(config_.read_proportion)) {
    IssueRead(std::move(done));
  } else {
    IssueUpdate(std::move(done));
  }
}

void YcsbWorkload::IssueRead(Done done) {
  ++reads_issued_;
  const int64_t key = key_chooser_.Next(&rng_);
  const driver::ReadPreference pref = policy_->ChooseReadPreference(&rng_);
  driver::OpOptions opts;
  if (config_.stamp_route) {
    opts.route.collection = config_.table;
    opts.route.has_key = true;
    opts.route.key = doc::Value(key);
  }
  auto found = std::make_shared<bool>(false);
  client_->Read(
      pref, server::OpClass::kPointRead,
      [this, key, found](const store::Database& db) {
        const store::Collection* table = db.Get(config_.table);
        *found = table != nullptr &&
                 table->FindById(doc::Value(key)) != nullptr;
      },
      [this, found, done = std::move(done)](
          const driver::MongoClient::ReadResult& r) {
        // Latency feedback to the balancer flows through the driver's
        // completion path now — no per-workload reporting.
        if (r.ok && !*found) ++missing_reads_;
        OpOutcome outcome;
        outcome.type = "read";
        outcome.read_only = true;
        outcome.used_secondary = r.used_secondary;
        outcome.latency = r.latency;
        outcome.node = r.node;
        outcome.operation_time = r.operation_time;
        outcome.ok = r.ok;
        outcome.timed_out = r.timed_out;
        outcome.retries = r.retries;
        outcome.hedged = r.hedged;
        outcome.hedge_won = r.hedge_won;
        outcome.checkout_wait = r.checkout_wait;
        done(outcome);
      },
      std::move(opts));
}

void YcsbWorkload::IssueUpdate(Done done) {
  ++updates_issued_;
  const int64_t key = key_chooser_.Next(&rng_);
  const int field = static_cast<int>(
      rng_.UniformInt(0, config_.field_count - 1));
  doc::UpdateSpec spec;
  spec.Set(FieldName(field),
           doc::Value(FieldValue(&rng_, config_.field_length)));
  driver::OpOptions opts;
  if (config_.stamp_route) {
    opts.route.collection = config_.table;
    opts.route.has_key = true;
    opts.route.key = doc::Value(key);
  }
  client_->Write(
      server::OpClass::kUpdate,
      [this, key, spec = std::move(spec)](repl::TxnContext* ctx) {
        const bool ok = ctx->Update(config_.table, doc::Value(key), spec);
        DCG_CHECK_MSG(ok, "YCSB update of missing key");
      },
      [done = std::move(done)](const driver::MongoClient::WriteResult& r) {
        OpOutcome outcome;
        outcome.type = "update";
        outcome.read_only = false;
        outcome.committed = r.committed;
        outcome.latency = r.latency;
        outcome.ok = r.ok;
        outcome.timed_out = r.timed_out;
        outcome.retries = r.retries;
        outcome.checkout_wait = r.checkout_wait;
        done(outcome);
      },
      repl::WriteConcern::kW1, std::move(opts));
}

}  // namespace dcg::workload
