#ifndef DCG_WORKLOAD_S_WORKLOAD_H_
#define DCG_WORKLOAD_S_WORKLOAD_H_

#include <functional>
#include <string>

#include "driver/client.h"
#include "store/database.h"

namespace dcg::workload {

/// Configuration for the staleness-monitoring S workload (§4.1.5).
struct SWorkloadConfig {
  /// How often the writer stamps the probe document.
  sim::Duration write_interval = sim::Millis(50);
  /// How often the reader probes.
  sim::Duration probe_interval = sim::Millis(200);
  std::string collection = "s_probe";
};

/// The S workload: a writer that keeps writing the current (simulated)
/// timestamp into a dedicated document, and a reader that periodically
/// issues a *pair* of reads — one with Read Preference Primary, one with
/// Secondary — and reports the staleness of the secondary's value as the
/// difference between the two returned timestamps.
///
/// When the application is not using secondaries at all (the supplied
/// `secondary_in_use` callback returns false), the second probe read also
/// goes to the primary, so no fake staleness is reported — the refinement
/// §4.1.5 introduces over the authors' earlier send-time-based method.
class SWorkload {
 public:
  /// `on_sample(staleness_seconds)` fires once per completed probe pair.
  SWorkload(driver::MongoClient* client,
            std::function<bool()> secondary_in_use, SWorkloadConfig config,
            sim::Rng rng, std::function<void(double)> on_sample);

  /// Seeds the probe document; call on every node's database before the
  /// run (same pre-replicated-snapshot convention as the main workloads).
  static void Load(const SWorkloadConfig& config, store::Database* db);

  /// Starts the writer and reader loops.
  void Start();

  uint64_t writes_completed() const { return writes_completed_; }
  uint64_t probes_completed() const { return probes_completed_; }
  double max_staleness_seen() const { return max_staleness_seen_; }

 private:
  void WriterLoop();
  void ReaderLoop();

  driver::MongoClient* client_;
  std::function<bool()> secondary_in_use_;
  SWorkloadConfig config_;
  sim::Rng rng_;
  std::function<void(double)> on_sample_;
  uint64_t writes_completed_ = 0;
  uint64_t probes_completed_ = 0;
  double max_staleness_seen_ = 0.0;
};

}  // namespace dcg::workload

#endif  // DCG_WORKLOAD_S_WORKLOAD_H_
