#include "workload/s_workload.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "doc/update.h"
#include "util/check.h"

namespace dcg::workload {
namespace {
constexpr int64_t kProbeId = 0;
}  // namespace

SWorkload::SWorkload(driver::MongoClient* client,
                     std::function<bool()> secondary_in_use,
                     SWorkloadConfig config, sim::Rng rng,
                     std::function<void(double)> on_sample)
    : client_(client),
      secondary_in_use_(std::move(secondary_in_use)),
      config_(std::move(config)),
      rng_(std::move(rng)),
      on_sample_(std::move(on_sample)) {}

void SWorkload::Load(const SWorkloadConfig& config, store::Database* db) {
  store::Collection& coll = db->GetOrCreate(config.collection);
  coll.Upsert(doc::Value::Doc(
      {{"_id", kProbeId}, {"ts", doc::Value::Timestamp(0)}}));
}

void SWorkload::Start() {
  WriterLoop();
  ReaderLoop();
}

void SWorkload::WriterLoop() {
  const sim::Time issued_at = client_->loop().Now();
  doc::UpdateSpec spec;
  spec.Set("ts", doc::Value::Timestamp(issued_at));
  client_->Write(
      server::OpClass::kUpdate,
      [this, spec = std::move(spec)](repl::TxnContext* ctx) {
        const bool ok =
            ctx->Update(config_.collection, doc::Value(kProbeId), spec);
        DCG_CHECK(ok);
      },
      [this](const driver::MongoClient::WriteResult&) {
        ++writes_completed_;
        // Closed loop with a floor interval: at least as fast as the
        // reader, but it backs off naturally when the primary is slow.
        client_->loop().ScheduleAfter(config_.write_interval,
                                      [this] { WriterLoop(); });
      });
}

void SWorkload::ReaderLoop() {
  struct ProbeState {
    sim::Time primary_ts = -1;
    sim::Time secondary_ts = -1;
    // The timestamps are filled in server-side (by the read bodies), so
    // both may already be set when the *first* completion callback runs;
    // this flag makes sure only one callback finishes the probe.
    bool finished = false;
  };
  auto state = std::make_shared<ProbeState>();

  auto read_ts = [this](const store::Database& db) -> sim::Time {
    const store::Collection* coll = db.Get(config_.collection);
    if (coll == nullptr) return 0;
    store::DocPtr d = coll->FindById(doc::Value(kProbeId));
    if (d == nullptr) return 0;
    const doc::Value* ts = d->Find("ts");
    return ts == nullptr ? 0 : ts->as_timestamp();
  };

  const bool probe_secondary =
      secondary_in_use_ ? secondary_in_use_() : true;
  auto maybe_finish = [this, state, probe_secondary] {
    if (state->finished || state->primary_ts < 0 || state->secondary_ts < 0) {
      return;
    }
    state->finished = true;
    // When both probes went to the primary (application not using
    // secondaries), the value is fresh by definition; comparing the two
    // reads would only measure their scheduling skew.
    const double staleness =
        !probe_secondary
            ? 0.0
            : std::max(0.0,
                       sim::ToSeconds(state->primary_ts -
                                      state->secondary_ts));
    ++probes_completed_;
    max_staleness_seen_ = std::max(max_staleness_seen_, staleness);
    if (on_sample_) on_sample_(staleness);
    client_->loop().ScheduleAfter(config_.probe_interval,
                                  [this] { ReaderLoop(); });
  };

  // Control-plane probes: keep them out of the balancer's latency lists
  // and never hedge them (a hedge could answer from a different node than
  // the one being measured).
  driver::OpOptions probe_opts;
  probe_opts.hedge_eligible = false;
  probe_opts.record_latency = false;
  client_->Read(
      driver::ReadPreference::kPrimary, server::OpClass::kPointRead,
      [state, read_ts](const store::Database& db) {
        state->primary_ts = read_ts(db);
      },
      [maybe_finish](const driver::MongoClient::ReadResult&) {
        maybe_finish();
      },
      probe_opts);
  client_->Read(
      probe_secondary ? driver::ReadPreference::kSecondary
                      : driver::ReadPreference::kPrimary,
      server::OpClass::kPointRead,
      [state, read_ts](const store::Database& db) {
        state->secondary_ts = read_ts(db);
      },
      [maybe_finish](const driver::MongoClient::ReadResult&) {
        maybe_finish();
      },
      probe_opts);
}

}  // namespace dcg::workload
