#ifndef DCG_WORKLOAD_KEY_CHOOSER_H_
#define DCG_WORKLOAD_KEY_CHOOSER_H_

#include <cstdint>

#include "sim/random.h"

namespace dcg::workload {

/// YCSB's Zipfian generator (Gray et al.'s algorithm, as in the YCSB
/// reference implementation): values in [0, n) with frequency ∝ 1/rank^θ.
class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(int64_t n, double theta = 0.99);

  int64_t Next(sim::Rng* rng);

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double ZetaStatic(int64_t n, double theta);

  int64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// Zipfian with the popular items scattered across the key space (YCSB's
/// "scrambled zipfian"): avoids hot keys being physically adjacent.
class ScrambledZipfianGenerator {
 public:
  explicit ScrambledZipfianGenerator(int64_t n, double theta = 0.99)
      : inner_(n, theta), n_(n) {}

  int64_t Next(sim::Rng* rng);

 private:
  ZipfianGenerator inner_;
  int64_t n_;
};

/// Uniform over [0, n).
class UniformKeyChooser {
 public:
  explicit UniformKeyChooser(int64_t n) : n_(n) {}
  int64_t Next(sim::Rng* rng) { return rng->UniformInt(0, n_ - 1); }

 private:
  int64_t n_;
};

/// TPC-C's NURand non-uniform distribution.
int64_t NURand(sim::Rng* rng, int64_t a, int64_t x, int64_t y, int64_t c);

}  // namespace dcg::workload

#endif  // DCG_WORKLOAD_KEY_CHOOSER_H_
