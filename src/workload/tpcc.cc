#include "workload/tpcc.h"

#include <memory>
#include <algorithm>
#include <set>
#include <vector>
#include <utility>

#include "doc/update.h"
#include "util/check.h"
#include "workload/key_chooser.h"

namespace dcg::workload {
namespace {

// Collection names.
constexpr char kWarehouse[] = "warehouse";
constexpr char kDistrict[] = "district";
constexpr char kCustomer[] = "customer";
constexpr char kItem[] = "item";
constexpr char kStock[] = "stock";
constexpr char kOrders[] = "orders";
constexpr char kNewOrder[] = "new_order";
constexpr char kHistory[] = "history";
constexpr char kOrdersByCustomer[] = "orders_by_customer";

doc::Value DistrictId(int w, int d) {
  return doc::Value::List({int64_t{w}, int64_t{d}});
}
doc::Value CustomerId(int w, int d, int c) {
  return doc::Value::List({int64_t{w}, int64_t{d}, int64_t{c}});
}
doc::Value OrderId(int w, int d, int64_t o) {
  return doc::Value::List({int64_t{w}, int64_t{d}, o});
}
doc::Value StockId(int w, int64_t i) {
  return doc::Value::List({int64_t{w}, i});
}

int64_t GetInt(const doc::Value& d, std::string_view field) {
  const doc::Value* v = d.Find(field);
  DCG_CHECK(v != nullptr && v->is_int64());
  return v->as_int64();
}

double GetNumber(const doc::Value& d, std::string_view field) {
  const doc::Value* v = d.Find(field);
  DCG_CHECK(v != nullptr && v->is_number());
  return v->as_number();
}

// Builds one order document. `lines` entries: {ol_i_id, ol_quantity,
// ol_amount}.
doc::Value MakeOrderDoc(int w, int d, int64_t o, int c, sim::Time entry,
                        const doc::Array& lines, bool delivered,
                        int carrier) {
  doc::Value order = doc::Value::Doc({
      {"_id", OrderId(w, d, o)},
      {"o_w_id", int64_t{w}},
      {"o_d_id", int64_t{d}},
      {"o_c_id", int64_t{c}},
      {"o_entry_d", doc::Value::Timestamp(entry)},
      {"o_ol_cnt", static_cast<int64_t>(lines.size())},
      {"o_carrier_id", delivered ? doc::Value(int64_t{carrier})
                                 : doc::Value()},
      {"o_delivery_d",
       delivered ? doc::Value::Timestamp(entry) : doc::Value()},
      {"o_lines", doc::Value(lines)},
  });
  return order;
}

doc::Value MakeLine(int64_t item, int64_t qty, double amount) {
  return doc::Value::Doc({{"ol_i_id", item},
                          {"ol_quantity", qty},
                          {"ol_amount", amount}});
}

}  // namespace

TpccWorkload::TpccWorkload(driver::MongoClient* client,
                           core::RoutingPolicy* policy, TpccConfig config,
                           sim::Rng rng)
    : client_(client),
      policy_(policy),
      config_(config),
      rng_(std::move(rng)) {
  const double total = config_.mix.stock_level + config_.mix.delivery +
                       config_.mix.order_status + config_.mix.payment +
                       config_.mix.new_order;
  DCG_CHECK_MSG(total > 0.999 && total < 1.001, "TPC-C mix must sum to 1");
}

int TpccWorkload::RandomWarehouse() {
  return static_cast<int>(rng_.UniformInt(1, config_.warehouses));
}
int TpccWorkload::RandomDistrict() {
  return static_cast<int>(rng_.UniformInt(1, config_.districts_per_warehouse));
}
int TpccWorkload::RandomCustomer() {
  return static_cast<int>(
      NURand(&rng_, 1023, 1, config_.customers_per_district, 7));
}
int64_t TpccWorkload::RandomItem() {
  return NURand(&rng_, 8191, 1, config_.items, 13);
}

void TpccWorkload::Load(const TpccConfig& config, store::Database* db) {
  sim::Rng rng(0x79cc5eedULL);

  store::Collection& items = db->GetOrCreate(kItem);
  for (int64_t i = 1; i <= config.items; ++i) {
    items.Upsert(doc::Value::Doc(
        {{"_id", i},
         {"i_name", "item-" + std::to_string(i)},
         {"i_price", 1.0 + rng.NextDouble() * 99.0}}));
  }

  store::Collection& warehouses = db->GetOrCreate(kWarehouse);
  store::Collection& districts = db->GetOrCreate(kDistrict);
  store::Collection& customers = db->GetOrCreate(kCustomer);
  store::Collection& stock = db->GetOrCreate(kStock);
  store::Collection& orders = db->GetOrCreate(kOrders);
  store::Collection& new_orders = db->GetOrCreate(kNewOrder);
  db->GetOrCreate(kHistory);

  for (int w = 1; w <= config.warehouses; ++w) {
    warehouses.Upsert(doc::Value::Doc(
        {{"_id", int64_t{w}},
         {"w_name", "wh-" + std::to_string(w)},
         {"w_tax", rng.NextDouble() * 0.2},
         {"w_ytd", 300000.0}}));
    for (int64_t i = 1; i <= config.items; ++i) {
      stock.Upsert(doc::Value::Doc(
          {{"_id", StockId(w, i)},
           {"s_quantity", rng.UniformInt(10, 100)},
           {"s_ytd", int64_t{0}},
           {"s_order_cnt", int64_t{0}},
           {"s_remote_cnt", int64_t{0}}}));
    }
    for (int d = 1; d <= config.districts_per_warehouse; ++d) {
      const int64_t initial = config.initial_orders_per_district;
      // Oldest ~70 % of the initial orders are delivered; the tail is
      // still pending in new_order, as TPC-C's load spec prescribes.
      const int64_t first_undelivered = initial * 7 / 10 + 1;
      districts.Upsert(doc::Value::Doc(
          {{"_id", DistrictId(w, d)},
           {"d_tax", rng.NextDouble() * 0.2},
           {"d_ytd", 30000.0},
           {"d_next_o_id", initial + 1},
           {"d_next_del_o_id", first_undelivered},
           {"d_oldest_o_id", int64_t{1}}}));
      for (int c = 1; c <= config.customers_per_district; ++c) {
        customers.Upsert(doc::Value::Doc(
            {{"_id", CustomerId(w, d, c)},
             {"c_last", "customer-" + std::to_string(c)},
             {"c_credit", (rng.NextDouble() < 0.1) ? "BC" : "GC"},
             {"c_balance", -10.0},
             {"c_ytd_payment", 10.0},
             {"c_payment_cnt", int64_t{1}},
             {"c_delivery_cnt", int64_t{0}}}));
      }
      for (int64_t o = 1; o <= initial; ++o) {
        const int c = static_cast<int>(
            (o - 1) % config.customers_per_district + 1);
        const int64_t ol_cnt = rng.UniformInt(5, 15);
        doc::Array lines;
        for (int64_t l = 0; l < ol_cnt; ++l) {
          lines.push_back(MakeLine(rng.UniformInt(1, config.items),
                                   rng.UniformInt(1, 10),
                                   1.0 + rng.NextDouble() * 999.0));
        }
        const bool delivered = o < first_undelivered;
        orders.Upsert(MakeOrderDoc(w, d, o, c, /*entry=*/0, lines, delivered,
                                   static_cast<int>(rng.UniformInt(1, 10))));
        if (!delivered) {
          new_orders.Upsert(doc::Value::Doc({{"_id", OrderId(w, d, o)}}));
        }
      }
    }
  }
  orders.CreateIndex(kOrdersByCustomer, {"o_w_id", "o_d_id", "o_c_id"});
}

void TpccWorkload::Issue(int /*client_idx*/, Done done) {
  const double u = rng_.NextDouble();
  const TpccMix& mix = config_.mix;
  if (u < mix.stock_level) {
    DoStockLevel(std::move(done));
  } else if (u < mix.stock_level + mix.delivery) {
    DoDelivery(std::move(done));
  } else if (u < mix.stock_level + mix.delivery + mix.order_status) {
    DoOrderStatus(std::move(done));
  } else if (u <
             mix.stock_level + mix.delivery + mix.order_status + mix.payment) {
    DoPayment(std::move(done));
  } else {
    DoNewOrder(std::move(done));
  }
}

// Stock Level (read-only): how many of the items in the district's last 20
// orders have stock below a threshold.
void TpccWorkload::DoStockLevel(Done done) {
  ++stock_level_count_;
  const int w = RandomWarehouse();
  const int d = RandomDistrict();
  const int64_t threshold = rng_.UniformInt(config_.stock_level_threshold_lo,
                                            config_.stock_level_threshold_hi);
  const driver::ReadPreference pref = policy_->ChooseReadPreference(&rng_);
  const int recent = config_.stock_level_orders;
  client_->Read(
      pref, server::OpClass::kTpccStockLevel,
      [this, w, d, threshold, recent](const store::Database& db) {
        const store::Collection* districts = db.Get(kDistrict);
        const store::Collection* orders = db.Get(kOrders);
        const store::Collection* stock = db.Get(kStock);
        if (districts == nullptr || orders == nullptr || stock == nullptr) {
          return;
        }
        store::DocPtr district = districts->FindById(DistrictId(w, d));
        if (district == nullptr) return;
        const int64_t next_o = GetInt(*district, "d_next_o_id");
        const int64_t lo = std::max<int64_t>(1, next_o - recent);
        std::set<int64_t> item_ids;
        for (const store::DocPtr& order :
             orders->RangeById(OrderId(w, d, lo), OrderId(w, d, next_o - 1))) {
          const doc::Value* lines = order->Find("o_lines");
          if (lines == nullptr) continue;
          for (const doc::Value& line : lines->as_array()) {
            item_ids.insert(GetInt(line, "ol_i_id"));
          }
        }
        int64_t low_stock = 0;
        for (int64_t i : item_ids) {
          store::DocPtr s = stock->FindById(StockId(w, i));
          if (s != nullptr && GetInt(*s, "s_quantity") < threshold) {
            ++low_stock;
          }
        }
      },
      [done = std::move(done)](const driver::MongoClient::ReadResult& r) {
        OpOutcome outcome;
        outcome.type = "stock_level";
        outcome.read_only = true;
        outcome.used_secondary = r.used_secondary;
        outcome.latency = r.latency;
        outcome.node = r.node;
        outcome.operation_time = r.operation_time;
        outcome.ok = r.ok;
        outcome.timed_out = r.timed_out;
        outcome.retries = r.retries;
        outcome.hedged = r.hedged;
        outcome.hedge_won = r.hedge_won;
        outcome.checkout_wait = r.checkout_wait;
        done(outcome);
      });
}

void TpccWorkload::DoNewOrder(Done done) {
  ++new_order_count_;
  const int w = RandomWarehouse();
  const int d = RandomDistrict();
  const int c = RandomCustomer();
  const int64_t ol_cnt = rng_.UniformInt(5, 15);
  struct LineReq {
    int64_t item;
    int64_t qty;
  };
  std::vector<LineReq> reqs;
  reqs.reserve(static_cast<size_t>(ol_cnt));
  for (int64_t l = 0; l < ol_cnt; ++l) {
    reqs.push_back({RandomItem(), rng_.UniformInt(1, 10)});
  }
  const bool abort = rng_.Bernoulli(config_.new_order_abort_rate);

  client_->Write(
      server::OpClass::kTpccNewOrder,
      [this, w, d, c, reqs = std::move(reqs), abort](repl::TxnContext* ctx) {
        const store::Collection* districts = ctx->db().Get(kDistrict);
        store::DocPtr district = districts->FindById(DistrictId(w, d));
        DCG_CHECK(district != nullptr);
        const int64_t o = GetInt(*district, "d_next_o_id");
        doc::UpdateSpec bump;
        bump.Inc("d_next_o_id", int64_t{1});
        ctx->Update(kDistrict, DistrictId(w, d), bump);

        const store::Collection* items = ctx->db().Get(kItem);
        const store::Collection* stock = ctx->db().Get(kStock);
        doc::Array lines;
        for (const LineReq& req : reqs) {
          store::DocPtr item = items->FindById(doc::Value(req.item));
          DCG_CHECK(item != nullptr);
          const double amount =
              GetNumber(*item, "i_price") * static_cast<double>(req.qty);
          store::DocPtr s = stock->FindById(StockId(w, req.item));
          DCG_CHECK(s != nullptr);
          int64_t new_q = GetInt(*s, "s_quantity") - req.qty;
          if (new_q < 10) new_q += 91;
          doc::UpdateSpec stock_update;
          stock_update.Set("s_quantity", new_q)
              .Inc("s_ytd", req.qty)
              .Inc("s_order_cnt", int64_t{1});
          ctx->Update(kStock, StockId(w, req.item), stock_update);
          lines.push_back(MakeLine(req.item, req.qty, amount));
        }

        ctx->Insert(kOrders,
                    MakeOrderDoc(w, d, o, c, client_->loop().Now(), lines,
                                 /*delivered=*/false, /*carrier=*/0));
        ctx->Insert(kNewOrder, doc::Value::Doc({{"_id", OrderId(w, d, o)}}));

        // Archival cap: drop the district's oldest order in the same
        // transaction once it holds too many (memory-bounding measure,
        // see DESIGN.md).
        const int64_t oldest = GetInt(*district, "d_oldest_o_id");
        if (o - oldest >= config_.max_orders_per_district) {
          ctx->Remove(kOrders, OrderId(w, d, oldest));
          ctx->Remove(kNewOrder, OrderId(w, d, oldest));  // may be absent
          doc::UpdateSpec adv;
          adv.Inc("d_oldest_o_id", int64_t{1});
          ctx->Update(kDistrict, DistrictId(w, d), adv);
        }

        if (abort) {
          // TPC-C: 1 % of New Orders hit an unused item id on their last
          // line and roll back.
          ctx->Abort();
        }
      },
      [this, done = std::move(done)](
          const driver::MongoClient::WriteResult& r) {
        if (r.ok && !r.committed) ++new_order_aborts_;
        OpOutcome outcome;
        outcome.type = "new_order";
        outcome.committed = r.committed;
        outcome.latency = r.latency;
        outcome.ok = r.ok;
        outcome.timed_out = r.timed_out;
        outcome.retries = r.retries;
        outcome.checkout_wait = r.checkout_wait;
        done(outcome);
      });
}

void TpccWorkload::DoPayment(Done done) {
  ++payment_count_;
  const int w = RandomWarehouse();
  const int d = RandomDistrict();
  const int c = RandomCustomer();
  const double amount = 1.0 + rng_.NextDouble() * 4999.0;
  const int64_t history_id = next_history_id_++;

  client_->Write(
      server::OpClass::kTpccPayment,
      [this, w, d, c, amount, history_id](repl::TxnContext* ctx) {
        doc::UpdateSpec w_up;
        w_up.Inc("w_ytd", amount);
        ctx->Update(kWarehouse, doc::Value(int64_t{w}), w_up);
        doc::UpdateSpec d_up;
        d_up.Inc("d_ytd", amount);
        ctx->Update(kDistrict, DistrictId(w, d), d_up);
        doc::UpdateSpec c_up;
        c_up.Inc("c_balance", -amount)
            .Inc("c_ytd_payment", amount)
            .Inc("c_payment_cnt", int64_t{1});
        const bool ok = ctx->Update(kCustomer, CustomerId(w, d, c), c_up);
        DCG_CHECK(ok);
        ctx->Insert(kHistory, doc::Value::Doc(
                                  {{"_id", history_id},
                                   {"h_w_id", int64_t{w}},
                                   {"h_d_id", int64_t{d}},
                                   {"h_c_id", int64_t{c}},
                                   {"h_amount", amount},
                                   {"h_date", doc::Value::Timestamp(
                                                  client_->loop().Now())}}));
      },
      [done = std::move(done)](const driver::MongoClient::WriteResult& r) {
        OpOutcome outcome;
        outcome.type = "payment";
        outcome.committed = r.committed;
        outcome.latency = r.latency;
        outcome.ok = r.ok;
        outcome.timed_out = r.timed_out;
        outcome.retries = r.retries;
        outcome.checkout_wait = r.checkout_wait;
        done(outcome);
      });
}

// Order Status (read-only): a customer's most recent order and its lines.
void TpccWorkload::DoOrderStatus(Done done) {
  ++order_status_count_;
  const int w = RandomWarehouse();
  const int d = RandomDistrict();
  const int c = RandomCustomer();
  const driver::ReadPreference pref = policy_->ChooseReadPreference(&rng_);
  client_->Read(
      pref, server::OpClass::kTpccOrderStatus,
      [this, w, d, c](const store::Database& db) {
        const store::Collection* customers = db.Get(kCustomer);
        const store::Collection* orders = db.Get(kOrders);
        if (customers == nullptr || orders == nullptr) return;
        store::DocPtr customer = customers->FindById(CustomerId(w, d, c));
        if (customer == nullptr) return;
        std::vector<doc::Value> prefix = {doc::Value(int64_t{w}),
                                          doc::Value(int64_t{d}),
                                          doc::Value(int64_t{c})};
        std::vector<store::DocPtr> mine =
            orders->IndexScan(kOrdersByCustomer, prefix, prefix);
        if (mine.empty()) return;
        const store::DocPtr& last = mine.back();  // highest order id
        (void)last->Find("o_lines");
      },
      [done = std::move(done)](const driver::MongoClient::ReadResult& r) {
        OpOutcome outcome;
        outcome.type = "order_status";
        outcome.read_only = true;
        outcome.used_secondary = r.used_secondary;
        outcome.latency = r.latency;
        outcome.node = r.node;
        outcome.operation_time = r.operation_time;
        outcome.ok = r.ok;
        outcome.timed_out = r.timed_out;
        outcome.retries = r.retries;
        outcome.hedged = r.hedged;
        outcome.hedge_won = r.hedge_won;
        outcome.checkout_wait = r.checkout_wait;
        done(outcome);
      });
}

void TpccWorkload::DoDelivery(Done done) {
  ++delivery_count_;
  const int w = RandomWarehouse();
  const int64_t carrier = rng_.UniformInt(1, 10);

  client_->Write(
      server::OpClass::kTpccDelivery,
      [this, w, carrier](repl::TxnContext* ctx) {
        for (int d = 1; d <= config_.districts_per_warehouse; ++d) {
          const store::Collection* districts = ctx->db().Get(kDistrict);
          store::DocPtr district = districts->FindById(DistrictId(w, d));
          DCG_CHECK(district != nullptr);
          int64_t o = GetInt(*district, "d_next_del_o_id");
          const int64_t next_o = GetInt(*district, "d_next_o_id");
          const store::Collection* new_orders = ctx->db().Get(kNewOrder);
          // Skip archival gaps (bounded walk).
          int walked = 0;
          while (o < next_o && walked < 25 &&
                 new_orders->FindById(OrderId(w, d, o)) == nullptr) {
            ++o;
            ++walked;
          }
          if (o >= next_o ||
              new_orders->FindById(OrderId(w, d, o)) == nullptr) {
            continue;  // nothing deliverable in this district right now
          }

          ctx->Remove(kNewOrder, OrderId(w, d, o));
          const store::Collection* orders = ctx->db().Get(kOrders);
          store::DocPtr order = orders->FindById(OrderId(w, d, o));
          DCG_CHECK(order != nullptr);
          double total = 0.0;
          for (const doc::Value& line : order->Find("o_lines")->as_array()) {
            total += GetNumber(line, "ol_amount");
          }
          const int64_t o_c_id = GetInt(*order, "o_c_id");

          doc::UpdateSpec order_up;
          order_up.Set("o_carrier_id", carrier)
              .Set("o_delivery_d",
                   doc::Value::Timestamp(client_->loop().Now()));
          ctx->Update(kOrders, OrderId(w, d, o), order_up);

          doc::UpdateSpec cust_up;
          cust_up.Inc("c_balance", total).Inc("c_delivery_cnt", int64_t{1});
          const bool ok = ctx->Update(
              kCustomer, CustomerId(w, d, static_cast<int>(o_c_id)), cust_up);
          DCG_CHECK(ok);

          doc::UpdateSpec dist_up;
          dist_up.Set("d_next_del_o_id", o + 1);
          ctx->Update(kDistrict, DistrictId(w, d), dist_up);
        }
      },
      [done = std::move(done)](const driver::MongoClient::WriteResult& r) {
        OpOutcome outcome;
        outcome.type = "delivery";
        outcome.committed = r.committed;
        outcome.latency = r.latency;
        outcome.ok = r.ok;
        outcome.timed_out = r.timed_out;
        outcome.retries = r.retries;
        outcome.checkout_wait = r.checkout_wait;
        done(outcome);
      });
}

}  // namespace dcg::workload
