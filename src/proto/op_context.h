#ifndef DCG_PROTO_OP_CONTEXT_H_
#define DCG_PROTO_OP_CONTEXT_H_

#include <cstdint>

#include "repl/oplog.h"
#include "sim/time.h"

namespace dcg::proto {

/// Per-operation context threaded end-to-end through the command layer
/// (driver → net → server → repl → core), mirroring what a real driver
/// attaches to every wire command: an id for tracing and retryable-write
/// dedup, a maxTimeMS-style deadline, the causal-session token, and the
/// attempt/hedge bookkeeping the client uses to interpret replies.
struct OpContext {
  /// Unique per logical operation; retries and hedges of the same
  /// operation share it. 0 = unset (internal traffic).
  uint64_t op_id = 0;

  /// Absolute simulated time by which the client wants an answer; 0 = no
  /// deadline. Enforced client-side (a dropped message is silent — the
  /// server may never see the command), but shipped to the server so it
  /// could shed already-dead work in a future PR.
  sim::Time deadline = 0;

  /// Causal-session token (afterClusterTime): the serving node must have
  /// applied at least this optime before executing a read.
  repl::OpTime after_cluster_time;

  /// 0 for the first attempt, incremented per retry. Tracing only.
  int attempt = 0;

  /// True for the speculative second request of a hedged read.
  bool is_hedge = false;

  /// Pool connection carrying this attempt (echoed in the reply, so the
  /// client can tell which of an op's checked-out connections a reply
  /// actually rode — the one that may be reused). 0 = pool-less traffic
  /// (hello/ping/serverStatus bypass the pool, like monitoring sockets in
  /// real drivers).
  uint64_t conn_id = 0;

  /// Pool checkout wait (queueing + establishment) the operation had
  /// accumulated, across attempts, when this attempt reached the wire.
  /// Tracing/diagnostics.
  sim::Duration checkout_wait = 0;

  /// Span id of the client-side attempt (or hedge arm) that sent this
  /// command; server-side spans (wire, parking, service) parent under it.
  /// 0 = untraced. The op_id doubles as the trace id unless `trace_id`
  /// overrides it.
  uint64_t parent_span = 0;

  /// Trace the spans of this operation belong to when it is a sub-op of a
  /// larger one (a router fanning a client op to shards keeps the client
  /// op's trace here, so all legs link into one tree). 0 = op_id is the
  /// trace id.
  uint64_t trace_id = 0;

  /// Instant the client put the command on the wire, so the server can
  /// record the request's wire-transit span. 0 = untraced.
  sim::Time sent_at = 0;
};

}  // namespace dcg::proto

#endif  // DCG_PROTO_OP_CONTEXT_H_
