#include "proto/command.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dcg::proto {

int64_t MaxStalenessSeconds(const ServerStatusReply& reply) {
  int64_t max_seconds = 0;
  for (const repl::OpTime& sec : reply.secondary_last_applied) {
    if (sec.seq >= reply.primary_last_applied.seq) continue;
    const sim::Duration gap = reply.primary_last_applied.wall - sec.wall;
    max_seconds = std::max(max_seconds, gap / sim::kSecond);
  }
  return max_seconds;
}

std::string_view ToString(CommandKind kind) {
  switch (kind) {
    case CommandKind::kFind:
      return "find";
    case CommandKind::kWrite:
      return "write";
    case CommandKind::kPing:
      return "ping";
    case CommandKind::kServerStatus:
      return "serverStatus";
    case CommandKind::kHello:
      return "hello";
  }
  return "unknown";
}

void CommandBus::RegisterService(net::HostId host, Handler handler) {
  DCG_CHECK_MSG(handlers_.find(host) == handlers_.end(),
                "host already has a command service");
  server_hosts_.push_back(host);
  handlers_[host] = std::move(handler);
}

void CommandBus::RegisterEnvelopeService(net::HostId host,
                                         EnvelopeHandler handler) {
  DCG_CHECK_MSG(envelope_handlers_.find(host) == envelope_handlers_.end(),
                "host already has an envelope service");
  envelope_handlers_[host] = std::move(handler);
}

void CommandBus::Send(net::HostId from, net::HostId to, Command command) {
  auto it = handlers_.find(to);
  DCG_CHECK_MSG(it != handlers_.end(), "no command service at destination");
  Handler* handler = &it->second;
  network_->Send(from, to, [handler, command = std::move(command)]() mutable {
    (*handler)(std::move(command));
  });
}

void CommandBus::SendEnvelope(net::HostId from, net::HostId to,
                              Envelope envelope) {
  auto it = envelope_handlers_.find(to);
  DCG_CHECK_MSG(it != envelope_handlers_.end(),
                "no envelope service at destination");
  EnvelopeHandler* handler = &it->second;
  network_->Send(from, to,
                 [handler, envelope = std::move(envelope)]() mutable {
                   (*handler)(std::move(envelope));
                 });
}

}  // namespace dcg::proto
