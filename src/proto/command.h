#ifndef DCG_PROTO_COMMAND_H_
#define DCG_PROTO_COMMAND_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "doc/filter.h"
#include "doc/value.h"
#include "net/network.h"
#include "proto/op_context.h"
#include "repl/oplog.h"
#include "repl/txn.h"
#include "server/service_model.h"
#include "sim/time.h"

namespace dcg::proto {

/// Runs at a read's server-side completion against the serving node's data.
using ReadBody = std::function<void(const store::Database&)>;
/// Runs atomically at a write transaction's commit instant on the primary.
using TxnBody = std::function<void(repl::TxnContext*)>;

/// The command vocabulary of the wire protocol — what a driver actually
/// sends to a mongod (§2.2): CRUD, liveness/topology handshakes, and the
/// diagnostic command Decongestant polls.
enum class CommandKind {
  kFind,          // read-only operation (body runs against node data)
  kWrite,         // read-write transaction (primary only)
  kPing,          // application-level liveness/RTT probe
  kServerStatus,  // replication-progress snapshot (primary only)
  kHello,         // topology discovery heartbeat (any node)
};

std::string_view ToString(CommandKind kind);

/// Server-side verdict carried in a reply.
enum class ReplyStatus {
  kOk,
  /// The command required a primary but the serving node is not one —
  /// the driver must re-discover topology and retry elsewhere.
  kNotPrimary,
  /// The command carried a shard/chunk version older than what the
  /// serving shard knows (MongoDB's StaleConfig). Rejected before any
  /// body ran — a router must refresh its routing table and re-route.
  kStaleConfig,
};

/// Mongos-style routing metadata a command carries alongside its opaque
/// body. The client stamps collection + shard-key value (bodies are
/// closures the router cannot inspect); the router adds the chunk it
/// resolved and the routing-table version it resolved against, which the
/// shard checks at admission. Empty collection = unrouted traffic.
struct RouteInfo {
  std::string collection;
  /// True when `key` holds the op's shard-key value (point ops). False =
  /// untargeted (scatter reads, internal traffic).
  bool has_key = false;
  doc::Value key;
  /// Chunk the router resolved `key` to (-1 = unrouted/scatter).
  int64_t chunk_id = -1;
  /// Routing-table version the router resolved against (0 = unversioned:
  /// the shard admits without a staleness check).
  uint64_t shard_version = 0;
};

/// A structured (inspectable) find: unlike the opaque ReadBody closures,
/// a router can split this across shards and merge the partial results.
/// Mirrors the find-command fields mongos itself forwards: filter, sort,
/// limit, and the allowPartialResults escape hatch.
struct FindSpec {
  std::string collection;
  doc::Filter filter = doc::Filter::True();
  /// Sort path ("" = no sort: _id order). Merge uses doc::Value's
  /// canonical total order on this field.
  std::string sort_field;
  bool sort_descending = false;
  size_t limit = std::numeric_limits<size_t>::max();
  /// Return only the match count, not the documents.
  bool count_only = false;
  /// allowPartialResults: a router may answer with the shards that made
  /// the deadline instead of failing the whole op.
  bool allow_partial = false;
};

/// Result of a structured find, whether from one shard or merged by a
/// router across shards.
struct FindResult {
  std::vector<doc::Value> docs;
  size_t count = 0;
  /// True when a router omitted at least one shard (allow_partial path).
  bool partial = false;
  /// Shards that contributed (1 for a single-node execution).
  int shards_answered = 1;
};

/// What the primary's serverStatus reports about replication progress.
/// (Moved here from ReplicaSet: it is a wire-protocol payload now.)
struct ServerStatusReply {
  repl::OpTime primary_last_applied;
  /// Per live secondary, as known to the primary via heartbeats (lagged);
  /// `secondary_nodes` holds the matching node indexes.
  std::vector<repl::OpTime> secondary_last_applied;
  std::vector<int> secondary_nodes;
  sim::Time generated_at = 0;
};

/// The staleness estimate of §2.3, from a serverStatus reply: max over
/// secondaries of (primary lastApplied wall − secondary lastApplied
/// wall), floored to whole seconds like MongoDB's reporting granularity.
int64_t MaxStalenessSeconds(const ServerStatusReply& reply);

/// Topology heartbeat payload (MongoDB's `hello`): who the serving node
/// is, who it believes the primary is, and under which election term.
struct HelloReply {
  int node_index = -1;
  bool is_primary = false;
  int primary_index = -1;
  uint64_t term = 0;
  repl::OpTime last_applied;
};

/// Typed reply to a Command. Routed back to the issuing client via the
/// `on_reply` continuation the command carried.
struct Reply {
  uint64_t op_id = 0;
  CommandKind kind = CommandKind::kPing;
  ReplyStatus status = ReplyStatus::kOk;
  /// kWrite: true when the transaction committed (false = aborted).
  bool committed = false;
  /// Serving node's lastAppliedOpTime at execution (kFind) or the commit
  /// point (kWrite) — MongoDB's operationTime.
  int node_index = -1;
  repl::OpTime operation_time;
  /// Whether the serving node held the primary role at completion.
  bool from_primary = false;
  /// Copied from the request's OpContext, so the client can tell which
  /// arm of a hedged read answered first.
  bool is_hedge = false;
  /// Copied from the request's OpContext: the pool connection the attempt
  /// rode, so the client checks the right one back in.
  uint64_t conn_id = 0;
  /// Instant the server put this reply on the wire (0 = untraced), so the
  /// client can record the reply's wire-transit span on arrival.
  sim::Time sent_at = 0;
  ServerStatusReply server_status;  // kServerStatus only
  HelloReply hello;                 // kHello only
  /// kFind with a FindSpec payload: the documents/count that matched.
  /// Shared (immutable once built) so fan-in merging never copies twice.
  std::shared_ptr<const FindResult> find_result;
};

/// One typed wire command. In a real driver this is a BSON message; here
/// the payload is the operation body itself, but the envelope — kind,
/// OpContext, reply address — is what the protocol layer dispatches on.
struct Command {
  CommandKind kind = CommandKind::kPing;
  OpContext ctx;
  server::OpClass op_class = server::OpClass::kPointRead;
  /// kFind: fail with kNotPrimary unless the serving node is the primary
  /// (Read Preference primary is a *server-checked* contract).
  bool require_primary = false;
  ReadBody read_body;  // kFind (opaque; exactly one of read_body/find_spec)
  /// kFind, structured: the server executes the spec against its data and
  /// replies with a FindResult; a router can scatter it across shards.
  std::shared_ptr<const FindSpec> find_spec;
  /// Routing metadata (sharded mode); inert on unsharded buses.
  RouteInfo route;
  TxnBody txn_body;  // kWrite
  repl::WriteConcern concern = repl::WriteConcern::kW1;  // kWrite
  /// Service-cost multiplier applied server-side to this command's CPU
  /// sample. 1.0 for singleton commands; members of an Envelope carry the
  /// ServiceModel's envelope_op_fraction (the amortisation discount).
  double cost_scale = 1.0;
  /// Where the reply is delivered (the issuing client's host).
  net::HostId reply_to = -1;
  /// Client-side continuation invoked when the reply message arrives.
  /// Carried in the command (a connection, in effect) so several clients
  /// can share one host without a reply-demux registry.
  std::function<void(const Reply&)> on_reply;
};

/// A batch of same-target commands shipped as ONE network message (the
/// wire analogue of a driver bulk op / OP_MSG with multiple sections).
/// The whole envelope shares one fate on the wire — dropped together,
/// delivered together — and rides one pooled connection end to end. Each
/// member keeps its own OpContext (op id, deadline, reply continuation);
/// the server charges one envelope base cost plus a discounted per-op
/// increment (ServiceModel envelope cost table).
struct Envelope {
  std::vector<Command> commands;
};

/// The wire between drivers and per-node CommandServices: commands travel
/// as net::Network messages (so faults drop and delay them like any other
/// traffic), and the bus dispatches each one to the service registered at
/// the destination host. Replies travel back the same way via `on_reply`.
class CommandBus {
 public:
  explicit CommandBus(net::Network* network) : network_(network) {}

  CommandBus(const CommandBus&) = delete;
  CommandBus& operator=(const CommandBus&) = delete;

  using Handler = std::function<void(Command)>;
  using EnvelopeHandler = std::function<void(Envelope)>;

  /// Registers the service handling commands addressed to `host`.
  /// Registration order defines the node indexing drivers use.
  void RegisterService(net::HostId host, Handler handler);

  /// Registers the envelope (batched command) handler for `host`. Optional
  /// and separate from RegisterService so node ordering is unaffected;
  /// SendEnvelope to a host without one is a programming error.
  void RegisterEnvelopeService(net::HostId host, EnvelopeHandler handler);

  /// Node hosts in registration (= replica-set node index) order. This is
  /// the topology seed a driver starts from, like a connection string.
  const std::vector<net::HostId>& server_hosts() const {
    return server_hosts_;
  }

  net::Network* network() { return network_; }

  /// Ships `command` from the client host to a server host. Silently lost
  /// when the network drops it — callers enforce deadlines client-side.
  void Send(net::HostId from, net::HostId to, Command command);

  /// Ships a whole envelope as one network message: one send, one
  /// delivery, one drop decision for every member command. Callers
  /// enforce per-member deadlines client-side, exactly as with Send.
  void SendEnvelope(net::HostId from, net::HostId to, Envelope envelope);

 private:
  net::Network* network_;
  std::vector<net::HostId> server_hosts_;
  std::map<net::HostId, Handler> handlers_;
  std::map<net::HostId, EnvelopeHandler> envelope_handlers_;
};

}  // namespace dcg::proto

#endif  // DCG_PROTO_COMMAND_H_
