#ifndef DCG_DOC_VALUE_H_
#define DCG_DOC_VALUE_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "doc/path.h"

namespace dcg::doc {

class Value;

/// An ordered field -> value map, like a BSON document. Field order is
/// insertion order; lookup is linear, which is faster than hashing for the
/// small documents OLTP workloads produce.
using Object = std::vector<std::pair<std::string, Value>>;

/// An array of values.
using Array = std::vector<Value>;

/// The scalar/document value model of the store ("mongolite").
///
/// Supported types, in canonical sort order:
///   Null < Bool < Number (Int64 and Double compare numerically)
///        < String < Timestamp < Array < Object
///
/// Timestamp is distinct from Int64 so replication optimes and S-workload
/// probe payloads are self-describing; it holds nanoseconds of simulated
/// time.
class Value {
 public:
  enum class Type {
    kNull = 0,
    kBool,
    kInt64,
    kDouble,
    kString,
    kTimestamp,
    kArray,
    kObject,
  };

  /// Constructs Null.
  Value() : v_(std::monostate{}) {}
  Value(bool b) : v_(b) {}                    // NOLINT(google-explicit-*)
  Value(int i) : v_(static_cast<int64_t>(i)) {}   // NOLINT
  Value(int64_t i) : v_(i) {}                 // NOLINT
  Value(double d) : v_(d) {}                  // NOLINT
  Value(const char* s) : v_(std::string(s)) {}    // NOLINT
  Value(std::string s) : v_(std::move(s)) {}  // NOLINT
  Value(Array a) : v_(std::move(a)) {}        // NOLINT
  Value(Object o) : v_(std::move(o)) {}       // NOLINT

  /// Builds a Timestamp value (nanoseconds of simulated time).
  static Value Timestamp(int64_t ns);

  /// Builds an Object from an initializer list of fields, e.g.
  ///   Value::Doc({{"_id", 7}, {"name", "x"}})
  static Value Doc(std::initializer_list<std::pair<std::string, Value>> f);

  /// Builds an Array.
  static Value List(std::initializer_list<Value> items);

  Type type() const;

  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int64() const { return type() == Type::kInt64; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int64() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_timestamp() const { return type() == Type::kTimestamp; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Accessors. Calling the wrong accessor for the held type is a programming
  // error and throws std::bad_variant_access.
  bool as_bool() const { return std::get<bool>(v_); }
  int64_t as_int64() const { return std::get<int64_t>(v_); }
  double as_double() const { return std::get<double>(v_); }
  /// Numeric value as double regardless of Int64/Double representation.
  double as_number() const;
  const std::string& as_string() const { return std::get<std::string>(v_); }
  int64_t as_timestamp() const { return std::get<Ts>(v_).ns; }
  const Array& as_array() const { return std::get<Array>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// Looks up a direct field of an Object value. Returns nullptr when the
  /// value is not an object or the field is absent.
  const Value* Find(std::string_view field) const;
  Value* Find(std::string_view field);

  /// Looks up a dotted path ("a.b.c"); also indexes into arrays when a path
  /// segment is a decimal number. Returns nullptr when absent.
  const Value* FindPath(std::string_view path) const;

  /// Same lookup over a pre-compiled path — no per-call tokenization. The
  /// hot query paths (filters, sorts, index maintenance) use this overload.
  const Value* FindPath(const Path& path) const;

  /// Exact-match overloads so string literals and std::string arguments stay
  /// unambiguous between the string_view and Path overloads (each is one
  /// implicit conversion away from both).
  const Value* FindPath(const char* path) const {
    return FindPath(std::string_view(path));
  }
  const Value* FindPath(const std::string& path) const {
    return FindPath(std::string_view(path));
  }

  /// Sets a direct field on an Object value (appends or overwrites).
  /// Requires the value to be an Object.
  void Set(std::string_view field, Value v);

  /// Sets a dotted path, creating intermediate objects as needed.
  /// Requires the value (and every existing intermediate) to be an Object.
  void SetPath(std::string_view path, Value v);

  /// Removes a direct field. Returns true if it existed.
  bool Erase(std::string_view field);

  /// Canonical total-order comparison (see class comment).
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Renders as compact JSON-ish text (timestamps as {"$ts": n}).
  std::string ToJson() const;

  /// Approximate in-memory footprint in bytes, for the dirty-data
  /// bookkeeping of the disk model.
  size_t ApproxSize() const;

 private:
  struct Ts {
    int64_t ns;
  };
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string,
                            Ts, Array, Object>;

  Repr v_;
};

/// Name of a value type, for error messages and debugging.
std::string_view TypeName(Value::Type t);

}  // namespace dcg::doc

#endif  // DCG_DOC_VALUE_H_
