#include "doc/update.h"

#include <utility>

namespace dcg::doc {
namespace {

// Returns the final path segment and navigates `*parent` to the enclosing
// object, creating intermediates. Returns false on type conflicts.
bool ResolveParent(Value* root, const Path& path, Value** parent,
                   std::string_view* leaf) {
  const size_t n = path.segment_count();
  if (n == 0) {
    *parent = root;
    *leaf = std::string_view();
    return root->is_object();
  }
  Value* cur = root;
  for (size_t i = 0; i + 1 < n; ++i) {
    if (!cur->is_object()) return false;
    const std::string_view head = path.segment_name(i);
    Value* child = cur->Find(head);
    if (child == nullptr) {
      cur->Set(head, Value(Object{}));
      child = cur->Find(head);
    }
    cur = child;
  }
  *parent = cur;
  *leaf = path.segment_name(n - 1);
  return cur->is_object();
}

bool ApplyOne(const UpdateOp& op, Value* target) {
  Value* parent = nullptr;
  std::string_view leaf;
  if (!ResolveParent(target, op.path, &parent, &leaf)) return false;
  switch (op.kind) {
    case UpdateOp::Kind::kSet:
      parent->Set(leaf, op.value);
      return true;
    case UpdateOp::Kind::kInc: {
      if (!op.value.is_number()) return false;
      Value* cur = parent->Find(leaf);
      if (cur == nullptr) {
        parent->Set(leaf, op.value);
        return true;
      }
      if (!cur->is_number()) return false;
      if (cur->is_int64() && op.value.is_int64()) {
        *cur = Value(cur->as_int64() + op.value.as_int64());
      } else {
        *cur = Value(cur->as_number() + op.value.as_number());
      }
      return true;
    }
    case UpdateOp::Kind::kUnset:
      parent->Erase(leaf);
      return true;
    case UpdateOp::Kind::kPush: {
      Value* cur = parent->Find(leaf);
      if (cur == nullptr) {
        parent->Set(leaf, Value(Array{op.value}));
        return true;
      }
      if (!cur->is_array()) return false;
      cur->as_array().push_back(op.value);
      return true;
    }
    case UpdateOp::Kind::kMax: {
      Value* cur = parent->Find(leaf);
      if (cur == nullptr || *cur < op.value) parent->Set(leaf, op.value);
      return true;
    }
    case UpdateOp::Kind::kMin: {
      Value* cur = parent->Find(leaf);
      if (cur == nullptr || *cur > op.value) parent->Set(leaf, op.value);
      return true;
    }
  }
  return false;
}

}  // namespace

UpdateSpec& UpdateSpec::Set(Path path, Value v) {
  ops_.push_back({UpdateOp::Kind::kSet, std::move(path), std::move(v)});
  return *this;
}
UpdateSpec& UpdateSpec::Inc(Path path, Value v) {
  ops_.push_back({UpdateOp::Kind::kInc, std::move(path), std::move(v)});
  return *this;
}
UpdateSpec& UpdateSpec::Unset(Path path) {
  ops_.push_back({UpdateOp::Kind::kUnset, std::move(path), Value()});
  return *this;
}
UpdateSpec& UpdateSpec::Push(Path path, Value v) {
  ops_.push_back({UpdateOp::Kind::kPush, std::move(path), std::move(v)});
  return *this;
}
UpdateSpec& UpdateSpec::Max(Path path, Value v) {
  ops_.push_back({UpdateOp::Kind::kMax, std::move(path), std::move(v)});
  return *this;
}
UpdateSpec& UpdateSpec::Min(Path path, Value v) {
  ops_.push_back({UpdateOp::Kind::kMin, std::move(path), std::move(v)});
  return *this;
}

bool UpdateSpec::Apply(Value* target) const {
  if (!target->is_object()) return false;
  for (const auto& op : ops_) {
    if (!ApplyOne(op, target)) return false;
  }
  return true;
}

Value UpdateSpec::ToValue() const {
  Array out;
  out.reserve(ops_.size());
  for (const auto& op : ops_) {
    out.push_back(Value::Doc({{"k", static_cast<int64_t>(op.kind)},
                              {"p", op.path.str()},
                              {"v", op.value}}));
  }
  return Value(std::move(out));
}

UpdateSpec UpdateSpec::FromValue(const Value& v) {
  UpdateSpec spec;
  for (const auto& item : v.as_array()) {
    UpdateOp op;
    op.kind = static_cast<UpdateOp::Kind>(item.Find("k")->as_int64());
    op.path = item.Find("p")->as_string();
    op.value = *item.Find("v");
    spec.ops_.push_back(std::move(op));
  }
  return spec;
}

}  // namespace dcg::doc
