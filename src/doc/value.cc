#include "doc/value.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace dcg::doc {
namespace {

// Splits "a.b.c" at the first dot. Returns {head, rest}; rest is empty for
// the final segment.
std::pair<std::string_view, std::string_view> SplitPath(std::string_view p) {
  const size_t dot = p.find('.');
  if (dot == std::string_view::npos) return {p, {}};
  return {p.substr(0, dot), p.substr(dot + 1)};
}

bool ParseIndex(std::string_view s, size_t* out) {
  size_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendJson(const Value& v, std::string* out);

void AppendJsonObject(const Object& o, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [k, val] : o) {
    if (!first) out->push_back(',');
    first = false;
    AppendJsonString(k, out);
    out->push_back(':');
    AppendJson(val, out);
  }
  out->push_back('}');
}

void AppendJson(const Value& v, std::string* out) {
  switch (v.type()) {
    case Value::Type::kNull:
      *out += "null";
      break;
    case Value::Type::kBool:
      *out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::kInt64:
      *out += std::to_string(v.as_int64());
      break;
    case Value::Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", v.as_double());
      *out += buf;
      break;
    }
    case Value::Type::kString:
      AppendJsonString(v.as_string(), out);
      break;
    case Value::Type::kTimestamp:
      *out += "{\"$ts\":" + std::to_string(v.as_timestamp()) + "}";
      break;
    case Value::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& item : v.as_array()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJson(item, out);
      }
      out->push_back(']');
      break;
    }
    case Value::Type::kObject:
      AppendJsonObject(v.as_object(), out);
      break;
  }
}

}  // namespace

Value Value::Timestamp(int64_t ns) {
  Value v;
  v.v_ = Ts{ns};
  return v;
}

Value Value::Doc(std::initializer_list<std::pair<std::string, Value>> f) {
  Object o;
  o.reserve(f.size());
  for (const auto& kv : f) o.push_back(kv);
  return Value(std::move(o));
}

Value Value::List(std::initializer_list<Value> items) {
  return Value(Array(items));
}

Value::Type Value::type() const {
  return static_cast<Type>(v_.index());
}

double Value::as_number() const {
  if (is_int64()) return static_cast<double>(as_int64());
  return as_double();
}

const Value* Value::Find(std::string_view field) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object()) {
    if (k == field) return &v;
  }
  return nullptr;
}

Value* Value::Find(std::string_view field) {
  if (!is_object()) return nullptr;
  for (auto& [k, v] : as_object()) {
    if (k == field) return &v;
  }
  return nullptr;
}

const Value* Value::FindPath(std::string_view path) const {
  const Value* cur = this;
  while (!path.empty() && cur != nullptr) {
    auto [head, rest] = SplitPath(path);
    if (cur->is_array()) {
      size_t idx;
      if (!ParseIndex(head, &idx) || idx >= cur->as_array().size()) {
        return nullptr;
      }
      cur = &cur->as_array()[idx];
    } else {
      cur = cur->Find(head);
    }
    path = rest;
  }
  return cur;
}

const Value* Value::FindPath(const Path& path) const {
  const Value* cur = this;
  const size_t n = path.segment_count();
  for (size_t i = 0; i < n && cur != nullptr; ++i) {
    const Path::Segment& seg = path.segment(i);
    if (cur->is_array()) {
      if (!seg.is_index || seg.index >= cur->as_array().size()) return nullptr;
      cur = &cur->as_array()[seg.index];
    } else {
      cur = cur->Find(path.segment_name(i));
    }
  }
  return cur;
}

void Value::Set(std::string_view field, Value v) {
  Value* existing = Find(field);
  if (existing != nullptr) {
    *existing = std::move(v);
    return;
  }
  as_object().emplace_back(std::string(field), std::move(v));
}

void Value::SetPath(std::string_view path, Value v) {
  auto [head, rest] = SplitPath(path);
  if (rest.empty()) {
    Set(head, std::move(v));
    return;
  }
  Value* child = Find(head);
  if (child == nullptr) {
    Set(head, Value(Object{}));
    child = Find(head);
  }
  child->SetPath(rest, std::move(v));
}

bool Value::Erase(std::string_view field) {
  if (!is_object()) return false;
  Object& o = as_object();
  for (auto it = o.begin(); it != o.end(); ++it) {
    if (it->first == field) {
      o.erase(it);
      return true;
    }
  }
  return false;
}

int Value::Compare(const Value& other) const {
  // Numbers (Int64/Double) share a rank and compare numerically; all other
  // types compare by rank first.
  auto rank = [](Type t) {
    switch (t) {
      case Type::kNull:
        return 0;
      case Type::kBool:
        return 1;
      case Type::kInt64:
      case Type::kDouble:
        return 2;
      case Type::kString:
        return 3;
      case Type::kTimestamp:
        return 4;
      case Type::kArray:
        return 5;
      case Type::kObject:
        return 6;
    }
    return 7;
  };
  const int ra = rank(type()), rb = rank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case Type::kNull:
      return 0;
    case Type::kBool: {
      const int a = as_bool() ? 1 : 0, b = other.as_bool() ? 1 : 0;
      return a - b;
    }
    case Type::kInt64:
    case Type::kDouble: {
      if (is_int64() && other.is_int64()) {
        const int64_t a = as_int64(), b = other.as_int64();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = as_number(), b = other.as_number();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case Type::kString: {
      const int c = as_string().compare(other.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case Type::kTimestamp: {
      const int64_t a = as_timestamp(), b = other.as_timestamp();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case Type::kArray: {
      const Array& a = as_array();
      const Array& b = other.as_array();
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
    case Type::kObject: {
      const Object& a = as_object();
      const Object& b = other.as_object();
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int kc = a[i].first.compare(b[i].first);
        if (kc != 0) return kc < 0 ? -1 : 1;
        const int vc = a[i].second.Compare(b[i].second);
        if (vc != 0) return vc;
      }
      return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
    }
  }
  return 0;
}

std::string Value::ToJson() const {
  std::string out;
  AppendJson(*this, &out);
  return out;
}

size_t Value::ApproxSize() const {
  switch (type()) {
    case Type::kNull:
    case Type::kBool:
      return 8;
    case Type::kInt64:
    case Type::kDouble:
    case Type::kTimestamp:
      return 16;
    case Type::kString:
      return 24 + as_string().size();
    case Type::kArray: {
      size_t total = 24;
      for (const auto& v : as_array()) total += v.ApproxSize();
      return total;
    }
    case Type::kObject: {
      size_t total = 24;
      for (const auto& [k, v] : as_object()) total += 24 + k.size() + v.ApproxSize();
      return total;
    }
  }
  return 8;
}

std::string_view TypeName(Value::Type t) {
  switch (t) {
    case Value::Type::kNull:
      return "null";
    case Value::Type::kBool:
      return "bool";
    case Value::Type::kInt64:
      return "int64";
    case Value::Type::kDouble:
      return "double";
    case Value::Type::kString:
      return "string";
    case Value::Type::kTimestamp:
      return "timestamp";
    case Value::Type::kArray:
      return "array";
    case Value::Type::kObject:
      return "object";
  }
  return "unknown";
}

}  // namespace dcg::doc
