#ifndef DCG_DOC_UPDATE_H_
#define DCG_DOC_UPDATE_H_

#include <string>
#include <vector>

#include "doc/path.h"
#include "doc/value.h"

namespace dcg::doc {

/// A single field mutation, in the spirit of MongoDB update operators.
struct UpdateOp {
  enum class Kind {
    kSet,    // $set  path = value
    kInc,    // $inc  path += value (numeric; missing treated as 0)
    kUnset,  // $unset remove path's final field
    kPush,   // $push append value to array at path (creates the array)
    kMax,    // $max  path = max(path, value)
    kMin,    // $min  path = min(path, value)
  };

  Kind kind;
  Path path;    // compiled once; replay never re-tokenizes it
  Value value;  // unused for kUnset
};

/// An ordered list of mutations applied atomically to one document.
///
/// UpdateSpec is the payload of update oplog entries: the primary executes
/// it against its copy and ships the *spec* to the secondaries, which replay
/// it — like MongoDB's oplog does for operator updates. Applying the same
/// spec to an identical document yields an identical result, which is what
/// the replication convergence property tests assert.
class UpdateSpec {
 public:
  UpdateSpec() = default;

  /// Fluent builders (plain strings convert implicitly to Path).
  UpdateSpec& Set(Path path, Value v);
  UpdateSpec& Inc(Path path, Value v);
  UpdateSpec& Unset(Path path);
  UpdateSpec& Push(Path path, Value v);
  UpdateSpec& Max(Path path, Value v);
  UpdateSpec& Min(Path path, Value v);

  const std::vector<UpdateOp>& ops() const { return ops_; }
  bool empty() const { return ops_.empty(); }

  /// Applies every op, in order, to `target` (must be an Object).
  /// Returns false (leaving a partially applied document) only on type
  /// errors such as $inc on a non-numeric field; callers treat that as a
  /// workload bug, not a recoverable condition.
  bool Apply(Value* target) const;

  /// Serializes the spec into a Value (for embedding in oplog entries).
  Value ToValue() const;

  /// Parses a spec previously produced by ToValue().
  static UpdateSpec FromValue(const Value& v);

 private:
  std::vector<UpdateOp> ops_;
};

}  // namespace dcg::doc

#endif  // DCG_DOC_UPDATE_H_
