#include "doc/filter.h"

#include <utility>

namespace dcg::doc {

struct Filter::Node {
  Kind kind;
  Path path;
  Value value;
  std::vector<Value> values;       // kIn
  std::vector<Filter> children;    // kAnd / kOr / kNot
  bool should_exist = true;        // kExists
};

std::shared_ptr<Filter::Node> Filter::NewNode() {
  return std::make_shared<Node>();
}

Filter Filter::True() {
  auto n = NewNode();
  n->kind = Kind::kTrue;
  return Filter(std::move(n));
}

#define DCG_FILTER_CMP(NAME, KIND)                        \
  Filter Filter::NAME(Path path, Value v) {               \
    auto n = NewNode();                                   \
    n->kind = Kind::KIND;                                 \
    n->path = std::move(path);                            \
    n->value = std::move(v);                              \
    return Filter(std::move(n));                          \
  }

DCG_FILTER_CMP(Eq, kEq)
DCG_FILTER_CMP(Ne, kNe)
DCG_FILTER_CMP(Lt, kLt)
DCG_FILTER_CMP(Lte, kLte)
DCG_FILTER_CMP(Gt, kGt)
DCG_FILTER_CMP(Gte, kGte)

#undef DCG_FILTER_CMP

Filter Filter::In(Path path, std::vector<Value> vs) {
  auto n = NewNode();
  n->kind = Kind::kIn;
  n->path = std::move(path);
  n->values = std::move(vs);
  return Filter(std::move(n));
}

Filter Filter::Exists(Path path, bool should_exist) {
  auto n = NewNode();
  n->kind = Kind::kExists;
  n->path = std::move(path);
  n->should_exist = should_exist;
  return Filter(std::move(n));
}

Filter Filter::And(std::vector<Filter> fs) {
  auto n = NewNode();
  n->kind = Kind::kAnd;
  n->children = std::move(fs);
  return Filter(std::move(n));
}

Filter Filter::Or(std::vector<Filter> fs) {
  auto n = NewNode();
  n->kind = Kind::kOr;
  n->children = std::move(fs);
  return Filter(std::move(n));
}

Filter Filter::Not(Filter f) {
  auto n = NewNode();
  n->kind = Kind::kNot;
  n->children.push_back(std::move(f));
  return Filter(std::move(n));
}

bool Filter::Matches(const Value& document) const {
  const Node& n = *node_;
  switch (n.kind) {
    case Kind::kTrue:
      return true;
    case Kind::kEq: {
      const Value* v = document.FindPath(n.path);
      return v != nullptr && *v == n.value;
    }
    case Kind::kNe: {
      const Value* v = document.FindPath(n.path);
      return v != nullptr && *v != n.value;
    }
    case Kind::kLt: {
      const Value* v = document.FindPath(n.path);
      return v != nullptr && *v < n.value;
    }
    case Kind::kLte: {
      const Value* v = document.FindPath(n.path);
      return v != nullptr && *v <= n.value;
    }
    case Kind::kGt: {
      const Value* v = document.FindPath(n.path);
      return v != nullptr && *v > n.value;
    }
    case Kind::kGte: {
      const Value* v = document.FindPath(n.path);
      return v != nullptr && *v >= n.value;
    }
    case Kind::kIn: {
      const Value* v = document.FindPath(n.path);
      if (v == nullptr) return false;
      for (const auto& cand : n.values) {
        if (*v == cand) return true;
      }
      return false;
    }
    case Kind::kExists:
      return (document.FindPath(n.path) != nullptr) == n.should_exist;
    case Kind::kAnd:
      for (const auto& c : n.children) {
        if (!c.Matches(document)) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& c : n.children) {
        if (c.Matches(document)) return true;
      }
      return false;
    case Kind::kNot:
      return !n.children[0].Matches(document);
  }
  return false;
}

std::string Filter::ToString() const {
  const Node& n = *node_;
  auto cmp = [&](const char* op) {
    return "(" + n.path.str() + " " + op + " " + n.value.ToJson() + ")";
  };
  switch (n.kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kEq:
      return cmp("==");
    case Kind::kNe:
      return cmp("!=");
    case Kind::kLt:
      return cmp("<");
    case Kind::kLte:
      return cmp("<=");
    case Kind::kGt:
      return cmp(">");
    case Kind::kGte:
      return cmp(">=");
    case Kind::kIn: {
      std::string out = "(" + n.path.str() + " in [";
      for (size_t i = 0; i < n.values.size(); ++i) {
        if (i > 0) out += ",";
        out += n.values[i].ToJson();
      }
      return out + "])";
    }
    case Kind::kExists:
      return "(" + n.path.str() + (n.should_exist ? " exists)" : " missing)");
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = n.kind == Kind::kAnd ? " and " : " or ";
      std::string out = "(";
      for (size_t i = 0; i < n.children.size(); ++i) {
        if (i > 0) out += sep;
        out += n.children[i].ToString();
      }
      return out + ")";
    }
    case Kind::kNot:
      return "not " + n.children[0].ToString();
  }
  return "?";
}

const Value* Filter::EqualityValue(std::string_view path) const {
  const Node& n = *node_;
  if (n.kind == Kind::kEq && n.path.str() == path) return &n.value;
  if (n.kind == Kind::kAnd) {
    for (const auto& c : n.children) {
      const Value* v = c.EqualityValue(path);
      if (v != nullptr) return v;
    }
  }
  return nullptr;
}

}  // namespace dcg::doc
