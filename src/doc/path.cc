#include "doc/path.h"

#include <charconv>
#include <utility>

namespace dcg::doc {

Path::Path(std::string path) : str_(std::move(path)) {
  // Mirrors the iteration of Value::FindPath over SplitPath: consume the
  // head before each remaining '.', stopping when the remainder is empty
  // (so "a." yields just "a", and "" yields no segments, exactly like the
  // string walker did).
  std::string_view rest(str_);
  uint32_t pos = 0;
  while (!rest.empty()) {
    const size_t dot = rest.find('.');
    const std::string_view head =
        dot == std::string_view::npos ? rest : rest.substr(0, dot);
    Segment seg;
    seg.pos = pos;
    seg.len = static_cast<uint32_t>(head.size());
    size_t index = 0;
    auto [ptr, ec] =
        std::from_chars(head.data(), head.data() + head.size(), index);
    if (ec == std::errc() && ptr == head.data() + head.size()) {
      seg.index = index;
      seg.is_index = true;
    }
    segments_.push_back(seg);
    if (dot == std::string_view::npos) break;
    rest = rest.substr(dot + 1);
    pos += static_cast<uint32_t>(head.size()) + 1;
  }
}

}  // namespace dcg::doc
