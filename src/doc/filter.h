#ifndef DCG_DOC_FILTER_H_
#define DCG_DOC_FILTER_H_

#include <memory>
#include <string>
#include <vector>

#include "doc/path.h"
#include "doc/value.h"

namespace dcg::doc {

/// A query predicate over documents — the subset of MongoDB's find()
/// filter language the workloads need: path comparisons, $in, $exists,
/// and $and / $or / $not combinators.
///
/// Filters are immutable once built and cheap to share; Collection::Find
/// evaluates them against candidate documents.
class Filter {
 public:
  /// Matches every document.
  static Filter True();

  // Path comparisons (missing paths never match, mirroring MongoDB for
  // everything except $exists:false). Paths are compiled (pre-tokenized)
  // once here, so Matches never re-splits the dotted string per document;
  // plain strings convert implicitly.
  static Filter Eq(Path path, Value v);
  static Filter Ne(Path path, Value v);
  static Filter Lt(Path path, Value v);
  static Filter Lte(Path path, Value v);
  static Filter Gt(Path path, Value v);
  static Filter Gte(Path path, Value v);
  static Filter In(Path path, std::vector<Value> vs);
  static Filter Exists(Path path, bool should_exist);

  // Combinators.
  static Filter And(std::vector<Filter> fs);
  static Filter Or(std::vector<Filter> fs);
  static Filter Not(Filter f);

  /// Evaluates the predicate against one document.
  bool Matches(const Value& document) const;

  /// Human-readable rendering, for debugging and test failure messages.
  std::string ToString() const;

  /// If this filter pins `path` to a single value via a top-level Eq (or an
  /// Eq inside a top-level And), returns that value; otherwise nullptr.
  /// Collections use this to answer point queries through an index instead
  /// of scanning.
  const Value* EqualityValue(std::string_view path) const;

 private:
  enum class Kind {
    kTrue,
    kEq,
    kNe,
    kLt,
    kLte,
    kGt,
    kGte,
    kIn,
    kExists,
    kAnd,
    kOr,
    kNot,
  };

  struct Node;

  static std::shared_ptr<Node> NewNode();

  explicit Filter(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace dcg::doc

#endif  // DCG_DOC_FILTER_H_
