#ifndef DCG_DOC_PATH_H_
#define DCG_DOC_PATH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcg::doc {

/// A dotted field path ("a.b.0.c") compiled once at construction: the
/// segment boundaries and any numeric array indexes are pre-parsed, so the
/// hot lookup paths (filter matching, sort-key extraction, index probes,
/// update application) never re-tokenize the string per document.
///
/// Converts implicitly from strings so query-construction call sites stay
/// unchanged; tokenization matches Value::FindPath(string_view) exactly
/// (split at every '.', with a segment that parses fully as a decimal
/// number doubling as an array index).
class Path {
 public:
  struct Segment {
    uint32_t pos = 0;  // offset into str_
    uint32_t len = 0;
    size_t index = 0;      // parsed decimal value, valid when is_index
    bool is_index = false;
  };

  Path() = default;
  Path(std::string path);       // NOLINT(google-explicit-constructor)
  Path(std::string_view path)   // NOLINT(google-explicit-constructor)
      : Path(std::string(path)) {}
  Path(const char* path)        // NOLINT(google-explicit-constructor)
      : Path(std::string(path)) {}

  /// The original dotted string.
  const std::string& str() const { return str_; }
  bool empty() const { return str_.empty(); }

  size_t segment_count() const { return segments_.size(); }
  const Segment& segment(size_t i) const { return segments_[i]; }
  std::string_view segment_name(size_t i) const {
    const Segment& s = segments_[i];
    return std::string_view(str_).substr(s.pos, s.len);
  }

  bool operator==(const Path& o) const { return str_ == o.str_; }
  bool operator!=(const Path& o) const { return str_ != o.str_; }

 private:
  std::string str_;
  // Offsets into str_ rather than string_views: offsets survive moves and
  // copies of the owning string (SSO would dangle views).
  std::vector<Segment> segments_;
};

}  // namespace dcg::doc

#endif  // DCG_DOC_PATH_H_
