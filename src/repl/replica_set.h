#ifndef DCG_REPL_REPLICA_SET_H_
#define DCG_REPL_REPLICA_SET_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "obs/trace.h"
#include "proto/command.h"
#include "repl/oplog.h"
#include "repl/replica_node.h"
#include "repl/topology_coordinator.h"
#include "repl/txn.h"
#include "server/command_service.h"
#include "server/server_node.h"
#include "sim/event_loop.h"
#include "sim/random.h"

namespace dcg::repl {

/// Replication knobs (defaults mirror the MongoDB 4.2 behaviour the paper
/// describes, scaled to the simulation).
struct ReplicaSetParams {
  int secondaries = 2;

  /// Max oplog entries returned per getMore.
  size_t getmore_max_batch = 5000;

  /// How long a fully caught-up secondary waits before polling again
  /// (models the awaitData tailable-cursor timeout).
  sim::Duration getmore_idle_poll = sim::Millis(50);

  /// How often secondaries report their lastAppliedOpTime to the primary.
  /// This lag is why the primary's view of secondary progress — and hence
  /// Decongestant's staleness estimate — is conservative (§2.3).
  sim::Duration heartbeat_interval = sim::Millis(500);

  /// Flow control (§4.5): when the max lag known to the primary exceeds
  /// the target, write service times are stretched by the throttle factor.
  bool flow_control_enabled = true;
  sim::Duration flow_control_target_lag = sim::Seconds(5);
  double flow_control_throttle = 3.0;

  /// A checkpoint whose flush is expected to take longer than this stalls
  /// getMore service entirely until it finishes — the mechanism behind the
  /// sawtooth staleness of Figure 9 ("the primary gets around to servicing
  /// the getMore and sends a large batch").
  sim::Duration getmore_block_threshold = sim::Seconds(15);

  /// During shorter checkpoints, getMore responses are merely deferred by
  /// this much (the disk is busy but not saturated) — producing the mild,
  /// bounded staleness YCSB-A exhibits rather than a full stall.
  sim::Duration getmore_soft_delay = sim::Millis(1500);

  size_t oplog_capacity = 2'000'000;

  /// How long after a primary failure the surviving members elect a new
  /// primary. With raft_elections off this is a single collapsed delay
  /// (timeout + vote rounds); with it on, it is the per-member base
  /// election timeout the randomized deadlines build on.
  sim::Duration election_timeout = sim::Seconds(5);

  /// Raft-style elections: every member runs a TopologyCoordinator with
  /// randomized heartbeat-driven election deadlines, pre-vote freshness
  /// checks, real vote rounds, stepdown on higher terms, and post-win
  /// catch-up. Off by default — the legacy omniscient election (kill the
  /// primary, freshest survivor wins after a fixed delay) is kept
  /// bit-identical so pre-election determinism goldens replay unchanged:
  /// the disabled path forks no extra RNG streams and schedules no
  /// extra events.
  bool raft_elections = false;

  /// Uniform jitter added to each election deadline, as a fraction of
  /// election_timeout (de-synchronizes would-be candidates).
  double election_jitter_fraction = 0.15;

  /// Hard bound on the post-win catch-up phase: a new leader opens for
  /// writes once it reaches the freshest recently-heard peer optime or
  /// this much time passes, whichever is first.
  sim::Duration catchup_timeout = sim::Seconds(2);

  /// Delay between spotting a lower-priority leader and attempting the
  /// priority takeover, and how caught-up the taker must be (see
  /// TopologyConfig).
  sim::Duration priority_takeover_delay = sim::Seconds(1);
  sim::Duration priority_takeover_gap = sim::Seconds(2);

  /// Election priority per node index (empty = all 1.0; 0 = never
  /// campaigns). Only meaningful with raft_elections.
  std::vector<double> node_priorities;

  /// Batched oplog application (server-side mirror of driver command
  /// batching): a secondary applies a whole getMore batch for one
  /// envelope_base charge plus envelope_op_fraction × the per-entry cost
  /// × batch size, instead of full per-entry cost × batch size. The
  /// amortisation tightens replication lag — and hence the staleness
  /// signal the Read Balancer consumes — under write pressure. Off by
  /// default: the disabled path draws the same RNG sequence and runs the
  /// exact legacy cost formula, so determinism goldens replay unchanged.
  bool batched_oplog_apply = false;

  /// Pull-chain watchdog: when a getMore request or its reply batch is
  /// lost on the network (packet loss, partition), the secondary notices
  /// no pull progress for this long past the expected next step and
  /// restarts the chain — the sync-source retry real MongoDB drives off
  /// its heartbeats. Without faults the deadline never expires.
  sim::Duration pull_retry_timeout = sim::Seconds(2);
};

/// A primary plus N secondaries wired through the simulated network —
/// the MongoDB replica set substrate.
///
/// Clients reach the set exclusively through its wire-protocol command
/// layer: each node runs a server::CommandService registered on the set's
/// proto::CommandBus, and ReplicaSet implements the CommandBackend those
/// services dispatch into. Server-side it models CPU queueing, commit +
/// oplog append on the primary, batched log-shipping to secondaries,
/// heartbeats, serverStatus, retryable-write dedup, and flow control.
class ReplicaSet : public server::CommandBackend {
 public:
  ReplicaSet(sim::EventLoop* loop, sim::Rng rng, net::Network* network,
             ReplicaSetParams params, server::ServerParams node_params,
             std::vector<net::HostId> hosts /* primary first */);

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  /// Starts checkpoint cycles, pull loops, and heartbeats.
  void Start();

  /// The wire-protocol bus clients use to reach this set's nodes. Node
  /// hosts are registered in node-index order, so `bus->server_hosts()`
  /// doubles as the driver's seed list (connection string).
  proto::CommandBus* command_bus() { return &bus_; }

  /// Attaches the run's span tracer to every node's command service and
  /// to the replication layer (w:majority commit-wait spans). nullptr
  /// detaches.
  void SetTracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    for (auto& service : services_) service->SetTracer(tracer);
  }

  /// Installs a sharding admission check on every node's command service
  /// (stale chunk-version rejection — see CommandService::AdmissionCheck).
  void SetAdmissionCheck(server::CommandService::AdmissionCheck check) {
    for (auto& service : services_) service->SetAdmissionCheck(check);
  }

  // --- server::CommandBackend (dispatched into by CommandServices) ---

  bool NodeAlive(int idx) const override { return alive_[idx]; }
  /// Per-node topology belief: under raft elections each member answers
  /// from its own coordinator (so a deposed primary keeps claiming the
  /// role until it hears the new term — exactly the stale-view window
  /// the driver's term adoption exists for); otherwise the global view.
  int NodeBelievedPrimary(int idx) const override {
    return params_.raft_elections ? coords_[idx]->leader_for_hello()
                                  : primary_index_;
  }
  uint64_t NodeTerm(int idx) const override {
    return params_.raft_elections ? coords_[idx]->term() : term_;
  }
  OpTime NodeLastApplied(int idx) const override {
    return nodes_[idx]->last_applied();
  }
  const store::Database& NodeData(int idx) const override {
    return nodes_[idx]->db();
  }
  server::ServerNode& NodeServer(int idx) override {
    return nodes_[idx]->server();
  }
  void CommitWrite(int node, server::OpClass op_class, proto::TxnBody body,
                   WriteConcern concern, uint64_t op_id, double cost_scale,
                   std::function<void(const server::WriteOutcome&)> done)
      override;
  proto::ServerStatusReply ServerStatusSnapshot() override;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int secondary_count() const { return node_count() - 1; }
  /// Node 0 starts as the primary; fail-overs can move the role.
  ReplicaNode& node(int idx) { return *nodes_[idx]; }
  const ReplicaNode& node(int idx) const { return *nodes_[idx]; }
  ReplicaNode& primary() { return *nodes_[primary_index_]; }
  const ReplicaNode& primary() const { return *nodes_[primary_index_]; }
  int primary_index() const { return primary_index_; }

  // --- fault injection & fail-over ---

  bool IsAlive(int idx) const { return alive_[idx]; }

  /// Crashes a node. Killing the primary schedules an election after
  /// `election_timeout`; the most up-to-date surviving member wins, the
  /// oplog is truncated to its last applied optime (w:1 writes beyond it
  /// are lost — MongoDB rollback semantics), and outstanding w:majority
  /// acknowledgements fail as "uncertain".
  ///
  /// Crash granularity: operations already *in service* on the node when
  /// it dies still complete (their responses race the failure — clients
  /// may see them, as with a real crash); writes still *queued* observe
  /// the term change at commit time and fail. New operations are kept
  /// away by the driver's liveness checks.
  void KillNode(int idx);

  /// Restarts a crashed node: it initial-syncs (clones) from the current
  /// primary and rejoins as a secondary.
  void RestartNode(int idx);

  /// Election epoch (increments on every successful election).
  uint64_t term() const { return term_; }
  uint64_t elections() const { return elections_; }

  // --- raft-election surface (meaningful when params.raft_elections) ---

  bool raft_elections() const { return params_.raft_elections; }

  /// One member's election state machine (raft mode only).
  const TopologyCoordinator& coordinator(int idx) const {
    return *coords_[idx];
  }

  /// True when the member currently leading the data plane is alive and
  /// (in raft mode) has completed step-up — i.e. a write sent to the
  /// right node would commit.
  bool HasWritablePrimary() const {
    if (!alive_[primary_index_]) return false;
    return !params_.raft_elections || coords_[primary_index_]->writable();
  }

  /// Times a primary stepped down (higher term seen, or majority
  /// heartbeat contact lost) without crashing.
  uint64_t stepdowns() const;

  /// Times a diverged member (applied entries an election rolled back)
  /// re-cloned from the current primary before rejoining the stream.
  uint64_t rollback_resyncs() const { return rollback_resyncs_; }
  bool needs_resync(int idx) const { return needs_resync_[idx]; }

  /// Election-safety ledgers for the test battery: which member(s)
  /// became writable in each term, and which member(s) actually
  /// committed writes in each term. Both must have at most one entry
  /// per term — the at-most-one-writable-primary-per-term invariant.
  const std::map<uint64_t, std::vector<int>>& writable_by_term() const {
    return writable_by_term_;
  }
  const std::map<uint64_t, std::vector<int>>& commits_by_term() const {
    return commits_by_term_;
  }

  /// Multiplies the cost of applying oplog batches on node `idx` — the
  /// replication-apply throttle fault (a slow apply thread / IO-starved
  /// secondary). 1.0 restores healthy speed.
  void SetApplyThrottle(int idx, double factor);
  double apply_throttle(int idx) const { return apply_throttle_[idx]; }

  /// Skews the lastAppliedOpTime wall clock node `idx` *reports* in
  /// heartbeats; local replication state is untouched. Negative skew makes
  /// the node look staler to the primary (a conservative error); positive
  /// skew makes it look fresher than it is — exactly the distortion a
  /// skewed server clock inflicts on the §2.3 staleness estimate.
  void SetReportSkew(int idx, sim::Duration skew);
  sim::Duration report_skew(int idx) const { return report_skew_[idx]; }

  /// Times the pull watchdog restarted a secondary's oplog pull chain.
  uint64_t pull_restarts() const { return pull_restarts_; }

  /// Runs `body` against node `idx`'s data once that node's CPU finishes a
  /// service of class `c` (i.e., at the read's server-side completion).
  /// Internal/test entry point — clients go through the command bus.
  using ReadBody = proto::ReadBody;
  void Read(int idx, server::OpClass c, ReadBody body);

  /// Executes a read-write transaction on the primary under service class
  /// `c`. The body runs atomically at the commit instant; on commit its
  /// recorded writes enter the oplog. `done(committed)` follows.
  /// Internal/test entry point — clients go through the command bus.
  using TxnBody = proto::TxnBody;
  void WriteTransaction(server::OpClass c, TxnBody body,
                        std::function<void(bool committed)> done,
                        WriteConcern concern = WriteConcern::kW1);

  /// Runs `body` against node `idx`'s data like Read(), but only once the
  /// node has applied at least `after` — MongoDB's afterClusterTime /
  /// causal-consistency read gate. On an up-to-date node this is
  /// identical to Read(); on a lagging secondary the operation waits.
  void ReadAfter(int idx, const OpTime& after, server::OpClass c,
                 ReadBody body);

  /// What the primary's serverStatus reports about replication progress.
  /// The struct itself lives in proto/ now — it is a wire payload.
  using ServerStatusReply = proto::ServerStatusReply;

  /// Executes serverStatus at the primary (it queues on the CPU like any
  /// other command) and delivers the reply.
  void ServerStatus(std::function<void(const ServerStatusReply&)> done);

  /// The staleness estimate of §2.3, from a reply: max over secondaries of
  /// (primary lastApplied wall − secondary lastApplied wall), floored to
  /// whole seconds like MongoDB's reporting granularity.
  static int64_t MaxStalenessSeconds(const ServerStatusReply& reply);

  /// Ground-truth staleness of one secondary right now (not what a client
  /// could observe — used by tests and experiment plots).
  sim::Duration TrueStaleness(int secondary_idx) const;
  sim::Duration MaxTrueStaleness() const;

  const Oplog& oplog() const { return oplog_; }
  uint64_t committed_writes() const { return committed_writes_; }
  uint64_t flow_control_engaged_writes() const {
    return flow_control_engaged_writes_;
  }
  uint64_t getmore_stalls() const { return getmore_stalls_; }

  /// True max lag as *known by the primary* (flow control's signal).
  sim::Duration KnownMaxLag() const;

  /// Number of nodes (primary included, via heartbeat knowledge for
  /// secondaries) known to have applied sequence `seq`.
  int KnownReplicationCount(uint64_t seq) const;

  uint64_t majority_writes_acked() const { return majority_writes_acked_; }

 private:
  /// Shared implementation behind WriteTransaction and CommitWrite: runs
  /// the transaction on node `node`'s CPU (flow control applied) — the
  /// member that believes itself primary — commits or aborts at
  /// completion iff that member still leads the data plane at the commit
  /// instant, and — when `op_id != 0` — records the outcome in the
  /// retryable-write transaction table at the commit instant (the record
  /// is logically replicated with the write, so an election that rolls
  /// the write back also drops the record).
  void CommitInternal(int node, server::OpClass op_class, TxnBody body,
                      uint64_t op_id, double cost_scale,
                      std::function<void(const server::WriteOutcome&)> done,
                      WriteConcern concern);
  /// Resolves w:majority waiters whose sequence has reached a majority.
  void CheckMajorityWaiters();
  /// Fails all outstanding w:majority waiters (primary crash: outcome
  /// uncertain to the client).
  void FailMajorityWaiters();
  void ElectPrimary();
  /// True when node `idx` should run replication consumer loops.
  bool IsActiveSecondary(int idx) const {
    return alive_[idx] && idx != primary_index_;
  }
  void StartSecondaryLoops(int idx);
  // Pull-chain steps carry the epoch they were started under; a step whose
  // epoch no longer matches pull_epoch_[idx] belongs to a superseded chain
  // (watchdog restart, node kill) and retires without acting.
  void SendGetMore(int secondary_idx, uint64_t epoch);
  void HandleGetMoreAtPrimary(int secondary_idx, uint64_t epoch);
  void ServeGetMore(int secondary_idx, uint64_t epoch);
  void HandleBatchAtSecondary(int secondary_idx, std::vector<OplogEntry> batch,
                              uint64_t epoch);
  void HeartbeatLoop(int secondary_idx);
  /// Declares the pull chain healthy until now + extra + pull_retry_timeout.
  void ArmPullDeadline(int idx, sim::Duration extra = 0);
  /// Kills node `idx`'s pull chain outright (all in-flight continuations
  /// retire via the epoch bump).
  void RetirePull(int idx);

  // --- raft-election machinery (all no-ops when raft_elections is off:
  // coords_ stays empty, none of these are scheduled) ---

  /// Rollback via refetch: a diverged member re-clones the current
  /// primary (one network round trip) before rejoining the pull stream.
  void ResyncStep(int idx, uint64_t epoch);
  /// Keeps one election-check event chain per live member: fires at the
  /// coordinator's deadline, feeds it OnElectionTimeout, reschedules.
  void ArmElectionTimer(int idx);
  void ScheduleElectionCheck(int idx, uint64_t epoch);
  /// Executes whatever a coordinator transition asks of the data plane.
  void ApplyAction(int idx, const TopologyAction& action);
  void BroadcastVoteRequests(int idx);
  void ScheduleTakeoverCheck(int idx, sim::Time at);
  /// All-to-all liveness/term/progress heartbeats, one loop per live
  /// member (subsumes the legacy secondary→primary progress reports and
  /// the pull watchdog in raft mode).
  void RaftHeartbeatLoop(int idx);
  void HandleRaftHeartbeat(int to, const HeartbeatView& hb);
  /// Election won: the winner catches up to the freshest recently-heard
  /// peer optime before the data plane swaps to it (MongoDB's post-win
  /// catchup phase), then FinishStepUp truncates rolled-back history,
  /// moves primary_index_/term_, and opens the new term for writes.
  void BeginStepUp(int winner);
  void CatchUpStep(int winner, uint64_t new_term, uint64_t target,
                   sim::Time deadline, uint64_t epoch);
  void FinishStepUp(int winner, uint64_t new_term);
  /// Mirrors coordinator (or legacy global) role/term into the node's
  /// read-only role view.
  void SyncNodeView(int idx);
  void RecordWritable(uint64_t term, int node);
  void RecordCommit(uint64_t term, int node);

  sim::EventLoop* loop_;
  sim::Rng rng_;
  net::Network* network_;
  obs::Tracer* tracer_ = nullptr;
  ReplicaSetParams params_;
  std::vector<std::unique_ptr<ReplicaNode>> nodes_;
  Oplog oplog_;
  uint64_t next_seq_ = 1;
  /// known_last_applied_[idx] = node idx's progress as last heard by the
  /// primary via heartbeats (the primary's own slot is unused).
  std::vector<OpTime> known_last_applied_;
  std::vector<bool> alive_;
  // One pull chain / heartbeat chain per node at a time; the flags retire
  // a chain when its node stops being an active secondary and prevent
  // elections from spawning duplicates.
  std::vector<bool> pulling_;
  std::vector<bool> heartbeating_;
  // Watchdog state: the live chain's epoch, and the deadline by which it
  // must have made another step before the heartbeat loop restarts it.
  std::vector<uint64_t> pull_epoch_;
  std::vector<sim::Time> pull_deadline_;
  // Fault-injection knobs (see SetApplyThrottle / SetReportSkew).
  std::vector<double> apply_throttle_;
  std::vector<sim::Duration> report_skew_;
  uint64_t pull_restarts_ = 0;
  int primary_index_ = 0;
  uint64_t term_ = 1;
  uint64_t elections_ = 0;

  // --- raft-election state (empty / unused when the flag is off) ---

  /// One election state machine per member (raft mode only).
  std::vector<std::unique_ptr<TopologyCoordinator>> coords_;
  /// Election-check chains: one per live member, epoch-retired on kill.
  std::vector<uint64_t> election_timer_epoch_;
  std::vector<bool> election_timer_armed_;
  std::vector<uint64_t> takeover_epoch_;
  /// Members whose applied history extends past an election's rollback
  /// point; they must re-clone before pulling again.
  std::vector<bool> needs_resync_;
  /// Supersedes stale catch-up chains when a newer election wins.
  uint64_t catchup_epoch_ = 0;
  uint64_t rollback_resyncs_ = 0;
  std::map<uint64_t, std::vector<int>> writable_by_term_;
  std::map<uint64_t, std::vector<int>> commits_by_term_;
  uint64_t committed_writes_ = 0;
  uint64_t flow_control_engaged_writes_ = 0;
  uint64_t getmore_stalls_ = 0;
  uint64_t majority_writes_acked_ = 0;

  struct MajorityWaiter {
    uint64_t seq;
    std::function<void(bool)> ack;
  };
  std::vector<MajorityWaiter> majority_waiters_;

  // --- wire-protocol command layer ---

  proto::CommandBus bus_;
  std::vector<std::unique_ptr<server::CommandService>> services_;

  /// Retryable-write transaction table, keyed by op id. Modeled as
  /// perfectly replicated alongside the data it describes: records for
  /// writes rolled back by an election are purged with them.
  struct RetryRecord {
    bool committed = false;
    OpTime operation_time;
  };
  std::unordered_map<uint64_t, RetryRecord> retry_records_;
  /// Attempts that arrived while the same op id was still committing
  /// (e.g. a client retry racing a slow first attempt) park here and are
  /// acknowledged with the original's outcome instead of re-executing.
  std::unordered_map<
      uint64_t, std::vector<std::function<void(const server::WriteOutcome&)>>>
      retry_waiters_;
};

}  // namespace dcg::repl

#endif  // DCG_REPL_REPLICA_SET_H_
