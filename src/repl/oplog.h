#ifndef DCG_REPL_OPLOG_H_
#define DCG_REPL_OPLOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "doc/value.h"
#include "sim/time.h"

namespace dcg::repl {

/// A position in the replicated log: the primary's wall-clock time of the
/// commit plus a dense sequence number. Comparisons use the sequence; the
/// wall time feeds staleness arithmetic (lastAppliedOpTime differences,
/// §2.3 of the paper).
struct OpTime {
  sim::Time wall = 0;
  uint64_t seq = 0;

  bool operator==(const OpTime& o) const { return seq == o.seq; }
  bool operator<(const OpTime& o) const { return seq < o.seq; }
  bool operator<=(const OpTime& o) const { return seq <= o.seq; }
};

enum class OpKind { kInsert, kUpdate, kRemove, kNoop };

/// One logical replicated operation. Inserts carry the full document;
/// updates carry the serialized UpdateSpec (operator replay, like
/// MongoDB's oplog `u` entries); removes carry only the id.
struct OplogEntry {
  OpTime optime;
  OpKind kind = OpKind::kNoop;
  std::string collection;
  doc::Value id;
  doc::Value payload;
  size_t approx_bytes = 0;

  size_t ApproxBytes() const;
};

/// The primary's capped operation log. Secondaries read batches after
/// their own last-applied sequence number.
class Oplog {
 public:
  /// `capacity` caps retained entries; older entries fall off (a secondary
  /// that falls behind the cap would need initial sync in MongoDB — the
  /// replica set CHECK-fails in that case, since our experiments are sized
  /// to never hit it).
  explicit Oplog(size_t capacity = 2'000'000);

  void Append(OplogEntry entry);

  /// Entries with seq in (after_seq, after_seq + max_batch]. CHECK-fails
  /// when entries after `after_seq` have already been truncated.
  std::vector<OplogEntry> ReadAfter(uint64_t after_seq,
                                    size_t max_batch) const;

  /// Sequence of the newest entry (0 when empty).
  uint64_t last_seq() const;
  /// OpTime of the newest entry (zero OpTime when empty).
  OpTime last_optime() const;

  /// Discards every entry with seq > `seq` (failover rollback of
  /// un-replicated writes).
  void TruncateAfter(uint64_t seq);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  uint64_t first_seq() const { return first_seq_; }

 private:
  size_t capacity_;
  uint64_t first_seq_ = 1;  // seq of entries_.front(), when non-empty
  std::deque<OplogEntry> entries_;
};

}  // namespace dcg::repl

#endif  // DCG_REPL_OPLOG_H_
