#ifndef DCG_REPL_REPLICA_NODE_H_
#define DCG_REPL_REPLICA_NODE_H_

#include <memory>
#include <string>

#include "repl/oplog.h"
#include "repl/topology_coordinator.h"
#include "server/server_node.h"

namespace dcg::repl {

/// One member of a replica set: a ServerNode (CPU/disk/data) plus
/// replication bookkeeping (lastAppliedOpTime, §2.3).
class ReplicaNode {
 public:
  ReplicaNode(sim::EventLoop* loop, sim::Rng rng, server::ServerParams params,
              net::HostId host, std::string name)
      : server_(loop, std::move(rng), params, host, std::move(name)) {}

  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  server::ServerNode& server() { return server_; }
  const server::ServerNode& server() const { return server_; }
  store::Database& db() { return server_.db(); }
  const store::Database& db() const { return server_.db(); }
  net::HostId host() const { return server_.host(); }
  const std::string& name() const { return server_.name(); }

  /// The optime of the newest operation applied to this node's data.
  const OpTime& last_applied() const { return last_applied_; }

  /// Applies one oplog entry's data change to the local database and
  /// advances last_applied. Replay is deterministic: applying the same
  /// entries in order yields identical databases on every node.
  void ApplyEntry(const OplogEntry& entry);

  /// Advances last_applied without replaying data — used on the primary,
  /// whose transactions mutate the database directly at commit time.
  void AdvanceLastApplied(const OpTime& optime);

  /// Resets replication state after an initial sync: the node's data was
  /// just cloned from a member whose last applied optime is `synced_to`.
  void ResetForResync(const OpTime& synced_to) {
    last_applied_ = synced_to;
  }

  uint64_t entries_applied() const { return entries_applied_; }

  /// The member's current role, scoped to the term it was assumed in.
  /// Mirrored from the replica set's topology state (the coordinator in
  /// raft-election mode, the global primary index otherwise) every time a
  /// transition lands at this node — a read-only view for tests and logs.
  MemberRole role() const { return role_; }
  uint64_t role_term() const { return role_term_; }
  void set_role_view(MemberRole role, uint64_t term) {
    role_ = role;
    role_term_ = term;
  }

 private:
  server::ServerNode server_;
  OpTime last_applied_;
  uint64_t entries_applied_ = 0;
  MemberRole role_ = MemberRole::kSecondary;
  uint64_t role_term_ = 1;
};

}  // namespace dcg::repl

#endif  // DCG_REPL_REPLICA_NODE_H_
