#include "repl/oplog.h"

#include <utility>

#include "util/check.h"

namespace dcg::repl {

size_t OplogEntry::ApproxBytes() const {
  return approx_bytes != 0
             ? approx_bytes
             : 64 + collection.size() + id.ApproxSize() + payload.ApproxSize();
}

Oplog::Oplog(size_t capacity) : capacity_(capacity) {
  DCG_CHECK(capacity_ > 0);
}

void Oplog::Append(OplogEntry entry) {
  DCG_CHECK_MSG(entry.optime.seq == last_seq() + 1,
                "oplog sequence must be dense");
  entries_.push_back(std::move(entry));
  if (entries_.size() > capacity_) {
    entries_.pop_front();
    ++first_seq_;
  }
}

std::vector<OplogEntry> Oplog::ReadAfter(uint64_t after_seq,
                                         size_t max_batch) const {
  std::vector<OplogEntry> out;
  if (entries_.empty() || after_seq >= last_seq()) return out;
  DCG_CHECK_MSG(after_seq + 1 >= first_seq_,
                "reader fell off the capped oplog");
  const size_t start = static_cast<size_t>(after_seq + 1 - first_seq_);
  const size_t count = std::min(entries_.size() - start, max_batch);
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(entries_[start + i]);
  return out;
}

void Oplog::TruncateAfter(uint64_t seq) {
  while (!entries_.empty() && entries_.back().optime.seq > seq) {
    entries_.pop_back();
  }
}

uint64_t Oplog::last_seq() const {
  return entries_.empty() ? first_seq_ - 1 : entries_.back().optime.seq;
}

OpTime Oplog::last_optime() const {
  return entries_.empty() ? OpTime{} : entries_.back().optime;
}

}  // namespace dcg::repl
