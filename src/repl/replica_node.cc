#include "repl/replica_node.h"

#include "doc/update.h"
#include "util/check.h"

namespace dcg::repl {

void ReplicaNode::ApplyEntry(const OplogEntry& entry) {
  DCG_CHECK_MSG(last_applied_.seq + 1 == entry.optime.seq,
                "out-of-order oplog application on %s", name().c_str());
  store::Collection& coll = db().GetOrCreate(entry.collection);
  switch (entry.kind) {
    case OpKind::kInsert:
      // Idempotent replay semantics: an insert overwrites any stale copy.
      coll.Upsert(entry.payload);
      break;
    case OpKind::kUpdate: {
      const doc::UpdateSpec spec = doc::UpdateSpec::FromValue(entry.payload);
      const bool ok = coll.Update(entry.id, spec);
      DCG_CHECK_MSG(ok, "replayed update of missing doc in %s",
                    entry.collection.c_str());
      break;
    }
    case OpKind::kRemove:
      coll.Remove(entry.id);
      break;
    case OpKind::kNoop:
      break;
  }
  last_applied_ = entry.optime;
  ++entries_applied_;
  server_.AddDirtyBytes(entry.ApproxBytes());
}

void ReplicaNode::AdvanceLastApplied(const OpTime& optime) {
  DCG_CHECK(last_applied_.seq + 1 == optime.seq);
  last_applied_ = optime;
  ++entries_applied_;
}

}  // namespace dcg::repl
