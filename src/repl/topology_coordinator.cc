#include "repl/topology_coordinator.h"

#include <algorithm>

#include "util/check.h"

namespace dcg::repl {

std::string_view ToString(MemberRole role) {
  switch (role) {
    case MemberRole::kSecondary:
      return "secondary";
    case MemberRole::kCandidate:
      return "candidate";
    case MemberRole::kPrimary:
      return "primary";
  }
  return "unknown";
}

std::string_view ToString(TopologyEvent event) {
  switch (event) {
    case TopologyEvent::kNone:
      return "none";
    case TopologyEvent::kElectionTimeout:
      return "election_timeout";
    case TopologyEvent::kPriorityTakeover:
      return "priority_takeover";
    case TopologyEvent::kStepDownHigherTerm:
      return "stepdown_higher_term";
    case TopologyEvent::kStepDownNoMajority:
      return "stepdown_no_majority";
    case TopologyEvent::kWonElection:
      return "won_election";
  }
  return "unknown";
}

TopologyCoordinator::TopologyCoordinator(int self, TopologyConfig config,
                                         sim::Rng rng, int initial_leader,
                                         sim::Time now)
    : self_(self), config_(std::move(config)), rng_(std::move(rng)) {
  DCG_CHECK(config_.node_count >= 2);
  DCG_CHECK(self_ >= 0 && self_ < config_.node_count);
  campaign_votes_.assign(static_cast<size_t>(config_.node_count), false);
  peer_heard_.assign(static_cast<size_t>(config_.node_count), -1);
  peer_last_applied_.assign(static_cast<size_t>(config_.node_count), OpTime{});
  leader_ = initial_leader;
  if (initial_leader == self_) {
    // The seed primary starts already stepped up (term 1, writable) —
    // exactly the steady state the legacy model begins in.
    role_ = MemberRole::kPrimary;
    writable_ = true;
  }
  ResetElectionDeadline(now);
}

double TopologyCoordinator::PriorityOf(int node) const {
  if (node < 0 ||
      node >= static_cast<int>(config_.priorities.size())) {
    return 1.0;
  }
  return config_.priorities[static_cast<size_t>(node)];
}

void TopologyCoordinator::ResetElectionDeadline(sim::Time now) {
  const auto jitter_max = static_cast<sim::Duration>(
      config_.timeout_jitter_fraction *
      static_cast<double>(config_.election_timeout));
  const sim::Duration jitter =
      jitter_max > 0 ? rng_.UniformInt(0, jitter_max) : 0;
  election_deadline_ = now + config_.election_timeout + jitter;
}

void TopologyCoordinator::StepDown(TopologyEvent why, sim::Time now) {
  if (role_ == MemberRole::kPrimary) ++stepdowns_;
  role_ = MemberRole::kSecondary;
  writable_ = false;
  AbandonCampaign();
  last_event_ = why;
  ResetElectionDeadline(now);
}

void TopologyCoordinator::AbandonCampaign() {
  campaigning_ = false;
  std::fill(campaign_votes_.begin(), campaign_votes_.end(), false);
}

int TopologyCoordinator::VotesReceived() const {
  return static_cast<int>(std::count(campaign_votes_.begin(),
                                     campaign_votes_.end(), true));
}

TopologyAction TopologyCoordinator::OnElectionTimeout(sim::Time now) {
  TopologyAction action;
  if (now < election_deadline_) return action;  // re-armed since scheduling
  if (role_ == MemberRole::kPrimary) {
    // A primary partitioned from the majority cannot still be the
    // cluster's leader; stepping down bounds how long it keeps believing
    // (and telling clients) otherwise.
    int heard = 1;  // self
    for (int i = 0; i < config_.node_count; ++i) {
      if (i == self_ || peer_heard_[static_cast<size_t>(i)] < 0) continue;
      if (now - peer_heard_[static_cast<size_t>(i)] <=
          config_.election_timeout) {
        ++heard;
      }
    }
    if (heard < Majority()) {
      StepDown(TopologyEvent::kStepDownNoMajority, now);
      action.stepped_down = true;
      action.event = TopologyEvent::kStepDownNoMajority;
      return action;
    }
    ResetElectionDeadline(now);
    return action;
  }
  // Priority-0 members never campaign; their timer just keeps watch.
  if (PriorityOf(self_) <= 0.0) {
    ResetElectionDeadline(now);
    return action;
  }
  // Follower (or a candidate whose campaign stalled — split vote, lost
  // requests): open a dry-run round for term + 1. Terms are only
  // disturbed if a majority finds this member electable.
  role_ = MemberRole::kSecondary;
  AbandonCampaign();
  campaigning_ = true;
  campaign_dry_run_ = true;
  campaign_term_ = term_ + 1;
  campaign_votes_[static_cast<size_t>(self_)] = true;
  ++dry_runs_started_;
  last_event_ = TopologyEvent::kElectionTimeout;
  ResetElectionDeadline(now);  // fresh jitter paces the retry
  action.start_dry_run = true;
  action.event = TopologyEvent::kElectionTimeout;
  return action;
}

TopologyAction TopologyCoordinator::OnHeartbeat(const HeartbeatView& hb,
                                                const OpTime& my_last_applied,
                                                sim::Time now) {
  (void)my_last_applied;
  TopologyAction action;
  if (hb.from < 0 || hb.from >= config_.node_count || hb.from == self_) {
    return action;
  }
  peer_heard_[static_cast<size_t>(hb.from)] = now;
  OpTime& known = peer_last_applied_[static_cast<size_t>(hb.from)];
  if (known < hb.last_applied) known = hb.last_applied;

  if (hb.term > term_) {
    term_ = hb.term;
    leader_ = -1;
    const bool was_leaderish = role_ != MemberRole::kSecondary;
    StepDown(TopologyEvent::kStepDownHigherTerm, now);
    if (was_leaderish) {
      action.stepped_down = true;
      action.event = TopologyEvent::kStepDownHigherTerm;
    }
  }
  if (hb.leader == hb.from && hb.term >= term_ && hb.from != self_) {
    // Direct contact from a live leader: adopt it and defer elections.
    leader_ = hb.from;
    leader_last_applied_ = hb.last_applied;
    if (role_ == MemberRole::kCandidate) {
      StepDown(TopologyEvent::kNone, now);
      action.stepped_down = true;
    }
    if (role_ == MemberRole::kSecondary) {
      AbandonCampaign();
      ResetElectionDeadline(now);
      if (!takeover_pending_ && PriorityOf(self_) > PriorityOf(hb.from)) {
        // A higher-priority member should lead. Wait a beat (the leader
        // may be about to yield anyway), then take over for real.
        takeover_pending_ = true;
        action.takeover_at = now + config_.priority_takeover_delay;
      }
    }
  }
  return action;
}

VoteResponse TopologyCoordinator::OnVoteRequest(const VoteRequest& req,
                                                const OpTime& my_last_applied,
                                                sim::Time now) {
  VoteResponse resp;
  resp.voter = self_;
  resp.candidate = req.candidate;
  resp.term = req.term;
  resp.dry_run = req.dry_run;
  resp.voter_term = term_;
  if (req.term < term_) {
    resp.reason = "stale term";
    return resp;
  }
  if (!req.dry_run && req.term > term_) {
    // Real vote traffic carries durable terms: adopt it, demoting any
    // leader/candidate role held under the older term.
    term_ = req.term;
    leader_ = -1;
    StepDown(TopologyEvent::kStepDownHigherTerm, now);
    resp.voter_term = term_;
  }
  if (req.last_applied.seq < my_last_applied.seq) {
    // Freshness rule: electing this candidate would roll back entries
    // this voter already holds.
    resp.reason = "candidate oplog older than voter's";
    return resp;
  }
  if (req.dry_run) {
    if (leader_ >= 0 && leader_ != req.candidate &&
        peer_heard_[static_cast<size_t>(leader_)] >= 0 &&
        now - peer_heard_[static_cast<size_t>(leader_)] <=
            config_.election_timeout) {
      // Pre-vote liveness check: don't help disrupt a healthy leader.
      resp.reason = "leader is healthy";
      return resp;
    }
    resp.granted = true;
    resp.reason = "dry-run ok";
    return resp;
  }
  if (voted_term_ == req.term && voted_for_ >= 0 &&
      voted_for_ != req.candidate) {
    resp.reason = "already voted this term";
    return resp;
  }
  voted_term_ = req.term;
  voted_for_ = req.candidate;
  leader_ = -1;  // whoever wins this term will announce itself
  // Granting a real vote defers this member's own candidacy (Raft).
  ResetElectionDeadline(now);
  resp.granted = true;
  resp.reason = "vote granted";
  return resp;
}

TopologyAction TopologyCoordinator::StartRealElection(TopologyEvent why,
                                                      sim::Time now) {
  TopologyAction action;
  role_ = MemberRole::kCandidate;
  campaigning_ = true;
  campaign_dry_run_ = false;
  term_ = campaign_term_;
  voted_term_ = campaign_term_;
  voted_for_ = self_;
  leader_ = -1;
  std::fill(campaign_votes_.begin(), campaign_votes_.end(), false);
  campaign_votes_[static_cast<size_t>(self_)] = true;
  ++elections_started_;
  last_event_ = why;
  ResetElectionDeadline(now);
  action.start_election = true;
  action.event = why;
  return action;
}

TopologyAction TopologyCoordinator::OnVoteResponse(const VoteResponse& resp,
                                                   sim::Time now) {
  TopologyAction action;
  if (resp.voter_term > term_) {
    // A denial from the future: someone is already past this campaign.
    term_ = resp.voter_term;
    leader_ = -1;
    const bool was_leaderish = role_ != MemberRole::kSecondary;
    StepDown(TopologyEvent::kStepDownHigherTerm, now);
    if (was_leaderish) {
      action.stepped_down = true;
      action.event = TopologyEvent::kStepDownHigherTerm;
    }
    return action;
  }
  if (!campaigning_ || resp.candidate != self_ ||
      resp.term != campaign_term_ || resp.dry_run != campaign_dry_run_) {
    return action;  // stray response from a superseded round
  }
  if (resp.voter >= 0 && resp.voter < config_.node_count) {
    peer_heard_[static_cast<size_t>(resp.voter)] = now;
  }
  if (!resp.granted) return action;
  campaign_votes_[static_cast<size_t>(resp.voter)] = true;
  if (VotesReceived() < Majority()) return action;
  if (campaign_dry_run_) {
    // A majority finds us electable: now run the real, term-bumping
    // election for the proposed term.
    return StartRealElection(TopologyEvent::kElectionTimeout, now);
  }
  // Real majority: this member is the primary of campaign_term_. It
  // stays non-writable until the data-plane catch-up completes.
  campaigning_ = false;
  role_ = MemberRole::kPrimary;
  writable_ = false;
  leader_ = self_;
  last_event_ = TopologyEvent::kWonElection;
  ResetElectionDeadline(now);
  action.won_election = true;
  action.event = TopologyEvent::kWonElection;
  return action;
}

TopologyAction TopologyCoordinator::OnPriorityTakeoverCheck(
    const OpTime& my_last_applied, sim::Time now) {
  TopologyAction action;
  takeover_pending_ = false;
  if (role_ != MemberRole::kSecondary || campaigning_) return action;
  if (leader_ < 0 || leader_ == self_) return action;
  if (PriorityOf(self_) <= PriorityOf(leader_)) return action;
  const bool caught_up =
      my_last_applied.seq >= leader_last_applied_.seq ||
      leader_last_applied_.wall - my_last_applied.wall <=
          config_.priority_takeover_gap;
  if (!caught_up) return action;  // the next leader heartbeat re-arms
  // Takeover elections skip the dry run: the point is to displace a
  // live, healthy leader, which pre-vote liveness would veto.
  campaign_term_ = term_ + 1;
  return StartRealElection(TopologyEvent::kPriorityTakeover, now);
}

void TopologyCoordinator::CompleteStepUp(sim::Time now) {
  DCG_CHECK(role_ == MemberRole::kPrimary);
  writable_ = true;
  leader_ = self_;
  ResetElectionDeadline(now);
}

void TopologyCoordinator::Rejoin(sim::Time now) {
  role_ = MemberRole::kSecondary;
  writable_ = false;
  leader_ = -1;
  takeover_pending_ = false;
  AbandonCampaign();
  std::fill(peer_heard_.begin(), peer_heard_.end(), -1);
  ResetElectionDeadline(now);
}

VoteRequest TopologyCoordinator::CampaignRequest(
    const OpTime& my_last_applied) const {
  DCG_CHECK(campaigning_);
  VoteRequest req;
  req.candidate = self_;
  req.term = campaign_term_;
  req.dry_run = campaign_dry_run_;
  req.last_applied = my_last_applied;
  return req;
}

uint64_t TopologyCoordinator::FreshestPeerSeq(sim::Time now,
                                              sim::Duration window) const {
  uint64_t best = 0;
  for (int i = 0; i < config_.node_count; ++i) {
    if (i == self_) continue;
    const sim::Time heard = peer_heard_[static_cast<size_t>(i)];
    if (heard < 0 || now - heard > window) continue;
    best = std::max(best, peer_last_applied_[static_cast<size_t>(i)].seq);
  }
  return best;
}

}  // namespace dcg::repl
