#ifndef DCG_REPL_TXN_H_
#define DCG_REPL_TXN_H_

#include <string>
#include <vector>

#include "doc/update.h"
#include "doc/value.h"
#include "repl/oplog.h"
#include "store/database.h"

namespace dcg::repl {

/// Durability requirement for a write (MongoDB write concern).
enum class WriteConcern {
  kW1,        // acknowledged once committed on the primary (default)
  kMajority,  // acknowledged once a majority of nodes have applied it
};

/// Write-transaction context handed to transaction bodies executing on the
/// primary.
///
/// Because a transaction body runs inside a single simulation event, it is
/// trivially atomic and isolated; writes apply to the primary's database
/// immediately (so the body reads its own writes, as TPC-C Delivery needs)
/// while being recorded for the oplog. `Abort()` rolls every write back via
/// captured pre-images and suppresses the oplog entries — used by TPC-C
/// New Order's 1 % programmed rollback.
class TxnContext {
 public:
  explicit TxnContext(store::Database* db) : db_(db) {}

  TxnContext(const TxnContext&) = delete;
  TxnContext& operator=(const TxnContext&) = delete;

  /// Read access to the primary's current data (including this
  /// transaction's own writes).
  const store::Database& db() const { return *db_; }

  /// Inserts a new document. CHECK-fails on duplicate _id (workload bug).
  void Insert(const std::string& collection, doc::Value document);

  /// Applies an update spec. Returns false when the document is missing.
  bool Update(const std::string& collection, const doc::Value& id,
              const doc::UpdateSpec& spec);

  /// Removes a document. Returns true if it existed.
  bool Remove(const std::string& collection, const doc::Value& id);

  /// Rolls back every write of this transaction and marks it aborted.
  void Abort();

  bool aborted() const { return aborted_; }

  /// The recorded logical operations, in order (optimes unset — the
  /// replica set assigns them at commit).
  std::vector<OplogEntry>& entries() { return entries_; }

 private:
  struct Undo {
    std::string collection;
    doc::Value id;
    store::DocPtr pre_image;  // nullptr => document did not exist
  };

  store::Database* db_;
  std::vector<OplogEntry> entries_;
  std::vector<Undo> undo_;
  bool aborted_ = false;
};

}  // namespace dcg::repl

#endif  // DCG_REPL_TXN_H_
