#ifndef DCG_REPL_TOPOLOGY_COORDINATOR_H_
#define DCG_REPL_TOPOLOGY_COORDINATOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "repl/oplog.h"
#include "sim/random.h"
#include "sim/time.h"

namespace dcg::repl {

/// Role a member believes it holds. Roles are term-scoped: a node is
/// "primary in term T", never just "primary" — seeing a higher term
/// demotes it immediately.
enum class MemberRole : uint8_t {
  kSecondary = 0,
  kCandidate = 1,
  kPrimary = 2,
};

std::string_view ToString(MemberRole role);

/// Why the coordinator's last transition happened — surfaced in tests,
/// logs, and the election battery's assertions.
enum class TopologyEvent : uint8_t {
  kNone = 0,
  /// Election timeout expired with no leader contact: dry-run started.
  kElectionTimeout,
  /// A higher-priority member is taking over from a live leader.
  kPriorityTakeover,
  /// Saw a higher term (heartbeat or vote traffic): stepped down.
  kStepDownHigherTerm,
  /// A primary lost majority heartbeat contact: stepped down.
  kStepDownNoMajority,
  /// Won a real election: step-up (catch-up) begins.
  kWonElection,
};

std::string_view ToString(TopologyEvent event);

/// Per-member election configuration.
struct TopologyConfig {
  int node_count = 3;
  /// Base election timeout; the effective deadline adds a uniform random
  /// jitter in [0, timeout_jitter_fraction * election_timeout] per reset,
  /// de-synchronizing candidates (MongoDB's electionTimeoutOffset).
  sim::Duration election_timeout = sim::Seconds(5);
  double timeout_jitter_fraction = 0.15;
  sim::Duration heartbeat_interval = sim::Millis(500);
  /// A secondary that spots a lower-priority leader waits this long
  /// (re-checking that the situation persists) before taking over.
  sim::Duration priority_takeover_delay = sim::Seconds(1);
  /// How caught-up a takeover candidate must be: within this much wall
  /// time of the leader's last reported optime (or at/above its seq).
  sim::Duration priority_takeover_gap = sim::Seconds(2);
  /// Election priority per node index; empty = all 1.0. A node with
  /// priority 0 never campaigns (MongoDB's priority:0 members).
  std::vector<double> priorities;
};

/// A (pre-)vote solicitation broadcast by a campaigning member.
struct VoteRequest {
  int candidate = -1;
  /// Proposed term (dry run) or the candidate's adopted term (real).
  uint64_t term = 0;
  /// Dry-run rounds probe electability without disturbing terms; only a
  /// real election bumps the candidate's own term.
  bool dry_run = true;
  /// Candidate's oplog position: voters refuse candidates whose oplog is
  /// older than their own (the Raft / MongoDB freshness rule).
  OpTime last_applied;
};

/// A member's answer to a VoteRequest.
struct VoteResponse {
  int voter = -1;
  int candidate = -1;
  uint64_t term = 0;  // the campaign term this answers
  bool dry_run = true;
  bool granted = false;
  /// The voter's own term after processing — a denial carrying a higher
  /// term is itself a step-down signal for the candidate.
  uint64_t voter_term = 0;
  /// Static human-readable grant/denial reason (for tests and logs).
  std::string_view reason;
};

/// One member's heartbeat as seen by a peer: term + leader view +
/// replication progress, the payload MongoDB piggybacks on replSetHeartbeat.
struct HeartbeatView {
  int from = -1;
  uint64_t term = 0;
  /// Sender's leader belief; a sender claims leadership (leader == from)
  /// only while it is a writable primary.
  int leader = -1;
  OpTime last_applied;
};

/// What the surrounding replica set must do after feeding the coordinator
/// an input. At most one of the campaign flags is set per call.
struct TopologyAction {
  bool start_dry_run = false;   // broadcast dry-run vote requests
  bool start_election = false;  // broadcast real vote requests
  bool won_election = false;    // begin step-up (catch-up, then writable)
  bool stepped_down = false;    // primary/candidate reverted to secondary
  TopologyEvent event = TopologyEvent::kNone;
  /// >= 0: schedule a priority-takeover check at this instant.
  sim::Time takeover_at = -1;

  bool any() const {
    return start_dry_run || start_election || won_election || stepped_down ||
           takeover_at >= 0;
  }
};

/// One member's Raft-style election state machine — the brain behind
/// elections, modelled on mongod's repl::TopologyCoordinator. It is pure
/// state: no event loop, no network. The owning ReplicaSet feeds it
/// timeouts, heartbeats, and vote traffic, and executes the returned
/// TopologyActions (broadcasting requests, scheduling checks, starting
/// the data-plane step-up). That split keeps the vote rules directly
/// unit-testable with hand-rolled inputs.
///
/// Rules implemented, each exercised by tests/election_test.cc:
///  - randomized election deadlines (base timeout + uniform jitter);
///  - dry-run (pre-vote) rounds that never disturb terms, denied while
///    the voter still hears a live leader;
///  - freshness: no vote, dry or real, for a candidate whose oplog is
///    older than the voter's;
///  - a single real vote per term, granting resets the voter's timer;
///  - term propagation: any message carrying a higher term demotes
///    primaries and candidates to secondary on the spot;
///  - a primary that loses majority heartbeat contact steps down;
///  - priority takeover: a caught-up higher-priority secondary campaigns
///    against a live lower-priority leader (real election, no dry run);
///  - step-up completes (writable) only after the data-plane catch-up —
///    won_election marks the start, CompleteStepUp() the end.
class TopologyCoordinator {
 public:
  /// `initial_leader` seeds the steady topology (node 0 is the seed
  /// primary and starts writable in term 1, matching the driver's seed
  /// view); pass -1 for a cold start with no leader.
  TopologyCoordinator(int self, TopologyConfig config, sim::Rng rng,
                      int initial_leader, sim::Time now);

  TopologyCoordinator(const TopologyCoordinator&) = delete;
  TopologyCoordinator& operator=(const TopologyCoordinator&) = delete;

  int self() const { return self_; }
  MemberRole role() const { return role_; }
  uint64_t term() const { return term_; }
  /// Current leader belief (-1 unknown). A freshly elected leader points
  /// at itself here even while catching up.
  int leader() const { return leader_; }
  /// Leader belief suitable for hello replies: a leader mid-catch-up is
  /// not yet writable, so the cluster reports "no primary" (-1) rather
  /// than flapping between the old and new leader.
  int leader_for_hello() const {
    return (leader_ == self_ && !writable_) ? -1 : leader_;
  }
  /// True once step-up completed: the member accepts writes in its term.
  bool writable() const { return role_ == MemberRole::kPrimary && writable_; }
  sim::Time election_deadline() const { return election_deadline_; }
  TopologyEvent last_event() const { return last_event_; }
  uint64_t dry_runs_started() const { return dry_runs_started_; }
  uint64_t elections_started() const { return elections_started_; }
  /// Times this member stepped down *from the primary role* (crashes
  /// don't count — only higher terms and lost majority contact).
  uint64_t stepdowns() const { return stepdowns_; }
  double priority() const { return PriorityOf(self_); }

  /// Re-arms the election deadline at now + timeout + U[0, jitter].
  void ResetElectionDeadline(sim::Time now);

  /// The election timer fired. Returns none when the deadline has moved
  /// (leader contact re-armed it); otherwise starts a dry run (follower),
  /// retries a stuck campaign (candidate), or runs the primary's
  /// majority-contact check.
  TopologyAction OnElectionTimeout(sim::Time now);

  /// A peer's heartbeat arrived. `my_last_applied` is this member's own
  /// oplog position (owned by ReplicaNode, not the coordinator).
  TopologyAction OnHeartbeat(const HeartbeatView& hb,
                             const OpTime& my_last_applied, sim::Time now);

  /// A campaigning peer asks for this member's vote.
  VoteResponse OnVoteRequest(const VoteRequest& req,
                             const OpTime& my_last_applied, sim::Time now);

  /// A voter answered this member's campaign.
  TopologyAction OnVoteResponse(const VoteResponse& resp, sim::Time now);

  /// The deferred priority-takeover check fired: campaign for real iff
  /// the leader is still lower-priority and this member is caught up.
  TopologyAction OnPriorityTakeoverCheck(const OpTime& my_last_applied,
                                         sim::Time now);

  /// Data-plane catch-up finished: the new primary opens for writes.
  void CompleteStepUp(sim::Time now);

  /// A restarted member rejoins as a secondary, keeping its persisted
  /// term (Raft's durable currentTerm) but no leader belief.
  void Rejoin(sim::Time now);

  /// The request the owner should broadcast for the active campaign.
  VoteRequest CampaignRequest(const OpTime& my_last_applied) const;

  /// Freshest oplog seq among peers heard within `window` — the
  /// step-up catch-up target (unreachable members' extra entries roll
  /// back instead of being waited for).
  uint64_t FreshestPeerSeq(sim::Time now, sim::Duration window) const;

 private:
  double PriorityOf(int node) const;
  int Majority() const { return config_.node_count / 2 + 1; }
  /// Demotes to secondary (no-op bookkeeping if already one).
  void StepDown(TopologyEvent why, sim::Time now);
  void AbandonCampaign();
  /// Starts the real election round: adopts the campaign term and votes
  /// for itself.
  TopologyAction StartRealElection(TopologyEvent why, sim::Time now);
  int VotesReceived() const;

  const int self_;
  const TopologyConfig config_;
  sim::Rng rng_;

  MemberRole role_ = MemberRole::kSecondary;
  uint64_t term_ = 1;
  int leader_ = -1;
  bool writable_ = false;
  sim::Time election_deadline_ = 0;
  TopologyEvent last_event_ = TopologyEvent::kNone;

  /// The single real vote this member cast in voted_term_ (Raft's
  /// votedFor; -1 = none yet).
  uint64_t voted_term_ = 0;
  int voted_for_ = -1;

  /// Active campaign bookkeeping (valid while campaigning_).
  bool campaigning_ = false;
  bool campaign_dry_run_ = true;
  uint64_t campaign_term_ = 0;
  std::vector<bool> campaign_votes_;

  /// Peer liveness + progress, from heartbeat/vote traffic.
  std::vector<sim::Time> peer_heard_;
  std::vector<OpTime> peer_last_applied_;
  /// The leader's progress as of its latest direct heartbeat (takeover
  /// caught-up check input).
  OpTime leader_last_applied_;
  bool takeover_pending_ = false;

  uint64_t dry_runs_started_ = 0;
  uint64_t elections_started_ = 0;
  uint64_t stepdowns_ = 0;
};

}  // namespace dcg::repl

#endif  // DCG_REPL_TOPOLOGY_COORDINATOR_H_
