#include "repl/txn.h"

#include <utility>

#include "util/check.h"

namespace dcg::repl {

void TxnContext::Insert(const std::string& collection, doc::Value document) {
  DCG_CHECK(!aborted_);
  store::Collection& coll = db_->GetOrCreate(collection);
  const doc::Value* id = document.Find("_id");
  DCG_CHECK(id != nullptr);

  OplogEntry entry;
  entry.kind = OpKind::kInsert;
  entry.collection = collection;
  entry.id = *id;
  entry.approx_bytes = document.ApproxSize();
  entry.payload = document;

  undo_.push_back({collection, *id, coll.FindById(*id)});
  const bool inserted = coll.Insert(std::move(document));
  DCG_CHECK_MSG(inserted, "duplicate _id inserted into %s",
                collection.c_str());
  entries_.push_back(std::move(entry));
}

bool TxnContext::Update(const std::string& collection, const doc::Value& id,
                        const doc::UpdateSpec& spec) {
  DCG_CHECK(!aborted_);
  store::Collection& coll = db_->GetOrCreate(collection);
  store::DocPtr pre = coll.FindById(id);
  if (pre == nullptr) return false;
  undo_.push_back({collection, id, pre});
  const bool ok = coll.Update(id, spec);
  DCG_CHECK(ok);

  OplogEntry entry;
  entry.kind = OpKind::kUpdate;
  entry.collection = collection;
  entry.id = id;
  entry.payload = spec.ToValue();
  entry.approx_bytes = coll.FindById(id)->ApproxSize();
  entries_.push_back(std::move(entry));
  return true;
}

bool TxnContext::Remove(const std::string& collection, const doc::Value& id) {
  DCG_CHECK(!aborted_);
  store::Collection& coll = db_->GetOrCreate(collection);
  store::DocPtr pre = coll.FindById(id);
  if (pre == nullptr) return false;
  undo_.push_back({collection, id, pre});
  coll.Remove(id);

  OplogEntry entry;
  entry.kind = OpKind::kRemove;
  entry.collection = collection;
  entry.id = id;
  entry.approx_bytes = 32 + id.ApproxSize();
  entries_.push_back(std::move(entry));
  return true;
}

void TxnContext::Abort() {
  DCG_CHECK(!aborted_);
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    store::Collection& coll = db_->GetOrCreate(it->collection);
    if (it->pre_image == nullptr) {
      coll.Remove(it->id);
    } else {
      coll.Upsert(*it->pre_image);
    }
  }
  undo_.clear();
  entries_.clear();
  aborted_ = true;
}

}  // namespace dcg::repl
