#include "repl/replica_set.h"


#include <algorithm>
#include <string>
#include <utility>

#include "util/check.h"

namespace dcg::repl {

ReplicaSet::ReplicaSet(sim::EventLoop* loop, sim::Rng rng,
                       net::Network* network, ReplicaSetParams params,
                       server::ServerParams node_params,
                       std::vector<net::HostId> hosts)
    : loop_(loop),
      rng_(std::move(rng)),
      network_(network),
      params_(params),
      oplog_(params.oplog_capacity),
      bus_(network) {
  DCG_CHECK(params_.secondaries >= 1);
  DCG_CHECK(static_cast<int>(hosts.size()) == params_.secondaries + 1);
  for (int i = 0; i <= params_.secondaries; ++i) {
    const std::string name =
        i == 0 ? "primary" : "secondary-" + std::to_string(i);
    nodes_.push_back(std::make_unique<ReplicaNode>(loop_, rng_.Fork(),
                                                   node_params, hosts[i],
                                                   name));
  }
  // Each node fronts its replication state with a wire-protocol command
  // service; registration order defines the driver-visible node indexing.
  for (int i = 0; i <= params_.secondaries; ++i) {
    services_.push_back(std::make_unique<server::CommandService>(
        loop_, network_, this, i, hosts[i]));
    server::CommandService* service = services_.back().get();
    bus_.RegisterService(hosts[i], [service](proto::Command command) {
      service->Handle(std::move(command));
    });
    bus_.RegisterEnvelopeService(hosts[i],
                                 [service](proto::Envelope envelope) {
                                   service->HandleEnvelope(
                                       std::move(envelope));
                                 });
  }
  known_last_applied_.resize(nodes_.size());
  alive_.assign(nodes_.size(), true);
  pulling_.assign(nodes_.size(), false);
  heartbeating_.assign(nodes_.size(), false);
  pull_epoch_.assign(nodes_.size(), 0);
  pull_deadline_.assign(nodes_.size(), 0);
  apply_throttle_.assign(nodes_.size(), 1.0);
  report_skew_.assign(nodes_.size(), 0);
  election_timer_epoch_.assign(nodes_.size(), 0);
  election_timer_armed_.assign(nodes_.size(), false);
  takeover_epoch_.assign(nodes_.size(), 0);
  needs_resync_.assign(nodes_.size(), false);
  // The seed topology is writable from t=0: node 0 leads term 1.
  RecordWritable(term_, primary_index_);
  if (params_.raft_elections) {
    // Coordinator RNG streams fork only in raft mode, *after* the
    // per-node forks above — the disabled path's draw sequence (and
    // hence every pre-election determinism golden) is untouched.
    TopologyConfig tc;
    tc.node_count = node_count();
    tc.election_timeout = params_.election_timeout;
    tc.timeout_jitter_fraction = params_.election_jitter_fraction;
    tc.heartbeat_interval = params_.heartbeat_interval;
    tc.priority_takeover_delay = params_.priority_takeover_delay;
    tc.priority_takeover_gap = params_.priority_takeover_gap;
    tc.priorities = params_.node_priorities;
    for (int i = 0; i < node_count(); ++i) {
      coords_.push_back(std::make_unique<TopologyCoordinator>(
          i, tc, rng_.Fork(), /*initial_leader=*/primary_index_,
          loop_->Now()));
    }
  }
  for (int i = 0; i < node_count(); ++i) SyncNodeView(i);
}

void ReplicaSet::SyncNodeView(int idx) {
  if (params_.raft_elections) {
    node(idx).set_role_view(coords_[idx]->role(), coords_[idx]->term());
    return;
  }
  node(idx).set_role_view(idx == primary_index_ ? MemberRole::kPrimary
                                                : MemberRole::kSecondary,
                          term_);
}

void ReplicaSet::RecordWritable(uint64_t term, int node) {
  std::vector<int>& writers = writable_by_term_[term];
  if (std::find(writers.begin(), writers.end(), node) == writers.end()) {
    writers.push_back(node);
  }
}

void ReplicaSet::RecordCommit(uint64_t term, int node) {
  std::vector<int>& writers = commits_by_term_[term];
  if (std::find(writers.begin(), writers.end(), node) == writers.end()) {
    writers.push_back(node);
  }
}

uint64_t ReplicaSet::stepdowns() const {
  uint64_t total = 0;
  for (const auto& coord : coords_) total += coord->stepdowns();
  return total;
}

void ReplicaSet::SetApplyThrottle(int idx, double factor) {
  DCG_CHECK(idx >= 0 && idx < node_count());
  DCG_CHECK(factor > 0.0);
  apply_throttle_[idx] = factor;
}

void ReplicaSet::SetReportSkew(int idx, sim::Duration skew) {
  DCG_CHECK(idx >= 0 && idx < node_count());
  report_skew_[idx] = skew;
}

void ReplicaSet::ArmPullDeadline(int idx, sim::Duration extra) {
  pull_deadline_[idx] = loop_->Now() + extra + params_.pull_retry_timeout;
}

void ReplicaSet::RetirePull(int idx) {
  ++pull_epoch_[idx];
  pulling_[idx] = false;
}

void ReplicaSet::Start() {
  for (auto& node : nodes_) node->server().Start();
  for (int i = 0; i < node_count(); ++i) {
    if (IsActiveSecondary(i)) StartSecondaryLoops(i);
  }
  if (params_.raft_elections) {
    for (int i = 0; i < node_count(); ++i) {
      if (!alive_[i]) continue;
      if (!heartbeating_[i]) {
        heartbeating_[i] = true;
        RaftHeartbeatLoop(i);
      }
      ArmElectionTimer(i);
    }
  }
}

void ReplicaSet::StartSecondaryLoops(int idx) {
  if (!pulling_[idx]) {
    pulling_[idx] = true;
    ArmPullDeadline(idx);
    SendGetMore(idx, pull_epoch_[idx]);
  }
  // Raft mode runs one all-member heartbeat loop instead (started in
  // Start()/RestartNode); it carries the progress reports and the pull
  // watchdog this legacy loop provides.
  if (!params_.raft_elections && !heartbeating_[idx]) {
    heartbeating_[idx] = true;
    HeartbeatLoop(idx);
  }
}

void ReplicaSet::KillNode(int idx) {
  DCG_CHECK(idx >= 0 && idx < node_count());
  if (!alive_[idx]) return;
  alive_[idx] = false;
  RetirePull(idx);
  if (params_.raft_elections) {
    // Retire the member's election-check and takeover chains; survivors'
    // own randomized timeouts notice the silence and campaign.
    ++election_timer_epoch_[idx];
    election_timer_armed_[idx] = false;
    ++takeover_epoch_[idx];
    if (idx == primary_index_) FailMajorityWaiters();
    return;
  }
  if (idx == primary_index_) {
    // Acknowledgements in flight are lost with the primary; their outcome
    // is uncertain to the client.
    FailMajorityWaiters();
    loop_->ScheduleAfter(params_.election_timeout, [this] { ElectPrimary(); });
  }
}

void ReplicaSet::ElectPrimary() {
  if (alive_[primary_index_]) return;  // stale timer: already resolved
  int winner = -1;
  for (int i = 0; i < node_count(); ++i) {
    if (!alive_[i]) continue;
    if (winner < 0 ||
        node(winner).last_applied() < node(i).last_applied()) {
      winner = i;
    }
  }
  DCG_CHECK_MSG(winner >= 0, "no surviving member to elect");
  // Writes the dead primary acknowledged at w:1 but never shipped are
  // rolled back: the replicated history ends at the winner's optime.
  const uint64_t survived_seq = node(winner).last_applied().seq;
  oplog_.TruncateAfter(survived_seq);
  next_seq_ = survived_seq + 1;
  // The retryable-write transaction table is replicated with the data it
  // describes: records for writes rolled back here vanish with them, so a
  // client retry re-executes the write instead of trusting a stale ack.
  for (auto it = retry_records_.begin(); it != retry_records_.end();) {
    if (it->second.committed && it->second.operation_time.seq > survived_seq) {
      it = retry_records_.erase(it);
    } else {
      ++it;
    }
  }
  // The winner stops pulling; any continuation of its secondary-era chain
  // still in flight must not run once it is primary.
  RetirePull(winner);
  primary_index_ = winner;
  ++term_;
  ++elections_;
  RecordWritable(term_, winner);
  for (int i = 0; i < node_count(); ++i) {
    if (IsActiveSecondary(i)) StartSecondaryLoops(i);
    SyncNodeView(i);
  }
}

void ReplicaSet::RestartNode(int idx) {
  DCG_CHECK(idx >= 0 && idx < node_count());
  DCG_CHECK_MSG(!alive_[idx], "node is already running");
  DCG_CHECK_MSG(alive_[primary_index_], "no primary to initial-sync from");
  // Initial sync: clone the current primary's data wholesale, then join
  // the oplog stream from the primary's current position.
  node(idx).db().ResetFrom(primary().db());
  node(idx).ResetForResync(primary().last_applied());
  known_last_applied_[idx] = primary().last_applied();
  alive_[idx] = true;
  needs_resync_[idx] = false;  // the clone is consistent by construction
  if (params_.raft_elections) {
    coords_[idx]->Rejoin(loop_->Now());
    SyncNodeView(idx);
    if (!heartbeating_[idx]) {
      heartbeating_[idx] = true;
      RaftHeartbeatLoop(idx);
    }
    ArmElectionTimer(idx);
  }
  StartSecondaryLoops(idx);
}

void ReplicaSet::Read(int idx, server::OpClass c, ReadBody body) {
  DCG_CHECK(idx >= 0 && idx < node_count());
  ReplicaNode& n = node(idx);
  n.server().Execute(c, [&n, body = std::move(body)] { body(n.db()); });
}

void ReplicaSet::ReadAfter(int idx, const OpTime& after, server::OpClass c,
                           ReadBody body) {
  DCG_CHECK(idx >= 0 && idx < node_count());
  if (node(idx).last_applied().seq >= after.seq) {
    Read(idx, c, std::move(body));
    return;
  }
  // The node has not yet applied the required optime: re-check shortly
  // (models the server parking the operation until the timestamp is
  // reached).
  loop_->ScheduleAfter(
      sim::Millis(5), [this, idx, after, c, body = std::move(body)]() mutable {
        ReadAfter(idx, after, c, std::move(body));
      });
}

void ReplicaSet::WriteTransaction(server::OpClass c, TxnBody body,
                                  std::function<void(bool)> done,
                                  WriteConcern concern) {
  CommitInternal(primary_index_, c, std::move(body), /*op_id=*/0,
                 /*cost_scale=*/1.0,
                 [done = std::move(done)](const server::WriteOutcome& outcome) {
                   if (done) done(outcome.ok && outcome.committed);
                 },
                 concern);
}

void ReplicaSet::CommitInternal(
    int node_idx, server::OpClass op_class, TxnBody body, uint64_t op_id,
    double cost_scale,
    std::function<void(const server::WriteOutcome&)> done,
    WriteConcern concern) {
  double throttle = 1.0;
  if (params_.flow_control_enabled &&
      KnownMaxLag() > params_.flow_control_target_lag) {
    throttle = params_.flow_control_throttle;
    ++flow_control_engaged_writes_;
  }
  // Envelope amortisation composes with flow control: the throttle
  // stretches whatever the (possibly discounted) service sample is.
  throttle *= cost_scale;
  // The write queues on the CPU of the member it arrived at (the one
  // that believed itself primary); at the commit instant that member
  // must still lead the data plane — same term, same primary index — or
  // nothing is applied. A deposed primary that still accepts a write
  // therefore executes it and fails it, never committing into a history
  // it no longer owns: at most one member commits per term.
  const int expected_primary = node_idx;
  const uint64_t expected_term = term_;
  nodes_[node_idx]->server().ExecuteScaled(
      op_class, throttle,
      [this, body = std::move(body), done = std::move(done), concern, op_id,
       expected_primary, expected_term] {
        // The node lost the primary role (or crashed) while the operation
        // was queued: the write never commits (and is safe to retry).
        if (!alive_[expected_primary] || term_ != expected_term ||
            primary_index_ != expected_primary) {
          if (done) done(server::WriteOutcome{});
          return;
        }
        ReplicaNode& leader = *nodes_[expected_primary];
        TxnContext ctx(&leader.db());
        body(&ctx);
        if (ctx.aborted()) {
          server::WriteOutcome outcome;
          outcome.ok = true;
          outcome.committed = false;
          outcome.operation_time = leader.last_applied();
          // Aborts are deterministic outcomes of the body; record them so
          // a retry is acknowledged identically instead of re-running.
          if (op_id != 0) {
            retry_records_[op_id] = {false, outcome.operation_time};
          }
          if (done) done(outcome);
          return;
        }
        uint64_t commit_seq = leader.last_applied().seq;
        for (OplogEntry& entry : ctx.entries()) {
          entry.optime = OpTime{loop_->Now(), next_seq_++};
          commit_seq = entry.optime.seq;
          leader.server().AddDirtyBytes(entry.ApproxBytes());
          leader.AdvanceLastApplied(entry.optime);
          oplog_.Append(std::move(entry));
        }
        ++committed_writes_;
        RecordCommit(expected_term, expected_primary);
        server::WriteOutcome outcome;
        outcome.ok = true;
        outcome.committed = true;
        outcome.operation_time = leader.last_applied();
        // The transaction record is written at the commit instant — not at
        // ack time — so a retry after a lost w:majority ack replies from
        // the record iff the commit itself survived (election purge).
        if (op_id != 0) {
          retry_records_[op_id] = {true, outcome.operation_time};
        }
        if (concern == WriteConcern::kMajority && done) {
          // Acknowledge once a majority of nodes are known to have
          // applied the commit point. The wait from the commit instant to
          // the ack is the write's replication slice — recorded as a
          // commit_wait span when the op is traced.
          const sim::Time commit_at = loop_->Now();
          const bool traced =
              tracer_ != nullptr && tracer_->enabled() && op_id != 0;
          majority_waiters_.push_back(
              {commit_seq,
               [this, done = std::move(done), outcome, commit_at, traced,
                op_id](bool ok) {
                 if (traced) {
                   obs::SpanRecord span;
                   span.trace_id = op_id;
                   span.span_id = tracer_->NewSpanId();
                   span.kind = obs::SpanKind::kCommitWait;
                   span.start = commit_at;
                   span.end = loop_->Now();
                   span.node = primary_index_;
                   span.ok = ok;
                   tracer_->Record(span);
                 }
                 if (ok) {
                   ++majority_writes_acked_;
                   done(outcome);
                 } else {
                   // Primary crashed before the ack: uncertain outcome,
                   // surfaced like an infrastructure failure.
                   done(server::WriteOutcome{});
                 }
               }});
          CheckMajorityWaiters();
          return;
        }
        if (done) done(outcome);
      });
}

void ReplicaSet::CommitWrite(
    int node, server::OpClass op_class, proto::TxnBody body,
    WriteConcern concern, uint64_t op_id, double cost_scale,
    std::function<void(const server::WriteOutcome&)> done) {
  if (op_id != 0) {
    if (auto it = retry_records_.find(op_id); it != retry_records_.end()) {
      // Retryable write replay: acknowledge from the transaction record
      // without executing the body a second time.
      server::WriteOutcome outcome;
      outcome.ok = true;
      outcome.committed = it->second.committed;
      outcome.operation_time = it->second.operation_time;
      done(outcome);
      return;
    }
    if (auto it = retry_waiters_.find(op_id); it != retry_waiters_.end()) {
      // The first attempt is still in the CPU queue (a retry raced a slow
      // — not lost — original): attach to its outcome.
      it->second.push_back(std::move(done));
      return;
    }
    retry_waiters_[op_id];  // mark in progress
    CommitInternal(
        node, op_class, std::move(body), op_id, cost_scale,
        [this, op_id,
         done = std::move(done)](const server::WriteOutcome& outcome) {
          std::vector<std::function<void(const server::WriteOutcome&)>>
              waiters = std::move(retry_waiters_[op_id]);
          retry_waiters_.erase(op_id);
          done(outcome);
          for (auto& waiter : waiters) waiter(outcome);
        },
        concern);
    return;
  }
  CommitInternal(node, op_class, std::move(body), /*op_id=*/0, cost_scale,
                 std::move(done), concern);
}

proto::ServerStatusReply ReplicaSet::ServerStatusSnapshot() {
  ServerStatusReply reply;
  reply.primary_last_applied = primary().last_applied();
  for (int i = 0; i < node_count(); ++i) {
    if (i == primary_index_ || !alive_[i]) continue;
    reply.secondary_last_applied.push_back(known_last_applied_[i]);
    reply.secondary_nodes.push_back(i);
  }
  reply.generated_at = loop_->Now();
  return reply;
}

void ReplicaSet::ServerStatus(
    std::function<void(const ServerStatusReply&)> done) {
  primary().server().Execute(server::OpClass::kServerStatus,
                             [this, done = std::move(done)] {
                               done(ServerStatusSnapshot());
                             });
}

int64_t ReplicaSet::MaxStalenessSeconds(const ServerStatusReply& reply) {
  return proto::MaxStalenessSeconds(reply);
}

sim::Duration ReplicaSet::TrueStaleness(int secondary_idx) const {
  DCG_CHECK(secondary_idx >= 0 && secondary_idx < node_count());
  DCG_CHECK(secondary_idx != primary_index_);
  const OpTime& p = primary().last_applied();
  const OpTime& s = node(secondary_idx).last_applied();
  if (s.seq >= p.seq) return 0;
  return p.wall - s.wall;
}

sim::Duration ReplicaSet::MaxTrueStaleness() const {
  sim::Duration max_lag = 0;
  for (int i = 0; i < node_count(); ++i) {
    if (i == primary_index_ || !alive_[i]) continue;
    max_lag = std::max(max_lag, TrueStaleness(i));
  }
  return max_lag;
}

sim::Duration ReplicaSet::KnownMaxLag() const {
  const OpTime& p = primary().last_applied();
  sim::Duration max_lag = 0;
  for (int i = 0; i < node_count(); ++i) {
    if (i == primary_index_ || !alive_[i]) continue;
    const OpTime& sec = known_last_applied_[i];
    if (sec.seq >= p.seq) continue;
    max_lag = std::max(max_lag, p.wall - sec.wall);
  }
  return max_lag;
}

int ReplicaSet::KnownReplicationCount(uint64_t seq) const {
  int count = primary().last_applied().seq >= seq ? 1 : 0;
  for (int i = 0; i < node_count(); ++i) {
    if (i == primary_index_ || !alive_[i]) continue;
    if (known_last_applied_[i].seq >= seq) ++count;
  }
  return count;
}

namespace {
// Extra pull-deadline slack while a getMore sits in the primary's CPU
// queue: a congested primary legitimately delays the batch for many
// seconds (the paper's Figure 9 mechanism), which must not look like a
// lost message to the watchdog.
constexpr sim::Duration kPullQueueGrace = sim::Seconds(30);
}  // namespace

void ReplicaSet::SendGetMore(int secondary_idx, uint64_t epoch) {
  if (epoch != pull_epoch_[secondary_idx]) return;  // superseded chain
  if (!IsActiveSecondary(secondary_idx)) {
    pulling_[secondary_idx] = false;  // loop retires
    return;
  }
  if (needs_resync_[secondary_idx]) {
    // An election rolled back entries this member already applied; it
    // must re-clone before it can pull again (rollback via refetch).
    ResyncStep(secondary_idx, epoch);
    return;
  }
  ArmPullDeadline(secondary_idx);  // covers the request's network hop
  network_->Send(node(secondary_idx).host(), primary().host(),
                 [this, secondary_idx, epoch] {
                   HandleGetMoreAtPrimary(secondary_idx, epoch);
                 });
}

void ReplicaSet::HandleGetMoreAtPrimary(int secondary_idx, uint64_t epoch) {
  if (epoch != pull_epoch_[secondary_idx]) return;
  if (!IsActiveSecondary(secondary_idx)) {
    pulling_[secondary_idx] = false;
    return;
  }
  if (!alive_[primary_index_]) {
    // No primary to pull from: retry after the idle interval; the
    // election will install a new sync source.
    ArmPullDeadline(secondary_idx, params_.getmore_idle_poll);
    loop_->ScheduleAfter(params_.getmore_idle_poll,
                         [this, secondary_idx, epoch] {
                           SendGetMore(secondary_idx, epoch);
                         });
    return;
  }
  server::ServerNode& p = primary().server();
  // §4.5: a long checkpoint flush saturates the disk and the primary stops
  // answering oplog getMores until it completes; secondaries then catch up
  // in one large batch.
  if (p.checkpointing()) {
    if (p.checkpoint_duration() > params_.getmore_block_threshold) {
      ++getmore_stalls_;
      ArmPullDeadline(secondary_idx, p.checkpoint_end() - loop_->Now());
      loop_->ScheduleAt(p.checkpoint_end() + sim::Millis(1),
                        [this, secondary_idx, epoch] {
                          HandleGetMoreAtPrimary(secondary_idx, epoch);
                        });
      return;
    }
    if (params_.getmore_soft_delay > 0) {
      // Short checkpoint: the flush is competing for the disk, so oplog
      // reads are slow but not stopped. Defer once, then serve.
      const sim::Duration defer = std::min(
          params_.getmore_soft_delay, p.checkpoint_end() - loop_->Now());
      ArmPullDeadline(secondary_idx, defer);
      loop_->ScheduleAfter(defer, [this, secondary_idx, epoch] {
        ServeGetMore(secondary_idx, epoch);
      });
      return;
    }
  }
  ServeGetMore(secondary_idx, epoch);
}

void ReplicaSet::ServeGetMore(int secondary_idx, uint64_t epoch) {
  if (epoch != pull_epoch_[secondary_idx]) return;
  if (!IsActiveSecondary(secondary_idx)) {
    pulling_[secondary_idx] = false;
    return;
  }
  if (!alive_[primary_index_]) {
    ArmPullDeadline(secondary_idx, params_.getmore_idle_poll);
    loop_->ScheduleAfter(params_.getmore_idle_poll,
                         [this, secondary_idx, epoch] {
                           SendGetMore(secondary_idx, epoch);
                         });
    return;
  }
  ArmPullDeadline(secondary_idx, kPullQueueGrace);
  primary().server().Execute(
      server::OpClass::kGetMore, [this, secondary_idx, epoch] {
        if (epoch != pull_epoch_[secondary_idx]) return;
        std::vector<OplogEntry> batch =
            oplog_.ReadAfter(node(secondary_idx).last_applied().seq,
                             params_.getmore_max_batch);
        // The request survived; only the reply hop remains at risk.
        ArmPullDeadline(secondary_idx);
        network_->Send(
            primary().host(), node(secondary_idx).host(),
            [this, secondary_idx, epoch, batch = std::move(batch)]() mutable {
              HandleBatchAtSecondary(secondary_idx, std::move(batch), epoch);
            });
      });
}

void ReplicaSet::HandleBatchAtSecondary(int secondary_idx,
                                        std::vector<OplogEntry> batch,
                                        uint64_t epoch) {
  if (epoch != pull_epoch_[secondary_idx]) return;
  if (!IsActiveSecondary(secondary_idx)) {
    pulling_[secondary_idx] = false;
    return;
  }
  if (batch.empty()) {
    ArmPullDeadline(secondary_idx, params_.getmore_idle_poll);
    loop_->ScheduleAfter(params_.getmore_idle_poll,
                         [this, secondary_idx, epoch] {
                           SendGetMore(secondary_idx, epoch);
                         });
    return;
  }
  ReplicaNode& sec = node(secondary_idx);
  // Application cost scales with batch size; one lognormal factor models
  // run-to-run variance without sampling per entry. The apply-throttle
  // fault stretches it further. With batched_oplog_apply the batch is
  // charged like a server envelope — one base cost plus a discounted
  // per-entry increment — which tightens replication lag under write
  // pressure; the same SampleService draw keeps both paths' RNG streams
  // identical (the flag only changes arithmetic, not draw order).
  const sim::Duration per_entry =
      sec.server().SampleService(server::OpClass::kOplogApply);
  const server::ServiceModel& model = sec.server().params().service;
  const double entry_fraction =
      params_.batched_oplog_apply ? model.envelope_op_fraction : 1.0;
  const sim::Duration batch_base =
      params_.batched_oplog_apply ? model.envelope_base : 0;
  const auto cost = static_cast<sim::Duration>(
      static_cast<double>(batch_base) +
      static_cast<double>(per_entry) * entry_fraction *
          static_cast<double>(batch.size()) *
          apply_throttle_[secondary_idx]);
  ArmPullDeadline(secondary_idx, cost + kPullQueueGrace);
  sec.server().ExecuteWithCost(
      cost, [this, secondary_idx, epoch, batch = std::move(batch)] {
        if (epoch != pull_epoch_[secondary_idx]) return;
        if (!IsActiveSecondary(secondary_idx)) {
          pulling_[secondary_idx] = false;
          return;
        }
        ReplicaNode& s = node(secondary_idx);
        for (const OplogEntry& entry : batch) s.ApplyEntry(entry);
        // More data may already be waiting: pull again immediately.
        SendGetMore(secondary_idx, epoch);
      });
}

void ReplicaSet::CheckMajorityWaiters() {
  const int majority = node_count() / 2 + 1;
  for (size_t i = 0; i < majority_waiters_.size();) {
    if (KnownReplicationCount(majority_waiters_[i].seq) >= majority) {
      std::function<void(bool)> ack = std::move(majority_waiters_[i].ack);
      majority_waiters_.erase(majority_waiters_.begin() +
                              static_cast<ptrdiff_t>(i));
      ack(true);
    } else {
      ++i;
    }
  }
}

void ReplicaSet::FailMajorityWaiters() {
  std::vector<MajorityWaiter> failed = std::move(majority_waiters_);
  majority_waiters_.clear();
  for (MajorityWaiter& waiter : failed) waiter.ack(false);
}

void ReplicaSet::HeartbeatLoop(int secondary_idx) {
  if (!IsActiveSecondary(secondary_idx)) {
    heartbeating_[secondary_idx] = false;  // loop retires
    return;
  }
  // The heartbeat doubles as the pull watchdog: a chain whose deadline
  // has passed lost a message on the network — restart it under a new
  // epoch so stragglers of the old chain retire harmlessly.
  if (pulling_[secondary_idx] &&
      loop_->Now() > pull_deadline_[secondary_idx]) {
    ++pull_restarts_;
    ++pull_epoch_[secondary_idx];
    SendGetMore(secondary_idx, pull_epoch_[secondary_idx]);
  }
  OpTime progress = node(secondary_idx).last_applied();
  if (const sim::Duration skew = report_skew_[secondary_idx]; skew != 0) {
    // A skewed clock distorts the wall component of the *report* only;
    // sequence numbers (and hence replication correctness) are immune.
    progress.wall = std::max<sim::Time>(0, progress.wall + skew);
  }
  network_->Send(node(secondary_idx).host(), primary().host(),
                 [this, secondary_idx, progress] {
                   OpTime& known = known_last_applied_[secondary_idx];
                   if (known < progress) known = progress;
                   CheckMajorityWaiters();
                 });
  loop_->ScheduleAfter(params_.heartbeat_interval, [this, secondary_idx] {
    HeartbeatLoop(secondary_idx);
  });
}

// --- raft-election machinery -------------------------------------------

void ReplicaSet::ResyncStep(int idx, uint64_t epoch) {
  if (epoch != pull_epoch_[idx]) return;
  if (!IsActiveSecondary(idx)) {
    pulling_[idx] = false;
    return;
  }
  if (!alive_[primary_index_]) {
    // Nothing consistent to clone from yet; poll until an election
    // installs a live leader.
    ArmPullDeadline(idx, params_.getmore_idle_poll);
    loop_->ScheduleAfter(params_.getmore_idle_poll, [this, idx, epoch] {
      SendGetMore(idx, epoch);
    });
    return;
  }
  ArmPullDeadline(idx);
  network_->Send(node(idx).host(), primary().host(), [this, idx, epoch] {
    if (epoch != pull_epoch_[idx] || !IsActiveSecondary(idx)) return;
    if (!alive_[primary_index_]) {
      ArmPullDeadline(idx, params_.getmore_idle_poll);
      loop_->ScheduleAfter(params_.getmore_idle_poll, [this, idx, epoch] {
        SendGetMore(idx, epoch);
      });
      return;
    }
    ArmPullDeadline(idx);
    network_->Send(primary().host(), node(idx).host(), [this, idx, epoch] {
      if (epoch != pull_epoch_[idx] || !IsActiveSecondary(idx)) return;
      if (!needs_resync_[idx]) {
        SendGetMore(idx, epoch);
        return;
      }
      // Rollback via refetch: drop the diverged history, clone the
      // current primary wholesale, rejoin the stream from its position.
      node(idx).db().ResetFrom(primary().db());
      node(idx).ResetForResync(primary().last_applied());
      known_last_applied_[idx] = primary().last_applied();
      needs_resync_[idx] = false;
      ++rollback_resyncs_;
      ArmPullDeadline(idx);
      SendGetMore(idx, epoch);
    });
  });
}

void ReplicaSet::ArmElectionTimer(int idx) {
  if (election_timer_armed_[idx]) return;
  election_timer_armed_[idx] = true;
  ScheduleElectionCheck(idx, ++election_timer_epoch_[idx]);
}

void ReplicaSet::ScheduleElectionCheck(int idx, uint64_t epoch) {
  // One chain per live member: fire at the coordinator's deadline (the
  // deadline usually moves forward before the event fires — leader
  // contact re-arms it — in which case the firing is a cheap no-op that
  // reschedules at the new deadline).
  const sim::Time at =
      std::max(coords_[idx]->election_deadline(), loop_->Now() + 1);
  loop_->ScheduleAt(at, [this, idx, epoch] {
    if (epoch != election_timer_epoch_[idx]) return;
    if (!alive_[idx]) {
      election_timer_armed_[idx] = false;
      return;
    }
    if (loop_->Now() >= coords_[idx]->election_deadline()) {
      ApplyAction(idx, coords_[idx]->OnElectionTimeout(loop_->Now()));
    }
    ScheduleElectionCheck(idx, epoch);
  });
}

void ReplicaSet::ApplyAction(int idx, const TopologyAction& action) {
  SyncNodeView(idx);
  if (action.stepped_down) {
    // A member that stopped believing itself primary resumes consuming
    // the stream if it is, in data-plane terms, an active secondary
    // whose pull was parked (e.g. a deposed catch-up winner).
    if (IsActiveSecondary(idx) && !pulling_[idx]) StartSecondaryLoops(idx);
  }
  if (action.start_dry_run || action.start_election) {
    BroadcastVoteRequests(idx);
  }
  if (action.won_election) BeginStepUp(idx);
  if (action.takeover_at >= 0) ScheduleTakeoverCheck(idx, action.takeover_at);
}

void ReplicaSet::BroadcastVoteRequests(int idx) {
  const VoteRequest req =
      coords_[idx]->CampaignRequest(node(idx).last_applied());
  for (int j = 0; j < node_count(); ++j) {
    if (j == idx) continue;
    network_->Send(node(idx).host(), node(j).host(), [this, j, req] {
      if (!alive_[j]) return;  // dead voters are silent
      const MemberRole role_before = coords_[j]->role();
      const VoteResponse resp =
          coords_[j]->OnVoteRequest(req, node(j).last_applied(), loop_->Now());
      SyncNodeView(j);
      // A real vote carrying a higher term can depose the voter itself
      // (a leader granting a takeover vote steps down right here).
      if (role_before == MemberRole::kPrimary &&
          coords_[j]->role() != role_before && IsActiveSecondary(j) &&
          !pulling_[j]) {
        StartSecondaryLoops(j);
      }
      network_->Send(node(j).host(), node(req.candidate).host(),
                     [this, resp] {
                       const int cand = resp.candidate;
                       if (cand < 0 || !alive_[cand]) return;
                       ApplyAction(
                           cand, coords_[cand]->OnVoteResponse(
                                     resp, loop_->Now()));
                     });
    });
  }
}

void ReplicaSet::ScheduleTakeoverCheck(int idx, sim::Time at) {
  const uint64_t epoch = takeover_epoch_[idx];
  loop_->ScheduleAt(std::max(at, loop_->Now() + 1), [this, idx, epoch] {
    if (epoch != takeover_epoch_[idx] || !alive_[idx]) return;
    ApplyAction(idx, coords_[idx]->OnPriorityTakeoverCheck(
                         node(idx).last_applied(), loop_->Now()));
  });
}

void ReplicaSet::RaftHeartbeatLoop(int idx) {
  if (!alive_[idx]) {
    heartbeating_[idx] = false;  // loop retires; RestartNode re-arms
    return;
  }
  // Pull watchdog (same duty the legacy heartbeat loop carries): a pull
  // chain with no progress past its deadline lost a message — restart it.
  if (IsActiveSecondary(idx) && pulling_[idx] &&
      loop_->Now() > pull_deadline_[idx]) {
    ++pull_restarts_;
    ++pull_epoch_[idx];
    SendGetMore(idx, pull_epoch_[idx]);
  }
  HeartbeatView hb;
  hb.from = idx;
  hb.term = coords_[idx]->term();
  hb.leader = coords_[idx]->leader_for_hello();
  hb.last_applied = node(idx).last_applied();
  if (const sim::Duration skew = report_skew_[idx]; skew != 0) {
    // A skewed clock distorts the wall component of the *report* only.
    hb.last_applied.wall = std::max<sim::Time>(0, hb.last_applied.wall + skew);
  }
  for (int j = 0; j < node_count(); ++j) {
    if (j == idx) continue;
    network_->Send(node(idx).host(), node(j).host(),
                   [this, j, hb] { HandleRaftHeartbeat(j, hb); });
  }
  loop_->ScheduleAfter(params_.heartbeat_interval,
                       [this, idx] { RaftHeartbeatLoop(idx); });
}

void ReplicaSet::HandleRaftHeartbeat(int to, const HeartbeatView& hb) {
  if (!alive_[to]) return;
  // The data-plane leader's progress knowledge (flow control, w:majority
  // acks) rides the same heartbeats the election layer uses.
  if (to == primary_index_ && hb.from != primary_index_ &&
      IsActiveSecondary(hb.from)) {
    OpTime& known = known_last_applied_[hb.from];
    if (known < hb.last_applied) known = hb.last_applied;
    CheckMajorityWaiters();
  }
  ApplyAction(to,
              coords_[to]->OnHeartbeat(hb, node(to).last_applied(),
                                       loop_->Now()));
}

void ReplicaSet::BeginStepUp(int winner) {
  const uint64_t new_term = coords_[winner]->term();
  // A later election already moved the data plane past this win; the
  // stale winner will hear the higher term and step down on its own.
  if (new_term <= term_) return;
  // The winner stops pulling; catch-up applies the remaining entries on
  // its CPU without racing the secondary-era chain.
  RetirePull(winner);
  const uint64_t epoch = ++catchup_epoch_;
  // Catch-up target: the freshest position among members the winner
  // heard recently, bounded by what the oplog actually holds. Entries
  // beyond it (on unreachable members, or committed by the old leader
  // during catch-up) roll back when the new term opens.
  uint64_t target = node(winner).last_applied().seq;
  target = std::max(target, coords_[winner]->FreshestPeerSeq(
                                loop_->Now(), params_.election_timeout));
  target = std::min(target, oplog_.last_seq());
  CatchUpStep(winner, new_term, target,
              loop_->Now() + params_.catchup_timeout, epoch);
}

void ReplicaSet::CatchUpStep(int winner, uint64_t new_term, uint64_t target,
                             sim::Time deadline, uint64_t epoch) {
  if (epoch != catchup_epoch_) return;  // superseded by a newer win
  if (!alive_[winner] || coords_[winner]->role() != MemberRole::kPrimary ||
      coords_[winner]->term() != new_term) {
    // Deposed (or crashed) mid catch-up: the data plane never swapped,
    // so there is nothing to undo. ApplyAction restarts its pull when
    // the stepdown lands; a crash leaves it to RestartNode.
    return;
  }
  if (node(winner).last_applied().seq >= target || loop_->Now() >= deadline) {
    FinishStepUp(winner, new_term);
    return;
  }
  std::vector<OplogEntry> batch = oplog_.ReadAfter(
      node(winner).last_applied().seq, params_.getmore_max_batch);
  if (batch.empty()) {
    FinishStepUp(winner, new_term);
    return;
  }
  const sim::Duration per_entry =
      node(winner).server().SampleService(server::OpClass::kOplogApply);
  const auto cost = static_cast<sim::Duration>(
      static_cast<double>(per_entry) * static_cast<double>(batch.size()) *
      apply_throttle_[winner]);
  node(winner).server().ExecuteWithCost(
      cost, [this, winner, new_term, target, deadline, epoch,
             batch = std::move(batch)] {
        if (epoch != catchup_epoch_) return;
        if (!alive_[winner] ||
            coords_[winner]->role() != MemberRole::kPrimary ||
            coords_[winner]->term() != new_term) {
          return;
        }
        ReplicaNode& w = node(winner);
        for (const OplogEntry& entry : batch) {
          if (entry.optime.seq != w.last_applied().seq + 1) break;
          w.ApplyEntry(entry);
        }
        CatchUpStep(winner, new_term, target, deadline, epoch);
      });
}

void ReplicaSet::FinishStepUp(int winner, uint64_t new_term) {
  if (new_term <= term_) return;  // a later leader already took over
  // The old leader's outstanding w:majority acks die with its term.
  FailMajorityWaiters();
  const uint64_t survived_seq = node(winner).last_applied().seq;
  // Members whose applied history extends past the survivor point hold
  // entries this rollback removes: they must re-clone before pulling.
  for (int i = 0; i < node_count(); ++i) {
    if (i == winner) continue;
    if (node(i).last_applied().seq > survived_seq) needs_resync_[i] = true;
  }
  oplog_.TruncateAfter(survived_seq);
  next_seq_ = survived_seq + 1;
  // Purge transaction records for rolled-back writes (see ElectPrimary).
  for (auto it = retry_records_.begin(); it != retry_records_.end();) {
    if (it->second.committed && it->second.operation_time.seq > survived_seq) {
      it = retry_records_.erase(it);
    } else {
      ++it;
    }
  }
  primary_index_ = winner;
  term_ = new_term;
  ++elections_;
  coords_[winner]->CompleteStepUp(loop_->Now());
  RecordWritable(new_term, winner);
  for (int i = 0; i < node_count(); ++i) {
    if (IsActiveSecondary(i)) {
      // Retire every pre-election pull chain (including batches already
      // in flight from the old leader: applying them after the
      // truncation would silently diverge) and restart against the new
      // leader under a fresh epoch.
      RetirePull(i);
      StartSecondaryLoops(i);
    }
    SyncNodeView(i);
  }
}

}  // namespace dcg::repl
