#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dcg::metrics {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::BucketFor(double value) {
  if (value < 1.0) return 0;
  const int bucket =
      static_cast<int>(std::log(value) / std::log(kGrowth)) + 1;
  return std::min(bucket, kBuckets - 1);
}

double Histogram::BucketUpper(int bucket) {
  if (bucket == 0) return 1.0;
  return std::pow(kGrowth, bucket);
}

void Histogram::Add(double value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

double Histogram::min() const { return count_ == 0 ? 0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0 : max_; }
double Histogram::mean() const {
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  // The extrema are exact; the bucket scan below is not. At p=0 the scan
  // would stop at the first non-empty bucket's *upper* bound (for values
  // below 1.0 that is bucket 0's bound of 1.0, clamped to max_ — wrong
  // side entirely), so answer from the tracked extrema directly.
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      // Clamp the bucket bound by the observed extrema for tight tails.
      return std::clamp(BucketUpper(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

}  // namespace dcg::metrics
