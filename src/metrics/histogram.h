#ifndef DCG_METRICS_HISTOGRAM_H_
#define DCG_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace dcg::metrics {

/// Fixed-footprint log-bucketed histogram (HDR-style, ~2.5 % relative
/// bucket width). Used for latencies (nanoseconds) and staleness samples.
/// Memory is constant regardless of sample count, so experiments can
/// record tens of millions of operations.
class Histogram {
 public:
  Histogram();

  /// Records a sample (negative values are clamped to 0).
  void Add(double value);

  uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }

  /// Value at percentile `p` in [0, 100] (by bucket upper bound; exact for
  /// min/max, within bucket width otherwise). Returns 0 on empty.
  double Percentile(double p) const;

  void Merge(const Histogram& other);
  void Clear();

 private:
  static constexpr double kGrowth = 1.05;
  static constexpr int kBuckets = 704;  // covers [1, ~8.3e14]

  static int BucketFor(double value);
  static double BucketUpper(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace dcg::metrics

#endif  // DCG_METRICS_HISTOGRAM_H_
