#ifndef DCG_METRICS_OP_COUNTERS_H_
#define DCG_METRICS_OP_COUNTERS_H_

#include <cstdint>

#include "sim/time.h"

namespace dcg::metrics {

/// Per-operation outcome counters maintained by the driver's unified
/// completion path (one increment site for every read/write, however it
/// ended). Exported per period through the experiment CSVs and summarized
/// by sim_cli.
struct OpCounters {
  /// Operations that completed successfully (committed, for writes).
  uint64_t ok = 0;
  /// Operations that hit their client-side deadline before any reply.
  uint64_t timed_out = 0;
  /// Operations a shard rejected for carrying a stale chunk version
  /// (kStaleConfig) — each one costs its router a refresh + re-route.
  uint64_t stale_config = 0;
  /// Operations that needed at least one retry (counted once per op).
  uint64_t retried = 0;
  /// Total retry attempts across all operations.
  uint64_t retries_total = 0;
  /// Speculative second requests sent for hedged reads.
  uint64_t hedges_sent = 0;
  /// Hedged reads where the hedge replied before the primary attempt.
  uint64_t hedges_won = 0;
  /// Connection-pool checkouts delivered to command attempts.
  uint64_t checkouts = 0;
  /// Checkouts that sat in a pool's wait queue past waitQueueTimeoutMS
  /// (each burns one retry on the owning op).
  uint64_t checkout_timeouts = 0;
  /// Total time attempts spent waiting for pool checkouts.
  sim::Duration checkout_wait_total = 0;
  /// High-water mark of any single pool's checkout wait queue.
  uint64_t checkout_queue_peak = 0;
  /// Envelopes (coalesced command batches) the driver put on the wire.
  uint64_t envelopes_sent = 0;
  /// Command attempts that rode an envelope (sum of envelope occupancies;
  /// ops_batched / envelopes_sent = mean batch occupancy).
  uint64_t ops_batched = 0;

  OpCounters& operator+=(const OpCounters& other) {
    ok += other.ok;
    timed_out += other.timed_out;
    stale_config += other.stale_config;
    retried += other.retried;
    retries_total += other.retries_total;
    hedges_sent += other.hedges_sent;
    hedges_won += other.hedges_won;
    checkouts += other.checkouts;
    checkout_timeouts += other.checkout_timeouts;
    checkout_wait_total += other.checkout_wait_total;
    envelopes_sent += other.envelopes_sent;
    ops_batched += other.ops_batched;
    if (other.checkout_queue_peak > checkout_queue_peak) {
      checkout_queue_peak = other.checkout_queue_peak;
    }
    return *this;
  }
};

}  // namespace dcg::metrics

#endif  // DCG_METRICS_OP_COUNTERS_H_
