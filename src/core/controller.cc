#include "core/controller.h"

#include <algorithm>

namespace dcg::core {

namespace {
void SetReason(obs::BalanceReason* out, obs::BalanceReason value) {
  if (out != nullptr) *out = value;
}
}  // namespace

double StepController::NextFraction(const ControlInputs& inputs,
                                    const BalancerConfig& config,
                                    obs::BalanceReason* reason) {
  const double latest = inputs.latest_fraction;
  if (!inputs.ratio_valid) {
    // No evidence: hold.
    SetReason(reason, obs::BalanceReason::kNoEvidence);
    return latest;
  }
  if (inputs.ratio > config.high_ratio) {
    // Primary congested: shift reads toward the secondaries.
    SetReason(reason, obs::BalanceReason::kLatencyRatioUp);
    return std::min(latest + config.delta, config.high_bal);
  }
  if (inputs.ratio < config.low_ratio) {
    // Secondaries congested: shift reads back to the primary.
    SetReason(reason, obs::BalanceReason::kLatencyRatioDown);
    return std::max(latest - config.delta, config.low_bal);
  }
  if (config.downward_probe && inputs.history_flat) {
    // Stable for the whole history: probe downward to favour fresh
    // primary reads when they are free (§3.3).
    SetReason(reason, obs::BalanceReason::kDownwardProbe);
    return std::max(latest - config.delta, config.low_bal);
  }
  SetReason(reason, obs::BalanceReason::kHold);
  return latest;
}

double ProportionalController::NextFraction(const ControlInputs& inputs,
                                            const BalancerConfig& config,
                                            obs::BalanceReason* reason) {
  const double latest = inputs.latest_fraction;
  if (!inputs.ratio_valid) {
    SetReason(reason, obs::BalanceReason::kNoEvidence);
    return latest;
  }
  double step;
  if (inputs.ratio >= config.low_ratio && inputs.ratio <= config.high_ratio) {
    // Inside the dead band: drift gently toward the fresh primary.
    step = config.downward_probe ? -drift_ : 0.0;
    SetReason(reason, config.downward_probe ? obs::BalanceReason::kDownwardProbe
                                            : obs::BalanceReason::kHold);
  } else {
    step = std::clamp(gain_ * (inputs.ratio - 1.0), -max_step_, max_step_);
    SetReason(reason, step > 0.0 ? obs::BalanceReason::kLatencyRatioUp
                                 : obs::BalanceReason::kLatencyRatioDown);
  }
  return std::clamp(latest + step, config.low_bal, config.high_bal);
}

std::unique_ptr<FractionController> MakeStepController() {
  return std::make_unique<StepController>();
}

}  // namespace dcg::core
