#include "core/controller.h"

#include <algorithm>

namespace dcg::core {

double StepController::NextFraction(const ControlInputs& inputs,
                                    const BalancerConfig& config) {
  const double latest = inputs.latest_fraction;
  if (!inputs.ratio_valid) return latest;  // no evidence: hold
  if (inputs.ratio > config.high_ratio) {
    // Primary congested: shift reads toward the secondaries.
    return std::min(latest + config.delta, config.high_bal);
  }
  if (inputs.ratio < config.low_ratio) {
    // Secondaries congested: shift reads back to the primary.
    return std::max(latest - config.delta, config.low_bal);
  }
  if (config.downward_probe && inputs.history_flat) {
    // Stable for the whole history: probe downward to favour fresh
    // primary reads when they are free (§3.3).
    return std::max(latest - config.delta, config.low_bal);
  }
  return latest;
}

double ProportionalController::NextFraction(const ControlInputs& inputs,
                                            const BalancerConfig& config) {
  const double latest = inputs.latest_fraction;
  if (!inputs.ratio_valid) return latest;
  double step;
  if (inputs.ratio >= config.low_ratio && inputs.ratio <= config.high_ratio) {
    // Inside the dead band: drift gently toward the fresh primary.
    step = config.downward_probe ? -drift_ : 0.0;
  } else {
    step = std::clamp(gain_ * (inputs.ratio - 1.0), -max_step_, max_step_);
  }
  return std::clamp(latest + step, config.low_bal, config.high_bal);
}

std::unique_ptr<FractionController> MakeStepController() {
  return std::make_unique<StepController>();
}

}  // namespace dcg::core
