#include "core/controller.h"

#include <algorithm>
#include <cmath>

namespace dcg::core {

namespace {
void SetReason(obs::BalanceReason* out, obs::BalanceReason value) {
  if (out != nullptr) *out = value;
}
}  // namespace

double StepController::NextFraction(const ControlInputs& inputs,
                                    const BalancerConfig& config,
                                    obs::BalanceReason* reason) {
  const double latest = inputs.latest_fraction;
  if (!inputs.ratio_valid) {
    // No evidence: hold.
    SetReason(reason, obs::BalanceReason::kNoEvidence);
    return latest;
  }
  if (inputs.ratio > config.high_ratio) {
    // Primary congested: shift reads toward the secondaries.
    SetReason(reason, obs::BalanceReason::kLatencyRatioUp);
    return std::min(latest + config.delta, config.high_bal);
  }
  if (inputs.ratio < config.low_ratio) {
    // Secondaries congested: shift reads back to the primary.
    SetReason(reason, obs::BalanceReason::kLatencyRatioDown);
    return std::max(latest - config.delta, config.low_bal);
  }
  if (config.downward_probe && inputs.history_flat) {
    // Stable for the whole history: probe downward to favour fresh
    // primary reads when they are free (§3.3).
    SetReason(reason, obs::BalanceReason::kDownwardProbe);
    return std::max(latest - config.delta, config.low_bal);
  }
  SetReason(reason, obs::BalanceReason::kHold);
  return latest;
}

double ProportionalController::NextFraction(const ControlInputs& inputs,
                                            const BalancerConfig& config,
                                            obs::BalanceReason* reason) {
  const double latest = inputs.latest_fraction;
  if (!inputs.ratio_valid) {
    SetReason(reason, obs::BalanceReason::kNoEvidence);
    return latest;
  }
  double step;
  if (inputs.ratio >= config.low_ratio && inputs.ratio <= config.high_ratio) {
    // Inside the dead band: drift gently toward the fresh primary.
    step = config.downward_probe ? -drift_ : 0.0;
    SetReason(reason, config.downward_probe ? obs::BalanceReason::kDownwardProbe
                                            : obs::BalanceReason::kHold);
  } else {
    step = std::clamp(gain_ * (inputs.ratio - 1.0), -max_step_, max_step_);
    SetReason(reason, step > 0.0 ? obs::BalanceReason::kLatencyRatioUp
                                 : obs::BalanceReason::kLatencyRatioDown);
  }
  return std::clamp(latest + step, config.low_bal, config.high_bal);
}

double CpqController::NextFraction(const ControlInputs& inputs,
                                   const BalancerConfig& config,
                                   obs::BalanceReason* reason) {
  const double latest = inputs.latest_fraction;
  // SLA feedback needs both the latency sample and the ratio (which side
  // is faster); without either this period, hold.
  if (!inputs.ratio_valid || inputs.p50_read_latency <= 0) {
    SetReason(reason, obs::BalanceReason::kNoEvidence);
    return latest;
  }
  const double violation = static_cast<double>(inputs.p50_read_latency) /
                               static_cast<double>(sla_target_) -
                           1.0;
  if (violation > tolerance_) {
    // SLA missed: steer the Bernoulli probability toward the faster side,
    // scaled by the size of the miss (capped per period).
    const double step = std::min(max_step_, gain_ * violation);
    if (inputs.ratio >= 1.0) {
      SetReason(reason, obs::BalanceReason::kSlaShedToSecondary);
      return std::min(latest + step, config.high_bal);
    }
    SetReason(reason, obs::BalanceReason::kSlaShedToPrimary);
    return std::max(latest - step, config.low_bal);
  }
  // SLA met: spend the headroom on freshness by drifting toward the
  // primary (CPQ's consistency-maximising direction).
  SetReason(reason, obs::BalanceReason::kSlaHeadroomProbe);
  return std::max(latest - drift_, config.low_bal);
}

double AoiController::AgeCap(const ControlInputs& inputs,
                             const BalancerConfig& config,
                             double budget_share) {
  // Age budget: a share of the staleness bound (whole bound when the
  // client runs unbounded — stale_bound_s == 0 only happens when the
  // gate already forces the published fraction to zero).
  const double bound = static_cast<double>(inputs.stale_bound_s);
  if (bound <= 0) return config.high_bal;
  const double budget = budget_share * bound;
  double age_sum = 0;
  int age_count = 0;
  for (int64_t age : inputs.secondary_age_s) {
    if (age < 0) continue;  // primary / unknown
    age_sum += static_cast<double>(age);
    ++age_count;
  }
  if (age_count == 0) return config.high_bal;  // no estimates yet
  const double mean_age = age_sum / age_count;
  if (mean_age <= budget / config.high_bal) return config.high_bal;
  return std::max(budget / mean_age, config.low_bal);
}

double AoiController::NextFraction(const ControlInputs& inputs,
                                   const BalancerConfig& config,
                                   obs::BalanceReason* reason) {
  const double latest = inputs.latest_fraction;
  // Underneath the age cap the policy follows Algorithm 1's latency law,
  // so with fresh secondaries it is exactly as aggressive as the paper.
  obs::BalanceReason base_reason = obs::BalanceReason::kNone;
  double base;
  if (!inputs.ratio_valid) {
    base_reason = obs::BalanceReason::kNoEvidence;
    base = latest;
  } else if (inputs.ratio > config.high_ratio) {
    base_reason = obs::BalanceReason::kLatencyRatioUp;
    base = std::min(latest + config.delta, config.high_bal);
  } else if (inputs.ratio < config.low_ratio) {
    base_reason = obs::BalanceReason::kLatencyRatioDown;
    base = std::max(latest - config.delta, config.low_bal);
  } else if (config.downward_probe && inputs.history_flat) {
    base_reason = obs::BalanceReason::kDownwardProbe;
    base = std::max(latest - config.delta, config.low_bal);
  } else {
    base_reason = obs::BalanceReason::kHold;
    base = latest;
  }
  const double cap = AgeCap(inputs, config, budget_share_);
  if (base <= cap) {
    SetReason(reason, base_reason);
    return base;
  }
  // The age estimates bind: expected served age (fraction · mean age)
  // would overrun the budget, so the fraction descends toward the cap —
  // at most max_step_ per period to avoid thrashing on a single slow
  // serverStatus sample.
  SetReason(reason, obs::BalanceReason::kAoiCapped);
  return std::clamp(std::max(latest - max_step_, cap), config.low_bal,
                    config.high_bal);
}

double PidController::NextFraction(const ControlInputs& inputs,
                                   const BalancerConfig& config,
                                   obs::BalanceReason* reason) {
  const double latest = inputs.latest_fraction;
  if (!inputs.ratio_valid) {
    // No evidence: hold, and bleed the integral so a long gate-closed
    // stretch does not discharge as a spike when evidence returns.
    integral_ *= 0.5;
    have_last_error_ = false;
    SetReason(reason, obs::BalanceReason::kNoEvidence);
    return latest;
  }
  const double error = inputs.ratio - 1.0;
  const double derivative = have_last_error_ ? error - last_error_ : 0.0;
  const double step = std::clamp(
      kp_ * error + ki_ * integral_ + kd_ * derivative, -max_step_, max_step_);
  const double next = std::clamp(latest + step, config.low_bal,
                                 config.high_bal);
  // Anti-windup: integrate only while the output is not pinned at a bound
  // in the direction of the error.
  const bool saturated = (next >= config.high_bal && error > 0) ||
                         (next <= config.low_bal && error < 0);
  if (!saturated) {
    integral_ =
        std::clamp(integral_ + error, -integral_limit_, integral_limit_);
  }
  last_error_ = error;
  have_last_error_ = true;
  if (inputs.ratio > config.high_ratio) {
    SetReason(reason, obs::BalanceReason::kLatencyRatioUp);
  } else if (inputs.ratio < config.low_ratio) {
    SetReason(reason, obs::BalanceReason::kLatencyRatioDown);
  } else if (std::abs(next - latest) > 1e-9) {
    SetReason(reason, obs::BalanceReason::kPidAdjust);
  } else {
    SetReason(reason, obs::BalanceReason::kHold);
  }
  return next;
}

std::unique_ptr<FractionController> MakeStepController() {
  return std::make_unique<StepController>();
}

std::unique_ptr<FractionController> MakeController(std::string_view name) {
  if (IsDefaultController(name)) return std::make_unique<StepController>();
  if (name == "proportional") {
    return std::make_unique<ProportionalController>();
  }
  if (name == "cpq") return std::make_unique<CpqController>();
  if (name == "aoi") return std::make_unique<AoiController>();
  if (name == "pid") return std::make_unique<PidController>();
  return nullptr;
}

const std::vector<std::string_view>& RegisteredControllers() {
  static const std::vector<std::string_view> names = {
      "decongestant", "proportional", "cpq", "aoi", "pid"};
  return names;
}

bool IsDefaultController(std::string_view name) {
  return name == "decongestant" || name == "step";
}

}  // namespace dcg::core
