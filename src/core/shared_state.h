#ifndef DCG_CORE_SHARED_STATE_H_
#define DCG_CORE_SHARED_STATE_H_

#include <vector>

#include "driver/read_preference.h"
#include "sim/time.h"

namespace dcg::core {

/// The shared variables of Figure 1 through which the Read Balancer and
/// the client application threads communicate:
///   * the latest Balance Fraction decision, and
///   * two lists of client-observed read latencies (primary- and
///     secondary-routed), which the balancer drains at each period end.
///
/// In the paper these are shared-memory variables on the client system; in
/// the single-threaded simulation they are a plain object, but the
/// interface is kept narrow so a threaded port would only need to add
/// locking here.
class SharedState {
 public:
  explicit SharedState(double initial_fraction)
      : balance_fraction_(initial_fraction) {}

  /// The latest Balance Fraction: 0, or within [LOWBAL, HIGHBAL].
  double balance_fraction() const { return balance_fraction_; }
  void set_balance_fraction(double f) { balance_fraction_ = f; }

  /// Clients report each read's end-to-end latency under the Read
  /// Preference actually used.
  void RecordLatency(driver::ReadPreference used, sim::Duration latency);

  /// The balancer takes (and clears) a period's latencies.
  std::vector<sim::Duration> DrainPrimaryLatencies();
  std::vector<sim::Duration> DrainSecondaryLatencies();

  size_t pending_primary() const { return primary_latencies_.size(); }
  size_t pending_secondary() const { return secondary_latencies_.size(); }

 private:
  double balance_fraction_;
  std::vector<sim::Duration> primary_latencies_;
  std::vector<sim::Duration> secondary_latencies_;
};

}  // namespace dcg::core

#endif  // DCG_CORE_SHARED_STATE_H_
