#ifndef DCG_CORE_STALENESS_BUDGET_H_
#define DCG_CORE_STALENESS_BUDGET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dcg::core {

/// Shared staleness budget for a sharded cluster: one client-wide
/// StaleBound that N per-shard Read Balancers must *jointly* respect.
///
/// The paper's staleness gate (Algorithm 1, lines 3-7) is per replica
/// set: each balancer zeroes its Balance Fraction when its own shard's
/// estimate exceeds the bound. That alone keeps each shard under the
/// bound *eventually*, but while one shard is over, the client's
/// worst-served staleness is over — and the other shards, oblivious,
/// keep spending the whole budget themselves. This coordinator closes
/// ROADMAP's convergence question by tightening everyone when anyone
/// overshoots: balancer i gates against
///
///     EffectiveBound(i) = max(0, B − max(0, max_{j≠i} estimate(j) − B))
///
/// i.e. the worst *other* shard's overshoot is debited from shard i's
/// budget. While every shard is within the bound the gate is exactly the
/// paper's (EffectiveBound == B); when one shard overshoots by more than
/// B, every shard gates to zero until the laggard recovers, driving the
/// client-wide max back under the single bound. B == 0 keeps the
/// "no stale reads ever" contract: every effective bound is 0, every
/// balancer stays gated.
///
/// Plain shared state — balancers Report() on their own serverStatus
/// ticks and read EffectiveBound() when publishing; no events, no RNG,
/// so an unsharded run (no budget installed) is untouched.
class StalenessBudget {
 public:
  StalenessBudget(int64_t bound_seconds, int shards)
      : bound_s_(bound_seconds), estimates_(static_cast<size_t>(shards), 0) {
    DCG_CHECK(bound_seconds >= 0);
    DCG_CHECK(shards >= 1);
  }

  StalenessBudget(const StalenessBudget&) = delete;
  StalenessBudget& operator=(const StalenessBudget&) = delete;

  int64_t bound_seconds() const { return bound_s_; }
  int shards() const { return static_cast<int>(estimates_.size()); }

  /// Latest conservative staleness estimate for `shard`, whole seconds
  /// (what its balancer read off the primary's serverStatus).
  void Report(int shard, int64_t estimate_s) {
    estimates_[static_cast<size_t>(shard)] = std::max<int64_t>(0, estimate_s);
  }

  int64_t estimate(int shard) const {
    return estimates_[static_cast<size_t>(shard)];
  }

  /// Worst estimate across every shard — the client-wide served-staleness
  /// ceiling the single bound is supposed to cap.
  int64_t WorstEstimate() const {
    int64_t worst = 0;
    for (int64_t e : estimates_) worst = std::max(worst, e);
    return worst;
  }

  /// The bound shard `shard`'s balancer must gate against this instant.
  int64_t EffectiveBound(int shard) const {
    if (bound_s_ == 0) return 0;
    int64_t overshoot = 0;
    for (size_t j = 0; j < estimates_.size(); ++j) {
      if (j == static_cast<size_t>(shard)) continue;
      overshoot = std::max(overshoot, estimates_[j] - bound_s_);
    }
    return std::max<int64_t>(0, bound_s_ - std::max<int64_t>(0, overshoot));
  }

 private:
  const int64_t bound_s_;
  std::vector<int64_t> estimates_;
};

}  // namespace dcg::core

#endif  // DCG_CORE_STALENESS_BUDGET_H_
