#ifndef DCG_CORE_READ_BALANCER_H_
#define DCG_CORE_READ_BALANCER_H_

#include <deque>
#include <memory>
#include <functional>
#include <vector>

#include "core/balancer_config.h"
#include "core/controller.h"
#include "core/shared_state.h"
#include "core/staleness_budget.h"
#include "driver/client.h"
#include "obs/decision_log.h"
#include "sim/random.h"

namespace dcg::core {

/// The Read Balancer of Algorithm 1 — the decision-making component of
/// Decongestant. One instance runs on each client system (Figure 1).
///
/// Every second it (a) pings all replica-set nodes to maintain RTT
/// windows, and (b) calls serverStatus on the primary to refresh the
/// conservative staleness estimate, zeroing the Balance Fraction whenever
/// any secondary exceeds the client's StaleBound. Every period (10 s) it
/// drains the shared latency lists, forms the Server-Side Latency
/// estimates
///     Lss = P50(Lclient) − P50(RTT)
/// for primary- and secondary-routed reads, and steps the Balance
/// Fraction by ±DELTA according to their ratio.
///
/// Latency samples arrive through the driver's unified completion path:
/// constructing the balancer installs an op observer on its client, so
/// every successful application read — whatever workload issued it — is
/// recorded once, and control traffic (probe reads flagged
/// record_latency=false) stays out of the estimate.
class ReadBalancer {
 public:
  /// Per-period diagnostics, for experiment time series and tests.
  struct PeriodStats {
    sim::Time at = 0;
    sim::Duration lss_primary = 0;
    sim::Duration lss_secondary = 0;
    double ratio = 0.0;          // Lss,primary / Lss,secondary
    bool ratio_valid = false;    // false when a latency list was empty
    double previous_fraction = 0.0;  // RecentBal.latest() before the update
    double new_fraction = 0.0;   // RecentBal.latest() after the update
    double published_fraction = 0.0;  // what clients see (0 when stale)
    int64_t staleness_estimate_s = 0;
    /// Which controller branch produced new_fraction this period.
    obs::BalanceReason reason = obs::BalanceReason::kNone;
  };

  ReadBalancer(driver::MongoClient* client, SharedState* state,
               BalancerConfig config, sim::Rng rng);

  ReadBalancer(const ReadBalancer&) = delete;
  ReadBalancer& operator=(const ReadBalancer&) = delete;

  /// Starts the ping loop, the serverStatus loop, and the period timer.
  void Start();

  /// Latest staleness estimate (seconds), from the primary's serverStatus.
  int64_t staleness_estimate_seconds() const { return staleness_estimate_; }

  /// True while the Balance Fraction is forced to zero by staleness.
  bool stale_blocked() const { return stale_blocked_; }

  /// The most recent non-zero decision (RecentBal.latest()).
  double recent_fraction() const { return recent_bal_.back(); }

  uint64_t periods_completed() const { return periods_completed_; }
  uint64_t stale_zero_events() const { return stale_zero_events_; }

  /// Times the balancer detected a primary swap (failover) and reset its
  /// latency histories, RecentBal, and staleness inputs. Mixing samples
  /// measured against two different primaries would feed Algorithm 1 a
  /// ratio describing neither.
  uint64_t primary_swaps() const { return primary_swaps_; }

  /// Every fraction decision and staleness-gate transition, in order.
  /// Always on: a decision is a few dozen bytes once per control period,
  /// so a day-long simulated run logs a few thousand entries.
  const obs::DecisionLog& decisions() const { return decisions_; }

  const BalancerConfig& config() const { return config_; }

  /// Observer invoked at the end of every period.
  void SetPeriodCallback(std::function<void(const PeriodStats&)> cb) {
    period_cb_ = std::move(cb);
  }

  /// Median of a sample set (exposed for tests; returns 0 on empty).
  static sim::Duration Median(std::vector<sim::Duration> samples);

  /// Replaces the feedback controller (default: the paper's
  /// StepController). Call before Start().
  void SetController(std::unique_ptr<FractionController> controller) {
    controller_ = std::move(controller);
  }
  const FractionController& controller() const { return *controller_; }

  /// Joins a cluster-wide staleness budget as `slot` (sharded mode: one
  /// slot per shard). The balancer then reports its estimate on every
  /// serverStatus tick and gates against the budget's EffectiveBound
  /// instead of its own static stale_bound_seconds. Call before Start();
  /// nullptr restores the standalone gate.
  void SetStalenessBudget(StalenessBudget* budget, int slot) {
    budget_ = budget;
    budget_slot_ = slot;
  }

  /// The bound the gate compares against right now: the shared budget's
  /// effective bound when one is installed, the static config bound
  /// otherwise.
  int64_t effective_stale_bound_seconds() const {
    return budget_ != nullptr ? budget_->EffectiveBound(budget_slot_)
                              : config_.stale_bound_seconds;
  }

 private:
  void PingLoop();
  void ServerStatusLoop();
  void OnServerStatus(const proto::ServerStatusReply& reply);
  void OnPeriodEnd();
  /// Compares the driver's current primary belief against the one the
  /// balancer's histories were measured under; on a swap, resets them.
  void CheckPrimarySwap();
  void OnPrimarySwap();
  /// Publishes the Balance Fraction clients see, applying the staleness
  /// gate of Algorithm 1 (lines 3-7 / 22-27).
  void PublishFraction();
  sim::Duration MedianRttPrimary() const;
  sim::Duration MedianRttSecondaries() const;
  void RecordRtt(int node, sim::Duration rtt);
  /// Records a staleness-gate transition (zero / release) in the
  /// decision log. `reason` is kStaleGateZero or kStaleGateRelease.
  void RecordGateTransition(obs::BalanceReason reason);

  driver::MongoClient* client_;
  SharedState* state_;
  BalancerConfig config_;
  sim::Rng rng_;
  std::unique_ptr<FractionController> controller_;

  std::deque<double> recent_bal_;  // RecentBal, newest at the back
  std::vector<std::deque<sim::Duration>> rtt_samples_;  // per node
  obs::DecisionLog decisions_;
  /// Per-node staleness (whole seconds) from the latest serverStatus;
  /// -1 for the primary and for nodes the reply did not cover.
  std::vector<int64_t> secondary_staleness_s_;
  int64_t staleness_estimate_ = 0;
  bool stale_blocked_ = false;
  uint64_t periods_completed_ = 0;
  uint64_t stale_zero_events_ = 0;
  /// The (primary, term) the current histories were measured under.
  int tracked_primary_ = -1;
  uint64_t tracked_term_ = 0;
  uint64_t primary_swaps_ = 0;
  StalenessBudget* budget_ = nullptr;
  int budget_slot_ = -1;
  std::function<void(const PeriodStats&)> period_cb_;
};

}  // namespace dcg::core

#endif  // DCG_CORE_READ_BALANCER_H_
