#ifndef DCG_CORE_ROUTING_POLICY_H_
#define DCG_CORE_ROUTING_POLICY_H_

#include <string>
#include <string_view>

#include "core/shared_state.h"
#include "driver/read_preference.h"
#include "sim/random.h"
#include "sim/time.h"

namespace dcg::core {

/// How an application decides where each read-only transaction goes.
/// The paper evaluates three systems: the two hard-coded baselines
/// (state of practice) and Decongestant.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  /// Called before each read-only transaction.
  virtual driver::ReadPreference ChooseReadPreference(sim::Rng* rng) = 0;

  /// Called with the client-observed end-to-end latency afterwards.
  virtual void OnReadCompleted(driver::ReadPreference used,
                               sim::Duration latency) = 0;

  virtual std::string_view name() const = 0;
};

/// Baseline: the Read Preference is hard-coded at development time.
class FixedPolicy : public RoutingPolicy {
 public:
  explicit FixedPolicy(driver::ReadPreference pref) : pref_(pref) {}

  driver::ReadPreference ChooseReadPreference(sim::Rng*) override {
    return pref_;
  }
  void OnReadCompleted(driver::ReadPreference, sim::Duration) override {}
  std::string_view name() const override {
    return driver::ToString(pref_);
  }

 private:
  driver::ReadPreference pref_;
};

/// Decongestant's client-side protocol (§3.2): before each read-only
/// transaction, flip a coin biased by the current Balance Fraction; after
/// it, report the latency to the Read Balancer via the shared lists.
class DecongestantPolicy : public RoutingPolicy {
 public:
  explicit DecongestantPolicy(SharedState* state) : state_(state) {}

  driver::ReadPreference ChooseReadPreference(sim::Rng* rng) override {
    return rng->Bernoulli(state_->balance_fraction())
               ? driver::ReadPreference::kSecondary
               : driver::ReadPreference::kPrimary;
  }

  void OnReadCompleted(driver::ReadPreference used,
                       sim::Duration latency) override {
    state_->RecordLatency(used, latency);
  }

  std::string_view name() const override { return "decongestant"; }

 private:
  SharedState* state_;
};

}  // namespace dcg::core

#endif  // DCG_CORE_ROUTING_POLICY_H_
