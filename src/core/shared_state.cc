#include "core/shared_state.h"

#include <utility>

namespace dcg::core {

void SharedState::RecordLatency(driver::ReadPreference used,
                                sim::Duration latency) {
  if (driver::PrefersSecondary(used)) {
    secondary_latencies_.push_back(latency);
  } else {
    primary_latencies_.push_back(latency);
  }
}

std::vector<sim::Duration> SharedState::DrainPrimaryLatencies() {
  return std::exchange(primary_latencies_, {});
}

std::vector<sim::Duration> SharedState::DrainSecondaryLatencies() {
  return std::exchange(secondary_latencies_, {});
}

}  // namespace dcg::core
