#ifndef DCG_CORE_CONTROLLER_H_
#define DCG_CORE_CONTROLLER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/balancer_config.h"
#include "obs/decision_log.h"
#include "sim/time.h"

namespace dcg::core {

/// Per-period inputs to a Balance Fraction controller. The first block is
/// what Algorithm 1 consumes; the rest widens the signal surface so rival
/// policies (SLA feedback, age-of-information, PID) can be dropped in
/// without touching the Read Balancer. Every field is client-observable —
/// derived from the shared latency lists, the RTT windows, or the
/// serverStatus replies — never from simulator ground truth.
struct ControlInputs {
  /// RecentBal.latest(): the newest non-zero decision.
  double latest_fraction = 0.0;
  /// Lss,primary / Lss,secondary. Meaningless when !ratio_valid.
  double ratio = 1.0;
  /// False when either latency list was empty this period.
  bool ratio_valid = false;
  /// True when the whole RecentBal history equals latest_fraction.
  bool history_flat = false;

  /// Server-Side Latency estimates behind `ratio` (valid iff ratio_valid).
  sim::Duration lss_primary = 0;
  sim::Duration lss_secondary = 0;
  /// P50 of all client-observed read latencies this period, both routes
  /// pooled — the quantity an application-level SLA is written against.
  /// 0 when no reads completed.
  sim::Duration p50_read_latency = 0;
  /// Per-node staleness estimates from the latest serverStatus (whole
  /// seconds; -1 for the primary and nodes the reply did not cover) —
  /// the client-observable age-of-information signal.
  std::vector<int64_t> secondary_age_s;
  /// max over secondary_age_s (the balancer's staleness estimate).
  int64_t staleness_estimate_s = 0;
  /// The bound the staleness gate enforces right now (shared-budget aware).
  int64_t stale_bound_s = 0;
};

/// Strategy for turning the period's signals into the next Balance
/// Fraction. The paper's Algorithm 1 is StepController (registered as the
/// default "decongestant" policy); the rivals implement the control laws
/// the ROADMAP names — CPQ-style SLA feedback, AoI minimisation, and PID
/// on the latency ratio. The staleness gate is NOT part of any
/// controller — the Read Balancer applies it on top, whatever the
/// controller decides, so every policy inherits the paper's bound.
class FractionController {
 public:
  virtual ~FractionController() = default;

  /// Returns the next fraction, within [config.low_bal, config.high_bal].
  /// When `reason` is non-null the controller writes which of its branches
  /// fired — the Read Balancer's decision log records it so every fraction
  /// move is explainable after the fact, whichever policy produced it.
  virtual double NextFraction(const ControlInputs& inputs,
                              const BalancerConfig& config,
                              obs::BalanceReason* reason = nullptr) = 0;

  virtual std::string_view name() const = 0;
};

/// Algorithm 1's controller: ±DELTA steps outside the dead band, a
/// downward probe when the history has been flat, hold otherwise.
class StepController : public FractionController {
 public:
  double NextFraction(const ControlInputs& inputs, const BalancerConfig& config,
                      obs::BalanceReason* reason = nullptr) override;
  std::string_view name() const override { return "step"; }
};

/// A proportional controller: moves the fraction by gain · (ratio − 1),
/// clamped to at most `max_step` per period, with a small downward drift
/// when the ratio sits inside the dead band (the freshness-seeking role
/// of Algorithm 1's probe). Converges in fewer periods under large
/// imbalances and takes smaller steps near equilibrium.
class ProportionalController : public FractionController {
 public:
  explicit ProportionalController(double gain = 0.25, double max_step = 0.3,
                                  double drift = 0.02)
      : gain_(gain), max_step_(max_step), drift_(drift) {}

  double NextFraction(const ControlInputs& inputs, const BalancerConfig& config,
                      obs::BalanceReason* reason = nullptr) override;
  std::string_view name() const override { return "proportional"; }

 private:
  double gain_;
  double max_step_;
  double drift_;
};

/// Continuous-Partial-Quorums-style router (McKenzie et al.): the per-op
/// Bernoulli choice already lives in DecongestantPolicy; this controller
/// supplies its probability from SLA feedback on a read-latency target.
/// When the period's P50 read latency misses the target, the fraction
/// steps toward whichever side the Lss ratio says is faster, scaled by
/// the size of the miss; when the SLA is met with headroom, it drifts
/// toward the fresh primary.
class CpqController : public FractionController {
 public:
  explicit CpqController(sim::Duration sla_target = sim::Millis(3),
                         double gain = 0.5, double max_step = 0.3,
                         double drift = 0.05, double tolerance = 0.05)
      : sla_target_(sla_target),
        gain_(gain),
        max_step_(max_step),
        drift_(drift),
        tolerance_(tolerance) {}

  double NextFraction(const ControlInputs& inputs, const BalancerConfig& config,
                      obs::BalanceReason* reason = nullptr) override;
  std::string_view name() const override { return "cpq"; }

  sim::Duration sla_target() const { return sla_target_; }

 private:
  sim::Duration sla_target_;
  double gain_;
  double max_step_;
  double drift_;
  double tolerance_;
};

/// Age-of-information-minimising policy (after Behrouzi-Far et al., "Data
/// Freshness in Leader-Based Replicated Storage"): the expected age of a
/// served read is fraction · mean(secondary age), so the policy computes
/// the largest fraction that keeps that product under an age budget (a
/// configurable share of the staleness bound) and lets the latency signal
/// move the fraction only underneath that cap. Fresh secondaries behave
/// like Algorithm 1; lagging secondaries pull the fraction down *before*
/// the hard gate at StaleBound would zero it.
class AoiController : public FractionController {
 public:
  explicit AoiController(double budget_share = 0.5, double max_step = 0.3)
      : budget_share_(budget_share), max_step_(max_step) {}

  double NextFraction(const ControlInputs& inputs, const BalancerConfig& config,
                      obs::BalanceReason* reason = nullptr) override;
  std::string_view name() const override { return "aoi"; }

  /// The fraction cap implied by the current age estimates (exposed for
  /// tests): age_budget / mean(secondary age), clamped to
  /// [low_bal, high_bal]; high_bal when no secondary reports an age.
  static double AgeCap(const ControlInputs& inputs,
                       const BalancerConfig& config, double budget_share);

 private:
  double budget_share_;
  double max_step_;
};

/// PID controller on the primary/secondary latency ratio, setpoint 1
/// (equal server-side latencies). Stateful: the integral term removes the
/// steady-state offset the pure step/proportional laws leave inside the
/// dead band, and the derivative term damps overshoot on load steps.
/// Anti-windup: the integral freezes while the output is saturated at a
/// bound, and decays while there is no ratio evidence.
class PidController : public FractionController {
 public:
  explicit PidController(double kp = 0.3, double ki = 0.05, double kd = 0.1,
                         double max_step = 0.25, double integral_limit = 2.0)
      : kp_(kp),
        ki_(ki),
        kd_(kd),
        max_step_(max_step),
        integral_limit_(integral_limit) {}

  double NextFraction(const ControlInputs& inputs, const BalancerConfig& config,
                      obs::BalanceReason* reason = nullptr) override;
  std::string_view name() const override { return "pid"; }

  double integral() const { return integral_; }

 private:
  double kp_;
  double ki_;
  double kd_;
  double max_step_;
  double integral_limit_;
  double integral_ = 0.0;
  double last_error_ = 0.0;
  bool have_last_error_ = false;
};

/// Factory for the default (paper) controller.
std::unique_ptr<FractionController> MakeStepController();

/// Registry of controller strategies, keyed by the name users pass as
/// `--controller=<name>` / ExperimentConfig::controller. The paper's
/// Algorithm 1 registers as "decongestant" (alias "step"); rivals as
/// "proportional", "cpq", "aoi", "pid". Returns nullptr for unknown
/// names — callers own the error message.
std::unique_ptr<FractionController> MakeController(std::string_view name);

/// Canonical registered names (no aliases), in a stable order — the
/// bake-off and the conformance suite iterate this.
const std::vector<std::string_view>& RegisteredControllers();

/// True when `name` selects the same control law as the default
/// StepController ("decongestant" or its legacy alias "step"): the path
/// that must stay bit-identical to the committed determinism goldens.
bool IsDefaultController(std::string_view name);

}  // namespace dcg::core

#endif  // DCG_CORE_CONTROLLER_H_
