#ifndef DCG_CORE_CONTROLLER_H_
#define DCG_CORE_CONTROLLER_H_

#include <memory>
#include <string_view>

#include "core/balancer_config.h"
#include "obs/decision_log.h"

namespace dcg::core {

/// Per-period inputs to a Balance Fraction controller.
struct ControlInputs {
  /// RecentBal.latest(): the newest non-zero decision.
  double latest_fraction = 0.0;
  /// Lss,primary / Lss,secondary. Meaningless when !ratio_valid.
  double ratio = 1.0;
  /// False when either latency list was empty this period.
  bool ratio_valid = false;
  /// True when the whole RecentBal history equals latest_fraction.
  bool history_flat = false;
};

/// Strategy for turning the latency-ratio signal into the next Balance
/// Fraction. The paper's Algorithm 1 is StepController; the paper's
/// future-work section asks for "more sophisticated feedback control",
/// which ProportionalController sketches. The staleness gate is NOT part
/// of the controller — the Read Balancer applies it on top, whatever the
/// controller decides.
class FractionController {
 public:
  virtual ~FractionController() = default;

  /// Returns the next fraction, within [config.low_bal, config.high_bal].
  /// When `reason` is non-null the controller writes which of its branches
  /// fired — the Read Balancer's decision log records it so every fraction
  /// move is explainable after the fact.
  virtual double NextFraction(const ControlInputs& inputs,
                              const BalancerConfig& config,
                              obs::BalanceReason* reason = nullptr) = 0;

  virtual std::string_view name() const = 0;
};

/// Algorithm 1's controller: ±DELTA steps outside the dead band, a
/// downward probe when the history has been flat, hold otherwise.
class StepController : public FractionController {
 public:
  double NextFraction(const ControlInputs& inputs, const BalancerConfig& config,
                      obs::BalanceReason* reason = nullptr) override;
  std::string_view name() const override { return "step"; }
};

/// A proportional controller: moves the fraction by gain · (ratio − 1),
/// clamped to at most `max_step` per period, with a small downward drift
/// when the ratio sits inside the dead band (the freshness-seeking role
/// of Algorithm 1's probe). Converges in fewer periods under large
/// imbalances and takes smaller steps near equilibrium.
class ProportionalController : public FractionController {
 public:
  explicit ProportionalController(double gain = 0.25, double max_step = 0.3,
                                  double drift = 0.02)
      : gain_(gain), max_step_(max_step), drift_(drift) {}

  double NextFraction(const ControlInputs& inputs, const BalancerConfig& config,
                      obs::BalanceReason* reason = nullptr) override;
  std::string_view name() const override { return "proportional"; }

 private:
  double gain_;
  double max_step_;
  double drift_;
};

/// Factory for the default (paper) controller.
std::unique_ptr<FractionController> MakeStepController();

}  // namespace dcg::core

#endif  // DCG_CORE_CONTROLLER_H_
