#include "core/read_balancer.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dcg::core {

ReadBalancer::ReadBalancer(driver::MongoClient* client, SharedState* state,
                           BalancerConfig config, sim::Rng rng)
    : client_(client),
      state_(state),
      config_(config),
      rng_(std::move(rng)),
      controller_(MakeStepController()) {
  DCG_CHECK(config_.recent_history >= 1);
  DCG_CHECK(config_.low_bal > 0.0 && config_.high_bal <= 1.0);
  DCG_CHECK(config_.low_ratio < config_.high_ratio);
  // RecentBal starts as LOWBAL everywhere; the published fraction starts
  // at LOWBAL too (§3.3: initial Balance Fraction is 10 %).
  recent_bal_.assign(config_.recent_history, config_.low_bal);
  rtt_samples_.resize(client_->node_count());
  state_->set_balance_fraction(config_.stale_bound_seconds == 0
                                   ? 0.0
                                   : config_.low_bal);
  // Harvest latencies from the driver's unified completion path: one
  // record per successful application read, regardless of which workload
  // issued it. Probe/control reads opt out via record_latency.
  client_->SetOpObserver([this](const driver::MongoClient::OpStats& stats) {
    if (!stats.is_read || !stats.ok || !stats.record_latency) return;
    state_->RecordLatency(stats.requested, stats.latency);
  });
}

void ReadBalancer::Start() {
  PingLoop();
  ServerStatusLoop();
  client_->loop().ScheduleAfter(config_.period, [this] { OnPeriodEnd(); });
}

sim::Duration ReadBalancer::Median(std::vector<sim::Duration> samples) {
  if (samples.empty()) return 0;
  const size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  return samples[mid];
}

void ReadBalancer::RecordRtt(int node, sim::Duration rtt) {
  auto& window = rtt_samples_[node];
  window.push_back(rtt);
  while (window.size() > static_cast<size_t>(config_.rtt_window)) {
    window.pop_front();
  }
}

void ReadBalancer::PingLoop() {
  const int nodes = client_->node_count();
  for (int i = 0; i < nodes; ++i) {
    // Timed-out probes contribute no sample: a partitioned node's RTT
    // window empties instead of freezing at its last healthy value.
    client_->PingNode(i, [this, i](bool ok, sim::Duration rtt) {
      if (ok) RecordRtt(i, rtt);
    });
  }
  client_->loop().ScheduleAfter(config_.ping_interval, [this] { PingLoop(); });
}

void ReadBalancer::ServerStatusLoop() {
  client_->ServerStatus(
      [this](const proto::ServerStatusReply& r) { OnServerStatus(r); });
  client_->loop().ScheduleAfter(config_.server_status_interval,
                                [this] { ServerStatusLoop(); });
}

// Algorithm 1, Rcv-ServerStatus.
void ReadBalancer::OnServerStatus(const proto::ServerStatusReply& reply) {
  staleness_estimate_ = proto::MaxStalenessSeconds(reply);
  PublishFraction();
}

void ReadBalancer::PublishFraction() {
  const bool blocked = config_.stale_bound_seconds == 0 ||
                       staleness_estimate_ > config_.stale_bound_seconds;
  if (blocked && !stale_blocked_) ++stale_zero_events_;
  stale_blocked_ = blocked;
  state_->set_balance_fraction(blocked ? 0.0 : recent_bal_.back());
}

sim::Duration ReadBalancer::MedianRttPrimary() const {
  const auto& window =
      rtt_samples_[static_cast<size_t>(client_->primary_index())];
  return Median({window.begin(), window.end()});
}

sim::Duration ReadBalancer::MedianRttSecondaries() const {
  const auto primary = static_cast<size_t>(client_->primary_index());
  std::vector<sim::Duration> all;
  for (size_t i = 0; i < rtt_samples_.size(); ++i) {
    if (i == primary) continue;
    all.insert(all.end(), rtt_samples_[i].begin(), rtt_samples_[i].end());
  }
  return Median(std::move(all));
}

// Algorithm 1, OnPeriodEnd.
void ReadBalancer::OnPeriodEnd() {
  std::vector<sim::Duration> primary_lat = state_->DrainPrimaryLatencies();
  std::vector<sim::Duration> secondary_lat = state_->DrainSecondaryLatencies();

  PeriodStats stats;
  stats.at = client_->loop().Now();

  const double latest = recent_bal_.back();
  ControlInputs inputs;
  inputs.latest_fraction = latest;
  inputs.history_flat =
      std::all_of(recent_bal_.begin(), recent_bal_.end(),
                  [latest](double b) { return b == latest; });

  if (!primary_lat.empty() && !secondary_lat.empty()) {
    sim::Duration lss_primary = Median(std::move(primary_lat));
    sim::Duration lss_secondary = Median(std::move(secondary_lat));
    if (config_.subtract_rtt) {
      lss_primary -= MedianRttPrimary();
      lss_secondary -= MedianRttSecondaries();
    }
    lss_primary = std::max(lss_primary, config_.min_server_side_latency);
    lss_secondary = std::max(lss_secondary, config_.min_server_side_latency);
    inputs.ratio = static_cast<double>(lss_primary) /
                   static_cast<double>(lss_secondary);
    inputs.ratio_valid = true;
    stats.lss_primary = lss_primary;
    stats.lss_secondary = lss_secondary;
    stats.ratio = inputs.ratio;
    stats.ratio_valid = true;
  }
  // With an empty latency list there is no ratio evidence this period;
  // the controller holds the previous decision (this happens while the
  // staleness gate has zeroed the fraction, or under very light read
  // load).
  const double new_bal = controller_->NextFraction(inputs, config_);

  recent_bal_.pop_front();
  recent_bal_.push_back(new_bal);
  PublishFraction();

  ++periods_completed_;
  stats.new_fraction = new_bal;
  stats.published_fraction = state_->balance_fraction();
  stats.staleness_estimate_s = staleness_estimate_;
  if (period_cb_) period_cb_(stats);

  client_->loop().ScheduleAfter(config_.period, [this] { OnPeriodEnd(); });
}

}  // namespace dcg::core
