#include "core/read_balancer.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dcg::core {

ReadBalancer::ReadBalancer(driver::MongoClient* client, SharedState* state,
                           BalancerConfig config, sim::Rng rng)
    : client_(client),
      state_(state),
      config_(config),
      rng_(std::move(rng)),
      controller_(MakeStepController()) {
  DCG_CHECK(config_.recent_history >= 1);
  DCG_CHECK(config_.low_bal > 0.0 && config_.high_bal <= 1.0);
  DCG_CHECK(config_.low_ratio < config_.high_ratio);
  // RecentBal starts as LOWBAL everywhere; the published fraction starts
  // at LOWBAL too (§3.3: initial Balance Fraction is 10 %).
  recent_bal_.assign(config_.recent_history, config_.low_bal);
  rtt_samples_.resize(client_->node_count());
  secondary_staleness_s_.assign(static_cast<size_t>(client_->node_count()),
                                -1);
  state_->set_balance_fraction(config_.stale_bound_seconds == 0
                                   ? 0.0
                                   : config_.low_bal);
  tracked_primary_ = client_->primary_index();
  tracked_term_ = client_->believed_term();
  // Harvest latencies from the driver's unified completion path: one
  // record per successful application read, regardless of which workload
  // issued it. Probe/control reads opt out via record_latency.
  client_->AddOpObserver([this](const driver::MongoClient::OpStats& stats) {
    if (!stats.is_read || !stats.ok || !stats.record_latency) return;
    state_->RecordLatency(stats.requested, stats.latency);
  });
}

void ReadBalancer::Start() {
  PingLoop();
  ServerStatusLoop();
  client_->loop().ScheduleAfter(config_.period, [this] { OnPeriodEnd(); });
}

sim::Duration ReadBalancer::Median(std::vector<sim::Duration> samples) {
  if (samples.empty()) return 0;
  const size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  return samples[mid];
}

void ReadBalancer::RecordRtt(int node, sim::Duration rtt) {
  auto& window = rtt_samples_[node];
  window.push_back(rtt);
  while (window.size() > static_cast<size_t>(config_.rtt_window)) {
    window.pop_front();
  }
}

void ReadBalancer::CheckPrimarySwap() {
  const int primary = client_->primary_index();
  const uint64_t term = client_->believed_term();
  // "No primary" (an election in flight) is not a swap — the histories
  // still describe the last concrete primary until a new one appears.
  if (primary < 0) return;
  if (primary == tracked_primary_ && term >= tracked_term_) {
    tracked_term_ = term;
    return;
  }
  const bool swapped = tracked_primary_ >= 0 && primary != tracked_primary_;
  tracked_primary_ = primary;
  tracked_term_ = term;
  // Same node re-elected in a newer term: its latency character did not
  // change, so the histories stay.
  if (swapped) OnPrimarySwap();
}

void ReadBalancer::OnPrimarySwap() {
  ++primary_swaps_;
  // Latency samples, RecentBal, and the staleness estimate all describe
  // the deposed primary's topology. Feeding them forward would compare
  // the new primary's Lss against the old one's — discard everything and
  // restart from the floor fraction, exactly like a cold start.
  state_->DrainPrimaryLatencies();
  state_->DrainSecondaryLatencies();
  const double before = recent_bal_.back();
  recent_bal_.assign(static_cast<size_t>(config_.recent_history),
                     config_.low_bal);
  staleness_estimate_ = 0;
  if (budget_ != nullptr) budget_->Report(budget_slot_, 0);
  std::fill(secondary_staleness_s_.begin(), secondary_staleness_s_.end(), -1);
  // Re-apply the gate inline (estimate is reset, so only a zero effective
  // bound — disabled, or another shard eating the whole shared budget —
  // stays blocked) without emitting a spurious gate-transition entry; the
  // swap reset below is the record.
  stale_blocked_ = effective_stale_bound_seconds() == 0;
  state_->set_balance_fraction(stale_blocked_ ? 0.0 : config_.low_bal);

  obs::BalanceDecision decision;
  decision.at = client_->loop().Now();
  decision.from_fraction = before;
  decision.to_fraction = recent_bal_.back();
  decision.published_fraction = state_->balance_fraction();
  decision.reason = obs::BalanceReason::kPrimarySwapReset;
  decision.term = tracked_term_;
  decision.stale_bound_s = effective_stale_bound_seconds();
  decision.secondary_staleness_s = secondary_staleness_s_;
  decisions_.Record(std::move(decision));
}

void ReadBalancer::PingLoop() {
  CheckPrimarySwap();
  const int nodes = client_->node_count();
  for (int i = 0; i < nodes; ++i) {
    // Timed-out probes contribute no sample: a partitioned node's RTT
    // window empties instead of freezing at its last healthy value.
    client_->PingNode(i, [this, i](bool ok, sim::Duration rtt) {
      if (ok) RecordRtt(i, rtt);
    });
  }
  client_->loop().ScheduleAfter(config_.ping_interval, [this] { PingLoop(); });
}

void ReadBalancer::ServerStatusLoop() {
  client_->ServerStatus(
      [this](const proto::ServerStatusReply& r) { OnServerStatus(r); });
  client_->loop().ScheduleAfter(config_.server_status_interval,
                                [this] { ServerStatusLoop(); });
}

// Algorithm 1, Rcv-ServerStatus.
void ReadBalancer::OnServerStatus(const proto::ServerStatusReply& reply) {
  CheckPrimarySwap();
  staleness_estimate_ = proto::MaxStalenessSeconds(reply);
  // Sharded mode: publish this shard's estimate into the shared budget so
  // sibling balancers tighten while we are the laggard (and vice versa).
  if (budget_ != nullptr) budget_->Report(budget_slot_, staleness_estimate_);
  // Per-secondary breakdown for the decision log: which replica is the
  // one holding the estimate up. Same arithmetic as MaxStalenessSeconds.
  std::fill(secondary_staleness_s_.begin(), secondary_staleness_s_.end(), -1);
  for (size_t i = 0; i < reply.secondary_nodes.size(); ++i) {
    const auto node = static_cast<size_t>(reply.secondary_nodes[i]);
    if (node >= secondary_staleness_s_.size()) continue;
    const repl::OpTime& sec = reply.secondary_last_applied[i];
    const sim::Duration gap =
        sec.seq >= reply.primary_last_applied.seq
            ? 0
            : reply.primary_last_applied.wall - sec.wall;
    secondary_staleness_s_[node] = gap / sim::kSecond;
  }
  PublishFraction();
}

void ReadBalancer::RecordGateTransition(obs::BalanceReason reason) {
  obs::BalanceDecision decision;
  decision.at = client_->loop().Now();
  decision.from_fraction = recent_bal_.back();
  decision.to_fraction = recent_bal_.back();
  decision.published_fraction = state_->balance_fraction();
  decision.reason = reason;
  decision.term = client_->believed_term();
  decision.staleness_estimate_s = staleness_estimate_;
  decision.stale_bound_s = effective_stale_bound_seconds();
  decision.secondary_staleness_s = secondary_staleness_s_;
  decisions_.Record(std::move(decision));
}

void ReadBalancer::PublishFraction() {
  // Standalone: the static StaleBound. Sharded: the shared budget's
  // effective bound, which shrinks while a sibling shard overshoots.
  const int64_t bound = effective_stale_bound_seconds();
  const bool blocked = bound == 0 || staleness_estimate_ > bound;
  const bool was_blocked = stale_blocked_;
  if (blocked && !was_blocked) ++stale_zero_events_;
  stale_blocked_ = blocked;
  state_->set_balance_fraction(blocked ? 0.0 : recent_bal_.back());
  // Log gate transitions only (not every refresh): the interesting events
  // are "fraction forced to zero" and "fraction restored".
  if (blocked != was_blocked) {
    RecordGateTransition(blocked ? obs::BalanceReason::kStaleGateZero
                                 : obs::BalanceReason::kStaleGateRelease);
  }
}

sim::Duration ReadBalancer::MedianRttPrimary() const {
  const auto& window =
      rtt_samples_[static_cast<size_t>(client_->primary_index())];
  return Median({window.begin(), window.end()});
}

sim::Duration ReadBalancer::MedianRttSecondaries() const {
  const auto primary = static_cast<size_t>(client_->primary_index());
  std::vector<sim::Duration> all;
  for (size_t i = 0; i < rtt_samples_.size(); ++i) {
    if (i == primary) continue;
    all.insert(all.end(), rtt_samples_[i].begin(), rtt_samples_[i].end());
  }
  return Median(std::move(all));
}

// Algorithm 1, OnPeriodEnd.
void ReadBalancer::OnPeriodEnd() {
  CheckPrimarySwap();
  std::vector<sim::Duration> primary_lat = state_->DrainPrimaryLatencies();
  std::vector<sim::Duration> secondary_lat = state_->DrainSecondaryLatencies();

  PeriodStats stats;
  stats.at = client_->loop().Now();

  const double latest = recent_bal_.back();
  ControlInputs inputs;
  inputs.latest_fraction = latest;
  inputs.history_flat =
      std::all_of(recent_bal_.begin(), recent_bal_.end(),
                  [latest](double b) { return b == latest; });
  // Signals beyond Algorithm 1's ratio, for the rival strategies: the
  // pooled client-observed P50 (SLA feedback), the per-node staleness
  // estimates (age of information), and the gate's current bound.
  if (!primary_lat.empty() || !secondary_lat.empty()) {
    std::vector<sim::Duration> pooled;
    pooled.reserve(primary_lat.size() + secondary_lat.size());
    pooled.insert(pooled.end(), primary_lat.begin(), primary_lat.end());
    pooled.insert(pooled.end(), secondary_lat.begin(), secondary_lat.end());
    inputs.p50_read_latency = Median(std::move(pooled));
  }
  inputs.secondary_age_s = secondary_staleness_s_;
  inputs.staleness_estimate_s = staleness_estimate_;
  inputs.stale_bound_s = effective_stale_bound_seconds();

  if (!primary_lat.empty() && !secondary_lat.empty()) {
    sim::Duration lss_primary = Median(std::move(primary_lat));
    sim::Duration lss_secondary = Median(std::move(secondary_lat));
    if (config_.subtract_rtt) {
      lss_primary -= MedianRttPrimary();
      lss_secondary -= MedianRttSecondaries();
    }
    lss_primary = std::max(lss_primary, config_.min_server_side_latency);
    lss_secondary = std::max(lss_secondary, config_.min_server_side_latency);
    inputs.ratio = static_cast<double>(lss_primary) /
                   static_cast<double>(lss_secondary);
    inputs.ratio_valid = true;
    inputs.lss_primary = lss_primary;
    inputs.lss_secondary = lss_secondary;
    stats.lss_primary = lss_primary;
    stats.lss_secondary = lss_secondary;
    stats.ratio = inputs.ratio;
    stats.ratio_valid = true;
  }
  // With an empty latency list there is no ratio evidence this period;
  // the controller holds the previous decision (this happens while the
  // staleness gate has zeroed the fraction, or under very light read
  // load).
  obs::BalanceReason reason = obs::BalanceReason::kNone;
  const double new_bal = controller_->NextFraction(inputs, config_, &reason);

  recent_bal_.pop_front();
  recent_bal_.push_back(new_bal);
  PublishFraction();

  ++periods_completed_;
  stats.previous_fraction = latest;
  stats.new_fraction = new_bal;
  stats.published_fraction = state_->balance_fraction();
  stats.staleness_estimate_s = staleness_estimate_;
  stats.reason = reason;

  obs::BalanceDecision decision;
  decision.at = stats.at;
  decision.from_fraction = latest;
  decision.to_fraction = new_bal;
  decision.published_fraction = stats.published_fraction;
  decision.reason = reason;
  decision.term = client_->believed_term();
  decision.ratio = stats.ratio;
  decision.ratio_valid = stats.ratio_valid;
  decision.lss_primary = stats.lss_primary;
  decision.lss_secondary = stats.lss_secondary;
  decision.history_flat = inputs.history_flat;
  decision.staleness_estimate_s = staleness_estimate_;
  decision.stale_bound_s = effective_stale_bound_seconds();
  decision.secondary_staleness_s = secondary_staleness_s_;
  decisions_.Record(std::move(decision));

  if (period_cb_) period_cb_(stats);

  client_->loop().ScheduleAfter(config_.period, [this] { OnPeriodEnd(); });
}

}  // namespace dcg::core
