#ifndef DCG_CORE_BALANCER_CONFIG_H_
#define DCG_CORE_BALANCER_CONFIG_H_

#include <cstdint>

#include "sim/time.h"

namespace dcg::core {

/// Parameters of Algorithm 1 ("Algorithm for Read Balancer"). Defaults are
/// the values of §4.1.2:
///   * period 10 s, Balance Fraction ∈ {0} ∪ [10 %, 90 %], initial 10 %;
///   * ratio dead band [0.75, 1.30], step DELTA = 10 %;
///   * 4-period history with a downward probe when it is flat;
///   * serverStatus polled once per second, StaleBound 10 s.
struct BalancerConfig {
  /// DELTA: one-period change in Balance Fraction.
  double delta = 0.10;
  /// LOWBAL: lowest non-zero Balance Fraction.
  double low_bal = 0.10;
  /// HIGHBAL: highest Balance Fraction.
  double high_bal = 0.90;
  /// LOWRATIO: below this latency ratio, decrease the fraction
  /// (secondaries more congested).
  double low_ratio = 0.75;
  /// HIGHRATIO: above this latency ratio, increase the fraction
  /// (primary congested).
  double high_ratio = 1.30;

  /// How often OnPeriodEnd runs.
  sim::Duration period = sim::Seconds(10);
  /// Length of the RecentBal history.
  int recent_history = 4;
  /// When the whole history is identical, probe downward by DELTA
  /// (disable for the A2 ablation).
  bool downward_probe = true;

  /// How often the Read Balancer calls serverStatus on the primary.
  sim::Duration server_status_interval = sim::Seconds(1);
  /// How often it pings every node for RTT samples.
  sim::Duration ping_interval = sim::Seconds(1);
  /// RTT samples retained per node for the P50(RTT) estimate.
  int rtt_window = 16;

  /// StaleBound, in seconds. 0 means the client tolerates no stale reads
  /// (every read goes to the primary — Algorithm 1 line 3).
  int64_t stale_bound_seconds = 10;

  /// When false, the Server-Side Latency estimate skips the − P50(RTT)
  /// subtraction and uses raw client latency (the A1 ablation; §3.3.1
  /// explains why that misroutes under asymmetric AZ RTTs).
  bool subtract_rtt = true;

  /// Floor for Server-Side Latency estimates: protects the ratio against
  /// division by ~zero when a node is so idle that client latency is
  /// almost all network time.
  sim::Duration min_server_side_latency = sim::Micros(20);
};

}  // namespace dcg::core

#endif  // DCG_CORE_BALANCER_CONFIG_H_
