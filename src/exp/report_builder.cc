#include "exp/report_builder.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/decision_log.h"
#include "obs/slo.h"

namespace dcg::exp {
namespace {

std::string Format(const char* fmt, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, v);
  return buffer;
}

double RowMid(const PeriodRow& row) {
  return sim::ToSeconds(row.start + (row.end - row.start) / 2);
}

/// Folds the ordered SLO event log into per-(slo, severity, shard) lanes
/// of [pending-or-firing start, resolved end] bands. A band still open at
/// the end of the run closes at the last event's lane-visible horizon
/// (`run_end`).
std::vector<obs::ReportLane> BuildAlertLanes(const obs::SloEngine* engine,
                                             double run_end) {
  std::vector<obs::ReportLane> lanes;
  if (engine == nullptr) return lanes;
  struct Open {
    double at = 0;
    bool firing = false;
  };
  // Lane per (slo, shard); band per severity inside it.
  std::map<std::string, size_t> lane_index;
  std::map<std::string, Open> open;
  auto lane_for = [&](const obs::SloEvent& e) -> obs::ReportLane& {
    std::string name(e.slo);
    if (e.shard >= 0) name += " shard " + std::to_string(e.shard);
    auto [it, inserted] = lane_index.try_emplace(name, lanes.size());
    if (inserted) {
      lanes.emplace_back();
      lanes.back().name = name;
    }
    return lanes[it->second];
  };
  auto key = [](const obs::SloEvent& e) {
    return std::string(e.slo) + "|" + std::string(obs::ToString(e.severity)) +
           "|" + std::to_string(e.shard);
  };
  for (const obs::SloEvent& e : engine->events()) {
    const double t = sim::ToSeconds(e.at);
    switch (e.transition) {
      case obs::SloTransition::kPending:
        open[key(e)] = {t, false};
        break;
      case obs::SloTransition::kFiring:
        open[key(e)].firing = true;
        break;
      case obs::SloTransition::kCancelled:
      case obs::SloTransition::kResolved: {
        auto it = open.find(key(e));
        if (it == open.end()) break;
        obs::ReportBand band;
        band.t0 = it->second.at;
        band.t1 = t;
        band.severity = it->second.firing
                            ? std::string(obs::ToString(e.severity))
                            : "pending";
        band.label = std::string(e.slo) + " " +
                     std::string(obs::ToString(e.severity)) +
                     (it->second.firing ? " fired" : " pending (cancelled)");
        lane_for(e).bands.push_back(std::move(band));
        open.erase(it);
        break;
      }
    }
  }
  // Still-open alerts extend to the end of the run.
  for (const obs::SloEvent& e : engine->events()) {
    auto it = open.find(key(e));
    if (it == open.end()) continue;
    obs::ReportBand band;
    band.t0 = it->second.at;
    band.t1 = run_end;
    band.severity = it->second.firing
                        ? std::string(obs::ToString(e.severity))
                        : "pending";
    band.label = std::string(e.slo) + " " +
                 std::string(obs::ToString(e.severity)) + " (open at end)";
    lane_for(e).bands.push_back(std::move(band));
    open.erase(it);
  }
  return lanes;
}

}  // namespace

obs::ReportData BuildReportData(const Experiment& experiment) {
  obs::ReportData data;
  const ExperimentConfig& config = experiment.config();
  const Summary summary = experiment.Summarize();

  data.title = "Decongestant run \xc2\xb7 " +
               std::string(ToString(config.system)) + " \xc2\xb7 seed " +
               std::to_string(config.seed);
  data.subtitle =
      "controller " + config.controller + " \xc2\xb7 " +
      (config.kind == WorkloadKind::kYcsb ? "YCSB" : "TPC-C") +
      (experiment.sharded()
           ? " \xc2\xb7 " + std::to_string(config.shards) + " shards"
           : "") +
      " \xc2\xb7 " + Format("%.0f", sim::ToSeconds(config.duration)) +
      " s simulated \xc2\xb7 stale bound " +
      std::to_string(config.balancer.stale_bound_seconds) + " s";

  data.stats.push_back(
      {"Reads/s", Format("%.0f", summary.read_throughput)});
  data.stats.push_back(
      {"P80 read latency", Format("%.2f ms", summary.p80_read_latency_ms)});
  data.stats.push_back(
      {"Secondary share", Format("%.1f %%", summary.secondary_percent)});
  data.stats.push_back(
      {"P80 staleness", Format("%.2f s", summary.p80_staleness_s)});
  data.stats.push_back(
      {"Bound violations",
       std::to_string(summary.bound_violations)});
  const obs::SloEngine* engine = experiment.slo_engine();
  if (engine != nullptr) {
    size_t fired = 0;
    for (const obs::SloEvent& e : engine->events()) {
      if (e.transition == obs::SloTransition::kFiring) ++fired;
    }
    data.stats.push_back({"Alerts fired", std::to_string(fired)});
  }

  const auto& rows = experiment.rows();
  const double run_end = sim::ToSeconds(config.duration);

  // Panel: read throughput + secondary share of it.
  {
    obs::ReportPanel panel;
    panel.title = "Read throughput";
    panel.unit = "ops/s";
    obs::ReportSeries all{"all reads", {}};
    obs::ReportSeries secondary{"secondary-served", {}};
    for (const PeriodRow& row : rows) {
      const double t = RowMid(row);
      const double seconds = sim::ToSeconds(row.end - row.start);
      all.points.push_back({t, row.ReadThroughput()});
      secondary.points.push_back(
          {t, seconds > 0
                  ? static_cast<double>(row.reads_secondary) / seconds
                  : 0});
    }
    panel.series.push_back(std::move(all));
    panel.series.push_back(std::move(secondary));
    data.panels.push_back(std::move(panel));
  }

  // Panel: read latency P80.
  {
    obs::ReportPanel panel;
    panel.title = "Read latency P80";
    panel.unit = "ms";
    obs::ReportSeries p80{"p80", {}};
    for (const PeriodRow& row : rows) {
      p80.points.push_back({RowMid(row), row.P80ReadLatencyMs()});
    }
    panel.series.push_back(std::move(p80));
    data.panels.push_back(std::move(panel));
  }

  // Panel: balance fraction — per shard in sharded mode.
  {
    obs::ReportPanel panel;
    panel.title = "Balance fraction";
    panel.unit = "fraction";
    if (experiment.sharded()) {
      const size_t shards = static_cast<size_t>(config.shards);
      for (size_t s = 0; s < shards; ++s) {
        obs::ReportSeries series{"shard " + std::to_string(s), {}};
        for (const PeriodRow& row : rows) {
          if (s < row.shard_balance_fraction.size()) {
            series.points.push_back(
                {RowMid(row), row.shard_balance_fraction[s]});
          }
        }
        panel.series.push_back(std::move(series));
      }
    } else {
      obs::ReportSeries series{"published", {}};
      for (const PeriodRow& row : rows) {
        series.points.push_back({RowMid(row), row.balance_fraction});
      }
      panel.series.push_back(std::move(series));
    }
    data.panels.push_back(std::move(panel));
  }

  // Panel: staleness estimate vs ground truth (1 Hz series).
  {
    obs::ReportPanel panel;
    panel.title = "Staleness";
    panel.unit = "seconds";
    obs::ReportSeries estimate{"estimate", {}};
    obs::ReportSeries truth{"true max", {}};
    for (const StalenessPoint& p : experiment.staleness_series()) {
      const double t = sim::ToSeconds(p.at);
      if (p.estimate_s >= 0) estimate.points.push_back({t, p.estimate_s});
      truth.points.push_back({t, p.true_max_s});
    }
    if (!estimate.points.empty()) {
      panel.series.push_back(std::move(estimate));
    }
    panel.series.push_back(std::move(truth));
    data.panels.push_back(std::move(panel));
  }

  // Panel: served read age (single replica set only — behind a router the
  // serving node is invisible).
  if (!experiment.sharded()) {
    obs::ReportPanel panel;
    panel.title = "Served read age";
    panel.unit = "seconds";
    obs::ReportSeries mean{"mean", {}};
    obs::ReportSeries max{"max", {}};
    for (const PeriodRow& row : rows) {
      const double t = RowMid(row);
      mean.points.push_back(
          {t, row.served_age.count() > 0 ? row.served_age.mean() / 1000.0
                                         : 0});
      max.points.push_back({t, row.served_age.max() / 1000.0});
    }
    panel.series.push_back(std::move(mean));
    panel.series.push_back(std::move(max));
    data.panels.push_back(std::move(panel));
  }

  // Panel: per-shard routed reads (sharded only).
  if (experiment.sharded()) {
    obs::ReportPanel panel;
    panel.title = "Reads routed per shard";
    panel.unit = "ops/period";
    const size_t shards = static_cast<size_t>(config.shards);
    for (size_t s = 0; s < shards; ++s) {
      obs::ReportSeries series{"shard " + std::to_string(s), {}};
      for (const PeriodRow& row : rows) {
        if (s < row.shard_reads.size()) {
          series.points.push_back(
              {RowMid(row), static_cast<double>(row.shard_reads[s])});
        }
      }
      panel.series.push_back(std::move(series));
    }
    data.panels.push_back(std::move(panel));
  }

  // Panel: SLO burn rate (only with an engine).
  if (engine != nullptr) {
    obs::ReportPanel panel;
    panel.title = "SLO max burn rate";
    panel.unit = "x budget";
    obs::ReportSeries burn{"max burn", {}};
    for (const PeriodRow& row : rows) {
      burn.points.push_back({RowMid(row), row.slo_max_burn});
    }
    panel.series.push_back(std::move(burn));
    data.panels.push_back(std::move(panel));
  }

  data.alert_lanes = BuildAlertLanes(engine, run_end);

  // Decision-reason annotations: every balancer decision, capped so a
  // long run doesn't smear the strip solid (cap keeps first-in-period).
  const obs::DecisionLog* decisions = experiment.balancer_decisions();
  if (decisions != nullptr) {
    constexpr size_t kMaxMarkers = 400;
    const auto& entries = decisions->entries();
    const size_t stride = entries.size() / kMaxMarkers + 1;
    for (size_t i = 0; i < entries.size(); i += stride) {
      const obs::BalanceDecision& d = entries[i];
      obs::ReportMarker marker;
      marker.t = sim::ToSeconds(d.at);
      marker.label = std::string(obs::ToString(d.reason)) + " " +
                     Format("%.2f", d.from_fraction) + " \xe2\x86\x92 " +
                     Format("%.2f", d.to_fraction);
      data.markers.push_back(std::move(marker));
    }
  }

  return data;
}

}  // namespace dcg::exp
