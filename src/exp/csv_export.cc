#include "exp/csv_export.h"

#include <cstdarg>
#include <cstdio>
#include <string>

namespace dcg::exp {
namespace {

class CsvFile {
 public:
  explicit CsvFile(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")) {}
  ~CsvFile() {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool ok() const { return file_ != nullptr; }
  void Line(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, fmt);
    std::vfprintf(file_, fmt, args);
    va_end(args);
    std::fputc('\n', file_);
  }

 private:
  std::FILE* file_;
};

}  // namespace

bool WritePeriodsCsv(const Experiment& experiment, const std::string& path) {
  CsvFile csv(path);
  if (!csv.ok()) return false;
  csv.Line(
      "# units: start_s=seconds reads=count reads_secondary=count "
      "writes=count read_throughput=ops/s p80_latency_ms=ms "
      "secondary_pct=percent balance_fraction=fraction "
      "est_staleness_s=seconds stock_level=count stock_level_p80_ms=ms "
      "ops_ok=count ops_timed_out=count ops_retried=count hedges_won=count "
      "pool_checkout_timeouts=count pool_checkout_wait_ms=ms "
      "pool_queue_depth=count envelopes_sent=count ops_batched=count "
      "served_age_mean_s=seconds served_age_max_s=seconds "
      "balance_from=fraction balance_to=fraction balance_reason=enum "
      "slo_firing=count slo_pending=count slo_max_burn=ratio "
      "slo_events=count");
  csv.Line(
      "start_s,reads,reads_secondary,writes,read_throughput,"
      "p80_latency_ms,secondary_pct,balance_fraction,est_staleness_s,"
      "stock_level,stock_level_p80_ms,ops_ok,ops_timed_out,ops_retried,"
      "hedges_won,pool_checkout_timeouts,pool_checkout_wait_ms,"
      "pool_queue_depth,envelopes_sent,ops_batched,served_age_mean_s,"
      "served_age_max_s,balance_from,balance_to,balance_reason,"
      "slo_firing,slo_pending,slo_max_burn,slo_events");
  for (const PeriodRow& row : experiment.rows()) {
    csv.Line("%.1f,%llu,%llu,%llu,%.2f,%.3f,%.2f,%.2f,%lld,%llu,%.3f,"
             "%llu,%llu,%llu,%llu,%llu,%.3f,%d,%llu,%llu,%.4f,%.4f,"
             "%.2f,%.2f,%s,%d,%d,%.3f,%llu",
             sim::ToSeconds(row.start),
             static_cast<unsigned long long>(row.reads),
             static_cast<unsigned long long>(row.reads_secondary),
             static_cast<unsigned long long>(row.writes),
             row.ReadThroughput(), row.P80ReadLatencyMs(),
             row.SecondaryPercent(), row.balance_fraction,
             static_cast<long long>(row.est_staleness_max_s),
             static_cast<unsigned long long>(row.stock_level),
             row.stock_level_latency.Percentile(80) /
                 static_cast<double>(sim::kMillisecond),
             static_cast<unsigned long long>(row.ops_ok),
             static_cast<unsigned long long>(row.ops_timed_out),
             static_cast<unsigned long long>(row.ops_retried),
             static_cast<unsigned long long>(row.hedges_won),
             static_cast<unsigned long long>(row.pool_checkout_timeouts),
             row.pool_checkout_wait_ms, row.pool_queue_depth,
             static_cast<unsigned long long>(row.envelopes_sent),
             static_cast<unsigned long long>(row.ops_batched),
             row.served_age.count() > 0 ? row.served_age.mean() / 1000.0 : 0.0,
             row.served_age.max() / 1000.0,
             row.balance_from, row.balance_to,
             row.balance_decided
                 ? std::string(obs::ToString(row.balance_reason)).c_str()
                 : "-",
             row.slo_firing, row.slo_pending, row.slo_max_burn,
             static_cast<unsigned long long>(row.slo_events));
  }
  return true;
}

bool WriteSloCsv(const Experiment& experiment, const std::string& path) {
  CsvFile csv(path);
  if (!csv.ok()) return false;
  csv.Line(
      "# units: time_s=seconds slo=name shard=index(-1=cluster) "
      "severity=enum transition=enum burn_long=ratio burn_short=ratio "
      "sli=fraction good=count bad=count");
  csv.Line("time_s,slo,shard,severity,transition,burn_long,burn_short,sli,"
           "good,bad");
  const obs::SloEngine* engine = experiment.slo_engine();
  if (engine == nullptr) return true;
  for (const obs::SloEvent& e : engine->events()) {
    csv.Line("%.1f,%s,%d,%s,%s,%.4f,%.4f,%.6f,%llu,%llu",
             sim::ToSeconds(e.at), e.slo.c_str(), e.shard,
             std::string(obs::ToString(e.severity)).c_str(),
             std::string(obs::ToString(e.transition)).c_str(), e.burn_long,
             e.burn_short, e.sli, static_cast<unsigned long long>(e.good),
             static_cast<unsigned long long>(e.bad));
  }
  return true;
}

bool WriteStalenessCsv(const Experiment& experiment, const std::string& path) {
  CsvFile csv(path);
  if (!csv.ok()) return false;
  csv.Line(
      "# units: time_s=seconds estimate_s=seconds true_max_s=seconds");
  csv.Line("time_s,estimate_s,true_max_s");
  for (const StalenessPoint& p : experiment.staleness_series()) {
    csv.Line("%.1f,%.1f,%.3f", sim::ToSeconds(p.at), p.estimate_s,
             p.true_max_s);
  }
  return true;
}

bool WriteSamplesCsv(const Experiment& experiment, const std::string& path) {
  CsvFile csv(path);
  if (!csv.ok()) return false;
  csv.Line("# units: time_s=seconds observed_staleness_s=seconds");
  csv.Line("time_s,observed_staleness_s");
  for (const auto& [at, staleness] : experiment.s_samples()) {
    csv.Line("%.3f,%.3f", sim::ToSeconds(at), staleness);
  }
  return true;
}

bool WriteDecisionsCsv(const Experiment& experiment, const std::string& path) {
  const obs::DecisionLog* log = experiment.balancer_decisions();
  CsvFile csv(path);
  if (!csv.ok()) return false;
  csv.Line(
      "# units: time_s=seconds from_fraction=fraction to_fraction=fraction "
      "published_fraction=fraction reason=enum term=count ratio=ratio "
      "ratio_valid=bool lss_primary_ms=ms lss_secondary_ms=ms "
      "history_flat=bool est_staleness_s=seconds stale_bound_s=seconds "
      "secondary_staleness_s=seconds(|-joined,-1=unknown)");
  csv.Line(
      "time_s,from_fraction,to_fraction,published_fraction,reason,term,ratio,"
      "ratio_valid,lss_primary_ms,lss_secondary_ms,history_flat,"
      "est_staleness_s,stale_bound_s,secondary_staleness_s");
  if (log == nullptr) return true;
  for (const obs::BalanceDecision& d : log->entries()) {
    std::string per_node;
    for (size_t i = 0; i < d.secondary_staleness_s.size(); ++i) {
      if (i > 0) per_node += '|';
      per_node += std::to_string(d.secondary_staleness_s[i]);
    }
    csv.Line("%.1f,%.2f,%.2f,%.2f,%s,%llu,%.3f,%d,%.3f,%.3f,%d,%lld,%lld,%s",
             sim::ToSeconds(d.at), d.from_fraction, d.to_fraction,
             d.published_fraction,
             std::string(obs::ToString(d.reason)).c_str(),
             static_cast<unsigned long long>(d.term), d.ratio,
             d.ratio_valid ? 1 : 0, sim::ToMillis(d.lss_primary),
             sim::ToMillis(d.lss_secondary), d.history_flat ? 1 : 0,
             static_cast<long long>(d.staleness_estimate_s),
             static_cast<long long>(d.stale_bound_s), per_node.c_str());
  }
  return true;
}

bool WriteShardsCsv(const Experiment& experiment, const std::string& path) {
  CsvFile csv(path);
  if (!csv.ok()) return false;
  csv.Line(
      "# units: start_s=seconds shard=index reads_routed=count "
      "balance_fraction=fraction");
  csv.Line("start_s,shard,reads_routed,balance_fraction");
  for (const PeriodRow& row : experiment.rows()) {
    for (size_t s = 0; s < row.shard_balance_fraction.size(); ++s) {
      csv.Line("%.1f,%zu,%llu,%.2f", sim::ToSeconds(row.start), s,
               static_cast<unsigned long long>(row.shard_reads[s]),
               row.shard_balance_fraction[s]);
    }
  }
  return true;
}

}  // namespace dcg::exp
