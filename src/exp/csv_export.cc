#include "exp/csv_export.h"

#include <cstdarg>
#include <cstdio>

namespace dcg::exp {
namespace {

class CsvFile {
 public:
  explicit CsvFile(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")) {}
  ~CsvFile() {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool ok() const { return file_ != nullptr; }
  void Line(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list args;
    va_start(args, fmt);
    std::vfprintf(file_, fmt, args);
    va_end(args);
    std::fputc('\n', file_);
  }

 private:
  std::FILE* file_;
};

}  // namespace

bool WritePeriodsCsv(const Experiment& experiment, const std::string& path) {
  CsvFile csv(path);
  if (!csv.ok()) return false;
  csv.Line(
      "start_s,reads,reads_secondary,writes,read_throughput,"
      "p80_latency_ms,secondary_pct,balance_fraction,est_staleness_s,"
      "stock_level,stock_level_p80_ms,ops_ok,ops_timed_out,ops_retried,"
      "hedges_won,pool_checkout_timeouts,pool_checkout_wait_ms,"
      "pool_queue_depth");
  for (const PeriodRow& row : experiment.rows()) {
    csv.Line("%.1f,%llu,%llu,%llu,%.2f,%.3f,%.2f,%.2f,%lld,%llu,%.3f,"
             "%llu,%llu,%llu,%llu,%llu,%.3f,%d",
             sim::ToSeconds(row.start),
             static_cast<unsigned long long>(row.reads),
             static_cast<unsigned long long>(row.reads_secondary),
             static_cast<unsigned long long>(row.writes),
             row.ReadThroughput(), row.P80ReadLatencyMs(),
             row.SecondaryPercent(), row.balance_fraction,
             static_cast<long long>(row.est_staleness_max_s),
             static_cast<unsigned long long>(row.stock_level),
             row.stock_level_latency.Percentile(80) /
                 static_cast<double>(sim::kMillisecond),
             static_cast<unsigned long long>(row.ops_ok),
             static_cast<unsigned long long>(row.ops_timed_out),
             static_cast<unsigned long long>(row.ops_retried),
             static_cast<unsigned long long>(row.hedges_won),
             static_cast<unsigned long long>(row.pool_checkout_timeouts),
             row.pool_checkout_wait_ms, row.pool_queue_depth);
  }
  return true;
}

bool WriteStalenessCsv(const Experiment& experiment, const std::string& path) {
  CsvFile csv(path);
  if (!csv.ok()) return false;
  csv.Line("time_s,estimate_s,true_max_s");
  for (const StalenessPoint& p : experiment.staleness_series()) {
    csv.Line("%.1f,%.1f,%.3f", sim::ToSeconds(p.at), p.estimate_s,
             p.true_max_s);
  }
  return true;
}

bool WriteSamplesCsv(const Experiment& experiment, const std::string& path) {
  CsvFile csv(path);
  if (!csv.ok()) return false;
  csv.Line("time_s,observed_staleness_s");
  for (const auto& [at, staleness] : experiment.s_samples()) {
    csv.Line("%.3f,%.3f", sim::ToSeconds(at), staleness);
  }
  return true;
}

}  // namespace dcg::exp
