#include "exp/experiment.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dcg::exp {

std::string_view ToString(SystemType type) {
  switch (type) {
    case SystemType::kDecongestant:
      return "decongestant";
    case SystemType::kPrimary:
      return "primary";
    case SystemType::kSecondary:
      return "secondary";
  }
  return "unknown";
}

double PeriodRow::ReadThroughput() const {
  const double seconds = sim::ToSeconds(end - start);
  return seconds <= 0 ? 0 : static_cast<double>(reads) / seconds;
}

double PeriodRow::SecondaryPercent() const {
  return reads == 0 ? 0
                    : 100.0 * static_cast<double>(reads_secondary) /
                          static_cast<double>(reads);
}

double PeriodRow::P80ReadLatencyMs() const {
  return read_latency.Percentile(80) / static_cast<double>(sim::kMillisecond);
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      shared_state_(config_.balancer.low_bal) {
  DCG_CHECK_MSG(!config_.phases.empty(), "need at least one phase");
  DCG_CHECK_MSG(config_.phases.front().at == 0, "first phase must start at 0");

  // --- Topology: client host, then either one replica set or a sharded
  // cluster (router + N replica-set shards) behind it. ---
  network_ = std::make_unique<net::Network>(&loop_, rng_.Fork());
  const net::HostId client_host = network_->AddHost("client-host");
  if (config_.shards >= 2) {
    DCG_CHECK_MSG(config_.kind == WorkloadKind::kYcsb,
                  "sharded mode supports the YCSB workload only");
    DCG_CHECK_MSG(config_.faults.empty(),
                  "fault schedules target the single-replica-set topology");
    shard::ShardedClusterConfig cluster_config;
    cluster_config.shards = config_.shards;
    cluster_config.shard_key = config_.shard_key;
    cluster_config.chunks_per_shard = config_.chunks_per_shard;
    cluster_config.split_points = config_.split_points;
    cluster_config.repl = config_.repl;
    cluster_config.server = config_.server;
    cluster_config.client_options = config_.client_options;
    cluster_config.balancer = config_.balancer;
    cluster_config.run_balancers =
        config_.system == SystemType::kDecongestant;
    cluster_config.fixed_pref = config_.system == SystemType::kSecondary
                                    ? driver::ReadPreference::kSecondary
                                    : driver::ReadPreference::kPrimary;
    cluster_config.client_node_rtt = config_.client_node_rtt;
    cluster_config.client_router_rtt = config_.client_router_rtt;
    cluster_config.inter_node_rtt = config_.inter_node_rtt;
    cluster_config.rtt_jitter = config_.rtt_jitter;
    cluster_ = std::make_unique<shard::ShardedCluster>(
        &loop_, rng_.Fork(), network_.get(), client_host, cluster_config);
    cluster_->SetTracer(&tracer_);
    last_shard_reads_.assign(static_cast<size_t>(config_.shards), 0);
  } else {
    std::vector<net::HostId> node_hosts;
    const int nodes = config_.repl.secondaries + 1;
    DCG_CHECK(static_cast<int>(config_.client_node_rtt.size()) >= nodes);
    for (int i = 0; i < nodes; ++i) {
      node_hosts.push_back(network_->AddHost("db-node-" + std::to_string(i)));
      network_->SetLink(client_host, node_hosts[i],
                        config_.client_node_rtt[i], config_.rtt_jitter);
    }
    for (int i = 0; i < nodes; ++i) {
      for (int j = i + 1; j < nodes; ++j) {
        network_->SetLink(node_hosts[i], node_hosts[j],
                          config_.inter_node_rtt, config_.rtt_jitter);
      }
    }

    // --- Replica set and driver. ---
    rs_ = std::make_unique<repl::ReplicaSet>(&loop_, rng_.Fork(),
                                             network_.get(), config_.repl,
                                             config_.server, node_hosts);
    client_ = std::make_unique<driver::MongoClient>(&loop_, rng_.Fork(),
                                                    rs_->command_bus(),
                                                    client_host,
                                                    config_.client_options);

    // The tracer is attached unconditionally (so its disabled cost is what
    // production runs pay) and enabled only on request.
    rs_->SetTracer(&tracer_);
    client_->SetTracer(&tracer_);
  }
  if (config_.trace) tracer_.Enable(config_.trace_max_spans);

  // --- Routing policy / system under test. ---
  if (sharded()) {
    // The routing decision lives inside the router (per-shard policies,
    // balancers, shared budget); the workload's own policy pins the
    // client→router leg to "primary" — the router always is.
    policy_ = std::make_unique<core::FixedPolicy>(
        driver::ReadPreference::kPrimary);
  } else {
    switch (config_.system) {
      case SystemType::kDecongestant:
        policy_ = std::make_unique<core::DecongestantPolicy>(&shared_state_);
        balancer_ = std::make_unique<core::ReadBalancer>(
            client_.get(), &shared_state_, config_.balancer, rng_.Fork());
        break;
      case SystemType::kPrimary:
        policy_ = std::make_unique<core::FixedPolicy>(
            driver::ReadPreference::kPrimary);
        break;
      case SystemType::kSecondary:
        policy_ = std::make_unique<core::FixedPolicy>(
            driver::ReadPreference::kSecondary);
        break;
    }
  }

  // --- Controller strategy. The default name leaves the balancers on the
  // StepController they construct with — the bit-identical golden path —
  // so only a non-default selection touches them at all. ---
  if (config_.system == SystemType::kDecongestant &&
      !core::IsDefaultController(config_.controller)) {
    if (sharded()) {
      for (int s = 0; s < cluster_->shard_count(); ++s) {
        if (cluster_->balancer(s) == nullptr) continue;
        auto controller = core::MakeController(config_.controller);
        DCG_CHECK_MSG(controller != nullptr, "unknown controller strategy");
        cluster_->balancer(s)->SetController(std::move(controller));
      }
    } else {
      auto controller = core::MakeController(config_.controller);
      DCG_CHECK_MSG(controller != nullptr, "unknown controller strategy");
      balancer_->SetController(std::move(controller));
    }
  }

  // --- Pre-replicated data: every node loads the identical snapshot; in
  // sharded mode each shard's nodes load only the records it owns (the
  // union across shards is the unsharded snapshot). ---
  if (sharded()) {
    for (int s = 0; s < cluster_->shard_count(); ++s) {
      for (int i = 0; i <= config_.repl.secondaries; ++i) {
        store::Database* db = &cluster_->shard(s).node(i).db();
        workload::YcsbWorkload::Load(
            config_.ycsb, db, [this, s](int64_t key) {
              return cluster_->ShardFor(doc::Value(key)) == s;
            });
        if (config_.run_s_workload) {
          workload::SWorkload::Load(config_.s_config, db);
        }
      }
    }
  } else {
    for (int i = 0; i <= config_.repl.secondaries; ++i) {
      store::Database* db = &rs_->node(i).db();
      if (config_.kind == WorkloadKind::kYcsb) {
        workload::YcsbWorkload::Load(config_.ycsb, db);
      } else {
        workload::TpccWorkload::Load(config_.tpcc, db);
      }
      if (config_.run_s_workload) {
        workload::SWorkload::Load(config_.s_config, db);
      }
    }
  }

  // --- Workload objects. ---
  driver::MongoClient* workload_client =
      sharded() ? &cluster_->top_client() : client_.get();
  if (config_.kind == WorkloadKind::kYcsb) {
    auto ycsb_config = config_.ycsb;
    ycsb_config.read_proportion = config_.phases.front().ycsb_read_proportion;
    ycsb_config.stamp_route = sharded();
    auto ycsb = std::make_unique<workload::YcsbWorkload>(
        workload_client, policy_.get(), ycsb_config, rng_.Fork());
    ycsb_ = ycsb.get();
    workload_ = std::move(ycsb);
  } else {
    auto tpcc = std::make_unique<workload::TpccWorkload>(
        client_.get(), policy_.get(), config_.tpcc, rng_.Fork());
    tpcc_ = tpcc.get();
    workload_ = std::move(tpcc);
  }

  if (!sharded()) {
    injector_ = std::make_unique<fault::FaultInjector>(&loop_, network_.get(),
                                                       rs_.get(), client_host);
    // pool_clear faults reach the driver through this hook — the injector
    // itself never sees client internals.
    injector_->SetPoolClearHook([this](int node) { client_->ClearPool(node); });
  }

  pool_ = std::make_unique<ClientPool>(
      &loop_, workload_.get(),
      [this](const workload::OpOutcome& o) { OnOp(o); });

  if (config_.run_s_workload) {
    // All probe samples — one S workload per shard in sharded mode — feed
    // the same series: the client-wide staleness distribution the shared
    // budget is supposed to bound.
    auto on_sample = [this](double staleness_s) {
      // Stored in milliseconds for sub-second histogram resolution.
      current_.s_staleness.Add(staleness_s * 1000.0);
      s_samples_.emplace_back(loop_.Now(), staleness_s);
    };
    if (sharded()) {
      for (int s = 0; s < cluster_->shard_count(); ++s) {
        std::function<bool()> secondary_in_use;
        switch (config_.system) {
          case SystemType::kDecongestant:
            secondary_in_use = [this, s] {
              return cluster_->shared_state(s).balance_fraction() > 0.0;
            };
            break;
          case SystemType::kPrimary:
            secondary_in_use = [] { return false; };
            break;
          case SystemType::kSecondary:
            secondary_in_use = [] { return true; };
            break;
        }
        shard_s_workloads_.push_back(std::make_unique<workload::SWorkload>(
            &cluster_->router().shard_client(s), std::move(secondary_in_use),
            config_.s_config, rng_.Fork(), on_sample));
      }
    } else {
      std::function<bool()> secondary_in_use;
      switch (config_.system) {
        case SystemType::kDecongestant:
          secondary_in_use = [this] {
            return shared_state_.balance_fraction() > 0.0;
          };
          break;
        case SystemType::kPrimary:
          secondary_in_use = [] { return false; };
          break;
        case SystemType::kSecondary:
          secondary_in_use = [] { return true; };
          break;
      }
      s_workload_ = std::make_unique<workload::SWorkload>(
          client_.get(), std::move(secondary_in_use), config_.s_config,
          rng_.Fork(), on_sample);
    }
  }

  // Per-Read-Preference latency and served-age histograms, off the same
  // completion path the Read Balancer harvests (observers are multicast).
  // The age of a served read is the serving node's true staleness when
  // the read completed — 0 for the primary — i.e. the age-of-information
  // the client actually consumed, per preference and per node.
  if (!sharded()) {
    node_served_age_.resize(static_cast<size_t>(client_->node_count()));
  }
  workload_client->AddOpObserver([this](
                                     const driver::MongoClient::OpStats&
                                         stats) {
    if (!stats.is_read || !stats.ok || !stats.record_latency) return;
    pref_read_latency_[static_cast<size_t>(stats.requested)].Add(
        static_cast<double>(stats.latency));
    if (sharded()) return;  // serving node is behind the router
    const int primary = rs_->primary_index();
    if (stats.node < 0 || primary < 0) return;  // election in flight
    const double age_ms =
        stats.node == primary
            ? 0.0
            : sim::ToMillis(rs_->TrueStaleness(stats.node));
    current_.served_age.Add(age_ms);
    pref_served_age_[static_cast<size_t>(stats.requested)].Add(age_ms);
    node_served_age_[static_cast<size_t>(stats.node)].Add(age_ms);
  });

  // --- SLO engine (only when objectives were requested — the golden path
  // never builds one). Cluster-wide objectives consume the per-op stream
  // in OnOp; sharded freshness instead watches each shard's staleness
  // signal, because the serving node hides behind the router. ---
  if (!config_.slos.empty()) {
    slo_ = std::make_unique<obs::SloEngine>(config_.report_period);
    for (const obs::SloSpec& spec : config_.slos) {
      if (spec.kind == obs::SloKind::kFreshness && sharded()) {
        for (int s = 0; s < cluster_->shard_count(); ++s) {
          obs::SloTracker& tracker = slo_->AddSlo(spec, s);
          if (cluster_->balancer(s) != nullptr) {
            tracker.SetSource([this, s] {
              return static_cast<double>(
                  cluster_->balancer(s)->staleness_estimate_seconds());
            });
          } else {
            tracker.SetSource([this, s] {
              return sim::ToSeconds(cluster_->shard(s).MaxTrueStaleness());
            });
          }
        }
      } else {
        slo_->AddSlo(spec);
      }
    }
  }
  RegisterMetrics();
  if (slo_ != nullptr) slo_->RegisterMetrics(&registry_);
}

Experiment::~Experiment() = default;

void Experiment::RegisterMetrics() {
  // Control-plane gauges.
  if (sharded()) {
    // Per-shard control plane, plus cluster-wide rollups and the router's
    // own routing counters.
    for (int s = 0; s < cluster_->shard_count(); ++s) {
      const std::string shard = std::to_string(s);
      registry_.RegisterGauge(
          "balance_fraction", "fraction", {{"shard", shard}},
          [this, s] { return cluster_->shared_state(s).balance_fraction(); });
      registry_.RegisterGauge(
          "true_staleness_max", "seconds", {{"shard", shard}}, [this, s] {
            return sim::ToSeconds(cluster_->shard(s).MaxTrueStaleness());
          });
      if (cluster_->balancer(s) != nullptr) {
        registry_.RegisterGauge(
            "staleness_estimate", "seconds", {{"shard", shard}}, [this, s] {
              return static_cast<double>(
                  cluster_->balancer(s)->staleness_estimate_seconds());
            });
        registry_.RegisterGauge(
            "effective_stale_bound", "seconds", {{"shard", shard}},
            [this, s] {
              return static_cast<double>(
                  cluster_->budget().EffectiveBound(s));
            });
      }
      registry_.RegisterCounter(
          "routed_to_shard", "ops", {{"shard", shard}}, [this, s] {
            return static_cast<double>(cluster_->router().routed_to_shard(s));
          });
    }
    registry_.RegisterGauge("true_staleness_max", "seconds", {}, [this] {
      sim::Duration worst = 0;
      for (int s = 0; s < cluster_->shard_count(); ++s) {
        worst = std::max(worst, cluster_->shard(s).MaxTrueStaleness());
      }
      return sim::ToSeconds(worst);
    });
    registry_.RegisterCounter("router_stale_refreshes", "ops", {}, [this] {
      return static_cast<double>(cluster_->router().stale_refreshes());
    });
    registry_.RegisterCounter("router_scatter_finds", "ops", {}, [this] {
      return static_cast<double>(cluster_->router().scatter_finds());
    });
  } else {
    registry_.RegisterGauge("balance_fraction", "fraction", {}, [this] {
      return shared_state_.balance_fraction();
    });
    registry_.RegisterGauge("true_staleness_max", "seconds", {}, [this] {
      return sim::ToSeconds(rs_->MaxTrueStaleness());
    });
  }
  if (balancer_ != nullptr) {
    registry_.RegisterGauge("staleness_estimate", "seconds", {}, [this] {
      return static_cast<double>(balancer_->staleness_estimate_seconds());
    });
  }

  // Per-op outcome counters (cumulative; consumers diff across samples).
  const metrics::OpCounters& counters = client().op_counters();
  registry_.RegisterCounter("ops_ok", "ops", {},
                            [&counters] { return double(counters.ok); });
  registry_.RegisterCounter("ops_timed_out", "ops", {}, [&counters] {
    return double(counters.timed_out);
  });
  registry_.RegisterCounter("ops_retried", "ops", {}, [&counters] {
    return double(counters.retried);
  });
  registry_.RegisterCounter("retries_total", "attempts", {}, [&counters] {
    return double(counters.retries_total);
  });
  registry_.RegisterCounter("hedges_sent", "ops", {}, [&counters] {
    return double(counters.hedges_sent);
  });
  registry_.RegisterCounter("hedges_won", "ops", {}, [&counters] {
    return double(counters.hedges_won);
  });
  registry_.RegisterCounter("pool_checkouts", "checkouts", {}, [&counters] {
    return double(counters.checkouts);
  });
  registry_.RegisterCounter("pool_checkout_timeouts", "checkouts", {},
                            [&counters] {
                              return double(counters.checkout_timeouts);
                            });
  registry_.RegisterGauge("pool_queue_depth", "checkouts", {},
                          [this] { return double(client().PoolQueueDepth()); });
  registry_.RegisterCounter("envelopes_sent", "envelopes", {}, [&counters] {
    return double(counters.envelopes_sent);
  });
  registry_.RegisterCounter("ops_batched", "ops", {}, [&counters] {
    return double(counters.ops_batched);
  });
  registry_.RegisterHistogram("batch_occupancy", "ops", {},
                              &client().batch_occupancy(), 1.0);

  // Per-node RTT estimates, as the driver's server selection sees them
  // (in sharded mode the topology is one node: the router).
  for (int node = 0; node < client().node_count(); ++node) {
    registry_.RegisterGauge(
        "rtt_ewma", "ms", {{"node", std::to_string(node)}},
        [this, node] { return sim::ToMillis(client().RttEstimate(node)); });
  }

  // Read latency distribution per requested Read Preference (ns → ms).
  for (size_t pref = 0; pref < 5; ++pref) {
    registry_.RegisterHistogram(
        "read_latency", "ms",
        {{"pref",
          std::string(ToString(static_cast<driver::ReadPreference>(pref)))}},
        &pref_read_latency_[pref], 1.0 / sim::kMillisecond);
  }

  // Served-read age of information (histograms record ms; exported in
  // seconds): what age of data each preference / each node actually
  // handed to clients. Single-replica-set mode only — behind a router
  // the client cannot name the serving node.
  if (!sharded()) {
    for (size_t pref = 0; pref < 5; ++pref) {
      registry_.RegisterHistogram(
          "served_read_age", "seconds",
          {{"pref",
            std::string(ToString(static_cast<driver::ReadPreference>(pref)))}},
          &pref_served_age_[pref], 1.0 / 1000.0);
    }
    for (size_t node = 0; node < node_served_age_.size(); ++node) {
      registry_.RegisterHistogram("served_read_age", "seconds",
                                  {{"node", std::to_string(node)}},
                                  &node_served_age_[node], 1.0 / 1000.0);
    }
  }
}

void Experiment::OnOp(const workload::OpOutcome& outcome) {
  if (slo_ != nullptr) {
    slo_->ObserveOutcome(outcome.ok);
    if (outcome.ok && outcome.read_only) {
      slo_->ObserveReadLatencyMs(sim::ToMillis(outcome.latency));
      if (!sharded() && outcome.node >= 0) {
        const int primary = rs_->primary_index();
        if (primary >= 0) {
          const double age_s =
              outcome.node == primary
                  ? 0.0
                  : sim::ToSeconds(rs_->TrueStaleness(outcome.node));
          slo_->ObserveServedAge(age_s, outcome.used_secondary);
        }
      }
    }
  }
  if (outcome.ok) {
    ++current_.ops_ok;
  } else if (outcome.timed_out) {
    ++current_.ops_timed_out;
  }
  if (outcome.retries > 0) ++current_.ops_retried;
  if (outcome.hedge_won) ++current_.hedges_won;
  if (!outcome.ok) {
    // A failed op has no latency or serving node worth recording; the
    // throughput columns count only completed operations.
    if (op_observer_) op_observer_(outcome);
    return;
  }
  if (outcome.read_only) {
    ++current_.reads;
    if (outcome.used_secondary) ++current_.reads_secondary;
    current_.read_latency.Add(static_cast<double>(outcome.latency));
    if (outcome.type == "stock_level") {
      ++current_.stock_level;
      current_.stock_level_latency.Add(static_cast<double>(outcome.latency));
    }
  } else {
    ++current_.writes;
  }
  if (op_observer_) op_observer_(outcome);
}

void Experiment::SampleStaleness() {
  StalenessPoint point;
  point.at = loop_.Now();
  if (sharded()) {
    // Client-wide staleness is the worst shard — the quantity the shared
    // StalenessBudget promises stays under the single StaleBound.
    sim::Duration true_worst = 0;
    int64_t est_worst = -1;
    for (int s = 0; s < cluster_->shard_count(); ++s) {
      true_worst = std::max(true_worst, cluster_->shard(s).MaxTrueStaleness());
      if (cluster_->balancer(s) != nullptr) {
        est_worst = std::max(
            est_worst, cluster_->balancer(s)->staleness_estimate_seconds());
      }
    }
    point.true_max_s = sim::ToSeconds(true_worst);
    if (est_worst >= 0) {
      point.estimate_s = static_cast<double>(est_worst);
      current_.est_staleness_max_s =
          std::max(current_.est_staleness_max_s, est_worst);
    }
  } else {
    point.true_max_s = sim::ToSeconds(rs_->MaxTrueStaleness());
    if (balancer_ != nullptr) {
      point.estimate_s =
          static_cast<double>(balancer_->staleness_estimate_seconds());
      current_.est_staleness_max_s =
          std::max(current_.est_staleness_max_s,
                   balancer_->staleness_estimate_seconds());
    }
  }
  staleness_series_.push_back(point);
  loop_.ScheduleAfter(sim::Seconds(1), [this] { SampleStaleness(); });
}

void Experiment::ClosePeriod() {
  current_.end = loop_.Now();
  if (sharded()) {
    // Per-shard columns plus the max fraction as the scalar rollup.
    double max_fraction = 0.0;
    for (int s = 0; s < cluster_->shard_count(); ++s) {
      const double fraction = cluster_->shared_state(s).balance_fraction();
      max_fraction = std::max(max_fraction, fraction);
      current_.shard_balance_fraction.push_back(fraction);
      const uint64_t routed = cluster_->router().routed_to_shard(s);
      current_.shard_reads.push_back(routed -
                                     last_shard_reads_[static_cast<size_t>(s)]);
      last_shard_reads_[static_cast<size_t>(s)] = routed;
    }
    current_.balance_fraction = max_fraction;
  } else {
    current_.balance_fraction = shared_state_.balance_fraction();
  }
  const driver::pool::ConnectionPool::Stats pool_now = client().PoolTotals();
  current_.pool_checkout_timeouts =
      pool_now.checkout_timeouts - last_pool_totals_.checkout_timeouts;
  current_.pool_checkout_wait_ms =
      sim::ToMillis(pool_now.wait_total - last_pool_totals_.wait_total);
  current_.pool_queue_depth = client().PoolQueueDepth();
  last_pool_totals_ = pool_now;
  const metrics::OpCounters& ops_now = client().op_counters();
  current_.envelopes_sent =
      ops_now.envelopes_sent - last_op_counters_.envelopes_sent;
  current_.ops_batched = ops_now.ops_batched - last_op_counters_.ops_batched;
  last_op_counters_ = ops_now;
  if (balancer_ != nullptr) {
    // Fold this period's balancer decisions into the row: control ticks
    // win over gate transitions (a gate event carries no fraction move).
    const auto& entries = balancer_->decisions().entries();
    bool tick_seen = false;
    for (; decision_cursor_ < entries.size(); ++decision_cursor_) {
      const obs::BalanceDecision& d = entries[decision_cursor_];
      const bool gate = d.reason == obs::BalanceReason::kStaleGateZero ||
                        d.reason == obs::BalanceReason::kStaleGateRelease;
      if (gate && tick_seen) continue;
      tick_seen = tick_seen || !gate;
      current_.balance_decided = true;
      current_.balance_from = d.from_fraction;
      current_.balance_to = d.to_fraction;
      current_.balance_reason = d.reason;
    }
  }
  if (slo_ != nullptr) {
    // Evaluate before the registry samples, so slo_sli/slo_burn gauges
    // reflect this period.
    slo_->Evaluate(loop_.Now());
    current_.slo_firing = slo_->firing_count();
    current_.slo_pending = slo_->pending_count();
    current_.slo_max_burn = slo_->max_burn();
    current_.slo_events = slo_->events().size() - slo_event_cursor_;
    slo_event_cursor_ = slo_->events().size();
  }
  registry_.Sample(loop_.Now());
  rows_.push_back(std::move(current_));
  current_ = PeriodRow{};
  current_.start = loop_.Now();
  loop_.ScheduleAfter(config_.report_period, [this] { ClosePeriod(); });
}

void Experiment::Run() {
  if (sharded()) {
    cluster_->Start();
  } else {
    rs_->Start();
    client_->Start();
    if (balancer_ != nullptr) balancer_->Start();
  }
  if (s_workload_ != nullptr) s_workload_->Start();
  for (auto& s_workload : shard_s_workloads_) s_workload->Start();
  if (!config_.faults.empty()) injector_->Arm(config_.faults);

  // Phase schedule.
  pool_->SetTarget(config_.phases.front().clients);
  for (size_t i = 1; i < config_.phases.size(); ++i) {
    const Phase phase = config_.phases[i];
    loop_.ScheduleAt(phase.at, [this, phase] {
      pool_->SetTarget(phase.clients);
      if (ycsb_ != nullptr) {
        ycsb_->set_read_proportion(phase.ycsb_read_proportion);
      }
    });
  }

  current_.start = loop_.Now();
  loop_.ScheduleAfter(config_.report_period, [this] { ClosePeriod(); });
  loop_.ScheduleAfter(sim::Seconds(1), [this] { SampleStaleness(); });

  loop_.RunUntil(config_.duration);
}

Summary Experiment::Summarize() const {
  Summary summary;
  metrics::Histogram read_latency;
  metrics::Histogram sl_latency;
  metrics::Histogram staleness;
  metrics::Histogram served_age;
  sim::Duration measured = 0;
  uint64_t stock_level = 0;
  for (const PeriodRow& row : rows_) {
    if (row.start < config_.warmup) continue;
    measured += row.end - row.start;
    summary.total_reads += row.reads;
    summary.total_writes += row.writes;
    stock_level += row.stock_level;
    read_latency.Merge(row.read_latency);
    sl_latency.Merge(row.stock_level_latency);
    staleness.Merge(row.s_staleness);
    served_age.Merge(row.served_age);
  }
  uint64_t secondary_reads = 0;
  for (const PeriodRow& row : rows_) {
    if (row.start < config_.warmup) continue;
    secondary_reads += row.reads_secondary;
  }
  const double seconds = sim::ToSeconds(measured);
  if (seconds > 0) {
    summary.read_throughput = static_cast<double>(summary.total_reads) / seconds;
    summary.write_throughput =
        static_cast<double>(summary.total_writes) / seconds;
    summary.stock_level_throughput =
        static_cast<double>(stock_level) / seconds;
  }
  if (summary.total_reads > 0) {
    summary.secondary_percent = 100.0 *
                                static_cast<double>(secondary_reads) /
                                static_cast<double>(summary.total_reads);
  }
  summary.p80_read_latency_ms =
      read_latency.Percentile(80) / static_cast<double>(sim::kMillisecond);
  summary.p80_stock_level_latency_ms =
      sl_latency.Percentile(80) / static_cast<double>(sim::kMillisecond);
  summary.p80_staleness_s = staleness.Percentile(80) / 1000.0;
  summary.max_staleness_s = staleness.max() / 1000.0;
  if (served_age.count() > 0) {
    summary.mean_served_age_s = served_age.mean() / 1000.0;
    summary.max_served_age_s = served_age.max() / 1000.0;
  }
  if (config_.balancer.stale_bound_seconds > 0) {
    const double bound_s =
        static_cast<double>(config_.balancer.stale_bound_seconds);
    for (const auto& [at, staleness_s] : s_samples_) {
      if (at < config_.warmup) continue;
      if (staleness_s > bound_s) ++summary.bound_violations;
    }
  }
  return summary;
}

}  // namespace dcg::exp
