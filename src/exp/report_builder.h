#ifndef DCG_EXP_REPORT_BUILDER_H_
#define DCG_EXP_REPORT_BUILDER_H_

#include "exp/experiment.h"
#include "obs/report.h"

namespace dcg::exp {

/// Converts a finished Experiment into the dashboard description
/// obs::WriteHtmlReport renders: summary stat tiles, time-series panels
/// (throughput, latency, balance fraction, staleness, served age —
/// per-shard series in sharded mode), alert timeline lanes from the SLO
/// engine's event log, and balancer decision-reason annotations.
obs::ReportData BuildReportData(const Experiment& experiment);

}  // namespace dcg::exp

#endif  // DCG_EXP_REPORT_BUILDER_H_
