#ifndef DCG_EXP_CSV_EXPORT_H_
#define DCG_EXP_CSV_EXPORT_H_

#include <string>

#include "exp/experiment.h"

namespace dcg::exp {

/// Writes the per-period time series (one row per report period:
/// throughput, P80 latency, secondary share, balance fraction, staleness
/// estimate, per-op outcome counters) to `path`. Returns false on I/O
/// failure.
bool WritePeriodsCsv(const Experiment& experiment, const std::string& path);

/// Writes the per-second staleness series (estimate + ground truth).
bool WriteStalenessCsv(const Experiment& experiment, const std::string& path);

/// Writes the individual S-workload staleness samples.
bool WriteSamplesCsv(const Experiment& experiment, const std::string& path);

/// Writes the Balancer decision log — one row per control tick or
/// staleness-gate transition, with every Algorithm 1 input and the reason
/// for the move. Header-only for the fixed-preference baselines.
bool WriteDecisionsCsv(const Experiment& experiment, const std::string& path);

/// Sharded runs: one row per (report period, shard) with the shard's
/// published balance fraction and the point ops the router dispatched to
/// it that period. Header-only for single-replica-set runs.
bool WriteShardsCsv(const Experiment& experiment, const std::string& path);

/// Writes the SLO alert transition log — one row per state-machine edge
/// (pending/firing/cancelled/resolved) with the burn rates and window
/// counts behind it. Header-only when the run had no --slo objectives.
bool WriteSloCsv(const Experiment& experiment, const std::string& path);

}  // namespace dcg::exp

#endif  // DCG_EXP_CSV_EXPORT_H_
