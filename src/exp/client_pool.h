#ifndef DCG_EXP_CLIENT_POOL_H_
#define DCG_EXP_CLIENT_POOL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_loop.h"
#include "workload/workload.h"

namespace dcg::exp {

/// A pool of closed-loop clients: each active slot issues one workload
/// operation, waits for it to finish, and immediately issues the next —
/// like the paper's N-client load generators. The target size can change
/// mid-run (the Figure 3/4 client-count phases): surplus clients park when
/// their current operation completes; new slots start immediately.
class ClientPool {
 public:
  ClientPool(sim::EventLoop* loop, workload::Workload* workload,
             std::function<void(const workload::OpOutcome&)> on_op);

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  /// Sets the number of concurrently running clients.
  void SetTarget(int n);

  int target() const { return target_; }
  int running() const { return running_count_; }
  uint64_t ops_completed() const { return ops_completed_; }

  /// Swaps the workload driving the pool (takes effect per client as each
  /// finishes its in-flight operation).
  void SetWorkload(workload::Workload* workload) { workload_ = workload; }

 private:
  void RunClient(int idx);

  sim::EventLoop* loop_;
  workload::Workload* workload_;
  std::function<void(const workload::OpOutcome&)> on_op_;
  int target_ = 0;
  int running_count_ = 0;
  std::vector<bool> running_;
  uint64_t ops_completed_ = 0;
};

}  // namespace dcg::exp

#endif  // DCG_EXP_CLIENT_POOL_H_
