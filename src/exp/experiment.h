#ifndef DCG_EXP_EXPERIMENT_H_
#define DCG_EXP_EXPERIMENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/read_balancer.h"
#include "core/routing_policy.h"
#include "core/shared_state.h"
#include "driver/client.h"
#include "exp/client_pool.h"
#include "fault/fault_injector.h"
#include "metrics/histogram.h"
#include "net/network.h"
#include "obs/metrics_registry.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "repl/replica_set.h"
#include "shard/sharded_cluster.h"
#include "sim/event_loop.h"
#include "workload/s_workload.h"
#include "workload/tpcc.h"
#include "workload/workload.h"
#include "workload/ycsb.h"

namespace dcg::exp {

/// Which system routes the read-only transactions (§4.1.3).
enum class SystemType {
  kDecongestant,
  kPrimary,    // baseline: Read Preference hard-coded to primary
  kSecondary,  // baseline: hard-coded to secondary
};

std::string_view ToString(SystemType type);

enum class WorkloadKind { kYcsb, kTpcc };

/// One workload phase. The first phase applies at t=0; later phases change
/// the client count and/or the YCSB mix at their start time (the dynamic
/// workloads of §4.2).
struct Phase {
  sim::Duration at = 0;
  int clients = 0;
  double ycsb_read_proportion = 0.5;  // ignored for TPC-C
};

/// Full experiment description: cluster, system under test, workload
/// schedule, and measurement settings.
struct ExperimentConfig {
  uint64_t seed = 42;
  SystemType system = SystemType::kDecongestant;
  /// Balance Fraction controller strategy, by registry name
  /// (core::MakeController): "decongestant" (the paper's Algorithm 1,
  /// default), "proportional", "cpq", "aoi", or "pid". Applied to every
  /// Read Balancer the run builds (one per shard in sharded mode).
  /// Ignored for the fixed-preference baselines.
  std::string controller = "decongestant";

  WorkloadKind kind = WorkloadKind::kYcsb;
  workload::YcsbConfig ycsb;
  workload::TpccConfig tpcc;
  std::vector<Phase> phases;  // at least one, first with at == 0

  sim::Duration duration = sim::Seconds(300);
  /// Excluded from Summarize() (the paper excludes the first 100 s).
  sim::Duration warmup = sim::Seconds(100);
  sim::Duration report_period = sim::Seconds(10);

  core::BalancerConfig balancer;
  repl::ReplicaSetParams repl;
  server::ServerParams server;
  driver::ClientOptions client_options;

  /// Sharded mode: shards >= 2 swaps the single replica set for a
  /// shard::ShardedCluster — N replica-set shards behind a bus-routed
  /// mongos, per-shard Read Balancers joined to one client-wide
  /// StalenessBudget (stale_bound_seconds applies cluster-wide). The
  /// default (1) keeps the classic single-replica-set path untouched.
  /// Sharded runs support YCSB only and no fault schedule.
  int shards = 1;
  shard::ShardKeyPattern shard_key;
  int chunks_per_shard = 4;
  /// Ranged shard key only: strictly ascending chunk split points.
  std::vector<doc::Value> split_points;
  sim::Duration client_router_rtt = sim::Millis(0.3);

  bool run_s_workload = true;
  workload::SWorkloadConfig s_config;

  /// Fault timeline injected into the run (empty = healthy run). Events
  /// target replica-set node indexes; see fault::ParseFaultSpec for the
  /// sim_cli string form.
  fault::FaultSchedule faults;

  /// Service-level objectives evaluated once per report period (sim_cli
  /// --slo, obs::ParseSloSpecs). Empty (the default) builds no engine at
  /// all — the golden path runs the exact same event sequence. With specs
  /// present the engine is fed from the unified op-completion path and
  /// evaluated inside the existing period-close event, so it still
  /// schedules nothing of its own. Freshness objectives become per-shard
  /// trackers over the shard staleness signal when shards >= 2.
  std::vector<obs::SloSpec> slos;

  /// Enables per-op span tracing (sim_cli --trace-out). The tracer is
  /// always *attached* to the stack — off by default, so the disabled-path
  /// overhead is exactly what bench_baseline's trace_overhead_off measures.
  bool trace = false;
  size_t trace_max_spans = obs::Tracer::kDefaultMaxSpans;

  /// Client-to-node base RTTs (availability-zone layout: the client host
  /// shares AZ-a with node 0).
  std::vector<sim::Duration> client_node_rtt = {
      sim::Millis(0.4), sim::Millis(1.2), sim::Millis(1.6)};
  sim::Duration inter_node_rtt = sim::Millis(1.0);
  sim::Duration rtt_jitter = sim::Micros(40);
};

/// Per-report-period measurements — one row per 10 s, matching the time
/// series the paper's figures plot.
struct PeriodRow {
  sim::Time start = 0;
  sim::Time end = 0;
  uint64_t reads = 0;             // read-only transactions completed
  uint64_t reads_secondary = 0;   // ... of which served by a secondary
  uint64_t writes = 0;
  metrics::Histogram read_latency;  // ns, all read-only txns
  uint64_t stock_level = 0;         // TPC-C only
  metrics::Histogram stock_level_latency;  // ns
  metrics::Histogram s_staleness;   // seconds, S-workload samples
  int64_t est_staleness_max_s = 0;  // max serverStatus estimate in period
  double balance_fraction = 0.0;    // published fraction at period end
  // Per-op outcome counters from the command layer (all op types).
  uint64_t ops_ok = 0;         // ops that completed
  uint64_t ops_timed_out = 0;  // ops that failed their client deadline
  uint64_t ops_retried = 0;    // ops needing at least one retry
  uint64_t hedges_won = 0;     // reads answered by the hedge request
  // Connection-pool columns: per-period deltas of the client's pool
  // totals, plus the wait-queue depth at period end (all zero with the
  // default unconstrained pool).
  uint64_t pool_checkout_timeouts = 0;
  double pool_checkout_wait_ms = 0;  // total checkout wait this period
  int pool_queue_depth = 0;          // queued checkouts at period end
  // Command-batching columns: per-period deltas of the driver's envelope
  // counters (both zero with batching off — the default).
  uint64_t envelopes_sent = 0;  // coalesced batches put on the wire
  uint64_t ops_batched = 0;     // attempts that rode an envelope
  // Served-read age of information: for every completed read, the true
  // staleness of the serving node when the read finished (0 for the
  // primary). Stored in milliseconds for sub-second resolution;
  // single-replica-set runs only (empty in sharded mode, where the
  // serving node sits behind the router).
  metrics::Histogram served_age;
  // Balancer decision summary for the period (Decongestant only): the
  // last control-tick move and its Algorithm 1 reason. balance_decided is
  // false when no tick fell inside the period.
  bool balance_decided = false;
  double balance_from = 0.0;
  double balance_to = 0.0;
  obs::BalanceReason balance_reason = obs::BalanceReason::kNone;
  // Sharded runs only (empty otherwise): per-shard published fraction at
  // period end and point ops the router dispatched to each shard this
  // period. The scalar balance_fraction column holds the max across
  // shards (the most-shedding shard).
  std::vector<double> shard_balance_fraction;
  std::vector<uint64_t> shard_reads;
  // SLO engine state at period close (all zero without --slo): alert
  // rules firing/pending across every tracker, the worst long-window burn
  // rate, and how many alert transitions the period produced.
  int slo_firing = 0;
  int slo_pending = 0;
  double slo_max_burn = 0.0;
  uint64_t slo_events = 0;

  double ReadThroughput() const;
  double SecondaryPercent() const;
  double P80ReadLatencyMs() const;
};

/// A point on a staleness time series (Figures 8-10).
struct StalenessPoint {
  sim::Time at = 0;
  double estimate_s = -1;  // serverStatus-based estimate (-1: none taken)
  double true_max_s = 0;   // simulator ground truth
};

/// Whole-run aggregates over [warmup, duration) (the paper's single-point
/// experiments, Figures 5-7 and 11).
struct Summary {
  double read_throughput = 0;    // read-only txns / s
  double p80_read_latency_ms = 0;
  double secondary_percent = 0;
  double p80_staleness_s = 0;    // S-workload P80
  double max_staleness_s = 0;    // S-workload max
  double stock_level_throughput = 0;
  double p80_stock_level_latency_ms = 0;
  double write_throughput = 0;
  uint64_t total_reads = 0;
  uint64_t total_writes = 0;
  /// Age-of-information aggregates over the served-read age histograms
  /// (seconds; 0 when no ages were recorded — e.g. sharded mode).
  double mean_served_age_s = 0;
  double max_served_age_s = 0;
  /// S-workload samples (after warmup) that exceeded the staleness bound
  /// — what the paper promises stays at ~0 for Decongestant. 0 when the
  /// bound is disabled.
  uint64_t bound_violations = 0;
};

/// Builds the full stack — event loop, network, replica set, driver,
/// routing policy (+ Read Balancer for Decongestant), workload, client
/// pool, S workload — runs it, and collects the paper's measurements.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Runs the configured duration of simulated time.
  void Run();

  const std::vector<PeriodRow>& rows() const { return rows_; }
  const std::vector<StalenessPoint>& staleness_series() const {
    return staleness_series_;
  }
  /// Individual S-workload samples (time, staleness seconds).
  const std::vector<std::pair<sim::Time, double>>& s_samples() const {
    return s_samples_;
  }

  Summary Summarize() const;

  /// Registers an extra per-operation observer, called (after internal
  /// accounting) for every completed workload op. The chaos harness uses
  /// this to check per-read freshness invariants in-line.
  void SetOpObserver(std::function<void(const workload::OpOutcome&)> observer) {
    op_observer_ = std::move(observer);
  }

  // Introspection for tests and benches.
  sim::EventLoop& loop() { return loop_; }
  net::Network& network() { return *network_; }
  repl::ReplicaSet& replica_set() { return *rs_; }
  /// The client whose op counters / pool / RTTs the run reports: the
  /// plain driver in single-replica-set mode, the client→router driver in
  /// sharded mode.
  driver::MongoClient& client() {
    return cluster_ != nullptr ? cluster_->top_client() : *client_;
  }
  /// True when config.shards >= 2 built a sharded cluster.
  bool sharded() const { return cluster_ != nullptr; }
  /// The sharded stack (null in single-replica-set mode).
  shard::ShardedCluster* sharded_cluster() { return cluster_.get(); }
  const shard::ShardedCluster* sharded_cluster() const {
    return cluster_.get();
  }
  core::ReadBalancer* balancer() { return balancer_.get(); }
  core::SharedState& shared_state() { return shared_state_; }
  workload::YcsbWorkload* ycsb() { return ycsb_; }
  workload::TpccWorkload* tpcc() { return tpcc_; }
  workload::SWorkload* s_workload() { return s_workload_.get(); }
  fault::FaultInjector& fault_injector() { return *injector_; }
  ClientPool& pool() { return *pool_; }
  const ExperimentConfig& config() const { return config_; }

  /// The run's span tracer — attached to driver + replica set whether or
  /// not config.trace enabled it. Export with obs::WriteChromeTrace.
  const obs::Tracer& tracer() const { return tracer_; }
  obs::Tracer& tracer() { return tracer_; }
  /// Unified metric series, sampled once per report period.
  const obs::MetricsRegistry& metrics_registry() const { return registry_; }
  /// Balancer decision log; null for the fixed-preference baselines.
  const obs::DecisionLog* balancer_decisions() const {
    return balancer_ == nullptr ? nullptr : &balancer_->decisions();
  }
  /// SLO engine; null unless config.slos requested objectives.
  const obs::SloEngine* slo_engine() const { return slo_.get(); }

 private:
  void OnOp(const workload::OpOutcome& outcome);
  void ClosePeriod();
  void SampleStaleness();
  void RegisterMetrics();

  ExperimentConfig config_;
  sim::EventLoop loop_;
  sim::Rng rng_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<repl::ReplicaSet> rs_;
  std::unique_ptr<driver::MongoClient> client_;
  /// Sharded mode only; rs_ and client_ stay null when this is set.
  std::unique_ptr<shard::ShardedCluster> cluster_;
  /// Sharded mode: one S workload per shard, each probing through that
  /// shard's sub-client (samples merge into the one client-wide series).
  std::vector<std::unique_ptr<workload::SWorkload>> shard_s_workloads_;
  /// Router per-shard dispatch counters at the last period boundary.
  std::vector<uint64_t> last_shard_reads_;
  core::SharedState shared_state_;
  std::unique_ptr<core::RoutingPolicy> policy_;
  std::unique_ptr<core::ReadBalancer> balancer_;
  std::unique_ptr<workload::Workload> workload_;
  workload::YcsbWorkload* ycsb_ = nullptr;
  workload::TpccWorkload* tpcc_ = nullptr;
  std::unique_ptr<workload::SWorkload> s_workload_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<ClientPool> pool_;
  std::function<void(const workload::OpOutcome&)> op_observer_;

  obs::Tracer tracer_;
  obs::MetricsRegistry registry_;
  /// Built only when config.slos is non-empty; fed from OnOp, advanced in
  /// ClosePeriod.
  std::unique_ptr<obs::SloEngine> slo_;
  /// First SLO event not yet folded into a PeriodRow.
  size_t slo_event_cursor_ = 0;
  /// Cumulative read latency per requested Read Preference, fed from the
  /// driver's completion path; registered as histogram series.
  metrics::Histogram pref_read_latency_[5];
  /// Cumulative served-read age (ms) per requested Read Preference and
  /// per serving node, fed from the same completion path (single
  /// replica-set mode only). Sized once in the constructor — registered
  /// histogram series hold pointers into the vector.
  metrics::Histogram pref_served_age_[5];
  std::vector<metrics::Histogram> node_served_age_;
  /// First balancer decision not yet folded into a PeriodRow.
  size_t decision_cursor_ = 0;

  std::vector<PeriodRow> rows_;
  PeriodRow current_;
  /// Pool totals at the last period boundary (for per-period deltas).
  driver::pool::ConnectionPool::Stats last_pool_totals_;
  /// Driver op counters at the last period boundary (same delta scheme).
  metrics::OpCounters last_op_counters_;
  std::vector<StalenessPoint> staleness_series_;
  std::vector<std::pair<sim::Time, double>> s_samples_;
};

}  // namespace dcg::exp

#endif  // DCG_EXP_EXPERIMENT_H_
