#include "exp/client_system.h"

#include <utility>

namespace dcg::exp {

ClientSystem::ClientSystem(sim::EventLoop* loop, sim::Rng rng,
                           net::Network* /*network*/, repl::ReplicaSet* rs,
                           net::HostId host,
                           driver::ClientOptions client_options,
                           core::BalancerConfig balancer_config,
                           workload::YcsbConfig ycsb_config) {
  // The driver speaks only the command bus; it learns topology from
  // hello replies rather than touching the replica set.
  client_ = std::make_unique<driver::MongoClient>(
      loop, rng.Fork(), rs->command_bus(), host, client_options);
  state_ = std::make_unique<core::SharedState>(balancer_config.low_bal);
  policy_ = std::make_unique<core::DecongestantPolicy>(state_.get());
  balancer_ = std::make_unique<core::ReadBalancer>(
      client_.get(), state_.get(), balancer_config, rng.Fork());
  ycsb_ = std::make_unique<workload::YcsbWorkload>(
      client_.get(), policy_.get(), ycsb_config, rng.Fork());
  pool_ = std::make_unique<ClientPool>(
      loop, ycsb_.get(), [this](const workload::OpOutcome& outcome) {
        if (!outcome.read_only) return;
        ++reads_;
        if (outcome.used_secondary) ++secondary_reads_;
      });
}

void ClientSystem::Start(int clients) {
  client_->Start();
  balancer_->Start();
  pool_->SetTarget(clients);
}

}  // namespace dcg::exp
