#ifndef DCG_EXP_CLIENT_SYSTEM_H_
#define DCG_EXP_CLIENT_SYSTEM_H_

#include <memory>

#include "core/read_balancer.h"
#include "core/routing_policy.h"
#include "core/shared_state.h"
#include "driver/client.h"
#include "exp/client_pool.h"
#include "repl/replica_set.h"
#include "workload/ycsb.h"

namespace dcg::exp {

/// One independent *client system* as drawn in the paper's Figure 1 — the
/// architecture explicitly allows several of them, each hosting its own
/// Read Balancer that sees only its own clients' latencies and its own
/// pings. Nothing is shared between client systems except the database:
/// this is the paper's decentralisation claim ("it uses only client
/// observations"), and `bench_ext_multiclient` checks that independent
/// balancers still converge to compatible Balance Fractions.
class ClientSystem {
 public:
  ClientSystem(sim::EventLoop* loop, sim::Rng rng, net::Network* network,
               repl::ReplicaSet* rs, net::HostId host,
               driver::ClientOptions client_options,
               core::BalancerConfig balancer_config,
               workload::YcsbConfig ycsb_config);

  ClientSystem(const ClientSystem&) = delete;
  ClientSystem& operator=(const ClientSystem&) = delete;

  /// Starts the driver, the Read Balancer, and `clients` closed-loop
  /// application workers.
  void Start(int clients);

  driver::MongoClient& client() { return *client_; }
  core::SharedState& state() { return *state_; }
  core::ReadBalancer& balancer() { return *balancer_; }
  workload::YcsbWorkload& ycsb() { return *ycsb_; }
  ClientPool& pool() { return *pool_; }

  uint64_t reads() const { return reads_; }
  uint64_t secondary_reads() const { return secondary_reads_; }
  double SecondaryPercent() const {
    return reads_ == 0 ? 0.0
                       : 100.0 * static_cast<double>(secondary_reads_) /
                             static_cast<double>(reads_);
  }

 private:
  std::unique_ptr<driver::MongoClient> client_;
  std::unique_ptr<core::SharedState> state_;
  std::unique_ptr<core::DecongestantPolicy> policy_;
  std::unique_ptr<core::ReadBalancer> balancer_;
  std::unique_ptr<workload::YcsbWorkload> ycsb_;
  std::unique_ptr<ClientPool> pool_;
  uint64_t reads_ = 0;
  uint64_t secondary_reads_ = 0;
};

}  // namespace dcg::exp

#endif  // DCG_EXP_CLIENT_SYSTEM_H_
