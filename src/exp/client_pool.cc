#include "exp/client_pool.h"

#include <utility>

#include "util/check.h"

namespace dcg::exp {

ClientPool::ClientPool(sim::EventLoop* loop, workload::Workload* workload,
                       std::function<void(const workload::OpOutcome&)> on_op)
    : loop_(loop), workload_(workload), on_op_(std::move(on_op)) {}

void ClientPool::SetTarget(int n) {
  DCG_CHECK(n >= 0);
  target_ = n;
  if (static_cast<int>(running_.size()) < n) running_.resize(n, false);
  for (int idx = 0; idx < n; ++idx) {
    if (!running_[idx]) {
      running_[idx] = true;
      ++running_count_;
      // Defer the first issue to a fresh event so SetTarget returns before
      // any operation runs (deterministic start order).
      loop_->ScheduleAfter(0, [this, idx] { RunClient(idx); });
    }
  }
  // Slots >= n park themselves when their in-flight op completes.
}

void ClientPool::RunClient(int idx) {
  if (idx >= target_) {
    running_[idx] = false;
    --running_count_;
    return;
  }
  workload_->Issue(idx, [this, idx](const workload::OpOutcome& outcome) {
    ++ops_completed_;
    if (on_op_) on_op_(outcome);
    RunClient(idx);
  });
}

}  // namespace dcg::exp
