#ifndef DCG_UTIL_CHECK_H_
#define DCG_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// DCG_CHECK(cond): aborts with a source location when `cond` is false.
/// Active in all build types — these guard internal invariants whose
/// violation means the simulation's results cannot be trusted, so we never
/// compile them out.
#define DCG_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "DCG_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// DCG_CHECK_MSG(cond, fmt, ...): like DCG_CHECK with a printf-style note.
#define DCG_CHECK_MSG(cond, ...)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "DCG_CHECK failed: %s at %s:%d: ", #cond,      \
                   __FILE__, __LINE__);                                   \
      std::fprintf(stderr, __VA_ARGS__);                                  \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // DCG_UTIL_CHECK_H_
