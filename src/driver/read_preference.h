#ifndef DCG_DRIVER_READ_PREFERENCE_H_
#define DCG_DRIVER_READ_PREFERENCE_H_

#include <string_view>

namespace dcg::driver {

/// MongoDB Read Preference options (§2.2 of the paper). Decongestant and
/// the paper's baselines use only kPrimary and kSecondary; the remaining
/// modes are implemented for driver completeness (and the maxStaleness
/// ablation uses kSecondaryPreferred).
enum class ReadPreference {
  kPrimary = 0,
  kPrimaryPreferred,
  kSecondary,
  kSecondaryPreferred,
  kNearest,
};

std::string_view ToString(ReadPreference pref);

/// True when the preference targets secondaries first.
inline bool PrefersSecondary(ReadPreference pref) {
  return pref == ReadPreference::kSecondary ||
         pref == ReadPreference::kSecondaryPreferred;
}

}  // namespace dcg::driver

#endif  // DCG_DRIVER_READ_PREFERENCE_H_
