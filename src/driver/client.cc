#include "driver/client.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"

namespace dcg::driver {

MongoClient::MongoClient(sim::EventLoop* loop, sim::Rng rng,
                         net::Network* network, repl::ReplicaSet* rs,
                         net::HostId client_host, ClientOptions options)
    : loop_(loop),
      rng_(std::move(rng)),
      network_(network),
      rs_(rs),
      client_host_(client_host),
      options_(options) {
  if (options_.enforce_mongodb_min_staleness &&
      options_.max_staleness_seconds >= 0) {
    DCG_CHECK_MSG(options_.max_staleness_seconds >= 90,
                  "MongoDB requires maxStalenessSeconds >= 90");
  }
  // Seed RTT estimates from link base RTTs (first handshake).
  rtt_estimate_.resize(rs_->node_count());
  for (int i = 0; i < rs_->node_count(); ++i) {
    rtt_estimate_[i] = network_->BaseRtt(client_host_, rs_->node(i).host());
  }
  staleness_cache_.assign(rs_->node_count(), 0);
}

void MongoClient::Start() {
  ProbeLoop();
  if (options_.max_staleness_seconds >= 0) StalenessLoop();
}

void MongoClient::ProbeLoop() {
  for (int i = 0; i < rs_->node_count(); ++i) {
    PingNode(i, [this, i](sim::Duration rtt) {
      const double alpha = options_.rtt_ewma_alpha;
      rtt_estimate_[i] = static_cast<sim::Duration>(
          alpha * static_cast<double>(rtt) +
          (1.0 - alpha) * static_cast<double>(rtt_estimate_[i]));
    });
  }
  loop_->ScheduleAfter(options_.rtt_probe_interval, [this] { ProbeLoop(); });
}

void MongoClient::StalenessLoop() {
  ServerStatus([this](const repl::ReplicaSet::ServerStatusReply& reply) {
    for (size_t i = 0; i < reply.secondary_last_applied.size(); ++i) {
      const int node = reply.secondary_nodes[i];
      const repl::OpTime& sec = reply.secondary_last_applied[i];
      if (sec.seq >= reply.primary_last_applied.seq) {
        staleness_cache_[node] = 0;
      } else {
        staleness_cache_[node] =
            (reply.primary_last_applied.wall - sec.wall) / sim::kSecond;
      }
    }
  });
  loop_->ScheduleAfter(options_.staleness_refresh_interval,
                       [this] { StalenessLoop(); });
}

std::vector<int> MongoClient::EligibleSecondaries() {
  const int primary = rs_->primary_index();
  std::vector<int> eligible;
  sim::Duration min_rtt = std::numeric_limits<sim::Duration>::max();
  for (int i = 0; i < rs_->node_count(); ++i) {
    if (i == primary || !rs_->IsAlive(i)) continue;
    min_rtt = std::min(min_rtt, rtt_estimate_[i]);
  }
  for (int i = 0; i < rs_->node_count(); ++i) {
    if (i == primary || !rs_->IsAlive(i)) continue;
    if (rtt_estimate_[i] > min_rtt + options_.selection_latency_window) {
      continue;
    }
    if (options_.max_staleness_seconds >= 0 &&
        staleness_cache_[i] > options_.max_staleness_seconds) {
      continue;
    }
    eligible.push_back(i);
  }
  return eligible;
}

int MongoClient::SelectNode(ReadPreference pref) {
  const int primary = rs_->primary_index();
  const bool primary_alive = rs_->IsAlive(primary);
  switch (pref) {
    case ReadPreference::kPrimary:
      return primary_alive ? primary : kNoNode;
    case ReadPreference::kPrimaryPreferred: {
      if (primary_alive) return primary;
      std::vector<int> eligible = EligibleSecondaries();
      if (eligible.empty()) return kNoNode;
      return eligible[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
    }
    case ReadPreference::kSecondary:
    case ReadPreference::kSecondaryPreferred: {
      std::vector<int> eligible = EligibleSecondaries();
      if (eligible.empty()) {
        // kSecondary with no eligible node is an error in MongoDB; like
        // secondaryPreferred we fall back to the primary so workloads keep
        // running (the maxStaleness ablation relies on this).
        return primary_alive ? primary : kNoNode;
      }
      return eligible[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
    }
    case ReadPreference::kNearest: {
      int best = kNoNode;
      for (int i = 0; i < rs_->node_count(); ++i) {
        if (!rs_->IsAlive(i)) continue;
        if (best < 0 || rtt_estimate_[i] < rtt_estimate_[best]) best = i;
      }
      return best;
    }
  }
  return primary_alive ? primary : kNoNode;
}

void MongoClient::Read(ReadPreference pref, server::OpClass op_class,
                       repl::ReplicaSet::ReadBody body,
                       std::function<void(const ReadResult&)> done) {
  ReadAfter(pref, repl::OpTime{}, op_class, std::move(body), std::move(done));
}

void MongoClient::ReadAfter(ReadPreference pref, const repl::OpTime& after,
                            server::OpClass op_class,
                            repl::ReplicaSet::ReadBody body,
                            std::function<void(const ReadResult&)> done) {
  const int node = SelectNode(pref);
  if (node == kNoNode) {
    // No selectable server right now (fail-over in progress): the driver
    // retries server selection, as real drivers do.
    loop_->ScheduleAfter(options_.selection_retry_interval,
                         [this, pref, after, op_class, body = std::move(body),
                          done = std::move(done)]() mutable {
                           ReadAfter(pref, after, op_class, std::move(body),
                                     std::move(done));
                         });
    return;
  }
  const net::HostId node_host = rs_->node(node).host();
  const sim::Time start = loop_->Now();
  network_->Send(
      client_host_, node_host,
      [this, node, node_host, pref, op_class, after, start,
       body = std::move(body), done = std::move(done)]() mutable {
        rs_->ReadAfter(
            node, after, op_class,
            [this, node, node_host, pref, start, body = std::move(body),
             done = std::move(done)](const store::Database& db) {
              body(db);
              const repl::OpTime operation_time =
                  rs_->node(node).last_applied();
              network_->Send(node_host, client_host_,
                             [this, node, pref, start, operation_time,
                              done = std::move(done)] {
                               ReadResult result;
                               result.latency = loop_->Now() - start;
                               result.requested = pref;
                               result.node = node;
                               result.used_secondary =
                                   node != rs_->primary_index();
                               result.operation_time = operation_time;
                               if (done) done(result);
                             });
            });
      });
}

void MongoClient::Write(server::OpClass op_class,
                        repl::ReplicaSet::TxnBody body,
                        std::function<void(const WriteResult&)> done,
                        repl::WriteConcern concern) {
  if (!rs_->IsAlive(rs_->primary_index())) {
    // Not-master: retry server selection until the election resolves.
    loop_->ScheduleAfter(options_.selection_retry_interval,
                         [this, op_class, concern, body = std::move(body),
                          done = std::move(done)]() mutable {
                           Write(op_class, std::move(body), std::move(done),
                                 concern);
                         });
    return;
  }
  const net::HostId primary_host = rs_->primary().host();
  const sim::Time start = loop_->Now();
  network_->Send(
      client_host_, primary_host,
      [this, primary_host, op_class, concern, start, body = std::move(body),
       done = std::move(done)]() mutable {
        rs_->WriteTransaction(
            op_class, std::move(body),
            [this, primary_host, start, done = std::move(done)](
                bool committed) {
              const repl::OpTime operation_time =
                  rs_->primary().last_applied();
              network_->Send(primary_host, client_host_,
                             [this, start, committed, operation_time,
                              done = std::move(done)] {
                               WriteResult result;
                               result.latency = loop_->Now() - start;
                               result.committed = committed;
                               result.operation_time = operation_time;
                               if (done) done(result);
                             });
            },
            concern);
      });
}

void MongoClient::ServerStatus(
    std::function<void(const repl::ReplicaSet::ServerStatusReply&)> done) {
  if (!rs_->IsAlive(rs_->primary_index())) {
    loop_->ScheduleAfter(options_.selection_retry_interval,
                         [this, done = std::move(done)]() mutable {
                           ServerStatus(std::move(done));
                         });
    return;
  }
  const net::HostId primary_host = rs_->primary().host();
  network_->Send(
      client_host_, primary_host, [this, primary_host, done = std::move(done)] {
        rs_->ServerStatus(
            [this, primary_host, done = std::move(done)](
                const repl::ReplicaSet::ServerStatusReply& reply) {
              network_->Send(primary_host, client_host_,
                             [reply, done = std::move(done)] { done(reply); });
            });
      });
}

void MongoClient::PingNode(int node, std::function<void(sim::Duration)> done) {
  network_->Ping(client_host_, rs_->node(node).host(), std::move(done));
}

}  // namespace dcg::driver
