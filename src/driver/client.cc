#include "driver/client.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"

namespace dcg::driver {

namespace {
/// Recent-read-latency window sizing the hedge-delay quantile estimate.
constexpr size_t kLatencyRingCapacity = 64;
}  // namespace

MongoClient::MongoClient(sim::EventLoop* loop, sim::Rng rng,
                         proto::CommandBus* bus, net::HostId client_host,
                         ClientOptions options)
    : loop_(loop),
      rng_(std::move(rng)),
      bus_(bus),
      network_(bus->network()),
      client_host_(client_host),
      options_(options) {
  if (options_.enforce_mongodb_min_staleness &&
      options_.max_staleness_seconds >= 0) {
    DCG_CHECK_MSG(options_.max_staleness_seconds >= 90,
                  "MongoDB requires maxStalenessSeconds >= 90");
  }
  const std::vector<net::HostId>& hosts = bus_->server_hosts();
  DCG_CHECK_MSG(!hosts.empty(), "command bus has no registered servers");
  servers_.resize(hosts.size());
  for (size_t i = 0; i < hosts.size(); ++i) {
    servers_[i].host = hosts[i];
    // Seed RTT estimates from link base RTTs (first handshake).
    servers_[i].rtt_ewma = network_->BaseRtt(client_host_, hosts[i]);
    pools_.push_back(
        std::make_unique<pool::ConnectionPool>(loop_, options_.pool));
  }
  batchers_.resize(hosts.size());
  DCG_CHECK_MSG(options_.batch_max_ops >= 1, "batch_max_ops must be >= 1");
}

size_t MongoClient::buffered_op_count() const {
  size_t n = 0;
  for (const NodeBatcher& b : batchers_) n += b.buffered.size();
  return n;
}

void MongoClient::Start() {
  if (started_) return;
  started_ = true;
  for (ServerDescription& sd : servers_) sd.last_heard = loop_->Now();
  // No-op unless minPoolSize / maxIdleTime are configured, so the default
  // pool adds no events to a run.
  for (auto& pool : pools_) pool->StartMaintenance();
  HelloLoop();
  ProbeLoop();
  if (options_.max_staleness_seconds >= 0) StalenessLoop();
}

pool::ConnectionPool::Stats MongoClient::PoolTotals() const {
  pool::ConnectionPool::Stats totals;
  for (const auto& pool : pools_) {
    const pool::ConnectionPool::Stats& s = pool->stats();
    totals.checkouts += s.checkouts;
    totals.checkout_timeouts += s.checkout_timeouts;
    totals.established += s.established;
    totals.destroyed += s.destroyed;
    totals.clears += s.clears;
    totals.max_queue_depth =
        std::max(totals.max_queue_depth, s.max_queue_depth);
    totals.wait_total += s.wait_total;
  }
  return totals;
}

int MongoClient::PoolQueueDepth() const {
  int depth = 0;
  for (const auto& pool : pools_) depth += pool->queue_depth();
  return depth;
}

int MongoClient::PoolCheckedOut() const {
  int out = 0;
  for (const auto& pool : pools_) out += pool->checked_out();
  return out;
}

void MongoClient::HelloLoop() {
  const sim::Time now = loop_->Now();
  for (int i = 0; i < node_count(); ++i) {
    ServerDescription& sd = servers_[i];
    if (sd.reachable && now - sd.last_heard >= options_.hello_timeout) {
      // Nothing heard for a full timeout: declare the server down and
      // fail its outstanding attempts over (connection-pool clear).
      sd.reachable = false;
      AbortAttemptsOn(i);
    }
    proto::Command cmd;
    cmd.kind = proto::CommandKind::kHello;
    cmd.reply_to = client_host_;
    cmd.on_reply = [this](const proto::Reply& reply) {
      MarkHeard(reply.node_index);
      AdoptTopology(reply.hello);
    };
    bus_->Send(client_host_, sd.host, std::move(cmd));
  }
  loop_->ScheduleAfter(options_.hello_interval, [this] { HelloLoop(); });
}

void MongoClient::ProbeLoop() {
  for (int i = 0; i < node_count(); ++i) {
    PingNode(i, [this, i](bool ok, sim::Duration rtt) {
      if (!ok) return;  // probe lost; reachability is the hello loop's job
      MarkHeard(i);
      const double alpha = options_.rtt_ewma_alpha;
      servers_[i].rtt_ewma = static_cast<sim::Duration>(
          alpha * static_cast<double>(rtt) +
          (1.0 - alpha) * static_cast<double>(servers_[i].rtt_ewma));
    });
  }
  loop_->ScheduleAfter(options_.rtt_probe_interval, [this] { ProbeLoop(); });
}

void MongoClient::StalenessLoop() {
  ServerStatus([this](const proto::ServerStatusReply& reply) {
    for (size_t i = 0; i < reply.secondary_last_applied.size(); ++i) {
      const int node = reply.secondary_nodes[i];
      const repl::OpTime& sec = reply.secondary_last_applied[i];
      if (sec.seq >= reply.primary_last_applied.seq) {
        servers_[node].staleness_s = 0;
      } else {
        servers_[node].staleness_s =
            (reply.primary_last_applied.wall - sec.wall) / sim::kSecond;
      }
    }
  });
  loop_->ScheduleAfter(options_.staleness_refresh_interval,
                       [this] { StalenessLoop(); });
}

std::vector<int> MongoClient::EligibleSecondaries() {
  const int primary = believed_primary_;
  std::vector<int> eligible;
  sim::Duration min_rtt = std::numeric_limits<sim::Duration>::max();
  for (int i = 0; i < node_count(); ++i) {
    if (i == primary || !servers_[i].reachable) continue;
    min_rtt = std::min(min_rtt, servers_[i].rtt_ewma);
  }
  for (int i = 0; i < node_count(); ++i) {
    if (i == primary || !servers_[i].reachable) continue;
    if (servers_[i].rtt_ewma > min_rtt + options_.selection_latency_window) {
      continue;
    }
    if (options_.max_staleness_seconds >= 0 &&
        servers_[i].staleness_s > options_.max_staleness_seconds) {
      continue;
    }
    eligible.push_back(i);
  }
  return eligible;
}

int MongoClient::SelectNode(ReadPreference pref) {
  const int primary = believed_primary_;
  const bool primary_alive = primary >= 0 && servers_[primary].reachable;
  switch (pref) {
    case ReadPreference::kPrimary:
      return primary_alive ? primary : kNoNode;
    case ReadPreference::kPrimaryPreferred: {
      if (primary_alive) return primary;
      std::vector<int> eligible = EligibleSecondaries();
      if (eligible.empty()) return kNoNode;
      return eligible[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
    }
    case ReadPreference::kSecondary:
    case ReadPreference::kSecondaryPreferred: {
      std::vector<int> eligible = EligibleSecondaries();
      if (eligible.empty()) {
        // kSecondary with no eligible node is an error in MongoDB; like
        // secondaryPreferred we fall back to the primary so workloads keep
        // running (the maxStaleness ablation relies on this).
        return primary_alive ? primary : kNoNode;
      }
      return eligible[static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
    }
    case ReadPreference::kNearest: {
      int best = kNoNode;
      for (int i = 0; i < node_count(); ++i) {
        if (!servers_[i].reachable) continue;
        if (best < 0 || servers_[i].rtt_ewma < servers_[best].rtt_ewma) {
          best = i;
        }
      }
      return best;
    }
  }
  return primary_alive ? primary : kNoNode;
}

int MongoClient::SelectNodeExcluding(ReadPreference pref, int exclude) {
  if (exclude == kNoNode || pref == ReadPreference::kPrimary) {
    // kPrimary has no alternative server — re-selection re-resolves who
    // the primary is, which the topology refresh already moved.
    return SelectNode(pref);
  }
  if (pref == ReadPreference::kNearest) {
    int best = kNoNode;
    for (int i = 0; i < node_count(); ++i) {
      if (i == exclude || !servers_[i].reachable) continue;
      if (best < 0 || servers_[i].rtt_ewma < servers_[best].rtt_ewma) best = i;
    }
    return best != kNoNode ? best : SelectNode(pref);
  }
  const int primary = believed_primary_;
  const bool primary_alive = primary >= 0 && servers_[primary].reachable;
  if (pref == ReadPreference::kPrimaryPreferred && primary_alive &&
      primary != exclude) {
    return primary;
  }
  std::vector<int> eligible = EligibleSecondaries();
  eligible.erase(std::remove(eligible.begin(), eligible.end(), exclude),
                 eligible.end());
  if (!eligible.empty()) {
    return eligible[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))];
  }
  // No alternative exists; fall back to the normal rules (possibly the
  // same node — better than failing when it is the only one left).
  return SelectNode(pref);
}

void MongoClient::Read(ReadPreference pref, server::OpClass op_class,
                       proto::ReadBody body,
                       std::function<void(const ReadResult&)> done,
                       OpOptions opts) {
  ReadAfter(pref, repl::OpTime{}, op_class, std::move(body), std::move(done),
            opts);
}

void MongoClient::ReadAfter(ReadPreference pref, const repl::OpTime& after,
                            server::OpClass op_class, proto::ReadBody body,
                            std::function<void(const ReadResult&)> done,
                            OpOptions opts) {
  PendingOp op;
  op.is_read = true;
  op.pref = pref;
  op.op_class = op_class;
  op.read_body = std::move(body);
  op.after = after;
  op.read_done = std::move(done);
  BeginOp(std::move(op), opts);
}

void MongoClient::Find(ReadPreference pref, server::OpClass op_class,
                       std::shared_ptr<const proto::FindSpec> spec,
                       std::function<void(const ReadResult&)> done,
                       OpOptions opts) {
  PendingOp op;
  op.is_read = true;
  op.pref = pref;
  op.op_class = op_class;
  op.find_spec = std::move(spec);
  op.read_done = std::move(done);
  BeginOp(std::move(op), opts);
}

void MongoClient::Write(server::OpClass op_class, proto::TxnBody body,
                        std::function<void(const WriteResult&)> done,
                        repl::WriteConcern concern, OpOptions opts) {
  PendingOp op;
  op.is_read = false;
  op.pref = ReadPreference::kPrimary;
  op.op_class = op_class;
  op.txn_body = std::move(body);
  op.concern = concern;
  op.write_done = std::move(done);
  BeginOp(std::move(op), opts);
}

uint64_t MongoClient::BeginOp(PendingOp op, OpOptions opts) {
  const uint64_t op_id = next_op_id_++;
  op.start = loop_->Now();
  if (tracing()) op.op_span = tracer_->NewSpanId();
  op.max_retries =
      opts.max_retries == -2 ? options_.max_retries : opts.max_retries;
  op.hedge_eligible = opts.hedge_eligible;
  op.record_latency = opts.record_latency;
  op.route = std::move(opts.route);
  op.trace_override = opts.trace_id;
  op.parent_span_override = opts.parent_span;
  const sim::Duration deadline =
      opts.deadline < 0 ? options_.default_op_deadline : opts.deadline;
  if (deadline > 0) {
    op.deadline = op.start + deadline;
    op.deadline_timer =
        loop_->ScheduleAfter(deadline, [this, op_id] { OnDeadline(op_id); });
  }
  pending_[op_id] = std::move(op);
  StartAttempt(op_id);
  return op_id;
}

void MongoClient::StartAttempt(uint64_t op_id) {
  auto it = pending_.find(op_id);
  if (it == pending_.end()) return;
  PendingOp& op = it->second;
  op.backoff_timer = 0;
  int node = kNoNode;
  if (op.is_read) {
    node = SelectNodeExcluding(op.pref,
                               op.attempts_sent > 0 ? op.last_target : kNoNode);
  } else if (believed_primary_ >= 0 &&
             servers_[believed_primary_].reachable) {
    node = believed_primary_;
  }
  if (node == kNoNode) {
    // No selectable server right now (fail-over in progress): retry
    // server selection, as real drivers do. Selection waits do not burn
    // the retry budget — nothing was sent.
    op.backoff_timer =
        loop_->ScheduleAfter(options_.selection_retry_interval,
                             [this, op_id] { StartAttempt(op_id); });
    return;
  }
  op.target = node;
  ++op.attempts_sent;
  if (tracing()) {
    op.attempt_span = tracer_->NewSpanId();
    op.attempt_start = loop_->Now();
    op.checkout_start = loop_->Now();
  }
  if (options_.batching_enabled) {
    // The attempt parks in the node's coalescing buffer instead of
    // checking out its own connection; the flush path does both at once
    // for every buffered rider.
    EnqueueInBatch(op_id, node);
    return;
  }
  // Every attempt checks a connection out of the target node's pool
  // before it may touch the wire. With default pool options the checkout
  // completes synchronously (no queueing, no events), so the event
  // sequence matches the pre-pool driver exactly.
  const int attempt = op.attempts_sent;
  pools_[node]->CheckOut(
      [this, op_id, node, attempt](const pool::ConnectionPool::Checkout& co) {
        OnCheckout(op_id, node, attempt, co);
      });
}

void MongoClient::OnCheckout(uint64_t op_id, int node, int attempt,
                             const pool::ConnectionPool::Checkout& co) {
  auto it = pending_.find(op_id);
  if (it == pending_.end() || it->second.target != node ||
      it->second.attempts_sent != attempt) {
    // The op moved on while this checkout sat in the wait queue (completed
    // via a hedge, failed over, hit its deadline): the unused connection
    // goes straight back to the pool.
    if (co.ok) pools_[node]->CheckIn(co.conn_id);
    return;
  }
  PendingOp& op = it->second;
  if (tracing() && op.attempt_span != 0) {
    obs::SpanRecord span;
    span.trace_id = TraceId(op_id, op);
    span.span_id = tracer_->NewSpanId();
    span.parent_span_id = op.attempt_span;
    span.kind = obs::SpanKind::kCheckout;
    span.start = op.checkout_start;
    span.end = loop_->Now();
    span.node = node;
    span.attempt = attempt - 1;
    span.ok = co.ok;
    tracer_->Record(span);
  }
  if (!co.ok) {
    // waitQueueTimeoutMS fired: the pool is saturated. The failed
    // checkout burns one retry, so an exhausted pool cannot spin an op
    // forever — the retry budget / deadline still bound it.
    ++counters_.checkout_timeouts;
    RetryAttempt(op_id);
    return;
  }
  op.conn_id = co.conn_id;
  op.conn_node = node;
  op.checkout_wait += co.wait;
  ++counters_.checkouts;
  counters_.checkout_wait_total += co.wait;
  counters_.checkout_queue_peak = std::max(
      counters_.checkout_queue_peak, pools_[node]->stats().max_queue_depth);
  SendAttempt(op_id);
}

void MongoClient::SendAttempt(uint64_t op_id) {
  auto it = pending_.find(op_id);
  if (it == pending_.end()) return;
  PendingOp& op = it->second;
  const int node = op.target;

  proto::Command cmd;
  cmd.kind = op.is_read ? proto::CommandKind::kFind : proto::CommandKind::kWrite;
  cmd.ctx.op_id = op_id;
  cmd.ctx.deadline = op.deadline;
  cmd.ctx.after_cluster_time = op.after;
  cmd.ctx.attempt = op.attempts_sent - 1;
  cmd.ctx.conn_id = op.conn_id;
  cmd.ctx.checkout_wait = op.checkout_wait;
  cmd.ctx.trace_id = op.trace_override;
  if (tracing()) {
    cmd.ctx.parent_span = op.attempt_span;
    cmd.ctx.sent_at = loop_->Now();
  }
  cmd.op_class = op.op_class;
  cmd.require_primary = !op.is_read || op.pref == ReadPreference::kPrimary;
  cmd.read_body = op.read_body;  // copies: the op outlives any one attempt
  cmd.find_spec = op.find_spec;
  cmd.route = op.route;
  cmd.txn_body = op.txn_body;
  cmd.concern = op.concern;
  cmd.reply_to = client_host_;
  cmd.on_reply = [this, op_id](const proto::Reply& r) { OnReply(op_id, r); };
  bus_->Send(client_host_, servers_[node].host, std::move(cmd));

  if (options_.attempt_timeout > 0) {
    op.attempt_timer = loop_->ScheduleAfter(
        options_.attempt_timeout, [this, op_id] { OnAttemptTimeout(op_id); });
  }
  if (op.is_read && options_.hedged_reads && op.hedge_eligible &&
      op.pref != ReadPreference::kPrimary && op.attempts_sent == 1) {
    op.hedge_timer = loop_->ScheduleAfter(HedgeDelay(),
                                          [this, op_id] { OnHedgeTimer(op_id); });
  }
}

void MongoClient::EnqueueInBatch(uint64_t op_id, int node) {
  PendingOp& op = pending_.find(op_id)->second;
  op.buffered = true;
  NodeBatcher& batcher = batchers_[node];
  if (batcher.buffered.empty()) batcher.first_enqueue = loop_->Now();
  batcher.buffered.push_back(op_id);
  // Size trigger, plus the deadline escape hatch: an op that cannot
  // afford the flush delay forces the buffer out now, so batching never
  // pushes a tight maxTimeMS over its deadline while parked client-side.
  const bool full = static_cast<int>(batcher.buffered.size()) >=
                    options_.batch_max_ops;
  const bool deadline_imminent =
      op.deadline != 0 && op.deadline - loop_->Now() <= options_.batch_max_delay;
  if (full || deadline_imminent) {
    FlushBatch(node);
    return;
  }
  if (batcher.flush_timer == 0) {
    batcher.flush_timer =
        loop_->ScheduleAfter(options_.batch_max_delay, [this, node] {
          batchers_[node].flush_timer = 0;
          FlushBatch(node);
        });
  }
}

void MongoClient::RemoveFromBatch(uint64_t op_id, int node) {
  NodeBatcher& batcher = batchers_[node];
  batcher.buffered.erase(
      std::remove(batcher.buffered.begin(), batcher.buffered.end(), op_id),
      batcher.buffered.end());
  if (batcher.buffered.empty() && batcher.flush_timer != 0) {
    loop_->Cancel(batcher.flush_timer);
    batcher.flush_timer = 0;
    batcher.first_enqueue = 0;
  }
}

void MongoClient::FlushBatch(int node) {
  NodeBatcher& batcher = batchers_[node];
  if (batcher.flush_timer != 0) {
    loop_->Cancel(batcher.flush_timer);
    batcher.flush_timer = 0;
  }
  if (batcher.buffered.empty()) return;
  std::vector<BatchEntry> batch;
  batch.reserve(batcher.buffered.size());
  for (uint64_t id : batcher.buffered) {
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;
    batch.push_back({id, it->second.attempts_sent});
  }
  batcher.buffered.clear();
  const sim::Time flush_start = batcher.first_enqueue;
  batcher.first_enqueue = 0;
  if (batch.empty()) return;
  // One checkout for the whole envelope. While it sits in a constrained
  // pool's wait queue, new attempts keep coalescing into the (now empty)
  // buffer and later flushes queue their own checkouts behind this one.
  pools_[node]->CheckOut(
      [this, node, batch = std::move(batch),
       flush_start](const pool::ConnectionPool::Checkout& co) mutable {
        OnEnvelopeCheckout(node, std::move(batch), flush_start, co);
      });
}

void MongoClient::OnEnvelopeCheckout(int node, std::vector<BatchEntry> batch,
                                     sim::Time flush_start,
                                     const pool::ConnectionPool::Checkout& co) {
  // Drop riders whose op moved on while the checkout queued (completed
  // via a hedge, failed over, hit its deadline) — same supersession rule
  // as the singleton OnCheckout, applied per member.
  std::vector<uint64_t> live;
  live.reserve(batch.size());
  for (const BatchEntry& entry : batch) {
    auto it = pending_.find(entry.op_id);
    if (it == pending_.end()) continue;
    const PendingOp& op = it->second;
    if (!op.buffered || op.target != node ||
        op.attempts_sent != entry.attempt) {
      continue;
    }
    live.push_back(entry.op_id);
  }
  if (!co.ok) {
    // waitQueueTimeoutMS fired on the shared checkout: one pool-timeout
    // event, but every rider burns a retry — an exhausted pool bounds
    // batched ops exactly like unbatched ones.
    ++counters_.checkout_timeouts;
    for (uint64_t id : live) RetryAttempt(id);
    return;
  }
  if (live.empty()) {
    pools_[node]->CheckIn(co.conn_id);
    return;
  }

  const uint64_t envelope_id = next_envelope_id_++;
  InflightEnvelope& env = envelopes_[envelope_id];
  env.node = node;
  env.conn_id = co.conn_id;
  env.outstanding = static_cast<int>(live.size());
  ++counters_.checkouts;
  counters_.checkout_wait_total += co.wait;
  counters_.checkout_queue_peak = std::max(
      counters_.checkout_queue_peak, pools_[node]->stats().max_queue_depth);
  ++counters_.envelopes_sent;
  counters_.ops_batched += live.size();
  batch_occupancy_.Add(static_cast<double>(live.size()));

  proto::Envelope envelope;
  envelope.commands.reserve(live.size());
  for (uint64_t id : live) {
    PendingOp& op = pending_.find(id)->second;
    op.buffered = false;
    op.envelope_id = envelope_id;
    op.checkout_wait += co.wait;
    proto::Command cmd;
    cmd.kind =
        op.is_read ? proto::CommandKind::kFind : proto::CommandKind::kWrite;
    cmd.ctx.op_id = id;
    cmd.ctx.deadline = op.deadline;
    cmd.ctx.after_cluster_time = op.after;
    cmd.ctx.attempt = op.attempts_sent - 1;
    cmd.ctx.conn_id = co.conn_id;
    cmd.ctx.checkout_wait = op.checkout_wait;
    cmd.ctx.trace_id = op.trace_override;
    if (tracing()) {
      cmd.ctx.parent_span = op.attempt_span;
      cmd.ctx.sent_at = loop_->Now();
    }
    cmd.op_class = op.op_class;
    cmd.require_primary = !op.is_read || op.pref == ReadPreference::kPrimary;
    cmd.read_body = op.read_body;
    cmd.find_spec = op.find_spec;
    cmd.route = op.route;
    cmd.txn_body = op.txn_body;
    cmd.concern = op.concern;
    cmd.reply_to = client_host_;
    cmd.on_reply = [this, id](const proto::Reply& r) { OnReply(id, r); };
    envelope.commands.push_back(std::move(cmd));
    // Each rider keeps its own attempt/hedge timers: the envelope shares
    // a connection, not a deadline.
    if (options_.attempt_timeout > 0) {
      op.attempt_timer = loop_->ScheduleAfter(
          options_.attempt_timeout, [this, id] { OnAttemptTimeout(id); });
    }
    if (op.is_read && options_.hedged_reads && op.hedge_eligible &&
        op.pref != ReadPreference::kPrimary && op.attempts_sent == 1) {
      op.hedge_timer = loop_->ScheduleAfter(HedgeDelay(),
                                            [this, id] { OnHedgeTimer(id); });
    }
  }
  if (tracing()) {
    // One envelope span against the first rider's trace: buffer wait +
    // shared checkout, enqueue → wire send. The first survivor may have
    // enqueued after the (since-departed) op that opened the buffer, so
    // clamp the start inside its attempt span.
    const PendingOp& first = pending_.find(live.front())->second;
    if (first.attempt_span != 0) {
      obs::SpanRecord span;
      span.trace_id = TraceId(live.front(), first);
      span.span_id = tracer_->NewSpanId();
      span.parent_span_id = first.attempt_span;
      span.kind = obs::SpanKind::kEnvelope;
      span.start = std::max(flush_start, first.attempt_start);
      span.end = loop_->Now();
      span.node = node;
      span.attempt = static_cast<int>(live.size());  // batch occupancy
      tracer_->Record(span);
    }
  }
  bus_->SendEnvelope(client_host_, servers_[node].host, std::move(envelope));
}

void MongoClient::DetachFromEnvelope(PendingOp* op, uint64_t healthy_conn) {
  if (op->envelope_id == 0) return;
  auto it = envelopes_.find(op->envelope_id);
  op->envelope_id = 0;
  if (it == envelopes_.end()) return;
  InflightEnvelope& env = it->second;
  // A rider that never got its reply on the shared socket (timeout, won
  // via hedge, failed) leaves its state unknown — same rule as the
  // singleton ReleaseOpConnections, but the verdict is collective.
  if (healthy_conn != env.conn_id) env.healthy = false;
  if (--env.outstanding > 0) return;
  if (env.healthy) {
    pools_[env.node]->CheckIn(env.conn_id);
  } else {
    pools_[env.node]->Discard(env.conn_id);
  }
  envelopes_.erase(it);
}

uint64_t MongoClient::EnvelopeConn(const PendingOp& op) const {
  if (op.envelope_id == 0) return 0;
  auto it = envelopes_.find(op.envelope_id);
  return it == envelopes_.end() ? 0 : it->second.conn_id;
}

void MongoClient::OnReply(uint64_t op_id, const proto::Reply& reply) {
  // Every reply is traffic: it proves the server reachable and carries a
  // hello piggyback refreshing the topology view.
  MarkHeard(reply.node_index);
  AdoptTopology(reply.hello);
  auto it = pending_.find(op_id);
  if (it == pending_.end()) return;  // hedge loser / superseded attempt
  PendingOp& op = it->second;
  if (tracing() && reply.conn_id != 0 &&
      (reply.conn_id == op.conn_id || reply.conn_id == op.hedge_conn_id ||
       reply.conn_id == EnvelopeConn(op))) {
    // Reply wire transit, parented under whichever arm the reply rode.
    // Replies from superseded attempts are skipped — their arm's span is
    // already closed. The pool can recycle a conn id to a later attempt,
    // so additionally require the server's send instant to fall inside
    // the current arm (a genuine reply always starts after its arm did).
    const bool rode_hedge =
        reply.conn_id == op.hedge_conn_id && op.hedge_span != 0;
    const uint64_t parent = rode_hedge ? op.hedge_span : op.attempt_span;
    const sim::Time arm_start = rode_hedge ? op.hedge_start : op.attempt_start;
    if (parent != 0 && reply.sent_at >= arm_start) {
      obs::SpanRecord span;
      span.trace_id = TraceId(op_id, op);
      span.span_id = tracer_->NewSpanId();
      span.parent_span_id = parent;
      span.kind = obs::SpanKind::kWire;
      span.start = reply.sent_at;
      span.end = loop_->Now();
      span.node = reply.node_index;
      span.attempt = std::max(0, op.attempts_sent - 1);
      span.is_hedge = reply.is_hedge;
      tracer_->Record(span);
    }
  }
  if (reply.status == proto::ReplyStatus::kNotPrimary) {
    // Only the outstanding attempt's error triggers a retry; errors from
    // already-superseded attempts were handled when they were abandoned.
    if (!reply.is_hedge && reply.node_index == op.target) {
      // The connection answered — the socket is healthy even though the
      // command failed, so it is reusable (unlike a timed-out attempt).
      if (reply.conn_id != 0 && reply.conn_id == op.conn_id) {
        pools_[op.conn_node]->CheckIn(op.conn_id);
        op.conn_id = 0;
        op.conn_node = kNoNode;
      }
      // An enveloped rider's reply rode the shared connection; this
      // rider's verdict on it is healthy.
      DetachFromEnvelope(&op, reply.conn_id);
      RetryAttempt(op_id);
    }
    return;
  }
  if (reply.status == proto::ReplyStatus::kStaleConfig) {
    // The shard rejected our chunk version before running anything.
    // Retrying the same route would fail identically — surface the error
    // so the caller (a router) refreshes its chunk map and re-issues.
    if (!reply.is_hedge && reply.node_index == op.target) {
      if (reply.conn_id != 0 && reply.conn_id == op.conn_id) {
        // The socket answered; it is healthy and reusable.
        pools_[op.conn_node]->CheckIn(op.conn_id);
        op.conn_id = 0;
        op.conn_node = kNoNode;
      }
      DetachFromEnvelope(&op, reply.conn_id);
      FailOp(op_id, /*timed_out=*/false, /*stale_config=*/true);
    }
    return;
  }
  CompleteOp(op_id, reply);
}

void MongoClient::OnAttemptTimeout(uint64_t op_id) {
  auto it = pending_.find(op_id);
  if (it == pending_.end()) return;
  it->second.attempt_timer = 0;
  RetryAttempt(op_id);
}

void MongoClient::OnDeadline(uint64_t op_id) {
  auto it = pending_.find(op_id);
  if (it == pending_.end()) return;
  it->second.deadline_timer = 0;
  FailOp(op_id, /*timed_out=*/true);
}

void MongoClient::OnHedgeTimer(uint64_t op_id) {
  auto it = pending_.find(op_id);
  if (it == pending_.end()) return;
  PendingOp& op = it->second;
  op.hedge_timer = 0;
  // Next-best eligible secondary by RTT, avoiding the outstanding
  // attempt's node. Deterministic — hedging must not perturb the main
  // path's random draw sequence.
  int target = kNoNode;
  for (int i : EligibleSecondaries()) {
    if (i == op.target) continue;
    if (target == kNoNode || servers_[i].rtt_ewma < servers_[target].rtt_ewma) {
      target = i;
    }
  }
  if (target == kNoNode) return;  // nobody to hedge to
  if (tracing()) {
    op.hedge_span = tracer_->NewSpanId();
    op.hedge_start = loop_->Now();
  }
  // Hedges check out of the hedge node's pool like any other attempt.
  const int attempt = op.attempts_sent;
  pools_[target]->CheckOut([this, op_id, target, attempt](
                               const pool::ConnectionPool::Checkout& co) {
    OnHedgeCheckout(op_id, target, attempt, co);
  });
}

void MongoClient::OnHedgeCheckout(uint64_t op_id, int node, int attempt,
                                  const pool::ConnectionPool::Checkout& co) {
  auto it = pending_.find(op_id);
  if (it == pending_.end() || it->second.attempts_sent != attempt ||
      it->second.hedge_conn_id != 0) {
    // Op finished or retried while the checkout queued: hedge abandoned.
    if (co.ok) pools_[node]->CheckIn(co.conn_id);
    return;
  }
  PendingOp& op = it->second;
  if (tracing() && op.hedge_span != 0) {
    obs::SpanRecord span;
    span.trace_id = TraceId(op_id, op);
    span.span_id = tracer_->NewSpanId();
    span.parent_span_id = op.hedge_span;
    span.kind = obs::SpanKind::kCheckout;
    span.start = op.hedge_start;
    span.end = loop_->Now();
    span.node = node;
    span.attempt = attempt - 1;
    span.is_hedge = true;
    span.ok = co.ok;
    tracer_->Record(span);
  }
  if (!co.ok) {
    // Saturated hedge-node pool: skip the hedge rather than burn the
    // main attempt's retry budget on speculative traffic.
    ++counters_.checkout_timeouts;
    if (op.hedge_span != 0) {
      // The arm dies here — close its span so the checkout child above
      // still has a recorded parent.
      obs::SpanRecord span;
      span.trace_id = TraceId(op_id, op);
      span.span_id = op.hedge_span;
      span.parent_span_id = op.op_span;
      span.kind = obs::SpanKind::kHedge;
      span.start = op.hedge_start;
      span.end = loop_->Now();
      span.node = node;
      span.attempt = attempt - 1;
      span.is_hedge = true;
      span.ok = false;
      tracer_->Record(span);
      op.hedge_span = 0;
    }
    return;
  }
  op.hedge_conn_id = co.conn_id;
  op.hedge_node = node;
  op.hedged = true;
  ++counters_.hedges_sent;
  ++counters_.checkouts;
  counters_.checkout_wait_total += co.wait;
  proto::Command cmd;
  cmd.kind = proto::CommandKind::kFind;
  cmd.ctx.op_id = op_id;
  cmd.ctx.deadline = op.deadline;
  cmd.ctx.after_cluster_time = op.after;
  cmd.ctx.attempt = op.attempts_sent - 1;
  cmd.ctx.is_hedge = true;
  cmd.ctx.conn_id = co.conn_id;
  cmd.ctx.checkout_wait = co.wait;
  cmd.ctx.trace_id = op.trace_override;
  if (tracing()) {
    cmd.ctx.parent_span = op.hedge_span;
    cmd.ctx.sent_at = loop_->Now();
  }
  cmd.op_class = op.op_class;
  cmd.read_body = op.read_body;
  cmd.find_spec = op.find_spec;
  cmd.route = op.route;
  cmd.reply_to = client_host_;
  cmd.on_reply = [this, op_id](const proto::Reply& r) { OnReply(op_id, r); };
  bus_->Send(client_host_, servers_[node].host, std::move(cmd));
}

void MongoClient::RetryAttempt(uint64_t op_id) {
  auto it = pending_.find(op_id);
  if (it == pending_.end()) return;
  PendingOp& op = it->second;
  if (op.attempt_timer != 0) {
    loop_->Cancel(op.attempt_timer);
    op.attempt_timer = 0;
  }
  if (op.conn_id != 0) {
    // The abandoned attempt's reply may still arrive after we stop
    // listening — the socket is desynchronised, so destroy it (real
    // drivers close the connection on a command timeout).
    pools_[op.conn_node]->Discard(op.conn_id);
    op.conn_id = 0;
    op.conn_node = kNoNode;
  }
  if (op.buffered) {
    // Never flushed (node died / deadline raced the buffer): leave the
    // batch before retargeting so the envelope cannot ship a stale rider.
    if (op.target != kNoNode) RemoveFromBatch(op_id, op.target);
    op.buffered = false;
  }
  // Abandoning an enveloped attempt taints the shared connection.
  DetachFromEnvelope(&op, /*healthy_conn=*/0);
  if (tracing() && op.attempt_span != 0) {
    // The attempt is abandoned here; the next one opens its own span.
    obs::SpanRecord span;
    span.trace_id = TraceId(op_id, op);
    span.span_id = op.attempt_span;
    span.parent_span_id = op.op_span;
    span.kind = obs::SpanKind::kAttempt;
    span.start = op.attempt_start;
    span.end = loop_->Now();
    span.node = op.target;
    span.attempt = op.attempts_sent - 1;
    span.ok = false;
    tracer_->Record(span);
    op.attempt_span = 0;
  }
  op.last_target = op.target;
  op.target = kNoNode;
  if (op.max_retries >= 0 && op.attempts_sent > op.max_retries) {
    FailOp(op_id, /*timed_out=*/false);
    return;
  }
  // Bounded exponential backoff; no jitter, so same-seed traces stay
  // bit-identical.
  sim::Duration backoff = options_.retry_backoff_base;
  for (int i = 1; i < op.attempts_sent && backoff < options_.retry_backoff_max;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, options_.retry_backoff_max);
  op.backoff_timer =
      loop_->ScheduleAfter(backoff, [this, op_id] { StartAttempt(op_id); });
}

void MongoClient::CloseOpSpans(const PendingOp& op, uint64_t op_id, bool ok,
                               const proto::Reply* reply) {
  if (!tracing() || op.op_span == 0) return;
  const sim::Time now = loop_->Now();
  const bool hedge_won = reply != nullptr && reply->is_hedge;
  const int attempt = std::max(0, op.attempts_sent - 1);
  if (op.attempt_span != 0) {
    obs::SpanRecord span;
    span.trace_id = TraceId(op_id, op);
    span.span_id = op.attempt_span;
    span.parent_span_id = op.op_span;
    span.kind = obs::SpanKind::kAttempt;
    span.start = op.attempt_start;
    span.end = now;
    span.node = op.target;
    span.attempt = attempt;
    span.ok = ok && !hedge_won;
    tracer_->Record(span);
  }
  if (op.hedge_span != 0) {
    obs::SpanRecord span;
    span.trace_id = TraceId(op_id, op);
    span.span_id = op.hedge_span;
    span.parent_span_id = op.op_span;
    span.kind = obs::SpanKind::kHedge;
    span.start = op.hedge_start;
    span.end = now;
    span.node = op.hedge_node;
    span.attempt = attempt;
    span.is_hedge = true;
    span.ok = ok && hedge_won;
    tracer_->Record(span);
  }
  obs::SpanRecord span;
  span.trace_id = TraceId(op_id, op);
  span.span_id = op.op_span;
  span.parent_span_id = op.parent_span_override;
  span.kind = obs::SpanKind::kOp;
  span.start = op.start;
  span.end = now;
  span.node = reply != nullptr ? reply->node_index : op.target;
  span.attempt = attempt;
  span.ok = ok;
  tracer_->Record(span);
}

void MongoClient::CompleteOp(uint64_t op_id, const proto::Reply& reply) {
  auto it = pending_.find(op_id);
  if (it == pending_.end()) return;
  PendingOp op = std::move(it->second);
  pending_.erase(it);
  CancelOpTimers(&op);
  CloseOpSpans(op, op_id, /*ok=*/true, &reply);
  ReleaseOpConnections(&op, reply.conn_id);
  DetachFromEnvelope(&op, reply.conn_id);
  const sim::Duration latency = loop_->Now() - op.start;
  const int retries = std::max(0, op.attempts_sent - 1);
  ++counters_.ok;
  if (retries > 0) {
    ++counters_.retried;
    counters_.retries_total += static_cast<uint64_t>(retries);
  }
  if (reply.is_hedge) ++counters_.hedges_won;
  if (op.is_read) RecordReadLatency(latency);

  OpStats stats;
  stats.is_read = op.is_read;
  stats.requested = op.pref;
  stats.latency = latency;
  stats.ok = true;
  stats.retries = retries;
  stats.hedged = op.hedged;
  stats.hedge_won = reply.is_hedge;
  stats.node = reply.node_index;
  stats.used_secondary = !reply.from_primary;
  stats.record_latency = op.record_latency;
  stats.checkout_wait = op.checkout_wait;
  for (const OpObserver& o : observers_) o(stats);

  if (op.is_read) {
    ReadResult result;
    result.latency = latency;
    result.requested = op.pref;
    result.node = reply.node_index;
    result.used_secondary = !reply.from_primary;
    result.operation_time = reply.operation_time;
    result.ok = true;
    result.find = reply.find_result;
    result.retries = retries;
    result.hedged = op.hedged;
    result.hedge_won = reply.is_hedge;
    result.checkout_wait = op.checkout_wait;
    if (op.read_done) op.read_done(result);
  } else {
    WriteResult result;
    result.latency = latency;
    result.committed = reply.committed;
    result.operation_time = reply.operation_time;
    result.ok = true;
    result.retries = retries;
    result.checkout_wait = op.checkout_wait;
    if (op.write_done) op.write_done(result);
  }
}

void MongoClient::FailOp(uint64_t op_id, bool timed_out, bool stale_config) {
  auto it = pending_.find(op_id);
  if (it == pending_.end()) return;
  PendingOp op = std::move(it->second);
  pending_.erase(it);
  CancelOpTimers(&op);
  CloseOpSpans(op, op_id, /*ok=*/false, nullptr);
  ReleaseOpConnections(&op, /*healthy_conn=*/0);
  if (op.buffered && op.target != kNoNode) RemoveFromBatch(op_id, op.target);
  DetachFromEnvelope(&op, /*healthy_conn=*/0);
  const sim::Duration latency = loop_->Now() - op.start;
  const int retries = std::max(0, op.attempts_sent - 1);
  if (timed_out) ++counters_.timed_out;
  if (stale_config) ++counters_.stale_config;
  if (retries > 0) {
    ++counters_.retried;
    counters_.retries_total += static_cast<uint64_t>(retries);
  }

  OpStats stats;
  stats.is_read = op.is_read;
  stats.requested = op.pref;
  stats.latency = latency;
  stats.ok = false;
  stats.timed_out = timed_out;
  stats.stale_config = stale_config;
  stats.retries = retries;
  stats.hedged = op.hedged;
  stats.node = op.target;
  stats.record_latency = op.record_latency;
  stats.checkout_wait = op.checkout_wait;
  for (const OpObserver& o : observers_) o(stats);

  if (op.is_read) {
    ReadResult result;
    result.latency = latency;
    result.requested = op.pref;
    result.node = op.target;
    result.ok = false;
    result.timed_out = timed_out;
    result.stale_config = stale_config;
    result.retries = retries;
    result.hedged = op.hedged;
    result.checkout_wait = op.checkout_wait;
    if (op.read_done) op.read_done(result);
  } else {
    WriteResult result;
    result.latency = latency;
    result.committed = false;
    result.ok = false;
    result.timed_out = timed_out;
    result.stale_config = stale_config;
    result.retries = retries;
    result.checkout_wait = op.checkout_wait;
    if (op.write_done) op.write_done(result);
  }
}

void MongoClient::CancelOpTimers(PendingOp* op) {
  if (op->attempt_timer != 0) {
    loop_->Cancel(op->attempt_timer);
    op->attempt_timer = 0;
  }
  if (op->deadline_timer != 0) {
    loop_->Cancel(op->deadline_timer);
    op->deadline_timer = 0;
  }
  if (op->backoff_timer != 0) {
    loop_->Cancel(op->backoff_timer);
    op->backoff_timer = 0;
  }
  if (op->hedge_timer != 0) {
    loop_->Cancel(op->hedge_timer);
    op->hedge_timer = 0;
  }
}

void MongoClient::ReleaseOpConnections(PendingOp* op, uint64_t healthy_conn) {
  if (op->conn_id != 0) {
    if (op->conn_id == healthy_conn) {
      pools_[op->conn_node]->CheckIn(op->conn_id);
    } else {
      // No reply ever arrived on it (op won via hedge / failed / timed
      // out): the socket state is unknown, so it cannot be reused.
      pools_[op->conn_node]->Discard(op->conn_id);
    }
    op->conn_id = 0;
    op->conn_node = kNoNode;
  }
  if (op->hedge_conn_id != 0) {
    if (op->hedge_conn_id == healthy_conn) {
      pools_[op->hedge_node]->CheckIn(op->hedge_conn_id);
    } else {
      pools_[op->hedge_node]->Discard(op->hedge_conn_id);
    }
    op->hedge_conn_id = 0;
    op->hedge_node = kNoNode;
  }
}

void MongoClient::AbortAttemptsOn(int node) {
  // Driver-spec pool.clear() on server-down: the generation bump ensures
  // no later checkout reuses a socket that was open to the failed server.
  pools_[node]->Clear();
  std::vector<uint64_t> affected;
  for (auto& [op_id, op] : pending_) {
    if (op.hedge_conn_id != 0 && op.hedge_node == node) {
      // Hedge outstanding against the dead node: drop its connection but
      // leave the op alone — the main attempt may still answer.
      pools_[node]->Discard(op.hedge_conn_id);
      op.hedge_conn_id = 0;
      op.hedge_node = kNoNode;
    }
    if (op.target == node) affected.push_back(op_id);
  }
  // RetryAttempt may erase ops (budget spent) and their callbacks may
  // start new ones — mutate only after the scan.
  for (uint64_t op_id : affected) RetryAttempt(op_id);
}

void MongoClient::AdoptTopology(const proto::HelloReply& hello) {
  if (hello.term < believed_term_) return;  // stale view
  // Within the known term, "no primary" (an election in flight somewhere)
  // never displaces a concrete primary belief — only a newer term or a
  // different concrete primary does. This keeps a brief catch-up window
  // from blinding the driver to a primary it can still talk to.
  if (hello.term == believed_term_ &&
      (hello.primary_index < 0 || hello.primary_index == believed_primary_)) {
    return;
  }
  const int old_primary = believed_primary_;
  believed_term_ = hello.term;
  believed_primary_ = hello.primary_index;
  // Primary moved: the old primary's pooled connections are pinned to a
  // deposed mongod — clear them (generation bump) so no checkout hands
  // out a stale connection to a node that will reject the write.
  if (old_primary >= 0 && believed_primary_ >= 0 &&
      believed_primary_ != old_primary) {
    ++stepdown_pool_clears_;
    ClearPool(old_primary);
  }
}

void MongoClient::MarkHeard(int node) {
  if (node < 0 || node >= node_count()) return;
  servers_[node].last_heard = loop_->Now();
  servers_[node].reachable = true;
}

sim::Duration MongoClient::HedgeDelay() const {
  if (read_latency_ring_.empty()) return options_.hedge_min_delay;
  std::vector<sim::Duration> sorted = read_latency_ring_;
  std::sort(sorted.begin(), sorted.end());
  const double q = std::clamp(options_.hedge_quantile, 0.0, 1.0);
  const size_t idx =
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return std::max(options_.hedge_min_delay, sorted[idx]);
}

void MongoClient::RecordReadLatency(sim::Duration latency) {
  if (!options_.hedged_reads) return;  // ring only feeds the hedge delay
  if (read_latency_ring_.size() < kLatencyRingCapacity) {
    read_latency_ring_.push_back(latency);
    return;
  }
  read_latency_ring_[read_latency_next_] = latency;
  read_latency_next_ = (read_latency_next_ + 1) % kLatencyRingCapacity;
}

void MongoClient::ServerStatus(
    std::function<void(const proto::ServerStatusReply&)> done) {
  const int primary = believed_primary_;
  if (primary < 0 || !servers_[primary].reachable) {
    loop_->ScheduleAfter(options_.selection_retry_interval,
                         [this, done = std::move(done)]() mutable {
                           ServerStatus(std::move(done));
                         });
    return;
  }
  proto::Command cmd;
  cmd.kind = proto::CommandKind::kServerStatus;
  cmd.op_class = server::OpClass::kServerStatus;
  cmd.require_primary = true;
  cmd.reply_to = client_host_;
  cmd.on_reply = [this, done](const proto::Reply& reply) {
    MarkHeard(reply.node_index);
    AdoptTopology(reply.hello);
    if (reply.status == proto::ReplyStatus::kNotPrimary) {
      // Stale primary view; the piggybacked hello just corrected it.
      loop_->ScheduleAfter(options_.selection_retry_interval,
                           [this, done] { ServerStatus(done); });
      return;
    }
    done(reply.server_status);
  };
  bus_->Send(client_host_, servers_[primary].host, std::move(cmd));
}

void MongoClient::PingNode(int node,
                           std::function<void(bool, sim::Duration)> done) {
  // A wire-protocol ping, not a network-layer one: a crashed mongod's
  // host still carries packets, but its command service answers nothing,
  // so only a served kPing counts as the node being up. The client-side
  // timer keeps the exactly-one-callback contract when the command (or
  // its reply) is silently lost.
  const sim::Time start = loop_->Now();
  auto settled = std::make_shared<bool>(false);
  auto cb =
      std::make_shared<std::function<void(bool, sim::Duration)>>(
          std::move(done));
  const sim::EventId timer =
      loop_->ScheduleAfter(options_.ping_timeout, [settled, cb] {
        if (*settled) return;
        *settled = true;
        (*cb)(false, 0);
      });
  proto::Command cmd;
  cmd.kind = proto::CommandKind::kPing;
  cmd.reply_to = client_host_;
  cmd.on_reply = [this, start, settled, cb, timer](const proto::Reply&) {
    if (*settled) return;
    *settled = true;
    loop_->Cancel(timer);
    (*cb)(true, loop_->Now() - start);
  };
  bus_->Send(client_host_, servers_[node].host, std::move(cmd));
}

}  // namespace dcg::driver
