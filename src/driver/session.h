#ifndef DCG_DRIVER_SESSION_H_
#define DCG_DRIVER_SESSION_H_

#include <functional>

#include "driver/client.h"

namespace dcg::driver {

/// A causally consistent client session (MongoDB's causal consistency,
/// which the paper points to in §1 for clients that need
/// read-your-own-writes on top of per-read routing).
///
/// The session tracks the highest operationTime it has seen; every read
/// issued through it carries that time as afterClusterTime, so a
/// secondary serving the read first waits until it has replicated the
/// session's writes. Routing freedom (primary vs secondary) is preserved;
/// only the visibility floor moves.
class CausalSession {
 public:
  explicit CausalSession(MongoClient* client) : client_(client) {}

  CausalSession(const CausalSession&) = delete;
  CausalSession& operator=(const CausalSession&) = delete;

  /// Read with the session's causal token: the serving node blocks until
  /// it has applied everything this session has seen. Retried attempts
  /// re-send the same token, so the causal floor survives re-selection.
  void Read(ReadPreference pref, server::OpClass op_class,
            proto::ReadBody body,
            std::function<void(const MongoClient::ReadResult&)> done,
            OpOptions opts = {});

  /// Write through the session; advances the causal token to the commit
  /// point on acknowledgement.
  void Write(server::OpClass op_class, proto::TxnBody body,
             std::function<void(const MongoClient::WriteResult&)> done,
             repl::WriteConcern concern = repl::WriteConcern::kW1,
             OpOptions opts = {});

  /// The highest operationTime observed by this session.
  const repl::OpTime& operation_time() const { return operation_time_; }

 private:
  void Advance(const repl::OpTime& t) {
    if (operation_time_ < t) operation_time_ = t;
  }

  MongoClient* client_;
  repl::OpTime operation_time_;
};

}  // namespace dcg::driver

#endif  // DCG_DRIVER_SESSION_H_
