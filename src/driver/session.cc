#include "driver/session.h"

#include <utility>

namespace dcg::driver {

void CausalSession::Read(
    ReadPreference pref, server::OpClass op_class, proto::ReadBody body,
    std::function<void(const MongoClient::ReadResult&)> done, OpOptions opts) {
  client_->ReadAfter(
      pref, operation_time_, op_class, std::move(body),
      [this, done = std::move(done)](const MongoClient::ReadResult& r) {
        if (r.ok) Advance(r.operation_time);
        if (done) done(r);
      },
      opts);
}

void CausalSession::Write(
    server::OpClass op_class, proto::TxnBody body,
    std::function<void(const MongoClient::WriteResult&)> done,
    repl::WriteConcern concern, OpOptions opts) {
  client_->Write(
      op_class, std::move(body),
      [this, done = std::move(done)](const MongoClient::WriteResult& r) {
        if (r.ok) Advance(r.operation_time);
        if (done) done(r);
      },
      concern, opts);
}

}  // namespace dcg::driver
