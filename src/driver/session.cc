#include "driver/session.h"

#include <utility>

namespace dcg::driver {

void CausalSession::Read(
    ReadPreference pref, server::OpClass op_class,
    repl::ReplicaSet::ReadBody body,
    std::function<void(const MongoClient::ReadResult&)> done) {
  client_->ReadAfter(
      pref, operation_time_, op_class, std::move(body),
      [this, done = std::move(done)](const MongoClient::ReadResult& r) {
        Advance(r.operation_time);
        if (done) done(r);
      });
}

void CausalSession::Write(
    server::OpClass op_class, repl::ReplicaSet::TxnBody body,
    std::function<void(const MongoClient::WriteResult&)> done,
    repl::WriteConcern concern) {
  client_->Write(
      op_class, std::move(body),
      [this, done = std::move(done)](const MongoClient::WriteResult& r) {
        Advance(r.operation_time);
        if (done) done(r);
      },
      concern);
}

}  // namespace dcg::driver
