#include "driver/pool/connection_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dcg::driver::pool {

ConnectionPool::ConnectionPool(sim::EventLoop* loop, PoolOptions options)
    : loop_(loop), options_(options) {
  DCG_CHECK_MSG(options_.max_pool_size >= 0, "negative maxPoolSize");
  DCG_CHECK_MSG(options_.min_pool_size >= 0, "negative minPoolSize");
  DCG_CHECK_MSG(options_.max_pool_size == 0 ||
                    options_.min_pool_size <= options_.max_pool_size,
                "minPoolSize exceeds maxPoolSize");
}

void ConnectionPool::Deliver(CheckoutCallback done, uint64_t conn_id,
                             sim::Duration wait) {
  Connection& conn = connections_.at(conn_id);
  // The generation invariant: a connection is never handed out across a
  // clear. Stale connections are destroyed at checkout/check-in/establish
  // completion, so this counter staying 0 is the proof the chaos harness
  // asserts.
  if (conn.generation != generation_) ++stale_handouts_;
  conn.checked_out = true;
  ++checked_out_;
  ++stats_.checkouts;
  stats_.wait_total += wait;
  Checkout result;
  result.ok = true;
  result.conn_id = conn_id;
  result.generation = conn.generation;
  result.wait = wait;
  done(result);
}

void ConnectionPool::CheckOut(CheckoutCallback done) {
  // LIFO reuse of idle connections; stale ones (pre-clear) die here.
  while (!idle_.empty()) {
    const uint64_t conn_id = idle_.back().first;
    idle_.pop_back();
    if (connections_.at(conn_id).generation != generation_) {
      DestroyConnection(conn_id);
      continue;
    }
    Deliver(std::move(done), conn_id, 0);
    return;
  }
  auto waiter = std::make_unique<Waiter>();
  waiter->done = std::move(done);
  waiter->enqueued_at = loop_->Now();
  if (!AtCapacity()) {
    Establish(std::move(waiter));
    return;
  }
  // Pool exhausted: join the FIFO wait queue. The timeout fires exactly
  // at enqueue + wait_queue_timeout (waitQueueTimeoutMS semantics).
  if (options_.wait_queue_timeout > 0) {
    Waiter* raw = waiter.get();
    waiter->timeout_timer =
        loop_->ScheduleAfter(options_.wait_queue_timeout, [this, raw] {
          for (auto it = wait_queue_.begin(); it != wait_queue_.end(); ++it) {
            if (it->get() != raw) continue;
            std::unique_ptr<Waiter> timed_out = std::move(*it);
            wait_queue_.erase(it);
            ++stats_.checkout_timeouts;
            timed_out->done(Checkout{});  // ok = false
            return;
          }
        });
  }
  wait_queue_.push_back(std::move(waiter));
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth,
               static_cast<uint64_t>(wait_queue_.size()));
}

void ConnectionPool::Establish(std::unique_ptr<Waiter> waiter) {
  ++total_;  // establishing connections count toward maxPoolSize
  const uint64_t gen = generation_;
  if (options_.establish_cost == 0) {
    FinishEstablish(std::move(waiter), gen);
    return;
  }
  // shared_ptr: std::function requires copyable callables.
  auto shared = std::make_shared<std::unique_ptr<Waiter>>(std::move(waiter));
  loop_->ScheduleAfter(options_.establish_cost, [this, shared, gen] {
    FinishEstablish(std::move(*shared), gen);
  });
}

void ConnectionPool::FinishEstablish(std::unique_ptr<Waiter> waiter,
                                     uint64_t generation) {
  if (generation != generation_) {
    // The pool was cleared while the handshake was in flight: the socket
    // may lead to a dead server, so the connection is closed on arrival
    // (driver-spec behaviour). A waiting checkout starts over under the
    // new generation, paying the establishment cost again.
    --total_;
    ++stats_.destroyed;
    if (waiter != nullptr) Establish(std::move(waiter));
    return;
  }
  const uint64_t conn_id = next_conn_id_++;
  connections_[conn_id] = Connection{generation, /*checked_out=*/false};
  ++stats_.established;
  if (waiter != nullptr) {
    if (waiter->timeout_timer != 0) loop_->Cancel(waiter->timeout_timer);
    Deliver(std::move(waiter->done), conn_id,
            loop_->Now() - waiter->enqueued_at);
    return;
  }
  // Warm min-pool connection — idle unless someone is already queued.
  if (!wait_queue_.empty()) {
    std::unique_ptr<Waiter> next = std::move(wait_queue_.front());
    wait_queue_.pop_front();
    if (next->timeout_timer != 0) loop_->Cancel(next->timeout_timer);
    Deliver(std::move(next->done), conn_id, loop_->Now() - next->enqueued_at);
    return;
  }
  idle_.emplace_back(conn_id, loop_->Now());
}

void ConnectionPool::CheckIn(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  DCG_CHECK_MSG(it != connections_.end() && it->second.checked_out,
                "check-in of a connection not checked out");
  it->second.checked_out = false;
  --checked_out_;
  if (it->second.generation != generation_) {
    // Perished by a clear while in flight: destroy instead of reuse.
    DestroyConnection(conn_id);
    ServeQueue();  // the freed capacity slot can establish a fresh one
    return;
  }
  if (!wait_queue_.empty()) {
    std::unique_ptr<Waiter> next = std::move(wait_queue_.front());
    wait_queue_.pop_front();
    if (next->timeout_timer != 0) loop_->Cancel(next->timeout_timer);
    Deliver(std::move(next->done), conn_id, loop_->Now() - next->enqueued_at);
    return;
  }
  idle_.emplace_back(conn_id, loop_->Now());
}

void ConnectionPool::Discard(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  DCG_CHECK_MSG(it != connections_.end() && it->second.checked_out,
                "discard of a connection not checked out");
  it->second.checked_out = false;
  --checked_out_;
  DestroyConnection(conn_id);
  ServeQueue();
}

void ConnectionPool::Clear() {
  ++generation_;
  ++stats_.clears;
  while (!idle_.empty()) {
    DestroyConnection(idle_.back().first);
    idle_.pop_back();
  }
  // Checked-out connections perish at check-in. Queued checkouts survive
  // the clear and are served by fresh establishment as capacity frees —
  // starting now, with the capacity the idle connections just released.
  ServeQueue();
}

void ConnectionPool::DestroyConnection(uint64_t conn_id) {
  connections_.erase(conn_id);
  --total_;
  ++stats_.destroyed;
}

void ConnectionPool::ServeQueue() {
  while (!wait_queue_.empty()) {
    if (!idle_.empty()) {
      const uint64_t conn_id = idle_.back().first;
      idle_.pop_back();
      if (connections_.at(conn_id).generation != generation_) {
        DestroyConnection(conn_id);
        continue;
      }
      std::unique_ptr<Waiter> next = std::move(wait_queue_.front());
      wait_queue_.pop_front();
      if (next->timeout_timer != 0) loop_->Cancel(next->timeout_timer);
      Deliver(std::move(next->done), conn_id,
              loop_->Now() - next->enqueued_at);
      continue;
    }
    if (AtCapacity()) return;
    std::unique_ptr<Waiter> next = std::move(wait_queue_.front());
    wait_queue_.pop_front();
    if (next->timeout_timer != 0) loop_->Cancel(next->timeout_timer);
    Establish(std::move(next));
  }
}

void ConnectionPool::StartMaintenance() {
  if (maintenance_running_) return;
  if (options_.max_idle_time == 0 && options_.min_pool_size == 0) return;
  maintenance_running_ = true;
  MaintenanceLoop();
}

void ConnectionPool::MaintenanceLoop() {
  // Reap connections idle past maxIdleTime, coldest first, but never
  // below the minPoolSize floor.
  if (options_.max_idle_time > 0) {
    const sim::Time now = loop_->Now();
    while (!idle_.empty() && total_ > options_.min_pool_size &&
           now - idle_.front().second >= options_.max_idle_time) {
      DestroyConnection(idle_.front().first);
      idle_.pop_front();
    }
  }
  // Top the pool back up to minPoolSize (after reaping, clears, drops).
  while (total_ < options_.min_pool_size && !AtCapacity()) {
    Establish(nullptr);
  }
  loop_->ScheduleAfter(options_.maintenance_interval,
                       [this] { MaintenanceLoop(); });
}

}  // namespace dcg::driver::pool
